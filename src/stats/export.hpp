// Schema-versioned JSONL export of telemetry and summaries.
//
// One JSON object per line; the first line of every trace file is a
// header carrying the schema tag, so a consumer can refuse files it
// does not understand. Two schemas live here:
//
//   fourbit.telemetry/1 — per-trial trace files: header, then one line
//     per telemetry event, then counter/gauge snapshot lines, then an
//     "end" footer with the event count (a missing footer means the
//     trial died mid-run — the file is still valid JSONL up to the
//     truncation point).
//   fourbit.summary/1 — campaign summaries (runner::describe_json and
//     Metrics::describe_json emit it), so benches can print
//     machine-readable results next to the human tables.
//
// The schema suffix is a compatibility contract: additive fields keep
// the version; renaming/removing a field or changing a meaning bumps it.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "sim/telemetry.hpp"

namespace fourbit::stats {

inline constexpr std::string_view kTelemetrySchema = "fourbit.telemetry/1";
inline constexpr std::string_view kSummarySchema = "fourbit.summary/1";

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// One event as a single JSONL line (no trailing newline). Field values
/// are lossless: node/peer/arg/arg2 as raw integers (0xFFFF/0xFFFE are
/// the "broadcast"/"none" sentinels), time as seconds with microsecond
/// precision, doubles with round-trip precision.
[[nodiscard]] std::string event_to_json(const sim::TelemetryEvent& event);

/// Writes one trial's trace as JSONL. Construct with the per-trial path
/// (the supervisor derives it from (index, seed), so parallel trials
/// never share a file), attach as the TelemetryContext sink, and call
/// write_counters() + finish() when the trial completes. The destructor
/// finishes implicitly so a trial that dies by exception still leaves a
/// parseable file.
class JsonlExporter final : public sim::TelemetrySink {
 public:
  struct Header {
    std::uint64_t seed = 0;
    /// Campaign trial index; negative = standalone run (omitted).
    std::int64_t trial = -1;
  };

  /// Throws std::runtime_error if `path` cannot be opened for writing.
  JsonlExporter(const std::string& path, Header header);
  ~JsonlExporter() override;

  JsonlExporter(const JsonlExporter&) = delete;
  JsonlExporter& operator=(const JsonlExporter&) = delete;

  void on_event(const sim::TelemetryEvent& event) override;

  /// Snapshots the registry: one "counter" / "gauge" line per row, in
  /// registration order (deterministic per trial).
  void write_counters(const sim::TelemetryContext& telemetry);

  /// Writes the "end" footer and closes the file. Idempotent.
  void finish();

  [[nodiscard]] std::uint64_t events_written() const { return events_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t events_ = 0;
};

}  // namespace fourbit::stats
