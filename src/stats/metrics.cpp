#include "stats/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "stats/export.hpp"

namespace fourbit::stats {

std::uint8_t Metrics::classify(sim::Time t) const {
  for (const auto& [start, end] : outage_windows_) {
    if (t >= start && t < end) return 1;  // during an outage
  }
  if (!outage_windows_.empty() && t >= last_outage_end_) return 2;  // post
  return 0;
}

void Metrics::on_generated(NodeId origin, std::uint16_t, sim::Time now) {
  PerOrigin& po = origins_[origin];
  po.generated += 1;
  const std::uint8_t phase = classify(now);
  po.gen_phase.push_back(phase);
  generated_by_phase_[phase] += 1;
}

void Metrics::on_delivered(NodeId origin, std::uint16_t seq) {
  // Duplicates at the sink (same origin, same seq epoch) count once.
  PerOrigin& po = origins_[origin];
  const std::uint64_t expanded = po.expand_seq(seq);
  if (!po.delivered_seqs.insert(expanded).second) return;
  // The expanded seq IS the packet's generation index at its origin.
  if (expanded < po.gen_phase.size()) {
    delivered_by_phase_[po.gen_phase[expanded]] += 1;
  }
}

std::uint64_t Metrics::PerOrigin::expand_seq(std::uint16_t seq) {
  if (!has_delivered) {
    has_delivered = true;
    highest_expanded = seq;
    return seq;
  }
  // Candidate expansions in the epoch of the highest seq seen and its two
  // neighbors; pick the one closest to the highest (RFC 1982-style).
  const std::uint64_t epoch = highest_expanded >> 16;
  std::uint64_t best = (epoch << 16) | seq;
  std::uint64_t best_dist = best > highest_expanded ? best - highest_expanded
                                                    : highest_expanded - best;
  for (const int d : {-1, +1}) {
    if (d < 0 && epoch == 0) continue;  // epoch 0 has no predecessor
    const std::uint64_t candidate =
        ((epoch + static_cast<std::uint64_t>(d)) << 16) | seq;
    const std::uint64_t dist = candidate > highest_expanded
                                   ? candidate - highest_expanded
                                   : highest_expanded - candidate;
    if (dist < best_dist) {
      best = candidate;
      best_dist = dist;
    }
  }
  highest_expanded = std::max(highest_expanded, best);
  return best;
}

void Metrics::on_data_tx(NodeId) { ++data_tx_total_; }
void Metrics::on_beacon_tx(NodeId) { ++beacon_tx_total_; }
void Metrics::on_retx_drop(NodeId) { ++retx_drops_; }
void Metrics::on_queue_drop(NodeId) { ++queue_drops_; }
void Metrics::on_duplicate_rx(NodeId) { ++duplicate_rx_; }

void Metrics::record_depth_sample(double mean_depth) {
  depth_samples_.push_back(mean_depth);
}

std::uint64_t Metrics::generated_total() const {
  std::uint64_t total = 0;
  for (const auto& [node, po] : origins_) total += po.generated;
  return total;
}

std::uint64_t Metrics::delivered_unique_total() const {
  std::uint64_t total = 0;
  for (const auto& [node, po] : origins_) total += po.delivered_seqs.size();
  return total;
}

double Metrics::cost() const {
  const std::uint64_t delivered = delivered_unique_total();
  if (delivered == 0) return 0.0;
  return static_cast<double>(data_tx_total_) /
         static_cast<double>(delivered);
}

double Metrics::delivery_ratio() const {
  const std::uint64_t generated = generated_total();
  if (generated == 0) return 0.0;
  return static_cast<double>(delivered_unique_total()) /
         static_cast<double>(generated);
}

std::vector<double> Metrics::per_node_delivery() const {
  std::vector<double> out;
  out.reserve(origins_.size());
  for (const auto& [node, po] : origins_) {
    if (po.generated == 0) continue;
    out.push_back(static_cast<double>(po.delivered_seqs.size()) /
                  static_cast<double>(po.generated));
  }
  return out;
}

double Metrics::average_depth() const {
  if (depth_samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const double d : depth_samples_) sum += d;
  return sum / static_cast<double>(depth_samples_.size());
}

// ---- fault / recovery ----------------------------------------------------

void Metrics::add_outage_window(sim::Time start, sim::Time end) {
  outage_windows_.emplace_back(start, end);
  last_outage_end_ = std::max(last_outage_end_, end);
}

void Metrics::on_node_started(NodeId n, sim::Time now) {
  Recovery& r = recovery_[n];
  if (r.started) return;  // a reboot, not the cold boot
  r.started = true;
  r.first_start = now;
}

void Metrics::on_route_restored(NodeId n, sim::Time now) {
  Recovery& r = recovery_[n];
  if (r.started && !r.first_routed) {
    r.first_routed = true;
    r.first_route_s = (now - r.first_start).seconds();
  }
  if (r.loss_outstanding) {
    r.loss_outstanding = false;
    reroute_s_.push_back((now - r.lost_since).seconds());
  }
}

void Metrics::on_route_lost(NodeId n, sim::Time now) {
  Recovery& r = recovery_[n];
  if (r.loss_outstanding) return;  // the earliest loss time wins
  r.loss_outstanding = true;
  r.lost_since = now;
  ++route_losses_;
}

void Metrics::on_node_crashed(NodeId n, sim::Time) {
  ++node_crashes_;
  // A crashed node's downtime is not a reroute: that is what the
  // delivery-during-outage metric describes. Only live nodes routing
  // around damage contribute reroute samples.
  recovery_[n].loss_outstanding = false;
}

void Metrics::on_node_rebooted(NodeId, sim::Time) { ++node_reboots_; }

void Metrics::on_table_refill(NodeId, sim::Duration took) {
  refill_s_.push_back(took.seconds());
}

void Metrics::on_pin_refusal(NodeId) { ++pin_refusals_; }

namespace {
double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}
}  // namespace

double Metrics::mean_time_to_reroute_s() const { return mean_of(reroute_s_); }

double Metrics::max_time_to_reroute_s() const {
  return reroute_s_.empty()
             ? 0.0
             : *std::max_element(reroute_s_.begin(), reroute_s_.end());
}

double Metrics::mean_time_to_first_route_s() const {
  std::vector<double> delays;
  for (const auto& [node, r] : recovery_) {
    if (r.first_routed) delays.push_back(r.first_route_s);
  }
  return mean_of(delays);
}

double Metrics::mean_table_refill_s() const { return mean_of(refill_s_); }

double Metrics::delivery_during_outage() const {
  if (generated_by_phase_[1] == 0) return 0.0;
  return static_cast<double>(delivered_by_phase_[1]) /
         static_cast<double>(generated_by_phase_[1]);
}

double Metrics::delivery_post_outage() const {
  if (generated_by_phase_[2] == 0) return 0.0;
  return static_cast<double>(delivered_by_phase_[2]) /
         static_cast<double>(generated_by_phase_[2]);
}

std::string Metrics::describe() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "generated %llu, delivered %llu (%.2f%%), cost %.2f tx/pkt\n"
      "data tx %llu, beacons %llu, drops %llu retx / %llu queue, "
      "%llu duplicates\n",
      static_cast<unsigned long long>(generated_total()),
      static_cast<unsigned long long>(delivered_unique_total()),
      delivery_ratio() * 100.0, cost(),
      static_cast<unsigned long long>(data_tx_total_),
      static_cast<unsigned long long>(beacon_tx_total_),
      static_cast<unsigned long long>(retx_drops_),
      static_cast<unsigned long long>(queue_drops_),
      static_cast<unsigned long long>(duplicate_rx_));
  return buf;
}

std::string Metrics::describe_json() const {
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "{\"schema\":\"%s\",\"type\":\"metrics\",\"generated\":%llu,"
      "\"delivered\":%llu,\"delivery_ratio\":%.17g,\"cost\":%.17g,"
      "\"mean_depth\":%.17g,\"data_tx\":%llu,\"beacon_tx\":%llu,"
      "\"retx_drops\":%llu,\"queue_drops\":%llu,\"duplicates\":%llu}",
      std::string{kSummarySchema}.c_str(),
      static_cast<unsigned long long>(generated_total()),
      static_cast<unsigned long long>(delivered_unique_total()),
      delivery_ratio(), cost(), average_depth(),
      static_cast<unsigned long long>(data_tx_total_),
      static_cast<unsigned long long>(beacon_tx_total_),
      static_cast<unsigned long long>(retx_drops_),
      static_cast<unsigned long long>(queue_drops_),
      static_cast<unsigned long long>(duplicate_rx_));
  return buf;
}

}  // namespace fourbit::stats
