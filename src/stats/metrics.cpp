#include "stats/metrics.hpp"

#include <algorithm>

namespace fourbit::stats {

void Metrics::on_generated(NodeId origin, std::uint16_t) {
  origins_[origin].generated += 1;
}

void Metrics::on_delivered(NodeId origin, std::uint16_t seq) {
  // Duplicates at the sink (same origin, same seq epoch) count once.
  PerOrigin& po = origins_[origin];
  po.delivered_seqs.insert(po.expand_seq(seq));
}

std::uint64_t Metrics::PerOrigin::expand_seq(std::uint16_t seq) {
  if (!has_delivered) {
    has_delivered = true;
    highest_expanded = seq;
    return seq;
  }
  // Candidate expansions in the epoch of the highest seq seen and its two
  // neighbors; pick the one closest to the highest (RFC 1982-style).
  const std::uint64_t epoch = highest_expanded >> 16;
  std::uint64_t best = (epoch << 16) | seq;
  std::uint64_t best_dist = best > highest_expanded ? best - highest_expanded
                                                    : highest_expanded - best;
  for (const int d : {-1, +1}) {
    if (d < 0 && epoch == 0) continue;  // epoch 0 has no predecessor
    const std::uint64_t candidate =
        ((epoch + static_cast<std::uint64_t>(d)) << 16) | seq;
    const std::uint64_t dist = candidate > highest_expanded
                                   ? candidate - highest_expanded
                                   : highest_expanded - candidate;
    if (dist < best_dist) {
      best = candidate;
      best_dist = dist;
    }
  }
  highest_expanded = std::max(highest_expanded, best);
  return best;
}

void Metrics::on_data_tx(NodeId) { ++data_tx_total_; }
void Metrics::on_beacon_tx(NodeId) { ++beacon_tx_total_; }
void Metrics::on_retx_drop(NodeId) { ++retx_drops_; }
void Metrics::on_queue_drop(NodeId) { ++queue_drops_; }
void Metrics::on_duplicate_rx(NodeId) { ++duplicate_rx_; }

void Metrics::record_depth_sample(double mean_depth) {
  depth_samples_.push_back(mean_depth);
}

std::uint64_t Metrics::generated_total() const {
  std::uint64_t total = 0;
  for (const auto& [node, po] : origins_) total += po.generated;
  return total;
}

std::uint64_t Metrics::delivered_unique_total() const {
  std::uint64_t total = 0;
  for (const auto& [node, po] : origins_) total += po.delivered_seqs.size();
  return total;
}

double Metrics::cost() const {
  const std::uint64_t delivered = delivered_unique_total();
  if (delivered == 0) return 0.0;
  return static_cast<double>(data_tx_total_) /
         static_cast<double>(delivered);
}

double Metrics::delivery_ratio() const {
  const std::uint64_t generated = generated_total();
  if (generated == 0) return 0.0;
  return static_cast<double>(delivered_unique_total()) /
         static_cast<double>(generated);
}

std::vector<double> Metrics::per_node_delivery() const {
  std::vector<double> out;
  out.reserve(origins_.size());
  for (const auto& [node, po] : origins_) {
    if (po.generated == 0) continue;
    out.push_back(static_cast<double>(po.delivered_seqs.size()) /
                  static_cast<double>(po.generated));
  }
  return out;
}

double Metrics::average_depth() const {
  if (depth_samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const double d : depth_samples_) sum += d;
  return sum / static_cast<double>(depth_samples_.size());
}

}  // namespace fourbit::stats
