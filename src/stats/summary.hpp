// Distribution summaries (the five-number boxplot statistics of Fig. 8).
#pragma once

#include <algorithm>
#include <vector>

namespace fourbit::stats {

struct FiveNumber {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Linear-interpolated quantile of a SORTED sample, q in [0,1].
[[nodiscard]] inline double quantile_sorted(const std::vector<double>& sorted,
                                            double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

[[nodiscard]] inline FiveNumber five_number_summary(std::vector<double> xs) {
  FiveNumber s;
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.q1 = quantile_sorted(xs, 0.25);
  s.median = quantile_sorted(xs, 0.5);
  s.q3 = quantile_sorted(xs, 0.75);
  double sum = 0.0;
  for (const double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  return s;
}

}  // namespace fourbit::stats
