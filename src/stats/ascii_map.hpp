// ASCII rendering of a testbed and its routing tree.
//
// The paper's Figure 2 shades each node by its depth in the collection
// tree; this renders the same view in a terminal: the root is 'R', every
// other node shows its hop count ('1'..'9', '+' for deeper, '.' for
// currently routeless).
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace fourbit::stats {

struct AsciiMapEntry {
  Position position;
  int depth = -1;  // -1 = no route, 0 = root
};

/// Renders the nodes onto a `cols` x `rows` character canvas scaled to
/// the bounding box of the positions. Collisions keep the shallower node
/// (the more informative one).
[[nodiscard]] inline std::string render_ascii_map(
    const std::vector<AsciiMapEntry>& entries, std::size_t cols = 72,
    std::size_t rows = 20) {
  if (entries.empty() || cols < 2 || rows < 2) return "";

  double min_x = entries[0].position.x;
  double max_x = min_x;
  double min_y = entries[0].position.y;
  double max_y = min_y;
  for (const auto& e : entries) {
    min_x = std::min(min_x, e.position.x);
    max_x = std::max(max_x, e.position.x);
    min_y = std::min(min_y, e.position.y);
    max_y = std::max(max_y, e.position.y);
  }
  const double span_x = std::max(max_x - min_x, 1e-9);
  const double span_y = std::max(max_y - min_y, 1e-9);

  std::vector<std::string> canvas(rows, std::string(cols, ' '));
  // Track what is already drawn per cell so shallower nodes win.
  std::vector<std::vector<int>> drawn(rows, std::vector<int>(cols, 1 << 20));

  for (const auto& e : entries) {
    const auto cx = static_cast<std::size_t>(
        (e.position.x - min_x) / span_x * static_cast<double>(cols - 1));
    // Screen y grows downward; keep the map's orientation (root usually
    // bottom-left in the presets) by flipping.
    const auto cy = static_cast<std::size_t>(
        (1.0 - (e.position.y - min_y) / span_y) *
        static_cast<double>(rows - 1));

    const int rank = e.depth < 0 ? (1 << 19) : e.depth;
    if (rank >= drawn[cy][cx]) continue;
    drawn[cy][cx] = rank;

    char c = '.';
    if (e.depth == 0) {
      c = 'R';
    } else if (e.depth > 0 && e.depth <= 9) {
      c = static_cast<char>('0' + e.depth);
    } else if (e.depth > 9) {
      c = '+';
    }
    canvas[cy][cx] = c;
  }

  std::string out;
  out.reserve((cols + 1) * rows);
  for (const auto& line : canvas) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace fourbit::stats
