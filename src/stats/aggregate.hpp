// Cross-trial aggregation: reduce one scalar sampled over many trials
// (seed sweeps, power sweeps) into the numbers the figures report —
// mean, sample stddev, a 95% confidence interval, and the boxplot
// quartiles of summary.hpp.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "stats/summary.hpp"

namespace fourbit::stats {

struct Aggregate {
  std::size_t n = 0;
  double mean = 0.0;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev = 0.0;
  /// Half-width of the 95% confidence interval on the mean
  /// (normal approximation: 1.96 * stddev / sqrt(n)); 0 for n < 2.
  double ci95_half = 0.0;
  /// min / Q1 / median / Q3 / max of the sample.
  FiveNumber quartiles;

  [[nodiscard]] double ci_lo() const { return mean - ci95_half; }
  [[nodiscard]] double ci_hi() const { return mean + ci95_half; }

  [[nodiscard]] static Aggregate of(std::vector<double> xs) {
    Aggregate a;
    a.n = xs.size();
    if (xs.empty()) return a;
    a.quartiles = five_number_summary(xs);
    a.mean = a.quartiles.mean;
    if (a.n >= 2) {
      double ss = 0.0;
      for (const double x : xs) ss += (x - a.mean) * (x - a.mean);
      a.stddev = std::sqrt(ss / static_cast<double>(a.n - 1));
      a.ci95_half = 1.96 * a.stddev / std::sqrt(static_cast<double>(a.n));
    }
    return a;
  }
};

}  // namespace fourbit::stats
