// Radio energy accounting and network-lifetime projection.
//
// The paper's cost metric matters because transmissions cost energy and
// energy is the network's lifetime. This model charges each node for its
// transmit airtime (at a TX-power-dependent current) plus always-on
// listening (the dominant term for an un-duty-cycled CC2420-class radio),
// and projects the lifetime of the worst-drained node.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "sim/time.hpp"

namespace fourbit::stats {

struct EnergyConfig {
  double supply_volts = 3.0;

  /// Always-on receive/listen current (CC2420: 18.8 mA).
  double rx_current_ma = 18.8;

  /// TX current by output power (CC2420 datasheet: 17.4 mA at 0 dBm,
  /// ~11 mA at -10 dBm, ~8.5 mA at -25 dBm). Interpolated linearly in
  /// dBm between the table points below.
  [[nodiscard]] double tx_current_ma(PowerDbm power) const {
    const double p = power.value();
    if (p >= 0.0) return 17.4;
    if (p <= -25.0) return 8.5;
    if (p >= -10.0) {
      // [-10, 0] dBm: 11.0 -> 17.4 mA
      return 11.0 + (p + 10.0) / 10.0 * (17.4 - 11.0);
    }
    // [-25, -10] dBm: 8.5 -> 11.0 mA
    return 8.5 + (p + 25.0) / 15.0 * (11.0 - 8.5);
  }

  /// Battery capacity used for lifetime projection (2x AA ~ 2000 mAh).
  double battery_mah = 2000.0;
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyConfig config = {}) : config_(config) {}

  /// Charges `node` for one transmission of the given airtime and power.
  void on_transmit(NodeId node, sim::Duration airtime, PowerDbm power) {
    const double hours = airtime.seconds() / 3600.0;
    charge_[node].tx_mah += config_.tx_current_ma(power) * hours;
    charge_[node].tx_airtime = charge_[node].tx_airtime + airtime;
  }

  struct NodeReport {
    NodeId node;
    double tx_mah = 0.0;      // transmit charge consumed
    double listen_mah = 0.0;  // idle-listening charge over the run
    double total_mah = 0.0;
    sim::Duration tx_airtime;
  };

  struct Report {
    std::vector<NodeReport> nodes;  // sorted by total draw, worst first
    double worst_mah = 0.0;
    double mean_tx_mah = 0.0;
    /// Projected days until the worst node's battery dies, extrapolating
    /// this run's consumption rate.
    double projected_lifetime_days = 0.0;
  };

  /// Builds the report for a run of length `elapsed`. Nodes that never
  /// transmitted still pay the listening cost; callers pass the node set
  /// if they want those included.
  [[nodiscard]] Report report(sim::Duration elapsed,
                              const std::vector<NodeId>& all_nodes) const {
    Report out;
    const double listen_mah =
        config_.rx_current_ma * (elapsed.seconds() / 3600.0);
    for (const NodeId n : all_nodes) {
      NodeReport nr;
      nr.node = n;
      if (const auto it = charge_.find(n); it != charge_.end()) {
        nr.tx_mah = it->second.tx_mah;
        nr.tx_airtime = it->second.tx_airtime;
      }
      nr.listen_mah = listen_mah;
      nr.total_mah = nr.tx_mah + nr.listen_mah;
      out.nodes.push_back(nr);
    }
    std::sort(out.nodes.begin(), out.nodes.end(),
              [](const NodeReport& a, const NodeReport& b) {
                return a.total_mah > b.total_mah;
              });
    if (!out.nodes.empty()) {
      out.worst_mah = out.nodes.front().total_mah;
      double sum = 0.0;
      for (const auto& nr : out.nodes) sum += nr.tx_mah;
      out.mean_tx_mah = sum / static_cast<double>(out.nodes.size());
      if (out.worst_mah > 0.0 && elapsed.seconds() > 0.0) {
        const double mah_per_day =
            out.worst_mah * 86400.0 / elapsed.seconds();
        out.projected_lifetime_days = config_.battery_mah / mah_per_day;
      }
    }
    return out;
  }

  [[nodiscard]] const EnergyConfig& config() const { return config_; }

 private:
  struct Charge {
    double tx_mah = 0.0;
    sim::Duration tx_airtime;
  };
  EnergyConfig config_;
  std::unordered_map<NodeId, Charge> charge_;
};

}  // namespace fourbit::stats
