#include "stats/export.hpp"

#include <cinttypes>
#include <stdexcept>

namespace fourbit::stats {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string event_to_json(const sim::TelemetryEvent& event) {
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "{\"type\":\"event\",\"t\":%.6f,\"kind\":\"%s\",\"node\":%u,"
      "\"peer\":%u,\"arg\":%u,\"arg2\":%u,\"v0\":%.17g,\"v1\":%.17g}",
      event.at.seconds(),
      std::string{sim::event_kind_name(event.kind)}.c_str(), event.node,
      event.peer, event.arg, event.arg2, event.v0, event.v1);
  return buf;
}

JsonlExporter::JsonlExporter(const std::string& path, Header header) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    throw std::runtime_error("JsonlExporter: cannot open trace file: " +
                             path);
  }
  std::fprintf(file_, "{\"schema\":\"%.*s\",\"type\":\"header\"",
               static_cast<int>(kTelemetrySchema.size()),
               kTelemetrySchema.data());
  std::fprintf(file_, ",\"seed\":%" PRIu64,
               static_cast<std::uint64_t>(header.seed));
  if (header.trial >= 0) {
    std::fprintf(file_, ",\"trial\":%" PRId64, header.trial);
  }
  std::fprintf(file_, "}\n");
}

JsonlExporter::~JsonlExporter() { finish(); }

void JsonlExporter::on_event(const sim::TelemetryEvent& event) {
  if (file_ == nullptr) return;
  const auto line = event_to_json(event);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  ++events_;
}

void JsonlExporter::write_counters(const sim::TelemetryContext& telemetry) {
  if (file_ == nullptr) return;
  for (const auto& row : telemetry.counters()) {
    std::fprintf(file_,
                 "{\"type\":\"counter\",\"component\":\"%s\",\"name\":"
                 "\"%s\",\"node\":%u,\"value\":%" PRIu64 "}\n",
                 json_escape(row.component).c_str(),
                 json_escape(row.name).c_str(), row.node, row.value);
  }
  for (const auto& row : telemetry.gauges()) {
    std::fprintf(file_,
                 "{\"type\":\"gauge\",\"component\":\"%s\",\"name\":"
                 "\"%s\",\"node\":%u,\"value\":%.17g}\n",
                 json_escape(row.component).c_str(),
                 json_escape(row.name).c_str(), row.node, row.value);
  }
  // Histogram rows exist only when something recorded one (phase
  // profiling is opt-in), so clean-run trace files are byte-identical
  // to pre-histogram builds.
  for (const auto& row : telemetry.histograms()) {
    std::fprintf(file_,
                 "{\"type\":\"histogram\",\"component\":\"%s\",\"name\":"
                 "\"%s\",\"node\":%u,\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                 ",\"p50\":%.6g,\"p90\":%.6g,\"p99\":%.6g,\"bins\":[",
                 json_escape(row.component).c_str(),
                 json_escape(row.name).c_str(), row.node, row.hist.count,
                 row.hist.sum, row.hist.quantile(0.50),
                 row.hist.quantile(0.90), row.hist.quantile(0.99));
    bool first = true;
    for (std::size_t bin = 0; bin < sim::kHistogramBins; ++bin) {
      if (row.hist.bins[bin] == 0) continue;
      std::fprintf(file_, "%s[%zu,%" PRIu64 "]", first ? "" : ",", bin,
                   row.hist.bins[bin]);
      first = false;
    }
    std::fprintf(file_, "]}\n");
  }
}

void JsonlExporter::finish() {
  if (file_ == nullptr) return;
  std::fprintf(file_, "{\"type\":\"end\",\"events\":%" PRIu64 "}\n", events_);
  std::fclose(file_);
  file_ = nullptr;
}

}  // namespace fourbit::stats
