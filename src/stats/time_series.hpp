// Time-binned series for the longitudinal plots (Figure 3).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "sim/time.hpp"

namespace fourbit::stats {

/// Accumulates (time, value) points into fixed-width bins and reports the
/// per-bin mean (e.g. PRR per 10 minutes, mean LQI per 10 minutes).
class BinnedSeries {
 public:
  explicit BinnedSeries(sim::Duration bin_width) : bin_width_(bin_width) {
    FOURBIT_ASSERT(bin_width.us() > 0, "bin width must be positive");
  }

  void add(sim::Time t, double value) {
    const auto bin = static_cast<std::size_t>(t.us() / bin_width_.us());
    if (bin >= sums_.size()) {
      sums_.resize(bin + 1, 0.0);
      counts_.resize(bin + 1, 0);
    }
    sums_[bin] += value;
    counts_[bin] += 1;
  }

  [[nodiscard]] std::size_t bins() const { return sums_.size(); }
  [[nodiscard]] sim::Duration bin_width() const { return bin_width_; }

  /// Mean of bin `i`; `fallback` if the bin is empty.
  [[nodiscard]] double mean(std::size_t i, double fallback = 0.0) const {
    if (i >= sums_.size() || counts_[i] == 0) return fallback;
    return sums_[i] / static_cast<double>(counts_[i]);
  }

  [[nodiscard]] std::uint64_t count(std::size_t i) const {
    return i < counts_.size() ? counts_[i] : 0;
  }

  [[nodiscard]] double bin_start_seconds(std::size_t i) const {
    return static_cast<double>(i) * bin_width_.seconds();
  }

 private:
  sim::Duration bin_width_;
  std::vector<double> sums_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace fourbit::stats
