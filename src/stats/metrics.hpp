// Experiment accounting: the paper's three metrics.
//
//   cost           = data-frame transmissions (incl. every retransmission
//                    and duplicate) per unique packet delivered at a root
//   delivery ratio = unique packets delivered / packets generated,
//                    aggregate and per node (Figure 8 boxplots)
//   average depth  = mean hop distance of nodes to their root, sampled
//                    over time by the runner
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "sim/time.hpp"

namespace fourbit::stats {

class Metrics {
 public:
  // ---- data-plane events (called by the protocol stacks) -------------

  /// `now` classifies the packet against the registered outage windows
  /// (delivery during/after an outage); callers without a clock may omit
  /// it when no windows are registered.
  void on_generated(NodeId origin, std::uint16_t seq,
                    sim::Time now = sim::Time{});
  void on_delivered(NodeId origin, std::uint16_t seq);
  void on_data_tx(NodeId sender);
  void on_beacon_tx(NodeId sender);
  void on_retx_drop(NodeId at);
  void on_queue_drop(NodeId at);
  void on_duplicate_rx(NodeId at);

  /// Runner-sampled mean tree depth (hops to root over all routed nodes).
  void record_depth_sample(double mean_depth);

  // ---- fault / recovery events ---------------------------------------
  //
  // Route-availability transitions come from the routing engines; crash,
  // reboot and table-refill events from the fault harness. Together they
  // yield the recovery metrics: time-to-first-route, time-to-reroute,
  // neighbor-table re-fill time, delivery during/after outages.

  /// Registers a known outage window BEFORE the run (fault plans are
  /// deterministic, so windows are known upfront). Generated packets are
  /// classified as normal / during-outage / post-outage by generation
  /// time; "post" means at-or-after the end of the LAST window.
  void add_outage_window(sim::Time start, sim::Time end);

  /// First call per node marks its cold boot (reboots call again; only
  /// the first start anchors time-to-first-route).
  void on_node_started(NodeId n, sim::Time now);

  /// The node acquired a route. Ends the node's outstanding route-loss
  /// interval, if any (that interval's length is one reroute sample).
  void on_route_restored(NodeId n, sim::Time now);

  /// The node lost its route (or discovered, after the fact, that its
  /// parent died — callers may back-date `now` to when the wedge began).
  /// Ignored while a loss is already outstanding: the earliest time wins.
  void on_route_lost(NodeId n, sim::Time now);

  void on_node_crashed(NodeId n, sim::Time now);
  void on_node_rebooted(NodeId n, sim::Time now);

  /// The node's neighbor table regained half its pre-crash size, `took`
  /// after its reboot.
  void on_table_refill(NodeId n, sim::Duration took);

  /// The pin bit refused a table removal (dead-parent eviction hits this
  /// once per eviction, before unpinning).
  void on_pin_refusal(NodeId at);

  // ---- derived metrics -------------------------------------------------

  [[nodiscard]] std::uint64_t generated_total() const;
  [[nodiscard]] std::uint64_t delivered_unique_total() const;
  [[nodiscard]] std::uint64_t data_tx_total() const { return data_tx_total_; }
  [[nodiscard]] std::uint64_t beacon_tx_total() const {
    return beacon_tx_total_;
  }
  [[nodiscard]] std::uint64_t retx_drops() const { return retx_drops_; }
  [[nodiscard]] std::uint64_t queue_drops() const { return queue_drops_; }
  [[nodiscard]] std::uint64_t duplicate_rx() const { return duplicate_rx_; }

  /// Transmissions per unique delivered packet (lower is better).
  [[nodiscard]] double cost() const;

  /// Fraction of generated packets that reached a root.
  [[nodiscard]] double delivery_ratio() const;

  /// Delivery ratio per origin node (origins that generated nothing are
  /// omitted), for the per-node distribution plots.
  [[nodiscard]] std::vector<double> per_node_delivery() const;

  /// Time-average of the sampled mean tree depth.
  [[nodiscard]] double average_depth() const;

  // ---- derived recovery metrics --------------------------------------

  [[nodiscard]] std::uint64_t node_crashes() const { return node_crashes_; }
  [[nodiscard]] std::uint64_t node_reboots() const { return node_reboots_; }
  [[nodiscard]] std::uint64_t pin_refusals() const { return pin_refusals_; }
  [[nodiscard]] std::uint64_t route_losses() const { return route_losses_; }

  /// Completed route-loss -> route-restored intervals, seconds.
  [[nodiscard]] double mean_time_to_reroute_s() const;
  [[nodiscard]] double max_time_to_reroute_s() const;
  [[nodiscard]] std::size_t reroute_count() const {
    return reroute_s_.size();
  }

  /// Mean cold-boot -> first-route delay over nodes that ever routed.
  [[nodiscard]] double mean_time_to_first_route_s() const;

  /// Mean reboot -> table-half-refilled delay.
  [[nodiscard]] double mean_table_refill_s() const;
  [[nodiscard]] std::size_t table_refill_count() const {
    return refill_s_.size();
  }

  [[nodiscard]] std::uint64_t generated_during_outage() const {
    return generated_by_phase_[1];
  }
  [[nodiscard]] std::uint64_t generated_post_outage() const {
    return generated_by_phase_[2];
  }

  /// Delivery ratio of packets GENERATED during / after the registered
  /// outage windows (0 when nothing was generated in that phase).
  [[nodiscard]] double delivery_during_outage() const;
  [[nodiscard]] double delivery_post_outage() const;

  // ---- reporting -------------------------------------------------------

  /// Human-readable snapshot of the headline counters (multi-line).
  [[nodiscard]] std::string describe() const;

  /// One line of schema-versioned JSON ("fourbit.summary/1",
  /// stats/export.hpp), type "metrics"; no trailing newline.
  [[nodiscard]] std::string describe_json() const;

 private:
  struct PerOrigin {
    std::uint64_t generated = 0;
    // Outage phase (0 normal / 1 during / 2 post) per generated packet,
    // indexed by generation order == expanded sequence number (origins
    // number their packets 0,1,2,... and report every one).
    std::vector<std::uint8_t> gen_phase;
    // Dedup of delivered packets. The wire sequence number is 16 bits,
    // so an origin that generates more than 65536 packets wraps: a raw
    // set of uint16_t would collide across epochs and silently undercount
    // delivery on long runs. Instead each delivered seq is widened to a
    // 64-bit value near the highest expanded seq seen so far (tolerant of
    // reordering/late retransmissions within +-32768) and deduped on that.
    std::unordered_set<std::uint64_t> delivered_seqs;
    std::uint64_t highest_expanded = 0;
    bool has_delivered = false;

    [[nodiscard]] std::uint64_t expand_seq(std::uint16_t seq);
  };

  struct Recovery {
    bool started = false;
    sim::Time first_start;
    bool first_routed = false;
    double first_route_s = 0.0;
    bool loss_outstanding = false;
    sim::Time lost_since;
  };

  [[nodiscard]] std::uint8_t classify(sim::Time t) const;

  std::unordered_map<NodeId, PerOrigin> origins_;
  std::uint64_t data_tx_total_ = 0;
  std::uint64_t beacon_tx_total_ = 0;
  std::uint64_t retx_drops_ = 0;
  std::uint64_t queue_drops_ = 0;
  std::uint64_t duplicate_rx_ = 0;
  std::vector<double> depth_samples_;

  // Fault / recovery accounting.
  std::unordered_map<NodeId, Recovery> recovery_;
  std::vector<std::pair<sim::Time, sim::Time>> outage_windows_;
  sim::Time last_outage_end_;
  std::vector<double> reroute_s_;
  std::vector<double> refill_s_;
  std::uint64_t node_crashes_ = 0;
  std::uint64_t node_reboots_ = 0;
  std::uint64_t pin_refusals_ = 0;
  std::uint64_t route_losses_ = 0;
  std::uint64_t generated_by_phase_[3] = {0, 0, 0};
  std::uint64_t delivered_by_phase_[3] = {0, 0, 0};
};

}  // namespace fourbit::stats
