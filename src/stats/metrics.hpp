// Experiment accounting: the paper's three metrics.
//
//   cost           = data-frame transmissions (incl. every retransmission
//                    and duplicate) per unique packet delivered at a root
//   delivery ratio = unique packets delivered / packets generated,
//                    aggregate and per node (Figure 8 boxplots)
//   average depth  = mean hop distance of nodes to their root, sampled
//                    over time by the runner
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "sim/time.hpp"

namespace fourbit::stats {

class Metrics {
 public:
  // ---- data-plane events (called by the protocol stacks) -------------

  void on_generated(NodeId origin, std::uint16_t seq);
  void on_delivered(NodeId origin, std::uint16_t seq);
  void on_data_tx(NodeId sender);
  void on_beacon_tx(NodeId sender);
  void on_retx_drop(NodeId at);
  void on_queue_drop(NodeId at);
  void on_duplicate_rx(NodeId at);

  /// Runner-sampled mean tree depth (hops to root over all routed nodes).
  void record_depth_sample(double mean_depth);

  // ---- derived metrics -------------------------------------------------

  [[nodiscard]] std::uint64_t generated_total() const;
  [[nodiscard]] std::uint64_t delivered_unique_total() const;
  [[nodiscard]] std::uint64_t data_tx_total() const { return data_tx_total_; }
  [[nodiscard]] std::uint64_t beacon_tx_total() const {
    return beacon_tx_total_;
  }
  [[nodiscard]] std::uint64_t retx_drops() const { return retx_drops_; }
  [[nodiscard]] std::uint64_t queue_drops() const { return queue_drops_; }
  [[nodiscard]] std::uint64_t duplicate_rx() const { return duplicate_rx_; }

  /// Transmissions per unique delivered packet (lower is better).
  [[nodiscard]] double cost() const;

  /// Fraction of generated packets that reached a root.
  [[nodiscard]] double delivery_ratio() const;

  /// Delivery ratio per origin node (origins that generated nothing are
  /// omitted), for the per-node distribution plots.
  [[nodiscard]] std::vector<double> per_node_delivery() const;

  /// Time-average of the sampled mean tree depth.
  [[nodiscard]] double average_depth() const;

 private:
  struct PerOrigin {
    std::uint64_t generated = 0;
    // Dedup of delivered packets. The wire sequence number is 16 bits,
    // so an origin that generates more than 65536 packets wraps: a raw
    // set of uint16_t would collide across epochs and silently undercount
    // delivery on long runs. Instead each delivered seq is widened to a
    // 64-bit value near the highest expanded seq seen so far (tolerant of
    // reordering/late retransmissions within +-32768) and deduped on that.
    std::unordered_set<std::uint64_t> delivered_seqs;
    std::uint64_t highest_expanded = 0;
    bool has_delivered = false;

    [[nodiscard]] std::uint64_t expand_seq(std::uint16_t seq);
  };

  std::unordered_map<NodeId, PerOrigin> origins_;
  std::uint64_t data_tx_total_ = 0;
  std::uint64_t beacon_tx_total_ = 0;
  std::uint64_t retx_drops_ = 0;
  std::uint64_t queue_drops_ = 0;
  std::uint64_t duplicate_rx_ = 0;
  std::vector<double> depth_samples_;
};

}  // namespace fourbit::stats
