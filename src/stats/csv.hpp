// Minimal CSV writer for experiment results.
//
// Benches print human-readable tables; pipelines want machine-readable
// rows. This writer handles quoting and keeps the column set fixed per
// file (mismatched rows are a programming error, caught by assert).
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace fourbit::stats {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, std::vector<std::string> columns)
      : columns_(std::move(columns)), out_(path) {
    FOURBIT_ASSERT(!columns_.empty(), "CSV needs at least one column");
    write_row_raw(columns_);
  }

  [[nodiscard]] bool ok() const { return out_.good(); }

  /// Appends one row; the cell count must match the header.
  void row(const std::vector<std::string>& cells) {
    FOURBIT_ASSERT(cells.size() == columns_.size(),
                   "CSV row width does not match the header");
    write_row_raw(cells);
  }

  /// Convenience: formats arithmetic values with full precision.
  template <typename... Ts>
  void row_values(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(to_cell(values)), ...);
    row(cells);
  }

 private:
  template <typename T>
  [[nodiscard]] static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string{v};
    } else {
      std::ostringstream os;
      os.precision(10);
      os << v;
      return os.str();
    }
  }

  [[nodiscard]] static std::string quote(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (const char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  }

  void write_row_raw(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out_ << ',';
      out_ << quote(cells[i]);
    }
    out_ << '\n';
  }

  std::vector<std::string> columns_;
  std::ofstream out_;
};

}  // namespace fourbit::stats
