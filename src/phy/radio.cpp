#include "phy/radio.hpp"

#include <utility>

#include "common/assert.hpp"
#include "phy/channel.hpp"

namespace fourbit::phy {

Radio::Radio(Channel& channel, NodeId id, Position position,
             HardwareProfile hw, PowerDbm tx_power)
    : channel_(channel),
      id_(id),
      position_(position),
      hardware_(hw),
      tx_power_(tx_power) {
  channel_.attach(*this);
}

Radio::~Radio() { channel_.detach(*this); }

void Radio::set_tx_power(PowerDbm p) {
  tx_power_ = p;
  channel_.on_tx_power_changed(*this);
}

PowerDbm Radio::noise_floor() const {
  return channel_.phy().noise_floor + hardware_.noise_figure_offset;
}

bool Radio::channel_clear() const {
  if (transmitting()) return false;
  return !channel_.busy_at(*this);
}

bool Radio::transmitting() const {
  return transmitting_until_ > channel_.simulator().now();
}

void Radio::transmit(std::span<const std::uint8_t> frame, TxDoneHandler done) {
  FOURBIT_ASSERT(!frame.empty(), "cannot transmit an empty frame");
  channel_.start_transmission(*this, frame, std::move(done));
}

void Radio::transmit(const std::vector<std::uint8_t>& frame,
                     TxDoneHandler done) {
  transmit(std::span<const std::uint8_t>{frame}, std::move(done));
}

}  // namespace fourbit::phy
