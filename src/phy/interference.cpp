#include "phy/interference.hpp"

namespace fourbit::phy {

GilbertElliottInterference::GilbertElliottInterference(Config config,
                                                       sim::Rng rng)
    : config_(config), rng_(rng) {}

GilbertElliottInterference::NodeState& GilbertElliottInterference::state_for(
    NodeId rx) {
  auto it = nodes_.find(rx);
  if (it == nodes_.end()) {
    NodeState st{.affected = false,
                 .bad = false,
                 .state_until = sim::Time{},
                 .rng = rng_.fork(rx.value())};
    st.affected = rx != config_.exempt &&
                  st.rng.bernoulli(config_.affected_fraction);
    // Start in the good state for one full good dwell.
    st.state_until = sim::Time::from_us(0) +
                     sim::Duration::from_seconds(
                         st.rng.exponential(config_.mean_good.seconds()));
    it = nodes_.emplace(rx, std::move(st)).first;
  }
  return it->second;
}

void GilbertElliottInterference::advance(NodeState& st, sim::Time t) {
  while (st.state_until <= t) {
    st.bad = !st.bad;
    const sim::Duration mean = st.bad ? config_.mean_bad : config_.mean_good;
    // First transition draws from the same distribution, which makes the
    // chain start in the good state for an exponential time — the
    // stationary behaviour tests expect.
    st.state_until =
        st.state_until +
        sim::Duration::from_seconds(st.rng.exponential(mean.seconds()));
  }
}

double GilbertElliottInterference::destroy_probability(NodeId rx,
                                                       sim::Time start,
                                                       sim::Time end) {
  NodeState& st = state_for(rx);
  if (!st.affected) return 0.0;
  // Packets (a few ms) are far shorter than dwell times (tens of seconds);
  // the state at the packet midpoint decides.
  const sim::Time mid = start + (end - start) * 0.5;
  advance(st, mid);
  return st.bad ? config_.bad_loss_probability : 0.0;
}

bool GilbertElliottInterference::in_bad_state(NodeId rx, sim::Time t) {
  NodeState& st = state_for(rx);
  if (!st.affected) return false;
  advance(st, t);
  return st.bad;
}

}  // namespace fourbit::phy
