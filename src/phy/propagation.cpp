#include "phy/propagation.hpp"

#include <algorithm>
#include <cmath>

namespace fourbit::phy {

double PropagationModel::compute(NodeId from, const Position& from_pos,
                                 NodeId to, const Position& to_pos) const {
  const double d = std::max(distance_m(from_pos, to_pos), 0.5);
  const double deterministic =
      config_.reference_loss.value() + 10.0 * config_.exponent * std::log10(d);

  // Symmetric shadowing: same draw for (a,b) and (b,a).
  const NodeId lo = std::min(from, to);
  const NodeId hi = std::max(from, to);
  sim::Rng pair_rng = rng_.fork(pair_key(lo, hi));
  const double shadowing = pair_rng.normal(0.0, config_.shadowing_sigma_db);

  // Directional component: independent draw per ordered pair.
  sim::Rng dir_rng = rng_.fork(pair_key(from, to) ^ 0x9E3779B9U);
  const double directional =
      dir_rng.normal(0.0, config_.asymmetry_sigma_db);

  return deterministic + shadowing + directional;
}

Decibels PropagationModel::loss(NodeId from, const Position& from_pos,
                                NodeId to, const Position& to_pos) {
  const std::uint32_t key = pair_key(from, to);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    return Decibels{it->second};
  }
  const double total = compute(from, from_pos, to, to_pos);
  cache_.emplace(key, total);
  return Decibels{total};
}

Decibels PropagationModel::loss_uncached(NodeId from, const Position& from_pos,
                                         NodeId to,
                                         const Position& to_pos) const {
  // The memo stores exactly what compute() returns, so reading through
  // either entry point yields the same double bitwise.
  if (const auto it = cache_.find(pair_key(from, to)); it != cache_.end()) {
    return Decibels{it->second};
  }
  return Decibels{compute(from, from_pos, to, to_pos)};
}

}  // namespace fourbit::phy
