#include "phy/propagation.hpp"

#include <algorithm>
#include <cmath>

namespace fourbit::phy {

Decibels PropagationModel::loss(NodeId from, const Position& from_pos,
                                NodeId to, const Position& to_pos) {
  const std::uint32_t key = pair_key(from, to);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    return Decibels{it->second};
  }

  const double d = std::max(distance_m(from_pos, to_pos), 0.5);
  const double deterministic =
      config_.reference_loss.value() + 10.0 * config_.exponent * std::log10(d);

  // Symmetric shadowing: same draw for (a,b) and (b,a).
  const NodeId lo = std::min(from, to);
  const NodeId hi = std::max(from, to);
  sim::Rng pair_rng = rng_.fork(pair_key(lo, hi));
  const double shadowing = pair_rng.normal(0.0, config_.shadowing_sigma_db);

  // Directional component: independent draw per ordered pair.
  sim::Rng dir_rng = rng_.fork(key ^ 0x9E3779B9U);
  const double directional =
      dir_rng.normal(0.0, config_.asymmetry_sigma_db);

  const double total = deterministic + shadowing + directional;
  cache_.emplace(key, total);
  return Decibels{total};
}

}  // namespace fourbit::phy
