// SNR -> BER -> PRR for 802.15.4 O-QPSK DSSS.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace fourbit::phy {

/// Bit-error and packet-reception model for the 2.4 GHz 802.15.4 PHY
/// (O-QPSK with 32-chip DSSS), following Zuniga & Krishnamachari's
/// analysis. BER is precomputed over a fine SNR grid at construction; the
/// per-packet query is a table interpolation.
class OqpskModulation {
 public:
  OqpskModulation();

  /// Bit error rate at the given signal-to-(interference+)noise ratio.
  [[nodiscard]] double bit_error_rate(double sinr_db) const;

  /// Probability that a frame of `frame_bytes` (MPDU + PHY overhead) is
  /// decoded without error: (1 - BER)^(8 * bytes).
  [[nodiscard]] double packet_reception_ratio(double sinr_db,
                                              std::size_t frame_bytes) const;

  /// Exact (uncached) BER; exposed for tests of the table accuracy.
  [[nodiscard]] static double exact_bit_error_rate(double sinr_db);

 private:
  static constexpr double kMinSnrDb = -12.0;
  static constexpr double kMaxSnrDb = 12.0;
  static constexpr double kStepDb = 0.05;

  std::vector<double> table_;
  // PRR at the clamped low-SNR end, memoized per frame size: every
  // out-of-range candidate lands on the same clamped BER, and paying a
  // pow() per candidate per frame dominated the channel's delivery loop.
  // The handful of distinct frame sizes a protocol stack uses keeps this
  // list tiny. Mutable cache of a pure function; results are identical.
  mutable std::vector<std::pair<std::size_t, double>> floor_prr_;
};

}  // namespace fourbit::phy
