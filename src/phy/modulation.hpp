// SNR -> BER -> PRR for 802.15.4 O-QPSK DSSS.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace fourbit::phy {

/// Bit-error and packet-reception model for the 2.4 GHz 802.15.4 PHY
/// (O-QPSK with 32-chip DSSS), following Zuniga & Krishnamachari's
/// analysis. BER is precomputed over a fine SNR grid at construction; the
/// per-packet query is a table interpolation.
class OqpskModulation {
 public:
  OqpskModulation();

  /// Bit error rate at the given signal-to-(interference+)noise ratio.
  [[nodiscard]] double bit_error_rate(double sinr_db) const;

  /// Probability that a frame of `frame_bytes` (MPDU + PHY overhead) is
  /// decoded without error: (1 - BER)^(8 * bytes).
  [[nodiscard]] double packet_reception_ratio(double sinr_db,
                                              std::size_t frame_bytes) const;

  /// Batch PRR over a contiguous SINR span, one shared frame size.
  /// Exactly equivalent to calling packet_reception_ratio() per element
  /// (same table lookups, same branch structure, same memo), but laid
  /// out as fixed-order loops over contiguous arrays so the channel's
  /// delivery pass feeds the whole candidate set in one call.
  /// `out.size()` must be >= `sinr_db.size()`.
  void prr_batch(std::span<const double> sinr_db, std::size_t frame_bytes,
                 std::span<double> out) const;

  /// Exact (uncached) BER; exposed for tests of the table accuracy.
  [[nodiscard]] static double exact_bit_error_rate(double sinr_db);

 private:
  static constexpr double kMinSnrDb = -12.0;
  static constexpr double kMaxSnrDb = 12.0;
  static constexpr double kStepDb = 0.05;
  // The protocol stack uses a handful of distinct frame sizes; a fuzzer
  // or sweep that doesn't must not grow the memo without bound.
  static constexpr std::size_t kFloorMemoCap = 64;

  /// Shared BER -> PRR finalizer: the single source of truth for the
  /// scalar and batch paths, so both produce bitwise-identical doubles.
  [[nodiscard]] double prr_from_ber(double ber, double sinr_db,
                                    std::size_t frame_bytes) const;

  /// Memoized PRR at the clamped low-SNR end (every sub-threshold
  /// candidate shares one BER, so the pow depends only on frame size).
  [[nodiscard]] double floor_prr(std::size_t frame_bytes, double base,
                                 double bits) const;

  std::vector<double> table_;
  // Sorted by frame size for binary search; capped at kFloorMemoCap
  // entries (uncached sizes just pay the pow). Mutable cache of a pure
  // function; results are identical with or without it.
  mutable std::vector<std::pair<std::size_t, double>> floor_prr_;
};

}  // namespace fourbit::phy
