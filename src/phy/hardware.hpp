// Per-node hardware variation.
#pragma once

#include "common/units.hpp"
#include "phy/config.hpp"
#include "sim/rng.hpp"

namespace fourbit::phy {

/// Manufacturing spread of an individual node's radio. Sampled once per
/// node at topology construction; the offsets are static for a run, which
/// matches measurement studies (Zuniga & Krishnamachari, TOSN'07): the
/// same pair of motes shows the same asymmetry day after day.
struct HardwareProfile {
  /// Added to the configured TX power (some radios emit hotter).
  Decibels tx_power_offset{0.0};

  /// Added to the noise floor at this receiver (some radios are deafer).
  Decibels noise_figure_offset{0.0};

  [[nodiscard]] static HardwareProfile sample(
      const HardwareVariationConfig& cfg, sim::Rng& rng) {
    return HardwareProfile{
        .tx_power_offset = Decibels{rng.normal(0.0, cfg.tx_offset_sigma_db)},
        .noise_figure_offset =
            Decibels{rng.normal(0.0, cfg.noise_figure_sigma_db)},
    };
  }
};

}  // namespace fourbit::phy
