#include "phy/channel.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "phy/lqi.hpp"

namespace fourbit::phy {

Channel::Channel(sim::Simulator& sim, PhyConfig phy, PropagationConfig prop,
                 std::unique_ptr<InterferenceModel> interference,
                 sim::Rng rng)
    : sim_(sim),
      phy_(phy),
      propagation_(prop, rng.fork("propagation")),
      interference_(std::move(interference)),
      reception_rng_(rng.fork("reception")),
      lqi_rng_(rng.fork("lqi")) {
  FOURBIT_ASSERT(interference_ != nullptr, "interference model required");
}

void Channel::attach(Radio& radio) {
  radios_.push_back(&radio);
}

void Channel::detach(Radio& radio) {
  std::erase(radios_, &radio);
  // Drop the departing radio from in-flight receptions.
  for (auto& tx : active_) {
    std::erase_if(tx->receivers,
                  [&](const PendingRx& rx) { return rx.receiver == &radio; });
  }
}

std::uint32_t Channel::link_key(NodeId a, NodeId b) {
  const std::uint32_t lo = std::min(a.value(), b.value());
  const std::uint32_t hi = std::max(a.value(), b.value());
  return lo << 16 | hi;
}

void Channel::set_link_outage(NodeId a, NodeId b, double loss) {
  link_faults_[link_key(a, b)] = loss;
}

void Channel::clear_link_outage(NodeId a, NodeId b) {
  link_faults_.erase(link_key(a, b));
}

PowerDbm Channel::rx_power(const Radio& from, const Radio& to) {
  const Decibels loss = propagation_.loss(from.id(), from.position(), to.id(),
                                          to.position());
  return from.effective_tx_power() - loss;
}

double Channel::snr_db(const Radio& from, const Radio& to) {
  return (rx_power(from, to) - to.noise_floor()).value();
}

double Channel::mean_prr(const Radio& from, const Radio& to,
                         std::size_t mpdu_bytes) {
  return modulation_.packet_reception_ratio(
      snr_db(from, to), mpdu_bytes + phy_.phy_overhead_bytes);
}

bool Channel::busy_at(const Radio& listener) {
  prune_finished();
  const sim::Time now = sim_.now();
  for (const auto& tx : active_) {
    if (tx->sender == &listener) continue;
    if (tx->end <= now) continue;
    if (rx_power(*tx->sender, listener) >= phy_.cca_threshold) {
      return true;
    }
  }
  return false;
}

void Channel::prune_finished() {
  const sim::Time now = sim_.now();
  std::erase_if(active_, [now](const std::shared_ptr<ActiveTx>& tx) {
    return tx->end <= now;
  });
}

void Channel::start_transmission(Radio& sender,
                                 std::vector<std::uint8_t> frame,
                                 Radio::TxDoneHandler done) {
  FOURBIT_ASSERT(!sender.transmitting(),
                 "radio cannot start a second concurrent transmission");
  prune_finished();

  const sim::Time now = sim_.now();
  const sim::Duration airtime = phy_.airtime(frame.size());
  const sim::Time end = now + airtime;
  sender.set_transmitting_until(end);
  ++frames_transmitted_;
  if (tx_observer_) {
    tx_observer_(sender.id(), airtime, sender.effective_tx_power());
  }

  auto tx = std::make_shared<ActiveTx>();
  tx->sender = &sender;
  tx->start = now;
  tx->end = end;
  tx->frame = std::move(frame);

  // Enumerate candidate receivers and seed their interference with the
  // transmissions already in the air.
  for (Radio* r : radios_) {
    if (r == &sender) continue;
    // A sleeping receiver (LPL between channel samples) hears nothing.
    if (!r->listening()) continue;
    // Half-duplex: a radio mid-transmission cannot hear this packet. (A
    // radio that *starts* transmitting later overlaps too, but CSMA makes
    // that rare and the additive-interference model already punishes it.)
    if (r->transmitting_until() > now) continue;

    const PowerDbm p = rx_power(sender, *r);
    if (p < r->noise_floor() + phy_.reception_cutoff_margin) continue;

    double interference_mw = 0.0;
    for (const auto& other : active_) {
      if (other->end <= now) continue;
      interference_mw += rx_power(*other->sender, *r).milliwatts();
    }
    tx->receivers.push_back(PendingRx{r, p, interference_mw});
  }

  // This transmission interferes with every reception already in flight.
  for (const auto& other : active_) {
    if (other->end <= now) continue;
    for (auto& rx : other->receivers) {
      if (rx.receiver == &sender) continue;
      rx.interference_mw +=
          rx_power(sender, *rx.receiver).milliwatts();
    }
  }

  active_.push_back(tx);

  sim_.schedule_at(end, [this, tx, done = std::move(done)]() {
    finish_transmission(tx);
    if (done) done();
  });
}

void Channel::deliver_corrupt(Radio& r, const ActiveTx& tx,
                              const PendingRx& rx, double sinr_db) {
  if (!phy_.deliver_corrupt_frames) return;
  if (sinr_db < phy_.corrupt_delivery_min_sinr_db) return;
  // The radio locked onto the preamble but the payload is damaged: flip
  // a few bytes and deliver with fcs_ok = false. The MAC's FCS check
  // drops it; only the "heard garbage" fact is observable.
  std::vector<std::uint8_t> mangled = tx.frame;
  const std::size_t flips = 1 + reception_rng_.uniform_int(3);
  for (std::size_t i = 0; i < flips && !mangled.empty(); ++i) {
    const std::size_t pos = reception_rng_.uniform_int(mangled.size());
    mangled[pos] ^= static_cast<std::uint8_t>(
        1 + reception_rng_.uniform_int(255));
  }
  RxInfo info;
  info.rssi = rx.rx_power;
  info.snr_db = (rx.rx_power - r.noise_floor()).value();
  info.lqi = LqiModel::kMinLqi;
  info.white = false;
  info.fcs_ok = false;
  r.deliver(mangled, info);
}

bool Channel::white_bit(const RxInfo& info) const {
  switch (phy_.white_bit_source) {
    case PhyConfig::WhiteBitSource::kLqi:
      return info.lqi >= phy_.white_bit_lqi_threshold;
    case PhyConfig::WhiteBitSource::kSnr:
      return info.snr_db >= phy_.white_bit_snr_threshold_db;
    case PhyConfig::WhiteBitSource::kNever:
      return false;
  }
  return false;
}

void Channel::finish_transmission(const std::shared_ptr<ActiveTx>& tx) {
  const std::size_t frame_bytes = tx->frame.size() + phy_.phy_overhead_bytes;

  for (auto& rx : tx->receivers) {
    Radio& r = *rx.receiver;
    // The receiver may have begun transmitting after this packet started
    // (its CSMA lost the race); half-duplex kills the reception.
    if (r.transmitting_until() > tx->start) continue;

    // Fault injection: a forced outage on this pair drops the frame
    // before the physical model sees it (an obstructed or detuned path
    // leaves no LQI trace, like burst interference).
    if (!link_faults_.empty()) {
      const auto fault = link_faults_.find(link_key(tx->sender->id(), r.id()));
      if (fault != link_faults_.end() &&
          reception_rng_.bernoulli(fault->second)) {
        continue;
      }
    }

    const double noise_mw = r.noise_floor().milliwatts();
    const double sinr_db =
        rx.rx_power.value() -
        PowerDbm::from_milliwatts(noise_mw + rx.interference_mw).value();
    const double prr =
        modulation_.packet_reception_ratio(sinr_db, frame_bytes);
    if (!reception_rng_.bernoulli(prr)) {
      deliver_corrupt(r, *tx, rx, sinr_db);
      continue;
    }

    // External burst interference destroys whole packets independent of
    // chip quality (see header comment).
    const double burst =
        interference_->destroy_probability(r.id(), tx->start, tx->end);
    if (burst > 0.0 && reception_rng_.bernoulli(burst)) {
      deliver_corrupt(r, *tx, rx, sinr_db);
      continue;
    }

    // LQI reflects the thermal-only SNR of this (successfully received)
    // packet.
    const double snr_thermal =
        (rx.rx_power - r.noise_floor()).value();
    RxInfo info;
    info.rssi = rx.rx_power;
    info.snr_db = snr_thermal;
    info.lqi = LqiModel::sample(snr_thermal, lqi_rng_);
    info.white = white_bit(info);
    info.fcs_ok = true;
    r.deliver(tx->frame, info);
  }
}

}  // namespace fourbit::phy
