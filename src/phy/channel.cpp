#include "phy/channel.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"
#include "phy/lqi.hpp"

namespace fourbit::phy {

namespace {
// Sentinel for a batched PRR miss with no memo slot to write back into.
constexpr std::size_t kNoMemoSlot = static_cast<std::size_t>(-1);
}  // namespace

Channel::Channel(sim::Simulator& sim, PhyConfig phy, PropagationConfig prop,
                 std::unique_ptr<InterferenceModel> interference,
                 sim::Rng rng)
    : sim_(sim),
      phy_(phy),
      propagation_(prop, rng.fork("propagation")),
      interference_(std::move(interference)),
      reception_rng_(rng.fork("reception")),
      lqi_rng_(rng.fork("lqi")),
      ctr_frames_tx_(sim.telemetry().counter("phy", "frames_tx")),
      ctr_cache_rebuilds_(sim.telemetry().counter("phy", "cache_rebuilds")) {
  FOURBIT_ASSERT(interference_ != nullptr, "interference model required");
}

Channel::~Channel() {
  // Pooled transmissions live in the Simulator's arena, which never
  // runs destructors; the frame/receiver vectors' deallocate is a no-op
  // but ~ActiveTx must still run for correctness of future changes.
  for (ActiveTx* tx : tx_pool_) tx->~ActiveTx();
}

void Channel::attach(Radio& radio) {
  FOURBIT_ASSERT(is_unicast(radio.id()),
                 "NodeId 0xFFFE/0xFFFF are reserved (invalid/broadcast "
                 "sentinels): the topology overflowed the 16-bit id space");
  if (!free_slots_.empty()) {
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    radios_[slot] = &radio;
    radio.set_channel_index(slot);
    // Reusing a tombstoned slot keeps every other slot's rows intact:
    // with a frozen cache only the touched entries need repair, so
    // fault-plan churn (crash/reboot = detach + re-attach) never pays a
    // full rebuild.
    if (cache_valid_) repair_reused_slot(slot);
    return;
  }
  radio.set_channel_index(radios_.size());
  radios_.push_back(&radio);
  // Growing past the all-time slot peak resizes every per-slot array;
  // only then is a full (lazy) rebuild required.
  cache_valid_ = false;
}

void Channel::detach(Radio& radio) {
  const std::size_t slot = radio.channel_index();
  if (slot < radios_.size() && radios_[slot] == &radio) {
    // Tombstone, don't erase: every other radio keeps its slot, so a
    // frozen cache stays frozen. Hot loops skip null slots — the same
    // visit order the compacted scan would have had.
    radios_[slot] = nullptr;
    free_slots_.push_back(slot);
    if (cache_valid_ && sparse_mode_ && slot < slot_cell_.size() &&
        slot_cell_[slot] != kNoCell) {
      const std::size_t cell = slot_cell_[slot];
      std::erase(cells_[cell], static_cast<std::uint32_t>(slot));
      slot_cell_[slot] = kNoCell;
      // Senders near the departed position still hold row entries for
      // this slot. While it is tombstoned they are skipped via the null
      // checks, but a reuse at a position in a DIFFERENT cell would only
      // repair the new neighborhood and leave these stale (old gains,
      // old candidate/audible flags, applied to the new radio). Scrub
      // them now, while the old cell is still known.
      scrub_sparse_links_to(slot, cell);
      sparse_rows_[slot].clear();
    }
  }
  for (ActiveTx* tx : active_) {
    // Tombstone the departing radio's own in-flight transmission: the
    // carrier is gone, so the frame is aborted and must never be
    // delivered (and tx->sender must never be dereferenced again).
    if (tx->sender == &radio) {
      tx->sender = nullptr;
      tx->cached = false;
    }
    // Drop the departing radio from in-flight receptions.
    std::erase_if(tx->receivers,
                  [&](const PendingRx& rx) { return rx.receiver == &radio; });
  }
}

std::uint64_t Channel::link_key(NodeId a, NodeId b) {
  const std::uint64_t lo = std::min(a.value(), b.value());
  const std::uint64_t hi = std::max(a.value(), b.value());
  return lo << 32 | hi;
}

void Channel::set_link_outage(NodeId a, NodeId b, double loss) {
  link_faults_[link_key(a, b)] = loss;
}

void Channel::clear_link_outage(NodeId a, NodeId b) {
  link_faults_.erase(link_key(a, b));
}

PowerDbm Channel::rx_power(const Radio& from, const Radio& to) {
  const Decibels loss = propagation_.loss(from.id(), from.position(), to.id(),
                                          to.position());
  return from.effective_tx_power() - loss;
}

PowerDbm Channel::rx_power_uncached(const Radio& from, const Radio& to) const {
  const Decibels loss = propagation_.loss_uncached(
      from.id(), from.position(), to.id(), to.position());
  return from.effective_tx_power() - loss;
}

double Channel::snr_db(const Radio& from, const Radio& to) {
  return (rx_power(from, to) - to.noise_floor()).value();
}

double Channel::mean_prr(const Radio& from, const Radio& to,
                         std::size_t mpdu_bytes) {
  return modulation_.packet_reception_ratio(
      snr_db(from, to), mpdu_bytes + phy_.phy_overhead_bytes);
}

// --- fast-path link cache --------------------------------------------

void Channel::ensure_cache() {
  if (!cache_valid_) rebuild_cache();
}

void Channel::rebuild_cache() {
  sim::PhaseTimer freeze_timer{sim_.telemetry(),
                               sim::ProfilePhase::kChannelFreeze};
  ++*ctr_cache_rebuilds_;
  n_ = radios_.size();
  sparse_mode_ = phy_.use_spatial_index;

  rx_cutoff_dbm_.assign(n_, 0.0);
  noise_mw_.assign(n_, 0.0);
  noise_dbm_.assign(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    if (radios_[r] == nullptr) continue;
    rx_cutoff_dbm_[r] =
        (radios_[r]->noise_floor() + phy_.reception_cutoff_margin).value();
    // The exact doubles the slow delivery loop computes (noise_mw + 0.0
    // keeps the bit pattern), so the cached-noise SINR is bit-identical.
    noise_mw_[r] = radios_[r]->noise_floor().milliwatts();
    noise_dbm_[r] = PowerDbm::from_milliwatts(noise_mw_[r]).value();
  }

  if (sparse_mode_) {
    // The dense matrices stay empty: O(N·degree), not O(N²).
    gain_dbm_ = {};
    gain_mw_ = {};
    prr_bytes_ = {};
    prr_val_ = {};
    candidates_ = {};
    cca_audible_ = {};
    cca_words_ = 0;
    build_grid();
    sparse_rows_.assign(n_, {});
    for (std::size_t s = 0; s < n_; ++s) {
      if (radios_[s] != nullptr) rebuild_sparse_row(s);
    }
  } else {
    sparse_rows_ = {};
    cells_ = {};
    slot_cell_ = {};
    gain_dbm_.assign(n_ * n_, -1e9);
    gain_mw_.assign(n_ * n_, 0.0);
    candidates_.assign(n_, {});
    cca_words_ = (n_ + 63) / 64;
    cca_audible_.assign(n_ * cca_words_, 0);
    prr_bytes_.assign(n_ * n_, 0);
    prr_val_.assign(n_ * n_, 0.0);
    for (std::size_t s = 0; s < n_; ++s) rebuild_row(s);
  }

  // Re-point transmissions already in the air at the rebuilt cache (a
  // sender may have gained or lost its slot since the tx started).
  for (ActiveTx* tx : active_) {
    tx->cached = tx->sender != nullptr && has_cache_slot(*tx->sender);
    if (tx->cached) {
      tx->sender_index =
          static_cast<std::uint32_t>(tx->sender->channel_index());
    }
    for (PendingRx& rx : tx->receivers) {
      rx.receiver_index =
          static_cast<std::uint32_t>(rx.receiver->channel_index());
    }
  }
  cache_valid_ = true;
}

void Channel::rebuild_row(std::size_t s) {
  Radio* sender_p = radios_[s];
  auto& cands = candidates_[s];
  std::uint64_t* cca_row = &cca_audible_[s * cca_words_];
  std::fill(cca_row, cca_row + cca_words_, 0);
  // New gains invalidate the row's memoized PRRs.
  std::fill(&prr_bytes_[s * n_], &prr_bytes_[s * n_] + n_, 0);
  cands.clear();
  if (sender_p == nullptr) return;  // tombstoned slot: empty row
  Radio& sender = *sender_p;
  double* row_dbm = &gain_dbm_[s * n_];
  double* row_mw = &gain_mw_[s * n_];
  for (std::size_t r = 0; r < n_; ++r) {
    if (r == s || radios_[r] == nullptr) continue;
    // Exactly the slow path's arithmetic: cached doubles must equal what
    // rx_power() would compute, or the paths diverge bitwise.
    const PowerDbm p = rx_power_uncached(sender, *radios_[r]);
    row_dbm[r] = p.value();
    row_mw[r] = p.milliwatts();
    if (p.value() >= rx_cutoff_dbm_[r]) {
      cands.push_back(static_cast<std::uint32_t>(r));
    }
    if (p >= phy_.cca_threshold) {
      cca_row[r / 64] |= std::uint64_t{1} << (r % 64);
    }
  }
}

// --- sparse spatial index ---------------------------------------------

double Channel::receive_floor_radius(double max_tx_dbm,
                                     double floor_dbm) const {
  const PropagationConfig& pc = propagation_.config();
  const double headroom =
      phy_.spatial_headroom_sigmas *
      std::sqrt(pc.shadowing_sigma_db * pc.shadowing_sigma_db +
                pc.asymmetry_sigma_db * pc.asymmetry_sigma_db);
  // Strongest transmitter, weakest floor, headroom sigmas of favorable
  // shadowing: beyond this distance deterministic path loss alone keeps
  // every pair below every culling threshold.
  const double excess = (max_tx_dbm - floor_dbm + headroom) -
                        pc.reference_loss.value();
  if (excess <= 0.0) return 0.5;
  return std::max(0.5, std::pow(10.0, excess / (10.0 * pc.exponent)));
}

void Channel::build_grid() {
  double min_x = 1e300, min_y = 1e300, max_x = -1e300, max_y = -1e300;
  double max_tx = -1e300;
  double min_floor = 1e300;
  std::size_t live = 0;
  for (const Radio* r : radios_) {
    if (r == nullptr) continue;
    ++live;
    min_x = std::min(min_x, r->position().x);
    min_y = std::min(min_y, r->position().y);
    max_x = std::max(max_x, r->position().x);
    max_y = std::max(max_y, r->position().y);
    max_tx = std::max(max_tx, r->effective_tx_power().value());
    min_floor = std::min(
        min_floor, (r->noise_floor() + phy_.reception_cutoff_margin).value());
  }
  // The radius must also cover every CCA-audible pair, not just
  // reception candidates.
  min_floor = std::min(min_floor, phy_.cca_threshold.value());
  cells_.clear();
  slot_cell_.assign(n_, kNoCell);
  if (live == 0) {
    radius_m_ = 0.5;
    cell_size_m_ = 1.0;
    origin_x_ = origin_y_ = 0.0;
    grid_cols_ = grid_rows_ = 0;
    max_tx_dbm_ = -1e300;
    min_floor_dbm_ = 1e300;
    return;
  }

  max_tx_dbm_ = max_tx;
  min_floor_dbm_ = min_floor;
  radius_m_ = receive_floor_radius(max_tx, min_floor);
  cell_size_m_ = std::max(radius_m_, 1e-3);
  origin_x_ = min_x;
  origin_y_ = min_y;
  auto dims = [&]() {
    grid_cols_ = static_cast<std::size_t>((max_x - min_x) / cell_size_m_) + 1;
    grid_rows_ = static_cast<std::size_t>((max_y - min_y) / cell_size_m_) + 1;
  };
  dims();
  // A few nodes scattered over a huge extent must not allocate a huge
  // grid: coarsen cells until the grid is O(live). Cells only ever grow
  // past the radius, so the 3x3 neighborhood scan stays sufficient.
  while (grid_cols_ * grid_rows_ > 16 * live + 16) {
    cell_size_m_ *= 2.0;
    dims();
  }
  cells_.assign(grid_cols_ * grid_rows_, {});
  for (std::size_t s = 0; s < n_; ++s) {
    if (radios_[s] == nullptr) continue;
    const std::size_t cell = cell_of(radios_[s]->position());
    cells_[cell].push_back(static_cast<std::uint32_t>(s));
    slot_cell_[s] = static_cast<std::uint32_t>(cell);
  }
}

std::size_t Channel::cell_of(const Position& p) const {
  const double fx = std::max(0.0, (p.x - origin_x_) / cell_size_m_);
  const double fy = std::max(0.0, (p.y - origin_y_) / cell_size_m_);
  const std::size_t cx =
      std::min(grid_cols_ - 1, static_cast<std::size_t>(fx));
  const std::size_t cy =
      std::min(grid_rows_ - 1, static_cast<std::size_t>(fy));
  return cy * grid_cols_ + cx;
}

bool Channel::grid_covers(const Position& p) const {
  if (grid_cols_ == 0 || grid_rows_ == 0) return false;
  return p.x >= origin_x_ && p.y >= origin_y_ &&
         p.x <= origin_x_ + static_cast<double>(grid_cols_) * cell_size_m_ &&
         p.y <= origin_y_ + static_cast<double>(grid_rows_) * cell_size_m_;
}

void Channel::rebuild_sparse_row(std::size_t s) {
  auto& row = sparse_rows_[s];
  row.clear();
  Radio* sender_p = radios_[s];
  if (sender_p == nullptr) return;
  Radio& sender = *sender_p;
  for_each_neighbor_slot(slot_cell_[s], [&](std::uint32_t r) {
    if (r == s) return;
    const PowerDbm p = rx_power_uncached(sender, *radios_[r]);
    const bool cand = p.value() >= rx_cutoff_dbm_[r];
    const bool audible = p >= phy_.cca_threshold;
    if (!cand && !audible) return;
    SparseLink link;
    link.receiver = r;
    link.gain_dbm = p.value();
    link.gain_mw = p.milliwatts();
    link.candidate = cand;
    link.audible = audible;
    row.push_back(link);
  });
  // Ascending slot order == the attach order the dense and slow paths
  // visit, so RNG draw sequences stay bit-identical.
  std::sort(row.begin(), row.end(),
            [](const SparseLink& a, const SparseLink& b) {
              return a.receiver < b.receiver;
            });
}

void Channel::scrub_sparse_links_to(std::size_t slot, std::size_t cell) {
  for_each_neighbor_slot(cell, [&](std::uint32_t s) {
    if (s == slot) return;
    auto& row = sparse_rows_[s];
    const auto it = std::lower_bound(
        row.begin(), row.end(), static_cast<std::uint32_t>(slot),
        [](const SparseLink& l, std::uint32_t v) { return l.receiver < v; });
    if (it != row.end() && it->receiver == slot) row.erase(it);
  });
}

void Channel::repair_sparse_link(std::size_t s, std::size_t r) {
  const PowerDbm p = rx_power_uncached(*radios_[s], *radios_[r]);
  const bool cand = p.value() >= rx_cutoff_dbm_[r];
  const bool audible = p >= phy_.cca_threshold;
  auto& row = sparse_rows_[s];
  const auto it = std::lower_bound(
      row.begin(), row.end(), static_cast<std::uint32_t>(r),
      [](const SparseLink& l, std::uint32_t v) { return l.receiver < v; });
  const bool present = it != row.end() && it->receiver == r;
  if (!cand && !audible) {
    if (present) row.erase(it);
    return;
  }
  SparseLink link;
  link.receiver = static_cast<std::uint32_t>(r);
  link.gain_dbm = p.value();
  link.gain_mw = p.milliwatts();
  link.candidate = cand;
  link.audible = audible;
  if (present) {
    *it = link;  // prr memo reset: the gain changed
  } else {
    row.insert(it, link);
  }
}

const Channel::SparseLink* Channel::find_link(std::size_t sender,
                                              std::uint32_t receiver) const {
  const auto& row = sparse_rows_[sender];
  const auto it = std::lower_bound(
      row.begin(), row.end(), receiver,
      [](const SparseLink& l, std::uint32_t v) { return l.receiver < v; });
  return it != row.end() && it->receiver == receiver ? &*it : nullptr;
}

Channel::SparseLink* Channel::find_link(std::size_t sender,
                                        std::uint32_t receiver) {
  return const_cast<SparseLink*>(
      std::as_const(*this).find_link(sender, receiver));
}

void Channel::repair_reused_slot(std::size_t slot) {
  FOURBIT_ASSERT(slot < n_, "slot reuse beyond the frozen cache");
  Radio& radio = *radios_[slot];
  if (sparse_mode_ &&
      (radio.effective_tx_power().value() > max_tx_dbm_ ||
       (radio.noise_floor() + phy_.reception_cutoff_margin).value() <
           min_floor_dbm_ ||
       !grid_covers(radio.position()))) {
    // A louder transmitter, a more sensitive receiver (reception cutoff
    // below the weakest floor the radius was derived from — senders
    // beyond the 3x3 neighborhood could now be audible), or a position
    // off the frozen grid voids the receive-floor cull; fall back to a
    // full rebuild on next use.
    cache_valid_ = false;
    return;
  }
  rx_cutoff_dbm_[slot] =
      (radio.noise_floor() + phy_.reception_cutoff_margin).value();
  noise_mw_[slot] = radio.noise_floor().milliwatts();
  noise_dbm_[slot] = PowerDbm::from_milliwatts(noise_mw_[slot]).value();

  if (sparse_mode_) {
    const std::size_t cell = cell_of(radio.position());
    cells_[cell].push_back(static_cast<std::uint32_t>(slot));
    slot_cell_[slot] = static_cast<std::uint32_t>(cell);
    rebuild_sparse_row(slot);
    // Touched-cell column repair: only senders within the 3x3 cell
    // neighborhood can be above a culling floor with this slot, and any
    // links held near the OLD position were scrubbed at detach — so the
    // new neighborhood is the whole column.
    for_each_neighbor_slot(cell, [&](std::uint32_t s) {
      if (s == slot) return;
      repair_sparse_link(s, slot);
    });
    return;
  }

  // Dense: re-derive the slot's row, then walk its column once.
  rebuild_row(slot);
  for (std::size_t s = 0; s < n_; ++s) {
    if (s == slot || radios_[s] == nullptr) continue;
    const PowerDbm p = rx_power_uncached(*radios_[s], radio);
    gain_dbm_[s * n_ + slot] = p.value();
    gain_mw_[s * n_ + slot] = p.milliwatts();
    prr_bytes_[s * n_ + slot] = 0;
    auto& cands = candidates_[s];
    const auto it = std::lower_bound(cands.begin(), cands.end(),
                                     static_cast<std::uint32_t>(slot));
    const bool present = it != cands.end() && *it == slot;
    const bool want = p.value() >= rx_cutoff_dbm_[slot];
    if (want && !present) {
      cands.insert(it, static_cast<std::uint32_t>(slot));
    } else if (!want && present) {
      cands.erase(it);
    }
    std::uint64_t& word = cca_audible_[s * cca_words_ + slot / 64];
    const std::uint64_t bit = std::uint64_t{1} << (slot % 64);
    if (p >= phy_.cca_threshold) {
      word |= bit;
    } else {
      word &= ~bit;
    }
  }
}

void Channel::on_tx_power_changed(const Radio& radio) {
  // A dirty cache re-derives everything on next use anyway; only a
  // frozen cache holds stale powers for this sender's row.
  if (!cache_valid_ || !has_cache_slot(radio)) return;
  if (sparse_mode_) {
    if (radio.effective_tx_power().value() > max_tx_dbm_) {
      // Louder than the radius was derived for: the cull may now miss
      // candidates, so pay one full rebuild instead of guessing.
      cache_valid_ = false;
      return;
    }
    rebuild_sparse_row(radio.channel_index());
    return;
  }
  rebuild_row(radio.channel_index());
}

std::size_t Channel::candidate_count(const Radio& sender) {
  if (!phy_.use_link_cache) {
    // Slow-path configs must never allocate the cache arrays for an
    // introspection call: compute the count per pair instead.
    std::size_t count = 0;
    for (const Radio* r : radios_) {
      if (r == nullptr || r == &sender) continue;
      if (rx_power(sender, *r) >=
          r->noise_floor() + phy_.reception_cutoff_margin) {
        ++count;
      }
    }
    return count;
  }
  ensure_cache();
  if (!has_cache_slot(sender)) return 0;
  if (sparse_mode_) {
    std::size_t count = 0;
    for (const SparseLink& link : sparse_rows_[sender.channel_index()]) {
      if (link.candidate && radios_[link.receiver] != nullptr) ++count;
    }
    return count;
  }
  return candidates_[sender.channel_index()].size();
}

// --- ActiveTx pool ----------------------------------------------------

Channel::ActiveTx* Channel::acquire_tx() {
  if (!tx_free_.empty()) {
    ActiveTx* tx = tx_free_.back();
    tx_free_.pop_back();
    return tx;
  }
  tx_pool_.push_back(sim_.arena().create<ActiveTx>(sim_.arena()));
  return tx_pool_.back();
}

void Channel::release_tx(ActiveTx* tx) {
  tx->sender = nullptr;
  tx->cached = false;
  tx->frame.clear();      // keeps capacity: the next frame reuses it
  tx->receivers.clear();  // likewise
  tx_free_.push_back(tx);
}

// --- air interface ----------------------------------------------------

bool Channel::busy_at(const Radio& listener) {
  const sim::Time now = sim_.now();
  bool fast_listener = false;
  std::size_t li = 0;
  if (phy_.use_link_cache) {
    ensure_cache();
    // A detached-but-alive listener has no cache slot; it falls back to
    // the per-pair computation (identical values, just slower).
    if (has_cache_slot(listener)) {
      fast_listener = true;
      li = listener.channel_index();
    }
  }
  for (const ActiveTx* tx : active_) {
    if (tx->sender == &listener || tx->sender == nullptr) continue;
    if (tx->end <= now) continue;
    if (fast_listener && tx->cached) {
      if (sparse_mode_) {
        const SparseLink* link =
            find_link(tx->sender_index, static_cast<std::uint32_t>(li));
        if (link != nullptr && link->audible) return true;
      } else if (cca_audible(tx->sender_index, li)) {
        return true;
      }
    } else if (rx_power(*tx->sender, listener) >= phy_.cca_threshold) {
      return true;
    }
  }
  return false;
}

double Channel::interference_term(const ActiveTx& other, std::uint32_t ri,
                                  Radio& r) {
  if (!other.cached) return rx_power(*other.sender, r).milliwatts();
  if (sparse_mode_) {
    // Pairs outside the stored row (below every culling floor, or
    // beyond the radius) fall back to the per-pair computation — the
    // same double the dense matrix would have held, so interference
    // sums stay bit-identical across all three paths. The memo-free
    // entry point: distinct (interferer, receiver) pairs grow without
    // bound over a long run, and feeding them to the memo would rebuild
    // the O(N²) footprint the sparse path exists to avoid.
    const SparseLink* link = find_link(other.sender_index, ri);
    if (link != nullptr) return link->gain_mw;
    return rx_power_uncached(*other.sender, r).milliwatts();
  }
  return gain_mw_[other.sender_index * n_ + ri];
}

void Channel::start_transmission(Radio& sender,
                                 std::span<const std::uint8_t> frame,
                                 Radio::TxDoneHandler done) {
  FOURBIT_ASSERT(!sender.transmitting(),
                 "radio cannot start a second concurrent transmission");
  const bool fast = phy_.use_link_cache;
  if (fast) ensure_cache();

  const sim::Time now = sim_.now();
  const sim::Duration airtime = phy_.airtime(frame.size());
  const sim::Time end = now + airtime;
  sender.set_transmitting_until(end);
  ++frames_transmitted_;
  ++*ctr_frames_tx_;
  // kDebug: per-frame events only ring/export when explicitly asked for.
  sim_.telemetry().emit(sim::EventKind::kPhyFrame, sender.id().value(),
                        0xFFFF, static_cast<std::uint16_t>(frame.size()));
  if (tx_observer_) {
    tx_observer_(sender.id(), airtime, sender.effective_tx_power());
  }

  ActiveTx* tx = acquire_tx();
  tx->sender = &sender;
  tx->cached = fast && has_cache_slot(sender);
  tx->sender_index =
      tx->cached ? static_cast<std::uint32_t>(sender.channel_index()) : 0;
  tx->start = now;
  tx->end = end;
  tx->frame.assign(frame.begin(), frame.end());

  // Enumerate candidate receivers and seed their interference with the
  // transmissions already in the air. Both cached paths visit the
  // sender's precomputed candidates in slot (attach) order — the same
  // receivers, in the same order, as the slow path's full scan — so RNG
  // draws line up bitwise; a detached-but-alive sender has no cache row
  // and falls back to the slow scan.
  if (tx->cached && phy_.use_batch_kernels) {
    // Batch kernels: pass 1 gathers the live candidates into contiguous
    // scratch arrays (same candidates, same slot order as the scalar
    // branches below); pass 2 accumulates interference with the loops
    // interchanged — outer over active transmissions, inner over the
    // gathered receivers — so each receiver's accumulator still adds
    // the exact same terms in the exact same (active-set) order and
    // every double matches the scalar path bitwise, while the dense
    // inner loop is a fixed-order walk over two flat arrays.
    scratch_rx_.clear();
    scratch_slot_.clear();
    scratch_gain_dbm_.clear();
    if (sparse_mode_) {
      for (const SparseLink& link : sparse_rows_[tx->sender_index]) {
        if (!link.candidate) continue;
        Radio* r = radios_[link.receiver];
        if (r == nullptr) continue;  // tombstoned slot: receiver is gone
        // A sleeping receiver (LPL between samples) hears nothing.
        if (!r->listening()) continue;
        // Half-duplex: a radio mid-transmission cannot hear this packet.
        if (r->transmitting_until() > now) continue;
        scratch_rx_.push_back(r);
        scratch_slot_.push_back(link.receiver);
        scratch_gain_dbm_.push_back(link.gain_dbm);
      }
    } else {
      const double* row_dbm = &gain_dbm_[tx->sender_index * n_];
      for (const std::uint32_t ri : candidates_[tx->sender_index]) {
        Radio* r = radios_[ri];
        if (r == nullptr) continue;
        if (!r->listening()) continue;
        if (r->transmitting_until() > now) continue;
        scratch_rx_.push_back(r);
        scratch_slot_.push_back(ri);
        scratch_gain_dbm_.push_back(row_dbm[ri]);
      }
    }
    const std::size_t m = scratch_rx_.size();
    scratch_interf_.assign(m, 0.0);
    for (const ActiveTx* other : active_) {
      if (other->sender == nullptr || other->end <= now) continue;
      if (other->cached && !sparse_mode_) {
        const double* row_mw = &gain_mw_[other->sender_index * n_];
        double* acc = scratch_interf_.data();
        const std::uint32_t* slots = scratch_slot_.data();
        for (std::size_t i = 0; i < m; ++i) {
          acc[i] += row_mw[slots[i]];
        }
      } else {
        for (std::size_t i = 0; i < m; ++i) {
          scratch_interf_[i] +=
              interference_term(*other, scratch_slot_[i], *scratch_rx_[i]);
        }
      }
    }
    tx->receivers.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      tx->receivers.push_back(PendingRx{scratch_rx_[i], scratch_slot_[i],
                                        PowerDbm{scratch_gain_dbm_[i]},
                                        scratch_interf_[i]});
    }
  } else if (tx->cached && sparse_mode_) {
    for (const SparseLink& link : sparse_rows_[tx->sender_index]) {
      if (!link.candidate) continue;
      Radio* r = radios_[link.receiver];
      if (r == nullptr) continue;  // tombstoned slot: receiver is gone
      // A sleeping receiver (LPL between channel samples) hears nothing.
      if (!r->listening()) continue;
      // Half-duplex: a radio mid-transmission cannot hear this packet.
      if (r->transmitting_until() > now) continue;

      double interference_mw = 0.0;
      for (const ActiveTx* other : active_) {
        if (other->sender == nullptr || other->end <= now) continue;
        interference_mw += interference_term(*other, link.receiver, *r);
      }
      tx->receivers.push_back(PendingRx{r, link.receiver,
                                        PowerDbm{link.gain_dbm},
                                        interference_mw});
    }
  } else if (tx->cached) {
    const double* row_dbm = &gain_dbm_[tx->sender_index * n_];
    for (const std::uint32_t ri : candidates_[tx->sender_index]) {
      Radio* r = radios_[ri];
      if (r == nullptr) continue;  // tombstoned slot: receiver is gone
      if (!r->listening()) continue;
      if (r->transmitting_until() > now) continue;

      double interference_mw = 0.0;
      for (const ActiveTx* other : active_) {
        if (other->sender == nullptr || other->end <= now) continue;
        interference_mw += interference_term(*other, ri, *r);
      }
      tx->receivers.push_back(
          PendingRx{r, ri, PowerDbm{row_dbm[ri]}, interference_mw});
    }
  } else {
    for (Radio* r : radios_) {
      if (r == nullptr || r == &sender) continue;
      if (!r->listening()) continue;
      // (A radio that *starts* transmitting later overlaps too, but CSMA
      // makes that rare and the additive-interference model already
      // punishes it.)
      if (r->transmitting_until() > now) continue;

      const PowerDbm p = rx_power(sender, *r);
      if (p < r->noise_floor() + phy_.reception_cutoff_margin) continue;

      const std::uint32_t ri =
          fast ? static_cast<std::uint32_t>(r->channel_index()) : 0;
      double interference_mw = 0.0;
      for (const ActiveTx* other : active_) {
        if (other->sender == nullptr || other->end <= now) continue;
        interference_mw += interference_term(*other, ri, *r);
      }
      tx->receivers.push_back(PendingRx{r, ri, p, interference_mw});
    }
  }

  // This transmission interferes with every reception already in flight:
  // the per-receiver accumulators are maintained incrementally, never
  // rescanned.
  if (phy_.use_batch_kernels && tx->cached && !sparse_mode_) {
    // Batch back-substitution: the new sender's dense row holds every
    // term this pass can produce, so hoist the row base and add
    // straight from it — the same doubles, the same (other, receiver)
    // nesting order, minus the per-pair dispatch the scalar loop pays.
    const double* row_mw = &gain_mw_[tx->sender_index * n_];
    for (ActiveTx* other : active_) {
      if (other->end <= now) continue;
      for (PendingRx& rx : other->receivers) {
        if (rx.receiver == &sender) continue;
        rx.interference_mw += row_mw[rx.receiver_index];
      }
    }
  } else {
    for (ActiveTx* other : active_) {
      if (other->end <= now) continue;
      for (PendingRx& rx : other->receivers) {
        if (rx.receiver == &sender) continue;
        rx.interference_mw +=
            interference_term(*tx, rx.receiver_index, *rx.receiver);
      }
    }
  }

  active_.push_back(tx);

  sim_.schedule_at(end, [this, tx, done = std::move(done)]() {
    finish_transmission(tx);
    if (done) done();
  });
}

void Channel::deliver_corrupt(Radio& r, const ActiveTx& tx,
                              const PendingRx& rx, double sinr_db) {
  if (!phy_.deliver_corrupt_frames) return;
  if (sinr_db < phy_.corrupt_delivery_min_sinr_db) return;
  // The radio locked onto the preamble but the payload is damaged: flip
  // a few bytes and deliver with fcs_ok = false. The MAC's FCS check
  // drops it; only the "heard garbage" fact is observable. This is the
  // one path that needs a mutable copy of the frame bytes (it must
  // mangle them); the copy goes into a reused member buffer, safe
  // because deliveries never nest (finish events are never synchronous).
  std::vector<std::uint8_t>& mangled = corrupt_scratch_;
  mangled.assign(tx.frame.begin(), tx.frame.end());
  const std::size_t flips = 1 + reception_rng_.uniform_int(3);
  for (std::size_t i = 0; i < flips && !mangled.empty(); ++i) {
    const std::size_t pos = reception_rng_.uniform_int(mangled.size());
    mangled[pos] ^= static_cast<std::uint8_t>(
        1 + reception_rng_.uniform_int(255));
  }
  RxInfo info;
  info.rssi = rx.rx_power;
  info.snr_db = (rx.rx_power - r.noise_floor()).value();
  info.lqi = LqiModel::kMinLqi;
  info.white = false;
  info.fcs_ok = false;
  r.deliver(mangled, info);
}

bool Channel::white_bit(const RxInfo& info) const {
  switch (phy_.white_bit_source) {
    case PhyConfig::WhiteBitSource::kLqi:
      return info.lqi >= phy_.white_bit_lqi_threshold;
    case PhyConfig::WhiteBitSource::kSnr:
      return info.snr_db >= phy_.white_bit_snr_threshold_db;
    case PhyConfig::WhiteBitSource::kNever:
      return false;
  }
  return false;
}

void Channel::finish_transmission(ActiveTx* tx) {
  // End-time-ordered removal: each transmission's own finish event takes
  // it out of the active set, so CCA samples never pay a prune scan.
  std::erase(active_, tx);

  // Tombstoned sender (detached mid-flight): the frame died with it.
  if (tx->sender == nullptr) {
    release_tx(tx);
    return;
  }

  const std::size_t frame_bytes = tx->frame.size() + phy_.phy_overhead_bytes;

  // While the cache is frozen, every pending receiver_index is a live
  // slot (rebuild_cache remaps in-flight receptions), so the delivery
  // loop can read the precomputed noise terms instead of re-deriving
  // them per reception.
  const bool cached_noise = phy_.use_link_cache && cache_valid_;

  if (phy_.use_batch_kernels && cached_noise) {
    // Batch delivery: pass A computes every receiver's SINR and PRR
    // into contiguous scratch arrays (memo hits served in place, the
    // misses funneled through Modulation::prr_batch in row order); pass
    // B then replays the exact scalar control flow — half-duplex check,
    // fault draw, reception draw, burst draw, corrupt delivery, LQI —
    // consuming the precomputed values. PRR evaluation draws no RNG and
    // distinct receivers own distinct memo slots, so hoisting it out of
    // the sequential loop (including for receivers pass B skips) leaves
    // every random draw and every delivered byte bitwise unchanged.
    const std::size_t m = tx->receivers.size();
    scratch_sinr_.resize(m);
    scratch_prr_.resize(m);
    scratch_miss_.clear();
    scratch_miss_sinr_.clear();
    scratch_miss_pi_.clear();
    scratch_miss_link_.clear();
    for (std::size_t i = 0; i < m; ++i) {
      const PendingRx& rx = tx->receivers[i];
      if (rx.interference_mw == 0.0) {
        const double sinr_db =
            rx.rx_power.value() - noise_dbm_[rx.receiver_index];
        scratch_sinr_[i] = sinr_db;
        if (sparse_mode_) {
          SparseLink* link =
              tx->cached ? find_link(tx->sender_index, rx.receiver_index)
                         : nullptr;
          if (link != nullptr && link->gain_dbm == rx.rx_power.value()) {
            if (link->prr_bytes == frame_bytes) {
              scratch_prr_[i] = link->prr_val;
              continue;
            }
            scratch_miss_link_.push_back(link);  // memoize after the batch
          } else {
            scratch_miss_link_.push_back(nullptr);
          }
        } else {
          const std::size_t pi =
              tx->cached ? tx->sender_index * n_ + rx.receiver_index : 0;
          if (tx->cached && gain_dbm_[pi] == rx.rx_power.value()) {
            if (prr_bytes_[pi] == frame_bytes) {
              scratch_prr_[i] = prr_val_[pi];
              continue;
            }
            scratch_miss_pi_.push_back(pi);  // memoize after the batch
          } else {
            scratch_miss_pi_.push_back(kNoMemoSlot);
          }
        }
      } else {
        scratch_sinr_[i] =
            rx.rx_power.value() -
            PowerDbm::from_milliwatts(noise_mw_[rx.receiver_index] +
                                      rx.interference_mw)
                .value();
        if (sparse_mode_) {
          scratch_miss_link_.push_back(nullptr);
        } else {
          scratch_miss_pi_.push_back(kNoMemoSlot);
        }
      }
      scratch_miss_.push_back(static_cast<std::uint32_t>(i));
      scratch_miss_sinr_.push_back(scratch_sinr_[i]);
    }

    scratch_miss_prr_.resize(scratch_miss_.size());
    {
      sim::PhaseTimer kernel_timer{sim_.telemetry(),
                                   sim::ProfilePhase::kBatchKernel};
      modulation_.prr_batch(scratch_miss_sinr_, frame_bytes,
                            scratch_miss_prr_);
    }
    for (std::size_t j = 0; j < scratch_miss_.size(); ++j) {
      const double prr = scratch_miss_prr_[j];
      scratch_prr_[scratch_miss_[j]] = prr;
      if (sparse_mode_) {
        if (SparseLink* link = scratch_miss_link_[j]) {
          link->prr_bytes = static_cast<std::uint32_t>(frame_bytes);
          link->prr_val = prr;
        }
      } else if (scratch_miss_pi_[j] != kNoMemoSlot) {
        prr_bytes_[scratch_miss_pi_[j]] =
            static_cast<std::uint32_t>(frame_bytes);
        prr_val_[scratch_miss_pi_[j]] = prr;
      }
    }

    for (std::size_t i = 0; i < m; ++i) {
      const PendingRx& rx = tx->receivers[i];
      Radio& r = *rx.receiver;
      if (r.transmitting_until() > tx->start) continue;

      if (!link_faults_.empty()) {
        const auto fault =
            link_faults_.find(link_key(tx->sender->id(), r.id()));
        if (fault != link_faults_.end() &&
            reception_rng_.bernoulli(fault->second)) {
          continue;
        }
      }

      const double sinr_db = scratch_sinr_[i];
      if (!reception_rng_.bernoulli(scratch_prr_[i])) {
        deliver_corrupt(r, *tx, rx, sinr_db);
        continue;
      }

      const double burst =
          interference_->destroy_probability(r.id(), tx->start, tx->end);
      if (burst > 0.0 && reception_rng_.bernoulli(burst)) {
        deliver_corrupt(r, *tx, rx, sinr_db);
        continue;
      }

      const double snr_thermal = (rx.rx_power - r.noise_floor()).value();
      RxInfo info;
      info.rssi = rx.rx_power;
      info.snr_db = snr_thermal;
      info.lqi = LqiModel::sample(snr_thermal, lqi_rng_);
      info.white = white_bit(info);
      info.fcs_ok = true;
      r.deliver(tx->frame, info);
    }

    release_tx(tx);
    return;
  }

  for (const PendingRx& rx : tx->receivers) {
    Radio& r = *rx.receiver;
    // The receiver may have begun transmitting after this packet started
    // (its CSMA lost the race); half-duplex kills the reception.
    if (r.transmitting_until() > tx->start) continue;

    // Fault injection: a forced outage on this pair drops the frame
    // before the physical model sees it (an obstructed or detuned path
    // leaves no LQI trace, like burst interference).
    if (!link_faults_.empty()) {
      const auto fault = link_faults_.find(link_key(tx->sender->id(), r.id()));
      if (fault != link_faults_.end() &&
          reception_rng_.bernoulli(fault->second)) {
        continue;
      }
    }

    double sinr_db;
    double prr;
    if (cached_noise && rx.interference_mw == 0.0) {
      sinr_db = rx.rx_power.value() - noise_dbm_[rx.receiver_index];
      // Interference-free PRR is a pure function of (pair gain, frame
      // size) — served from the per-pair memo when the sender has a
      // cache row and the row still holds the gain this reception was
      // computed with (a mid-flight tx-power change re-derives the row,
      // and in-flight frames keep their old power). Zeroed size = empty.
      if (sparse_mode_) {
        SparseLink* link =
            tx->cached ? find_link(tx->sender_index, rx.receiver_index)
                       : nullptr;
        if (link != nullptr && link->gain_dbm == rx.rx_power.value()) {
          if (link->prr_bytes == frame_bytes) {
            prr = link->prr_val;
          } else {
            prr = modulation_.packet_reception_ratio(sinr_db, frame_bytes);
            link->prr_bytes = static_cast<std::uint32_t>(frame_bytes);
            link->prr_val = prr;
          }
        } else {
          prr = modulation_.packet_reception_ratio(sinr_db, frame_bytes);
        }
      } else {
        const std::size_t pi =
            tx->cached ? tx->sender_index * n_ + rx.receiver_index : 0;
        if (tx->cached && gain_dbm_[pi] == rx.rx_power.value()) {
          if (prr_bytes_[pi] == frame_bytes) {
            prr = prr_val_[pi];
          } else {
            prr = modulation_.packet_reception_ratio(sinr_db, frame_bytes);
            prr_bytes_[pi] = static_cast<std::uint32_t>(frame_bytes);
            prr_val_[pi] = prr;
          }
        } else {
          prr = modulation_.packet_reception_ratio(sinr_db, frame_bytes);
        }
      }
    } else {
      const double noise_mw = cached_noise ? noise_mw_[rx.receiver_index]
                                           : r.noise_floor().milliwatts();
      sinr_db =
          rx.rx_power.value() -
          PowerDbm::from_milliwatts(noise_mw + rx.interference_mw).value();
      prr = modulation_.packet_reception_ratio(sinr_db, frame_bytes);
    }
    if (!reception_rng_.bernoulli(prr)) {
      deliver_corrupt(r, *tx, rx, sinr_db);
      continue;
    }

    // External burst interference destroys whole packets independent of
    // chip quality (see header comment).
    const double burst =
        interference_->destroy_probability(r.id(), tx->start, tx->end);
    if (burst > 0.0 && reception_rng_.bernoulli(burst)) {
      deliver_corrupt(r, *tx, rx, sinr_db);
      continue;
    }

    // LQI reflects the thermal-only SNR of this (successfully received)
    // packet.
    const double snr_thermal =
        (rx.rx_power - r.noise_floor()).value();
    RxInfo info;
    info.rssi = rx.rx_power;
    info.snr_db = snr_thermal;
    info.lqi = LqiModel::sample(snr_thermal, lqi_rng_);
    info.white = white_bit(info);
    info.fcs_ok = true;
    r.deliver(tx->frame, info);
  }

  release_tx(tx);
}

}  // namespace fourbit::phy
