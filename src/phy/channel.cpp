#include "phy/channel.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "phy/lqi.hpp"

namespace fourbit::phy {

Channel::Channel(sim::Simulator& sim, PhyConfig phy, PropagationConfig prop,
                 std::unique_ptr<InterferenceModel> interference,
                 sim::Rng rng)
    : sim_(sim),
      phy_(phy),
      propagation_(prop, rng.fork("propagation")),
      interference_(std::move(interference)),
      reception_rng_(rng.fork("reception")),
      lqi_rng_(rng.fork("lqi")),
      ctr_frames_tx_(sim.telemetry().counter("phy", "frames_tx")) {
  FOURBIT_ASSERT(interference_ != nullptr, "interference model required");
}

void Channel::attach(Radio& radio) {
  radios_.push_back(&radio);
  cache_valid_ = false;
}

void Channel::detach(Radio& radio) {
  std::erase(radios_, &radio);
  cache_valid_ = false;
  for (ActiveTx* tx : active_) {
    // Tombstone the departing radio's own in-flight transmission: the
    // carrier is gone, so the frame is aborted and must never be
    // delivered (and tx->sender must never be dereferenced again).
    if (tx->sender == &radio) {
      tx->sender = nullptr;
      tx->cached = false;
    }
    // Drop the departing radio from in-flight receptions.
    std::erase_if(tx->receivers,
                  [&](const PendingRx& rx) { return rx.receiver == &radio; });
  }
}

std::uint64_t Channel::link_key(NodeId a, NodeId b) {
  const std::uint64_t lo = std::min(a.value(), b.value());
  const std::uint64_t hi = std::max(a.value(), b.value());
  return lo << 32 | hi;
}

void Channel::set_link_outage(NodeId a, NodeId b, double loss) {
  link_faults_[link_key(a, b)] = loss;
}

void Channel::clear_link_outage(NodeId a, NodeId b) {
  link_faults_.erase(link_key(a, b));
}

PowerDbm Channel::rx_power(const Radio& from, const Radio& to) {
  const Decibels loss = propagation_.loss(from.id(), from.position(), to.id(),
                                          to.position());
  return from.effective_tx_power() - loss;
}

double Channel::snr_db(const Radio& from, const Radio& to) {
  return (rx_power(from, to) - to.noise_floor()).value();
}

double Channel::mean_prr(const Radio& from, const Radio& to,
                         std::size_t mpdu_bytes) {
  return modulation_.packet_reception_ratio(
      snr_db(from, to), mpdu_bytes + phy_.phy_overhead_bytes);
}

// --- fast-path link cache --------------------------------------------

void Channel::ensure_cache() {
  if (!cache_valid_) rebuild_cache();
}

void Channel::rebuild_cache() {
  n_ = radios_.size();
  for (std::size_t i = 0; i < n_; ++i) radios_[i]->set_channel_index(i);

  gain_dbm_.assign(n_ * n_, -1e9);
  gain_mw_.assign(n_ * n_, 0.0);
  rx_cutoff_dbm_.resize(n_);
  noise_mw_.resize(n_);
  noise_dbm_.resize(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    rx_cutoff_dbm_[r] =
        (radios_[r]->noise_floor() + phy_.reception_cutoff_margin).value();
    // The exact doubles the slow delivery loop computes (noise_mw + 0.0
    // keeps the bit pattern), so the cached-noise SINR is bit-identical.
    noise_mw_[r] = radios_[r]->noise_floor().milliwatts();
    noise_dbm_[r] = PowerDbm::from_milliwatts(noise_mw_[r]).value();
  }
  candidates_.assign(n_, {});
  cca_words_ = (n_ + 63) / 64;
  cca_audible_.assign(n_ * cca_words_, 0);
  prr_bytes_.assign(n_ * n_, 0);
  prr_val_.assign(n_ * n_, 0.0);
  for (std::size_t s = 0; s < n_; ++s) rebuild_row(s);

  // Re-point transmissions already in the air at their new cache slots
  // (a radio attached or detached mid-flight shifts every index).
  for (ActiveTx* tx : active_) {
    tx->cached = tx->sender != nullptr && has_cache_slot(*tx->sender);
    if (tx->cached) {
      tx->sender_index =
          static_cast<std::uint32_t>(tx->sender->channel_index());
    }
    for (PendingRx& rx : tx->receivers) {
      rx.receiver_index =
          static_cast<std::uint32_t>(rx.receiver->channel_index());
    }
  }
  cache_valid_ = true;
}

void Channel::rebuild_row(std::size_t s) {
  Radio& sender = *radios_[s];
  double* row_dbm = &gain_dbm_[s * n_];
  double* row_mw = &gain_mw_[s * n_];
  std::uint64_t* cca_row = &cca_audible_[s * cca_words_];
  std::fill(cca_row, cca_row + cca_words_, 0);
  // New gains invalidate the row's memoized PRRs.
  std::fill(&prr_bytes_[s * n_], &prr_bytes_[s * n_] + n_, 0);
  auto& cands = candidates_[s];
  cands.clear();
  for (std::size_t r = 0; r < n_; ++r) {
    if (r == s) continue;
    // Exactly the slow path's arithmetic: cached doubles must equal what
    // rx_power() would compute, or the paths diverge bitwise.
    const PowerDbm p = rx_power(sender, *radios_[r]);
    row_dbm[r] = p.value();
    row_mw[r] = p.milliwatts();
    if (p.value() >= rx_cutoff_dbm_[r]) {
      cands.push_back(static_cast<std::uint32_t>(r));
    }
    if (p >= phy_.cca_threshold) {
      cca_row[r / 64] |= std::uint64_t{1} << (r % 64);
    }
  }
}

void Channel::on_tx_power_changed(const Radio& radio) {
  // A dirty cache re-derives everything on next use anyway; only a
  // frozen cache holds stale powers for this sender's row.
  if (!cache_valid_ || !has_cache_slot(radio)) return;
  rebuild_row(radio.channel_index());
}

std::size_t Channel::candidate_count(const Radio& sender) {
  ensure_cache();
  if (!has_cache_slot(sender)) return 0;
  return candidates_[sender.channel_index()].size();
}

// --- ActiveTx pool ----------------------------------------------------

Channel::ActiveTx* Channel::acquire_tx() {
  if (!tx_free_.empty()) {
    ActiveTx* tx = tx_free_.back();
    tx_free_.pop_back();
    return tx;
  }
  tx_pool_.push_back(std::make_unique<ActiveTx>());
  return tx_pool_.back().get();
}

void Channel::release_tx(ActiveTx* tx) {
  tx->sender = nullptr;
  tx->cached = false;
  tx->frame.clear();      // keeps capacity: the next frame reuses it
  tx->receivers.clear();  // likewise
  tx_free_.push_back(tx);
}

// --- air interface ----------------------------------------------------

bool Channel::busy_at(const Radio& listener) {
  const sim::Time now = sim_.now();
  bool fast_listener = false;
  std::size_t li = 0;
  if (phy_.use_link_cache) {
    ensure_cache();
    // A detached-but-alive listener has no cache slot; it falls back to
    // the per-pair computation (identical values, just slower).
    if (has_cache_slot(listener)) {
      fast_listener = true;
      li = listener.channel_index();
    }
  }
  for (const ActiveTx* tx : active_) {
    if (tx->sender == &listener || tx->sender == nullptr) continue;
    if (tx->end <= now) continue;
    if (fast_listener && tx->cached) {
      if (cca_audible(tx->sender_index, li)) return true;
    } else if (rx_power(*tx->sender, listener) >= phy_.cca_threshold) {
      return true;
    }
  }
  return false;
}

void Channel::start_transmission(Radio& sender,
                                 std::vector<std::uint8_t> frame,
                                 Radio::TxDoneHandler done) {
  FOURBIT_ASSERT(!sender.transmitting(),
                 "radio cannot start a second concurrent transmission");
  const bool fast = phy_.use_link_cache;
  if (fast) ensure_cache();

  const sim::Time now = sim_.now();
  const sim::Duration airtime = phy_.airtime(frame.size());
  const sim::Time end = now + airtime;
  sender.set_transmitting_until(end);
  ++frames_transmitted_;
  ++*ctr_frames_tx_;
  // kDebug: per-frame events only ring/export when explicitly asked for.
  sim_.telemetry().emit(sim::EventKind::kPhyFrame, sender.id().value(),
                        0xFFFF, static_cast<std::uint16_t>(frame.size()));
  if (tx_observer_) {
    tx_observer_(sender.id(), airtime, sender.effective_tx_power());
  }

  ActiveTx* tx = acquire_tx();
  tx->sender = &sender;
  tx->cached = fast && has_cache_slot(sender);
  tx->sender_index =
      tx->cached ? static_cast<std::uint32_t>(sender.channel_index()) : 0;
  tx->start = now;
  tx->end = end;
  tx->frame = std::move(frame);

  // Enumerate candidate receivers and seed their interference with the
  // transmissions already in the air. The fast path walks the sender's
  // precomputed candidate list (attach order — the same receivers, in
  // the same order, as the slow path's full scan) and reads powers from
  // the gain matrix; a detached-but-alive sender has no cache row and
  // falls back to the slow scan.
  if (tx->cached) {
    const double* row_dbm = &gain_dbm_[tx->sender_index * n_];
    for (const std::uint32_t ri : candidates_[tx->sender_index]) {
      Radio* r = radios_[ri];
      // A sleeping receiver (LPL between channel samples) hears nothing.
      if (!r->listening()) continue;
      // Half-duplex: a radio mid-transmission cannot hear this packet.
      if (r->transmitting_until() > now) continue;

      double interference_mw = 0.0;
      for (const ActiveTx* other : active_) {
        if (other->sender == nullptr || other->end <= now) continue;
        interference_mw +=
            other->cached
                ? gain_mw_[other->sender_index * n_ + ri]
                : rx_power(*other->sender, *r).milliwatts();
      }
      tx->receivers.push_back(
          PendingRx{r, ri, PowerDbm{row_dbm[ri]}, interference_mw});
    }
  } else {
    for (Radio* r : radios_) {
      if (r == &sender) continue;
      if (!r->listening()) continue;
      // (A radio that *starts* transmitting later overlaps too, but CSMA
      // makes that rare and the additive-interference model already
      // punishes it.)
      if (r->transmitting_until() > now) continue;

      const PowerDbm p = rx_power(sender, *r);
      if (p < r->noise_floor() + phy_.reception_cutoff_margin) continue;

      double interference_mw = 0.0;
      for (const ActiveTx* other : active_) {
        if (other->sender == nullptr || other->end <= now) continue;
        interference_mw +=
            fast && other->cached
                ? gain_mw_[other->sender_index * n_ +
                           r->channel_index()]
                : rx_power(*other->sender, *r).milliwatts();
      }
      const std::uint32_t ri =
          fast ? static_cast<std::uint32_t>(r->channel_index()) : 0;
      tx->receivers.push_back(PendingRx{r, ri, p, interference_mw});
    }
  }

  // This transmission interferes with every reception already in flight:
  // the per-receiver accumulators are maintained incrementally, never
  // rescanned.
  for (ActiveTx* other : active_) {
    if (other->end <= now) continue;
    for (PendingRx& rx : other->receivers) {
      if (rx.receiver == &sender) continue;
      rx.interference_mw +=
          tx->cached
              ? gain_mw_[tx->sender_index * n_ + rx.receiver_index]
              : rx_power(sender, *rx.receiver).milliwatts();
    }
  }

  active_.push_back(tx);

  sim_.schedule_at(end, [this, tx, done = std::move(done)]() {
    finish_transmission(tx);
    if (done) done();
  });
}

void Channel::deliver_corrupt(Radio& r, const ActiveTx& tx,
                              const PendingRx& rx, double sinr_db) {
  if (!phy_.deliver_corrupt_frames) return;
  if (sinr_db < phy_.corrupt_delivery_min_sinr_db) return;
  // The radio locked onto the preamble but the payload is damaged: flip
  // a few bytes and deliver with fcs_ok = false. The MAC's FCS check
  // drops it; only the "heard garbage" fact is observable. This is the
  // one path that copies the frame bytes (it must mangle them).
  std::vector<std::uint8_t> mangled = tx.frame;
  const std::size_t flips = 1 + reception_rng_.uniform_int(3);
  for (std::size_t i = 0; i < flips && !mangled.empty(); ++i) {
    const std::size_t pos = reception_rng_.uniform_int(mangled.size());
    mangled[pos] ^= static_cast<std::uint8_t>(
        1 + reception_rng_.uniform_int(255));
  }
  RxInfo info;
  info.rssi = rx.rx_power;
  info.snr_db = (rx.rx_power - r.noise_floor()).value();
  info.lqi = LqiModel::kMinLqi;
  info.white = false;
  info.fcs_ok = false;
  r.deliver(mangled, info);
}

bool Channel::white_bit(const RxInfo& info) const {
  switch (phy_.white_bit_source) {
    case PhyConfig::WhiteBitSource::kLqi:
      return info.lqi >= phy_.white_bit_lqi_threshold;
    case PhyConfig::WhiteBitSource::kSnr:
      return info.snr_db >= phy_.white_bit_snr_threshold_db;
    case PhyConfig::WhiteBitSource::kNever:
      return false;
  }
  return false;
}

void Channel::finish_transmission(ActiveTx* tx) {
  // End-time-ordered removal: each transmission's own finish event takes
  // it out of the active set, so CCA samples never pay a prune scan.
  std::erase(active_, tx);

  // Tombstoned sender (detached mid-flight): the frame died with it.
  if (tx->sender == nullptr) {
    release_tx(tx);
    return;
  }

  const std::size_t frame_bytes = tx->frame.size() + phy_.phy_overhead_bytes;

  // While the cache is frozen, every pending receiver_index is a live
  // slot (rebuild_cache remaps in-flight receptions), so the delivery
  // loop can read the precomputed noise terms instead of re-deriving
  // them per reception.
  const bool cached_noise = phy_.use_link_cache && cache_valid_;

  for (const PendingRx& rx : tx->receivers) {
    Radio& r = *rx.receiver;
    // The receiver may have begun transmitting after this packet started
    // (its CSMA lost the race); half-duplex kills the reception.
    if (r.transmitting_until() > tx->start) continue;

    // Fault injection: a forced outage on this pair drops the frame
    // before the physical model sees it (an obstructed or detuned path
    // leaves no LQI trace, like burst interference).
    if (!link_faults_.empty()) {
      const auto fault = link_faults_.find(link_key(tx->sender->id(), r.id()));
      if (fault != link_faults_.end() &&
          reception_rng_.bernoulli(fault->second)) {
        continue;
      }
    }

    double sinr_db;
    double prr;
    if (cached_noise && rx.interference_mw == 0.0) {
      sinr_db = rx.rx_power.value() - noise_dbm_[rx.receiver_index];
      // Interference-free PRR is a pure function of (pair gain, frame
      // size) — served from the per-pair memo when the sender has a
      // cache row and the row still holds the gain this reception was
      // computed with (a tx-power change mid-flight breaks that tie).
      const std::size_t pi =
          tx->cached ? tx->sender_index * n_ + rx.receiver_index : 0;
      if (tx->cached && gain_dbm_[pi] == rx.rx_power.value()) {
        if (prr_bytes_[pi] == frame_bytes) {
          prr = prr_val_[pi];
        } else {
          prr = modulation_.packet_reception_ratio(sinr_db, frame_bytes);
          prr_bytes_[pi] = static_cast<std::uint32_t>(frame_bytes);
          prr_val_[pi] = prr;
        }
      } else {
        prr = modulation_.packet_reception_ratio(sinr_db, frame_bytes);
      }
    } else {
      const double noise_mw = cached_noise ? noise_mw_[rx.receiver_index]
                                           : r.noise_floor().milliwatts();
      sinr_db =
          rx.rx_power.value() -
          PowerDbm::from_milliwatts(noise_mw + rx.interference_mw).value();
      prr = modulation_.packet_reception_ratio(sinr_db, frame_bytes);
    }
    if (!reception_rng_.bernoulli(prr)) {
      deliver_corrupt(r, *tx, rx, sinr_db);
      continue;
    }

    // External burst interference destroys whole packets independent of
    // chip quality (see header comment).
    const double burst =
        interference_->destroy_probability(r.id(), tx->start, tx->end);
    if (burst > 0.0 && reception_rng_.bernoulli(burst)) {
      deliver_corrupt(r, *tx, rx, sinr_db);
      continue;
    }

    // LQI reflects the thermal-only SNR of this (successfully received)
    // packet.
    const double snr_thermal =
        (rx.rx_power - r.noise_floor()).value();
    RxInfo info;
    info.rssi = rx.rx_power;
    info.snr_db = snr_thermal;
    info.lqi = LqiModel::sample(snr_thermal, lqi_rng_);
    info.white = white_bit(info);
    info.fcs_ok = true;
    r.deliver(tx->frame, info);
  }

  release_tx(tx);
}

}  // namespace fourbit::phy
