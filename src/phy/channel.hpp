// The shared broadcast medium.
//
// Reception model per transmission and candidate receiver:
//   SINR = rx_power / (receiver noise floor + sum of concurrent
//          transmissions' powers at the receiver)
//   PRR  = (1 - BER(SINR))^(8 * frame bytes)           [O-QPSK DSSS]
// then an independent burst-interference process may destroy the packet
// outright (whole-packet loss that leaves no LQI trace). LQI and the
// white bit are computed from the thermal-only SNR of packets that made
// it through — received packets look clean even on a lossy link, which
// is the physical effect the paper's white bit (and MultiHopLQI's
// failure mode) hinges on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "phy/config.hpp"
#include "phy/interference.hpp"
#include "phy/modulation.hpp"
#include "phy/propagation.hpp"
#include "phy/radio.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace fourbit::phy {

class Channel {
 public:
  /// Observer of every frame put on the air (sender, airtime, power) —
  /// the hook energy accounting attaches to.
  using TxObserver =
      std::function<void(NodeId, sim::Duration, PowerDbm)>;

  Channel(sim::Simulator& sim, PhyConfig phy, PropagationConfig prop,
          std::unique_ptr<InterferenceModel> interference, sim::Rng rng);

  void set_tx_observer(TxObserver observer) {
    tx_observer_ = std::move(observer);
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  [[nodiscard]] const PhyConfig& phy() const { return phy_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  void attach(Radio& radio);
  void detach(Radio& radio);

  // --- Fault injection -------------------------------------------------

  /// Forces the (symmetric) link a<->b to drop each frame with
  /// probability `loss` on top of the physical model (1.0 = total
  /// blackout). Replaces any previous outage on the same pair. A random
  /// draw is consumed per frame ONLY on faulted links, so runs without
  /// faults keep their exact RNG sequence.
  void set_link_outage(NodeId a, NodeId b, double loss);

  /// Lifts a forced outage (no-op if none is active on the pair).
  void clear_link_outage(NodeId a, NodeId b);

  [[nodiscard]] std::size_t active_link_outages() const {
    return link_faults_.size();
  }

  /// Called by Radio::transmit. Takes ownership of the frame bytes.
  void start_transmission(Radio& sender, std::vector<std::uint8_t> frame,
                          Radio::TxDoneHandler done);

  /// Energy-detect CCA at `listener`: any concurrent transmission whose
  /// power at the listener exceeds the CCA threshold reads busy.
  [[nodiscard]] bool busy_at(const Radio& listener);

  // --- Analytic helpers (no randomness consumed, no interference) -----

  /// Thermal-only SNR of `from`'s signal at `to`.
  [[nodiscard]] double snr_db(const Radio& from, const Radio& to);

  /// Expected PRR of an isolated `mpdu_bytes` frame from->to, thermal
  /// noise only. Used by topology calibration and tests.
  [[nodiscard]] double mean_prr(const Radio& from, const Radio& to,
                                std::size_t mpdu_bytes);

  /// Total frames put on the air (all types), for overhead accounting.
  [[nodiscard]] std::uint64_t frames_transmitted() const {
    return frames_transmitted_;
  }

 private:
  struct PendingRx {
    Radio* receiver;
    PowerDbm rx_power;
    double interference_mw;  // accumulated concurrent-tx power
  };

  struct ActiveTx {
    Radio* sender;
    sim::Time start;
    sim::Time end;
    std::vector<std::uint8_t> frame;
    std::vector<PendingRx> receivers;
  };

  [[nodiscard]] PowerDbm rx_power(const Radio& from, const Radio& to);
  void finish_transmission(const std::shared_ptr<ActiveTx>& tx);
  void deliver_corrupt(Radio& r, const ActiveTx& tx, const PendingRx& rx,
                       double sinr_db);
  [[nodiscard]] bool white_bit(const RxInfo& info) const;
  void prune_finished();

  sim::Simulator& sim_;
  PhyConfig phy_;
  PropagationModel propagation_;
  OqpskModulation modulation_;
  std::unique_ptr<InterferenceModel> interference_;
  sim::Rng reception_rng_;
  sim::Rng lqi_rng_;
  std::vector<Radio*> radios_;
  std::vector<std::shared_ptr<ActiveTx>> active_;
  std::uint64_t frames_transmitted_ = 0;
  TxObserver tx_observer_;
  // Forced per-link loss (fault injection), keyed on the unordered pair.
  [[nodiscard]] static std::uint32_t link_key(NodeId a, NodeId b);
  std::unordered_map<std::uint32_t, double> link_faults_;
};

}  // namespace fourbit::phy
