// The shared broadcast medium.
//
// Reception model per transmission and candidate receiver:
//   SINR = rx_power / (receiver noise floor + sum of concurrent
//          transmissions' powers at the receiver)
//   PRR  = (1 - BER(SINR))^(8 * frame bytes)           [O-QPSK DSSS]
// then an independent burst-interference process may destroy the packet
// outright (whole-packet loss that leaves no LQI trace). LQI and the
// white bit are computed from the thermal-only SNR of packets that made
// it through — received packets look clean even on a lossy link, which
// is the physical effect the paper's white bit (and MultiHopLQI's
// failure mode) hinges on.
//
// Two execution paths compute that model:
//   * slow path — per-pair propagation-loss hash lookups, every radio
//     scanned per transmission. The reference implementation.
//   * fast path (PhyConfig::use_link_cache, default) — positions, tx
//     powers and shadowing are static per trial, so on topology freeze
//     the channel precomputes a flat N x N rx-power matrix (dBm and
//     milliwatts) plus per-sender culled neighbor lists: reception
//     candidates (pairs above noise_floor + reception_cutoff_margin) and
//     a CCA-audible bitset. start_transmission then iterates O(degree)
//     and busy_at tests precomputed bits. The cached doubles are the
//     exact values the slow path computes, and candidates are visited in
//     the same order, so RNG draw sequences — and therefore all metrics —
//     are bit-identical between paths (tests/channel_fastpath_test.cpp).
//   * sparse fast path (PhyConfig::use_spatial_index on top of the link
//     cache) — the freeze bins radios into a uniform grid whose cell
//     size is a conservative receive-floor radius, then stores per
//     sender only the links above the reception or CCA floor as a
//     compressed row sorted by receiver slot (the same attach order the
//     other paths visit). O(N·degree) memory/freeze cost instead of
//     O(N²); interference from senders outside a receiver's row falls
//     back to the per-pair computation, so sums stay bit-identical
//     (tests/channel_sparse_test.cpp).
//
// Radios occupy stable slots: detach tombstones a slot and attach reuses
// it (repairing only the touched rows/cells when a cache is frozen), so
// fault-plan churn — crash/reboot cycles that destroy and re-create a
// radio — never forces a full O(N²) rebuild. The `phy/cache_rebuilds`
// telemetry counter counts full rebuilds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "phy/config.hpp"
#include "phy/interference.hpp"
#include "phy/modulation.hpp"
#include "phy/propagation.hpp"
#include "phy/radio.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace fourbit::phy {

class Channel {
 public:
  /// Observer of every frame put on the air (sender, airtime, power) —
  /// the hook energy accounting attaches to.
  using TxObserver =
      std::function<void(NodeId, sim::Duration, PowerDbm)>;

  Channel(sim::Simulator& sim, PhyConfig phy, PropagationConfig prop,
          std::unique_ptr<InterferenceModel> interference, sim::Rng rng);

  /// Runs the destructors of the arena-pooled transmissions (the arena
  /// itself never frees; the Simulator must outlive the Channel).
  ~Channel();

  void set_tx_observer(TxObserver observer) {
    tx_observer_ = std::move(observer);
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  [[nodiscard]] const PhyConfig& phy() const { return phy_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Adds `radio` to the medium in a stable slot (a tombstoned slot is
  /// reused before the slot count grows). Asserts the radio's NodeId is
  /// not one of the reserved addresses (0xFFFE/0xFFFF) — the fail-fast
  /// backstop against topologies overflowing the 16-bit id space. With a
  /// frozen cache, slot reuse repairs only the touched rows/cells;
  /// growing past the all-time slot peak still rebuilds.
  void attach(Radio& radio);

  /// Removes `radio` from the medium: it hears nothing from now on, and
  /// any of its own transmissions still in the air are aborted (the
  /// carrier died mid-frame; nothing is delivered). Safe to call with
  /// receptions or the radio's own transmission in flight — in-flight
  /// state is scrubbed/tombstoned, never left dangling. The slot is
  /// tombstoned, not erased, so a frozen cache stays frozen (a frozen
  /// sparse index also drops every stored link to the slot, so a later
  /// reuse at any position starts from a clean column).
  void detach(Radio& radio);

  // --- Fault injection -------------------------------------------------

  /// Forces the (symmetric) link a<->b to drop each frame with
  /// probability `loss` on top of the physical model (1.0 = total
  /// blackout). Replaces any previous outage on the same pair. A random
  /// draw is consumed per frame ONLY on faulted links, so runs without
  /// faults keep their exact RNG sequence.
  void set_link_outage(NodeId a, NodeId b, double loss);

  /// Lifts a forced outage (no-op if none is active on the pair).
  void clear_link_outage(NodeId a, NodeId b);

  [[nodiscard]] std::size_t active_link_outages() const {
    return link_faults_.size();
  }

  /// Called by Radio::transmit. Copies the frame bytes into a pooled
  /// arena-backed buffer before returning, so the caller's buffer is
  /// reusable immediately and steady-state transmission allocates
  /// nothing.
  void start_transmission(Radio& sender,
                          std::span<const std::uint8_t> frame,
                          Radio::TxDoneHandler done);

  /// Energy-detect CCA at `listener`: any concurrent transmission whose
  /// power at the listener exceeds the CCA threshold reads busy.
  [[nodiscard]] bool busy_at(const Radio& listener);

  /// Called by Radio::set_tx_power: re-derives the sender's row of the
  /// link cache (its cached rx powers embed the old tx power).
  void on_tx_power_changed(const Radio& radio);

  // --- Analytic helpers (no randomness consumed, no interference) -----

  /// Thermal-only SNR of `from`'s signal at `to`.
  [[nodiscard]] double snr_db(const Radio& from, const Radio& to);

  /// Expected PRR of an isolated `mpdu_bytes` frame from->to, thermal
  /// noise only. Used by topology calibration and tests.
  [[nodiscard]] double mean_prr(const Radio& from, const Radio& to,
                                std::size_t mpdu_bytes);

  /// Total frames put on the air (all types), for overhead accounting.
  [[nodiscard]] std::uint64_t frames_transmitted() const {
    return frames_transmitted_;
  }

  // --- Introspection (tests, benchmarks) -------------------------------

  /// True once the fast-path link cache has been built and not
  /// invalidated since.
  [[nodiscard]] bool link_cache_frozen() const { return cache_valid_; }

  /// Reception candidates of `sender` (receivers above the cutoff
  /// margin, in attach order). With the fast path on this freezes the
  /// cache on demand; with it off the count is computed per pair —
  /// introspection must not allocate the N² arrays in slow-path configs.
  [[nodiscard]] std::size_t candidate_count(const Radio& sender);

  /// Full cache rebuilds so far (also exported as the telemetry counter
  /// `phy/cache_rebuilds`). Incremental slot repair keeps this flat
  /// through fault-plan churn.
  [[nodiscard]] std::uint64_t cache_rebuilds() const {
    return *ctr_cache_rebuilds_;
  }

  /// Receive-floor radius of the frozen spatial index, in meters (0 when
  /// the sparse path is off or the cache is not frozen).
  [[nodiscard]] double spatial_radius_m() const {
    return cache_valid_ && sparse_mode_ ? radius_m_ : 0.0;
  }

 private:
  struct PendingRx {
    Radio* receiver;
    std::uint32_t receiver_index;  // cache slot; valid while frozen
    PowerDbm rx_power;
    double interference_mw;  // accumulated concurrent-tx power
  };

  using ArenaBytes =
      std::vector<std::uint8_t, sim::ArenaAllocator<std::uint8_t>>;
  using ArenaRxVec = std::vector<PendingRx, sim::ArenaAllocator<PendingRx>>;

  /// One frame in the air. Pooled: acquired in start_transmission,
  /// released when the finish event fires. The object and its frame /
  /// receiver buffers all live in the Simulator's per-trial arena and
  /// keep their capacity across reuse, so steady-state transmission
  /// performs zero allocator round trips.
  struct ActiveTx {
    explicit ActiveTx(sim::Arena& arena)
        : frame(sim::ArenaAllocator<std::uint8_t>{arena}),
          receivers(sim::ArenaAllocator<PendingRx>{arena}) {}
    Radio* sender = nullptr;  // nullptr = tombstone (sender detached)
    std::uint32_t sender_index = 0;
    bool cached = false;  // sender had a cache slot when this tx started
    sim::Time start;
    sim::Time end;
    ArenaBytes frame;
    ArenaRxVec receivers;
  };

  [[nodiscard]] PowerDbm rx_power(const Radio& from, const Radio& to);
  /// Same value bitwise, but skips the propagation memo — used by cache
  /// rebuilds so freeze-time sweeps don't grow the memo by O(N·degree).
  [[nodiscard]] PowerDbm rx_power_uncached(const Radio& from,
                                           const Radio& to) const;
  void finish_transmission(ActiveTx* tx);
  void deliver_corrupt(Radio& r, const ActiveTx& tx, const PendingRx& rx,
                       double sinr_db);
  [[nodiscard]] bool white_bit(const RxInfo& info) const;

  // --- fast-path link cache --------------------------------------------
  void ensure_cache();
  void rebuild_cache();
  void rebuild_row(std::size_t s);
  /// Incremental repair when attach reuses tombstoned slot `slot` while
  /// a cache is frozen: re-derives the slot's own row plus every other
  /// sender's entry for it (dense: one column walk; sparse: only senders
  /// in the 3x3 cell neighborhood of the new radio's position — links
  /// held near the OLD position were already scrubbed at detach). A
  /// reused slot the frozen radius cannot vouch for — louder tx power
  /// than `max_tx_dbm_`, reception cutoff below `min_floor_dbm_`, or a
  /// position off the grid — invalidates the sparse cache instead.
  void repair_reused_slot(std::size_t slot);
  [[nodiscard]] bool cca_audible(std::size_t sender_idx,
                                 std::size_t listener_idx) const {
    return (cca_audible_[sender_idx * cca_words_ + listener_idx / 64] >>
            (listener_idx % 64)) &
           1u;
  }
  /// True when `radio` currently owns cache slot `radio.channel_index()`
  /// (false for radios that were detached but kept transmitting).
  [[nodiscard]] bool has_cache_slot(const Radio& radio) const {
    return radio.channel_index() < radios_.size() &&
           radios_[radio.channel_index()] == &radio;
  }

  // --- sparse spatial index --------------------------------------------
  /// One stored link of a sender's compressed row: a pair above the
  /// reception cutoff (candidate) and/or the CCA threshold (audible).
  /// Rows are sorted by receiver slot — the attach order every path
  /// visits — and carry the same memoized per-pair PRR the dense matrix
  /// keeps.
  struct SparseLink {
    std::uint32_t receiver = 0;   // slot index, ascending within a row
    std::uint32_t prr_bytes = 0;  // PRR memo: last frame size (0 = empty)
    double gain_dbm = 0.0;
    double gain_mw = 0.0;
    double prr_val = 0.0;
    bool candidate = false;
    bool audible = false;
  };

  [[nodiscard]] double receive_floor_radius(double max_tx_dbm,
                                            double floor_dbm) const;
  void build_grid();
  [[nodiscard]] std::size_t cell_of(const Position& p) const;
  [[nodiscard]] bool grid_covers(const Position& p) const;
  /// Applies `fn` to every live slot in the 3x3 cell neighborhood of
  /// `cell`. Cell size >= the receive-floor radius, so this visits
  /// every slot that can be above any culling floor with a radio there.
  template <typename Fn>
  void for_each_neighbor_slot(std::size_t cell, Fn&& fn) const {
    const std::size_t cx = cell % grid_cols_;
    const std::size_t cy = cell / grid_cols_;
    for (std::size_t gy = cy == 0 ? 0 : cy - 1;
         gy <= std::min(cy + 1, grid_rows_ - 1); ++gy) {
      for (std::size_t gx = cx == 0 ? 0 : cx - 1;
           gx <= std::min(cx + 1, grid_cols_ - 1); ++gx) {
        for (const std::uint32_t s : cells_[gy * grid_cols_ + gx]) fn(s);
      }
    }
  }
  void rebuild_sparse_row(std::size_t s);
  /// Erases every stored link to receiver slot `slot` from the rows of
  /// senders in the 3x3 neighborhood of `cell` (the slot's cell when it
  /// was live — row construction is neighborhood-symmetric, so those are
  /// the only rows that can hold one). Called at detach so a later slot
  /// reuse at a different position cannot inherit stale links from
  /// senders near the old occupant.
  void scrub_sparse_links_to(std::size_t slot, std::size_t cell);
  /// Recomputes sender `s`'s stored link to receiver slot `r` from the
  /// propagation model: inserts, updates or erases the row entry so it
  /// again reflects the live pair.
  void repair_sparse_link(std::size_t s, std::size_t r);
  [[nodiscard]] const SparseLink* find_link(std::size_t sender,
                                            std::uint32_t receiver) const;
  [[nodiscard]] SparseLink* find_link(std::size_t sender,
                                      std::uint32_t receiver);
  /// Interference term of active transmission `other` at receiver `r`
  /// (slot `ri`): cached gain when available, per-pair fallback
  /// otherwise — same double either way.
  [[nodiscard]] double interference_term(const ActiveTx& other,
                                         std::uint32_t ri, Radio& r);

  // --- ActiveTx pool ----------------------------------------------------
  [[nodiscard]] ActiveTx* acquire_tx();
  void release_tx(ActiveTx* tx);

  sim::Simulator& sim_;
  PhyConfig phy_;
  PropagationModel propagation_;
  OqpskModulation modulation_;
  std::unique_ptr<InterferenceModel> interference_;
  sim::Rng reception_rng_;
  sim::Rng lqi_rng_;
  // Slot-stable radio table: detach leaves a nullptr tombstone and
  // pushes the slot onto free_slots_; attach pops it (LIFO —
  // deterministic given the event order). Slot order therefore IS the
  // attach order all three execution paths visit receivers in.
  std::vector<Radio*> radios_;
  std::vector<std::size_t> free_slots_;

  // Transmissions currently in the air, in start order (interference
  // sums iterate this, so the order is part of the determinism
  // contract). Entries are removed by their own finish event — in
  // end-time order, driven by the event queue — so busy_at never pays a
  // prune scan.
  std::vector<ActiveTx*> active_;
  // Every ActiveTx ever created, arena-allocated; ~Channel runs their
  // destructors (the arena itself never frees).
  std::vector<ActiveTx*> tx_pool_;
  std::vector<ActiveTx*> tx_free_;  // recycled objects

  // Batch-kernel scratch (PhyConfig::use_batch_kernels): candidate
  // gather arrays for start_transmission and SINR/PRR arrays for the
  // delivery pass. Members so their capacity persists across calls;
  // the two sets are disjoint because a delivery handler may
  // synchronously start a new transmission.
  std::vector<Radio*> scratch_rx_;
  std::vector<std::uint32_t> scratch_slot_;
  std::vector<double> scratch_gain_dbm_;
  std::vector<double> scratch_interf_;
  std::vector<double> scratch_sinr_;
  std::vector<double> scratch_prr_;
  std::vector<std::uint32_t> scratch_miss_;  // receiver rows needing a PRR
  std::vector<double> scratch_miss_sinr_;
  std::vector<double> scratch_miss_prr_;
  // Memo write-back slots for batch misses: dense pair index (or npos),
  // sparse link pointer (or nullptr).
  std::vector<std::size_t> scratch_miss_pi_;
  std::vector<SparseLink*> scratch_miss_link_;
  std::vector<std::uint8_t> corrupt_scratch_;  // deliver_corrupt buffer

  // Link cache (fast path): row-major [sender][receiver] rx power, both
  // in dBm (thresholds, SINR) and milliwatts (interference sums; cached
  // so the fast path skips the pow() the slow path pays per term —
  // cached value == slow-path value bitwise). Rebuilt lazily after
  // attach/detach; one row re-derived on a tx-power change.
  bool cache_valid_ = false;
  bool sparse_mode_ = false;   // frozen cache is the spatial index
  std::size_t n_ = 0;          // slots covered by the frozen cache
  std::size_t cca_words_ = 0;  // 64-bit words per CCA bitset row
  std::vector<double> gain_dbm_;
  std::vector<double> gain_mw_;
  std::vector<double> rx_cutoff_dbm_;  // per-receiver reception cutoff
  // Per-receiver noise floor in mW, and that floor round-tripped through
  // from_milliwatts (== the SINR denominator when interference is zero):
  // spares the delivery loop a pow10 and, usually, a log10 per reception.
  std::vector<double> noise_mw_;
  std::vector<double> noise_dbm_;
  // Per-pair PRR memo for interference-free receptions (the common
  // case). Thermal SINR is fixed per pair, so PRR depends only on the
  // frame size; each slot remembers the last size seen. Entries are only
  // trusted while the pair's gain_dbm_ still equals the rx power the
  // reception captured (a mid-flight tx-power change re-derives the row,
  // and in-flight frames keep their old power). Zeroed size = empty.
  std::vector<std::uint32_t> prr_bytes_;
  std::vector<double> prr_val_;
  std::vector<std::vector<std::uint32_t>> candidates_;  // per-sender
  std::vector<std::uint64_t> cca_audible_;

  // Sparse spatial index (use_spatial_index): per-sender compressed
  // rows (see SparseLink) plus a uniform cell grid over live positions.
  // Cell size >= the receive-floor radius, so a 3x3 neighborhood scan
  // covers every pair the dense path would keep (up to the documented
  // shadowing headroom). The dense matrices above stay empty in this
  // mode and vice versa.
  std::vector<std::vector<SparseLink>> sparse_rows_;
  std::vector<std::vector<std::uint32_t>> cells_;  // live slots per cell
  static constexpr std::uint32_t kNoCell = 0xFFFFFFFFu;
  std::vector<std::uint32_t> slot_cell_;  // per-slot cell id (or kNoCell)
  double radius_m_ = 0.0;                 // receive-floor radius
  double cell_size_m_ = 0.0;
  double origin_x_ = 0.0, origin_y_ = 0.0;
  std::size_t grid_cols_ = 0, grid_rows_ = 0;
  // Strongest effective tx power the frozen radius was derived from; a
  // set_tx_power or attach above it voids the cull guarantee and forces
  // a full rebuild.
  double max_tx_dbm_ = 0.0;
  // Weakest culling floor (min over live radios' reception cutoffs and
  // the CCA threshold) the frozen radius was derived from; an attach
  // with a more sensitive receiver voids the cull guarantee likewise.
  double min_floor_dbm_ = 0.0;

  std::uint64_t frames_transmitted_ = 0;
  std::uint64_t* ctr_frames_tx_ = nullptr;  // telemetry registry slot
  std::uint64_t* ctr_cache_rebuilds_ = nullptr;
  TxObserver tx_observer_;
  // Forced per-link loss (fault injection), keyed on the unordered pair.
  [[nodiscard]] static std::uint64_t link_key(NodeId a, NodeId b);
  std::unordered_map<std::uint64_t, double> link_faults_;
};

}  // namespace fourbit::phy
