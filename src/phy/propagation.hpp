// Log-distance path loss with static log-normal shadowing and a
// directional asymmetry component.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "phy/config.hpp"
#include "sim/rng.hpp"

namespace fourbit::phy {

/// Computes (and caches) the loss between node antennas.
///
/// loss(a->b) = ref_loss + 10 n log10(d) + S(a,b) + D(a->b)
/// where S is a symmetric per-pair shadowing draw and D a smaller
/// per-direction draw. Both are deterministic functions of (seed, pair),
/// so the radio environment is static across a run — matching the static
/// testbeds of the paper — and identical across protocols under test.
class PropagationModel {
 public:
  PropagationModel(PropagationConfig config, sim::Rng rng)
      : config_(config), rng_(rng) {}

  [[nodiscard]] Decibels loss(NodeId from, const Position& from_pos,
                              NodeId to, const Position& to_pos);

  /// Same value as loss() — bit-identical, it is a pure function of
  /// (seed, pair, positions) — but without touching the per-pair memo.
  /// Cache rebuilds at large N use this so freeze-time sweeps over
  /// candidate cells don't permanently grow the memo by O(N·degree).
  [[nodiscard]] Decibels loss_uncached(NodeId from, const Position& from_pos,
                                       NodeId to,
                                       const Position& to_pos) const;

  [[nodiscard]] const PropagationConfig& config() const { return config_; }

 private:
  [[nodiscard]] double compute(NodeId from, const Position& from_pos,
                               NodeId to, const Position& to_pos) const;
  [[nodiscard]] static std::uint32_t pair_key(NodeId a, NodeId b) {
    return static_cast<std::uint32_t>(a.value()) << 16 | b.value();
  }

  PropagationConfig config_;
  sim::Rng rng_;
  std::unordered_map<std::uint32_t, double> cache_;
};

}  // namespace fourbit::phy
