// CC2420-style Link Quality Indication synthesis.
#pragma once

#include "sim/rng.hpp"

namespace fourbit::phy {

/// Maps the SNR of a *received* packet to an LQI reading.
///
/// The CC2420 computes LQI from chip correlation over the first 8 symbols:
/// it saturates near 110 once the channel is comfortably above the decode
/// threshold and falls toward ~50 at sensitivity. Crucially it is only
/// defined for packets that were received — packets destroyed outright
/// (collisions, interference bursts) produce no reading at all, which is
/// exactly the blindness Figure 3 of the paper demonstrates.
class LqiModel {
 public:
  static constexpr int kMinLqi = 40;
  static constexpr int kMaxLqi = 110;

  /// Expected LQI at a given SNR (logistic ramp between 50 and 110).
  [[nodiscard]] static double mean_lqi(double snr_db);

  /// One noisy reading (gaussian measurement noise, clamped to range).
  [[nodiscard]] static int sample(double snr_db, sim::Rng& rng);
};

}  // namespace fourbit::phy
