// Physical-layer configuration (802.15.4 / CC2420-class defaults).
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "sim/time.hpp"

namespace fourbit::phy {

/// Radio timing/packet parameters. Defaults model the CC2420: 250 kbps
/// O-QPSK, 6 bytes of PHY preamble+SFD+length, 192 us RX/TX turnaround.
struct PhyConfig {
  double bitrate_bps = 250000.0;
  std::size_t phy_overhead_bytes = 6;

  /// Thermal noise floor at the antenna (2 MHz channel + typical NF).
  PowerDbm noise_floor{-105.0};

  /// Clear-channel-assessment threshold: energy above this reads "busy".
  PowerDbm cca_threshold{-77.0};

  /// Received packets weaker than noise_floor + this margin are not even
  /// drawn against the PRR curve (saves work; PRR there is ~0 anyway).
  Decibels reception_cutoff_margin{-8.0};

  /// LQI value at or above which the PHY sets the white bit. 105 matches
  /// the conventional CC2420 "good packet" threshold.
  int white_bit_lqi_threshold = 105;

  /// Where the white bit comes from. The paper: radios with LQI/chip
  /// correlation use it directly; radios that only report signal and
  /// noise can threshold the SNR instead ("using a threshold derived
  /// from the signal-to-noise ratio / bit error rate curve"); radios
  /// with neither never set the bit.
  enum class WhiteBitSource { kLqi, kSnr, kNever };
  WhiteBitSource white_bit_source = WhiteBitSource::kLqi;
  double white_bit_snr_threshold_db = 3.0;

  /// Frames that fail decoding are still *heard* when their SINR is above
  /// this margin: the radio locks onto the preamble and hands up a frame
  /// whose FCS check then fails at the MAC. Below it, nothing is
  /// delivered at all.
  double corrupt_delivery_min_sinr_db = -3.0;
  bool deliver_corrupt_frames = true;

  /// RX/TX turnaround before a synchronous ACK goes on air.
  sim::Duration turnaround = sim::Duration::from_us(192);

  /// Channel fast path: on topology freeze, precompute the N x N per-pair
  /// rx-power matrix and per-sender neighbor lists (reception candidates
  /// and CCA-audible sets), so start_transmission and busy_at touch only
  /// reachable neighbors instead of every radio. Produces bit-identical
  /// results to the slow path (same doubles, same RNG draw order); the
  /// slow path survives as the reference for the determinism tests.
  bool use_link_cache = true;

  /// Batch kernels (effective with use_link_cache): start_transmission
  /// gathers candidate slots/gains into contiguous scratch arrays and
  /// runs interference accumulation and SNR->PRR as fixed-order
  /// structure-of-arrays loops instead of per-receiver scalar code.
  /// Summation order and every double are bitwise identical to the
  /// scalar path (the per-receiver interference sum still adds terms in
  /// active-transmission order, and PRR goes through the same table and
  /// pow), so flipping this changes speed, never results — enforced by
  /// the delivery-digest tests.
  bool use_batch_kernels = true;

  /// Sparse spatial channel (requires use_link_cache): instead of the
  /// dense N x N matrices, the freeze builds a uniform grid over node
  /// positions with cell size equal to a receive-floor radius — the
  /// distance at which deterministic path loss alone puts the strongest
  /// attached transmitter `spatial_headroom_sigmas` standard deviations
  /// of shadowing below both the weakest receiver's reception cutoff and
  /// the CCA threshold — and stores per-sender compressed rows holding
  /// only pairs above one of those floors. Memory and freeze cost scale
  /// O(N·degree) instead of O(N²), opening 10k+ node topologies; the
  /// dense path remains the bit-exactness oracle at small N (candidate
  /// rows are visited in the same attach-slot order, so RNG sequences
  /// and all metrics match bitwise as long as no shadowing draw exceeds
  /// the headroom — see DESIGN.md §8.8).
  bool use_spatial_index = false;

  /// Shadowing headroom, in combined standard deviations
  /// (sqrt(shadowing² + asymmetry²)), added to the receive-floor radius.
  /// 5σ puts the chance of a candidate link escaping the spatial cull
  /// below ~3e-7 per pair; raise it for strict bit-exactness at very
  /// large N, lower it to trade fidelity for memory.
  double spatial_headroom_sigmas = 5.0;

  [[nodiscard]] sim::Duration airtime(std::size_t mpdu_bytes) const {
    const double bits =
        static_cast<double>((phy_overhead_bytes + mpdu_bytes) * 8);
    return sim::Duration::from_seconds(bits / bitrate_bps);
  }
};

/// Propagation-environment configuration (log-distance + shadowing).
struct PropagationConfig {
  /// Path loss at the 1 m reference distance, 2.4 GHz free space.
  Decibels reference_loss{40.2};

  /// Path-loss exponent; ~3 models the cluttered indoor testbeds.
  double exponent = 3.0;

  /// Std-dev of the static per-pair log-normal shadowing (dB).
  double shadowing_sigma_db = 3.6;

  /// Std-dev of the *directional* shadowing component (dB) — one draw per
  /// ordered pair, modelling link asymmetry beyond hardware variation.
  double asymmetry_sigma_db = 1.0;
};

/// Per-node manufacturing spread (Zuniga & Krishnamachari's hardware
/// variation): TX power and receiver noise figure offsets.
struct HardwareVariationConfig {
  double tx_offset_sigma_db = 1.2;
  double noise_figure_sigma_db = 1.2;
};

}  // namespace fourbit::phy
