// Receiver-side burst interference models.
//
// Real 2.4 GHz deployments see bursty external interference (802.11
// traffic, microwave ovens) that destroys whole packets at a receiver
// without degrading the measured chip quality of the packets that do get
// through. This is the mechanism behind the bimodal links of Srinivasan
// et al. and the LQI blindness of the paper's Figure 3.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace fourbit::phy {

/// Query interface: probability that burst interference at receiver `rx`
/// destroys a packet occupying [start, end]. Queries at a given node are
/// made in nondecreasing time order (simulation time is monotone).
class InterferenceModel {
 public:
  virtual ~InterferenceModel() = default;

  [[nodiscard]] virtual double destroy_probability(NodeId rx,
                                                   sim::Time start,
                                                   sim::Time end) = 0;
};

/// No external interference at all.
class NullInterference final : public InterferenceModel {
 public:
  [[nodiscard]] double destroy_probability(NodeId, sim::Time,
                                           sim::Time) override {
    return 0.0;
  }
};

/// Two-state (good/bad) continuous-time Gilbert-Elliott process per node.
/// Dwell times are exponential; while a node is in the bad state, each
/// packet at it is destroyed with `bad_loss_probability`.
class GilbertElliottInterference final : public InterferenceModel {
 public:
  struct Config {
    /// Mean time spent interference-free.
    sim::Duration mean_good = sim::Duration::from_seconds(600.0);
    /// Mean burst length.
    sim::Duration mean_bad = sim::Duration::from_seconds(45.0);
    /// Packet destruction probability while in the bad state.
    double bad_loss_probability = 0.8;
    /// Fraction of nodes subject to bursts at all (interference is
    /// spatially localized; not every node sits near an interferer).
    double affected_fraction = 0.45;

    /// Node never subject to bursts (typically the collection root:
    /// basestations are deliberately sited away from interferers).
    NodeId exempt = kInvalidNodeId;
  };

  GilbertElliottInterference(Config config, sim::Rng rng);

  [[nodiscard]] double destroy_probability(NodeId rx, sim::Time start,
                                           sim::Time end) override;

  /// For tests: whether the node is in the bad state at `t` (advances the
  /// node's chain to `t`).
  [[nodiscard]] bool in_bad_state(NodeId rx, sim::Time t);

 private:
  struct NodeState {
    bool affected = false;
    bool bad = false;
    sim::Time state_until;
    sim::Rng rng;
  };

  NodeState& state_for(NodeId rx);
  void advance(NodeState& st, sim::Time t);

  Config config_;
  sim::Rng rng_;
  std::unordered_map<NodeId, NodeState> nodes_;
};

/// Deterministic interference windows (used to script the Figure 3
/// scenario: a burst between hours 4 and 6 of a 12-hour run).
class ScheduledBurstInterference final : public InterferenceModel {
 public:
  struct Burst {
    NodeId victim;      // kBroadcastId = every node
    sim::Time start;
    sim::Time end;
    double loss_probability;
  };

  explicit ScheduledBurstInterference(std::vector<Burst> bursts)
      : bursts_(std::move(bursts)) {}

  [[nodiscard]] double destroy_probability(NodeId rx, sim::Time start,
                                           sim::Time end) override {
    double p = 0.0;
    for (const auto& b : bursts_) {
      const bool applies = b.victim == kBroadcastId || b.victim == rx;
      const bool overlaps = start < b.end && end > b.start;
      if (applies && overlaps && b.loss_probability > p) {
        p = b.loss_probability;
      }
    }
    return p;
  }

 private:
  std::vector<Burst> bursts_;
};

}  // namespace fourbit::phy
