#include "phy/modulation.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace fourbit::phy {
namespace {

double binomial(int n, int k) {
  double r = 1.0;
  for (int i = 1; i <= k; ++i) {
    r *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return r;
}

}  // namespace

double OqpskModulation::exact_bit_error_rate(double sinr_db) {
  // IEEE 802.15.4 2.4 GHz PHY (16-ary orthogonal signalling over 32-chip
  // sequences), symbol-error union bound converted to BER:
  //   Pb = 8/15 * 1/16 * sum_{k=2}^{16} (-1)^k C(16,k) exp(20*snr*(1/k - 1))
  const double snr_lin = std::pow(10.0, sinr_db / 10.0);
  double sum = 0.0;
  for (int k = 2; k <= 16; ++k) {
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    sum += sign * binomial(16, k) *
           std::exp(20.0 * snr_lin * (1.0 / static_cast<double>(k) - 1.0));
  }
  const double pb = (8.0 / 15.0) * (1.0 / 16.0) * sum;
  // The union bound can exceed valid probability at very low SNR; clamp.
  if (pb < 0.0) return 0.0;
  if (pb > 0.5) return 0.5;
  return pb;
}

OqpskModulation::OqpskModulation() {
  const auto points =
      static_cast<std::size_t>((kMaxSnrDb - kMinSnrDb) / kStepDb) + 2;
  table_.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double snr = kMinSnrDb + static_cast<double>(i) * kStepDb;
    table_.push_back(exact_bit_error_rate(snr));
  }
}

double OqpskModulation::bit_error_rate(double sinr_db) const {
  if (sinr_db <= kMinSnrDb) return table_.front();
  if (sinr_db >= kMaxSnrDb) return table_.back();
  const double idx = (sinr_db - kMinSnrDb) / kStepDb;
  const auto lo = static_cast<std::size_t>(idx);
  const double frac = idx - static_cast<double>(lo);
  return table_[lo] * (1.0 - frac) + table_[lo + 1] * frac;
}

double OqpskModulation::floor_prr(std::size_t frame_bytes, double base,
                                  double bits) const {
  const auto it = std::lower_bound(
      floor_prr_.begin(), floor_prr_.end(), frame_bytes,
      [](const std::pair<std::size_t, double>& e, std::size_t b) {
        return e.first < b;
      });
  if (it != floor_prr_.end() && it->first == frame_bytes) return it->second;
  const double prr = std::pow(base, bits);
  // Capped: a workload with pathologically many frame sizes just pays
  // the pow instead of growing (and linearly re-scanning) forever.
  if (floor_prr_.size() < kFloorMemoCap) {
    floor_prr_.emplace(it, frame_bytes, prr);
  }
  return prr;
}

double OqpskModulation::prr_from_ber(double ber, double sinr_db,
                                     std::size_t frame_bytes) const {
  if (ber <= 0.0) return 1.0;
  const double base = 1.0 - ber;
  // High SNR: the BER underflows past double precision, the base rounds
  // to exactly 1.0 and pow(1.0, bits) == 1.0 — skip the pow. This is the
  // common case for in-range links and bit-identical to computing it.
  if (base == 1.0) return 1.0;
  const double bits = static_cast<double>(frame_bytes * 8);
  // Low SNR clamp: every sub-threshold candidate shares one BER, so the
  // pow depends only on the frame size — serve it from the memo.
  if (sinr_db <= kMinSnrDb) return floor_prr(frame_bytes, base, bits);
  return std::pow(base, bits);
}

double OqpskModulation::packet_reception_ratio(
    double sinr_db, std::size_t frame_bytes) const {
  FOURBIT_ASSERT(frame_bytes > 0, "frame must have at least one byte");
  return prr_from_ber(bit_error_rate(sinr_db), sinr_db, frame_bytes);
}

void OqpskModulation::prr_batch(std::span<const double> sinr_db,
                                std::size_t frame_bytes,
                                std::span<double> out) const {
  FOURBIT_ASSERT(frame_bytes > 0, "frame must have at least one byte");
  FOURBIT_ASSERT(out.size() >= sinr_db.size(), "prr_batch output too small");
  const std::size_t n = sinr_db.size();
  // Pass 1: table interpolation over the contiguous span, fixed order.
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = bit_error_rate(sinr_db[i]);
  }
  // Pass 2: BER -> PRR finalization through the exact scalar helper, so
  // every output double is bitwise identical to the per-element path.
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = prr_from_ber(out[i], sinr_db[i], frame_bytes);
  }
}

}  // namespace fourbit::phy
