#include "phy/lqi.hpp"

#include <algorithm>
#include <cmath>

namespace fourbit::phy {

double LqiModel::mean_lqi(double snr_db) {
  // Logistic ramp: ~50 below the decode threshold, ~110 a few dB above it.
  // Midpoint 1 dB, slope 1.2 dB — tuned so links with PRR in the 0.5-0.9
  // "gray zone" still frequently read LQI > 100 on their received packets.
  return 50.0 + 60.0 / (1.0 + std::exp(-(snr_db - 1.0) / 1.2));
}

int LqiModel::sample(double snr_db, sim::Rng& rng) {
  const double noisy = mean_lqi(snr_db) + rng.normal(0.0, 3.0);
  const double clamped =
      std::clamp(noisy, static_cast<double>(kMinLqi),
                 static_cast<double>(kMaxLqi));
  return static_cast<int>(std::lround(clamped));
}

}  // namespace fourbit::phy
