// A node's radio: the attachment point between a protocol stack and the
// shared channel.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "phy/hardware.hpp"
#include "sim/time.hpp"

namespace fourbit::phy {

class Channel;

/// Physical-layer metadata delivered alongside every received frame.
///
/// `white` is the paper's physical-layer bit: set iff every symbol of the
/// packet had a very low probability of decoding error (here: the LQI
/// reading cleared the configured threshold).
struct RxInfo {
  PowerDbm rssi;
  double snr_db = 0.0;
  int lqi = 0;
  bool white = false;

  /// False for frames the radio heard but could not decode cleanly; the
  /// MAC verifies the frame check sequence and drops them.
  bool fcs_ok = true;
};

/// Half-duplex radio. Owns no protocol state; the MAC drives it.
class Radio {
 public:
  using RxHandler =
      std::function<void(std::span<const std::uint8_t>, const RxInfo&)>;
  using TxDoneHandler = std::function<void()>;

  /// Registers with `channel`; the channel must outlive the radio.
  Radio(Channel& channel, NodeId id, Position position, HardwareProfile hw,
        PowerDbm tx_power);
  ~Radio();

  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const Position& position() const { return position_; }
  [[nodiscard]] const HardwareProfile& hardware() const { return hardware_; }

  [[nodiscard]] PowerDbm tx_power() const { return tx_power_; }

  /// Changing the power invalidates this node's row of the channel's
  /// link cache (the cached rx powers embed the sender's tx power).
  void set_tx_power(PowerDbm p);

  /// Configured power plus this unit's manufacturing offset.
  [[nodiscard]] PowerDbm effective_tx_power() const {
    return tx_power_ + hardware_.tx_power_offset;
  }

  /// This receiver's effective noise floor (channel floor + noise figure).
  [[nodiscard]] PowerDbm noise_floor() const;

  void set_rx_handler(RxHandler h) { rx_handler_ = std::move(h); }

  /// Energy-detect CCA as used by CSMA.
  [[nodiscard]] bool channel_clear() const;

  [[nodiscard]] bool transmitting() const;

  /// Receiver duty cycling: a radio that is not listening hears nothing
  /// (low-power listening turns the receiver off between channel
  /// samples). Transmission is always possible; real radios wake to send.
  void set_listening(bool on) { listening_ = on; }
  [[nodiscard]] bool listening() const { return listening_; }

  /// Puts `frame` (the MPDU) on the air. Must not be called while already
  /// transmitting. `done` fires when the last bit leaves the antenna.
  /// The bytes are copied into the channel's pooled (arena-backed)
  /// buffer before this returns, so the caller may reuse `frame`
  /// immediately — MACs keep one encode buffer and send from it every
  /// time, which is what makes the steady-state tx path allocation-free.
  void transmit(std::span<const std::uint8_t> frame, TxDoneHandler done);
  void transmit(const std::vector<std::uint8_t>& frame, TxDoneHandler done);

  // --- Channel-side interface ---------------------------------------

  void deliver(std::span<const std::uint8_t> frame, const RxInfo& info) {
    if (rx_handler_) rx_handler_(frame, info);
  }

  void set_transmitting_until(sim::Time t) { transmitting_until_ = t; }
  [[nodiscard]] sim::Time transmitting_until() const {
    return transmitting_until_;
  }

  /// Stable slot of this radio in the channel's radio table, assigned at
  /// attach (tombstoned slots are reused) and fixed for the radio's
  /// lifetime. Owned by the channel; meaningless after detach.
  void set_channel_index(std::size_t i) { channel_index_ = i; }
  [[nodiscard]] std::size_t channel_index() const { return channel_index_; }

 private:
  Channel& channel_;
  NodeId id_;
  Position position_;
  HardwareProfile hardware_;
  PowerDbm tx_power_;
  RxHandler rx_handler_;
  sim::Time transmitting_until_;
  std::size_t channel_index_ = 0;
  bool listening_ = true;
};

}  // namespace fourbit::phy
