// Fixed-capacity counting window used by the link-estimator math.
#pragma once

#include <cstddef>

#include "common/assert.hpp"

namespace fourbit {

/// Counts successes/failures until `window` events have accumulated, then
/// reports a sample and resets. This is the "every k packets" windowing of
/// Woo et al. that both the beacon and data estimators use.
class CountingWindow {
 public:
  explicit CountingWindow(std::size_t window) : window_(window) {
    FOURBIT_ASSERT(window > 0, "window size must be positive");
  }

  /// Records one event. Returns true when the window just filled; the
  /// caller then reads success_fraction()/successes() and calls reset().
  bool record(bool success) {
    if (success) {
      ++successes_;
    }
    ++total_;
    return total_ >= window_;
  }

  [[nodiscard]] std::size_t successes() const { return successes_; }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t window() const { return window_; }

  [[nodiscard]] double success_fraction() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(successes_) /
                             static_cast<double>(total_);
  }

  void reset() {
    successes_ = 0;
    total_ = 0;
  }

 private:
  std::size_t window_;
  std::size_t successes_ = 0;
  std::size_t total_ = 0;
};

/// Exponentially weighted moving average with explicit "unset" start: the
/// first sample initializes the average instead of being blended with a
/// meaningless default.
class Ewma {
 public:
  /// `history_weight` is the weight of the previous average in [0,1).
  explicit Ewma(double history_weight) : history_weight_(history_weight) {
    FOURBIT_ASSERT(history_weight >= 0.0 && history_weight < 1.0,
                   "EWMA history weight must be in [0,1)");
  }

  void update(double sample) {
    if (!has_value_) {
      value_ = sample;
      has_value_ = true;
      return;
    }
    value_ = history_weight_ * value_ + (1.0 - history_weight_) * sample;
  }

  [[nodiscard]] bool has_value() const { return has_value_; }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] double history_weight() const { return history_weight_; }

  /// Force-sets the average (used to seed a link from its first beacon).
  void seed(double value) {
    value_ = value;
    has_value_ = true;
  }

  void clear() {
    value_ = 0.0;
    has_value_ = false;
  }

 private:
  double history_weight_;
  double value_ = 0.0;
  bool has_value_ = false;
};

}  // namespace fourbit
