// Bounded big-endian byte readers/writers for on-air frame formats.
//
// Frames are serialized to real bytes (not passed as C++ objects) so that
// header sizes participate in airtime, and so encode/decode round-trips
// are testable exactly as they would be on hardware.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace fourbit {

/// Appends big-endian fields to a byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v & 0xFFFF));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v & 0xFFFFFFFF));
  }

  /// Doubles travel as their IEEE-754 bit pattern: the round trip is
  /// bit-exact, which the trial journal's resume contract relies on.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Reads big-endian fields from a byte span; `ok()` reports truncation.
///
/// A truncated read never throws (a radio can hand the stack garbage);
/// it returns zeros and latches `ok() == false` so callers drop the frame.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  [[nodiscard]] std::uint8_t u8() {
    if (!check(1)) return 0;
    return data_[pos_++];
  }

  [[nodiscard]] std::uint16_t u16() {
    if (!check(2)) return 0;
    const auto hi = static_cast<std::uint16_t>(data_[pos_]);
    const auto lo = static_cast<std::uint16_t>(data_[pos_ + 1]);
    pos_ += 2;
    return static_cast<std::uint16_t>(hi << 8 | lo);
  }

  [[nodiscard]] std::uint32_t u32() {
    const std::uint32_t hi = u16();
    const std::uint32_t lo = u16();
    return hi << 16 | lo;
  }

  [[nodiscard]] std::uint64_t u64() {
    const std::uint64_t hi = u32();
    const std::uint64_t lo = u32();
    return hi << 32 | lo;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] std::span<const std::uint8_t> rest() {
    auto r = data_.subspan(pos_);
    pos_ = data_.size();
    return r;
  }

 private:
  [[nodiscard]] bool check(std::size_t n) {
    // Fully latching: once a read has run past the end, every subsequent
    // read returns zero too — a half-parsed frame must never look valid.
    if (!ok_ || pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace fourbit
