// CRC-16/CCITT (the 802.15.4 frame check sequence).
#pragma once

#include <cstdint>
#include <span>

namespace fourbit {

/// CRC-16 with polynomial 0x1021, init 0x0000 (CRC-16/XMODEM — the
/// 802.15.4 FCS definition).
[[nodiscard]] constexpr std::uint16_t crc16(
    std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0x0000;
  for (const std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 0x8000) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

}  // namespace fourbit
