// Node identifiers and related constants shared by every layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace fourbit {

/// Link-layer / network-layer node address.
///
/// A plain strong typedef: comparisons and hashing work, arithmetic does
/// not, so a NodeId cannot be silently mixed with counters or indices.
class NodeId {
 public:
  using value_type = std::uint16_t;

  constexpr NodeId() = default;
  constexpr explicit NodeId(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }

  friend constexpr bool operator==(NodeId a, NodeId b) = default;
  friend constexpr auto operator<=>(NodeId a, NodeId b) = default;

 private:
  value_type value_ = 0;
};

/// Address that addresses every node in radio range (802.15.4 0xFFFF).
/// Telemetry reuses the same value as its whole-simulation sentinel.
inline constexpr NodeId kBroadcastId{0xFFFF};

/// Reserved "no node" sentinel used by routing tables before a parent is
/// known. Distinct from the broadcast address.
inline constexpr NodeId kInvalidNodeId{0xFFFE};

/// Largest node population any topology may address: ids 0..65533 are
/// assignable, 0xFFFE/0xFFFF are reserved (above). Generators and
/// Channel::attach fail fast at this ceiling instead of letting a
/// size_t-to-uint16 cast silently wrap node ids.
inline constexpr std::size_t kMaxNodeCount = 0xFFFE;

[[nodiscard]] constexpr bool is_unicast(NodeId id) {
  return id != kBroadcastId && id != kInvalidNodeId;
}

}  // namespace fourbit

template <>
struct std::hash<fourbit::NodeId> {
  [[nodiscard]] std::size_t operator()(fourbit::NodeId id) const noexcept {
    return std::hash<fourbit::NodeId::value_type>{}(id.value());
  }
};
