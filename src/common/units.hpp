// Physical-layer units: decibel arithmetic and positions.
//
// Powers are carried as dBm (strongly typed) because every model in the
// PHY operates in log space; conversions to/from milliwatts happen only
// where powers of concurrent transmitters must be summed.
#pragma once

#include <cmath>
#include <compare>

namespace fourbit {

/// Power in dBm. Additive with Decibels (gains/losses), not with itself.
class PowerDbm {
 public:
  constexpr PowerDbm() = default;
  constexpr explicit PowerDbm(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  [[nodiscard]] double milliwatts() const {
    return std::pow(10.0, value_ / 10.0);
  }

  [[nodiscard]] static PowerDbm from_milliwatts(double mw) {
    return PowerDbm{10.0 * std::log10(mw)};
  }

  friend constexpr auto operator<=>(PowerDbm, PowerDbm) = default;

 private:
  double value_ = -120.0;
};

/// A gain or loss in dB (dimensionless ratio in log space).
class Decibels {
 public:
  constexpr Decibels() = default;
  constexpr explicit Decibels(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  friend constexpr auto operator<=>(Decibels, Decibels) = default;

  friend constexpr Decibels operator+(Decibels a, Decibels b) {
    return Decibels{a.value_ + b.value_};
  }
  friend constexpr Decibels operator-(Decibels a, Decibels b) {
    return Decibels{a.value_ - b.value_};
  }
  friend constexpr Decibels operator-(Decibels a) { return Decibels{-a.value_}; }

 private:
  double value_ = 0.0;
};

constexpr PowerDbm operator+(PowerDbm p, Decibels g) {
  return PowerDbm{p.value() + g.value()};
}
constexpr PowerDbm operator-(PowerDbm p, Decibels g) {
  return PowerDbm{p.value() - g.value()};
}
/// Difference of two powers is a ratio (e.g. an SNR).
constexpr Decibels operator-(PowerDbm a, PowerDbm b) {
  return Decibels{a.value() - b.value()};
}

/// Sum of two incoherent signals (adds in linear space).
inline PowerDbm power_sum(PowerDbm a, PowerDbm b) {
  return PowerDbm::from_milliwatts(a.milliwatts() + b.milliwatts());
}

/// 2-D position in meters. Testbeds are flat; altitude adds nothing here.
struct Position {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Position&, const Position&) = default;
};

[[nodiscard]] inline double distance_m(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace fourbit
