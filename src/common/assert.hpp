// Always-on invariant checks for simulation correctness.
//
// Simulation bugs silently corrupt results, so these stay enabled in
// Release builds; each check is O(1) and off the per-bit hot path.
//
// By default a failed FOURBIT_ASSERT aborts the process — the right
// behaviour for a single experiment, where continuing would publish
// corrupt numbers. Campaign supervisors instead install a per-thread
// *throwing* handler (set_assert_handler / ScopedAssertHandler) so one
// corrupt trial unwinds into a structured TrialFailure while sibling
// trials on other threads keep running.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace fourbit {

/// Thrown in place of abort() when the throwing assert handler is
/// installed on the current thread.
class AssertionError : public std::runtime_error {
 public:
  AssertionError(const char* expr, const char* file, int line,
                 const char* msg)
      : std::runtime_error(std::string{"assertion failed: "} + expr +
                           " at " + file + ":" + std::to_string(line) +
                           " — " + msg) {}
};

namespace detail {

/// Per-thread assertion handler. Handlers are expected to throw; one
/// that returns falls through to the default abort.
using AssertHandler = void (*)(const char* expr, const char* file, int line,
                               const char* msg);

inline thread_local AssertHandler assert_handler = nullptr;

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  if (assert_handler != nullptr) {
    assert_handler(expr, file, line, msg);  // expected to throw
  }
  std::fprintf(stderr, "fourbit assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg);
  std::abort();
}

}  // namespace detail

/// Installs `handler` for the current thread (nullptr restores the
/// default abort behaviour). Returns the previous handler.
inline detail::AssertHandler set_assert_handler(detail::AssertHandler handler) {
  detail::AssertHandler previous = detail::assert_handler;
  detail::assert_handler = handler;
  return previous;
}

/// The supervisor's handler: converts a failed assertion into an
/// AssertionError so the trial unwinds instead of killing the pool.
[[noreturn]] inline void throwing_assert_handler(const char* expr,
                                                 const char* file, int line,
                                                 const char* msg) {
  throw AssertionError{expr, file, line, msg};
}

/// RAII: installs an assert handler on this thread for one scope.
class ScopedAssertHandler {
 public:
  explicit ScopedAssertHandler(detail::AssertHandler handler)
      : previous_(set_assert_handler(handler)) {}
  ~ScopedAssertHandler() { (void)set_assert_handler(previous_); }

  ScopedAssertHandler(const ScopedAssertHandler&) = delete;
  ScopedAssertHandler& operator=(const ScopedAssertHandler&) = delete;

 private:
  detail::AssertHandler previous_;
};

}  // namespace fourbit

#define FOURBIT_ASSERT(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::fourbit::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)
