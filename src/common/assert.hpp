// Always-on invariant checks for simulation correctness.
//
// Simulation bugs silently corrupt results, so these stay enabled in
// Release builds; each check is O(1) and off the per-bit hot path.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace fourbit::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "fourbit assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg);
  std::abort();
}

}  // namespace fourbit::detail

#define FOURBIT_ASSERT(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::fourbit::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)
