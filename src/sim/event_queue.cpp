#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace fourbit::sim {

EventQueue::EventQueue(Impl impl) : impl_(impl) {
  if (impl_ == Impl::kCalendar) {
    bucket_count_ = kMinBuckets;
    mask_ = bucket_count_ - 1;
    buckets_.assign(bucket_count_, Bucket{});
  }
}

// ---- slab ---------------------------------------------------------------

std::uint32_t EventQueue::alloc_node(Time at, Callback cb) {
  std::uint32_t h;
  if (!free_.empty()) {
    h = free_.back();
    free_.pop_back();
  } else {
    FOURBIT_ASSERT(slab_.size() < 0xFFFFFFFEu, "event slab exhausted");
    h = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  Node& n = slab_[h];
  n.time = at;
  n.seq = next_seq_++;
  n.prev = kNil;
  n.next = kNil;
  n.cb = std::move(cb);
  return h;
}

void EventQueue::free_node(std::uint32_t h) {
  Node& n = slab_[h];
  n.cb = nullptr;
  // Bump the generation so every EventId issued for this slot so far is
  // dead; the next occupant is issued the new generation.
  ++n.gen;
  free_.push_back(h);
}

std::uint32_t EventQueue::handle_of(EventId id) const {
  if (!id.valid()) return kNil;
  const std::uint64_t slot = (id.raw() >> 32) - 1;
  if (slot >= slab_.size()) return kNil;
  if (slab_[slot].gen != static_cast<std::uint32_t>(id.raw())) return kNil;
  return static_cast<std::uint32_t>(slot);
}

// ---- public API -----------------------------------------------------------

EventId EventQueue::schedule(Time at, Callback cb) {
  FOURBIT_ASSERT(cb != nullptr, "cannot schedule a null callback");
  const std::uint32_t h = alloc_node(at, std::move(cb));
  const EventId id = id_of(h);
  ++live_;
  if (impl_ == Impl::kHeap) {
    slab_[h].prev = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(h);
    heap_sift_up(heap_.size() - 1);
  } else {
    // Defensive: the Simulator never schedules before the last popped
    // time, but direct users may; lowering the floor keeps the lap scan
    // correct for any input.
    if (at.us() < floor_us_) floor_us_ = at.us();
    cal_link(h);
    if (peek_ != kNil && at < slab_[peek_].time) peek_ = h;
    if (live_ > bucket_count_ * 2) {
      cal_rebuild(bucket_count_ * 2, target_width());
    }
  }
  return id;
}

void EventQueue::cancel(EventId id) {
  const std::uint32_t h = handle_of(id);
  if (h == kNil) return;
  if (impl_ == Impl::kHeap) {
    const std::size_t pos = slab_[h].prev;
    free_node(h);
    heap_remove_at(pos);
  } else {
    if (peek_ == h) peek_ = kNil;
    cal_unlink(h);
    free_node(h);
  }
  --live_;
}

Time EventQueue::next_time() const {
  FOURBIT_ASSERT(live_ > 0, "next_time on an empty queue");
  if (impl_ == Impl::kHeap) return slab_[heap_.front()].time;
  return slab_[cal_locate_min()].time;
}

EventQueue::Popped EventQueue::pop() {
  FOURBIT_ASSERT(live_ > 0, "pop on an empty queue");
  const std::uint32_t h =
      impl_ == Impl::kHeap ? heap_.front() : cal_locate_min();
  Node& n = slab_[h];
  Popped out{n.time, std::move(n.cb)};
  if (impl_ == Impl::kHeap) {
    free_node(h);
    heap_remove_at(0);
  } else {
    std::int64_t gap = n.time.us() - floor_us_;
    if (gap < 0) gap = 0;
    constexpr std::int64_t kGapCap = std::int64_t{1} << 40;  // ~12.7 days
    if (gap > kGapCap) gap = kGapCap;
    gap_ema_q8_ = (7 * gap_ema_q8_ + (gap << 8)) / 8;
    floor_us_ = n.time.us();
    peek_ = kNil;
    cal_unlink(h);
    free_node(h);
  }
  --live_;
  if (impl_ == Impl::kCalendar) cal_maybe_resize_after_pop();
  return out;
}

void EventQueue::clear() {
  if (impl_ == Impl::kHeap) {
    for (const std::uint32_t h : heap_) free_node(h);
    heap_.clear();
  } else {
    for (Bucket& b : buckets_) {
      std::uint32_t h = b.head;
      while (h != kNil) {
        const std::uint32_t next = slab_[h].next;
        free_node(h);
        h = next;
      }
      b = Bucket{};
    }
    peek_ = kNil;
    floor_us_ = 0;
    gap_ema_q8_ = 0;
    lap_misses_ = 0;
  }
  live_ = 0;
}

// ---- binary heap (reference path) ------------------------------------------

void EventQueue::heap_sift_up(std::size_t pos) {
  const std::uint32_t h = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (!key_less(h, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slab_[heap_[pos]].prev = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = h;
  slab_[h].prev = static_cast<std::uint32_t>(pos);
}

void EventQueue::heap_sift_down(std::size_t pos) {
  const std::uint32_t h = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && key_less(heap_[child + 1], heap_[child])) ++child;
    if (!key_less(heap_[child], h)) break;
    heap_[pos] = heap_[child];
    slab_[heap_[pos]].prev = static_cast<std::uint32_t>(pos);
    pos = child;
  }
  heap_[pos] = h;
  slab_[h].prev = static_cast<std::uint32_t>(pos);
}

void EventQueue::heap_remove_at(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    slab_[heap_[pos]].prev = static_cast<std::uint32_t>(pos);
  }
  heap_.pop_back();
  if (pos < heap_.size()) {
    // The relocated element may belong either above or below `pos`.
    heap_sift_down(pos);
    heap_sift_up(pos);
  }
}

// ---- calendar ---------------------------------------------------------------

void EventQueue::cal_link(std::uint32_t h) {
  Bucket& b = buckets_[bucket_of(slab_[h].time)];
  Node& n = slab_[h];
  // Reset explicitly: rebuilds relink nodes whose chain pointers are
  // stale from the previous layout.
  n.prev = kNil;
  n.next = kNil;
  if (b.head == kNil) {
    b.head = b.tail = h;
    return;
  }
  // Chains stay sorted by (time, seq) so the chain head is the chain
  // min and the common rising-time / same-time pattern appends in O(1).
  if (!key_less(h, b.tail)) {
    n.prev = b.tail;
    slab_[b.tail].next = h;
    b.tail = h;
    return;
  }
  std::uint32_t cur = b.head;
  while (!key_less(h, cur)) cur = slab_[cur].next;
  n.next = cur;
  n.prev = slab_[cur].prev;
  slab_[cur].prev = h;
  if (n.prev == kNil) {
    b.head = h;
  } else {
    slab_[n.prev].next = h;
  }
}

void EventQueue::cal_unlink(std::uint32_t h) {
  Bucket& b = buckets_[bucket_of(slab_[h].time)];
  Node& n = slab_[h];
  if (n.prev == kNil) {
    b.head = n.next;
  } else {
    slab_[n.prev].next = n.next;
  }
  if (n.next == kNil) {
    b.tail = n.prev;
  } else {
    slab_[n.next].prev = n.prev;
  }
  n.prev = kNil;
  n.next = kNil;
}

std::uint32_t EventQueue::cal_locate_min() const {
  if (peek_ != kNil) return peek_;
  // Walk consecutive "year" windows starting at the floor. Every live
  // event is >= floor_us_, chains are sorted, and exactly one bucket
  // serves each window — so the first chain head inside its window is
  // the global minimum.
  std::int64_t year = floor_div(floor_us_, width_us_);
  for (std::uint64_t step = 0; step < bucket_count_; ++step, ++year) {
    const Bucket& b =
        buckets_[static_cast<std::size_t>(static_cast<std::uint64_t>(year) &
                                          mask_)];
    if (b.head == kNil) continue;
    const std::int64_t window_end = (year + 1) * width_us_;
    if (slab_[b.head].time.us() < window_end) {
      peek_ = b.head;
      return b.head;
    }
  }
  // A full lap found nothing in-window: everything is more than one
  // year out. Fall back to a head-of-chain sweep (chains are sorted, so
  // this is O(buckets), not O(live)).
  ++lap_misses_;
  std::uint32_t best = kNil;
  for (const Bucket& b : buckets_) {
    if (b.head == kNil) continue;
    if (best == kNil || key_less(b.head, best)) best = b.head;
  }
  peek_ = best;
  return best;
}

std::int64_t EventQueue::target_width() const {
  // ~3 head-rate event gaps per bucket (Brown's rule of thumb).
  const std::int64_t w = (3 * gap_ema_q8_) >> 8;
  return w < 1 ? 1 : w;
}

void EventQueue::cal_rebuild(std::uint64_t new_buckets,
                             std::int64_t new_width) {
  std::vector<std::uint32_t> live;  // rebuilds are rare; a local is fine
  live.reserve(live_);
  std::int64_t min_us = 0;
  std::int64_t max_us = 0;
  bool first = true;
  for (const Bucket& b : buckets_) {
    for (std::uint32_t h = b.head; h != kNil; h = slab_[h].next) {
      live.push_back(h);
      const std::int64_t t = slab_[h].time.us();
      if (first || t < min_us) min_us = t;
      if (first || t > max_us) max_us = t;
      first = false;
    }
  }
  if (new_width <= 0) new_width = 1;
  if (gap_ema_q8_ == 0 && live.size() >= 2) {
    // No pops observed yet (boot storm): size the width off the live
    // span instead so the first lap scan already lands in-window.
    const std::int64_t span = max_us - min_us;
    const std::int64_t w = 2 * span / static_cast<std::int64_t>(live.size());
    if (w > new_width) new_width = w;
  }
  bucket_count_ = new_buckets < kMinBuckets ? kMinBuckets : new_buckets;
  mask_ = bucket_count_ - 1;
  width_us_ = new_width;
  buckets_.assign(static_cast<std::size_t>(bucket_count_), Bucket{});
  // Relinking in key order makes every insert an O(1) append even when
  // many events share a bucket.
  std::sort(live.begin(), live.end(),
            [this](std::uint32_t a, std::uint32_t b) { return key_less(a, b); });
  for (const std::uint32_t h : live) cal_link(h);
  lap_misses_ = 0;
  ++resizes_;
  if (resize_observer_) resize_observer_();
}

void EventQueue::cal_maybe_resize_after_pop() {
  ++pops_since_check_;
  if (bucket_count_ > kMinBuckets && live_ < bucket_count_ / 8) {
    cal_rebuild(bucket_count_ / 2, target_width());
    pops_since_check_ = 0;
    return;
  }
  if (lap_misses_ >= 32) {
    // The lap scan keeps falling through to the global sweep: the year
    // (buckets * width) is too short for the live distribution. Widen
    // geometrically; the drift check below narrows it back once the
    // head rate recovers.
    std::int64_t w = width_us_ * 8;
    const std::int64_t t = target_width();
    if (t > w) w = t;
    cal_rebuild(bucket_count_, w);
    pops_since_check_ = 0;
    return;
  }
  if (pops_since_check_ >= 1024) {
    pops_since_check_ = 0;
    const std::int64_t t = target_width();
    if (8 * width_us_ < t) {
      // Width far too narrow for the head rate: widen unconditionally.
      cal_rebuild(bucket_count_, t);
    } else if (width_us_ > 8 * t && lap_misses_ == 0) {
      // Narrow only while the lap scan is clean. A width the drift
      // check considers "too wide" may be exactly what a prior lap-miss
      // widening bought; narrowing it back while misses still occur
      // re-creates them and the two rules rebuild-oscillate.
      cal_rebuild(bucket_count_, t);
    }
  }
}

}  // namespace fourbit::sim
