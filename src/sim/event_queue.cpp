#include "sim/event_queue.hpp"

#include <utility>

#include "common/assert.hpp"

namespace fourbit::sim {

EventId EventQueue::schedule(Time at, Callback cb) {
  FOURBIT_ASSERT(cb != nullptr, "cannot schedule a null callback");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, seq, std::move(cb)});
  ++live_count_;
  return EventId{seq};
}

void EventQueue::cancel(EventId id) {
  if (!id.valid()) return;
  // Only record ids that might still be pending; ids from the future are
  // impossible, ids already popped are not in the heap.
  if (id.raw() >= next_seq_) return;
  if (cancelled_.insert(id.raw()).second && live_count_ > 0) {
    --live_count_;
  }
}

bool EventQueue::empty() const { return live_count_ == 0; }

std::size_t EventQueue::size() const { return live_count_; }

void EventQueue::drop_cancelled() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);
  self->drop_cancelled();
  FOURBIT_ASSERT(!heap_.empty(), "next_time on an empty queue");
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled();
  FOURBIT_ASSERT(!heap_.empty(), "pop on an empty queue");
  // priority_queue::top() is const; the entry is moved out via const_cast
  // which is safe because pop() immediately removes it.
  auto& top = const_cast<Entry&>(heap_.top());
  Popped out{top.time, std::move(top.callback)};
  heap_.pop();
  --live_count_;
  return out;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  cancelled_.clear();
  live_count_ = 0;
}

}  // namespace fourbit::sim
