// Per-trial monotonic arena.
//
// One trial allocates the same transient objects (frame buffers,
// pending-receiver vectors, pooled transmissions) over and over; a
// general-purpose allocator pays a lock-free-list round trip each time.
// The arena instead bump-allocates from chunked blocks that are never
// individually freed: containers "deallocate" as a no-op, the pool
// warms up once, and steady-state simulation performs zero allocator
// round trips. reset() rewinds to the first block (keeping every block)
// for reuse across trials in a single process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace fourbit::sim {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 256 * 1024;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (any power of two).
  void* allocate(std::size_t bytes, std::size_t align) {
    if (cur_ < blocks_.size()) {
      if (void* p = try_block(blocks_[cur_], bytes, align)) return p;
      // Later blocks (kept by a reset()) are all >= block_bytes_; advance
      // instead of leaking them.
      while (cur_ + 1 < blocks_.size()) {
        ++cur_;
        offset_ = 0;
        if (void* p = try_block(blocks_[cur_], bytes, align)) return p;
      }
    }
    grow(bytes + align);
    void* p = try_block(blocks_[cur_], bytes, align);
    return p;  // guaranteed: the new block fits bytes+align
  }

  /// Constructs a T in arena storage. The arena never runs destructors —
  /// the caller must invoke ~T() explicitly if T is non-trivial.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    return ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Rewinds to the first block; every block is kept for reuse. Objects
  /// previously allocated are NOT destroyed — callers own destruction.
  void reset() {
    cur_ = 0;
    offset_ = 0;
  }

  /// Total bytes reserved from the OS across all blocks.
  [[nodiscard]] std::size_t bytes_reserved() const { return reserved_; }

  /// Invoked with the new bytes_reserved() every time the arena grows;
  /// the Simulator hooks this to keep the sim/arena_bytes gauge current.
  void set_growth_observer(std::function<void(std::size_t)> fn) {
    growth_observer_ = std::move(fn);
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* try_block(Block& b, std::size_t bytes, std::size_t align) {
    const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::uintptr_t aligned =
        (base + offset_ + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    const std::size_t new_offset = (aligned - base) + bytes;
    if (new_offset > b.size) return nullptr;
    offset_ = new_offset;
    return reinterpret_cast<void*>(aligned);
  }

  void grow(std::size_t min_bytes) {
    const std::size_t size = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    cur_ = blocks_.size() - 1;
    offset_ = 0;
    reserved_ += size;
    if (growth_observer_) growth_observer_(reserved_);
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t cur_ = 0;
  std::size_t offset_ = 0;
  std::size_t reserved_ = 0;
  std::function<void(std::size_t)> growth_observer_;
};

/// Minimal std allocator over an Arena. deallocate() is a no-op
/// (monotonic); two allocators compare equal iff they share an arena,
/// and none of the propagate_on_* traits are set, so containers built
/// from the same arena move buffers freely among themselves.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::false_type;
  using propagate_on_container_move_assignment = std::false_type;
  using propagate_on_container_swap = std::false_type;
  using is_always_equal = std::false_type;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  /*implicit*/ ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  friend bool operator==(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return a.arena_ == b.arena_;
  }

 private:
  Arena* arena_;
};

}  // namespace fourbit::sim
