// Small-buffer move-only callable for event callbacks.
//
// std::function<void()> heap-allocates any capture larger than two
// pointers (libstdc++ SOO is 16 bytes), and the channel's finish-of-
// transmission lambda alone captures 48. At millions of events per
// trial those allocations dominate schedule(); EventCallback stores up
// to kInlineBytes of capture inline and falls back to the heap only
// for outsized captures, so the steady-state event loop never touches
// the allocator.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace fourbit::sim {

/// Move-only `void()` callable with a 64-byte inline capture buffer.
/// Invoking an empty EventCallback is undefined; callers (the event
/// queue) assert non-null at schedule time.
class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  EventCallback() noexcept = default;
  /*implicit*/ EventCallback(std::nullptr_t) noexcept {}  // NOLINT

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  /*implicit*/ EventCallback(F&& f) {  // NOLINT: mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVt<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &kHeapVt<Fn>;
    }
  }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }
  EventCallback& operator=(std::nullptr_t) noexcept {
    destroy();
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { destroy(); }

  void operator()() { vt_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }
  friend bool operator==(const EventCallback& c, std::nullptr_t) noexcept {
    return c.vt_ == nullptr;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*destroy)(void*) noexcept;
    // Move-constructs into `dst` and destroys `src` (nodes relocate when
    // the queue's slab grows).
    void (*relocate)(void* src, void* dst) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr VTable kInlineVt{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      }};

  template <typename Fn>
  static constexpr VTable kHeapVt{
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* p) noexcept { delete *static_cast<Fn**>(p); },
      [](void* src, void* dst) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      }};

  void move_from(EventCallback& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(other.buf_, buf_);
      other.vt_ = nullptr;
    }
  }
  void destroy() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace fourbit::sim
