#include "sim/fault.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "sim/trace.hpp"

namespace fourbit::sim {
namespace {

void trace_fault(Time now, const char* format, std::uint32_t a,
                 std::uint32_t b) {
  if (!Trace::enabled(TraceLevel::kInfo)) return;
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, format, a, b);
  Trace::log(TraceLevel::kInfo, now, "fault", buffer);
}

}  // namespace

void FaultInjector::arm() {
  FOURBIT_ASSERT(!armed_, "FaultInjector::arm called twice");
  armed_ = true;
  for (const FaultEvent& event : plan_.events) {
    const Time at = event.at < sim_.now() ? sim_.now() : event.at;
    sim_.schedule_at(at, [this, &event] { fire(event); });
  }
}

void FaultInjector::crash_with_reboot(NodeId node, Duration downtime) {
  trace_fault(sim_.now(), "crash node=%u downtime_us=%u", node.value(),
              static_cast<std::uint32_t>(downtime.us()));
  ++crashes_;
  if (hooks_.crash_node) hooks_.crash_node(node);
  if (downtime.us() <= 0) return;  // permanent failure
  sim_.schedule_in(downtime, [this, node] {
    trace_fault(sim_.now(), "reboot node=%u", node.value(), 0);
    ++reboots_;
    if (hooks_.reboot_node) hooks_.reboot_node(node);
  });
}

void FaultInjector::fire(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kNodeCrash:
      crash_with_reboot(event.node, event.duration);
      break;
    case FaultKind::kLinkOutage:
      trace_fault(sim_.now(), "link down %u<->%u", event.node.value(),
                  event.peer.value());
      ++outages_;
      if (hooks_.link_down) hooks_.link_down(event.node, event.peer,
                                             event.loss);
      if (event.duration.us() > 0) {
        sim_.schedule_in(event.duration, [this, &event] {
          trace_fault(sim_.now(), "link up %u<->%u", event.node.value(),
                      event.peer.value());
          if (hooks_.link_up) hooks_.link_up(event.node, event.peer);
        });
      }
      break;
    case FaultKind::kRootRegionCrash: {
      std::vector<NodeId> victims;
      if (hooks_.root_region) victims = hooks_.root_region(event.max_victims);
      trace_fault(sim_.now(), "root-region crash: %u victims",
                  static_cast<std::uint32_t>(victims.size()), 0);
      for (const NodeId victim : victims) {
        crash_with_reboot(victim, event.duration);
      }
      break;
    }
  }
}

}  // namespace fourbit::sim
