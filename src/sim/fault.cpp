#include "sim/fault.hpp"

#include "common/assert.hpp"

namespace fourbit::sim {
namespace {

constexpr std::uint16_t fault_arg2(FaultKind kind) {
  return static_cast<std::uint16_t>(kind);
}

}  // namespace

void FaultInjector::arm() {
  FOURBIT_ASSERT(!armed_, "FaultInjector::arm called twice");
  armed_ = true;
  for (const FaultEvent& event : plan_.events) {
    const Time at = event.at < sim_.now() ? sim_.now() : event.at;
    sim_.schedule_at(at, [this, &event] { fire(event); });
  }
}

void FaultInjector::crash_with_reboot(NodeId node, Duration downtime) {
  sim_.telemetry().emit(EventKind::kFaultStart, node.value(), 0xFFFF, 0,
                        fault_arg2(FaultKind::kNodeCrash),
                        downtime.seconds());
  ++crashes_;
  if (hooks_.crash_node) hooks_.crash_node(node);
  if (downtime.us() <= 0) return;  // permanent failure
  sim_.schedule_in(downtime, [this, node] {
    sim_.telemetry().emit(EventKind::kFaultEnd, node.value(), 0xFFFF, 0,
                          fault_arg2(FaultKind::kNodeCrash));
    ++reboots_;
    if (hooks_.reboot_node) hooks_.reboot_node(node);
  });
}

void FaultInjector::fire(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kNodeCrash:
      crash_with_reboot(event.node, event.duration);
      break;
    case FaultKind::kLinkOutage:
      sim_.telemetry().emit(EventKind::kFaultStart, event.node.value(),
                            event.peer.value(), 0,
                            fault_arg2(FaultKind::kLinkOutage), event.loss);
      ++outages_;
      if (hooks_.link_down) hooks_.link_down(event.node, event.peer,
                                             event.loss);
      if (event.duration.us() > 0) {
        sim_.schedule_in(event.duration, [this, &event] {
          sim_.telemetry().emit(EventKind::kFaultEnd, event.node.value(),
                                event.peer.value(), 0,
                                fault_arg2(FaultKind::kLinkOutage));
          if (hooks_.link_up) hooks_.link_up(event.node, event.peer);
        });
      }
      break;
    case FaultKind::kRootRegionCrash: {
      std::vector<NodeId> victims;
      if (hooks_.root_region) victims = hooks_.root_region(event.max_victims);
      sim_.telemetry().emit(EventKind::kFaultStart, 0xFFFF, 0xFFFF,
                            static_cast<std::uint16_t>(victims.size()),
                            fault_arg2(FaultKind::kRootRegionCrash));
      for (const NodeId victim : victims) {
        crash_with_reboot(victim, event.duration);
      }
      break;
    }
  }
}

}  // namespace fourbit::sim
