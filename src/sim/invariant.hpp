// Runtime invariant auditor: periodic audits of live simulation state.
//
// A simulation bug that corrupts state without tripping a local
// FOURBIT_ASSERT can survive an entire trial and publish plausible-
// looking numbers. In debug-mode campaigns the auditor walks a set of
// registered whole-system checks (neighbor-table bounds, pin
// discipline, ETX ranges, event-queue monotonicity — see
// runner::run_experiment) on a fixed simulated-time cadence and
// converts the first violation into an exception, which the campaign
// supervisor classifies as a `kInvariant` TrialFailure.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace fourbit::sim {

/// Thrown by InvariantAuditor::audit_now on the first failing check.
class InvariantViolationError : public std::runtime_error {
 public:
  InvariantViolationError(std::string invariant, const std::string& detail)
      : std::runtime_error("invariant '" + invariant + "' violated: " +
                           detail),
        invariant_(std::move(invariant)) {}

  /// Name of the failing check, as passed to add().
  [[nodiscard]] const std::string& invariant() const { return invariant_; }

 private:
  std::string invariant_;
};

class InvariantAuditor {
 public:
  /// One check: returns nullopt while the invariant holds, else a
  /// human-readable description of the violation. Checks must not
  /// mutate simulation state.
  using Check = std::function<std::optional<std::string>()>;

  explicit InvariantAuditor(Simulator& sim) : sim_(sim) {}
  ~InvariantAuditor() { stop(); }

  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  void add(std::string name, Check check) {
    checks_.emplace_back(std::move(name), std::move(check));
  }

  /// Audits every `interval` of simulated time, starting one interval
  /// from now, until stop() or destruction. A violation throws
  /// InvariantViolationError out of the event loop (the audit event is
  /// not rescheduled, so a caller that catches and resumes the run is
  /// no longer audited).
  void start(Duration interval);
  void stop();

  /// Runs every registered check immediately; throws on the first
  /// violation.
  void audit_now();

  [[nodiscard]] std::uint64_t audits_run() const { return audits_run_; }
  [[nodiscard]] std::size_t check_count() const { return checks_.size(); }

 private:
  void schedule_next();

  Simulator& sim_;
  std::vector<std::pair<std::string, Check>> checks_;
  Duration interval_ = Duration::from_us(0);
  EventId pending_;
  std::uint64_t audits_run_ = 0;
};

}  // namespace fourbit::sim
