// Pending-event set of the discrete-event kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace fourbit::sim {

/// Handle for cancelling a scheduled event. Default-constructed handles
/// are inert. Handles are opaque: only valid(), equality, and raw()
/// (for logging) are part of the contract.
class EventId {
 public:
  constexpr EventId() = default;

  [[nodiscard]] constexpr bool valid() const { return id_ != 0; }
  [[nodiscard]] constexpr std::uint64_t raw() const { return id_; }

  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  friend class EventQueue;
  constexpr explicit EventId(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Timestamped-callback set with two interchangeable implementations:
///
///  * kCalendar (default): a classic calendar queue — buckets of
///    sorted intrusive lists indexed by (time / width) mod buckets,
///    self-resizing bucket count and width, O(1) amortized schedule /
///    pop / cancel. The fast path for steady event rates.
///  * kHeap: a binary heap over the same node slab — O(log n) but
///    distribution-insensitive. Retained as the reference path for
///    bit-identity cross-checks (see SimConfig::use_calendar_queue).
///
/// Both implementations pop in identical (time, seq) order: ties in
/// time break by insertion order, so same-time events run FIFO — a
/// property several MAC/timer interactions rely on and tests assert.
/// Events live in a generation-checked slab, so cancel() validates the
/// handle exactly: cancelling a fired, cancelled, or recycled id is a
/// precise no-op on both paths.
class EventQueue {
 public:
  using Callback = EventCallback;

  enum class Impl : std::uint8_t { kHeap, kCalendar };

  explicit EventQueue(Impl impl = Impl::kCalendar);

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `cb` at absolute time `at`. `at` must be >= the time of the
  /// last popped event (enforced by the Simulator, not here).
  EventId schedule(Time at, Callback cb);

  /// Cancels a pending event; cancelling an already-fired or invalid id is
  /// a harmless no-op.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest pending event. Must not be called when empty.
  [[nodiscard]] Time next_time() const;

  /// Removes and returns the earliest event's callback along with its
  /// time. Must not be called when empty.
  struct Popped {
    Time time;
    Callback callback;
  };
  Popped pop();

  /// Drops every pending event (used at simulation teardown).
  void clear();

  [[nodiscard]] Impl impl() const { return impl_; }

  /// Number of calendar rebuilds (bucket-count or width changes) so
  /// far; always 0 on the heap path. Exported as sim/eq_resizes.
  [[nodiscard]] std::uint64_t resizes() const { return resizes_; }

  /// Invoked after every calendar rebuild (off the hot path); the
  /// Simulator hooks this to bump the sim/eq_resizes counter.
  void set_resize_observer(std::function<void()> fn) {
    resize_observer_ = std::move(fn);
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::uint64_t kMinBuckets = 64;

  /// Slab node. Handles (slab indices) are stable across slab growth
  /// and rebuilds; `gen` is bumped on free so stale EventIds never
  /// alias a recycled slot.
  struct Node {
    Time time;
    std::uint64_t seq = 0;
    std::uint32_t gen = 0;
    // kCalendar: prev/next in the bucket's sorted chain.
    // kHeap: `prev` holds the node's index in heap_; `next` is unused.
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    Callback cb;
  };
  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  // ---- slab -----------------------------------------------------------
  std::uint32_t alloc_node(Time at, Callback cb);
  void free_node(std::uint32_t h);
  [[nodiscard]] std::uint32_t handle_of(EventId id) const;
  [[nodiscard]] EventId id_of(std::uint32_t h) const {
    return EventId{(static_cast<std::uint64_t>(h) + 1) << 32 |
                   slab_[h].gen};
  }
  [[nodiscard]] bool key_less(std::uint32_t a, std::uint32_t b) const {
    const Node& na = slab_[a];
    const Node& nb = slab_[b];
    if (na.time != nb.time) return na.time < nb.time;
    return na.seq < nb.seq;
  }

  // ---- binary heap (reference path) ------------------------------------
  void heap_sift_up(std::size_t pos);
  void heap_sift_down(std::size_t pos);
  void heap_remove_at(std::size_t pos);

  // ---- calendar ---------------------------------------------------------
  [[nodiscard]] static std::int64_t floor_div(std::int64_t a,
                                              std::int64_t b) {
    std::int64_t q = a / b;
    if (a % b != 0 && (a < 0) != (b < 0)) --q;
    return q;
  }
  [[nodiscard]] std::size_t bucket_of(Time t) const {
    return static_cast<std::size_t>(
        static_cast<std::uint64_t>(floor_div(t.us(), width_us_)) & mask_);
  }
  void cal_link(std::uint32_t h);
  void cal_unlink(std::uint32_t h);
  [[nodiscard]] std::uint32_t cal_locate_min() const;
  [[nodiscard]] std::int64_t target_width() const;
  void cal_rebuild(std::uint64_t new_buckets, std::int64_t new_width);
  void cal_maybe_resize_after_pop();

  Impl impl_;
  std::vector<Node> slab_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;

  // Heap state: handles arranged as a binary min-heap by (time, seq).
  std::vector<std::uint32_t> heap_;

  // Calendar state.
  std::vector<Bucket> buckets_;
  std::uint64_t bucket_count_ = 0;
  std::uint64_t mask_ = 0;
  std::int64_t width_us_ = 1;
  std::int64_t floor_us_ = 0;  // no live event is earlier than this
  // EMA of inter-pop gaps in Q8 fixed point (value << 8). Plain integer
  // µs truncates to zero for sub-8µs gaps — (7*0 + 6)/8 == 0 — which
  // collapses target_width() to 1 and sends the calendar into a
  // widen/narrow rebuild oscillation at high event rates.
  std::int64_t gap_ema_q8_ = 0;
  std::uint64_t pops_since_check_ = 0;
  std::uint64_t resizes_ = 0;
  mutable std::uint32_t peek_ = kNil;  // cached min handle, kNil = unknown
  mutable std::uint64_t lap_misses_ = 0;
  std::function<void()> resize_observer_;
};

}  // namespace fourbit::sim
