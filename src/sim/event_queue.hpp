// Pending-event set of the discrete-event kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace fourbit::sim {

/// Handle for cancelling a scheduled event. Default-constructed handles
/// are inert.
class EventId {
 public:
  constexpr EventId() = default;

  [[nodiscard]] constexpr bool valid() const { return id_ != 0; }
  [[nodiscard]] constexpr std::uint64_t raw() const { return id_; }

  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  friend class EventQueue;
  constexpr explicit EventId(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Min-heap of timestamped callbacks with O(1) lazy cancellation.
///
/// Ties in time break by insertion order, so same-time events run FIFO —
/// a property several MAC/timer interactions rely on and tests assert.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `at`. `at` must be >= the time of the
  /// last popped event (enforced by the Simulator, not here).
  EventId schedule(Time at, Callback cb);

  /// Cancels a pending event; cancelling an already-fired or invalid id is
  /// a harmless no-op.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const;

  /// Time of the earliest pending event. Must not be called when empty.
  [[nodiscard]] Time next_time() const;

  /// Removes and returns the earliest event's callback along with its
  /// time. Must not be called when empty.
  struct Popped {
    Time time;
    Callback callback;
  };
  Popped pop();

  /// Drops every pending event (used at simulation teardown).
  void clear();

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    std::uint64_t id;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Cancelled ids are kept in a set and skipped at pop time; cheaper than
  // heap surgery and the set stays small because fired ids are erased.
  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace fourbit::sim
