#include "sim/simulator.hpp"

#include <utility>

#include "common/assert.hpp"

namespace fourbit::sim {

Simulator::Simulator(SimConfig config)
    : config_(config),
      arena_(config.arena_block_bytes),
      queue_(config.use_calendar_queue ? EventQueue::Impl::kCalendar
                                       : EventQueue::Impl::kHeap) {
  telemetry_.bind_clock(&now_);
  queue_.set_resize_observer([this] {
    if (ctr_eq_resizes_ == nullptr) {
      ctr_eq_resizes_ = telemetry_.counter("sim", "eq_resizes");
    }
    ++*ctr_eq_resizes_;
  });
  arena_.set_growth_observer([this](std::size_t bytes) {
    if (gauge_arena_bytes_ == nullptr) {
      gauge_arena_bytes_ = telemetry_.gauge("sim", "arena_bytes");
    }
    *gauge_arena_bytes_ = static_cast<double>(bytes);
  });
}

EventId Simulator::schedule_in(Duration delay, EventQueue::Callback cb) {
  FOURBIT_ASSERT(delay.us() >= 0, "cannot schedule into the past");
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(Time at, EventQueue::Callback cb) {
  FOURBIT_ASSERT(at >= now_, "cannot schedule into the past");
  return queue_.schedule(at, std::move(cb));
}

void Simulator::set_budget(SimBudget budget) {
  budget_ = budget;
  budget_armed_at_ = std::chrono::steady_clock::now();
}

void Simulator::check_budget() const {
  if (budget_.max_events != 0 && events_executed_ >= budget_.max_events) {
    throw BudgetExceededError{
        BudgetExceededError::Which::kEvents,
        "trial exceeded its event budget (" +
            std::to_string(budget_.max_events) + " events)"};
  }
  if (budget_.max_wall_ms != 0 &&
      events_executed_ % kWallCheckPeriod == 0) {
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - budget_armed_at_)
            .count();
    if (elapsed_ms >= budget_.max_wall_ms) {
      throw BudgetExceededError{
          BudgetExceededError::Which::kWallClock,
          "trial exceeded its wall-clock budget (" +
              std::to_string(budget_.max_wall_ms) + " ms)"};
    }
  }
}

void Simulator::execute_next() {
  if (budget_.limited()) check_budget();
  auto popped = queue_.pop();
  FOURBIT_ASSERT(popped.time >= now_, "event queue went backwards in time");
  now_ = popped.time;
  {
    PhaseTimer timer{telemetry_, ProfilePhase::kEventDispatch};
    popped.callback();
  }
  ++events_executed_;
  if (flush_every_ != 0 && events_executed_ % flush_every_ == 0) {
    flush_hook_();
  }
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    execute_next();
  }
}

void Simulator::run_until(Time deadline) {
  FOURBIT_ASSERT(deadline >= now_, "deadline is in the past");
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    execute_next();
  }
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace fourbit::sim
