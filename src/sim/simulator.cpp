#include "sim/simulator.hpp"

#include <utility>

#include "common/assert.hpp"

namespace fourbit::sim {

EventId Simulator::schedule_in(Duration delay, EventQueue::Callback cb) {
  FOURBIT_ASSERT(delay.us() >= 0, "cannot schedule into the past");
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(Time at, EventQueue::Callback cb) {
  FOURBIT_ASSERT(at >= now_, "cannot schedule into the past");
  return queue_.schedule(at, std::move(cb));
}

void Simulator::execute_next() {
  auto popped = queue_.pop();
  FOURBIT_ASSERT(popped.time >= now_, "event queue went backwards in time");
  now_ = popped.time;
  popped.callback();
  ++events_executed_;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    execute_next();
  }
}

void Simulator::run_until(Time deadline) {
  FOURBIT_ASSERT(deadline >= now_, "deadline is in the past");
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    execute_next();
  }
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace fourbit::sim
