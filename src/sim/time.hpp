// Simulation time as a strong 64-bit microsecond count.
//
// Microsecond resolution covers 802.15.4 symbol times (16 us) while an
// int64 range covers ~292k years — far beyond the paper's 12-hour runs.
#pragma once

#include <compare>
#include <cstdint>

namespace fourbit::sim {

class Duration;

/// Absolute simulation time (microseconds since simulation start).
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time from_us(std::int64_t us) {
    return Time{us};
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(us_) / 1e6;
  }

  friend constexpr auto operator<=>(Time, Time) = default;

  constexpr Time& operator+=(Duration d);

 private:
  constexpr explicit Time(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// Relative simulation time (signed; negative durations are legal results
/// of subtraction but must never be scheduled).
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration from_us(std::int64_t us) {
    return Duration{us};
  }
  [[nodiscard]] static constexpr Duration from_ms(std::int64_t ms) {
    return Duration{ms * 1000};
  }
  [[nodiscard]] static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6)};
  }
  [[nodiscard]] static constexpr Duration from_minutes(double m) {
    return from_seconds(m * 60.0);
  }
  [[nodiscard]] static constexpr Duration from_hours(double h) {
    return from_seconds(h * 3600.0);
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(us_) / 1e6;
  }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.us_ + b.us_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.us_ - b.us_};
  }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration{static_cast<std::int64_t>(static_cast<double>(a.us_) * k)};
  }
  friend constexpr Duration operator*(double k, Duration a) { return a * k; }

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

constexpr Time operator+(Time t, Duration d) {
  return Time::from_us(t.us() + d.us());
}
constexpr Time operator-(Time t, Duration d) {
  return Time::from_us(t.us() - d.us());
}
constexpr Duration operator-(Time a, Time b) {
  return Duration::from_us(a.us() - b.us());
}
constexpr Time& Time::operator+=(Duration d) {
  us_ += d.us();
  return *this;
}

}  // namespace fourbit::sim
