// Structured per-trial telemetry: typed trace events, a counter/gauge
// registry, and an always-on bounded flight recorder.
//
// This replaces the old process-global `sim::Trace` (pre-formatted
// strings behind static state, unusable while a parallel campaign ran).
// A TelemetryContext is owned BY a Simulator, so every trial carries its
// own, and nothing here is shared across threads:
//
//   * Events are small fixed-size PODs, not strings. An emit below the
//     configured level costs one branch; an enabled emit costs that
//     branch plus a bounded ring-buffer write (the flight recorder) and,
//     when a sink is attached, one virtual call.
//   * The flight recorder always keeps the last kFlightCapacity events
//     at the configured level. When a supervised trial dies (assert,
//     exception, timeout, invariant violation) the supervisor attaches
//     the recording to the TrialFailure, so a failure report arrives
//     with the sim's recent history instead of a bare message.
//   * The counter registry holds monotonic counters and sampled gauges
//     under stable (component, name, node) keys; handles are raw
//     pointers resolved once at registration, so the hot path pays one
//     increment. stats::JsonlExporter snapshots the registry into the
//     trace file at end of trial.
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace fourbit::sim {

enum class TraceLevel : std::uint8_t {
  kOff = 0,
  kError = 1,
  kInfo = 2,
  kDebug = 3,
};

[[nodiscard]] std::string_view trace_level_name(TraceLevel level);

/// The event taxonomy (see DESIGN.md §8.7 for the field conventions of
/// each kind). Per-packet plumbing (beacon/data/phy frames) records at
/// kDebug; state changes (table ops, ETX updates, routes, faults) at
/// kInfo, so the default level captures every decision the estimator
/// pipeline makes without paying per-frame ring writes.
enum class EventKind : std::uint8_t {
  kBeaconTx = 0,   // node broadcast a routing beacon
  kBeaconRx,       // beacon received (peer = sender, arg = layer-2.5 seq)
  kDataTx,         // unicast data tx (peer = dst, arg = seq, arg2 = attempt)
  kDataAck,        // layer-2 ack came back (peer = dst, arg = seq)
  kDataRetx,       // retrying after a missing ack (peer = dst, arg = seq)
  kDataDrop,       // packet dropped (peer = origin, arg = seq, arg2 = reason)
  kTableInsert,    // neighbor admitted (peer = neighbor)
  kTableEvict,     // entry removed (peer = victim, arg2 = reason)
  kTablePin,       // pin bit set (peer = neighbor)
  kTableUnpin,     // pin bit cleared (peer = neighbor)
  kTableCompare,   // compare-bit query (peer = candidate, arg = answer)
  kEtxUpdate,      // estimate moved (peer, arg = stream, v0 = old, v1 = new)
  kRouteChange,    // parent switch (peer = new, arg = old, arg2 = reason)
  kFaultStart,     // injected fault began (arg2 = FaultKind)
  kFaultEnd,       // injected fault lifted (arg2 = FaultKind)
  kPhyFrame,       // frame on the air (arg = bytes); the phy hot path
};

inline constexpr std::size_t kEventKindCount = 16;

[[nodiscard]] std::string_view event_kind_name(EventKind kind);

/// Severity of each kind, fixed at compile time: the emit hot path
/// compares it against the context level in one branch.
[[nodiscard]] constexpr TraceLevel event_level(EventKind kind) {
  switch (kind) {
    case EventKind::kBeaconTx:
    case EventKind::kBeaconRx:
    case EventKind::kDataTx:
    case EventKind::kDataAck:
    case EventKind::kPhyFrame:
      return TraceLevel::kDebug;
    case EventKind::kDataRetx:
    case EventKind::kDataDrop:
    case EventKind::kTableInsert:
    case EventKind::kTableEvict:
    case EventKind::kTablePin:
    case EventKind::kTableUnpin:
    case EventKind::kTableCompare:
    case EventKind::kEtxUpdate:
    case EventKind::kRouteChange:
    case EventKind::kFaultStart:
    case EventKind::kFaultEnd:
      return TraceLevel::kInfo;
  }
  return TraceLevel::kDebug;
}

// arg2 conventions, kept as plain uint16 constants so events stay PODs.

/// kDataDrop arg2: why the packet died.
enum class DropReason : std::uint16_t {
  kQueueFullOrigin = 0,
  kQueueFullForward = 1,
  kThlExceeded = 2,
  kRetxExhausted = 3,
};

/// kTableEvict arg2: which policy removed (or refused to remove) it.
enum class EvictReason : std::uint16_t {
  kWhiteCompare = 0,   // the paper's white+compare flush
  kProbabilistic = 1,  // baseline probabilistic replacement
  kNetworkRemove = 2,  // network layer gave up on the link
  kRefusedPinned = 3,  // removal refused: entry pinned (nothing evicted)
};

/// kEtxUpdate arg: which stream fed the outer EWMA (Figure 5's kb/ku).
enum class EtxStream : std::uint16_t { kBeacon = 0, kData = 1 };

/// kRouteChange arg2.
enum class RouteChangeReason : std::uint16_t {
  kBetterParent = 0,   // ordinary switch to a cheaper route
  kParentEvicted = 1,  // dead-parent eviction left the node routeless
};

/// One recorded event. 40 bytes, trivially copyable; `peer` and node-id
/// valued args use 0xFFFF/0xFFFE ("broadcast"/"none") as sentinels.
struct TelemetryEvent {
  Time at{};
  EventKind kind = EventKind::kBeaconTx;
  std::uint16_t node = 0xFFFF;
  std::uint16_t peer = 0xFFFF;
  std::uint16_t arg = 0;
  std::uint16_t arg2 = 0;
  double v0 = 0.0;
  double v1 = 0.0;
};

/// Receives every emitted event that passes the level and node filters.
/// Sinks are per-trial objects (the JSONL exporter); they run on the
/// trial's own thread.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void on_event(const TelemetryEvent& event) = 0;
};

/// Fixed-layout log2-bucketed histogram. Bucket b holds values whose
/// bit-width is b (bucket 0 = {0}, bucket b = [2^(b-1), 2^b - 1]),
/// saturating at the last bucket — so any uint64 lands in one of 64 POD
/// bins with no configuration, two histograms merge by elementwise add,
/// and the bins ride the existing CRC-framed codecs unchanged.
inline constexpr std::size_t kHistogramBins = 64;

[[nodiscard]] constexpr std::size_t histogram_bucket(std::uint64_t value) {
  const auto width = static_cast<std::size_t>(std::bit_width(value));
  return width < kHistogramBins ? width : kHistogramBins - 1;
}

/// Lower edge of bucket `bin` (bucket 0 holds exactly {0}).
[[nodiscard]] constexpr std::uint64_t histogram_bucket_floor(std::size_t bin) {
  return bin == 0 ? 0 : std::uint64_t{1} << (bin - 1);
}

struct Histogram {
  std::array<std::uint64_t, kHistogramBins> bins{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  void record(std::uint64_t value) {
    ++bins[histogram_bucket(value)];
    ++count;
    sum += value;
  }
  void merge(const Histogram& other) {
    for (std::size_t i = 0; i < kHistogramBins; ++i) bins[i] += other.bins[i];
    count += other.count;
    sum += other.sum;
  }
  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// winning bucket; exact for bucket 0, upper-bounded by bucket edges
  /// elsewhere. Returns 0 on an empty histogram.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

struct HistogramRow {
  std::string component;
  std::string name;
  std::uint16_t node = 0xFFFF;
  Histogram hist;
};

/// Engine phases covered by the scoped profiling timers.
enum class ProfilePhase : std::uint8_t {
  kEventDispatch = 0,  // one event callback inside Simulator::execute_next
  kChannelFreeze,      // link-cache rebuild (dense or sparse)
  kBatchKernel,        // one batched SNR->PRR/interference kernel pass
  kTrialSetup,         // network construction + boot, before run_for
  kTrialTeardown,      // metric extraction after the sim clock stops
};

inline constexpr std::size_t kProfilePhaseCount = 5;

[[nodiscard]] std::string_view profile_phase_name(ProfilePhase phase);

class TelemetryContext {
 public:
  /// Flight-recorder depth (power of two; the ring index is masked).
  static constexpr std::size_t kFlightCapacity = 128;

  TelemetryContext() = default;
  ~TelemetryContext();

  TelemetryContext(const TelemetryContext&) = delete;
  TelemetryContext& operator=(const TelemetryContext&) = delete;

  /// Binds the owning Simulator's clock so emit() can stamp events
  /// without every call site passing the time. Unbound contexts (bare
  /// unit tests) stamp Time{}.
  void bind_clock(const Time* now) { clock_ = now; }

  void set_level(TraceLevel level) { level_ = level; }
  [[nodiscard]] TraceLevel level() const { return level_; }
  [[nodiscard]] bool enabled(TraceLevel level) const {
    return static_cast<int>(level) <= static_cast<int>(level_);
  }

  /// Sink for full-trace export (may be null). The flight recorder works
  /// with or without one.
  void set_sink(TelemetrySink* sink) { sink_ = sink; }

  /// Restricts sink forwarding to events whose `node` or `peer` is in
  /// `nodes` (empty = no filter). The flight recorder is never filtered:
  /// a failure report should see everything recent.
  void set_node_filter(std::vector<std::uint16_t> nodes) {
    node_filter_ = std::move(nodes);
  }

  // ---- the hot path ---------------------------------------------------

  void emit(EventKind kind, std::uint16_t node, std::uint16_t peer = 0xFFFF,
            std::uint16_t arg = 0, std::uint16_t arg2 = 0, double v0 = 0.0,
            double v1 = 0.0) {
    if (!enabled(event_level(kind))) return;  // the disabled-path branch
    TelemetryEvent& slot = flight_[head_ & (kFlightCapacity - 1)];
    slot.at = clock_ != nullptr ? *clock_ : Time{};
    slot.kind = kind;
    slot.node = node;
    slot.peer = peer;
    slot.arg = arg;
    slot.arg2 = arg2;
    slot.v0 = v0;
    slot.v1 = v1;
    ++head_;
    if (sink_ != nullptr && node_passes(node, peer)) sink_->on_event(slot);
  }

  // ---- flight recorder ------------------------------------------------

  /// Recorded events, oldest first (at most kFlightCapacity).
  [[nodiscard]] std::vector<TelemetryEvent> flight() const;

  [[nodiscard]] std::uint64_t events_recorded() const { return head_; }

  /// The destructor publishes the flight recording to a thread-local
  /// slot; a supervisor that just watched a trial die on this thread
  /// collects it here (the Simulator — and its context — were destroyed
  /// by stack unwinding before the catch block ran).
  [[nodiscard]] static std::vector<TelemetryEvent> take_last_flight();
  static void clear_last_flight();

  // ---- counter / gauge / histogram registry ---------------------------
  //
  // Stable string keys: (component, name, node). node 0xFFFF = a
  // whole-sim counter. Registering the same key twice returns the same
  // slot. Handles stay valid for the context's lifetime (deque storage).

  struct CounterRow {
    std::string component;
    std::string name;
    std::uint16_t node = 0xFFFF;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string component;
    std::string name;
    std::uint16_t node = 0xFFFF;
    double value = 0.0;
  };

  [[nodiscard]] std::uint64_t* counter(std::string_view component,
                                       std::string_view name,
                                       std::uint16_t node = 0xFFFF);
  [[nodiscard]] double* gauge(std::string_view component,
                              std::string_view name,
                              std::uint16_t node = 0xFFFF);
  [[nodiscard]] Histogram* histogram(std::string_view component,
                                     std::string_view name,
                                     std::uint16_t node = 0xFFFF);

  /// Registration order (deterministic per trial: components register in
  /// construction order, which is a pure function of the config).
  [[nodiscard]] const std::deque<CounterRow>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::deque<GaugeRow>& gauges() const { return gauges_; }
  [[nodiscard]] const std::deque<HistogramRow>& histograms() const {
    return histograms_;
  }

  // ---- phase profiling -------------------------------------------------
  //
  // Scoped wall-clock timers over the engine's hot phases, feeding
  // per-phase histograms ("profile", "<phase>_ns"). Off by default: a
  // disabled PhaseTimer costs one branch (mirroring the emit() gate), no
  // clock read, and registers nothing — so clean-run registries (and
  // therefore JSONL exports) are byte-identical with profiling absent.
  // Wall-clock samples are inherently nondeterministic; enabling
  // profiling is an explicit observability opt-in (`--profile-phases`).

  void set_profiling(bool on) { profiling_ = on; }
  [[nodiscard]] bool profiling() const { return profiling_; }

  /// Lazily registers (and caches) the histogram backing `phase`.
  [[nodiscard]] Histogram* phase_histogram(ProfilePhase phase);

 private:
  [[nodiscard]] bool node_passes(std::uint16_t node,
                                 std::uint16_t peer) const {
    if (node_filter_.empty()) return true;
    for (const std::uint16_t n : node_filter_) {
      if (n == node || n == peer) return true;
    }
    return false;
  }

  TraceLevel level_ = TraceLevel::kInfo;
  const Time* clock_ = nullptr;
  TelemetrySink* sink_ = nullptr;
  std::vector<std::uint16_t> node_filter_;

  std::array<TelemetryEvent, kFlightCapacity> flight_{};
  std::uint64_t head_ = 0;

  std::deque<CounterRow> counters_;
  std::deque<GaugeRow> gauges_;
  std::deque<HistogramRow> histograms_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
  std::unordered_map<std::string, std::size_t> histogram_index_;

  bool profiling_ = false;
  std::array<Histogram*, kProfilePhaseCount> phase_hists_{};
};

/// Scoped phase timer. Construction with profiling off is the entire
/// disabled path: one branch, no clock read, no registration (gated in
/// CI by BM_PhaseTimerDisabled next to BM_TelemetryDisabled). Enabled,
/// it records elapsed steady-clock nanoseconds into the per-phase
/// histogram on scope exit.
class PhaseTimer {
 public:
  PhaseTimer(TelemetryContext& context, ProfilePhase phase) {
    if (!context.profiling()) return;
    hist_ = context.phase_histogram(phase);
    start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (hist_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    hist_->record(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Histogram* hist_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace fourbit::sim
