#include "sim/invariant.hpp"

#include "common/assert.hpp"

namespace fourbit::sim {

void InvariantAuditor::start(Duration interval) {
  FOURBIT_ASSERT(interval.us() > 0, "audit interval must be positive");
  stop();
  interval_ = interval;
  schedule_next();
}

void InvariantAuditor::stop() {
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = EventId{};
  }
}

void InvariantAuditor::schedule_next() {
  pending_ = sim_.schedule_in(interval_, [this] {
    pending_ = EventId{};
    audit_now();  // throws on violation; next audit then never arms
    schedule_next();
  });
}

void InvariantAuditor::audit_now() {
  ++audits_run_;
  for (const auto& [name, check] : checks_) {
    if (auto violation = check()) {
      throw InvariantViolationError{name, *violation};
    }
  }
}

}  // namespace fourbit::sim
