// One-shot and periodic timers on top of the simulator.
//
// Mirrors the TinyOS Timer abstraction the protocols in this repo were
// originally written against: start/stop/restart semantics, safe to
// restart from inside the fired callback.
#pragma once

#include <functional>
#include <utility>

#include "sim/simulator.hpp"

namespace fourbit::sim {

/// A restartable timer bound to a simulator and a callback.
///
/// The owner must outlive any pending firing; Timer cancels itself on
/// destruction so destroying the owner (with the timer inside) is safe.
class Timer {
 public:
  using Callback = std::function<void()>;

  Timer(Simulator& sim, Callback cb)
      : sim_(sim), callback_(std::move(cb)) {}

  ~Timer() { stop(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Fires once after `delay`, replacing any pending firing.
  void start_one_shot(Duration delay) {
    stop();
    periodic_ = false;
    arm(delay);
  }

  /// Fires every `period`, starting one period from now, replacing any
  /// pending firing.
  void start_periodic(Duration period) {
    stop();
    periodic_ = true;
    period_ = period;
    arm(period);
  }

  void stop() {
    if (pending_.valid()) {
      sim_.cancel(pending_);
      pending_ = EventId{};
    }
  }

  [[nodiscard]] bool running() const { return pending_.valid(); }

 private:
  void arm(Duration delay) {
    pending_ = sim_.schedule_in(delay, [this] { fire(); });
  }

  void fire() {
    pending_ = EventId{};
    if (periodic_) {
      arm(period_);
    }
    // The callback may stop or restart the timer; it runs after re-arming
    // so that restart-from-callback wins over the automatic re-arm.
    callback_();
  }

  Simulator& sim_;
  Callback callback_;
  EventId pending_;
  bool periodic_ = false;
  Duration period_;
};

}  // namespace fourbit::sim
