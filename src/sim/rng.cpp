#include "sim/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/assert.hpp"

namespace fourbit::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over the label, used to salt child streams.
std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro must not start from an all-zero state; SplitMix64 expansion of
  // any seed (including 0) avoids that.
  std::uint64_t sm = seed;
  for (auto& s : state_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  FOURBIT_ASSERT(n > 0, "uniform_int needs a positive bound");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] so log() is finite.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  FOURBIT_ASSERT(mean > 0.0, "exponential needs a positive mean");
  return -mean * std::log(1.0 - uniform());
}

Rng Rng::fork(std::string_view label) const {
  return fork(hash_label(label));
}

Rng Rng::fork(std::uint64_t key) const {
  // Mix the current state with the key through SplitMix64 so child streams
  // are decorrelated from the parent and from each other.
  std::uint64_t sm = state_[0] ^ rotl(state_[2], 13) ^ key;
  Rng child{splitmix64(sm)};
  return child;
}

}  // namespace fourbit::sim
