// Lightweight component-tagged trace logging.
//
// Off by default: a disabled level costs one branch. Benches enable
// nothing; debugging sessions enable per-component output to a stream.
#pragma once

#include <cstdio>
#include <functional>
#include <string_view>
#include <utility>

#include "sim/time.hpp"

namespace fourbit::sim {

enum class TraceLevel { kOff = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Process-wide trace configuration. Each simulation is single-threaded
/// (one Simulator per experiment), so plain statics suffice — but
/// runner::Campaign runs experiments on several threads at once, so the
/// level must be configured BEFORE a campaign starts and treated as
/// read-only while trials run.
class Trace {
 public:
  static void set_level(TraceLevel level) { level_ = level; }
  [[nodiscard]] static TraceLevel level() { return level_; }

  [[nodiscard]] static bool enabled(TraceLevel level) {
    return static_cast<int>(level) <= static_cast<int>(level_);
  }

  /// Redirects trace output to `sink` instead of stderr (tests capture
  /// events this way). Same threading rule as set_level: configure
  /// before trials run. clear_sink() restores stderr output.
  using Sink = std::function<void(TraceLevel, Time, std::string_view component,
                                  std::string_view message)>;
  static void set_sink(Sink sink) { sink_ = std::move(sink); }
  static void clear_sink() { sink_ = nullptr; }

  /// Writes "[ time] component: message". Callers pre-format `message`.
  static void log(TraceLevel level, Time now, std::string_view component,
                  std::string_view message) {
    if (!enabled(level)) return;
    if (sink_) {
      sink_(level, now, component, message);
      return;
    }
    std::fprintf(stderr, "[%12.6f] %.*s: %.*s\n", now.seconds(),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
  }

 private:
  inline static TraceLevel level_ = TraceLevel::kOff;
  inline static Sink sink_ = nullptr;
};

}  // namespace fourbit::sim
