#include "sim/telemetry.hpp"

#include <utility>

namespace fourbit::sim {
namespace {

// Where a dying trial's flight recording lands. Each worker thread runs
// one trial at a time, so a thread-local slot is race-free by
// construction: the context destructor (stack unwinding on the trial
// thread) writes it, and the supervisor's catch block (same thread)
// reads it immediately after.
thread_local std::vector<TelemetryEvent> t_last_flight;

std::string registry_key(std::string_view component, std::string_view name,
                         std::uint16_t node) {
  std::string key;
  key.reserve(component.size() + name.size() + 8);
  key.append(component);
  key.push_back('\0');
  key.append(name);
  key.push_back('\0');
  key.append(std::to_string(node));
  return key;
}

}  // namespace

std::string_view trace_level_name(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff: return "off";
    case TraceLevel::kError: return "error";
    case TraceLevel::kInfo: return "info";
    case TraceLevel::kDebug: return "debug";
  }
  return "?";
}

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kBeaconTx: return "beacon-tx";
    case EventKind::kBeaconRx: return "beacon-rx";
    case EventKind::kDataTx: return "data-tx";
    case EventKind::kDataAck: return "data-ack";
    case EventKind::kDataRetx: return "data-retx";
    case EventKind::kDataDrop: return "data-drop";
    case EventKind::kTableInsert: return "table-insert";
    case EventKind::kTableEvict: return "table-evict";
    case EventKind::kTablePin: return "table-pin";
    case EventKind::kTableUnpin: return "table-unpin";
    case EventKind::kTableCompare: return "table-compare";
    case EventKind::kEtxUpdate: return "etx-update";
    case EventKind::kRouteChange: return "route-change";
    case EventKind::kFaultStart: return "fault-start";
    case EventKind::kFaultEnd: return "fault-end";
    case EventKind::kPhyFrame: return "phy-frame";
  }
  return "?";
}

TelemetryContext::~TelemetryContext() {
  // Publish the recording even on clean shutdown; clear_last_flight() at
  // the top of each supervised attempt keeps recordings from leaking
  // across trials.
  t_last_flight = flight();
}

std::vector<TelemetryEvent> TelemetryContext::flight() const {
  const std::uint64_t count =
      head_ < kFlightCapacity ? head_ : std::uint64_t{kFlightCapacity};
  std::vector<TelemetryEvent> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = head_ - count; i < head_; ++i) {
    out.push_back(flight_[i & (kFlightCapacity - 1)]);
  }
  return out;
}

std::vector<TelemetryEvent> TelemetryContext::take_last_flight() {
  return std::exchange(t_last_flight, {});
}

void TelemetryContext::clear_last_flight() { t_last_flight.clear(); }

std::uint64_t* TelemetryContext::counter(std::string_view component,
                                         std::string_view name,
                                         std::uint16_t node) {
  const auto key = registry_key(component, name, node);
  if (const auto it = counter_index_.find(key);
      it != counter_index_.end()) {
    return &counters_[it->second].value;
  }
  counter_index_.emplace(key, counters_.size());
  counters_.push_back(
      CounterRow{std::string{component}, std::string{name}, node, 0});
  return &counters_.back().value;
}

double* TelemetryContext::gauge(std::string_view component,
                                std::string_view name, std::uint16_t node) {
  const auto key = registry_key(component, name, node);
  if (const auto it = gauge_index_.find(key); it != gauge_index_.end()) {
    return &gauges_[it->second].value;
  }
  gauge_index_.emplace(key, gauges_.size());
  gauges_.push_back(
      GaugeRow{std::string{component}, std::string{name}, node, 0.0});
  return &gauges_.back().value;
}

}  // namespace fourbit::sim
