#include "sim/telemetry.hpp"

#include <utility>

namespace fourbit::sim {
namespace {

// Where a dying trial's flight recording lands. Each worker thread runs
// one trial at a time, so a thread-local slot is race-free by
// construction: the context destructor (stack unwinding on the trial
// thread) writes it, and the supervisor's catch block (same thread)
// reads it immediately after.
thread_local std::vector<TelemetryEvent> t_last_flight;

std::string registry_key(std::string_view component, std::string_view name,
                         std::uint16_t node) {
  std::string key;
  key.reserve(component.size() + name.size() + 8);
  key.append(component);
  key.push_back('\0');
  key.append(name);
  key.push_back('\0');
  key.append(std::to_string(node));
  return key;
}

}  // namespace

std::string_view trace_level_name(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff: return "off";
    case TraceLevel::kError: return "error";
    case TraceLevel::kInfo: return "info";
    case TraceLevel::kDebug: return "debug";
  }
  return "?";
}

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kBeaconTx: return "beacon-tx";
    case EventKind::kBeaconRx: return "beacon-rx";
    case EventKind::kDataTx: return "data-tx";
    case EventKind::kDataAck: return "data-ack";
    case EventKind::kDataRetx: return "data-retx";
    case EventKind::kDataDrop: return "data-drop";
    case EventKind::kTableInsert: return "table-insert";
    case EventKind::kTableEvict: return "table-evict";
    case EventKind::kTablePin: return "table-pin";
    case EventKind::kTableUnpin: return "table-unpin";
    case EventKind::kTableCompare: return "table-compare";
    case EventKind::kEtxUpdate: return "etx-update";
    case EventKind::kRouteChange: return "route-change";
    case EventKind::kFaultStart: return "fault-start";
    case EventKind::kFaultEnd: return "fault-end";
    case EventKind::kPhyFrame: return "phy-frame";
  }
  return "?";
}

TelemetryContext::~TelemetryContext() {
  // Publish the recording even on clean shutdown; clear_last_flight() at
  // the top of each supervised attempt keeps recordings from leaking
  // across trials.
  t_last_flight = flight();
}

std::vector<TelemetryEvent> TelemetryContext::flight() const {
  const std::uint64_t count =
      head_ < kFlightCapacity ? head_ : std::uint64_t{kFlightCapacity};
  std::vector<TelemetryEvent> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = head_ - count; i < head_; ++i) {
    out.push_back(flight_[i & (kFlightCapacity - 1)]);
  }
  return out;
}

std::vector<TelemetryEvent> TelemetryContext::take_last_flight() {
  return std::exchange(t_last_flight, {});
}

void TelemetryContext::clear_last_flight() { t_last_flight.clear(); }

std::uint64_t* TelemetryContext::counter(std::string_view component,
                                         std::string_view name,
                                         std::uint16_t node) {
  const auto key = registry_key(component, name, node);
  if (const auto it = counter_index_.find(key);
      it != counter_index_.end()) {
    return &counters_[it->second].value;
  }
  counter_index_.emplace(key, counters_.size());
  counters_.push_back(
      CounterRow{std::string{component}, std::string{name}, node, 0});
  return &counters_.back().value;
}

double* TelemetryContext::gauge(std::string_view component,
                                std::string_view name, std::uint16_t node) {
  const auto key = registry_key(component, name, node);
  if (const auto it = gauge_index_.find(key); it != gauge_index_.end()) {
    return &gauges_[it->second].value;
  }
  gauge_index_.emplace(key, gauges_.size());
  gauges_.push_back(
      GaugeRow{std::string{component}, std::string{name}, node, 0.0});
  return &gauges_.back().value;
}

Histogram* TelemetryContext::histogram(std::string_view component,
                                       std::string_view name,
                                       std::uint16_t node) {
  const auto key = registry_key(component, name, node);
  if (const auto it = histogram_index_.find(key);
      it != histogram_index_.end()) {
    return &histograms_[it->second].hist;
  }
  histogram_index_.emplace(key, histograms_.size());
  histograms_.push_back(
      HistogramRow{std::string{component}, std::string{name}, node, {}});
  return &histograms_.back().hist;
}

double Histogram::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; walk buckets until the running
  // total covers it, then interpolate linearly inside that bucket.
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t bin = 0; bin < kHistogramBins; ++bin) {
    if (bins[bin] == 0) continue;
    const auto next = seen + bins[bin];
    if (static_cast<double>(next) >= rank) {
      if (bin == 0) return 0.0;  // bucket 0 holds exactly the value 0
      const double lo = static_cast<double>(histogram_bucket_floor(bin));
      const double hi =
          bin + 1 < kHistogramBins
              ? static_cast<double>(histogram_bucket_floor(bin + 1))
              : lo * 2.0;
      const double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(bins[bin]);
      return lo + (hi - lo) * (within < 0.0 ? 0.0 : within);
    }
    seen = next;
  }
  return static_cast<double>(histogram_bucket_floor(kHistogramBins - 1)) * 2.0;
}

std::string_view profile_phase_name(ProfilePhase phase) {
  switch (phase) {
    case ProfilePhase::kEventDispatch: return "event_dispatch_ns";
    case ProfilePhase::kChannelFreeze: return "channel_freeze_ns";
    case ProfilePhase::kBatchKernel: return "batch_kernel_ns";
    case ProfilePhase::kTrialSetup: return "trial_setup_ns";
    case ProfilePhase::kTrialTeardown: return "trial_teardown_ns";
  }
  return "?";
}

Histogram* TelemetryContext::phase_histogram(ProfilePhase phase) {
  Histogram*& slot = phase_hists_[static_cast<std::size_t>(phase)];
  if (slot == nullptr) {
    slot = histogram("profile", profile_phase_name(phase));
  }
  return slot;
}

}  // namespace fourbit::sim
