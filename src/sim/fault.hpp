// Deterministic fault injection: scripted node crashes/reboots and link
// outages, replayed against a simulation through opaque hooks.
//
// The injector knows nothing about radios, MACs or routing; the runner
// binds hooks that do the actual damage (runner/faults.*). That keeps
// the schedule — a plain value type derived from the trial seed — in the
// sim layer where tests can build and inspect it without a network.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace fourbit::sim {

enum class FaultKind : std::uint8_t {
  /// `node` crashes at `at` and reboots `duration` later (duration of
  /// zero = the node stays down for the rest of the run).
  kNodeCrash,
  /// The link `node`<->`peer` is forced to drop each frame with
  /// probability `loss` for `duration` (1.0 = total blackout).
  kLinkOutage,
  /// Scripted scenario: every current first-hop child of the root (the
  /// root's parent subtree heads, capped at `max_victims` when nonzero)
  /// crashes at `at` and reboots `duration` later. Victims are resolved
  /// at fire time via the root_region hook, because the subtree shape
  /// only exists once routing has converged.
  kRootRegionCrash,
};

struct FaultEvent {
  FaultKind kind = FaultKind::kNodeCrash;
  Time at;
  Duration duration;
  NodeId node = kInvalidNodeId;
  NodeId peer = kInvalidNodeId;  // kLinkOutage only
  double loss = 1.0;             // kLinkOutage only
  std::size_t max_victims = 0;   // kRootRegionCrash only; 0 = all
};

/// A deterministic schedule of faults. Building one from (spec, seed) is
/// the runner's job; the injector just replays it.
struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
};

class FaultInjector {
 public:
  /// Damage callbacks, bound by the layer that owns the network. Any
  /// hook may be left empty; the corresponding action is skipped (but
  /// still counted), so partial harnesses stay usable in tests.
  struct Hooks {
    std::function<void(NodeId)> crash_node;
    std::function<void(NodeId)> reboot_node;
    std::function<void(NodeId, NodeId, double loss)> link_down;
    std::function<void(NodeId, NodeId)> link_up;
    /// Resolves kRootRegionCrash victims at fire time.
    std::function<std::vector<NodeId>(std::size_t max_victims)> root_region;
  };

  FaultInjector(Simulator& sim, FaultPlan plan, Hooks hooks)
      : sim_(sim), plan_(std::move(plan)), hooks_(std::move(hooks)) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event in the plan. Call once, before (or at) the
  /// earliest event time; events already in the past fire immediately.
  void arm();

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::uint64_t crashes_executed() const { return crashes_; }
  [[nodiscard]] std::uint64_t reboots_executed() const { return reboots_; }
  [[nodiscard]] std::uint64_t outages_executed() const { return outages_; }

 private:
  void fire(const FaultEvent& event);
  void crash_with_reboot(NodeId node, Duration downtime);

  Simulator& sim_;
  FaultPlan plan_;
  Hooks hooks_;
  bool armed_ = false;
  std::uint64_t crashes_ = 0;
  std::uint64_t reboots_ = 0;
  std::uint64_t outages_ = 0;
};

}  // namespace fourbit::sim
