// Deterministic random-number generation.
//
// One root seed fans out to named per-module streams (placement,
// shadowing, noise, MAC backoff, traffic jitter, ...), so changing how
// one module consumes randomness never perturbs the others and every
// experiment is exactly reproducible from (seed, config).
#pragma once

#include <cstdint>
#include <string_view>

namespace fourbit::sim {

/// xoshiro256** with SplitMix64 seeding. Small, fast, and good enough
/// statistically for channel/workload modelling (not for cryptography).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with given mean (> 0).
  double exponential(double mean);

  /// Derives an independent child stream. The label participates in the
  /// derivation so distinct subsystems get distinct streams even when
  /// forked in a different order.
  [[nodiscard]] Rng fork(std::string_view label) const;

  /// Derives an independent child stream keyed by an integer (node id,
  /// link pair hash, ...).
  [[nodiscard]] Rng fork(std::uint64_t key) const;

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace fourbit::sim
