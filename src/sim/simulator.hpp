// The discrete-event simulator: a clock plus an event queue.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace fourbit::sim {

/// Owns simulated time. Components hold a Simulator& and schedule work
/// relative to `now()`; the driver calls one of the run_* methods.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `cb` after `delay` (must be >= 0).
  EventId schedule_in(Duration delay, EventQueue::Callback cb);

  /// Schedules `cb` at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, EventQueue::Callback cb);

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the queue drains or `stop()` is called.
  void run();

  /// Runs until simulated time reaches `deadline` (events at exactly the
  /// deadline still execute) or the queue drains. Time advances to the
  /// deadline even if the queue drained earlier.
  void run_until(Time deadline);

  void run_for(Duration d) { run_until(now_ + d); }

  /// Makes the current run() / run_until() return after the in-flight
  /// event completes.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  void execute_next();

  EventQueue queue_;
  Time now_;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
};

}  // namespace fourbit::sim
