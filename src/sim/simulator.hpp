// The discrete-event simulator: a clock plus an event queue.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>

#include "sim/arena.hpp"
#include "sim/event_queue.hpp"
#include "sim/telemetry.hpp"
#include "sim/time.hpp"

namespace fourbit::sim {

/// Kernel knobs for one Simulator (one trial). Every setting is
/// bit-identity-neutral: flipping any of them changes wall-clock speed,
/// never simulation results.
struct SimConfig {
  /// Calendar event queue (default) vs. the binary heap retained as the
  /// reference path; both pop in identical (time, FIFO) order.
  bool use_calendar_queue = true;
  /// Block size of the per-trial monotonic arena that feeds frame
  /// buffers, pending-receiver vectors, and transmission pools.
  std::size_t arena_block_bytes = Arena::kDefaultBlockBytes;
};

/// Cooperative execution budget for one Simulator (one trial). Zero
/// means unlimited. A campaign supervisor arms this so a wedged or
/// runaway trial cancels itself instead of stalling the whole pool.
struct SimBudget {
  /// Max events this Simulator may execute over its lifetime.
  std::uint64_t max_events = 0;
  /// Max wall-clock milliseconds since set_budget() armed the watchdog.
  std::int64_t max_wall_ms = 0;

  [[nodiscard]] constexpr bool limited() const {
    return max_events != 0 || max_wall_ms != 0;
  }
};

/// Thrown from inside the event loop when the armed SimBudget is
/// exhausted; supervisors classify it as a trial timeout.
class BudgetExceededError : public std::runtime_error {
 public:
  enum class Which { kEvents, kWallClock };

  BudgetExceededError(Which which, std::string what)
      : std::runtime_error(std::move(what)), which_(which) {}

  [[nodiscard]] Which which() const { return which_; }

 private:
  Which which_;
};

/// Owns simulated time. Components hold a Simulator& and schedule work
/// relative to `now()`; the driver calls one of the run_* methods.
class Simulator {
 public:
  explicit Simulator(SimConfig config = {});

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  [[nodiscard]] const SimConfig& config() const { return config_; }

  /// Per-trial monotonic arena (see sim/arena.hpp). Components that
  /// live no longer than the Simulator allocate steady-state transients
  /// here; growth is tracked by the sim/arena_bytes gauge.
  [[nodiscard]] Arena& arena() { return arena_; }

  /// Calendar-queue rebuilds so far (0 on the heap path); also exported
  /// as the sim/eq_resizes counter.
  [[nodiscard]] std::uint64_t queue_resizes() const {
    return queue_.resizes();
  }

  /// Per-trial telemetry (typed events, counters, flight recorder).
  /// Components emit through this instead of any global logger.
  [[nodiscard]] TelemetryContext& telemetry() { return telemetry_; }
  [[nodiscard]] const TelemetryContext& telemetry() const {
    return telemetry_;
  }

  /// Schedules `cb` after `delay` (must be >= 0).
  EventId schedule_in(Duration delay, EventQueue::Callback cb);

  /// Schedules `cb` at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, EventQueue::Callback cb);

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the queue drains or `stop()` is called.
  void run();

  /// Runs until simulated time reaches `deadline` (events at exactly the
  /// deadline still execute) or the queue drains. Time advances to the
  /// deadline even if the queue drained earlier.
  void run_until(Time deadline);

  void run_for(Duration d) { run_until(now_ + d); }

  /// Makes the current run() / run_until() return after the in-flight
  /// event completes.
  void stop() { stopped_ = true; }

  /// Arms (or re-arms) the cooperative watchdog: once `budget` is
  /// exhausted the event loop throws BudgetExceededError between events.
  /// max_events counts the Simulator's lifetime total, so arm before the
  /// first run_* call; the wall clock starts here. Events are never cut
  /// short mid-callback — the check runs at event granularity (wall time
  /// every kWallCheckPeriod events to keep the clock read off the hot
  /// path).
  void set_budget(SimBudget budget);

  [[nodiscard]] const SimBudget& budget() const { return budget_; }

  /// Invokes `hook` every `every_events` executed events (0 or an empty
  /// hook disables). The supervisor uses this to periodically flush the
  /// flight recorder to disk so a hard-crashed worker process still
  /// leaves its sim's last moments behind (supervisor.hpp
  /// flight_flush_base). Off the hot path: one integer modulo per event.
  void set_flush_hook(std::uint64_t every_events,
                      std::function<void()> hook) {
    flush_every_ = hook ? every_events : 0;
    flush_hook_ = std::move(hook);
  }

  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Time of the earliest pending event, or nullopt if the queue is
  /// empty (exposed for invariant audits of queue monotonicity).
  [[nodiscard]] std::optional<Time> next_event_time() const {
    if (queue_.empty()) return std::nullopt;
    return queue_.next_time();
  }

 private:
  static constexpr std::uint64_t kWallCheckPeriod = 512;

  void execute_next();
  void check_budget() const;

  SimConfig config_;
  Arena arena_;
  EventQueue queue_;
  Time now_;
  TelemetryContext telemetry_;  // after now_: the bound clock must exist
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
  std::uint64_t flush_every_ = 0;
  std::function<void()> flush_hook_;
  SimBudget budget_;
  std::chrono::steady_clock::time_point budget_armed_at_{};
  // Health metrics register lazily on first use so trials that never
  // grow the arena or resize the queue keep their telemetry registry
  // (and JSONL export) unchanged.
  std::uint64_t* ctr_eq_resizes_ = nullptr;
  double* gauge_arena_bytes_ = nullptr;
};

}  // namespace fourbit::sim
