// LQI-based estimator — the physical-layer-only approach of MultiHopLQI.
//
// Link cost is derived entirely from the radio's LQI readings on received
// beacons. This is cheap and agile for *received* packets, but blind to
// packets that never arrive: a link whose PRR collapses under bursty
// interference keeps reporting pristine LQI on its survivors (the paper's
// Figure 3), so the estimate never degrades. on_unicast_result is
// deliberately ignored — MultiHopLQI has no link-layer feedback path.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/ring_window.hpp"
#include "link/estimator.hpp"
#include "link/neighbor_table.hpp"
#include "sim/rng.hpp"

namespace fourbit::estimators {

struct LqiEstimatorConfig {
  /// PHY information is free, so the table can be larger than a
  /// probe-based estimator's; MultiHopLQI effectively tracked whichever
  /// beacons it heard. 0 = unbounded.
  std::size_t table_capacity = 16;

  /// History weight of the EWMA over per-beacon LQI readings. The real
  /// MultiHopLQI used the *instantaneous* LQI of the latest routing
  /// beacon (history 0); a light smoothing is available for ablations.
  double lqi_history = 0.5;

  /// etx proxy = 10^((reference - lqi) / slope), clamped to [1, max].
  /// Saturates at 1 for pristine links and grows steeply below ~105 —
  /// mirroring MultiHopLQI's strongly convex LQI-to-cost tables, which
  /// make it demand near-perfect readings and thus take shorter hops.
  double reference_lqi = 108.0;
  double slope = 8.0;
  double max_etx = 16.0;
};

class LqiEstimator final : public link::LinkEstimator {
 public:
  LqiEstimator(LqiEstimatorConfig config, sim::Rng rng);

  [[nodiscard]] std::vector<std::uint8_t> wrap_beacon(
      std::span<const std::uint8_t> routing_payload) override;
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> unwrap_beacon(
      NodeId from, std::span<const std::uint8_t> bytes,
      const link::PacketPhyInfo& phy) override;

  /// No link-layer feedback: the defining limitation of this estimator.
  void on_unicast_result(NodeId, bool) override {}

  /// Data packets also carry LQI; MultiHopLQI-class protocols read it.
  void on_data_rx(NodeId from, const link::PacketPhyInfo& phy) override;

  bool pin(NodeId n) override;
  void unpin(NodeId n) override;
  void clear_pins() override;
  [[nodiscard]] std::optional<double> etx(NodeId n) const override;
  [[nodiscard]] std::vector<NodeId> neighbors() const override;
  [[nodiscard]] std::vector<NodeId> pinned() const override {
    return table_.pinned_nodes();
  }
  [[nodiscard]] std::size_t table_capacity() const override {
    return table_.capacity();
  }
  bool remove(NodeId n) override;
  void set_compare_provider(link::CompareProvider*) override {}
  void set_telemetry(sim::TelemetryContext* telemetry, NodeId self) override {
    telemetry_ = telemetry;
    self_ = self.value();
  }
  void reset() override {
    table_.clear();
    beacon_seq_ = 0;
  }

  [[nodiscard]] std::optional<double> smoothed_lqi(NodeId n) const;

  /// The LQI -> ETX-proxy mapping, exposed for tests and benches.
  [[nodiscard]] double lqi_to_etx(double lqi) const;

 private:
  struct LinkState {
    Ewma lqi;
    explicit LinkState(const LqiEstimatorConfig& cfg)
        : lqi(cfg.lqi_history) {}
  };

  using Table = link::NeighborTable<LinkState>;

  void note_lqi(NodeId from, int lqi);

  LqiEstimatorConfig config_;
  sim::Rng rng_;
  Table table_;
  sim::TelemetryContext* telemetry_ = nullptr;
  std::uint16_t self_ = 0xFFFF;
  std::uint8_t beacon_seq_ = 0;
};

}  // namespace fourbit::estimators
