#include "estimators/broadcast_etx.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/byte_io.hpp"
#include "sim/telemetry.hpp"

namespace fourbit::estimators {
namespace {

constexpr double kQuantum = 255.0;

std::uint8_t quantize_prr(double prr) {
  const double clamped = std::clamp(prr, 0.0, 1.0);
  return static_cast<std::uint8_t>(clamped * kQuantum + 0.5);
}

double dequantize_prr(std::uint8_t q) {
  return static_cast<double>(q) / kQuantum;
}

}  // namespace

BroadcastEtxEstimator::BroadcastEtxEstimator(NodeId self,
                                             BroadcastEtxConfig config,
                                             sim::Rng rng)
    : self_(self), config_(config), rng_(rng), table_(config.table_capacity) {}

std::vector<std::uint8_t> BroadcastEtxEstimator::wrap_beacon(
    std::span<const std::uint8_t> routing_payload) {
  // Header: seq, footer-count; footer: (node, inbound quality) pairs.
  // With more table entries than footer_max, consecutive beacons rotate
  // through the table so every neighbor is eventually reported.
  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  w.u8(beacon_seq_++);

  const auto& entries = table_.entries();
  std::vector<std::pair<NodeId, std::uint8_t>> footer;
  const std::size_t n = entries.size();
  for (std::size_t i = 0; i < n && footer.size() < config_.footer_max; ++i) {
    const auto& e = entries[(footer_rotation_ + i) % n];
    if (!e.data.inbound_prr.has_value()) continue;
    footer.emplace_back(e.node, quantize_prr(e.data.inbound_prr.value()));
  }
  if (n > 0) footer_rotation_ = (footer_rotation_ + config_.footer_max) % n;

  w.u8(static_cast<std::uint8_t>(footer.size()));
  for (const auto& [node, q] : footer) {
    w.u16(node.value());
    w.u8(q);
  }
  w.bytes(routing_payload);
  return out;
}

std::optional<std::vector<std::uint8_t>> BroadcastEtxEstimator::unwrap_beacon(
    NodeId from, std::span<const std::uint8_t> bytes,
    const link::PacketPhyInfo& phy) {
  ByteReader r{bytes};
  const std::uint8_t seq = r.u8();
  const std::uint8_t footer_count = r.u8();
  bool reported_us = false;
  double reported_prr = 0.0;
  for (std::uint8_t i = 0; i < footer_count; ++i) {
    const NodeId node{r.u16()};
    const std::uint8_t q = r.u8();
    // The footer entry about *us* carries the reverse-direction quality.
    if (node == self_) {
      reported_us = true;
      reported_prr = dequantize_prr(q);
    }
  }
  if (!r.ok()) return std::nullopt;
  const auto payload_span = r.rest();
  std::vector<std::uint8_t> payload{payload_span.begin(), payload_span.end()};

  Table::Entry* entry = table_.find(from);
  if (entry == nullptr) {
    if (try_admit(from, phy, payload)) {
      entry = table_.insert(from, LinkState{config_});
      FOURBIT_ASSERT(entry != nullptr, "admission promised a free slot");
      entry->data.has_seq = true;
      entry->data.last_seq = seq;
      entry->data.window_received = 1;
      entry->data.window_expected = 1;
      // Bootstrap the inbound quality from this first beacon (the
      // bidirectional product still needs the neighbor's reverse report
      // before the link is usable — the in-degree limitation stands).
      entry->data.inbound_prr.seed(1.0);
    }
  } else {
    LinkState& st = entry->data;
    const std::uint8_t gap = static_cast<std::uint8_t>(seq - st.last_seq);
    st.window_expected += std::max<std::uint32_t>(gap, 1);
    st.window_received += 1;
    st.last_seq = seq;
    if (st.window_expected >= config_.beacon_window) {
      const double prr =
          std::min(1.0, static_cast<double>(st.window_received) /
                            static_cast<double>(st.window_expected));
      st.inbound_prr.update(prr);
      st.window_received = 0;
      st.window_expected = 0;
    }
  }

  if (entry != nullptr && reported_us) {
    entry->data.has_reverse = true;
    entry->data.reverse_prr = reported_prr;
  }
  return payload;
}

bool BroadcastEtxEstimator::try_admit(
    NodeId from, const link::PacketPhyInfo& phy,
    std::span<const std::uint8_t> payload) {
  if (!table_.full()) return true;

  const auto evict = [this](sim::EvictReason reason) {
    const auto victim = table_.evict_random_unpinned(rng_);
    if (victim && telemetry_ != nullptr) {
      telemetry_->emit(sim::EventKind::kTableEvict, self_.value(),
                       victim->value(), 0,
                       static_cast<std::uint16_t>(reason));
    }
    return victim.has_value();
  };

  switch (config_.insertion) {
    case core::InsertionPolicy::kWhiteCompare:
      // White/compare is a fast path SUPPLEMENTING the baseline
      // probabilistic replacement (see FourBitEstimator::try_admit).
      if (phy.white && compare_ != nullptr &&
          compare_->compare_bit(from, payload)) {
        return evict(sim::EvictReason::kWhiteCompare);
      }
      if (!rng_.bernoulli(config_.probabilistic_insert_p)) return false;
      return evict(sim::EvictReason::kProbabilistic);
    case core::InsertionPolicy::kProbabilistic:
      if (!rng_.bernoulli(config_.probabilistic_insert_p)) return false;
      return evict(sim::EvictReason::kProbabilistic);
    case core::InsertionPolicy::kNever:
      return false;
  }
  return false;
}

bool BroadcastEtxEstimator::pin(NodeId n) { return table_.pin(n); }
void BroadcastEtxEstimator::unpin(NodeId n) { table_.unpin(n); }
void BroadcastEtxEstimator::clear_pins() { table_.clear_pins(); }

std::optional<double> BroadcastEtxEstimator::etx(NodeId n) const {
  const Table::Entry* entry = table_.find(n);
  if (entry == nullptr) return std::nullopt;
  const LinkState& st = entry->data;
  // Bidirectional ETX needs both directions: our inbound measurement and
  // their reported reverse quality. Without the reverse report (we are
  // not in their table) the link cannot be used — the in-degree limit.
  if (!st.inbound_prr.has_value() || !st.has_reverse) return std::nullopt;
  const double product = st.inbound_prr.value() * st.reverse_prr;
  if (product <= 1.0 / config_.max_etx) return config_.max_etx;
  return std::max(1.0, 1.0 / product);
}

std::optional<double> BroadcastEtxEstimator::inbound_quality(NodeId n) const {
  const Table::Entry* e = table_.find(n);
  if (e == nullptr || !e->data.inbound_prr.has_value()) return std::nullopt;
  return e->data.inbound_prr.value();
}

std::optional<double> BroadcastEtxEstimator::reverse_quality(NodeId n) const {
  const Table::Entry* e = table_.find(n);
  if (e == nullptr || !e->data.has_reverse) return std::nullopt;
  return e->data.reverse_prr;
}

std::vector<NodeId> BroadcastEtxEstimator::neighbors() const {
  std::vector<NodeId> out;
  out.reserve(table_.size());
  for (const auto& e : table_.entries()) out.push_back(e.node);
  return out;
}

bool BroadcastEtxEstimator::remove(NodeId n) {
  const Table::Entry* entry = table_.find(n);
  if (entry == nullptr) return true;
  if (entry->pinned) {
    if (telemetry_ != nullptr) {
      telemetry_->emit(
          sim::EventKind::kTableEvict, self_.value(), n.value(), 0,
          static_cast<std::uint16_t>(sim::EvictReason::kRefusedPinned));
    }
    return false;
  }
  return table_.remove(n);
}

}  // namespace fourbit::estimators
