// Broadcast-probe bidirectional ETX estimator — the stock estimator of
// CTP / MintRoute (Woo et al.), the paper's "CTP T2" baseline.
//
// Beacons carry a footer listing (neighbor, inbound reception quality)
// pairs, so each side can combine the two directions into a bidirectional
// ETX = 1 / (quality_fwd * quality_rev). Two structural weaknesses — both
// demonstrated by the paper — follow directly:
//   * a node can only be chosen as a parent by neighbors that appear in
//     ITS table (otherwise it never reports their inbound quality), so
//     the table size caps a node's useful in-degree;
//   * estimates move only at the beacon rate: when a link dies under data
//     traffic, the estimator finds out beacons later, not acks later.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/ring_window.hpp"
#include "core/four_bit_config.hpp"
#include "link/estimator.hpp"
#include "link/neighbor_table.hpp"
#include "sim/rng.hpp"

namespace fourbit::estimators {

struct BroadcastEtxConfig {
  /// Link table size; 0 = unbounded ("CTP unconstrained").
  std::size_t table_capacity = 10;

  /// Expected beacons per inbound-PRR sample.
  std::size_t beacon_window = 2;

  /// History weight of the EWMA over inbound PRR samples.
  double prr_history = 2.0 / 3.0;

  /// Max (neighbor, quality) pairs per beacon footer; a full table is
  /// reported round-robin across consecutive beacons.
  std::size_t footer_max = 6;

  /// Table admission rule. kProbabilistic is the Woo baseline; the
  /// "CTP + white/compare" variant of Figure 6 uses kWhiteCompare.
  core::InsertionPolicy insertion = core::InsertionPolicy::kProbabilistic;
  double probabilistic_insert_p = 0.25;

  double max_etx = 16.0;
};

class BroadcastEtxEstimator final : public link::LinkEstimator {
 public:
  /// `self` is this node's address — needed to recognize this node in
  /// incoming beacon footers (the reverse-direction quality report).
  BroadcastEtxEstimator(NodeId self, BroadcastEtxConfig config, sim::Rng rng);

  [[nodiscard]] std::vector<std::uint8_t> wrap_beacon(
      std::span<const std::uint8_t> routing_payload) override;
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> unwrap_beacon(
      NodeId from, std::span<const std::uint8_t> bytes,
      const link::PacketPhyInfo& phy) override;

  /// The stock estimator has no link-layer input: acks are ignored.
  void on_unicast_result(NodeId, bool) override {}

  bool pin(NodeId n) override;
  void unpin(NodeId n) override;
  void clear_pins() override;
  [[nodiscard]] std::optional<double> etx(NodeId n) const override;
  [[nodiscard]] std::vector<NodeId> neighbors() const override;
  [[nodiscard]] std::vector<NodeId> pinned() const override {
    return table_.pinned_nodes();
  }
  [[nodiscard]] std::size_t table_capacity() const override {
    return table_.capacity();
  }
  bool remove(NodeId n) override;
  void set_compare_provider(link::CompareProvider* provider) override {
    compare_ = provider;
  }
  void set_telemetry(sim::TelemetryContext* telemetry, NodeId) override {
    telemetry_ = telemetry;
  }
  void reset() override {
    table_.clear();
    beacon_seq_ = 0;
    footer_rotation_ = 0;
  }

  // Introspection for tests.
  [[nodiscard]] std::optional<double> inbound_quality(NodeId n) const;
  [[nodiscard]] std::optional<double> reverse_quality(NodeId n) const;
  [[nodiscard]] std::size_t table_size() const { return table_.size(); }

 private:
  struct LinkState {
    bool has_seq = false;
    std::uint8_t last_seq = 0;
    std::uint32_t window_received = 0;
    std::uint32_t window_expected = 0;
    Ewma inbound_prr;  // what we receive from them
    bool has_reverse = false;
    double reverse_prr = 0.0;  // what they report receiving from us

    explicit LinkState(const BroadcastEtxConfig& cfg)
        : inbound_prr(cfg.prr_history) {}
  };

  using Table = link::NeighborTable<LinkState>;

  [[nodiscard]] bool try_admit(NodeId from, const link::PacketPhyInfo& phy,
                               std::span<const std::uint8_t> payload);

  NodeId self_;
  BroadcastEtxConfig config_;
  sim::Rng rng_;
  Table table_;
  link::CompareProvider* compare_ = nullptr;
  sim::TelemetryContext* telemetry_ = nullptr;
  std::uint8_t beacon_seq_ = 0;
  std::size_t footer_rotation_ = 0;
};

}  // namespace fourbit::estimators
