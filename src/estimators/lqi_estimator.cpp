#include "estimators/lqi_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "common/byte_io.hpp"
#include "sim/telemetry.hpp"

namespace fourbit::estimators {

LqiEstimator::LqiEstimator(LqiEstimatorConfig config, sim::Rng rng)
    : config_(config), rng_(rng), table_(config.table_capacity) {}

std::vector<std::uint8_t> LqiEstimator::wrap_beacon(
    std::span<const std::uint8_t> routing_payload) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + routing_payload.size());
  ByteWriter w{out};
  w.u8(beacon_seq_++);
  w.bytes(routing_payload);
  return out;
}

std::optional<std::vector<std::uint8_t>> LqiEstimator::unwrap_beacon(
    NodeId from, std::span<const std::uint8_t> bytes,
    const link::PacketPhyInfo& phy) {
  ByteReader r{bytes};
  (void)r.u8();  // sequence number: LQI estimation does not need gaps
  if (!r.ok()) return std::nullopt;
  const auto payload_span = r.rest();
  std::vector<std::uint8_t> payload{payload_span.begin(), payload_span.end()};
  note_lqi(from, phy.lqi);
  return payload;
}

void LqiEstimator::on_data_rx(NodeId from, const link::PacketPhyInfo& phy) {
  note_lqi(from, phy.lqi);
}

void LqiEstimator::note_lqi(NodeId from, int lqi) {
  Table::Entry* entry = table_.find(from);
  if (entry == nullptr) {
    if (table_.full()) {
      // PHY information is free, so eviction favors keeping the
      // best-looking links: drop the worst smoothed LQI.
      const auto victim = table_.evict_worst_unpinned(
          [](const Table::Entry& worst, const Table::Entry& e) {
            const double a =
                worst.data.lqi.has_value() ? worst.data.lqi.value() : 1e9;
            const double b = e.data.lqi.has_value() ? e.data.lqi.value() : 1e9;
            return b < a;  // e is worse than current worst
          });
      if (!victim) return;
      if (telemetry_ != nullptr) {
        telemetry_->emit(
            sim::EventKind::kTableEvict, self_, victim->value(), 0,
            static_cast<std::uint16_t>(sim::EvictReason::kProbabilistic));
      }
    }
    entry = table_.insert(from, LinkState{config_});
    if (entry == nullptr) return;
  }
  entry->data.lqi.update(static_cast<double>(lqi));
}

double LqiEstimator::lqi_to_etx(double lqi) const {
  const double raw =
      std::pow(10.0, (config_.reference_lqi - lqi) / config_.slope);
  return std::clamp(raw, 1.0, config_.max_etx);
}

std::optional<double> LqiEstimator::etx(NodeId n) const {
  const Table::Entry* e = table_.find(n);
  if (e == nullptr || !e->data.lqi.has_value()) return std::nullopt;
  return lqi_to_etx(e->data.lqi.value());
}

std::optional<double> LqiEstimator::smoothed_lqi(NodeId n) const {
  const Table::Entry* e = table_.find(n);
  if (e == nullptr || !e->data.lqi.has_value()) return std::nullopt;
  return e->data.lqi.value();
}

bool LqiEstimator::pin(NodeId n) { return table_.pin(n); }
void LqiEstimator::unpin(NodeId n) { table_.unpin(n); }
void LqiEstimator::clear_pins() { table_.clear_pins(); }

std::vector<NodeId> LqiEstimator::neighbors() const {
  std::vector<NodeId> out;
  out.reserve(table_.size());
  for (const auto& e : table_.entries()) out.push_back(e.node);
  return out;
}

bool LqiEstimator::remove(NodeId n) {
  const Table::Entry* entry = table_.find(n);
  if (entry == nullptr) return true;
  if (entry->pinned) {
    if (telemetry_ != nullptr) {
      telemetry_->emit(
          sim::EventKind::kTableEvict, self_, n.value(), 0,
          static_cast<std::uint16_t>(sim::EvictReason::kRefusedPinned));
    }
    return false;
  }
  return table_.remove(n);
}

}  // namespace fourbit::estimators
