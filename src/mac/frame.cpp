#include "mac/frame.hpp"

#include "common/byte_io.hpp"
#include "common/crc16.hpp"

namespace fourbit::mac {

std::vector<std::uint8_t> MacFrame::encode() const {
  std::vector<std::uint8_t> out;
  encode_into(out);
  return out;
}

void MacFrame::encode_into(std::vector<std::uint8_t>& out) const {
  out.clear();
  ByteWriter w{out};
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(dsn);
  if (type == FrameType::kAck) {
    w.u16(dst.value());
  } else {
    w.u16(src.value());
    w.u16(dst.value());
    w.bytes(payload);
  }
  w.u16(crc16(out));
}

std::optional<MacFrameView> MacFrameView::decode(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < MacFrame::kFcsBytes + 2) return std::nullopt;
  const auto body = bytes.first(bytes.size() - MacFrame::kFcsBytes);
  const std::uint16_t fcs =
      static_cast<std::uint16_t>(bytes[bytes.size() - 2]) << 8 |
      bytes[bytes.size() - 1];
  if (crc16(body) != fcs) return std::nullopt;

  ByteReader r{body};
  MacFrameView f;
  const std::uint8_t type = r.u8();
  f.dsn = r.u8();
  switch (type) {
    case static_cast<std::uint8_t>(FrameType::kAck):
      f.type = FrameType::kAck;
      f.dst = NodeId{r.u16()};
      break;
    case static_cast<std::uint8_t>(FrameType::kData): {
      f.type = FrameType::kData;
      f.src = NodeId{r.u16()};
      f.dst = NodeId{r.u16()};
      f.payload = r.rest();
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.ok()) return std::nullopt;
  return f;
}

MacFrame MacFrameView::to_owned() const {
  MacFrame f;
  f.type = type;
  f.dsn = dsn;
  f.src = src;
  f.dst = dst;
  f.payload.assign(payload.begin(), payload.end());
  return f;
}

std::optional<MacFrame> MacFrame::decode(
    std::span<const std::uint8_t> bytes) {
  const auto view = MacFrameView::decode(bytes);
  if (!view.has_value()) return std::nullopt;
  return view->to_owned();
}

}  // namespace fourbit::mac
