#include "mac/lpl.hpp"

#include <utility>

#include "common/assert.hpp"

namespace fourbit::mac {

LplMac::LplMac(sim::Simulator& sim, CsmaMac& inner, LplConfig config,
               sim::Rng rng)
    : sim_(sim),
      inner_(inner),
      config_(config),
      rng_(rng),
      phase_timer_(sim,
                   [this] {
                     wake_timer_.start_periodic(config_.wake_interval);
                     on_wake();
                   }),
      wake_timer_(sim, [this] { on_wake(); }),
      sample_timer_(sim, [this] { on_sample_end(); }),
      gap_timer_(sim, [this] { transmit_copy(); }) {
  inner_.set_rx_handler([this](NodeId src, std::uint8_t dsn,
                               std::span<const std::uint8_t> payload,
                               const phy::RxInfo& info) {
    on_inner_rx(src, dsn, payload, info, /*snooped=*/false);
  });
  inner_.set_snoop_handler([this](NodeId src, std::uint8_t dsn,
                                  std::span<const std::uint8_t> payload,
                                  const phy::RxInfo& info) {
    on_inner_rx(src, dsn, payload, info, /*snooped=*/true);
  });
  arm_phase();
  update_listening();
}

void LplMac::arm_phase() {
  // Desynchronize wake schedules across nodes.
  const double phase = rng_.uniform(0.0, config_.wake_interval.seconds());
  phase_timer_.start_one_shot(sim::Duration::from_seconds(phase));
}

void LplMac::reset() {
  phase_timer_.stop();
  wake_timer_.stop();
  sample_timer_.stop();
  gap_timer_.stop();
  queue_.clear();  // callbacks dropped deliberately: their owners crashed
  tx_active_ = false;
  current_ = Pending{};
  sampling_ = false;
  hold_until_ = sim::Time{};
  recent_.clear();
  inner_.reset();
  update_listening();  // radio off until restart()
}

void LplMac::restart() {
  // A fresh random phase: a rebooted node does not remember its old wake
  // schedule, which is exactly why senders must cover a full interval.
  arm_phase();
  update_listening();
}

void LplMac::on_wake() {
  sampling_ = true;
  update_listening();
  sample_timer_.start_one_shot(config_.sample_duration);
}

void LplMac::on_sample_end() {
  // Extend the sample while the channel is busy (a train is passing) or
  // we received something very recently.
  const bool channel_busy = !inner_.radio().channel_clear() &&
                            !inner_.radio().transmitting();
  if (channel_busy || sim_.now() < hold_until_) {
    sample_timer_.start_one_shot(config_.sample_duration);
    return;
  }
  sampling_ = false;
  update_listening();
}

void LplMac::update_listening() {
  const bool awake =
      sampling_ || tx_active_ || sim_.now() < hold_until_;
  inner_.radio().set_listening(awake);
}

void LplMac::send(NodeId dst, std::span<const std::uint8_t> payload,
                  SendCallback done) {
  Pending p;
  p.dst = dst;
  p.payload.assign(payload.begin(), payload.end());
  p.done = std::move(done);
  queue_.push_back(std::move(p));
  service_queue();
}

void LplMac::service_queue() {
  if (tx_active_ || queue_.empty()) return;
  tx_active_ = true;
  current_ = std::move(queue_.front());
  queue_.pop_front();
  current_dsn_ = inner_.allocate_dsn();
  tx_deadline_ =
      sim_.now() + config_.wake_interval * config_.tx_margin;
  current_cca_attempts_ = 1;
  update_listening();  // stay awake for the acks
  transmit_copy();
}

void LplMac::transmit_copy() {
  FOURBIT_ASSERT(tx_active_, "transmit_copy without an active train");
  ++copies_;
  inner_.send_with_dsn(
      current_.dst, current_.payload, current_dsn_,
      [this](const TxResult& r) {
        current_cca_attempts_ = r.cca_attempts;
        if (r.acked) {
          finish_tx(TxResult{.acked = true,
                             .cca_attempts = current_cca_attempts_});
          return;
        }
        if (sim_.now() >= tx_deadline_) {
          // Unicast: the whole train went unacknowledged. Broadcast:
          // normal completion (trains are never acked).
          finish_tx(TxResult{.acked = false,
                             .cca_attempts = current_cca_attempts_});
          return;
        }
        gap_timer_.start_one_shot(config_.tx_gap);
      });
}

void LplMac::finish_tx(TxResult result) {
  tx_active_ = false;
  update_listening();
  SendCallback done = std::move(current_.done);
  if (done) done(result);
  service_queue();
}

bool LplMac::is_duplicate(NodeId src, std::uint8_t dsn) {
  const std::uint32_t key =
      static_cast<std::uint32_t>(src.value()) << 8 | dsn;
  const sim::Time now = sim_.now();
  // Opportunistic cleanup keeps the map tiny.
  if (recent_.size() > 64) {
    std::erase_if(recent_, [now](const auto& kv) {
      return kv.second <= now;
    });
  }
  const auto [it, inserted] = recent_.try_emplace(
      key, now + config_.wake_interval * (config_.tx_margin + 1.0));
  if (!inserted) {
    if (it->second > now) return true;
    it->second = now + config_.wake_interval * (config_.tx_margin + 1.0);
  }
  return false;
}

void LplMac::on_inner_rx(NodeId src, std::uint8_t dsn,
                         std::span<const std::uint8_t> payload,
                         const phy::RxInfo& info, bool snooped) {
  // Hearing anything keeps us awake briefly (more of the train, or a
  // follow-up packet, may be coming).
  hold_until_ = sim_.now() + config_.after_rx_hold;
  update_listening();

  if (is_duplicate(src, dsn)) {
    ++dup_suppressed_;
    return;
  }
  if (snooped) {
    if (snoop_handler_) snoop_handler_(src, dsn, payload, info);
  } else {
    if (rx_handler_) rx_handler_(src, dsn, payload, info);
  }
}

}  // namespace fourbit::mac
