// Abstract link layer used by the network stack.
//
// Two implementations exist: the always-on CSMA/CA MAC (CsmaMac) and the
// duty-cycled low-power-listening wrapper (LplMac). Both provide the
// property the estimator interfaces require: synchronous per-transmission
// acknowledgment feedback.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "common/ids.hpp"
#include "phy/radio.hpp"

namespace fourbit::mac {

/// Outcome of one MAC-level send (a single logical transmission; LPL may
/// put several copies on the air under the hood).
struct TxResult {
  bool acked = false;    // meaningful only for unicast sends
  int cca_attempts = 1;  // CSMA attempts for the (first) copy
};

class Mac {
 public:
  using RxHandler = std::function<void(NodeId src, std::uint8_t dsn,
                                       std::span<const std::uint8_t>,
                                       const phy::RxInfo&)>;
  using SendCallback = std::function<void(const TxResult&)>;

  virtual ~Mac() = default;

  [[nodiscard]] virtual NodeId id() const = 0;

  virtual void set_rx_handler(RxHandler h) = 0;

  /// Promiscuous tap for unicast frames addressed to other nodes.
  virtual void set_snoop_handler(RxHandler h) = 0;

  /// Queues one logical transmission; the callback reports its outcome.
  virtual void send(NodeId dst, std::span<const std::uint8_t> payload,
                    SendCallback done) = 0;

  [[nodiscard]] virtual std::size_t queue_depth() const = 0;

  // ---- fault model ----------------------------------------------------

  /// Node crash: drop the queue WITHOUT completing callbacks (the upper
  /// layers are being wiped too), stop timers, forget any ack in flight.
  /// Default no-op for fakes without internal state.
  virtual void reset() {}

  /// Node reboot after reset(): re-arm whatever periodic machinery the
  /// MAC runs (e.g. the LPL wake schedule). Default no-op.
  virtual void restart() {}
};

}  // namespace fourbit::mac
