// Link-layer frame format (802.15.4-flavoured).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.hpp"

namespace fourbit::mac {

enum class FrameType : std::uint8_t {
  kData = 0,  // unicast or broadcast MPDU carrying an upper-layer payload
  kAck = 1,   // synchronous acknowledgment (no payload)
};

/// Decoded MAC frame. On the air this is
///   type(1) dsn(1) src(2) dst(2) payload(n) fcs(2)   for kData
///   type(1) dsn(1) dst(2) fcs(2)                     for kAck
/// The FCS is CRC-16/CCITT over everything before it, as in 802.15.4;
/// decode() rejects frames whose check fails.
struct MacFrame {
  FrameType type = FrameType::kData;
  std::uint8_t dsn = 0;  // data sequence number, matched by acks
  NodeId src;
  NodeId dst;
  std::vector<std::uint8_t> payload;

  static constexpr std::size_t kDataHeaderBytes = 6;
  static constexpr std::size_t kFcsBytes = 2;
  static constexpr std::size_t kAckFrameBytes = 4 + kFcsBytes;

  [[nodiscard]] bool is_broadcast() const { return dst == kBroadcastId; }

  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Encodes into `out` (cleared first), reusing its capacity. The MAC
  /// keeps one encode buffer per stack and re-encodes into it for every
  /// transmission — combined with Radio::transmit copying into the
  /// channel's arena-pooled frame buffer, the steady-state tx path does
  /// not touch the heap.
  void encode_into(std::vector<std::uint8_t>& out) const;

  /// Returns nullopt for truncated or unknown frames.
  [[nodiscard]] static std::optional<MacFrame> decode(
      std::span<const std::uint8_t> bytes);
};

/// Zero-copy decode of a received frame: header fields by value, payload
/// as a span into the caller's buffer. This is the receive-path type —
/// the channel delivers a span of the in-flight frame, the MAC validates
/// the FCS and parses headers in place, and upper layers see the payload
/// span without a single copy. The span is only valid for the duration
/// of the delivery call; a consumer that keeps the bytes (e.g. the
/// forwarding queue) must copy them (see DESIGN.md, "Channel fast
/// path").
struct MacFrameView {
  FrameType type = FrameType::kData;
  std::uint8_t dsn = 0;
  NodeId src;
  NodeId dst;
  std::span<const std::uint8_t> payload;

  [[nodiscard]] bool is_broadcast() const { return dst == kBroadcastId; }

  /// Validates the FCS and parses in place. Returns nullopt for
  /// truncated, corrupt or unknown frames.
  [[nodiscard]] static std::optional<MacFrameView> decode(
      std::span<const std::uint8_t> bytes);

  /// Deep copy, for consumers that outlive the delivery call.
  [[nodiscard]] MacFrame to_owned() const;
};

}  // namespace fourbit::mac
