// Link-layer frame format (802.15.4-flavoured).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.hpp"

namespace fourbit::mac {

enum class FrameType : std::uint8_t {
  kData = 0,  // unicast or broadcast MPDU carrying an upper-layer payload
  kAck = 1,   // synchronous acknowledgment (no payload)
};

/// Decoded MAC frame. On the air this is
///   type(1) dsn(1) src(2) dst(2) payload(n) fcs(2)   for kData
///   type(1) dsn(1) dst(2) fcs(2)                     for kAck
/// The FCS is CRC-16/CCITT over everything before it, as in 802.15.4;
/// decode() rejects frames whose check fails.
struct MacFrame {
  FrameType type = FrameType::kData;
  std::uint8_t dsn = 0;  // data sequence number, matched by acks
  NodeId src;
  NodeId dst;
  std::vector<std::uint8_t> payload;

  static constexpr std::size_t kDataHeaderBytes = 6;
  static constexpr std::size_t kFcsBytes = 2;
  static constexpr std::size_t kAckFrameBytes = 4 + kFcsBytes;

  [[nodiscard]] bool is_broadcast() const { return dst == kBroadcastId; }

  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Returns nullopt for truncated or unknown frames.
  [[nodiscard]] static std::optional<MacFrame> decode(
      std::span<const std::uint8_t> bytes);
};

}  // namespace fourbit::mac
