#include "mac/csma.hpp"

#include <utility>

#include "common/assert.hpp"

namespace fourbit::mac {

CsmaMac::CsmaMac(sim::Simulator& sim, phy::Radio& radio, CsmaConfig config,
                 sim::Rng rng)
    : sim_(sim),
      radio_(radio),
      config_(config),
      rng_(rng),
      backoff_timer_(sim, [this] { on_backoff_expired(); }),
      ack_timer_(sim, [this] { on_ack_timeout(); }) {
  radio_.set_rx_handler(
      [this](std::span<const std::uint8_t> bytes, const phy::RxInfo& info) {
        on_radio_rx(bytes, info);
      });
}

void CsmaMac::send(NodeId dst, std::span<const std::uint8_t> payload,
                   SendCallback done) {
  send_with_dsn(dst, payload, next_dsn_++, std::move(done));
}

void CsmaMac::send_with_dsn(NodeId dst,
                            std::span<const std::uint8_t> payload,
                            std::uint8_t dsn, SendCallback done) {
  Outgoing out;
  out.frame.type = FrameType::kData;
  out.frame.dsn = dsn;
  out.frame.src = id();
  out.frame.dst = dst;
  out.frame.payload.assign(payload.begin(), payload.end());
  out.done = std::move(done);
  queue_.push_back(std::move(out));
  service_queue();
}

void CsmaMac::service_queue() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  queue_.front().cca_attempts = 0;
  backoff_then_cca(config_.initial_backoff_min, config_.initial_backoff_max);
}

void CsmaMac::backoff_then_cca(sim::Duration lo, sim::Duration hi) {
  const double span = static_cast<double>((hi - lo).us());
  const auto jitter =
      sim::Duration::from_us(static_cast<std::int64_t>(rng_.uniform() * span));
  backoff_timer_.start_one_shot(lo + jitter);
}

void CsmaMac::on_backoff_expired() {
  FOURBIT_ASSERT(busy_ && !queue_.empty(), "backoff fired with no frame");
  Outgoing& out = queue_.front();

  // Our own synchronous ack may be on the air; wait it out.
  if (radio_.transmitting()) {
    backoff_then_cca(config_.congestion_backoff_min,
                     config_.congestion_backoff_max);
    return;
  }

  ++out.cca_attempts;
  if (!radio_.channel_clear() &&
      out.cca_attempts < config_.max_cca_attempts) {
    backoff_then_cca(config_.congestion_backoff_min,
                     config_.congestion_backoff_max);
    return;
  }
  transmit_current();
}

void CsmaMac::transmit_current() {
  const Outgoing& out = queue_.front();
  if (tx_listener_) tx_listener_(out.frame);
  out.frame.encode_into(encode_buf_);
  radio_.transmit(encode_buf_, [this, epoch = epoch_] {
    if (epoch == epoch_) on_tx_done();
  });
}

void CsmaMac::reset() {
  ++epoch_;
  backoff_timer_.stop();
  ack_timer_.stop();
  queue_.clear();  // callbacks dropped deliberately: their owners crashed
  busy_ = false;
  awaiting_ack_ = false;
  ack_pending_ = false;
  // next_dsn_ survives: peers' duplicate filters key on (src, dsn), and a
  // restarted counter would alias recent pre-crash frames.
}

void CsmaMac::on_tx_done() {
  FOURBIT_ASSERT(busy_ && !queue_.empty(), "tx-done with no frame");
  Outgoing& out = queue_.front();
  if (out.frame.is_broadcast()) {
    complete_current(TxResult{.acked = false,
                              .cca_attempts = out.cca_attempts});
    return;
  }
  awaiting_ack_ = true;
  awaited_dsn_ = out.frame.dsn;
  ack_timer_.start_one_shot(config_.ack_wait);
}

void CsmaMac::on_ack_timeout() {
  FOURBIT_ASSERT(busy_ && !queue_.empty(), "ack timeout with no frame");
  awaiting_ack_ = false;
  complete_current(
      TxResult{.acked = false, .cca_attempts = queue_.front().cca_attempts});
}

void CsmaMac::complete_current(TxResult result) {
  Outgoing finished = std::move(queue_.front());
  queue_.pop_front();
  busy_ = false;
  if (finished.done) finished.done(result);
  service_queue();
}

void CsmaMac::on_radio_rx(std::span<const std::uint8_t> bytes,
                          const phy::RxInfo& info) {
  // Frames the radio flagged as damaged, or whose FCS fails, die here.
  if (!info.fcs_ok) {
    ++fcs_failures_;
    return;
  }
  // Zero-copy parse: header fields by value, payload left in place in
  // the channel's buffer. Handlers receive a span valid only for this
  // call; anything they keep, they copy.
  const auto frame = MacFrameView::decode(bytes);
  if (!frame) {
    ++fcs_failures_;
    return;
  }

  if (frame->type == FrameType::kAck) {
    if (awaiting_ack_ && frame->dst == id() && frame->dsn == awaited_dsn_) {
      awaiting_ack_ = false;
      ack_timer_.stop();
      FOURBIT_ASSERT(busy_ && !queue_.empty(), "ack for unknown frame");
      complete_current(TxResult{
          .acked = true, .cca_attempts = queue_.front().cca_attempts});
    }
    return;
  }

  // Data frame addressed elsewhere: offer it to the snoop tap and stop.
  if (!frame->is_broadcast() && frame->dst != id()) {
    if (snoop_handler_) {
      snoop_handler_(frame->src, frame->dsn, frame->payload, info);
    }
    return;
  }

  if (!frame->is_broadcast()) {
    send_ack(frame->src, frame->dsn);
  }
  if (rx_handler_) {
    rx_handler_(frame->src, frame->dsn, frame->payload, info);
  }
}

void CsmaMac::send_ack(NodeId to, std::uint8_t dsn) {
  ack_to_ = to;
  ack_dsn_ = dsn;
  ack_pending_ = true;
  ack_attempts_ = 0;
  sim_.schedule_in(config_.ack_turnaround, [this] { try_send_ack(); });
}

void CsmaMac::try_send_ack() {
  if (!ack_pending_) return;
  // A radio mid-transmission cannot also send the ack. Rather than
  // dropping it (which turns a successful delivery into a duplicate
  // retransmission), retry a couple of times within the sender's ack
  // window.
  if (radio_.transmitting()) {
    if (++ack_attempts_ < 3) {
      sim_.schedule_in(config_.ack_turnaround, [this] { try_send_ack(); });
    } else {
      ack_pending_ = false;
    }
    return;
  }
  ack_pending_ = false;
  MacFrame ack;
  ack.type = FrameType::kAck;
  ack.dsn = ack_dsn_;
  ack.dst = ack_to_;
  if (tx_listener_) tx_listener_(ack);
  ack.encode_into(encode_buf_);
  radio_.transmit(encode_buf_, nullptr);
}

}  // namespace fourbit::mac
