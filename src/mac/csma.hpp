// Unslotted CSMA/CA with synchronous layer-2 acknowledgments.
//
// The paper's model (Section 1.1) requires exactly this: a CSMA MAC whose
// link layer has synchronous L2 acks. One send is serviced at a time;
// upper layers queue behind it. Retransmission policy deliberately lives
// ABOVE the MAC (in the forwarding engines), because the ack bit is a
// per-transmission signal the estimators consume individually.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "mac/frame.hpp"
#include "mac/mac.hpp"
#include "phy/radio.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace fourbit::mac {

struct CsmaConfig {
  /// Initial random backoff window before the first CCA.
  sim::Duration initial_backoff_min = sim::Duration::from_us(320);
  sim::Duration initial_backoff_max = sim::Duration::from_us(9920);

  /// Backoff window applied after a busy CCA.
  sim::Duration congestion_backoff_min = sim::Duration::from_us(320);
  sim::Duration congestion_backoff_max = sim::Duration::from_us(2560);

  /// After this many busy CCAs the frame is sent anyway (a saturated
  /// channel must not wedge the node forever).
  int max_cca_attempts = 16;

  /// RX->TX turnaround before a synchronous ack goes out.
  sim::Duration ack_turnaround = sim::Duration::from_us(192);

  /// Total wait for an acknowledgment after our frame leaves the air —
  /// wide enough for a receiver to defer the ack past its own in-flight
  /// transmission (turnaround retries; see try_send_ack).
  sim::Duration ack_wait = sim::Duration::from_us(1600);
};

class CsmaMac final : public Mac {
 public:
  /// Fired for every frame this MAC actually puts on the air (after CSMA),
  /// for cost accounting. Acks are reported too; listeners filter by type.
  using TxListener = std::function<void(const MacFrame&)>;

  CsmaMac(sim::Simulator& sim, phy::Radio& radio, CsmaConfig config,
          sim::Rng rng);

  CsmaMac(const CsmaMac&) = delete;
  CsmaMac& operator=(const CsmaMac&) = delete;

  [[nodiscard]] NodeId id() const override { return radio_.id(); }

  void set_rx_handler(RxHandler h) override { rx_handler_ = std::move(h); }

  /// Promiscuous tap: unicast data frames addressed to OTHER nodes (CTP
  /// snoops these for routing state). Broadcasts and own-address frames
  /// go through the normal rx handler only.
  void set_snoop_handler(RxHandler h) override {
    snoop_handler_ = std::move(h);
  }

  void set_tx_listener(TxListener l) { tx_listener_ = std::move(l); }

  /// Queues one transmission. Unicast frames request an ack; broadcast
  /// frames complete when they leave the air with acked=false.
  void send(NodeId dst, std::span<const std::uint8_t> payload,
            SendCallback done) override;

  /// Like send(), but with a caller-chosen data sequence number. Used by
  /// low-power listening to put REPEATED COPIES of one logical frame on
  /// the air: every copy shares the dsn, so receivers can deduplicate
  /// and acks match any copy.
  void send_with_dsn(NodeId dst, std::span<const std::uint8_t> payload,
                     std::uint8_t dsn, SendCallback done);

  /// Allocates a fresh data sequence number (for send_with_dsn users).
  [[nodiscard]] std::uint8_t allocate_dsn() { return next_dsn_++; }

  [[nodiscard]] std::size_t queue_depth() const override {
    return queue_.size();
  }

  void reset() override;

  [[nodiscard]] phy::Radio& radio() { return radio_; }

  /// Frames heard but dropped for a bad frame check sequence.
  [[nodiscard]] std::uint64_t fcs_failures() const { return fcs_failures_; }

 private:
  struct Outgoing {
    MacFrame frame;
    SendCallback done;
    int cca_attempts = 0;
  };

  void service_queue();
  void backoff_then_cca(sim::Duration lo, sim::Duration hi);
  void on_backoff_expired();
  void transmit_current();
  void on_tx_done();
  void on_ack_timeout();
  void complete_current(TxResult result);

  void on_radio_rx(std::span<const std::uint8_t> bytes,
                   const phy::RxInfo& info);
  void send_ack(NodeId to, std::uint8_t dsn);

  sim::Simulator& sim_;
  phy::Radio& radio_;
  CsmaConfig config_;
  sim::Rng rng_;

  RxHandler rx_handler_;
  RxHandler snoop_handler_;
  TxListener tx_listener_;

  std::deque<Outgoing> queue_;
  // Reused wire-encode buffer: the radio copies the bytes into its
  // arena-pooled frame before transmit() returns, so one buffer per MAC
  // keeps the steady-state tx path free of heap allocation.
  std::vector<std::uint8_t> encode_buf_;
  bool busy_ = false;  // an Outgoing is in progress
  std::uint8_t next_dsn_ = 0;
  std::uint64_t fcs_failures_ = 0;
  // Bumped by reset(): the radio's tx-done callback cannot be cancelled,
  // so a completion scheduled before a crash must not fire the state
  // machine of the rebooted MAC. Callbacks capture the epoch they were
  // issued in and no-op if it has moved on.
  std::uint64_t epoch_ = 0;

  sim::Timer backoff_timer_;
  sim::Timer ack_timer_;
  bool awaiting_ack_ = false;
  std::uint8_t awaited_dsn_ = 0;

  // A pending synchronous ack we owe a sender (sent after turnaround,
  // bypassing CSMA as real 802.15.4 acks do).
  void try_send_ack();
  bool ack_pending_ = false;
  NodeId ack_to_;
  std::uint8_t ack_dsn_ = 0;
  int ack_attempts_ = 0;
};

}  // namespace fourbit::mac
