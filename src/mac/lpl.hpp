// Low-power listening (BoX-MAC-2 style) on top of the CSMA MAC.
//
// Receivers sleep between brief periodic channel samples; a transmitter
// does not know when its neighbor wakes, so it puts REPEATED COPIES of
// the frame on the air for a full wake interval — stopping early on a
// unicast acknowledgment. This trades transmit cost and latency for a
// ~two-orders-of-magnitude cut in idle-listening energy, and is how
// CTP-class deployments actually run.
//
// Every copy shares one MAC sequence number, so receivers deduplicate
// and the sender's ack matches any copy. The ack bit semantics the
// estimators rely on are preserved: one logical send -> one ack outcome.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "mac/csma.hpp"
#include "mac/mac.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace fourbit::mac {

struct LplConfig {
  /// Period between receiver channel samples. Duty cycle is roughly
  /// sample_duration / wake_interval (~2% at the defaults).
  sim::Duration wake_interval = sim::Duration::from_ms(512);

  /// How long the receiver listens per wake. Must cover one maximum
  /// frame plus the inter-copy gap so a passing train is never missed.
  sim::Duration sample_duration = sim::Duration::from_ms(12);

  /// How long to stay awake after receiving anything (catches the rest
  /// of a packet train and any immediate follow-ups).
  sim::Duration after_rx_hold = sim::Duration::from_ms(100);

  /// Pause between repeated copies (lets the ack come back).
  sim::Duration tx_gap = sim::Duration::from_ms(2);

  /// The transmit train lasts wake_interval * this margin, covering
  /// clock skew between sender and receiver schedules.
  double tx_margin = 1.2;
};

class LplMac final : public Mac {
 public:
  LplMac(sim::Simulator& sim, CsmaMac& inner, LplConfig config,
         sim::Rng rng);

  [[nodiscard]] NodeId id() const override { return inner_.id(); }
  void set_rx_handler(RxHandler h) override { rx_handler_ = std::move(h); }
  void set_snoop_handler(RxHandler h) override {
    snoop_handler_ = std::move(h);
  }
  void send(NodeId dst, std::span<const std::uint8_t> payload,
            SendCallback done) override;
  [[nodiscard]] std::size_t queue_depth() const override {
    return queue_.size() + (tx_active_ ? 1 : 0);
  }

  void reset() override;
  void restart() override;

  // ---- introspection ----
  [[nodiscard]] std::uint64_t copies_transmitted() const { return copies_; }
  [[nodiscard]] std::uint64_t duplicates_suppressed() const {
    return dup_suppressed_;
  }
  [[nodiscard]] bool radio_listening() const {
    return inner_.radio().listening();
  }
  [[nodiscard]] const LplConfig& config() const { return config_; }

 private:
  struct Pending {
    NodeId dst;
    std::vector<std::uint8_t> payload;
    SendCallback done;
  };

  void arm_phase();
  void on_wake();
  void on_sample_end();
  void update_listening();
  void service_queue();
  void transmit_copy();
  void finish_tx(TxResult result);
  void on_inner_rx(NodeId src, std::uint8_t dsn,
                   std::span<const std::uint8_t> payload,
                   const phy::RxInfo& info, bool snooped);
  [[nodiscard]] bool is_duplicate(NodeId src, std::uint8_t dsn);

  sim::Simulator& sim_;
  CsmaMac& inner_;
  LplConfig config_;
  sim::Rng rng_;

  RxHandler rx_handler_;
  RxHandler snoop_handler_;

  // Receiver schedule.
  sim::Timer phase_timer_;  // random initial offset, then wake_timer_
  sim::Timer wake_timer_;
  sim::Timer sample_timer_;
  bool sampling_ = false;
  sim::Time hold_until_;

  // Transmit train.
  std::deque<Pending> queue_;
  bool tx_active_ = false;
  Pending current_;
  std::uint8_t current_dsn_ = 0;
  sim::Time tx_deadline_;
  int current_cca_attempts_ = 1;
  sim::Timer gap_timer_;

  // Duplicate suppression across copies of one logical frame.
  std::unordered_map<std::uint32_t, sim::Time> recent_;

  std::uint64_t copies_ = 0;
  std::uint64_t dup_suppressed_ = 0;
};

}  // namespace fourbit::mac
