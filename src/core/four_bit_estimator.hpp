// The 4B link estimator (Section 3.3 of the paper).
//
// A hybrid data/beacon windowed-mean EWMA estimator:
//  * beacons carry only a sequence number (NOT reverse-link state — the
//    ack bit measures bidirectionality directly, which decouples node
//    in-degree from table size);
//  * every kb expected beacons, the reception fraction feeds an EWMA
//    whose inverse is a broadcast ETX sample;
//  * every ku unicast data transmissions, the acked fraction yields a
//    unicast ETX sample (or, if none were acked, the length of the
//    current failure streak);
//  * both sample streams merge in one outer EWMA: under heavy data
//    traffic unicast samples dominate, on a quiet network beacons do.
//
// Table management follows Woo et al. with the paper's amendment: a
// routing beacon with the white bit set, from an unknown node whose
// compare bit comes back true, flushes a random unpinned entry.
//
// This class depends ONLY on the narrow interfaces in link/ — never on
// the PHY, MAC, or routing implementations (the repository's build graph
// enforces that).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/ring_window.hpp"
#include "core/four_bit_config.hpp"
#include "link/estimator.hpp"
#include "link/neighbor_table.hpp"
#include "sim/rng.hpp"

namespace fourbit::core {

class FourBitEstimator final : public link::LinkEstimator {
 public:
  FourBitEstimator(FourBitConfig config, sim::Rng rng);

  // ---- link::LinkEstimator ----
  [[nodiscard]] std::vector<std::uint8_t> wrap_beacon(
      std::span<const std::uint8_t> routing_payload) override;
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> unwrap_beacon(
      NodeId from, std::span<const std::uint8_t> bytes,
      const link::PacketPhyInfo& phy) override;
  void on_unicast_result(NodeId to, bool acked) override;
  bool pin(NodeId n) override;
  void unpin(NodeId n) override;
  void clear_pins() override;
  [[nodiscard]] std::optional<double> etx(NodeId n) const override;
  [[nodiscard]] std::vector<NodeId> neighbors() const override;
  [[nodiscard]] std::vector<NodeId> pinned() const override {
    return table_.pinned_nodes();
  }
  [[nodiscard]] std::size_t table_capacity() const override {
    return table_.capacity();
  }
  bool remove(NodeId n) override;
  void set_compare_provider(link::CompareProvider* provider) override {
    compare_ = provider;
  }
  void set_telemetry(sim::TelemetryContext* telemetry, NodeId self) override {
    telemetry_ = telemetry;
    self_ = self.value();
  }
  void reset() override;

  // ---- introspection (tests, benches) ----
  [[nodiscard]] const FourBitConfig& config() const { return config_; }
  [[nodiscard]] std::size_t table_size() const { return table_.size(); }
  [[nodiscard]] std::uint8_t beacon_seq() const { return beacon_seq_; }

  /// Times note_beacon classified a large seq gap as a neighbor reboot
  /// and resynchronized instead of charging phantom losses.
  [[nodiscard]] std::uint64_t seq_resets() const { return seq_resets_; }

  /// Most recent beacon-PRR EWMA for `n` (tests of the inner estimator).
  [[nodiscard]] std::optional<double> beacon_quality(NodeId n) const;

 private:
  struct LinkState {
    // Beacon (broadcast) side.
    bool has_seq = false;
    std::uint8_t last_seq = 0;
    std::uint32_t window_received = 0;
    std::uint32_t window_expected = 0;
    Ewma beacon_prr;
    // Unicast (data) side.
    std::uint32_t window_tx = 0;
    std::uint32_t window_acked = 0;
    std::uint32_t failures_since_success = 0;
    // Combined estimate.
    Ewma etx;

    explicit LinkState(const FourBitConfig& cfg)
        : beacon_prr(cfg.beacon_prr_history), etx(cfg.etx_history) {}
  };

  using Table = link::NeighborTable<LinkState>;

  void note_beacon(Table::Entry& entry, std::uint8_t seq,
                   const link::PacketPhyInfo& phy);
  /// Feeds one sample into the outer EWMA; `from_data` says which stream
  /// produced it (unicast ack window vs beacon window) for telemetry.
  void feed_etx_sample(NodeId peer, LinkState& st, double sample,
                       bool from_data);
  [[nodiscard]] bool try_admit(NodeId from, const link::PacketPhyInfo& phy,
                               std::span<const std::uint8_t> payload);

  FourBitConfig config_;
  sim::Rng rng_;
  Table table_;
  link::CompareProvider* compare_ = nullptr;
  sim::TelemetryContext* telemetry_ = nullptr;
  std::uint16_t self_ = 0xFFFF;
  std::uint8_t beacon_seq_ = 0;
  std::uint64_t seq_resets_ = 0;
};

}  // namespace fourbit::core
