// Tunables of the 4B hybrid estimator.
#pragma once

#include <cstddef>

namespace fourbit::core {

/// How a full table admits an unknown beacon sender.
enum class InsertionPolicy {
  /// The paper's rule: only if the packet's white bit is set AND the
  /// network layer's compare bit says the sender's route beats a current
  /// entry; then a random unpinned entry is flushed.
  kWhiteCompare,

  /// Woo et al.'s baseline rule (used by the "ack bit only" variant of
  /// Figure 6): admit with fixed probability, flushing a random unpinned
  /// entry; no cross-layer input.
  kProbabilistic,

  /// Never replace; only free slots are filled.
  kNever,
};

struct FourBitConfig {
  /// Candidate-link table size. 0 = unbounded.
  std::size_t table_capacity = 10;

  /// Unicast window ku: one ETX sample per ku data transmissions.
  std::size_t unicast_window = 5;

  /// Beacon window kb: one PRR sample per kb expected beacons.
  std::size_t beacon_window = 2;

  /// History weight of the windowed EWMA over beacon reception
  /// probabilities. 2/3 reproduces the 1.0 -> 0.83 step of the paper's
  /// Figure 5 worked example.
  double beacon_prr_history = 2.0 / 3.0;

  /// History weight of the outer EWMA that merges the unicast and beacon
  /// ETX streams. 0.5 reproduces Figure 5's 3.1 / 2.1 / 1.7 / 3.9 values.
  double etx_history = 0.5;

  /// Ceiling on any single ETX sample (a dead link must not poison the
  /// average beyond recovery).
  double max_etx_sample = 16.0;

  /// Beacon-seq reset detection: a mod-256 gap larger than this is
  /// treated as a neighbor reboot (its sequence counter restarted) when
  /// the white bit or the current ack window says the link is alive —
  /// the window resynchronizes instead of charging up to 255 phantom
  /// losses. Without alive evidence the charged loss is capped here
  /// instead. Deliberately looser than the 2*beacon_window rule of
  /// thumb: a genuine loss streak on a bad link can exceed a couple of
  /// windows, and past ~16 expected beacons the PRR sample saturates at
  /// max_etx_sample anyway, so nothing real is lost. 0 disables
  /// detection (the pre-fault-injection behavior).
  std::size_t seq_reset_gap = 16;

  /// Table-admission rule for beacons from unknown senders.
  InsertionPolicy insertion = InsertionPolicy::kWhiteCompare;

  /// Admission probability when insertion == kProbabilistic.
  double probabilistic_insert_p = 0.25;
};

}  // namespace fourbit::core
