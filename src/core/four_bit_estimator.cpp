#include "core/four_bit_estimator.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/byte_io.hpp"
#include "sim/telemetry.hpp"

namespace fourbit::core {

FourBitEstimator::FourBitEstimator(FourBitConfig config, sim::Rng rng)
    : config_(config), rng_(rng), table_(config.table_capacity) {}

std::vector<std::uint8_t> FourBitEstimator::wrap_beacon(
    std::span<const std::uint8_t> routing_payload) {
  // Layer 2.5 header is a single sequence number; receivers measure the
  // beacon reception rate from the gaps. No per-neighbor footer — that is
  // the point: in-degree stays decoupled from table size.
  std::vector<std::uint8_t> out;
  out.reserve(1 + routing_payload.size());
  ByteWriter w{out};
  w.u8(beacon_seq_++);
  w.bytes(routing_payload);
  return out;
}

std::optional<std::vector<std::uint8_t>> FourBitEstimator::unwrap_beacon(
    NodeId from, std::span<const std::uint8_t> bytes,
    const link::PacketPhyInfo& phy) {
  ByteReader r{bytes};
  const std::uint8_t seq = r.u8();
  if (!r.ok()) return std::nullopt;
  const auto payload_span = r.rest();
  std::vector<std::uint8_t> payload{payload_span.begin(), payload_span.end()};

  if (Table::Entry* entry = table_.find(from)) {
    note_beacon(*entry, seq, phy);
    return payload;
  }

  if (try_admit(from, phy, payload)) {
    Table::Entry* entry = table_.insert(from, LinkState{config_});
    FOURBIT_ASSERT(entry != nullptr, "admission promised a free slot");
    if (telemetry_ != nullptr) {
      telemetry_->emit(sim::EventKind::kTableInsert, self_, from.value(),
                       seq);
    }
    // Seed the beacon window with this first beacon, and bootstrap the
    // link estimate optimistically from it: the paper's estimator uses
    // "incoming beacon estimates as bootstrapping values for the link
    // qualities, which are refined by the data-based estimates later".
    // Without a bootstrap, a freshly admitted link is unusable for
    // routing until two beacon windows complete — and under table churn
    // entries would be replaced before ever maturing.
    entry->data.has_seq = true;
    entry->data.last_seq = seq;
    entry->data.window_received = 1;
    entry->data.window_expected = 1;
    entry->data.beacon_prr.seed(1.0);
    entry->data.etx.seed(1.0);
  }
  return payload;
}

bool FourBitEstimator::try_admit(NodeId from, const link::PacketPhyInfo& phy,
                                 std::span<const std::uint8_t> payload) {
  if (!table_.full()) return true;

  const auto evict = [this](NodeId from_node, sim::EvictReason reason) {
    const auto victim = table_.evict_random_unpinned(rng_);
    if (victim && telemetry_ != nullptr) {
      telemetry_->emit(sim::EventKind::kTableEvict, self_, victim->value(),
                       from_node.value(),
                       static_cast<std::uint16_t>(reason));
    }
    return victim.has_value();
  };

  switch (config_.insertion) {
    case InsertionPolicy::kWhiteCompare:
      // The paper's rule, which SUPPLEMENTS the standard (Woo et al.)
      // replacement policy: a white-bit packet whose sender's route wins
      // the compare-bit query flushes a random unpinned entry right away;
      // other senders still get the baseline probabilistic chance.
      if (phy.white && compare_ != nullptr) {
        const bool wins = compare_->compare_bit(from, payload);
        if (telemetry_ != nullptr) {
          telemetry_->emit(sim::EventKind::kTableCompare, self_,
                           from.value(), wins ? 1 : 0);
        }
        if (wins) return evict(from, sim::EvictReason::kWhiteCompare);
      }
      if (!rng_.bernoulli(config_.probabilistic_insert_p)) return false;
      return evict(from, sim::EvictReason::kProbabilistic);

    case InsertionPolicy::kProbabilistic:
      if (!rng_.bernoulli(config_.probabilistic_insert_p)) return false;
      return evict(from, sim::EvictReason::kProbabilistic);

    case InsertionPolicy::kNever:
      return false;
  }
  return false;
}

void FourBitEstimator::note_beacon(Table::Entry& entry, std::uint8_t seq,
                                   const link::PacketPhyInfo& phy) {
  LinkState& st = entry.data;
  if (!st.has_seq) {
    st.has_seq = true;
    st.last_seq = seq;
    st.window_received = 1;
    st.window_expected = 1;
  } else {
    // Gap since the last beacon (mod-256 arithmetic handles wrap).
    std::uint32_t gap = static_cast<std::uint8_t>(seq - st.last_seq);
    // gap == 0 is a replayed/duplicated beacon (or exactly 256 losses,
    // which at any plausible beacon rate is indistinguishable from a
    // dead link anyway). Counting it would bump both received and
    // expected, letting duplicates inflate the measured reception rate.
    if (gap == 0) return;
    if (config_.seq_reset_gap > 0 && gap > config_.seq_reset_gap) {
      // An implausibly large gap is more likely a neighbor reboot (its
      // beacon sequence restarted near a random value) than that many
      // consecutive losses — IF the white bit on this very packet, or
      // an ack inside the current unicast window, says the link is
      // alive. Resynchronize instead of charging phantom losses.
      const bool alive = phy.white || st.window_acked > 0;
      if (alive) {
        ++seq_resets_;
        gap = 1;
      } else {
        // No liveness evidence: still cap the charge so one wild gap
        // costs at most one saturated window, not up to 255 beacons of
        // debt that would take many windows to amortize.
        gap = static_cast<std::uint32_t>(config_.seq_reset_gap);
      }
    }
    st.window_expected += gap;
    st.window_received += 1;
    st.last_seq = seq;
  }

  if (st.window_expected >= config_.beacon_window) {
    const double prr =
        std::min(1.0, static_cast<double>(st.window_received) /
                          static_cast<double>(st.window_expected));
    st.beacon_prr.update(prr);
    st.window_received = 0;
    st.window_expected = 0;

    const double quality = st.beacon_prr.value();
    const double etx_sample =
        quality <= 0.0 ? config_.max_etx_sample : 1.0 / quality;
    feed_etx_sample(entry.node, st, etx_sample, /*from_data=*/false);
  }
}

void FourBitEstimator::feed_etx_sample(NodeId peer, LinkState& st,
                                       double sample, bool from_data) {
  const double old_etx = st.etx.has_value() ? st.etx.value() : 0.0;
  st.etx.update(std::clamp(sample, 1.0, config_.max_etx_sample));
  if (telemetry_ != nullptr) {
    telemetry_->emit(
        sim::EventKind::kEtxUpdate, self_, peer.value(),
        static_cast<std::uint16_t>(from_data ? sim::EtxStream::kData
                                             : sim::EtxStream::kBeacon),
        0, old_etx, st.etx.value());
  }
}

void FourBitEstimator::on_unicast_result(NodeId to, bool acked) {
  Table::Entry* entry = table_.find(to);
  if (entry == nullptr) return;
  LinkState& st = entry->data;

  ++st.window_tx;
  if (acked) {
    st.window_acked += 1;
    st.failures_since_success = 0;
  } else {
    st.failures_since_success += 1;
  }

  if (st.window_tx >= config_.unicast_window) {
    double sample;
    if (st.window_acked > 0) {
      sample = static_cast<double>(st.window_tx) /
               static_cast<double>(st.window_acked);
    } else {
      // No ack in the whole window: the estimate is the length of the
      // running failure streak (which may span windows).
      sample = static_cast<double>(st.failures_since_success);
    }
    feed_etx_sample(to, st, sample, /*from_data=*/true);
    st.window_tx = 0;
    st.window_acked = 0;
  }
}

bool FourBitEstimator::pin(NodeId n) {
  const bool pinned = table_.pin(n);
  if (pinned && telemetry_ != nullptr) {
    telemetry_->emit(sim::EventKind::kTablePin, self_, n.value());
  }
  return pinned;
}

void FourBitEstimator::unpin(NodeId n) {
  if (telemetry_ != nullptr && table_.find(n) != nullptr) {
    telemetry_->emit(sim::EventKind::kTableUnpin, self_, n.value());
  }
  table_.unpin(n);
}

void FourBitEstimator::clear_pins() { table_.clear_pins(); }

std::optional<double> FourBitEstimator::etx(NodeId n) const {
  const Table::Entry* entry = table_.find(n);
  if (entry == nullptr || !entry->data.etx.has_value()) return std::nullopt;
  return entry->data.etx.value();
}

std::optional<double> FourBitEstimator::beacon_quality(NodeId n) const {
  const Table::Entry* entry = table_.find(n);
  if (entry == nullptr || !entry->data.beacon_prr.has_value()) {
    return std::nullopt;
  }
  return entry->data.beacon_prr.value();
}

std::vector<NodeId> FourBitEstimator::neighbors() const {
  std::vector<NodeId> out;
  out.reserve(table_.size());
  for (const auto& e : table_.entries()) out.push_back(e.node);
  return out;
}

bool FourBitEstimator::remove(NodeId n) {
  const Table::Entry* entry = table_.find(n);
  if (entry == nullptr) return true;  // already gone: nothing stale left
  if (entry->pinned) {
    if (telemetry_ != nullptr) {
      telemetry_->emit(
          sim::EventKind::kTableEvict, self_, n.value(), 0,
          static_cast<std::uint16_t>(sim::EvictReason::kRefusedPinned));
    }
    return false;
  }
  const bool removed = table_.remove(n);
  FOURBIT_ASSERT(removed, "unpinned entry must be removable");
  if (telemetry_ != nullptr) {
    telemetry_->emit(
        sim::EventKind::kTableEvict, self_, n.value(), 0,
        static_cast<std::uint16_t>(sim::EvictReason::kNetworkRemove));
  }
  return true;
}

void FourBitEstimator::reset() {
  // A reboot loses everything in RAM: the table (pins included), every
  // window in progress, and the beacon sequence counter — neighbors will
  // see OUR seq restart, which is exactly what seq_reset_gap detects on
  // their side. seq_resets_ is harness accounting, not node state.
  table_.clear();
  beacon_seq_ = 0;
}

}  // namespace fourbit::core
