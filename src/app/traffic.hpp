// Constant-rate collection traffic with jitter and staggered boot — the
// workload of every experiment in the paper's Section 4.
#pragma once

#include <cstdint>
#include <vector>

#include "net/collection_node.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace fourbit::app {

struct TrafficConfig {
  /// Mean inter-packet interval per node (paper: one packet per 10 s).
  sim::Duration period = sim::Duration::from_seconds(10.0);

  /// Each interval is drawn uniformly in period * [1-jitter, 1+jitter] to
  /// avoid network-wide packet synchronization.
  double jitter = 0.1;

  /// Application payload size.
  std::size_t payload_bytes = 20;
};

/// Drives one node: boots the routing stack at `boot_at`, then originates
/// a packet every jittered period.
class TrafficGenerator {
 public:
  TrafficGenerator(sim::Simulator& sim, net::CollectionNode& node,
                   TrafficConfig config, sim::Rng rng);

  /// Schedules boot (routing start + first packet one period later).
  void start(sim::Time boot_at);

  void stop() { timer_.stop(); }

  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  void on_timer();
  [[nodiscard]] sim::Duration next_interval();

  sim::Simulator& sim_;
  net::CollectionNode& node_;
  TrafficConfig config_;
  sim::Rng rng_;
  sim::Timer timer_;
  std::vector<std::uint8_t> payload_;
  std::uint64_t packets_sent_ = 0;
  bool booted_ = false;
};

}  // namespace fourbit::app
