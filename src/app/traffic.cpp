#include "app/traffic.hpp"

namespace fourbit::app {

TrafficGenerator::TrafficGenerator(sim::Simulator& sim,
                                   net::CollectionNode& node,
                                   TrafficConfig config, sim::Rng rng)
    : sim_(sim),
      node_(node),
      config_(config),
      rng_(rng),
      timer_(sim, [this] { on_timer(); }) {
  // Deterministic filler payload: the node id repeated.
  payload_.assign(config_.payload_bytes,
                  static_cast<std::uint8_t>(node.id().value() & 0xFF));
}

sim::Duration TrafficGenerator::next_interval() {
  const double lo = 1.0 - config_.jitter;
  const double hi = 1.0 + config_.jitter;
  return config_.period * rng_.uniform(lo, hi);
}

void TrafficGenerator::start(sim::Time boot_at) {
  sim_.schedule_at(boot_at, [this] {
    node_.boot();
    booted_ = true;
    timer_.start_one_shot(next_interval());
  });
}

void TrafficGenerator::on_timer() {
  node_.send(payload_);
  ++packets_sent_;
  timer_.start_one_shot(next_interval());
}

}  // namespace fourbit::app
