#include "topology/topology.hpp"

#include "common/assert.hpp"

namespace fourbit::topology {

Topology line(std::size_t n, double spacing_m) {
  FOURBIT_ASSERT(n > 0, "line topology needs at least one node");
  FOURBIT_ASSERT(n <= kMaxNodeCount,
                 "line topology overflows the 16-bit NodeId space "
                 "(0xFFFE/0xFFFF are reserved)");
  Topology t;
  t.nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.nodes.push_back(NodePlacement{
        NodeId{static_cast<NodeId::value_type>(i)},
        Position{static_cast<double>(i) * spacing_m, 0.0}});
  }
  t.root = NodeId{0};
  return t;
}

Topology grid(std::size_t rows, std::size_t cols, double pitch_m,
              double jitter_m, sim::Rng& rng) {
  FOURBIT_ASSERT(rows > 0 && cols > 0, "grid needs positive dimensions");
  FOURBIT_ASSERT(rows <= kMaxNodeCount / cols,
                 "grid topology overflows the 16-bit NodeId space "
                 "(0xFFFE/0xFFFF are reserved)");
  Topology t;
  t.nodes.reserve(rows * cols);
  NodeId::value_type id = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double jx = rng.uniform(-jitter_m, jitter_m);
      const double jy = rng.uniform(-jitter_m, jitter_m);
      t.nodes.push_back(
          NodePlacement{NodeId{id++},
                        Position{static_cast<double>(c) * pitch_m + jx,
                                 static_cast<double>(r) * pitch_m + jy}});
    }
  }
  t.root = NodeId{0};
  return t;
}

Topology random_uniform(std::size_t n, double width_m, double height_m,
                        sim::Rng& rng) {
  FOURBIT_ASSERT(n > 0, "random topology needs at least one node");
  FOURBIT_ASSERT(n <= kMaxNodeCount,
                 "random topology overflows the 16-bit NodeId space "
                 "(0xFFFE/0xFFFF are reserved)");
  Topology t;
  t.nodes.reserve(n);
  t.nodes.push_back(NodePlacement{
      NodeId{0}, Position{width_m / 2.0, height_m / 2.0}});
  for (std::size_t i = 1; i < n; ++i) {
    t.nodes.push_back(
        NodePlacement{NodeId{static_cast<NodeId::value_type>(i)},
                      Position{rng.uniform(0.0, width_m),
                               rng.uniform(0.0, height_m)}});
  }
  t.root = NodeId{0};
  return t;
}

namespace {

/// Removes `k` interior nodes (never the root) to make a grid irregular,
/// then renumbers ids to stay contiguous.
Topology thin_out(Topology t, std::size_t k, sim::Rng& rng) {
  for (std::size_t i = 0; i < k && t.nodes.size() > 1; ++i) {
    const std::size_t victim = 1 + rng.uniform_int(t.nodes.size() - 1);
    t.nodes.erase(t.nodes.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  for (std::size_t i = 0; i < t.nodes.size(); ++i) {
    t.nodes[i].id = NodeId{static_cast<NodeId::value_type>(i)};
  }
  t.root = NodeId{0};
  return t;
}

}  // namespace

Testbed mirage(sim::Rng& rng) {
  Testbed tb;
  // 12 x 8 grid = 96, thinned to 85 nodes over ~72 x 42 m.
  sim::Rng layout = rng.fork("mirage-layout");
  tb.topology = thin_out(grid(8, 12, 6.5, 2.0, layout), 11, layout);

  // Radio environment tuned so that at 0 dBm the root reaches a large
  // fraction of the floor directly (paper trees: depths 1-5) and at
  // -20 dBm the network is several hops deep but still connected.
  // Asymmetry: per-direction shadowing plus TX-power / noise-figure
  // manufacturing spread (Zuniga & Krishnamachari report multi-dB spreads)
  // gives per-direction deltas of ~3 dB std — wide enough that a link can
  // look clean inbound while dropping most packets outbound, the regime
  // where beacon-LQI parent selection goes wrong.
  tb.environment.propagation.reference_loss = Decibels{37.0};
  tb.environment.propagation.exponent = 4.0;
  tb.environment.propagation.shadowing_sigma_db = 3.2;
  tb.environment.propagation.asymmetry_sigma_db = 1.4;
  tb.environment.hardware.tx_offset_sigma_db = 1.8;
  tb.environment.hardware.noise_figure_sigma_db = 1.8;
  tb.environment.burst_interference = true;
  tb.environment.bursts.mean_good = sim::Duration::from_seconds(400.0);
  tb.environment.bursts.mean_bad = sim::Duration::from_seconds(50.0);
  tb.environment.bursts.bad_loss_probability = 0.85;
  tb.environment.bursts.affected_fraction = 0.45;
  return tb;
}

Testbed tutornet(sim::Rng& rng) {
  Testbed tb;
  // 12 x 9 grid = 108, thinned to 94 nodes over ~66 x 48 m; denser and
  // with a harsher channel than Mirage.
  sim::Rng layout = rng.fork("tutornet-layout");
  tb.topology = thin_out(grid(9, 12, 6.0, 2.5, layout), 14, layout);

  // Tutornet's harshness is dominated by clutter and hardware spread:
  // heavier shadowing and much stronger per-direction asymmetry than
  // Mirage (the regime where the ack bit pays off), with somewhat more
  // frequent interference bursts. A blanket-jamming environment would
  // invert the result — every protocol pays retransmissions to push
  // through noise nobody can route around.
  tb.environment.propagation.reference_loss = Decibels{47.0};
  tb.environment.propagation.exponent = 4.0;
  tb.environment.propagation.shadowing_sigma_db = 4.8;
  tb.environment.propagation.asymmetry_sigma_db = 2.6;
  tb.environment.hardware.tx_offset_sigma_db = 3.0;
  tb.environment.hardware.noise_figure_sigma_db = 3.0;
  tb.environment.burst_interference = true;
  tb.environment.bursts.mean_good = sim::Duration::from_seconds(350.0);
  tb.environment.bursts.mean_bad = sim::Duration::from_seconds(50.0);
  tb.environment.bursts.bad_loss_probability = 0.85;
  tb.environment.bursts.affected_fraction = 0.5;
  return tb;
}

}  // namespace fourbit::topology
