// Node placements and radio-environment bundles.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "phy/config.hpp"
#include "phy/interference.hpp"
#include "sim/rng.hpp"

namespace fourbit::topology {

struct NodePlacement {
  NodeId id;
  Position position;
};

struct Topology {
  std::vector<NodePlacement> nodes;
  NodeId root;

  [[nodiscard]] std::size_t size() const { return nodes.size(); }
};

/// Everything about the radio environment of a testbed, minus placement.
struct Environment {
  phy::PhyConfig phy;
  phy::PropagationConfig propagation;
  phy::HardwareVariationConfig hardware;
  bool burst_interference = true;
  phy::GilbertElliottInterference::Config bursts;
};

/// A named testbed: where the nodes are and what the air is like.
struct Testbed {
  Topology topology;
  Environment environment;
};

// ---- generators -------------------------------------------------------

/// `n` nodes on a line with the given spacing, root = node 0 at x = 0.
[[nodiscard]] Topology line(std::size_t n, double spacing_m);

/// rows x cols grid with the given pitch; each node jittered by up to
/// `jitter_m` in both axes. Root = node 0 at the bottom-left corner.
[[nodiscard]] Topology grid(std::size_t rows, std::size_t cols,
                            double pitch_m, double jitter_m, sim::Rng& rng);

/// `n` nodes placed uniformly at random over a width x height rectangle;
/// node 0 (the root) is pinned to the center. The generator for
/// city-scale (10k+) populations, where the sparse spatial channel keeps
/// memory O(N·degree). Asserts `n` fits the 16-bit NodeId space.
[[nodiscard]] Topology random_uniform(std::size_t n, double width_m,
                                      double height_m, sim::Rng& rng);

// ---- testbed presets ----------------------------------------------------

/// Mirage-like: 85 nodes (MicaZ-class) on an irregular indoor grid,
/// root in the bottom-left corner (cf. paper Fig. 2).
[[nodiscard]] Testbed mirage(sim::Rng& rng);

/// Tutornet-like: 94 nodes (TelosB-class), denser and noisier (stronger
/// shadowing, more hardware spread, more bursty interference) — the
/// environment where MultiHopLQI dropped to 85% delivery.
[[nodiscard]] Testbed tutornet(sim::Rng& rng);

}  // namespace fourbit::topology
