// The narrow link-estimator interface — the paper's contribution.
//
// A link estimator sits between layer 2 and layer 3 ("layer 2.5"):
//   * it wraps the network layer's broadcast beacons with its own
//     header/footer (sequence numbers, optionally per-neighbor state),
//   * it consumes four bits of cross-layer information:
//       white   (PHY, per received packet)   -> unwrap_beacon/on_data_rx
//       ack     (link, per unicast tx)       -> on_unicast_result
//       pin     (network, per table entry)   -> pin/unpin
//       compare (network, per packet, on request) -> CompareProvider
//   * it exports bidirectional ETX estimates for the links it tracks.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "link/packet_info.hpp"

namespace fourbit::sim {
class TelemetryContext;
}

namespace fourbit::link {

/// Network-layer half of the compare bit. The estimator asks; the network
/// layer answers from its routing state.
class CompareProvider {
 public:
  virtual ~CompareProvider() = default;

  /// Does the route offered by `candidate` (as described by the routing
  /// payload of its beacon) look better than the route through at least
  /// one node currently in the estimator's table? Implementations may
  /// decline to answer for packets they cannot judge (return false).
  [[nodiscard]] virtual bool compare_bit(
      NodeId candidate, std::span<const std::uint8_t> routing_payload) = 0;
};

/// Abstract link estimator. Routing engines program against this type
/// only; the concrete estimator (4B, LQI, broadcast-ETX, ...) is chosen
/// by the experiment.
class LinkEstimator {
 public:
  virtual ~LinkEstimator() = default;

  // ---- layer 2.5 beacon wrapping ------------------------------------

  /// Wraps the network layer's beacon payload with this estimator's
  /// header/footer. The result is what goes into the MAC broadcast.
  [[nodiscard]] virtual std::vector<std::uint8_t> wrap_beacon(
      std::span<const std::uint8_t> routing_payload) = 0;

  /// Processes a received beacon (updating link state, possibly inserting
  /// the sender into the table via the white/compare-bit policy) and
  /// returns the embedded routing payload. nullopt = malformed.
  [[nodiscard]] virtual std::optional<std::vector<std::uint8_t>>
  unwrap_beacon(NodeId from, std::span<const std::uint8_t> bytes,
                const PacketPhyInfo& phy) = 0;

  // ---- the ack bit ----------------------------------------------------

  /// Reports the layer-2 outcome of one unicast data transmission.
  virtual void on_unicast_result(NodeId to, bool acked) = 0;

  // ---- optional data-plane input --------------------------------------

  /// A data packet was received from `from` (used by PHY-driven
  /// estimators; the default estimator ignores it).
  virtual void on_data_rx(NodeId from, const PacketPhyInfo& phy) {
    (void)from;
    (void)phy;
  }

  // ---- the pin bit -----------------------------------------------------

  /// Pins `n`'s entry: the estimator may not evict it until unpinned.
  /// Returns false if `n` is not in the table.
  virtual bool pin(NodeId n) = 0;
  virtual void unpin(NodeId n) = 0;
  virtual void clear_pins() = 0;

  // ---- outputs ----------------------------------------------------------

  /// Current bidirectional ETX estimate for `n` (>= 1), or nullopt if the
  /// link is not in the table / has no estimate yet.
  [[nodiscard]] virtual std::optional<double> etx(NodeId n) const = 0;

  /// Nodes currently tracked.
  [[nodiscard]] virtual std::vector<NodeId> neighbors() const = 0;

  // ---- supervision hooks (see sim::InvariantAuditor) --------------------

  /// Nodes whose table entries are currently pinned. Invariant audits
  /// verify pin discipline (only the current parent may stay pinned).
  /// Default: none, for stateless estimators and test fakes.
  [[nodiscard]] virtual std::vector<NodeId> pinned() const { return {}; }

  /// Table capacity the estimator enforces; 0 = unbounded. Invariant
  /// audits verify neighbors().size() never exceeds it.
  [[nodiscard]] virtual std::size_t table_capacity() const { return 0; }

  /// Network layer gave up on this link; drop it. Returns true when the
  /// table no longer holds `n` (removed, or never present) and false
  /// when the entry is pinned and therefore refuses removal — callers
  /// must not assume a stale pinned neighbor is gone.
  virtual bool remove(NodeId n) = 0;

  /// Wires in the network layer's compare-bit provider (may be null).
  virtual void set_compare_provider(CompareProvider* provider) = 0;

  // ---- telemetry --------------------------------------------------------

  /// Wires in the owning Simulator's telemetry context and this node's
  /// id, so the estimator can emit typed table/ETX events. Estimators
  /// deliberately hold no Simulator reference (layering), which is why
  /// the context arrives by injection. Default: ignore (stateless
  /// estimators, test fakes).
  virtual void set_telemetry(sim::TelemetryContext* telemetry, NodeId self) {
    (void)telemetry;
    (void)self;
  }

  // ---- fault model ------------------------------------------------------

  /// Wipes all estimator state, as a node reboot would: table (including
  /// pins), windows, sequence counters. Default no-op for stateless
  /// estimators and test fakes.
  virtual void reset() {}
};

}  // namespace fourbit::link
