// Physical-layer information as seen across the estimator interface.
#pragma once

namespace fourbit::link {

/// What the PHY tells the layers above about a received packet.
///
/// The paper's interface is exactly one bit: `white`. The raw LQI value is
/// carried alongside ONLY so the cross-layer baselines (MultiHopLQI) can
/// be expressed in the same framework — the four-bit estimator never reads
/// it, and the build keeps `core/` independent of `phy/` to prove it.
struct PacketPhyInfo {
  /// The white bit: every symbol of this packet had a very low probability
  /// of decoding error. If clear, channel quality is unknown (not
  /// necessarily bad).
  bool white = false;

  /// Raw link-quality indicator (CC2420-style, ~40..110). Baselines only.
  int lqi = 0;
};

}  // namespace fourbit::link
