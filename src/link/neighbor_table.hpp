// Fixed-capacity neighbor table with the pin bit.
//
// RAM limits on sensornet nodes mean the table is small (the paper uses
// 10 entries) — choosing *which* links to track is as important as the
// estimates themselves. The table enforces the pin bit: pinned entries
// are never evicted by any policy.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/ids.hpp"
#include "sim/rng.hpp"

namespace fourbit::link {

/// `EntryData` holds the estimator-specific per-link state.
template <typename EntryData>
class NeighborTable {
 public:
  struct Entry {
    NodeId node;
    bool pinned = false;
    EntryData data;
  };

  /// capacity == 0 means unbounded (the "CTP unconstrained" baseline).
  explicit NeighborTable(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool unbounded() const { return capacity_ == 0; }
  [[nodiscard]] bool full() const {
    return !unbounded() && entries_.size() >= capacity_;
  }

  [[nodiscard]] Entry* find(NodeId n) {
    for (auto& e : entries_) {
      if (e.node == n) return &e;
    }
    return nullptr;
  }
  [[nodiscard]] const Entry* find(NodeId n) const {
    for (const auto& e : entries_) {
      if (e.node == n) return &e;
    }
    return nullptr;
  }

  /// Inserts a new entry if there is room (or the table is unbounded).
  /// Returns the entry, or nullptr if the table is full. `n` must not
  /// already be present.
  Entry* insert(NodeId n, EntryData data = EntryData{}) {
    FOURBIT_ASSERT(find(n) == nullptr, "node already in table");
    if (full()) return nullptr;
    entries_.push_back(Entry{n, false, std::move(data)});
    return &entries_.back();
  }

  /// Evicts a uniformly random unpinned entry (the paper's replacement
  /// rule for white+compare insertions). Returns the victim's id — so
  /// telemetry can attribute the eviction — or nullopt if every entry is
  /// pinned.
  std::optional<NodeId> evict_random_unpinned(sim::Rng& rng) {
    std::vector<std::size_t> candidates;
    candidates.reserve(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].pinned) candidates.push_back(i);
    }
    if (candidates.empty()) return std::nullopt;
    const std::size_t victim =
        candidates[rng.uniform_int(candidates.size())];
    const NodeId evicted = entries_[victim].node;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
    return evicted;
  }

  /// Evicts the unpinned entry for which `worse(a, b)` ranks it last —
  /// i.e. the entry e maximizing the ordering (used by baseline policies
  /// that evict the worst link). Returns the victim's id, or nullopt if
  /// every entry is pinned.
  template <typename WorseThan>
  std::optional<NodeId> evict_worst_unpinned(WorseThan worse) {
    std::size_t victim = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].pinned) continue;
      if (victim == entries_.size() ||
          worse(entries_[victim], entries_[i])) {
        victim = i;
      }
    }
    if (victim == entries_.size()) return std::nullopt;
    const NodeId evicted = entries_[victim].node;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
    return evicted;
  }

  /// Removes `n` if present and unpinned. Returns true if removed.
  bool remove(NodeId n) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].node == n) {
        if (entries_[i].pinned) return false;
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  bool pin(NodeId n) {
    if (Entry* e = find(n)) {
      e->pinned = true;
      return true;
    }
    return false;
  }

  void unpin(NodeId n) {
    if (Entry* e = find(n)) e->pinned = false;
  }

  void clear_pins() {
    for (auto& e : entries_) e.pinned = false;
  }

  /// Drops every entry, pinned or not (a node reboot wipes RAM; the pin
  /// bit does not survive a crash).
  void clear() { entries_.clear(); }

  /// Nodes whose entries are currently pinned (supervision/audit hook).
  [[nodiscard]] std::vector<NodeId> pinned_nodes() const {
    std::vector<NodeId> out;
    for (const auto& e : entries_) {
      if (e.pinned) out.push_back(e.node);
    }
    return out;
  }

  [[nodiscard]] std::vector<Entry>& entries() { return entries_; }
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::size_t capacity_;
  std::vector<Entry> entries_;
};

}  // namespace fourbit::link
