#include "runner/supervisor.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "runner/journal.hpp"
#include "runner/status.hpp"
#include "sim/invariant.hpp"

namespace fourbit::runner {

std::string_view failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::kAssert: return "assert";
    case FailureKind::kException: return "exception";
    case FailureKind::kTimeout: return "timeout";
    case FailureKind::kInvariant: return "invariant";
    case FailureKind::kHardCrash: return "hard_crash";
  }
  return "unknown";
}

std::uint64_t Backoff::delay_ms(std::size_t attempt,
                                std::uint64_t seed) const {
  if (base_ms == 0) return 0;
  const std::size_t doublings =
      std::min<std::size_t>(attempt > 0 ? attempt - 1 : 0, 20);
  const double raw = std::min(
      static_cast<double>(cap_ms),
      static_cast<double>(base_ms) *
          static_cast<double>(std::uint64_t{1} << doublings));
  // splitmix64 of (seed, attempt): a deterministic uniform fraction, so
  // the jittered delay is a pure function of its inputs.
  std::uint64_t h = seed + 0x9E3779B97F4A7C15ULL * (attempt + 1);
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  h ^= h >> 31;
  const double fraction =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  const double jittered = raw * (1.0 - jitter + 2.0 * jitter * fraction);
  const double clamped =
      std::min(static_cast<double>(cap_ms), std::max(0.0, jittered));
  return static_cast<std::uint64_t>(clamped);
}

namespace {

struct AttemptOutcome {
  ExperimentResult result;
  std::optional<TrialFailure> failure;
};

/// One isolated attempt: the throwing assert handler is installed for
/// this thread, and every escape route out of the trial is mapped onto
/// the failure taxonomy. Catch order matters — the specific error types
/// all derive from std::runtime_error.
TrialFailure make_failure(FailureKind kind, std::string what,
                          std::size_t index, std::uint64_t seed,
                          std::size_t attempt) {
  TrialFailure failure;
  failure.kind = kind;
  failure.what = std::move(what);
  failure.trial_index = index;
  failure.seed = seed;
  failure.attempt = attempt;
  return failure;
}

AttemptOutcome attempt_trial(
    const std::function<ExperimentResult(const ExperimentConfig&)>& run_trial,
    const ExperimentConfig& config, std::size_t index, std::size_t attempt) {
  AttemptOutcome out;
  const ScopedAssertHandler isolate{throwing_assert_handler};
  // The simulator is destroyed during unwinding, before any handler
  // below runs; its destructor publishes the flight recorder to this
  // thread's slot, which we collect after the catch. Clear it first so
  // a clean prior trial's events can't leak into this one's failure.
  sim::TelemetryContext::clear_last_flight();
  try {
    out.result = run_trial ? run_trial(config) : run_experiment(config);
  } catch (const AssertionError& e) {
    out.failure =
        make_failure(FailureKind::kAssert, e.what(), index, config.seed,
                     attempt);
  } catch (const sim::BudgetExceededError& e) {
    out.failure =
        make_failure(FailureKind::kTimeout, e.what(), index, config.seed,
                     attempt);
  } catch (const sim::InvariantViolationError& e) {
    out.failure =
        make_failure(FailureKind::kInvariant, e.what(), index, config.seed,
                     attempt);
  } catch (const std::exception& e) {
    out.failure =
        make_failure(FailureKind::kException, e.what(), index, config.seed,
                     attempt);
  } catch (...) {
    out.failure =
        make_failure(FailureKind::kException,
                     "unknown exception escaped the trial", index,
                     config.seed, attempt);
  }
  if (out.failure.has_value()) {
    out.failure->flight = sim::TelemetryContext::take_last_flight();
  }
  return out;
}

}  // namespace

CampaignReport run_supervised(const std::vector<ExperimentConfig>& trials,
                              const SupervisorOptions& options) {
  CampaignReport report;
  report.results.resize(trials.size());
  report.completed.assign(trials.size(), 0);
  if (trials.empty()) return report;
  const std::uint64_t journal_failures_before = TrialJournal::write_failures();

  // Resume: replay journaled results for matching (index, seed) slots.
  // A record whose seed disagrees with the trial list belongs to some
  // other campaign and is ignored rather than trusted.
  std::optional<TrialJournal> journal;
  if (!options.journal_path.empty()) {
    auto loaded = TrialJournal::load(options.journal_path);
    report.journal_torn = loaded.torn;
    for (auto& entry : loaded.entries) {
      if (entry.trial_index >= trials.size()) continue;
      if (entry.seed != trials[entry.trial_index].seed) continue;
      if (report.completed[entry.trial_index]) continue;
      report.results[entry.trial_index] = std::move(entry.result);
      report.completed[entry.trial_index] = 1;
      ++report.replayed;
    }
    journal = TrialJournal::open_append(options.journal_path);
  }
  if (options.status != nullptr && report.replayed > 0) {
    options.status->add_replayed(report.replayed);
  }

  // The index order to execute: everything, or the assigned subset (a
  // multi-process worker runs only the coordinator's range).
  std::vector<std::size_t> order;
  if (options.subset.empty()) {
    order.resize(trials.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  } else {
    for (const std::size_t i : options.subset) {
      if (i < trials.size()) order.push_back(i);
    }
  }

  std::size_t threads = options.threads != 0
                            ? options.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, std::max<std::size_t>(1, order.size()));

  const std::size_t max_attempts =
      std::max<std::size_t>(1, options.retry.max_attempts);

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{static_cast<std::size_t>(report.replayed)};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> retried{0};
  std::atomic<std::uint64_t> attempts{0};
  std::mutex progress_mutex;  // serializes callbacks and report.failures
  std::mutex journal_mutex;

  const auto worker = [&] {
    while (true) {
      const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
      if (slot >= order.size()) return;
      const std::size_t i = order[slot];
      if (report.completed[i]) continue;  // replayed from the journal

      // Merge the campaign-wide watchdog into the trial's own budget
      // (an explicit per-trial limit wins, field by field).
      ExperimentConfig config = trials[i];
      if (config.budget.max_events == 0) {
        config.budget.max_events = options.trial_budget.max_events;
      }
      if (config.budget.max_wall_ms == 0) {
        config.budget.max_wall_ms = options.trial_budget.max_wall_ms;
      }

      // Campaign-wide telemetry: each trial writes its own file (named
      // by index and seed) so workers never share a stream and output
      // is identical at any thread count. A config's own path wins.
      config.trace_level = options.trace_level;
      if (config.trace_path.empty() && !options.trace_path_base.empty()) {
        config.trace_path =
            trial_trace_path(options.trace_path_base, i, config.seed);
        config.trace_trial = static_cast<std::int64_t>(i);
        config.trace_nodes = options.trace_nodes;
      }

      // Crash forensics: the trial periodically flushes its flight
      // recorder to disk so a hard-crashed worker process leaves its
      // sim's last moments behind for the coordinator.
      if (config.flight_flush_path.empty() &&
          !options.flight_flush_base.empty()) {
        config.flight_flush_path =
            flight_snapshot_path(options.flight_flush_base, i);
        if (config.trace_trial < 0) {
          config.trace_trial = static_cast<std::int64_t>(i);
        }
      }

      // Live status is strictly observational: the board sees lifecycle
      // edges and registry pushes, and nothing it does can reach the
      // result, the report, or the journal.
      config.status = options.status;
      if (options.profile_phases) config.profile_phases = true;
      if (options.status != nullptr) options.status->trial_started(i);
      const auto trial_begin = std::chrono::steady_clock::now();

      if (options.on_trial_start) options.on_trial_start(i, config);

      std::optional<TrialFailure> failure;
      for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
        attempts.fetch_add(1, std::memory_order_relaxed);
        auto outcome = attempt_trial(options.run_trial, config, i, attempt);
        if (!outcome.failure) {
          report.results[i] = std::move(outcome.result);
          report.completed[i] = 1;
          failure.reset();
          if (journal) {
            const std::lock_guard<std::mutex> lock{journal_mutex};
            journal->append(static_cast<std::uint32_t>(i), config.seed,
                            report.results[i]);
          }
          break;
        }
        failure = std::move(outcome.failure);
        if (attempt < max_attempts && options.retry.should_retry(*failure)) {
          retried.fetch_add(1, std::memory_order_relaxed);
          if (options.status != nullptr) options.status->attempt_reset(i);
          const std::uint64_t delay =
              options.retry.backoff.delay_ms(attempt, config.seed);
          if (delay > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
          }
          continue;
        }
        break;
      }
      if (options.status != nullptr) {
        const auto wall =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - trial_begin)
                .count();
        options.status->trial_settled(
            i, failure.has_value(),
            wall > 0 ? static_cast<std::uint64_t>(wall) : 0);
      }
      if (!config.flight_flush_path.empty()) {
        // The trial settled in-process; its crash snapshot is stale.
        std::remove(config.flight_flush_path.c_str());
      }

      const std::size_t done =
          completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      {
        const std::lock_guard<std::mutex> lock{progress_mutex};
        const TrialFailure* failure_ptr = nullptr;
        if (failure) {
          failed.fetch_add(1, std::memory_order_relaxed);
          report.failures.push_back(std::move(*failure));
          failure_ptr = &report.failures.back();
        }
        if (options.on_trial_done) {
          options.on_trial_done(TrialProgress{
              .trial_index = i,
              .completed = done,
              .total = trials.size(),
              .failed = failed.load(std::memory_order_relaxed),
              .retried = retried.load(std::memory_order_relaxed),
              .config = &trials[i],
              .result = report.completed[i] ? &report.results[i] : nullptr,
              .failure = failure_ptr,
          });
        }
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  report.attempts = attempts.load();
  report.retries = retried.load();
  report.journal_write_failures =
      TrialJournal::write_failures() - journal_failures_before;
  // Completion order depends on thread scheduling; the report must not.
  std::sort(report.failures.begin(), report.failures.end(),
            [](const TrialFailure& a, const TrialFailure& b) {
              return a.trial_index < b.trial_index;
            });
  return report;
}

std::string trial_trace_path(const std::string& base, std::size_t index,
                             std::uint64_t seed) {
  std::string stem = base;
  constexpr std::string_view kExt = ".jsonl";
  if (stem.size() >= kExt.size() &&
      stem.compare(stem.size() - kExt.size(), kExt.size(), kExt) == 0) {
    stem.resize(stem.size() - kExt.size());
  }
  return stem + "-t" + std::to_string(index) + "-s" + std::to_string(seed) +
         ".jsonl";
}

std::string flight_snapshot_path(const std::string& base,
                                 std::size_t index) {
  return base + ".t" + std::to_string(index) + ".flight";
}

CampaignCli consume_campaign_cli(int& argc, char** argv) {
  CampaignCli cli;
  // Snapshot argv BEFORE stripping anything: this is the command the
  // multi-process coordinator self-execs to mint workers, and it must
  // rebuild the identical trial list the coordinator saw.
  cli.exec_argv.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) cli.exec_argv.emplace_back(argv[i]);

  cli.threads = consume_threads_flag(argc, argv);
  if (const auto workers = consume_uint_flag(argc, argv, "--workers")) {
    if (*workers == 0) {
      std::fprintf(stderr,
                   "error: --workers expects a positive worker count "
                   "(got \"0\"); omit the flag to run in-process\n");
      std::exit(2);
    }
    cli.workers = static_cast<std::size_t>(*workers);
  }
  if (const auto fd = consume_uint_flag(argc, argv, "--worker-fd")) {
    cli.worker_fd = static_cast<int>(*fd);
  }
  cli.worker_id = static_cast<std::uint32_t>(
      consume_uint_flag(argc, argv, "--worker-id").value_or(0));
  cli.worker_shard = consume_flag(argc, argv, "--worker-shard").value_or("");
  cli.worker_trials =
      consume_flag(argc, argv, "--worker-trials").value_or("");
  cli.worker_heartbeat_ms =
      consume_uint_flag(argc, argv, "--worker-heartbeat-ms").value_or(250);
  cli.journal = consume_flag(argc, argv, "--journal").value_or("");
  cli.max_trial_ms =
      consume_uint_flag(argc, argv, "--max-trial-ms").value_or(0);
  cli.retries = consume_uint_flag(argc, argv, "--retries").value_or(0);
  cli.trace = consume_flag(argc, argv, "--trace").value_or("");
  if (const auto level = consume_flag(argc, argv, "--trace-level")) {
    if (*level == "off") {
      cli.trace_level = sim::TraceLevel::kOff;
    } else if (*level == "error") {
      cli.trace_level = sim::TraceLevel::kError;
    } else if (*level == "info") {
      cli.trace_level = sim::TraceLevel::kInfo;
    } else if (*level == "debug") {
      cli.trace_level = sim::TraceLevel::kDebug;
    } else {
      std::fprintf(stderr,
                   "--trace-level: expected off|error|info|debug, got '%s'\n",
                   level->c_str());
      std::exit(2);
    }
  }
  if (const auto nodes = consume_flag(argc, argv, "--trace-nodes")) {
    std::size_t pos = 0;
    while (pos <= nodes->size()) {
      const std::size_t comma = nodes->find(',', pos);
      const std::string tok = nodes->substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      char* end = nullptr;
      const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
      if (tok.empty() || end == nullptr || *end != '\0' || v > 0xFFFF) {
        std::fprintf(stderr,
                     "--trace-nodes: expected comma-separated node ids, "
                     "got '%s'\n",
                     nodes->c_str());
        std::exit(2);
      }
      cli.trace_nodes.push_back(static_cast<std::uint16_t>(v));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  cli.json = consume_bool_flag(argc, argv, "--json");
  if (const auto hosts = consume_flag(argc, argv, "--hosts")) {
    std::size_t pos = 0;
    while (pos <= hosts->size()) {
      const std::size_t comma = hosts->find(',', pos);
      const std::string tok = hosts->substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      // Split on the LAST colon so a future "name:with:colons" host at
      // least fails loudly rather than silently mis-parsing the port.
      const std::size_t colon = tok.rfind(':');
      bool ok = colon != std::string::npos && colon > 0;
      unsigned long port = 0;
      if (ok) {
        const std::string digits = tok.substr(colon + 1);
        char* end = nullptr;
        port = std::strtoul(digits.c_str(), &end, 10);
        ok = !digits.empty() &&
             std::isdigit(static_cast<unsigned char>(digits[0])) != 0 &&
             end != nullptr && *end == '\0' && port >= 1 && port <= 65535;
      }
      if (!ok) {
        std::fprintf(stderr,
                     "--hosts: expected comma-separated host:port entries "
                     "(port 1-65535), got '%s'\n",
                     hosts->c_str());
        std::exit(2);
      }
      cli.hosts.push_back(
          HostEndpoint{tok.substr(0, colon), static_cast<std::uint16_t>(port)});
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (const auto serve = consume_uint_flag(argc, argv, "--serve")) {
    if (*serve > 65535) {
      std::fprintf(stderr,
                   "--serve: expected a TCP port (0-65535, 0 = ephemeral), "
                   "got %llu\n",
                   static_cast<unsigned long long>(*serve));
      std::exit(2);
    }
    cli.serve_port = static_cast<int>(*serve);
  }
  cli.lease_trials = static_cast<std::size_t>(
      consume_uint_flag(argc, argv, "--lease").value_or(0));
  cli.status_json = consume_flag(argc, argv, "--status-json").value_or("");
  if (const auto interval =
          consume_uint_flag(argc, argv, "--status-interval-ms")) {
    if (*interval == 0) {
      std::fprintf(stderr,
                   "error: --status-interval-ms expects a positive "
                   "millisecond interval (got \"0\")\n");
      std::exit(2);
    }
    cli.status_interval_ms = *interval;
  }
  cli.profile_phases = consume_bool_flag(argc, argv, "--profile-phases");
  if (cli.serve_port >= 0 && !cli.hosts.empty()) {
    std::fprintf(
        stderr,
        "error: --serve (host agent) and --hosts (coordinator) are "
        "mutually exclusive\n");
    std::exit(2);
  }
  return cli;
}

}  // namespace fourbit::runner
