// Distributed campaign dispatch: a lease-serving coordinator and the
// host agent that executes leases, built for preemptible fleets.
//
// Topology: one coordinator (`--hosts a:port,b:port`), N host agents
// (any bench binary relaunched with `--serve port`). Both ends derive
// the identical trial list from the same bench arguments — the exact
// self-exec contract the worker pool (worker.hpp) established — so the
// only things that cross the wire are trial INDICES (lease grants) and
// trial RESULTS (journal frames). The coordinator:
//
//   * serves trial-index leases to connected hosts and tracks a
//     per-lease deadline (heartbeat silence, disconnect, or a corrupt
//     stream expires the lease);
//   * reassigns expired leases to whichever host is alive, reconnecting
//     to lost hosts with capped-exponential Backoff and retiring a host
//     after max_host_failures fruitless sessions;
//   * deduplicates double-completions by (index, seed) last-wins —
//     exactly the shard-merge rule — so a lease finishing on two hosts
//     after a spurious expiry is harmless;
//   * attributes host loss to the trials that were in flight and marks
//     a trial kHardCrash once it survives max_trial_crashes host
//     deaths (the crash-loop quarantine, extended across machines);
//   * journals every accepted result to a coordinator-side shard
//     ("<stem>.w1000000.journal"), so SIGKILLing the coordinator loses
//     nothing a host already reported; and
//   * degrades to a pure-local run_supervised pass over whatever is
//     left if every host dies — the campaign ALWAYS completes.
//
// Determinism: every trial is a pure function of its config, results
// ride CRC-framed journal records byte-for-byte, the final report is
// keyed by trial index, and the shard compaction at the end rewrites
// the main journal in index order — so a clean distributed run's
// CampaignReport and --journal file are byte-identical to a
// single-process run, and a resume after coordinator SIGKILL is
// bit-identical too. Liveness caveat: a host that heartbeats but never
// finishes its trial is only expired when --max-trial-ms arms
// trial_timeout_ms, same as the worker pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runner/status.hpp"
#include "runner/supervisor.hpp"

namespace fourbit::runner {

/// Coordinator-side journal shard ids, far above any worker-pool slot
/// (those are 0..workers-1): results accepted over the wire, and the
/// local-fallback supervisor's journal, live in these shards until the
/// final compaction folds both into the main journal.
inline constexpr std::size_t kRemoteShardId = 1'000'000;
inline constexpr std::size_t kLocalShardId = 1'000'001;

struct DispatchOptions {
  /// Trial-level policy. journal_path is the main journal stem (shards
  /// live next to it); on_trial_done fires on the coordinator as trials
  /// settle; run_trial/threads apply to the local fallback only.
  SupervisorOptions supervisor;
  /// Host agents to drive (from --hosts). May be empty, in which case
  /// the whole campaign is one local fallback pass.
  std::vector<HostEndpoint> hosts;
  /// Trials per lease grant; 0 = auto (pending / 2·live hosts, capped
  /// at 32 — small enough that a lost host forfeits little work).
  std::size_t lease_trials = 0;

  /// A host session silent for this long is dead: lease expired.
  std::uint64_t heartbeat_timeout_ms = 10'000;
  /// Per-connect() deadline.
  std::uint64_t connect_timeout_ms = 2'000;
  /// Delay ladder between reconnect attempts to a lost host.
  Backoff reconnect_backoff{250, 10'000, 0.25};
  /// Consecutive fruitless sessions/connect failures (no trial
  /// progress) before a host is retired for the campaign.
  std::size_t max_host_failures = 3;
  /// Host deaths a single trial may be in flight for before it is
  /// declared the killer and marked kHardCrash (crash-loop quarantine).
  std::size_t max_trial_crashes = 2;
  /// Coordinator-side per-trial wall clock (0 = off): expires the
  /// session of a host whose trial outlives it (non-cooperative hangs
  /// on a machine we cannot signal).
  std::uint64_t trial_timeout_ms = 0;

  /// Live observability: publish a merged fourbit.status/1 snapshot —
  /// per-host lease state and health plus every host's forwarded
  /// metrics — to status_path every status_interval_ms
  /// (write-temp-then-rename), and/or hand it to on_status. Strictly
  /// off-band; empty/null disables.
  std::string status_path;
  std::uint64_t status_interval_ms = 1000;
  std::function<void(const StatusSnapshot&)> on_status;
};

/// Runs the campaign across remote host agents. Blocks until every
/// trial is settled; never throws on host misbehavior — only on
/// coordinator-side setup errors (e.g. an unopenable journal).
[[nodiscard]] CampaignReport run_distributed(
    const std::vector<ExperimentConfig>& trials,
    const DispatchOptions& options);

/// Host-agent mode (--serve): listens on cli.serve_port (0 =
/// ephemeral; the bound port is announced on stderr as
/// "fourbit-agent: listening on port N"), then serves coordinator
/// sessions forever — grant in, trials run (through the worker pool
/// when --workers is given, in-process otherwise), statuses and
/// results stream out. Never returns; the agent dies by signal.
/// `options` is the agent's supervisor policy — typically
/// cli.supervisor_options(), run_trial overridden by tests; its
/// journal_path is ignored (results are durable on the coordinator).
[[noreturn]] void run_host_agent(const std::vector<ExperimentConfig>& trials,
                                 const CampaignCli& cli,
                                 SupervisorOptions options);

}  // namespace fourbit::runner
