#include "runner/status.hpp"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "common/byte_io.hpp"
#include "stats/export.hpp"

namespace fourbit::runner {
namespace {

constexpr std::uint8_t kStatusVersion = 1;
// Decode-side sanity caps: a payload past these is corruption (or an
// attacker), not a real campaign.
constexpr std::size_t kMaxString = 512;
constexpr std::size_t kMaxSources = 4096;
constexpr std::size_t kMaxMetricRows = 65536;
constexpr std::size_t kMaxHistRows = 4096;

void write_str(ByteWriter& w, const std::string& s) {
  const std::size_t n = s.size() < kMaxString ? s.size() : kMaxString;
  w.u16(static_cast<std::uint16_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    w.u8(static_cast<std::uint8_t>(s[i]));
  }
}

bool read_str(ByteReader& r, std::string& out) {
  const std::uint16_t n = r.u16();
  if (!r.ok() || n > kMaxString || r.remaining() < n) return false;
  out.clear();
  out.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(r.u8()));
  }
  return r.ok();
}

void append_format(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n) < sizeof buf
                                 ? static_cast<std::size_t>(n)
                                 : sizeof buf - 1);
}

const char* source_kind_name(StatusSource::Kind kind) {
  switch (kind) {
    case StatusSource::Kind::kLocal: return "local";
    case StatusSource::Kind::kWorker: return "worker";
    case StatusSource::Kind::kHost: return "host";
  }
  return "?";
}

}  // namespace

std::vector<std::uint8_t> encode_status_snapshot(
    const StatusSnapshot& snapshot) {
  std::vector<std::uint8_t> payload;
  ByteWriter w{payload};
  w.u8(kStatusVersion);
  w.u64(snapshot.seq);
  w.u64(snapshot.total);
  w.u64(snapshot.done);
  w.u64(snapshot.failed);
  w.u64(snapshot.retried);
  w.u64(snapshot.in_flight);
  w.u64(snapshot.replayed);
  w.u64(snapshot.hard_crashes);
  w.u64(snapshot.worker_respawns);
  w.u64(snapshot.host_losses);
  w.u64(snapshot.lease_reassignments);
  w.f64(snapshot.elapsed_s);
  w.f64(snapshot.trials_per_s);
  w.f64(snapshot.eta_s);

  w.u32(static_cast<std::uint32_t>(snapshot.sources.size()));
  for (const auto& s : snapshot.sources) {
    write_str(w, s.name);
    w.u8(static_cast<std::uint8_t>(s.kind));
    w.u8(static_cast<std::uint8_t>((s.alive ? 1 : 0) |
                                   (s.retired ? 2 : 0)));
    w.u64(s.done);
    w.u64(s.failed);
    w.u64(s.in_flight);
    w.u64(s.losses);
    w.u64(s.fruitless);
    write_str(w, s.lease);
  }

  w.u32(static_cast<std::uint32_t>(snapshot.counters.size()));
  for (const auto& c : snapshot.counters) {
    write_str(w, c.component);
    write_str(w, c.name);
    w.u64(c.value);
  }

  w.u32(static_cast<std::uint32_t>(snapshot.gauges.size()));
  for (const auto& g : snapshot.gauges) {
    write_str(w, g.component);
    write_str(w, g.name);
    w.f64(g.value);
  }

  w.u32(static_cast<std::uint32_t>(snapshot.histograms.size()));
  for (const auto& h : snapshot.histograms) {
    write_str(w, h.component);
    write_str(w, h.name);
    w.u64(h.hist.count);
    w.u64(h.hist.sum);
    // Bins are sparse in practice: encode only the occupied ones.
    std::uint8_t occupied = 0;
    for (const auto bin : h.hist.bins) {
      if (bin != 0) ++occupied;
    }
    w.u8(occupied);
    for (std::size_t bin = 0; bin < sim::kHistogramBins; ++bin) {
      if (h.hist.bins[bin] == 0) continue;
      w.u8(static_cast<std::uint8_t>(bin));
      w.u64(h.hist.bins[bin]);
    }
  }
  return payload;
}

std::optional<StatusSnapshot> decode_status_snapshot(
    std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  if (r.u8() != kStatusVersion) return std::nullopt;
  StatusSnapshot snapshot;
  snapshot.seq = r.u64();
  snapshot.total = r.u64();
  snapshot.done = r.u64();
  snapshot.failed = r.u64();
  snapshot.retried = r.u64();
  snapshot.in_flight = r.u64();
  snapshot.replayed = r.u64();
  snapshot.hard_crashes = r.u64();
  snapshot.worker_respawns = r.u64();
  snapshot.host_losses = r.u64();
  snapshot.lease_reassignments = r.u64();
  snapshot.elapsed_s = r.f64();
  snapshot.trials_per_s = r.f64();
  snapshot.eta_s = r.f64();
  if (!r.ok()) return std::nullopt;

  const std::uint32_t n_sources = r.u32();
  if (!r.ok() || n_sources > kMaxSources) return std::nullopt;
  snapshot.sources.reserve(n_sources);
  for (std::uint32_t i = 0; i < n_sources; ++i) {
    StatusSource s;
    if (!read_str(r, s.name)) return std::nullopt;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(StatusSource::Kind::kHost)) {
      return std::nullopt;
    }
    s.kind = static_cast<StatusSource::Kind>(kind);
    const std::uint8_t flags = r.u8();
    s.alive = (flags & 1) != 0;
    s.retired = (flags & 2) != 0;
    s.done = r.u64();
    s.failed = r.u64();
    s.in_flight = r.u64();
    s.losses = r.u64();
    s.fruitless = r.u64();
    if (!read_str(r, s.lease) || !r.ok()) return std::nullopt;
    snapshot.sources.push_back(std::move(s));
  }

  const std::uint32_t n_counters = r.u32();
  if (!r.ok() || n_counters > kMaxMetricRows) return std::nullopt;
  snapshot.counters.reserve(n_counters);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    StatusCounter c;
    if (!read_str(r, c.component) || !read_str(r, c.name)) {
      return std::nullopt;
    }
    c.value = r.u64();
    if (!r.ok()) return std::nullopt;
    snapshot.counters.push_back(std::move(c));
  }

  const std::uint32_t n_gauges = r.u32();
  if (!r.ok() || n_gauges > kMaxMetricRows) return std::nullopt;
  snapshot.gauges.reserve(n_gauges);
  for (std::uint32_t i = 0; i < n_gauges; ++i) {
    StatusGauge g;
    if (!read_str(r, g.component) || !read_str(r, g.name)) {
      return std::nullopt;
    }
    g.value = r.f64();
    if (!r.ok()) return std::nullopt;
    snapshot.gauges.push_back(std::move(g));
  }

  const std::uint32_t n_hists = r.u32();
  if (!r.ok() || n_hists > kMaxHistRows) return std::nullopt;
  snapshot.histograms.reserve(n_hists);
  for (std::uint32_t i = 0; i < n_hists; ++i) {
    StatusHistogram h;
    if (!read_str(r, h.component) || !read_str(r, h.name)) {
      return std::nullopt;
    }
    h.hist.count = r.u64();
    h.hist.sum = r.u64();
    const std::uint8_t occupied = r.u8();
    if (!r.ok() || occupied > sim::kHistogramBins) return std::nullopt;
    for (std::uint8_t b = 0; b < occupied; ++b) {
      const std::uint8_t bin = r.u8();
      const std::uint64_t count = r.u64();
      if (!r.ok() || bin >= sim::kHistogramBins) return std::nullopt;
      h.hist.bins[bin] = count;
    }
    snapshot.histograms.push_back(std::move(h));
  }

  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return snapshot;
}

std::string status_json(const StatusSnapshot& snapshot) {
  std::string out;
  out.reserve(1024);
  out += "{\"schema\":\"";
  out += kStatusSchema;
  out += "\",\"type\":\"status\"";
  append_format(out,
                ",\"seq\":%llu,\"total\":%llu,\"done\":%llu,"
                "\"failed\":%llu,\"retried\":%llu,\"in_flight\":%llu,"
                "\"replayed\":%llu",
                static_cast<unsigned long long>(snapshot.seq),
                static_cast<unsigned long long>(snapshot.total),
                static_cast<unsigned long long>(snapshot.done),
                static_cast<unsigned long long>(snapshot.failed),
                static_cast<unsigned long long>(snapshot.retried),
                static_cast<unsigned long long>(snapshot.in_flight),
                static_cast<unsigned long long>(snapshot.replayed));
  append_format(
      out,
      ",\"hard_crashes\":%llu,\"worker_respawns\":%llu,"
      "\"host_losses\":%llu,\"lease_reassignments\":%llu",
      static_cast<unsigned long long>(snapshot.hard_crashes),
      static_cast<unsigned long long>(snapshot.worker_respawns),
      static_cast<unsigned long long>(snapshot.host_losses),
      static_cast<unsigned long long>(snapshot.lease_reassignments));
  append_format(out, ",\"elapsed_s\":%.3f,\"trials_per_s\":%.4f",
                snapshot.elapsed_s, snapshot.trials_per_s);
  if (snapshot.eta_s >= 0.0) {
    append_format(out, ",\"eta_s\":%.1f", snapshot.eta_s);
  } else {
    out += ",\"eta_s\":null";
  }

  out += ",\"sources\":[";
  for (std::size_t i = 0; i < snapshot.sources.size(); ++i) {
    const auto& s = snapshot.sources[i];
    if (i != 0) out += ',';
    append_format(out,
                  "{\"name\":\"%s\",\"kind\":\"%s\",\"alive\":%s,"
                  "\"retired\":%s,\"done\":%llu,\"failed\":%llu,"
                  "\"in_flight\":%llu,\"losses\":%llu,\"fruitless\":%llu,"
                  "\"lease\":\"%s\"}",
                  stats::json_escape(s.name).c_str(),
                  source_kind_name(s.kind), s.alive ? "true" : "false",
                  s.retired ? "true" : "false",
                  static_cast<unsigned long long>(s.done),
                  static_cast<unsigned long long>(s.failed),
                  static_cast<unsigned long long>(s.in_flight),
                  static_cast<unsigned long long>(s.losses),
                  static_cast<unsigned long long>(s.fruitless),
                  stats::json_escape(s.lease).c_str());
  }
  out += ']';

  out += ",\"counters\":[";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    if (i != 0) out += ',';
    append_format(out, "{\"component\":\"%s\",\"name\":\"%s\",\"value\":%llu}",
                  stats::json_escape(c.component).c_str(),
                  stats::json_escape(c.name).c_str(),
                  static_cast<unsigned long long>(c.value));
  }
  out += ']';

  out += ",\"gauges\":[";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    if (i != 0) out += ',';
    append_format(out, "{\"component\":\"%s\",\"name\":\"%s\",\"value\":%.6g}",
                  stats::json_escape(g.component).c_str(),
                  stats::json_escape(g.name).c_str(), g.value);
  }
  out += ']';

  out += ",\"histograms\":[";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i != 0) out += ',';
    append_format(
        out,
        "{\"component\":\"%s\",\"name\":\"%s\",\"count\":%llu,"
        "\"sum\":%llu,\"mean\":%.4g,\"p50\":%.4g,\"p90\":%.4g,"
        "\"p99\":%.4g,\"bins\":[",
        stats::json_escape(h.component).c_str(),
        stats::json_escape(h.name).c_str(),
        static_cast<unsigned long long>(h.hist.count),
        static_cast<unsigned long long>(h.hist.sum), h.hist.mean(),
        h.hist.quantile(0.50), h.hist.quantile(0.90), h.hist.quantile(0.99));
    bool first = true;
    for (std::size_t bin = 0; bin < sim::kHistogramBins; ++bin) {
      if (h.hist.bins[bin] == 0) continue;
      if (!first) out += ',';
      first = false;
      append_format(out, "[%zu,%llu]", bin,
                    static_cast<unsigned long long>(h.hist.bins[bin]));
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

bool write_status_file(const std::string& path, const std::string& json) {
  // Same discipline as write_flight_snapshot: the published file is
  // always either the previous complete snapshot or this one. No fsync
  // (the contract is torn-read safety, not power-cut durability).
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return false;
  const bool wrote =
      std::fwrite(json.data(), 1, json.size(), file) == json.size();
  std::fclose(file);
  if (!wrote) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

void merge_status_metrics(StatusSnapshot& into, const StatusSnapshot& part) {
  std::map<std::pair<std::string, std::string>, std::uint64_t> counters;
  for (auto& c : into.counters) counters[{c.component, c.name}] += c.value;
  for (const auto& c : part.counters) {
    counters[{c.component, c.name}] += c.value;
  }
  into.counters.clear();
  for (const auto& [key, value] : counters) {
    into.counters.push_back(StatusCounter{key.first, key.second, value});
  }

  std::map<std::pair<std::string, std::string>, double> gauges;
  for (auto& g : into.gauges) gauges[{g.component, g.name}] = g.value;
  for (const auto& g : part.gauges) gauges[{g.component, g.name}] = g.value;
  into.gauges.clear();
  for (const auto& [key, value] : gauges) {
    into.gauges.push_back(StatusGauge{key.first, key.second, value});
  }

  std::map<std::pair<std::string, std::string>, sim::Histogram> hists;
  for (auto& h : into.histograms) {
    hists[{h.component, h.name}].merge(h.hist);
  }
  for (const auto& h : part.histograms) {
    hists[{h.component, h.name}].merge(h.hist);
  }
  into.histograms.clear();
  for (const auto& [key, hist] : hists) {
    into.histograms.push_back(StatusHistogram{key.first, key.second, hist});
  }
}

void stamp_status(StatusSnapshot& snapshot, std::uint64_t seq,
                  double elapsed_s, std::uint64_t total) {
  snapshot.seq = seq;
  snapshot.total = total;
  snapshot.elapsed_s = elapsed_s;
  // Rate and ETA are over SETTLED trials (done + failed): a failing
  // campaign still converges, and replays didn't cost this run time.
  const std::uint64_t settled = snapshot.done + snapshot.failed;
  const std::uint64_t fresh =
      settled > snapshot.replayed ? settled - snapshot.replayed : 0;
  snapshot.trials_per_s =
      elapsed_s > 0.0 ? static_cast<double>(fresh) / elapsed_s : 0.0;
  const std::uint64_t remaining = total > settled ? total - settled : 0;
  if (remaining == 0) {
    snapshot.eta_s = 0.0;
  } else if (snapshot.trials_per_s > 0.0) {
    snapshot.eta_s = static_cast<double>(remaining) / snapshot.trials_per_s;
  } else {
    snapshot.eta_s = -1.0;  // no measurable rate yet
  }
}

StatusPublisher::StatusPublisher(std::uint64_t interval_ms,
                                 std::function<void()> tick)
    : tick_(std::move(tick)),
      interval_ms_(interval_ms < 10 ? 10 : interval_ms) {
  thread_ = std::thread([this] {
    std::unique_lock lock{mutex_};
    while (!stop_) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                       [this] { return stop_; })) {
        break;
      }
      lock.unlock();
      tick_();
      lock.lock();
    }
  });
}

StatusPublisher::~StatusPublisher() {
  {
    std::lock_guard lock{mutex_};
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  tick_();  // the final snapshot: every trial settled
}

// ---- StatusBoard ------------------------------------------------------

void StatusBoard::trial_started(std::uint64_t trial) {
  std::lock_guard lock{mutex_};
  ++in_flight_;
  trial_counter_seen_.erase(trial);
  trial_hist_seen_.erase(trial);
}

void StatusBoard::attempt_reset(std::uint64_t trial) {
  std::lock_guard lock{mutex_};
  ++retried_;
  trial_counter_seen_.erase(trial);
  trial_hist_seen_.erase(trial);
}

void StatusBoard::trial_settled(std::uint64_t trial, bool failed,
                                std::uint64_t wall_ms) {
  std::lock_guard lock{mutex_};
  if (in_flight_ > 0) --in_flight_;
  if (failed) {
    ++failed_;
  } else {
    ++done_;
  }
  histograms_[{"runner", "trial_wall_ms"}].record(wall_ms);
  trial_counter_seen_.erase(trial);
  trial_hist_seen_.erase(trial);
}

void StatusBoard::add_replayed(std::uint64_t n) {
  std::lock_guard lock{mutex_};
  replayed_ += n;
  done_ += n;
}

void StatusBoard::publish_registry(std::uint64_t trial,
                                   const sim::TelemetryContext& telemetry) {
  // Aggregate the registry across nodes first (per-node rows share one
  // (component, name) status key), then apply the per-trial delta so a
  // repeated push counts each increment once. A current value below the
  // last-seen one means the trial restarted (retry): take it whole.
  std::map<Key, std::uint64_t> counters;
  for (const auto& row : telemetry.counters()) {
    counters[{row.component, row.name}] += row.value;
  }
  std::map<Key, double> gauges;
  for (const auto& row : telemetry.gauges()) {
    gauges[{row.component, row.name}] += row.value;
  }
  std::map<Key, sim::Histogram> hists;
  for (const auto& row : telemetry.histograms()) {
    hists[{row.component, row.name}].merge(row.hist);
  }

  std::lock_guard lock{mutex_};
  auto& counter_seen = trial_counter_seen_[trial];
  for (const auto& [key, value] : counters) {
    std::uint64_t& seen = counter_seen[key];
    const std::uint64_t delta = value >= seen ? value - seen : value;
    counters_[key] += delta;
    seen = value;
  }
  for (const auto& [key, value] : gauges) {
    gauges_[key] = value;
  }
  auto& hist_seen = trial_hist_seen_[trial];
  for (const auto& [key, hist] : hists) {
    sim::Histogram& seen = hist_seen[key];
    sim::Histogram delta;
    bool grew = hist.count >= seen.count;
    if (grew) {
      for (std::size_t i = 0; i < sim::kHistogramBins; ++i) {
        if (hist.bins[i] < seen.bins[i]) {
          grew = false;
          break;
        }
      }
    }
    if (grew) {
      for (std::size_t i = 0; i < sim::kHistogramBins; ++i) {
        delta.bins[i] = hist.bins[i] - seen.bins[i];
      }
      delta.count = hist.count - seen.count;
      delta.sum = hist.sum - seen.sum;
    } else {
      delta = hist;  // registry restarted: the whole thing is new
    }
    histograms_[key].merge(delta);
    seen = hist;
  }
}

void StatusBoard::absorb_metrics(const StatusSnapshot& snapshot) {
  std::lock_guard lock{mutex_};
  for (const auto& c : snapshot.counters) {
    counters_[{c.component, c.name}] += c.value;
  }
  for (const auto& g : snapshot.gauges) {
    gauges_[{g.component, g.name}] = g.value;
  }
  for (const auto& h : snapshot.histograms) {
    histograms_[{h.component, h.name}].merge(h.hist);
  }
}

void StatusBoard::record_histogram(const std::string& component,
                                   const std::string& name,
                                   std::uint64_t value) {
  std::lock_guard lock{mutex_};
  histograms_[{component, name}].record(value);
}

void StatusBoard::fill_snapshot(StatusSnapshot& out) const {
  std::lock_guard lock{mutex_};
  out.done = done_;
  out.failed = failed_;
  out.retried = retried_;
  out.in_flight = in_flight_;
  out.replayed = replayed_;
  out.counters.clear();
  for (const auto& [key, value] : counters_) {
    out.counters.push_back(StatusCounter{key.first, key.second, value});
  }
  out.gauges.clear();
  for (const auto& [key, value] : gauges_) {
    out.gauges.push_back(StatusGauge{key.first, key.second, value});
  }
  out.histograms.clear();
  for (const auto& [key, hist] : histograms_) {
    out.histograms.push_back(StatusHistogram{key.first, key.second, hist});
  }
}

}  // namespace fourbit::runner
