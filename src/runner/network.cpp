#include "runner/network.hpp"

#include <unordered_map>
#include <utility>

#include "common/assert.hpp"

namespace fourbit::runner {

Network::Network(sim::Simulator& sim, const topology::Testbed& testbed,
                 Options options, stats::Metrics* metrics)
    : sim_(sim), metrics_(metrics), root_(testbed.topology.root) {
  sim::Rng rng{options.seed};

  std::unique_ptr<phy::InterferenceModel> interference;
  if (options.interference_override != nullptr) {
    interference = std::move(options.interference_override);
  } else if (testbed.environment.burst_interference) {
    auto bursts = testbed.environment.bursts;
    // The sink is sited away from interferers (see DESIGN.md): a sink
    // jammed for tens of seconds would measure site placement, not link
    // estimation.
    bursts.exempt = testbed.topology.root;
    interference = std::make_unique<phy::GilbertElliottInterference>(
        bursts, rng.fork("bursts"));
  } else {
    interference = std::make_unique<phy::NullInterference>();
  }

  channel_ = std::make_unique<phy::Channel>(
      sim, testbed.environment.phy, testbed.environment.propagation,
      std::move(interference), rng.fork("channel"));

  const net::CollectionConfig net_cfg =
      options.collection_override.value_or(
          make_collection_config(options.profile));

  sim::Rng hw_rng = rng.fork("hardware");
  for (std::size_t i = 0; i < testbed.topology.nodes.size(); ++i) {
    const auto& placement = testbed.topology.nodes[i];
    if (placement.id == root_) root_index_ = i;

    const auto hw =
        phy::HardwareProfile::sample(testbed.environment.hardware, hw_rng);
    radios_.push_back(std::make_unique<phy::Radio>(
        *channel_, placement.id, placement.position, hw, options.tx_power));

    macs_.push_back(std::make_unique<mac::CsmaMac>(
        sim, *radios_.back(), mac::CsmaConfig{},
        rng.fork(placement.id.value()).fork("mac")));

    mac::Mac* link_layer = macs_.back().get();
    if (options.lpl_wake_interval.us() > 0) {
      mac::LplConfig lpl;
      lpl.wake_interval = options.lpl_wake_interval;
      lpl_macs_.push_back(std::make_unique<mac::LplMac>(
          sim, *macs_.back(), lpl,
          rng.fork(placement.id.value()).fork("lpl")));
      link_layer = lpl_macs_.back().get();
    }

    auto estimator = make_estimator(
        options.profile, placement.id, options.table_capacity,
        rng.fork(placement.id.value()).fork("estimator"),
        options.four_bit_override);

    nodes_.push_back(std::make_unique<net::CollectionNode>(
        sim, *link_layer, std::move(estimator), placement.id == root_,
        net_cfg, metrics, rng.fork(placement.id.value()).fork("node")));
  }
}

Network::~Network() = default;

void Network::start(sim::Duration boot_stagger,
                    const app::TrafficConfig& traffic) {
  sim::Rng boot_rng{static_cast<std::uint64_t>(boot_stagger.us()) ^
                    0xB007B007ULL};
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto boot_at =
        sim_.now() + sim::Duration::from_seconds(
                         boot_rng.uniform(0.0, boot_stagger.seconds()));
    if (i == root_index_) {
      net::CollectionNode* root_node = nodes_[i].get();
      sim_.schedule_at(boot_at, [root_node] { root_node->boot(); });
      continue;
    }
    traffic_.push_back(std::make_unique<app::TrafficGenerator>(
        sim_, *nodes_[i], traffic,
        boot_rng.fork(nodes_[i]->id().value())));
    traffic_.back()->start(boot_at);
  }
}

TreeSnapshot Network::tree_snapshot() const {
  // Map node id -> index once; then walk parent pointers with a hop cap
  // (a transient routing loop must not hang the snapshot).
  std::unordered_map<NodeId, std::size_t> index;
  index.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    index.emplace(nodes_[i]->id(), i);
  }

  TreeSnapshot snap;
  snap.depths.assign(nodes_.size(), -1);
  const int hop_cap = static_cast<int>(nodes_.size()) + 1;

  double depth_sum = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i == root_index_) {
      snap.depths[i] = 0;
      continue;
    }
    ++snap.total;
    NodeId cursor = nodes_[i]->id();
    int depth = 0;
    while (depth < hop_cap) {
      const auto it = index.find(cursor);
      if (it == index.end()) break;
      const auto& routing = nodes_[it->second]->routing();
      if (routing.is_root()) {
        snap.depths[i] = depth;
        break;
      }
      if (!routing.has_route()) break;
      cursor = routing.parent();
      ++depth;
    }
    if (snap.depths[i] >= 0) {
      ++snap.routed;
      depth_sum += snap.depths[i];
    }
  }
  snap.mean_depth =
      snap.routed > 0 ? depth_sum / static_cast<double>(snap.routed) : 0.0;
  return snap;
}

std::uint64_t Network::total_parent_changes() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n->routing().parent_changes();
  return total;
}

std::uint64_t Network::total_parent_evictions() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n->routing().parent_evictions();
  return total;
}

std::size_t Network::index_of(NodeId id) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->id() == id) return i;
  }
  return nodes_.size();
}

void Network::crash_node(std::size_t i) {
  FOURBIT_ASSERT(i < nodes_.size(), "crash_node: index out of range");
  if (i == root_index_) return;  // the sink is mains-powered
  if (nodes_[i]->crashed()) return;
  nodes_[i]->crash();
  radios_[i]->set_listening(false);
  if (metrics_ != nullptr) metrics_->on_node_crashed(nodes_[i]->id(), sim_.now());
}

void Network::reboot_node(std::size_t i) {
  FOURBIT_ASSERT(i < nodes_.size(), "reboot_node: index out of range");
  if (!nodes_[i]->crashed()) return;
  radios_[i]->set_listening(true);
  nodes_[i]->reboot();
  if (metrics_ != nullptr) {
    metrics_->on_node_rebooted(nodes_[i]->id(), sim_.now());
  }
}

std::vector<std::size_t> Network::root_children() const {
  std::vector<std::size_t> children;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i == root_index_) continue;
    const auto& routing = nodes_[i]->routing();
    if (routing.has_route() && routing.parent() == root_) {
      children.push_back(i);
    }
  }
  return children;
}

}  // namespace fourbit::runner
