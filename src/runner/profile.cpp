#include "runner/profile.hpp"

#include "core/four_bit_estimator.hpp"
#include "estimators/broadcast_etx.hpp"
#include "estimators/lqi_estimator.hpp"

namespace fourbit::runner {

std::string_view profile_name(Profile p) {
  switch (p) {
    case Profile::kFourBit:
      return "4B";
    case Profile::kCtpT2:
      return "CTP-T2";
    case Profile::kCtpUnidirAck:
      return "CTP+ack";
    case Profile::kCtpWhiteCompare:
      return "CTP+white/compare";
    case Profile::kCtpUnconstrained:
      return "CTP-unconstrained";
    case Profile::kMultihopLqi:
      return "MultiHopLQI";
  }
  return "?";
}

std::unique_ptr<link::LinkEstimator> make_estimator(
    Profile p, NodeId self, std::size_t table_capacity, sim::Rng rng,
    const std::optional<core::FourBitConfig>& four_bit_override) {
  switch (p) {
    case Profile::kFourBit: {
      core::FourBitConfig cfg =
          four_bit_override.value_or(core::FourBitConfig{});
      cfg.table_capacity = table_capacity;
      cfg.insertion = core::InsertionPolicy::kWhiteCompare;
      return std::make_unique<core::FourBitEstimator>(cfg, rng);
    }
    case Profile::kCtpUnidirAck: {
      core::FourBitConfig cfg =
          four_bit_override.value_or(core::FourBitConfig{});
      cfg.table_capacity = table_capacity;
      cfg.insertion = core::InsertionPolicy::kProbabilistic;
      return std::make_unique<core::FourBitEstimator>(cfg, rng);
    }
    case Profile::kCtpT2: {
      estimators::BroadcastEtxConfig cfg;
      cfg.table_capacity = table_capacity;
      cfg.insertion = core::InsertionPolicy::kProbabilistic;
      return std::make_unique<estimators::BroadcastEtxEstimator>(self, cfg,
                                                                 rng);
    }
    case Profile::kCtpWhiteCompare: {
      estimators::BroadcastEtxConfig cfg;
      cfg.table_capacity = table_capacity;
      cfg.insertion = core::InsertionPolicy::kWhiteCompare;
      return std::make_unique<estimators::BroadcastEtxEstimator>(self, cfg,
                                                                 rng);
    }
    case Profile::kCtpUnconstrained: {
      estimators::BroadcastEtxConfig cfg;
      cfg.table_capacity = 0;  // unbounded
      cfg.footer_max = 24;     // bigger LEEP frames keep reverse info fresh
      cfg.insertion = core::InsertionPolicy::kProbabilistic;
      return std::make_unique<estimators::BroadcastEtxEstimator>(self, cfg,
                                                                 rng);
    }
    case Profile::kMultihopLqi: {
      estimators::LqiEstimatorConfig cfg;
      cfg.table_capacity = 16;
      return std::make_unique<estimators::LqiEstimator>(cfg, rng);
    }
  }
  return nullptr;
}

net::CollectionConfig make_collection_config(Profile p) {
  net::CollectionConfig cfg;
  if (p == Profile::kMultihopLqi) {
    cfg.beacon_timing = net::BeaconTiming::kFixed;
    cfg.fixed_beacon_interval = sim::Duration::from_seconds(30.0);
    cfg.max_retransmissions = 5;
    cfg.datapath_feedback = false;
    cfg.snoop = false;
    cfg.parent_switch_threshold = 0.5;
    // MultiHopLQI has no datapath feedback into routing at all — it does
    // not notice a dead parent either. Keeping eviction off preserves
    // the wedge-on-failure behavior the paper contrasts 4B against.
    cfg.parent_evict_failures = 0;
  }
  return cfg;
}

}  // namespace fourbit::runner
