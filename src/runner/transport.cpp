#include "runner/transport.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "common/byte_io.hpp"
#include "common/crc16.hpp"

namespace fourbit::runner {
namespace {

constexpr std::uint8_t kControlVersion = 1;
constexpr std::size_t kFrameHeaderBytes = 6;  // magic u16 + length u32
constexpr std::size_t kCrcBytes = 2;
// Per-magic sanity caps, mirroring the pipe parser: status and control
// frames are small, but a journal frame carries per-node vectors and
// scales with topology size (~12 bytes/node), so it gets more rope. A
// length past the cap is corruption, not a giant record.
constexpr std::size_t kMaxStatusFrameBytes = 1 << 20;
constexpr std::size_t kMaxControlFrameBytes = 1 << 20;
constexpr std::size_t kMaxResultFrameBytes = 8 << 20;
// write_all_fd backstop: a peer that accepts nothing for this long is
// treated as gone (a dead coordinator must not wedge a host forever).
constexpr int kWriteStallTimeoutMs = 30'000;

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

int poll_retry(pollfd* fds, std::size_t count, int timeout_ms) {
  int polled;
  do {
    polled = ::poll(fds, static_cast<nfds_t>(count), timeout_ms);
  } while (polled < 0 && errno == EINTR);
  return polled;
}

int accept_retry(int listen_fd) {
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd >= 0) set_cloexec(fd);
  return fd;
}

bool write_all_fd(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL belt on top of the ignore_sigpipe suspenders; fall
    // back to write() when the fd is not a socket (tests use pipes).
    ssize_t wrote = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (wrote < 0 && errno == ENOTSOCK) {
      wrote = ::write(fd, data + off, n - off);
    }
    if (wrote > 0) {
      off += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      const int polled = poll_retry(&pfd, 1, kWriteStallTimeoutMs);
      if (polled <= 0) return false;  // stalled or broken: peer is gone
      continue;
    }
    return false;  // EPIPE/ECONNRESET/EBADF/...: peer is gone
  }
  return true;
}

std::optional<ListenSocket> listen_on(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  set_cloexec(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 8) < 0) {
    ::close(fd);
    return std::nullopt;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    ::close(fd);
    return std::nullopt;
  }
  return ListenSocket{fd, ntohs(bound.sin_port)};
}

int connect_to_host(const std::string& host, std::uint16_t port,
                    std::uint64_t timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &results) != 0 ||
      results == nullptr) {
    return -1;
  }

  int fd = -1;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    set_cloexec(fd);
    ::fcntl(fd, F_SETFL, O_NONBLOCK);

    int rc;
    do {
      rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      const int polled = poll_retry(&pfd, 1, static_cast<int>(timeout_ms));
      if (polled > 0) {
        int err = 0;
        socklen_t err_len = sizeof err;
        rc = (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) == 0 &&
              err == 0)
                 ? 0
                 : -1;
      } else {
        rc = -1;  // timeout or poll error: this address is unreachable
      }
    }
    if (rc == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd >= 0) set_nodelay(fd);
  return fd;
}

std::vector<std::uint8_t> encode_control_message(
    const ControlMessage& message) {
  std::vector<std::uint8_t> payload;
  ByteWriter w{payload};
  w.u8(kControlVersion);
  w.u8(static_cast<std::uint8_t>(message.kind));
  w.u32(message.lease);
  w.u32(static_cast<std::uint32_t>(message.text.size()));
  for (const char c : message.text) w.u8(static_cast<std::uint8_t>(c));

  std::vector<std::uint8_t> frame;
  ByteWriter framer{frame};
  framer.u16(kControlMagic);
  framer.u32(static_cast<std::uint32_t>(payload.size()));
  framer.bytes(payload);
  framer.u16(crc16(payload));
  return frame;
}

std::optional<ControlMessage> decode_control_message_payload(
    std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  if (r.u8() != kControlVersion) return std::nullopt;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(ControlKind::kStatus)) {
    return std::nullopt;
  }
  ControlMessage message;
  message.kind = static_cast<ControlKind>(kind);
  message.lease = r.u32();
  const std::uint32_t text_len = r.u32();
  if (!r.ok() || text_len > kMaxControlFrameBytes ||
      r.remaining() < text_len) {
    return std::nullopt;
  }
  message.text.reserve(text_len);
  for (std::uint32_t i = 0; i < text_len; ++i) {
    message.text.push_back(static_cast<char>(r.u8()));
  }
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return message;
}

void TransportParser::feed(const std::uint8_t* data, std::size_t n) {
  if (corrupt_) return;
  buffer_.insert(buffer_.end(), data, data + n);
}

std::optional<TransportFrame> TransportParser::next() {
  if (corrupt_) return std::nullopt;
  if (pos_ > 0 && pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  }
  const std::size_t avail = buffer_.size() - pos_;
  if (avail < kFrameHeaderBytes) return std::nullopt;
  const std::span<const std::uint8_t> rest{buffer_.data() + pos_, avail};
  ByteReader header{rest.first(kFrameHeaderBytes)};
  const std::uint16_t magic = header.u16();
  std::size_t max_frame = 0;
  switch (magic) {
    case kWorkerPipeMagic: max_frame = kMaxStatusFrameBytes; break;
    case kJournalMagic: max_frame = kMaxResultFrameBytes; break;
    case kControlMagic: max_frame = kMaxControlFrameBytes; break;
    default:
      corrupt_ = true;
      return std::nullopt;
  }
  const std::uint32_t length = header.u32();
  if (length > max_frame) {
    corrupt_ = true;
    return std::nullopt;
  }
  if (avail < kFrameHeaderBytes + length + kCrcBytes) return std::nullopt;
  const auto payload = rest.subspan(kFrameHeaderBytes, length);
  ByteReader crc_reader{rest.subspan(kFrameHeaderBytes + length, kCrcBytes)};
  if (crc_reader.u16() != crc16(payload)) {
    corrupt_ = true;
    return std::nullopt;
  }

  TransportFrame frame;
  bool decoded = false;
  switch (magic) {
    case kWorkerPipeMagic: {
      frame.type = TransportFrame::Type::kStatus;
      auto rec = decode_worker_record_payload(payload);
      if (rec) {
        frame.record = std::move(*rec);
        decoded = true;
      }
      break;
    }
    case kJournalMagic: {
      frame.type = TransportFrame::Type::kResult;
      auto entry = decode_journal_record_payload(payload);
      if (entry) {
        frame.entry = std::move(*entry);
        decoded = true;
      }
      break;
    }
    case kControlMagic: {
      frame.type = TransportFrame::Type::kControl;
      auto control = decode_control_message_payload(payload);
      if (control) {
        frame.control = std::move(*control);
        decoded = true;
      }
      break;
    }
    default: break;  // unreachable: magic validated above
  }
  if (!decoded) {
    corrupt_ = true;
    return std::nullopt;
  }
  pos_ += kFrameHeaderBytes + length + kCrcBytes;
  // Compact once the consumed prefix dominates, so a long session does
  // not grow the buffer without bound.
  if (pos_ > (1 << 16) && pos_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return frame;
}

}  // namespace fourbit::runner
