// Protocol profiles under test — one per point in the paper's design
// space (Figure 6) plus the MultiHopLQI baseline.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string_view>

#include "common/ids.hpp"
#include "core/four_bit_config.hpp"
#include "link/estimator.hpp"
#include "net/config.hpp"
#include "sim/rng.hpp"

namespace fourbit::runner {

enum class Profile {
  kFourBit,           // "4B": hybrid estimator + all four bits
  kCtpT2,             // stock CTP: broadcast-probe ETX, 10-entry table
  kCtpUnidirAck,      // CTP + ack bit (hybrid estimator, no white/compare)
  kCtpWhiteCompare,   // CTP + white & compare bits (probe ETX estimation)
  kCtpUnconstrained,  // stock CTP with an unbounded link table
  kMultihopLqi,       // PHY-only baseline
};

[[nodiscard]] std::string_view profile_name(Profile p);

/// Builds the link estimator for a profile. `table_capacity` applies to
/// the bounded profiles (ignored by kCtpUnconstrained). The optional
/// override replaces the hybrid-estimator tunables for ablation studies
/// (its insertion policy is still forced per profile).
[[nodiscard]] std::unique_ptr<link::LinkEstimator> make_estimator(
    Profile p, NodeId self, std::size_t table_capacity, sim::Rng rng,
    const std::optional<core::FourBitConfig>& four_bit_override = {});

/// Collection-protocol parameters for a profile (CTP-style for everything
/// except MultiHopLQI, which beacons on a fixed interval, retransmits
/// shallowly, and has no datapath feedback).
[[nodiscard]] net::CollectionConfig make_collection_config(Profile p);

}  // namespace fourbit::runner
