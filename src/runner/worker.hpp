// Multi-process campaign execution: a coordinator that fork/execs
// worker processes and survives anything a trial can do to them.
//
// The in-process supervisor (supervisor.hpp) catches what C++ lets it
// catch — exceptions, asserts, cooperative budget timeouts. It is
// structurally blind to SIGSEGV, SIGBUS, OOM kills and std::terminate:
// those take the whole process, and every sibling trial, with it.
// run_multiprocess moves the isolation boundary to processes:
//
//   * The coordinator self-execs argv with hidden --worker-* flags; a
//     worker rebuilds the identical trial list from argv (every bench
//     derives trials purely from its arguments) and runs only its
//     assigned index spans via SupervisorOptions::subset.
//   * Workers report status — hello, heartbeats, trial start/done/
//     failed — over a CRC-framed pipe. RESULTS never ride the pipe:
//     each worker appends them to its own crash-safe journal shard
//     ("<stem>.w<k>.journal", journal.hpp), which is what makes both
//     worker and coordinator deaths recoverable.
//   * The coordinator reaps deaths with waitpid and converts fatal
//     signals / nonzero exits / torn pipe frames into
//     FailureKind::kHardCrash, attaching the worker's last flushed
//     flight-recorder snapshot when one exists. Dead workers respawn
//     with capped exponential backoff; a trial that keeps killing its
//     worker is marked failed-permanent after max_trial_crashes, so a
//     poisonous config degrades the campaign instead of wedging it.
//   * At the end the coordinator merges all shards into one
//     CampaignReport that is bit-identical to a single-process run for
//     every surviving trial, at any --workers / --threads combination.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "runner/status.hpp"
#include "runner/supervisor.hpp"
#include "sim/telemetry.hpp"

namespace fourbit::runner {

// ---- worker -> coordinator pipe protocol ------------------------------
//
// One direction only (worker writes, coordinator reads): the worker's
// entire input is its argv, so a torn or corrupt frame can always be
// blamed on the worker and handled as a hard crash — never a protocol
// deadlock. Frame layout mirrors the journal:
//     magic   u16  0x4657 ("FW")
//     length  u32  payload byte count
//     payload      version u8 | kind u8 | worker u32 | trial_index u32
//                  | seed u64 | attempt u32 | failure_kind u8
//                  | retried_total u32 | what (u32 + bytes)
//                  | flight (u32 + 37-byte events)
//     crc     u16  CRC-16/CCITT over the payload

enum class WorkerRecordKind : std::uint8_t {
  kHello = 0,      // first record after exec
  kHeartbeat = 1,  // liveness tick (heartbeat_interval_ms cadence)
  kTrialStart = 2, // a trial's first attempt is beginning
  kTrialDone = 3,  // trial completed; its result is in the shard
  kTrialFailed = 4,// trial failed terminally in-process (soft failure)
  kBye = 5,        // clean shutdown follows
  /// Periodic observability snapshot: `what` carries an encoded
  /// fourbit.status/1 payload (runner/status.hpp codec). Strictly
  /// off-band — the coordinator merges it for --status-json and the
  /// ticker; it never influences trial accounting.
  kStatus = 6,
};

struct WorkerRecord {
  WorkerRecordKind kind = WorkerRecordKind::kHeartbeat;
  std::uint32_t worker = 0;
  std::uint32_t trial_index = 0;
  std::uint64_t seed = 0;
  std::uint32_t attempt = 0;       // attempts consumed by this trial
  FailureKind failure_kind = FailureKind::kException;  // kTrialFailed
  std::uint32_t retried_total = 0; // retries so far, this incarnation
  std::string what;                // kTrialFailed: the failure message
  std::vector<sim::TelemetryEvent> flight;  // kTrialFailed only
};

/// Worker status frame magic ("FW"). The dispatch transport multiplexes
/// status frames over the host/coordinator socket and dispatches on it.
inline constexpr std::uint16_t kWorkerPipeMagic = 0x4657;

/// Serializes one record as a complete frame (header + payload + CRC).
[[nodiscard]] std::vector<std::uint8_t> encode_worker_record(
    const WorkerRecord& record);

/// Decodes one status frame payload (the bytes between the length field
/// and the CRC). Returns nullopt on version or layout mismatch.
[[nodiscard]] std::optional<WorkerRecord> decode_worker_record_payload(
    std::span<const std::uint8_t> payload);

/// Incremental frame parser over an arbitrary byte stream. Feed bytes
/// as they arrive; drain complete records with next(). Any framing or
/// CRC violation latches corrupt() — the stream is untrustworthy from
/// that point and the worker behind it gets hard-crash treatment.
class WorkerPipeParser {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  /// Next complete record, or nullopt (need more bytes / corrupt).
  [[nodiscard]] std::optional<WorkerRecord> next();
  [[nodiscard]] bool corrupt() const { return corrupt_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;  // consumed prefix, compacted opportunistically
  bool corrupt_ = false;
};

// ---- trial index spans ------------------------------------------------

/// "0-4,7,9-12" for {0,1,2,3,4,7,9,10,11,12}; "" for the empty set.
[[nodiscard]] std::string format_index_spans(
    const std::vector<std::size_t>& indices);

/// Inverse of format_index_spans; nullopt on junk (overlaps and
/// unsorted spans are accepted, duplicates removed).
[[nodiscard]] std::optional<std::vector<std::size_t>> parse_index_spans(
    const std::string& spans);

// ---- flight-recorder snapshots ----------------------------------------
//
// A worker can die holding the only evidence of what its sim was doing.
// run_experiment periodically flushes the flight recorder to
// flight_snapshot_path(shard, index) (write-temp-then-rename, so the
// file is always a complete snapshot or absent); the coordinator loads
// the latest one into the hard-crash TrialFailure.

struct FlightSnapshot {
  std::uint32_t trial_index = 0;
  std::uint64_t seed = 0;
  std::vector<sim::TelemetryEvent> events;
};

void write_flight_snapshot(const std::string& path, std::size_t trial_index,
                           std::uint64_t seed,
                           const std::vector<sim::TelemetryEvent>& events);

/// nullopt when the file is absent, torn, or fails its CRC — crash
/// evidence is best-effort by nature.
[[nodiscard]] std::optional<FlightSnapshot> load_flight_snapshot(
    const std::string& path);

// ---- the coordinator --------------------------------------------------

struct MultiprocessOptions {
  /// Trial-level policy (threads = per-worker threads; journal_path =
  /// the main journal stem, also where shards live; on_trial_done fires
  /// on the coordinator as workers report — result pointers are null,
  /// results only exist after the final shard merge).
  SupervisorOptions supervisor;
  std::size_t workers = 1;
  /// The self-exec command: the ORIGINAL argv (CampaignCli::exec_argv).
  /// The coordinator appends --worker-fd/--worker-id/--worker-shard/
  /// --worker-trials when spawning.
  std::vector<std::string> exec_argv;

  /// Worker liveness: a worker that sends nothing for
  /// heartbeat_timeout_ms is presumed wedged, killed, and handled as a
  /// hard crash. Workers tick every heartbeat_interval_ms.
  std::uint64_t heartbeat_interval_ms = 250;
  std::uint64_t heartbeat_timeout_ms = 10'000;
  /// Coordinator-side per-trial wall clock (0 = off): a trial in flight
  /// longer than this gets its worker killed and is marked kTimeout
  /// immediately — the backstop for non-cooperative hangs the in-worker
  /// SimBudget cannot interrupt (e.g. a blocking syscall).
  std::uint64_t trial_timeout_ms = 0;

  /// Backoff between a worker death and its respawn, seeded by the
  /// first still-pending trial so respawn timing is deterministic.
  Backoff respawn_backoff{250, 10'000, 0.25};
  /// A trial in flight during this many worker deaths is declared the
  /// killer and marked failed-permanent (kHardCrash) instead of being
  /// retried into a crash loop.
  std::size_t max_trial_crashes = 2;

  /// Live observability. status_path: publish a merged fourbit.status/1
  /// snapshot there every status_interval_ms (write-temp-then-rename).
  /// on_status: additionally hand each merged snapshot to this callback
  /// (the host agent forwards them to its coordinator over FT). Both
  /// are strictly off-band.
  std::string status_path;
  std::uint64_t status_interval_ms = 1000;
  std::function<void(const StatusSnapshot&)> on_status;
  /// Campaign-wide trial count for snapshot totals (0 = trials.size();
  /// a host agent running a lease sets the full campaign size).
  std::size_t status_total = 0;
};

/// Runs the campaign across worker processes. Blocks until every trial
/// is settled (completed, failed, or failed-permanent). Never throws on
/// worker misbehavior — only on coordinator-side I/O setup errors.
[[nodiscard]] CampaignReport run_multiprocess(
    const std::vector<ExperimentConfig>& trials,
    const MultiprocessOptions& options);

/// Worker-mode entry: runs the assigned spans via run_supervised with
/// the shard journal and streams status over cli.worker_fd, then exits
/// the process (never returns). `options` is the worker's supervisor
/// policy — typically cli.supervisor_options(), with run_trial
/// overridden by tests.
[[noreturn]] void run_worker(const std::vector<ExperimentConfig>& trials,
                             const CampaignCli& cli,
                             SupervisorOptions options);

/// The one campaign entry point benches call: dispatches on the parsed
/// CLI — worker mode (never returns), multi-process coordinator
/// (--workers given), or the classic in-process supervised run.
[[nodiscard]] CampaignReport run_campaign(
    const std::vector<ExperimentConfig>& trials, const CampaignCli& cli,
    std::function<void(const TrialProgress&)> progress);

}  // namespace fourbit::runner
