// Campaign supervision: per-trial isolation, watchdog timeouts,
// retries, and crash-safe checkpoint/resume.
//
// Campaign::run (campaign.hpp) trusts every trial. That is wrong at
// fault-matrix scale: one trial that trips FOURBIT_ASSERT, throws, or
// wedges in the event loop would kill the whole process and discard
// every completed sibling. run_supervised wraps each trial so that
//
//   * a failed assertion (per-thread throwing handler, common/assert.hpp),
//   * any escaping exception,
//   * an exhausted sim::SimBudget (event count or wall clock), and
//   * a sim::InvariantAuditor violation
//
// each become a structured TrialFailure in the CampaignReport instead
// of a dead pool. Failed trials may be retried under a RetryPolicy, and
// completed results are checkpointed to an append-only CRC-framed
// journal (journal.hpp) so a killed campaign resumes where it died —
// bit-identical to an uninterrupted run at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/experiment.hpp"
#include "sim/simulator.hpp"

namespace fourbit::runner {

/// Why a trial died. Order matters: it indexes
/// CampaignSummary::failures_by_kind.
enum class FailureKind : std::uint8_t {
  kAssert = 0,    // FOURBIT_ASSERT tripped inside the trial
  kException = 1, // any other exception escaped the trial
  kTimeout = 2,   // sim::SimBudget exhausted (hung / runaway trial)
  kInvariant = 3, // sim::InvariantAuditor found corrupted live state
};

[[nodiscard]] std::string_view failure_kind_name(FailureKind kind);

/// One terminal trial failure (after retries, if any).
struct TrialFailure {
  FailureKind kind = FailureKind::kException;
  std::string what;            // the exception's message
  std::size_t trial_index = 0;
  std::uint64_t seed = 0;
  std::size_t attempt = 1;     // 1-based attempt that produced this failure
};

struct RetryPolicy {
  /// Total attempts per trial (1 = never retry).
  std::size_t max_attempts = 1;
  /// Decides whether a given failure is worth retrying (still capped by
  /// max_attempts). Default: wall-clock timeouts only — they are the one
  /// machine-dependent failure; everything else in a trial is a pure
  /// function of its config and would fail identically again.
  std::function<bool(const TrialFailure&)> classify;

  [[nodiscard]] bool should_retry(const TrialFailure& failure) const {
    if (classify) return classify(failure);
    return failure.kind == FailureKind::kTimeout;
  }
};

struct SupervisorOptions {
  /// Worker threads; 0 = one per hardware core.
  std::size_t threads = 0;
  /// Optional per-trial completion callback (see TrialProgress).
  std::function<void(const TrialProgress&)> on_trial_done;
  /// Watchdog budget applied to every trial; a config's own nonzero
  /// limits take precedence field by field. Zero = unlimited.
  sim::SimBudget trial_budget;
  RetryPolicy retry;
  /// Append-only result journal (journal.hpp); empty = no journal.
  /// Records already present for these trials (matching index and seed)
  /// are replayed instead of re-run.
  std::string journal_path;
  /// Trial executor; defaults to run_experiment. Tests substitute
  /// throwing / asserting / hanging trials here.
  std::function<ExperimentResult(const ExperimentConfig&)> run_trial;
};

/// What a supervised campaign produced. results[i] belongs to trials[i]
/// and is meaningful iff completed[i].
struct CampaignReport {
  std::vector<ExperimentResult> results;
  std::vector<std::uint8_t> completed;  // 1 = results[i] is valid
  /// Terminal failures, sorted by trial_index (deterministic across
  /// thread counts).
  std::vector<TrialFailure> failures;
  std::uint64_t attempts = 0;  // trial executions, including retries
  std::uint64_t retries = 0;
  std::uint64_t replayed = 0;  // trials restored from the journal
  /// The journal ended in a torn record (expected after a SIGKILL
  /// mid-write); the torn trial was re-run.
  bool journal_torn = false;

  [[nodiscard]] bool all_completed() const { return failures.empty(); }
};

/// Runs every trial across the pool with full supervision. Failures are
/// confined to their own slot: sibling trials run to completion and are
/// bit-identical to an unsupervised campaign at any --threads value.
[[nodiscard]] CampaignReport run_supervised(
    const std::vector<ExperimentConfig>& trials,
    const SupervisorOptions& options);

/// Aggregates completed trials only, with real failure accounting.
[[nodiscard]] CampaignSummary summarize(const CampaignReport& report);

/// Shared campaign CLI surface for bench mains: --threads N,
/// --journal FILE, --max-trial-ms N, --retries N.
struct CampaignCli {
  std::size_t threads = 0;
  std::string journal;           // empty = no journal
  std::uint64_t max_trial_ms = 0;  // per-trial wall-clock budget
  std::uint64_t retries = 0;       // extra attempts per failed trial

  [[nodiscard]] SupervisorOptions supervisor_options() const {
    SupervisorOptions options;
    options.threads = threads;
    options.journal_path = journal;
    options.trial_budget.max_wall_ms =
        static_cast<std::int64_t>(max_trial_ms);
    options.retry.max_attempts = 1 + static_cast<std::size_t>(retries);
    return options;
  }
};

/// Strips the campaign flags from argv (see CampaignCli).
[[nodiscard]] CampaignCli consume_campaign_cli(int& argc, char** argv);

}  // namespace fourbit::runner
