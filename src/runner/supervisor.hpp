// Campaign supervision: per-trial isolation, watchdog timeouts,
// retries, and crash-safe checkpoint/resume.
//
// Campaign::run (campaign.hpp) trusts every trial. That is wrong at
// fault-matrix scale: one trial that trips FOURBIT_ASSERT, throws, or
// wedges in the event loop would kill the whole process and discard
// every completed sibling. run_supervised wraps each trial so that
//
//   * a failed assertion (per-thread throwing handler, common/assert.hpp),
//   * any escaping exception,
//   * an exhausted sim::SimBudget (event count or wall clock), and
//   * a sim::InvariantAuditor violation
//
// each become a structured TrialFailure in the CampaignReport instead
// of a dead pool. Failed trials may be retried under a RetryPolicy, and
// completed results are checkpointed to an append-only CRC-framed
// journal (journal.hpp) so a killed campaign resumes where it died —
// bit-identical to an uninterrupted run at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/experiment.hpp"
#include "sim/simulator.hpp"
#include "sim/telemetry.hpp"

namespace fourbit::runner {

class StatusBoard;  // runner/status.hpp

/// Why a trial died. Order matters: it indexes
/// CampaignSummary::failures_by_kind.
enum class FailureKind : std::uint8_t {
  kAssert = 0,    // FOURBIT_ASSERT tripped inside the trial
  kException = 1, // any other exception escaped the trial
  kTimeout = 2,   // sim::SimBudget exhausted (hung / runaway trial)
  kInvariant = 3, // sim::InvariantAuditor found corrupted live state
  /// The worker *process* running the trial died — fatal signal
  /// (SIGSEGV, SIGBUS, OOM-kill), std::terminate, or a nonzero exit —
  /// a failure mode only the multi-process pool (worker.hpp) can
  /// observe; in-process supervision dies with the trial.
  kHardCrash = 4,
};

inline constexpr std::size_t kFailureKindCount = 5;

[[nodiscard]] std::string_view failure_kind_name(FailureKind kind);

/// One terminal trial failure (after retries, if any).
struct TrialFailure {
  FailureKind kind = FailureKind::kException;
  std::string what;            // the exception's message
  std::size_t trial_index = 0;
  std::uint64_t seed = 0;
  std::size_t attempt = 1;     // 1-based attempt that produced this failure
  /// Fatal signal that killed the worker process (kHardCrash only;
  /// 0 = none, e.g. a plain nonzero exit).
  int term_signal = 0;
  /// The simulator's flight recorder at the moment of death (oldest
  /// first, up to sim::TelemetryContext::kFlightCapacity events) — what
  /// the sim was doing right before it failed, even with no trace file.
  /// For hard crashes this is the worker's last *flushed* snapshot
  /// (experiment.hpp flight_flush fields), when one was available.
  std::vector<sim::TelemetryEvent> flight;
};

/// Capped exponential backoff with seed-derived deterministic jitter.
/// delay_ms is a pure function of (attempt, seed): the same trial backs
/// off identically at any --threads / --workers value, so retry timing
/// can never smuggle nondeterminism into a campaign.
struct Backoff {
  std::uint64_t base_ms = 0;   // 0 = no delay (retry immediately)
  std::uint64_t cap_ms = 10'000;
  /// Jitter fraction in [0, 1): the delay is scaled by a deterministic
  /// factor in [1 - jitter, 1 + jitter) derived from the seed, so a
  /// fleet of crashed workers never thunders back in lockstep.
  double jitter = 0.25;

  /// Delay before retry `attempt` (1-based: the delay after the
  /// attempt'th failure). Doubles per attempt from base_ms, capped at
  /// cap_ms before and after jitter.
  [[nodiscard]] std::uint64_t delay_ms(std::size_t attempt,
                                       std::uint64_t seed) const;
};

struct RetryPolicy {
  /// Total attempts per trial (1 = never retry).
  std::size_t max_attempts = 1;
  /// Decides whether a given failure is worth retrying (still capped by
  /// max_attempts). Default: wall-clock timeouts only — they are the one
  /// machine-dependent failure; everything else in a trial is a pure
  /// function of its config and would fail identically again.
  std::function<bool(const TrialFailure&)> classify;
  /// Wall-clock delay between attempts (default: immediate). The same
  /// policy shape governs worker respawns in the multi-process pool.
  Backoff backoff;

  [[nodiscard]] bool should_retry(const TrialFailure& failure) const {
    if (classify) return classify(failure);
    return failure.kind == FailureKind::kTimeout;
  }
};

struct SupervisorOptions {
  /// Worker threads; 0 = one per hardware core.
  std::size_t threads = 0;
  /// Optional per-trial completion callback (see TrialProgress).
  std::function<void(const TrialProgress&)> on_trial_done;
  /// Watchdog budget applied to every trial; a config's own nonzero
  /// limits take precedence field by field. Zero = unlimited.
  sim::SimBudget trial_budget;
  RetryPolicy retry;
  /// Append-only result journal (journal.hpp); empty = no journal.
  /// Records already present for these trials (matching index and seed)
  /// are replayed instead of re-run.
  std::string journal_path;
  /// Trial executor; defaults to run_experiment. Tests substitute
  /// throwing / asserting / hanging trials here.
  std::function<ExperimentResult(const ExperimentConfig&)> run_trial;

  /// Run only these trial indices (empty = all). A multi-process worker
  /// (worker.hpp) runs the range the coordinator assigned it this way;
  /// unlisted slots stay untouched in the report.
  std::vector<std::size_t> subset;
  /// Invoked on the worker thread immediately before a trial's first
  /// attempt (workers stream it to the coordinator so a process death
  /// can be attributed to the trials that were in flight).
  std::function<void(std::size_t, const ExperimentConfig&)> on_trial_start;
  /// When non-empty, every trial periodically flushes its flight
  /// recorder to "<base>.t<index>.flight" (worker.hpp snapshot format)
  /// so a hard-crashed process leaves its sim's last moments behind.
  /// The file is removed when the trial settles in-process.
  std::string flight_flush_base;

  /// Telemetry applied to every trial. When trace_path_base is
  /// non-empty, each trial streams its events to its own file named by
  /// trial_trace_path(base, index, seed) — per-trial files, so parallel
  /// workers never interleave and output is byte-identical at any
  /// --threads value. A config's own non-empty trace_path wins.
  std::string trace_path_base;
  sim::TraceLevel trace_level = sim::TraceLevel::kInfo;
  std::vector<std::uint16_t> trace_nodes;

  /// Live observability (runner/status.hpp). A non-null board receives
  /// trial lifecycle events, per-attempt wall times, and each trial's
  /// telemetry registry (mid-trial and at settle). Strictly off-band:
  /// results, stdout, reports, and journal bytes are unaffected.
  StatusBoard* status = nullptr;
  /// Arm wall-clock phase timers in every trial (nondeterministic
  /// samples; see ExperimentConfig::profile_phases).
  bool profile_phases = false;
};

/// Per-trial trace file name: "<stem>-t<index>-s<seed>.jsonl" where
/// stem is `base` with any trailing ".jsonl" stripped.
[[nodiscard]] std::string trial_trace_path(const std::string& base,
                                           std::size_t index,
                                           std::uint64_t seed);

/// Per-trial flight-recorder snapshot file: "<base>.t<index>.flight"
/// (see SupervisorOptions::flight_flush_base and worker.hpp).
[[nodiscard]] std::string flight_snapshot_path(const std::string& base,
                                               std::size_t index);

/// Per-host health accounting from a distributed campaign
/// (dispatch.hpp): how each --hosts agent behaved. Deterministic per
/// host list on clean runs (all-zero rows); populated so describe() and
/// `fourbit.status/1` can attribute losses to the host that caused them.
struct HostHealth {
  std::string name;             // "host:port"
  std::uint64_t completed = 0;  // trials this host settled
  std::uint64_t losses = 0;     // sessions lost (disconnect/expiry/corrupt)
  std::uint64_t fruitless = 0;  // consecutive fruitless sessions at the end
  bool retired = false;         // crash-loop quarantined
};

/// What a supervised campaign produced. results[i] belongs to trials[i]
/// and is meaningful iff completed[i].
struct CampaignReport {
  std::vector<ExperimentResult> results;
  std::vector<std::uint8_t> completed;  // 1 = results[i] is valid
  /// Terminal failures, sorted by trial_index (deterministic across
  /// thread counts).
  std::vector<TrialFailure> failures;
  std::uint64_t attempts = 0;  // trial executions, including retries
  std::uint64_t retries = 0;
  std::uint64_t replayed = 0;  // trials restored from the journal
  /// Multi-process pool only (worker.hpp): worker deaths observed and
  /// workers brought back after one.
  std::uint64_t hard_crashes = 0;
  std::uint64_t worker_respawns = 0;
  /// Distributed dispatch only (dispatch.hpp): host sessions lost
  /// (disconnect, heartbeat silence, corrupt stream) and leases handed
  /// back to the pool because their host died under them.
  std::uint64_t host_losses = 0;
  std::uint64_t lease_reassignments = 0;
  /// One row per --hosts agent (distributed dispatch only; empty on
  /// local campaigns). Order matches the --hosts list.
  std::vector<HostHealth> host_health;
  /// Journal append failures during this run (ENOSPC and friends): the
  /// journal latched disabled and the campaign finished unjournaled
  /// (see TrialJournal::append). Zero on a healthy run.
  std::uint64_t journal_write_failures = 0;
  /// The journal ended in a torn record (expected after a SIGKILL
  /// mid-write); the torn trial was re-run.
  bool journal_torn = false;

  [[nodiscard]] bool all_completed() const { return failures.empty(); }
};

/// Runs every trial across the pool with full supervision. Failures are
/// confined to their own slot: sibling trials run to completion and are
/// bit-identical to an unsupervised campaign at any --threads value.
[[nodiscard]] CampaignReport run_supervised(
    const std::vector<ExperimentConfig>& trials,
    const SupervisorOptions& options);

/// Aggregates completed trials only, with real failure accounting.
[[nodiscard]] CampaignSummary summarize(const CampaignReport& report);

/// One remote host agent address ("host:port" on the --hosts list).
struct HostEndpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Shared campaign CLI surface for bench mains: --threads N,
/// --workers K, --journal FILE, --max-trial-ms N, --retries N,
/// --trace FILE, --trace-level off|error|info|debug,
/// --trace-nodes a,b,c, --json, --hosts a:p,b:p, --serve PORT,
/// --lease N, --status-json FILE, --status-interval-ms N,
/// --profile-phases — plus the hidden --worker-* flags the
/// multi-process coordinator (worker.hpp) appends when it self-execs.
struct CampaignCli {
  std::size_t threads = 0;
  /// Worker *processes* (run_multiprocess); 0 = flag absent, run
  /// in-process. --workers 0 is a usage error; with --workers given,
  /// --threads is the thread count of each worker. Any explicit K >= 1
  /// takes the fork/exec path so even --workers 1 survives a trial that
  /// SIGSEGVs (its report is byte-identical to the in-process path on a
  /// clean campaign).
  std::size_t workers = 0;
  std::string journal;           // empty = no journal
  std::uint64_t max_trial_ms = 0;  // per-trial wall-clock budget
  std::uint64_t retries = 0;       // extra attempts per failed trial
  std::string trace;               // per-trial JSONL base; empty = off
  sim::TraceLevel trace_level = sim::TraceLevel::kInfo;
  std::vector<std::uint16_t> trace_nodes;  // empty = all nodes
  bool json = false;  // also emit machine-readable summary JSON

  /// --hosts a:port,b:port — run this campaign as a distributed
  /// coordinator (dispatch.hpp), leasing trial spans to the listed host
  /// agents. Empty = not distributed. Mutually exclusive with --serve.
  std::vector<HostEndpoint> hosts;
  /// --serve PORT — run this binary as a host agent: listen on PORT
  /// (0 = ephemeral, the bound port is printed to stderr) and execute
  /// leases for a coordinator. -1 = flag absent.
  int serve_port = -1;
  /// --lease N — trials per lease grant on the coordinator (0 = auto).
  std::size_t lease_trials = 0;

  /// --status-json FILE — publish a merged `fourbit.status/1` snapshot
  /// to FILE every status_interval_ms (write-temp-then-rename: the file
  /// is always one complete JSON object). Empty = off. Strictly
  /// off-band: stdout, reports, and --journal bytes are unchanged.
  std::string status_json;
  /// --status-interval-ms N — snapshot cadence (also the cadence at
  /// which workers/hosts stream status upward). 0 is a usage error.
  std::uint64_t status_interval_ms = 1000;
  /// --profile-phases — arm wall-clock phase timers (event dispatch,
  /// channel freeze, batch kernels, trial setup/teardown) feeding
  /// "profile" histograms. Samples are machine-dependent, so traces and
  /// status gain nondeterministic rows; keep off for identity checks.
  bool profile_phases = false;

  // Hidden worker-mode plumbing (never typed by a user): the
  // coordinator re-execs argv with these appended, and run_campaign
  // (worker.hpp) branches into the worker protocol when worker_fd >= 0.
  int worker_fd = -1;          // --worker-fd: pipe back to the coordinator
  std::uint32_t worker_id = 0; // --worker-id
  std::string worker_shard;    // --worker-shard: this worker's journal shard
  std::string worker_trials;   // --worker-trials: assigned index spans
  std::uint64_t worker_heartbeat_ms = 250;  // --worker-heartbeat-ms

  /// Snapshot of the ORIGINAL argv (before any flag was stripped): the
  /// exact command the coordinator self-execs to mint a worker. The
  /// whole multi-process contract rests on this command rebuilding the
  /// identical trial list — which holds because every bench derives its
  /// trials purely from argv.
  std::vector<std::string> exec_argv;

  [[nodiscard]] SupervisorOptions supervisor_options() const {
    SupervisorOptions options;
    options.threads = threads;
    options.journal_path = journal;
    options.trial_budget.max_wall_ms =
        static_cast<std::int64_t>(max_trial_ms);
    options.retry.max_attempts = 1 + static_cast<std::size_t>(retries);
    options.trace_path_base = trace;
    options.trace_level = trace_level;
    options.trace_nodes = trace_nodes;
    options.profile_phases = profile_phases;
    return options;
  }
};

/// Strips the campaign flags from argv (see CampaignCli).
[[nodiscard]] CampaignCli consume_campaign_cli(int& argc, char** argv);

}  // namespace fourbit::runner
