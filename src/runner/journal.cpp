#include "runner/journal.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/byte_io.hpp"
#include "common/crc16.hpp"

namespace fourbit::runner {
namespace {

constexpr std::uint16_t kMagic = kJournalMagic;  // "FJ"
constexpr std::uint8_t kVersion = 2;
constexpr std::size_t kFrameHeaderBytes = 6;  // magic u16 + length u32
constexpr std::size_t kCrcBytes = 2;

std::atomic<std::uint64_t> g_write_failures{0};

// Every field of ExperimentResult, in declaration order. Bump kVersion
// when this layout changes; load() drops records of other versions.
void encode_result(ByteWriter& w, const ExperimentResult& r) {
  w.f64(r.cost);
  w.f64(r.delivery_ratio);
  w.f64(r.mean_depth);
  w.u32(static_cast<std::uint32_t>(r.per_node_delivery.size()));
  for (const double d : r.per_node_delivery) w.f64(d);
  w.u64(r.generated);
  w.u64(r.delivered);
  w.u64(r.data_tx);
  w.u64(r.beacon_tx);
  w.u64(r.radio_frames);
  w.u64(r.retx_drops);
  w.u64(r.queue_drops);
  w.u64(r.duplicates);
  w.u64(r.parent_changes);
  w.u32(static_cast<std::uint32_t>(r.final_tree.depths.size()));
  for (const int d : r.final_tree.depths) {
    w.u32(static_cast<std::uint32_t>(d));
  }
  w.f64(r.final_tree.mean_depth);
  w.u32(static_cast<std::uint32_t>(r.final_tree.routed));
  w.u32(static_cast<std::uint32_t>(r.final_tree.total));
  w.u64(r.node_crashes);
  w.u64(r.node_reboots);
  w.u64(r.link_outages);
  w.u64(r.route_losses);
  w.u64(r.parent_evictions);
  w.u64(r.pin_refusals);
  w.f64(r.mean_time_to_reroute_s);
  w.f64(r.max_time_to_reroute_s);
  w.f64(r.mean_time_to_first_route_s);
  w.f64(r.mean_table_refill_s);
  w.u64(r.generated_during_outage);
  w.u64(r.generated_post_outage);
  w.f64(r.delivery_during_outage);
  w.f64(r.delivery_post_outage);
  w.f64(r.worst_node_mah);
  w.f64(r.mean_tx_mah);
  w.f64(r.projected_lifetime_days);
  w.u64(r.arena_bytes);
  w.u64(r.eq_resizes);
}

ExperimentResult decode_result(ByteReader& r) {
  ExperimentResult out;
  out.cost = r.f64();
  out.delivery_ratio = r.f64();
  out.mean_depth = r.f64();
  const std::uint32_t deliveries = r.u32();
  out.per_node_delivery.reserve(deliveries);
  for (std::uint32_t i = 0; i < deliveries && r.ok(); ++i) {
    out.per_node_delivery.push_back(r.f64());
  }
  out.generated = r.u64();
  out.delivered = r.u64();
  out.data_tx = r.u64();
  out.beacon_tx = r.u64();
  out.radio_frames = r.u64();
  out.retx_drops = r.u64();
  out.queue_drops = r.u64();
  out.duplicates = r.u64();
  out.parent_changes = r.u64();
  const std::uint32_t depths = r.u32();
  out.final_tree.depths.reserve(depths);
  for (std::uint32_t i = 0; i < depths && r.ok(); ++i) {
    out.final_tree.depths.push_back(static_cast<int>(r.u32()));
  }
  out.final_tree.mean_depth = r.f64();
  out.final_tree.routed = r.u32();
  out.final_tree.total = r.u32();
  out.node_crashes = r.u64();
  out.node_reboots = r.u64();
  out.link_outages = r.u64();
  out.route_losses = r.u64();
  out.parent_evictions = r.u64();
  out.pin_refusals = r.u64();
  out.mean_time_to_reroute_s = r.f64();
  out.max_time_to_reroute_s = r.f64();
  out.mean_time_to_first_route_s = r.f64();
  out.mean_table_refill_s = r.f64();
  out.generated_during_outage = r.u64();
  out.generated_post_outage = r.u64();
  out.delivery_during_outage = r.f64();
  out.delivery_post_outage = r.f64();
  out.worst_node_mah = r.f64();
  out.mean_tx_mah = r.f64();
  out.projected_lifetime_days = r.f64();
  out.arena_bytes = r.u64();
  out.eq_resizes = r.u64();
  return out;
}

std::vector<std::uint8_t> read_all(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return bytes;  // no journal yet: empty
  std::uint8_t chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  std::fclose(file);
  return bytes;
}

/// Byte length of the leading run of intact records: where a torn tail
/// (if any) begins.
std::size_t clean_prefix_bytes(const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::span<const std::uint8_t> rest{bytes.data() + pos,
                                             bytes.size() - pos};
    if (rest.size() < kFrameHeaderBytes) break;
    ByteReader header{rest.first(kFrameHeaderBytes)};
    if (header.u16() != kMagic) break;
    const std::uint32_t length = header.u32();
    if (rest.size() < kFrameHeaderBytes + length + kCrcBytes) break;
    const auto payload = rest.subspan(kFrameHeaderBytes, length);
    ByteReader crc_reader{rest.subspan(kFrameHeaderBytes + length, kCrcBytes)};
    if (crc_reader.u16() != crc16(payload)) break;
    if (!decode_journal_record_payload(payload)) break;
    pos += kFrameHeaderBytes + length + kCrcBytes;
  }
  return pos;
}

}  // namespace

std::vector<std::uint8_t> encode_journal_record(const JournalEntry& entry) {
  std::vector<std::uint8_t> payload;
  ByteWriter writer{payload};
  writer.u8(kVersion);
  writer.u32(entry.trial_index);
  writer.u64(entry.seed);
  encode_result(writer, entry.result);

  std::vector<std::uint8_t> frame;
  ByteWriter framer{frame};
  framer.u16(kMagic);
  framer.u32(static_cast<std::uint32_t>(payload.size()));
  framer.bytes(payload);
  framer.u16(crc16(payload));
  return frame;
}

std::optional<JournalEntry> decode_journal_record_payload(
    std::span<const std::uint8_t> payload) {
  ByteReader reader{payload};
  if (reader.u8() != kVersion) return std::nullopt;
  JournalEntry entry;
  entry.trial_index = reader.u32();
  entry.seed = reader.u64();
  entry.result = decode_result(reader);
  if (!reader.ok() || reader.remaining() != 0) return std::nullopt;
  return entry;
}

TrialJournal::LoadResult TrialJournal::load(const std::string& path) {
  LoadResult out;
  const std::vector<std::uint8_t> bytes = read_all(path);
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    // Any framing or CRC failure from here on means a torn tail (or
    // corruption); the suffix cannot be trusted, so replay stops.
    const std::span<const std::uint8_t> rest{bytes.data() + pos,
                                             bytes.size() - pos};
    if (rest.size() < kFrameHeaderBytes) {
      out.torn = true;
      break;
    }
    ByteReader header{rest.first(kFrameHeaderBytes)};
    if (header.u16() != kMagic) {
      out.torn = true;
      break;
    }
    const std::uint32_t length = header.u32();
    if (rest.size() < kFrameHeaderBytes + length + kCrcBytes) {
      out.torn = true;
      break;
    }
    const auto payload = rest.subspan(kFrameHeaderBytes, length);
    ByteReader crc_reader{rest.subspan(kFrameHeaderBytes + length, kCrcBytes)};
    if (crc_reader.u16() != crc16(payload)) {
      out.torn = true;
      break;
    }
    auto entry = decode_journal_record_payload(payload);
    if (!entry) {
      out.torn = true;
      break;
    }
    out.entries.push_back(std::move(*entry));
    pos += kFrameHeaderBytes + length + kCrcBytes;
  }
  return out;
}

std::string TrialJournal::shard_path(const std::string& stem,
                                     std::size_t worker) {
  return stem + ".w" + std::to_string(worker) + ".journal";
}

TrialJournal::ShardMergeResult TrialJournal::merge_shards(
    const std::string& stem) {
  ShardMergeResult out;

  // Find every "<basename>.w<k>.journal" sibling of `stem`, sorted
  // numerically by worker id so "last record wins" is deterministic.
  namespace fs = std::filesystem;
  const fs::path stem_path{stem};
  const fs::path dir =
      stem_path.has_parent_path() ? stem_path.parent_path() : fs::path{"."};
  const std::string prefix = stem_path.filename().string() + ".w";
  const std::string suffix = ".journal";
  std::vector<std::pair<std::uint64_t, fs::path>> shards;
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator{dir, ec}) {
    const std::string name = dirent.path().filename().string();
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty()) continue;
    std::uint64_t worker = 0;
    bool numeric = true;
    for (const char c : digits) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      worker = worker * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (!numeric) continue;
    shards.emplace_back(worker, dirent.path());
  }
  std::sort(shards.begin(), shards.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Dedup by (index, seed): the latest complete record replaces any
  // earlier one, so a trial journaled twice (overlapping ranges after a
  // respawn or resume) settles on the most recent write.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::size_t> slot_of;
  for (const auto& [worker, path] : shards) {
    ++out.shards;
    LoadResult loaded = load(path.string());
    out.torn = out.torn || loaded.torn;
    for (auto& entry : loaded.entries) {
      ++out.records;
      const auto key = std::make_pair(entry.trial_index, entry.seed);
      const auto it = slot_of.find(key);
      if (it != slot_of.end()) {
        out.entries[it->second] = std::move(entry);
      } else {
        slot_of.emplace(key, out.entries.size());
        out.entries.push_back(std::move(entry));
      }
    }
  }
  return out;
}

TrialJournal TrialJournal::open_append(const std::string& path) {
  // A process killed mid-append leaves a torn tail. Appending AFTER it
  // would strand every subsequent record: framing is lost at the first
  // bad byte, so load() could never reach them. Truncate to the clean
  // prefix first — exactly the bytes load() would replay anyway.
  const std::vector<std::uint8_t> bytes = read_all(path);
  const std::size_t clean = clean_prefix_bytes(bytes);
  if (clean < bytes.size()) {
    std::error_code ec;
    std::filesystem::resize_file(path, clean, ec);
    if (ec) {
      throw std::runtime_error("cannot truncate torn trial journal tail: " +
                               path);
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    throw std::runtime_error("cannot open trial journal for append: " + path);
  }
  return TrialJournal{file};
}

void TrialJournal::append(std::uint32_t trial_index, std::uint64_t seed,
                          const ExperimentResult& result) {
  if (file_ == nullptr) return;  // latched disabled by an earlier failure

  const std::vector<std::uint8_t> frame =
      encode_journal_record({trial_index, seed, result});

  // One fsync per trial: a journaled record must survive SIGKILL the
  // moment append() returns — that is the whole point of the journal.
  // A failure anywhere in write/flush/fsync (ENOSPC, EIO) only costs
  // that safety net, so it must not abort the campaign: latch the
  // journal disabled and keep running. The partial frame left behind
  // is a torn tail, which load()/open_append() already drop/truncate.
  const bool wrote =
      std::fwrite(frame.data(), 1, frame.size(), file_) == frame.size() &&
      std::fflush(file_) == 0 && ::fsync(::fileno(file_)) == 0;
  if (wrote) return;

  const int err = errno;
  g_write_failures.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr,
               "fourbit-journal: write failed (%s); journaling disabled for "
               "the rest of the campaign (runner/journal_write_failures)\n",
               std::strerror(err));
  std::fflush(stderr);
  std::fclose(file_);
  file_ = nullptr;
}

int TrialJournal::fd() const {
  return file_ != nullptr ? ::fileno(file_) : -1;
}

std::uint64_t TrialJournal::write_failures() {
  return g_write_failures.load(std::memory_order_relaxed);
}

TrialJournal& TrialJournal::operator=(TrialJournal&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

TrialJournal::~TrialJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

}  // namespace fourbit::runner
