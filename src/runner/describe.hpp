// Human-readable descriptions of experiment configurations and results —
// what a bench prints above its table so runs are self-documenting.
#pragma once

#include <string>

#include "runner/experiment.hpp"

namespace fourbit::runner {

[[nodiscard]] std::string describe(const ExperimentConfig& config);
[[nodiscard]] std::string describe(const ExperimentResult& result);

}  // namespace fourbit::runner
