// Human-readable descriptions of experiment configurations and results —
// what a bench prints above its table so runs are self-documenting.
#pragma once

#include <string>

#include "runner/experiment.hpp"
#include "runner/supervisor.hpp"

namespace fourbit::runner {

[[nodiscard]] std::string describe(const ExperimentConfig& config);
[[nodiscard]] std::string describe(const ExperimentResult& result);

/// One line: which trial died, how, and after how many attempts.
[[nodiscard]] std::string describe(const TrialFailure& failure);

/// Failure accounting for a supervised campaign: attempt/retry/replay
/// counts, failures by kind, and one line per terminal failure. Empty
/// string when every trial completed on the first attempt with no
/// journal replay (nothing worth reporting).
[[nodiscard]] std::string describe(const CampaignReport& report);

// Machine-readable counterparts for bench --json output: one line of
// schema-versioned JSON ("fourbit.summary/1", stats/export.hpp), no
// trailing newline. Each carries a "type" discriminator so a consumer
// can mix them in one stream.

[[nodiscard]] std::string describe_json(const ExperimentResult& result);
[[nodiscard]] std::string describe_json(const TrialFailure& failure);
[[nodiscard]] std::string describe_json(const CampaignSummary& summary);
[[nodiscard]] std::string describe_json(const CampaignReport& report);

}  // namespace fourbit::runner
