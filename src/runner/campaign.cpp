#include "runner/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

namespace fourbit::runner {

std::vector<ExperimentResult> Campaign::run(
    const std::vector<ExperimentConfig>& trials, const Options& options) {
  std::vector<ExperimentResult> results(trials.size());
  if (trials.empty()) return results;

  std::size_t threads = options.threads != 0
                            ? options.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, trials.size());

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::mutex progress_mutex;

  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= trials.size()) return;
      // Each trial builds its own Simulator/Network/Rng from its config;
      // writing into a distinct slot is the only sharing.
      results[i] = run_experiment(trials[i]);
      const std::size_t done =
          completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (options.on_trial_done) {
        const std::lock_guard<std::mutex> lock{progress_mutex};
        options.on_trial_done(TrialProgress{
            .trial_index = i,
            .completed = done,
            .total = trials.size(),
            .config = &trials[i],
            .result = &results[i],
        });
      }
    }
  };

  if (threads == 1) {
    worker();  // no pool: run inline (and keep single-thread stacks clean)
    return results;
  }

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return results;
}

std::vector<ExperimentConfig> Campaign::seed_sweep(
    const ExperimentConfig& base, std::size_t n) {
  std::vector<ExperimentConfig> trials;
  trials.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trials.push_back(base);
    trials.back().seed = base.seed + i;
  }
  return trials;
}

CampaignSummary summarize(const std::vector<ExperimentResult>& results) {
  std::vector<double> cost, delivery, depth, churn, outage_dlv, reroute;
  cost.reserve(results.size());
  delivery.reserve(results.size());
  depth.reserve(results.size());
  churn.reserve(results.size());
  for (const auto& r : results) {
    cost.push_back(r.cost);
    delivery.push_back(r.delivery_ratio);
    depth.push_back(r.mean_depth);
    churn.push_back(static_cast<double>(r.parent_changes));
    // Only faulted trials carry recovery samples; pooling zeros from
    // fault-free trials would fabricate a perfect-failure signal.
    if (r.generated_during_outage > 0) {
      outage_dlv.push_back(r.delivery_during_outage);
    }
    if (r.max_time_to_reroute_s > 0.0) {
      reroute.push_back(r.mean_time_to_reroute_s);
    }
  }
  return CampaignSummary{
      .cost = stats::Aggregate::of(std::move(cost)),
      .delivery_ratio = stats::Aggregate::of(std::move(delivery)),
      .mean_depth = stats::Aggregate::of(std::move(depth)),
      .parent_changes = stats::Aggregate::of(std::move(churn)),
      .delivery_during_outage = stats::Aggregate::of(std::move(outage_dlv)),
      .time_to_reroute_s = stats::Aggregate::of(std::move(reroute)),
  };
}

std::vector<double> pooled_per_node_delivery(
    const std::vector<ExperimentResult>& results) {
  std::vector<double> pooled;
  for (const auto& r : results) {
    pooled.insert(pooled.end(), r.per_node_delivery.begin(),
                  r.per_node_delivery.end());
  }
  return pooled;
}

std::size_t consume_threads_flag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") != 0) continue;
    std::size_t threads = 0;
    if (i + 1 < argc) threads = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    const int consumed = (i + 1 < argc) ? 2 : 1;
    for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
    argc -= consumed;
    return threads;
  }
  return 0;
}

std::function<void(const TrialProgress&)> stderr_progress() {
  return [](const TrialProgress& p) {
    std::fprintf(stderr, "\r  %zu/%zu trials%s", p.completed, p.total,
                 p.completed == p.total ? "\n" : "");
    std::fflush(stderr);
  };
}

}  // namespace fourbit::runner
