#include "runner/campaign.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

#include "runner/supervisor.hpp"

namespace fourbit::runner {

std::vector<ExperimentResult> Campaign::run(
    const std::vector<ExperimentConfig>& trials, const Options& options) {
  std::vector<ExperimentResult> results(trials.size());
  if (trials.empty()) return results;

  std::size_t threads = options.threads != 0
                            ? options.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, trials.size());

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::mutex progress_mutex;

  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= trials.size()) return;
      // Each trial builds its own Simulator/Network/Rng from its config;
      // writing into a distinct slot is the only sharing.
      results[i] = run_experiment(trials[i]);
      const std::size_t done =
          completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (options.on_trial_done) {
        const std::lock_guard<std::mutex> lock{progress_mutex};
        options.on_trial_done(TrialProgress{
            .trial_index = i,
            .completed = done,
            .total = trials.size(),
            .config = &trials[i],
            .result = &results[i],
        });
      }
    }
  };

  if (threads == 1) {
    worker();  // no pool: run inline (and keep single-thread stacks clean)
    return results;
  }

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return results;
}

std::vector<ExperimentConfig> Campaign::seed_sweep(
    const ExperimentConfig& base, std::size_t n) {
  std::vector<ExperimentConfig> trials;
  trials.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trials.push_back(base);
    trials.back().seed = base.seed + i;
  }
  return trials;
}

namespace {

/// Shared aggregation core for both summarize overloads.
CampaignSummary summarize_results(
    const std::vector<const ExperimentResult*>& results) {
  std::vector<double> cost, delivery, depth, churn, outage_dlv, reroute;
  cost.reserve(results.size());
  delivery.reserve(results.size());
  depth.reserve(results.size());
  churn.reserve(results.size());
  for (const auto* r : results) {
    cost.push_back(r->cost);
    delivery.push_back(r->delivery_ratio);
    depth.push_back(r->mean_depth);
    churn.push_back(static_cast<double>(r->parent_changes));
    // Only faulted trials carry recovery samples; pooling zeros from
    // fault-free trials would fabricate a perfect-failure signal.
    if (r->generated_during_outage > 0) {
      outage_dlv.push_back(r->delivery_during_outage);
    }
    if (r->max_time_to_reroute_s > 0.0) {
      reroute.push_back(r->mean_time_to_reroute_s);
    }
  }
  CampaignSummary summary{
      .cost = stats::Aggregate::of(std::move(cost)),
      .delivery_ratio = stats::Aggregate::of(std::move(delivery)),
      .mean_depth = stats::Aggregate::of(std::move(depth)),
      .parent_changes = stats::Aggregate::of(std::move(churn)),
      .delivery_during_outage = stats::Aggregate::of(std::move(outage_dlv)),
      .time_to_reroute_s = stats::Aggregate::of(std::move(reroute)),
  };
  summary.completed = results.size();
  return summary;
}

}  // namespace

CampaignSummary summarize(const std::vector<ExperimentResult>& results) {
  std::vector<const ExperimentResult*> ptrs;
  ptrs.reserve(results.size());
  for (const auto& r : results) ptrs.push_back(&r);
  CampaignSummary summary = summarize_results(ptrs);
  summary.trials = results.size();
  summary.attempts = results.size();
  return summary;
}

CampaignSummary summarize(const CampaignReport& report) {
  std::vector<const ExperimentResult*> ptrs;
  ptrs.reserve(report.results.size());
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    if (report.completed[i]) ptrs.push_back(&report.results[i]);
  }
  CampaignSummary summary = summarize_results(ptrs);
  summary.trials = report.results.size();
  summary.attempts = report.attempts;
  summary.retries = report.retries;
  summary.replayed = report.replayed;
  summary.worker_respawns = report.worker_respawns;
  summary.host_losses = report.host_losses;
  summary.lease_reassignments = report.lease_reassignments;
  for (const auto& failure : report.failures) {
    summary.failures_by_kind[static_cast<std::size_t>(failure.kind)]++;
  }
  return summary;
}

std::vector<double> pooled_per_node_delivery(
    const std::vector<ExperimentResult>& results) {
  std::vector<double> pooled;
  for (const auto& r : results) {
    pooled.insert(pooled.end(), r.per_node_delivery.begin(),
                  r.per_node_delivery.end());
  }
  return pooled;
}

namespace {

[[noreturn]] void flag_usage_error(const char* name, const char* detail,
                                   const char* got) {
  if (got != nullptr) {
    std::fprintf(stderr, "error: %s %s (got \"%s\")\n", name, detail, got);
  } else {
    std::fprintf(stderr, "error: %s %s\n", name, detail);
  }
  std::exit(2);
}

}  // namespace

std::optional<std::string> consume_flag(int& argc, char** argv,
                                        const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) != 0) continue;
    if (i + 1 >= argc) {
      flag_usage_error(name, "expects a value", nullptr);
    }
    std::string value = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return value;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> consume_uint_flag(int& argc, char** argv,
                                               const char* name) {
  const auto value = consume_flag(argc, argv, name);
  if (!value) return std::nullopt;
  // strtoul accepts leading whitespace and a sign; neither is a sane
  // thread/millisecond count, so reject them explicitly along with
  // trailing junk, empty strings and overflow.
  const char* text = value->c_str();
  if (*text == '\0' || !std::isdigit(static_cast<unsigned char>(*text))) {
    flag_usage_error(name, "expects a non-negative integer", text);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') {
    flag_usage_error(name, "expects a non-negative integer", text);
  }
  return static_cast<std::uint64_t>(parsed);
}

bool consume_bool_flag(int& argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) != 0) continue;
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    argc -= 1;
    return true;
  }
  return false;
}

std::size_t consume_threads_flag(int& argc, char** argv) {
  return static_cast<std::size_t>(
      consume_uint_flag(argc, argv, "--threads").value_or(0));
}

std::function<void(const TrialProgress&)> stderr_progress() {
  struct State {
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    bool tty = ::isatty(::fileno(stderr)) != 0;
  };
  auto state = std::make_shared<State>();
  return [state](const TrialProgress& p) {
    char counts[96] = "";
    if (p.failed > 0 || p.retried > 0) {
      std::snprintf(counts, sizeof counts, ", %zu failed, %zu retried",
                    p.failed, p.retried);
    }
    // Terminal failures are worth a full line in either mode; the \r
    // ticker would otherwise overwrite them.
    if (p.failure != nullptr) {
      std::fprintf(stderr, "%s  trial %zu (seed %llu) failed [%s]: %s\n",
                   state->tty ? "\n" : "", p.failure->trial_index,
                   static_cast<unsigned long long>(p.failure->seed),
                   std::string{failure_kind_name(p.failure->kind)}.c_str(),
                   p.failure->what.c_str());
    }
    if (state->tty) {
      // Live ticker: counts plus throughput, ETA, and (once nonzero)
      // fleet health. Trailing spaces wipe leftovers from a previously
      // longer line under \r.
      const double elapsed_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        state->start)
              .count();
      const double rate =
          elapsed_s > 0.0 ? static_cast<double>(p.completed) / elapsed_s
                          : 0.0;
      char pace[64] = "";
      if (rate > 0.0 && p.completed < p.total) {
        std::snprintf(pace, sizeof pace, " [%.1f/s, ETA %.0fs]", rate,
                      static_cast<double>(p.total - p.completed) / rate);
      } else if (rate > 0.0) {
        std::snprintf(pace, sizeof pace, " [%.1f/s]", rate);
      }
      char fleet[64] = "";
      if (p.host_losses > 0 || p.lease_reassignments > 0) {
        std::snprintf(fleet, sizeof fleet,
                      ", %zu host losses, %zu leases moved", p.host_losses,
                      p.lease_reassignments);
      }
      std::fprintf(stderr, "\r  %zu/%zu trials%s%s%s   %s", p.completed,
                   p.total, counts, fleet, pace,
                   p.completed == p.total ? "\n" : "");
      std::fflush(stderr);
      return;
    }
    // Non-TTY (CI logs): a \r ticker would interleave with trial log
    // lines into one unreadable mega-line. Print a complete line every
    // ~5% instead, with percent and a wall-clock ETA.
    const std::size_t step = std::max<std::size_t>(1, p.total / 20);
    if (p.completed % step != 0 && p.completed != p.total) return;
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      state->start)
            .count();
    const double eta_s =
        p.completed > 0 ? elapsed_s * static_cast<double>(p.total -
                                                          p.completed) /
                              static_cast<double>(p.completed)
                        : 0.0;
    std::fprintf(stderr, "  %zu/%zu trials (%.0f%%, ETA %.0fs%s)\n",
                 p.completed, p.total,
                 100.0 * static_cast<double>(p.completed) /
                     static_cast<double>(p.total),
                 eta_s, counts);
    std::fflush(stderr);
  };
}

}  // namespace fourbit::runner
