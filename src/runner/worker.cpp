#include "runner/worker.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>

#include "common/byte_io.hpp"
#include "common/crc16.hpp"
#include "runner/dispatch.hpp"
#include "runner/journal.hpp"

namespace fourbit::runner {
namespace {

constexpr std::uint16_t kPipeMagic = kWorkerPipeMagic;  // "FW"
constexpr std::uint16_t kSnapshotMagic = 0x4653;  // "FS"
constexpr std::uint8_t kPipeVersion = 1;
constexpr std::size_t kFrameHeaderBytes = 6;  // magic u16 + length u32
constexpr std::size_t kCrcBytes = 2;
/// Sanity cap on one frame: a length field past this is corruption, not
/// a giant record (the largest real record is a kTrialFailed carrying a
/// 128-event flight plus an exception message).
constexpr std::size_t kMaxFrameBytes = 1 << 20;
constexpr std::size_t kMaxFlightEvents = 4096;

void encode_event(ByteWriter& w, const sim::TelemetryEvent& e) {
  w.u64(static_cast<std::uint64_t>(e.at.us()));
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.u16(e.node);
  w.u16(e.peer);
  w.u16(e.arg);
  w.u16(e.arg2);
  w.f64(e.v0);
  w.f64(e.v1);
}

[[nodiscard]] std::optional<sim::TelemetryEvent> decode_event(ByteReader& r) {
  sim::TelemetryEvent e;
  e.at = sim::Time::from_us(static_cast<std::int64_t>(r.u64()));
  const std::uint8_t kind = r.u8();
  if (kind >= sim::kEventKindCount) return std::nullopt;
  e.kind = static_cast<sim::EventKind>(kind);
  e.node = r.u16();
  e.peer = r.u16();
  e.arg = r.u16();
  e.arg2 = r.u16();
  e.v0 = r.f64();
  e.v1 = r.f64();
  if (!r.ok()) return std::nullopt;
  return e;
}

[[nodiscard]] std::optional<WorkerRecord> decode_record_payload(
    std::span<const std::uint8_t> payload) {
  ByteReader r{payload};
  if (r.u8() != kPipeVersion) return std::nullopt;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(WorkerRecordKind::kStatus)) {
    return std::nullopt;
  }
  WorkerRecord rec;
  rec.kind = static_cast<WorkerRecordKind>(kind);
  rec.worker = r.u32();
  rec.trial_index = r.u32();
  rec.seed = r.u64();
  rec.attempt = r.u32();
  const std::uint8_t failure_kind = r.u8();
  if (failure_kind >= kFailureKindCount) return std::nullopt;
  rec.failure_kind = static_cast<FailureKind>(failure_kind);
  rec.retried_total = r.u32();
  const std::uint32_t what_len = r.u32();
  if (!r.ok() || what_len > kMaxFrameBytes ||
      r.remaining() < what_len) {
    return std::nullopt;
  }
  rec.what.reserve(what_len);
  for (std::uint32_t i = 0; i < what_len; ++i) {
    rec.what.push_back(static_cast<char>(r.u8()));
  }
  const std::uint32_t flight_count = r.u32();
  if (!r.ok() || flight_count > kMaxFlightEvents) return std::nullopt;
  rec.flight.reserve(flight_count);
  for (std::uint32_t i = 0; i < flight_count; ++i) {
    auto event = decode_event(r);
    if (!event) return std::nullopt;
    rec.flight.push_back(*event);
  }
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return rec;
}

[[nodiscard]] std::vector<std::uint8_t> frame_payload(
    std::uint16_t magic, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  ByteWriter framer{frame};
  framer.u16(magic);
  framer.u32(static_cast<std::uint32_t>(payload.size()));
  framer.bytes(payload);
  framer.u16(crc16(payload));
  return frame;
}

}  // namespace

std::optional<WorkerRecord> decode_worker_record_payload(
    std::span<const std::uint8_t> payload) {
  return decode_record_payload(payload);
}

std::vector<std::uint8_t> encode_worker_record(const WorkerRecord& record) {
  std::vector<std::uint8_t> payload;
  ByteWriter w{payload};
  w.u8(kPipeVersion);
  w.u8(static_cast<std::uint8_t>(record.kind));
  w.u32(record.worker);
  w.u32(record.trial_index);
  w.u64(record.seed);
  w.u32(record.attempt);
  w.u8(static_cast<std::uint8_t>(record.failure_kind));
  w.u32(record.retried_total);
  w.u32(static_cast<std::uint32_t>(record.what.size()));
  for (const char c : record.what) w.u8(static_cast<std::uint8_t>(c));
  w.u32(static_cast<std::uint32_t>(record.flight.size()));
  for (const auto& event : record.flight) encode_event(w, event);
  return frame_payload(kPipeMagic, payload);
}

void WorkerPipeParser::feed(const std::uint8_t* data, std::size_t n) {
  if (corrupt_) return;
  buffer_.insert(buffer_.end(), data, data + n);
}

std::optional<WorkerRecord> WorkerPipeParser::next() {
  if (corrupt_) return std::nullopt;
  if (pos_ > 0 && pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ > 65536) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  const std::size_t avail = buffer_.size() - pos_;
  if (avail < kFrameHeaderBytes) return std::nullopt;
  const std::span<const std::uint8_t> rest{buffer_.data() + pos_, avail};
  ByteReader header{rest.first(kFrameHeaderBytes)};
  if (header.u16() != kPipeMagic) {
    corrupt_ = true;
    return std::nullopt;
  }
  const std::uint32_t length = header.u32();
  if (length > kMaxFrameBytes) {
    corrupt_ = true;
    return std::nullopt;
  }
  if (avail < kFrameHeaderBytes + length + kCrcBytes) return std::nullopt;
  const auto payload = rest.subspan(kFrameHeaderBytes, length);
  ByteReader crc_reader{rest.subspan(kFrameHeaderBytes + length, kCrcBytes)};
  if (crc_reader.u16() != crc16(payload)) {
    corrupt_ = true;
    return std::nullopt;
  }
  auto rec = decode_record_payload(payload);
  if (!rec) {
    corrupt_ = true;
    return std::nullopt;
  }
  pos_ += kFrameHeaderBytes + length + kCrcBytes;
  return rec;
}

std::string format_index_spans(const std::vector<std::size_t>& indices) {
  std::vector<std::size_t> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::string out;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[j] + 1) ++j;
    if (!out.empty()) out += ',';
    out += std::to_string(sorted[i]);
    if (j > i) {
      out += '-';
      out += std::to_string(sorted[j]);
    }
    i = j + 1;
  }
  return out;
}

std::optional<std::vector<std::size_t>> parse_index_spans(
    const std::string& spans) {
  std::vector<std::size_t> out;
  if (spans.empty()) return out;
  std::size_t pos = 0;
  const auto parse_number = [&](std::size_t& value) -> bool {
    if (pos >= spans.size() || spans[pos] < '0' || spans[pos] > '9') {
      return false;
    }
    value = 0;
    while (pos < spans.size() && spans[pos] >= '0' && spans[pos] <= '9') {
      const std::size_t digit = static_cast<std::size_t>(spans[pos] - '0');
      if (value > (std::numeric_limits<std::size_t>::max() - digit) / 10) {
        return false;
      }
      value = value * 10 + digit;
      ++pos;
    }
    return true;
  };
  while (true) {
    std::size_t lo = 0;
    if (!parse_number(lo)) return std::nullopt;
    std::size_t hi = lo;
    if (pos < spans.size() && spans[pos] == '-') {
      ++pos;
      if (!parse_number(hi) || hi < lo) return std::nullopt;
    }
    for (std::size_t v = lo; v <= hi; ++v) out.push_back(v);
    if (pos == spans.size()) break;
    if (spans[pos] != ',') return std::nullopt;
    ++pos;
    if (pos == spans.size()) return std::nullopt;  // trailing comma
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void write_flight_snapshot(const std::string& path, std::size_t trial_index,
                           std::uint64_t seed,
                           const std::vector<sim::TelemetryEvent>& events) {
  std::vector<std::uint8_t> payload;
  ByteWriter w{payload};
  w.u8(kPipeVersion);
  w.u32(static_cast<std::uint32_t>(trial_index));
  w.u64(seed);
  w.u32(static_cast<std::uint32_t>(events.size()));
  for (const auto& event : events) encode_event(w, event);
  const auto frame = frame_payload(kSnapshotMagic, payload);

  // Write-temp-then-rename: the snapshot at `path` is always either a
  // previous complete snapshot or this one — never a torn mix. No fsync:
  // the evidence must survive a *process* death, not a power cut.
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return;  // best-effort: no evidence beats no trial
  const bool wrote =
      std::fwrite(frame.data(), 1, frame.size(), file) == frame.size();
  std::fclose(file);
  if (!wrote) {
    std::remove(tmp.c_str());
    return;
  }
  std::rename(tmp.c_str(), path.c_str());
}

std::optional<FlightSnapshot> load_flight_snapshot(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  std::fclose(file);

  if (bytes.size() < kFrameHeaderBytes + kCrcBytes) return std::nullopt;
  ByteReader header{std::span<const std::uint8_t>{bytes}.first(
      kFrameHeaderBytes)};
  if (header.u16() != kSnapshotMagic) return std::nullopt;
  const std::uint32_t length = header.u32();
  if (bytes.size() != kFrameHeaderBytes + length + kCrcBytes) {
    return std::nullopt;
  }
  const std::span<const std::uint8_t> payload{
      bytes.data() + kFrameHeaderBytes, length};
  ByteReader crc_reader{std::span<const std::uint8_t>{
      bytes.data() + kFrameHeaderBytes + length, kCrcBytes}};
  if (crc_reader.u16() != crc16(payload)) return std::nullopt;

  ByteReader r{payload};
  if (r.u8() != kPipeVersion) return std::nullopt;
  FlightSnapshot snap;
  snap.trial_index = r.u32();
  snap.seed = r.u64();
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxFlightEvents) return std::nullopt;
  snap.events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto event = decode_event(r);
    if (!event) return std::nullopt;
    snap.events.push_back(*event);
  }
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return snap;
}

// ---- worker side ------------------------------------------------------

namespace {

/// Serialized full-frame writes to the coordinator pipe. Frames (a
/// kTrialFailed with its flight is ~5 KB) exceed PIPE_BUF, so partial
/// writes are possible; the mutex plus the write loop keep concurrent
/// trial threads and the heartbeat thread from interleaving frames. A
/// failed write means the coordinator is gone — with SIGPIPE ignored it
/// surfaces as EPIPE — and a worker with no coordinator just dies; its
/// journal shard already holds everything durable.
class PipeWriter {
 public:
  PipeWriter(int fd, std::uint32_t worker) : fd_(fd), worker_(worker) {}

  void send(WorkerRecord record) {
    record.worker = worker_;
    const auto frame = encode_worker_record(record);
    const std::lock_guard<std::mutex> lock{mutex_};
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::_exit(1);
      }
      off += static_cast<std::size_t>(n);
    }
  }

 private:
  int fd_;
  std::uint32_t worker_;
  std::mutex mutex_;
};

}  // namespace

void run_worker(const std::vector<ExperimentConfig>& trials,
                const CampaignCli& cli, SupervisorOptions options) {
  // A dying coordinator must surface as an EPIPE write error (handled),
  // not a SIGPIPE death that would itself read as a worker hard-crash.
  std::signal(SIGPIPE, SIG_IGN);

  const auto spans = parse_index_spans(cli.worker_trials);
  if (!spans) {
    std::fprintf(stderr, "--worker-trials: malformed span list '%s'\n",
                 cli.worker_trials.c_str());
    std::exit(2);
  }
  auto writer = std::make_shared<PipeWriter>(cli.worker_fd, cli.worker_id);

  options.subset = *spans;
  options.journal_path = cli.worker_shard;
  options.flight_flush_base = cli.worker_shard;

  // Live status rides the pipe, never a file: --status-json is the
  // coordinator's to honor (a worker writing it too would race the
  // merged snapshot), so worker mode deliberately ignores it.
  auto board = std::make_shared<StatusBoard>();
  options.status = board.get();

  WorkerRecord hello;
  hello.kind = WorkerRecordKind::kHello;
  writer->send(hello);

  // Trials already in this worker's shard (a previous incarnation
  // finished them before dying) will be silently replayed by
  // run_supervised; announce them as done up front so the coordinator
  // settles them instead of waiting forever. attempt == 0 marks them as
  // replays, not fresh executions.
  if (!cli.worker_shard.empty()) {
    const std::set<std::size_t> mine(spans->begin(), spans->end());
    auto loaded = TrialJournal::load(cli.worker_shard);
    for (const auto& entry : loaded.entries) {
      if (entry.trial_index >= trials.size()) continue;
      if (mine.count(entry.trial_index) == 0) continue;
      if (entry.seed != trials[entry.trial_index].seed) continue;
      WorkerRecord rec;
      rec.kind = WorkerRecordKind::kTrialDone;
      rec.trial_index = entry.trial_index;
      rec.seed = entry.seed;
      rec.attempt = 0;
      writer->send(rec);
    }
  }

  options.on_trial_start = [writer](std::size_t index,
                                    const ExperimentConfig& config) {
    WorkerRecord rec;
    rec.kind = WorkerRecordKind::kTrialStart;
    rec.trial_index = static_cast<std::uint32_t>(index);
    rec.seed = config.seed;
    writer->send(rec);
  };
  options.on_trial_done = [writer](const TrialProgress& p) {
    WorkerRecord rec;
    rec.trial_index = static_cast<std::uint32_t>(p.trial_index);
    rec.retried_total = static_cast<std::uint32_t>(p.retried);
    if (p.failure != nullptr) {
      rec.kind = WorkerRecordKind::kTrialFailed;
      rec.seed = p.failure->seed;
      rec.attempt = static_cast<std::uint32_t>(p.failure->attempt);
      rec.failure_kind = p.failure->kind;
      rec.what = p.failure->what;
      rec.flight = p.failure->flight;
    } else {
      rec.kind = WorkerRecordKind::kTrialDone;
      rec.seed = p.config != nullptr ? p.config->seed : 0;
      rec.attempt = 1;
    }
    writer->send(rec);
  };

  std::atomic<bool> finished{false};
  const auto interval =
      std::chrono::milliseconds(std::max<std::uint64_t>(
          10, cli.worker_heartbeat_ms));
  // Status snapshots piggyback on the heartbeat thread at their own
  // (slower) cadence: one extra frame kind on an existing liveness
  // channel, zero new threads.
  const auto status_every = std::chrono::milliseconds(
      std::max<std::uint64_t>(10, cli.status_interval_ms));
  const std::uint64_t my_total = spans->size();
  const auto worker_start = std::chrono::steady_clock::now();
  std::uint64_t status_seq = 0;
  const auto send_status = [writer, board, my_total, worker_start,
                            &status_seq] {
    StatusSnapshot snap;
    board->fill_snapshot(snap);
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - worker_start)
                               .count();
    stamp_status(snap, ++status_seq, elapsed, my_total);
    const auto bytes = encode_status_snapshot(snap);
    WorkerRecord rec;
    rec.kind = WorkerRecordKind::kStatus;
    rec.what.assign(reinterpret_cast<const char*>(bytes.data()),
                    bytes.size());
    writer->send(std::move(rec));
  };
  std::thread heartbeat{[writer, &finished, interval, status_every,
                         &send_status] {
    auto last_status = std::chrono::steady_clock::now();
    while (!finished.load(std::memory_order_acquire)) {
      WorkerRecord rec;
      rec.kind = WorkerRecordKind::kHeartbeat;
      writer->send(rec);
      const auto now = std::chrono::steady_clock::now();
      if (now - last_status >= status_every) {
        send_status();
        last_status = now;
      }
      std::this_thread::sleep_for(interval);
    }
  }};

  (void)run_supervised(trials, options);

  finished.store(true, std::memory_order_release);
  heartbeat.join();
  send_status();  // the final, settled picture of this shard
  WorkerRecord bye;
  bye.kind = WorkerRecordKind::kBye;
  writer->send(bye);
  std::exit(0);
}

// ---- coordinator ------------------------------------------------------

namespace {

using Clock = std::chrono::steady_clock;

struct WorkerSlot {
  std::uint32_t id = 0;
  pid_t pid = -1;
  int fd = -1;
  WorkerPipeParser parser;
  std::vector<std::size_t> assigned;  // static round-robin assignment
  std::set<std::size_t> in_flight;    // started, not yet settled
  std::map<std::size_t, Clock::time_point> started_at;
  std::size_t respawns = 0;
  bool spawned_once = false;
  /// Consecutive deaths with zero records of progress — the exec-fails-
  /// in-a-loop guard (e.g. the binary was deleted mid-campaign).
  std::size_t fruitless_deaths = 0;
  bool progress_since_spawn = false;
  std::uint32_t last_retried_total = 0;
  Clock::time_point last_heard{};
  std::optional<Clock::time_point> respawn_at;  // dead, awaiting backoff
  bool retired = false;  // nothing left to do, no live process
  /// Latest fourbit.status/1 snapshot this incarnation streamed; folded
  /// into the coordinator's board when the worker dies so merged
  /// counters stay monotonic across respawns.
  std::optional<StatusSnapshot> status;
};

}  // namespace

CampaignReport run_multiprocess(const std::vector<ExperimentConfig>& trials,
                                const MultiprocessOptions& options) {
  namespace fs = std::filesystem;
  CampaignReport report;
  report.results.resize(trials.size());
  report.completed.assign(trials.size(), 0);
  if (trials.empty()) return report;
  const std::uint64_t journal_failures_before = TrialJournal::write_failures();
  if (options.exec_argv.empty()) {
    throw std::runtime_error(
        "run_multiprocess: exec_argv is empty (pass CampaignCli::exec_argv)");
  }

  const bool user_journal = !options.supervisor.journal_path.empty();
  std::string stem = options.supervisor.journal_path;
  fs::path temp_dir;
  if (!user_journal) {
    // Shards need a home even without --journal; they are deleted after
    // the final merge.
    temp_dir = fs::temp_directory_path() /
               ("fourbit-mp-" + std::to_string(::getpid()));
    std::error_code ec;
    fs::create_directories(temp_dir, ec);
    stem = (temp_dir / "campaign").string();
  }

  std::vector<std::uint8_t> failed_bit(trials.size(), 0);
  std::vector<std::uint8_t> main_has(trials.size(), 0);

  // Resume, stage 1: the main journal (prior completed campaigns /
  // compacted shards). Seed mismatches belong to another campaign.
  if (user_journal) {
    auto loaded = TrialJournal::load(stem);
    report.journal_torn = loaded.torn;
    for (auto& entry : loaded.entries) {
      if (entry.trial_index >= trials.size()) continue;
      if (entry.seed != trials[entry.trial_index].seed) continue;
      main_has[entry.trial_index] = 1;
      if (report.completed[entry.trial_index]) continue;
      report.results[entry.trial_index] = std::move(entry.result);
      report.completed[entry.trial_index] = 1;
      ++report.replayed;
    }
  }
  // Resume, stage 2: shards a SIGKILLed coordinator left behind — the
  // workers' results survived it; pick them up before re-running.
  {
    auto merged = TrialJournal::merge_shards(stem);
    report.journal_torn = report.journal_torn || merged.torn;
    for (auto& entry : merged.entries) {
      if (entry.trial_index >= trials.size()) continue;
      if (entry.seed != trials[entry.trial_index].seed) continue;
      if (report.completed[entry.trial_index]) continue;
      report.results[entry.trial_index] = std::move(entry.result);
      report.completed[entry.trial_index] = 1;
      ++report.replayed;
    }
  }

  // Still-pending trials, round-robin across the worker slots.
  std::vector<std::size_t> pending;
  if (options.supervisor.subset.empty()) {
    for (std::size_t i = 0; i < trials.size(); ++i) {
      if (!report.completed[i]) pending.push_back(i);
    }
  } else {
    for (const std::size_t i : options.supervisor.subset) {
      if (i < trials.size() && !report.completed[i]) pending.push_back(i);
    }
  }

  const std::size_t nworkers = std::max<std::size_t>(
      1, std::min(options.workers, std::max<std::size_t>(1, pending.size())));
  std::vector<WorkerSlot> slots(nworkers);
  for (std::size_t k = 0; k < nworkers; ++k) {
    slots[k].id = static_cast<std::uint32_t>(k);
  }
  for (std::size_t j = 0; j < pending.size(); ++j) {
    slots[j % nworkers].assigned.push_back(pending[j]);
  }

  std::map<std::size_t, std::size_t> crash_counts;
  std::size_t progress_done = static_cast<std::size_t>(report.replayed);
  std::size_t failed_count = 0;

  const auto settled = [&](std::size_t i) {
    return report.completed[i] != 0 || failed_bit[i] != 0;
  };
  const auto remaining_of = [&](const WorkerSlot& slot) {
    std::vector<std::size_t> rem;
    for (const std::size_t i : slot.assigned) {
      if (!settled(i)) rem.push_back(i);
    }
    return rem;
  };

  const auto emit_progress = [&](std::size_t index,
                                 const TrialFailure* failure) {
    ++progress_done;
    if (failure != nullptr) ++failed_count;
    if (options.supervisor.on_trial_done) {
      TrialProgress p;
      p.trial_index = index;
      p.completed = progress_done;
      p.total = trials.size();
      p.failed = failed_count;
      p.retried = static_cast<std::size_t>(report.retries);
      p.config = &trials[index];
      p.result = nullptr;  // results materialize at the final shard merge
      p.failure = failure;
      options.supervisor.on_trial_done(p);
    }
  };

  // Merged-status accumulator: holds metrics absorbed from dead worker
  // incarnations; live slots contribute their latest snapshot directly
  // at publish time.
  StatusBoard status_board;

  const auto fail_hard = [&](std::size_t index, const WorkerSlot& slot,
                             const std::string& what, int sig) {
    if (settled(index)) return;
    failed_bit[index] = 1;
    TrialFailure failure;
    failure.kind = FailureKind::kHardCrash;
    failure.what = what;
    failure.trial_index = index;
    failure.seed = trials[index].seed;
    failure.attempt = std::max<std::size_t>(1, crash_counts[index]);
    failure.term_signal = sig;
    // Best evidence available: the worker's last flushed snapshot.
    const auto snapshot_file = flight_snapshot_path(
        TrialJournal::shard_path(stem, slot.id), index);
    if (auto snap = load_flight_snapshot(snapshot_file)) {
      if (snap->trial_index == index && snap->seed == trials[index].seed) {
        failure.flight = std::move(snap->events);
      }
    }
    report.failures.push_back(std::move(failure));
    emit_progress(index, &report.failures.back());
  };

  const auto fail_timeout = [&](std::size_t index) {
    if (settled(index)) return;
    failed_bit[index] = 1;
    ++report.attempts;
    TrialFailure failure;
    failure.kind = FailureKind::kTimeout;
    failure.what = "trial exceeded the coordinator watchdog (" +
                   std::to_string(options.trial_timeout_ms) +
                   " ms in flight); its worker was killed";
    failure.trial_index = index;
    failure.seed = trials[index].seed;
    failure.attempt = 1;
    report.failures.push_back(std::move(failure));
    emit_progress(index, &report.failures.back());
  };

  const auto handle_record = [&](WorkerSlot& slot, WorkerRecord rec) {
    const std::size_t index = rec.trial_index;
    switch (rec.kind) {
      case WorkerRecordKind::kHello:
      case WorkerRecordKind::kHeartbeat:
      case WorkerRecordKind::kBye:
        return;
      case WorkerRecordKind::kStatus: {
        // Strictly off-band: a snapshot is neither progress nor trial
        // accounting, it only refreshes this slot's contribution to the
        // next merged publication. An undecodable payload is dropped
        // (the CRC already passed; this is a version skew, not noise).
        auto snap = decode_status_snapshot(std::span<const std::uint8_t>{
            reinterpret_cast<const std::uint8_t*>(rec.what.data()),
            rec.what.size()});
        if (snap) slot.status = std::move(*snap);
        return;
      }
      case WorkerRecordKind::kTrialStart:
        if (index < trials.size() && !settled(index)) {
          slot.in_flight.insert(index);
          slot.started_at[index] = Clock::now();
        }
        slot.progress_since_spawn = true;
        slot.fruitless_deaths = 0;
        return;
      case WorkerRecordKind::kTrialDone:
      case WorkerRecordKind::kTrialFailed:
        break;
    }
    slot.progress_since_spawn = true;
    slot.fruitless_deaths = 0;
    slot.in_flight.erase(index);
    slot.started_at.erase(index);
    if (rec.retried_total >= slot.last_retried_total) {
      const std::uint32_t delta = rec.retried_total - slot.last_retried_total;
      report.retries += delta;
      report.attempts += delta;  // every retry is one more invocation
      slot.last_retried_total = rec.retried_total;
    }
    if (index >= trials.size() || settled(index)) return;
    if (rec.kind == WorkerRecordKind::kTrialDone) {
      // attempt == 0 marks a shard replay, not a fresh execution. The
      // result itself is durable in the shard; it is merged at the end.
      if (rec.attempt != 0) ++report.attempts;
      report.completed[index] = 1;
      emit_progress(index, nullptr);
      return;
    }
    ++report.attempts;
    failed_bit[index] = 1;
    TrialFailure failure;
    failure.kind = rec.failure_kind;
    failure.what = std::move(rec.what);
    failure.trial_index = index;
    failure.seed = rec.seed;
    failure.attempt = rec.attempt;
    failure.flight = std::move(rec.flight);
    report.failures.push_back(std::move(failure));
    emit_progress(index, &report.failures.back());
  };

  const auto spawn = [&](WorkerSlot& slot) {
    const auto rem = remaining_of(slot);
    int fds[2];
    if (::pipe(fds) != 0) {
      throw std::runtime_error("run_multiprocess: pipe() failed");
    }
    const std::string shard = TrialJournal::shard_path(stem, slot.id);
    std::vector<std::string> args = options.exec_argv;
    args.push_back("--worker-fd");
    args.push_back(std::to_string(fds[1]));
    args.push_back("--worker-id");
    args.push_back(std::to_string(slot.id));
    args.push_back("--worker-shard");
    args.push_back(shard);
    args.push_back("--worker-trials");
    args.push_back(format_index_spans(rem));
    args.push_back("--worker-heartbeat-ms");
    args.push_back(std::to_string(options.heartbeat_interval_ms));

    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      throw std::runtime_error("run_multiprocess: fork() failed");
    }
    if (pid == 0) {
      ::close(fds[0]);
      // The bench preamble and result tables belong to the coordinator's
      // run alone; a worker's stdout is noise.
      const int devnull = ::open("/dev/null", O_WRONLY);
      if (devnull >= 0) {
        ::dup2(devnull, STDOUT_FILENO);
        ::close(devnull);
      }
      std::vector<char*> argp;
      argp.reserve(args.size() + 1);
      for (auto& arg : args) argp.push_back(arg.data());
      argp.push_back(nullptr);
      ::execvp(argp[0], argp.data());
      ::_exit(127);
    }
    ::close(fds[1]);
    const int flags = ::fcntl(fds[0], F_GETFL, 0);
    ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
    ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    slot.pid = pid;
    slot.fd = fds[0];
    slot.parser = WorkerPipeParser{};
    slot.in_flight.clear();
    slot.started_at.clear();
    slot.last_retried_total = 0;
    slot.progress_since_spawn = false;
    slot.last_heard = Clock::now();
    slot.respawn_at.reset();
  };

  const auto worker_death = [&](WorkerSlot& slot, bool already_eof,
                                const char* cause) {
    if (!already_eof && slot.pid > 0) ::kill(slot.pid, SIGKILL);
    int status = 0;
    ::waitpid(slot.pid, &status, 0);
    ::close(slot.fd);
    slot.fd = -1;
    slot.pid = -1;
    // The dead incarnation's last metrics move into the coordinator's
    // board: merged counters stay monotonic across the respawn (the
    // respawned worker's registry restarts from zero).
    if (slot.status) {
      status_board.absorb_metrics(*slot.status);
      slot.status.reset();
    }

    const bool corrupt = slot.parser.corrupt();
    const int sig = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    auto rem = remaining_of(slot);
    // Only a clean exit with an empty range is a normal retirement;
    // exit 0 with unfinished work means the worker lost its way.
    if (!corrupt && code == 0 && rem.empty()) {
      slot.retired = true;
      return;
    }

    ++report.hard_crashes;
    std::string what = "worker " + std::to_string(slot.id);
    if (corrupt) {
      what += " sent a torn or corrupt pipe frame";
      if (sig != 0) what += " and was killed (signal " +
                            std::to_string(sig) + ")";
    } else if (std::string_view{cause} == "heartbeat") {
      what += " stopped heartbeating for over " +
              std::to_string(options.heartbeat_timeout_ms) +
              " ms and was killed";
    } else if (std::string_view{cause} == "trial-timeout") {
      what += " was killed after a trial overran the coordinator watchdog";
    } else if (sig != 0) {
      what += " was killed by signal " + std::to_string(sig);
    } else if (code >= 0) {
      what += " exited with status " + std::to_string(code) +
              " before finishing its range";
    } else {
      what += " died unexpectedly";
    }

    // Every trial in flight at the moment of death is a suspect; one
    // that keeps being in flight when its worker dies is the killer.
    const std::set<std::size_t> suspects = slot.in_flight;
    for (const std::size_t index : suspects) {
      ++crash_counts[index];
      ++report.attempts;
      if (crash_counts[index] >= options.max_trial_crashes) {
        fail_hard(index, slot, what, sig);
      }
    }
    if (suspects.empty() && !slot.progress_since_spawn) {
      // Death before any record of progress: nothing to blame, so after
      // a few of these in a row (exec failure loop, instant OOM) the
      // whole range is declared unrunnable rather than respawn forever.
      ++slot.fruitless_deaths;
      if (slot.fruitless_deaths >=
          std::max<std::size_t>(2, options.max_trial_crashes)) {
        for (const std::size_t index : rem) {
          fail_hard(index,
                    slot, what + " (repeatedly, before reporting any trial)",
                    sig);
        }
      }
    }
    slot.in_flight.clear();
    slot.started_at.clear();

    rem = remaining_of(slot);
    if (rem.empty()) {
      slot.retired = true;
      return;
    }
    const std::uint64_t delay_ms = options.respawn_backoff.delay_ms(
        slot.respawns + 1, trials[rem.front()].seed);
    slot.respawn_at = Clock::now() + std::chrono::milliseconds(delay_ms);
  };

  const auto drain = [&](WorkerSlot& slot) {
    while (auto rec = slot.parser.next()) handle_record(slot, *rec);
  };

  // Merged fourbit.status/1 publication: coordinator lifecycle truth +
  // absorbed dead-incarnation metrics + every live slot's latest
  // snapshot, stamped and pushed to --status-json and/or on_status.
  const bool status_publishing =
      !options.status_path.empty() || static_cast<bool>(options.on_status);
  const auto campaign_start = Clock::now();
  std::uint64_t status_seq = 0;
  auto last_status_publish = campaign_start;
  const auto publish_status = [&] {
    StatusSnapshot snap;
    status_board.fill_snapshot(snap);
    // progress_done counts settles of both kinds; the snapshot splits
    // them back out (done = clean completions only).
    snap.done = progress_done - failed_count;
    snap.failed = failed_count;
    snap.retried = report.retries;
    snap.replayed = report.replayed;
    snap.hard_crashes = report.hard_crashes;
    snap.worker_respawns = report.worker_respawns;
    std::uint64_t in_flight = 0;
    for (const auto& slot : slots) in_flight += slot.in_flight.size();
    snap.in_flight = in_flight;
    for (const auto& slot : slots) {
      StatusSource src;
      src.name = "w" + std::to_string(slot.id);
      src.kind = StatusSource::Kind::kWorker;
      src.alive = slot.pid > 0;
      src.retired = slot.retired;
      src.in_flight = slot.in_flight.size();
      src.losses = slot.respawns;
      src.fruitless = slot.fruitless_deaths;
      src.lease = format_index_spans(remaining_of(slot));
      if (slot.status) {
        src.done = slot.status->done;
        src.failed = slot.status->failed;
        merge_status_metrics(snap, *slot.status);
      }
      snap.sources.push_back(std::move(src));
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - campaign_start).count();
    stamp_status(snap, ++status_seq, elapsed,
                 options.status_total != 0
                     ? static_cast<std::uint64_t>(options.status_total)
                     : trials.size());
    if (!options.status_path.empty()) {
      write_status_file(options.status_path, status_json(snap));
    }
    if (options.on_status) options.on_status(snap);
  };

  // ---- the supervision loop ----
  while (true) {
    bool any_live = false;
    bool any_pending_respawn = false;
    const auto now = Clock::now();
    for (auto& slot : slots) {
      if (slot.retired) continue;
      if (slot.pid < 0) {
        if (remaining_of(slot).empty()) {
          slot.retired = true;
          continue;
        }
        if (!slot.respawn_at || now >= *slot.respawn_at) {
          const bool is_respawn = slot.spawned_once;
          spawn(slot);
          slot.spawned_once = true;
          if (is_respawn) {
            ++slot.respawns;
            ++report.worker_respawns;
          }
          any_live = true;
        } else {
          any_pending_respawn = true;
        }
        continue;
      }
      any_live = true;
    }
    if (!any_live && !any_pending_respawn) break;

    std::vector<pollfd> pfds;
    std::vector<WorkerSlot*> owners;
    for (auto& slot : slots) {
      if (slot.retired || slot.pid < 0) continue;
      pfds.push_back(pollfd{slot.fd, POLLIN, 0});
      owners.push_back(&slot);
    }
    if (pfds.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    // EINTR here is routine (SIGCHLD from a dying worker lands exactly
    // when poll sleeps); treat it as an early timeout, never an error.
    int polled;
    do {
      polled = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);
    } while (polled < 0 && errno == EINTR);
    if (polled < 0) {
      for (auto& pfd : pfds) pfd.revents = 0;
    }

    for (std::size_t x = 0; x < pfds.size(); ++x) {
      WorkerSlot& slot = *owners[x];
      if ((pfds[x].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      bool eof = false;
      std::uint8_t buf[4096];
      while (true) {
        const ssize_t n = ::read(slot.fd, buf, sizeof buf);
        if (n > 0) {
          slot.parser.feed(buf, static_cast<std::size_t>(n));
          slot.last_heard = Clock::now();
          continue;
        }
        if (n == 0) {
          eof = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        eof = true;
        break;
      }
      // Settle everything the worker managed to report before judging
      // its death: pre-crash Done records are real completions.
      drain(slot);
      if (slot.parser.corrupt()) {
        worker_death(slot, false, "corrupt");
      } else if (eof) {
        worker_death(slot, true, "eof");
      }
    }

    // Watchdogs over the still-living.
    const auto check = Clock::now();
    for (auto& slot : slots) {
      if (slot.retired || slot.pid < 0) continue;
      if (options.heartbeat_timeout_ms != 0 &&
          check - slot.last_heard >
              std::chrono::milliseconds(options.heartbeat_timeout_ms)) {
        drain(slot);
        worker_death(slot, false, "heartbeat");
        continue;
      }
      if (options.trial_timeout_ms != 0) {
        std::vector<std::size_t> overdue;
        for (const auto& [index, since] : slot.started_at) {
          if (check - since >
              std::chrono::milliseconds(options.trial_timeout_ms)) {
            overdue.push_back(index);
          }
        }
        if (!overdue.empty()) {
          // The overdue trial is a terminal timeout right now — not a
          // crash-count candidate; collateral in-flight trials go
          // through the usual suspect accounting in worker_death.
          for (const std::size_t index : overdue) {
            slot.in_flight.erase(index);
            slot.started_at.erase(index);
            fail_timeout(index);
          }
          worker_death(slot, false, "trial-timeout");
        }
      }
    }

    if (status_publishing) {
      const auto tick = Clock::now();
      if (tick - last_status_publish >=
          std::chrono::milliseconds(
              std::max<std::uint64_t>(10, options.status_interval_ms))) {
        last_status_publish = tick;
        publish_status();
      }
    }
  }

  // ---- final merge: the shards hold every fresh result ----
  auto merged = TrialJournal::merge_shards(stem);
  report.journal_torn = report.journal_torn || merged.torn;
  for (auto& entry : merged.entries) {
    if (entry.trial_index >= trials.size()) continue;
    if (entry.seed != trials[entry.trial_index].seed) continue;
    if (failed_bit[entry.trial_index]) continue;
    report.results[entry.trial_index] = std::move(entry.result);
    report.completed[entry.trial_index] = 1;
  }

  if (user_journal) {
    // Compact: fold shard results into the main journal, then delete the
    // shards (and their flight snapshots) — a later resume sees one
    // journal, exactly as a single-process run would have left it.
    {
      auto out = TrialJournal::open_append(stem);
      for (std::size_t i = 0; i < trials.size(); ++i) {
        if (!report.completed[i] || main_has[i]) continue;
        out.append(static_cast<std::uint32_t>(i), trials[i].seed,
                   report.results[i]);
      }
    }
    const fs::path stem_path{stem};
    const fs::path dir = stem_path.has_parent_path() ? stem_path.parent_path()
                                                     : fs::path{"."};
    const std::string prefix = stem_path.filename().string() + ".w";
    std::error_code ec;
    for (const auto& dirent : fs::directory_iterator{dir, ec}) {
      const std::string name = dirent.path().filename().string();
      if (name.compare(0, prefix.size(), prefix) == 0) {
        fs::remove(dirent.path(), ec);
      }
    }
  } else {
    std::error_code ec;
    fs::remove_all(temp_dir, ec);
  }

  report.journal_write_failures =
      TrialJournal::write_failures() - journal_failures_before;
  // Completion order is scheduling; the report must not be.
  std::sort(report.failures.begin(), report.failures.end(),
            [](const TrialFailure& a, const TrialFailure& b) {
              return a.trial_index < b.trial_index;
            });
  // The last published snapshot is the settled end state (done == total
  // on a clean run) — pollers never end on a mid-campaign picture.
  if (status_publishing) publish_status();
  return report;
}

CampaignReport run_campaign(
    const std::vector<ExperimentConfig>& trials, const CampaignCli& cli,
    std::function<void(const TrialProgress&)> progress) {
  if (cli.worker_fd >= 0) {
    run_worker(trials, cli, cli.supervisor_options());  // never returns
  }
  if (cli.serve_port >= 0) {
    run_host_agent(trials, cli, cli.supervisor_options());  // never returns
  }
  if (!cli.hosts.empty()) {
    DispatchOptions options;
    options.supervisor = cli.supervisor_options();
    options.supervisor.on_trial_done = std::move(progress);
    options.hosts = cli.hosts;
    options.lease_trials = cli.lease_trials;
    // Same backstop rationale as the worker pool below: the remote
    // host's own SimBudget should win; this only catches hosts whose
    // machine we cannot signal.
    options.trial_timeout_ms =
        cli.max_trial_ms != 0 ? cli.max_trial_ms * 2 + 5000 : 0;
    options.status_path = cli.status_json;
    options.status_interval_ms = cli.status_interval_ms;
    return run_distributed(trials, options);
  }
  if (cli.workers == 0) {
    auto options = cli.supervisor_options();
    options.on_trial_done = std::move(progress);
    if (cli.status_json.empty()) return run_supervised(trials, options);
    // In-process run with live status: a board fed by the supervisor
    // and a publisher thread writing the file. The publisher's
    // destructor runs after run_supervised returns, so the last write
    // is the settled end state.
    StatusBoard board;
    options.status = &board;
    const auto started = Clock::now();
    std::uint64_t seq = 0;
    StatusPublisher publisher{cli.status_interval_ms, [&] {
      StatusSnapshot snap;
      board.fill_snapshot(snap);
      StatusSource src;
      src.name = "local";
      src.kind = StatusSource::Kind::kLocal;
      src.done = snap.done;
      src.failed = snap.failed;
      src.in_flight = snap.in_flight;
      snap.sources.push_back(std::move(src));
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - started).count();
      stamp_status(snap, ++seq, elapsed, trials.size());
      write_status_file(cli.status_json, status_json(snap));
    }};
    return run_supervised(trials, options);
  }
  MultiprocessOptions options;
  options.supervisor = cli.supervisor_options();
  options.supervisor.on_trial_done = std::move(progress);
  options.workers = cli.workers;
  options.exec_argv = cli.exec_argv;
  options.status_path = cli.status_json;
  options.status_interval_ms = cli.status_interval_ms;
  // The coordinator backstop must out-wait the in-worker SimBudget (the
  // cooperative watchdog should win the race and record a retryable
  // soft timeout); it only fires on non-cooperative hangs.
  options.trial_timeout_ms =
      cli.max_trial_ms != 0 ? cli.max_trial_ms * 2 + 5000 : 0;
  return run_multiprocess(trials, options);
}

}  // namespace fourbit::runner
