// Assembles a full simulated network: channel, radios, MACs, estimator
// stacks and traffic, for one protocol profile on one testbed.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "app/traffic.hpp"
#include "common/ids.hpp"
#include "mac/csma.hpp"
#include "mac/lpl.hpp"
#include "net/collection_node.hpp"
#include "phy/channel.hpp"
#include "phy/radio.hpp"
#include "runner/profile.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"
#include "topology/topology.hpp"

namespace fourbit::runner {

/// A snapshot of the routing tree: per-node hop distance to the root.
struct TreeSnapshot {
  /// Depth per node index; -1 = no route to the root right now.
  std::vector<int> depths;
  double mean_depth = 0.0;  // over routed non-root nodes
  std::size_t routed = 0;   // non-root nodes with a path to the root
  std::size_t total = 0;    // non-root nodes
};

class Network {
 public:
  struct Options {
    Profile profile = Profile::kFourBit;
    PowerDbm tx_power{0.0};
    std::size_t table_capacity = 10;
    std::uint64_t seed = 1;
    std::optional<core::FourBitConfig> four_bit_override;
    /// Duty-cycle the radios with low-power listening at this wake
    /// interval (zero = always-on listening, the testbed default).
    sim::Duration lpl_wake_interval = sim::Duration::from_us(0);
    /// Replaces the profile's collection-protocol parameters (used by
    /// ablations, e.g. switching the pin bit off).
    std::optional<net::CollectionConfig> collection_override;
    /// Replaces the testbed's burst-interference model when set (used by
    /// scripted scenarios such as Figure 3).
    std::unique_ptr<phy::InterferenceModel> interference_override;
  };

  Network(sim::Simulator& sim, const topology::Testbed& testbed,
          Options options, stats::Metrics* metrics);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] net::CollectionNode& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] phy::Channel& channel() { return *channel_; }
  [[nodiscard]] phy::Radio& radio(std::size_t i) { return *radios_[i]; }
  [[nodiscard]] mac::CsmaMac& mac(std::size_t i) { return *macs_[i]; }
  [[nodiscard]] NodeId root() const { return root_; }
  [[nodiscard]] std::size_t root_index() const { return root_index_; }

  /// Boots every node at a uniformly random time in [0, stagger] and
  /// starts constant-rate traffic on every non-root node.
  void start(sim::Duration boot_stagger, const app::TrafficConfig& traffic);

  /// Current routing tree (follows parent pointers, loop-safe).
  [[nodiscard]] TreeSnapshot tree_snapshot() const;

  /// Sum of parent changes across all nodes (route churn).
  [[nodiscard]] std::uint64_t total_parent_changes() const;

  /// Sum of dead-parent evictions across all nodes.
  [[nodiscard]] std::uint64_t total_parent_evictions() const;

  // ---- fault control (used by the fault harness) ---------------------

  /// Index of the node with this id; size() if unknown.
  [[nodiscard]] std::size_t index_of(NodeId id) const;

  /// Crashes node `i`: stack wiped, radio receiver off. The root cannot
  /// crash (the paper's sink is mains-powered); asking is a no-op.
  void crash_node(std::size_t i);

  /// Reboots a crashed node: radio back on, cold boot of the stack.
  void reboot_node(std::size_t i);

  /// Non-root nodes currently routing directly through the root — the
  /// victims of the root-region crash scenario. Deterministic order
  /// (node index order).
  [[nodiscard]] std::vector<std::size_t> root_children() const;

 private:
  sim::Simulator& sim_;
  stats::Metrics* metrics_;
  NodeId root_;
  std::size_t root_index_ = 0;
  std::unique_ptr<phy::Channel> channel_;
  std::vector<std::unique_ptr<phy::Radio>> radios_;
  std::vector<std::unique_ptr<mac::CsmaMac>> macs_;
  std::vector<std::unique_ptr<mac::LplMac>> lpl_macs_;  // empty unless LPL
  std::vector<std::unique_ptr<net::CollectionNode>> nodes_;
  std::vector<std::unique_ptr<app::TrafficGenerator>> traffic_;
};

}  // namespace fourbit::runner
