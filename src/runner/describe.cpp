#include "runner/describe.hpp"

#include <cstdarg>
#include <cstdio>

#include "stats/export.hpp"

namespace fourbit::runner {
namespace {

std::string format(const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof buffer, fmt, args);
  va_end(args);
  return buffer;
}

}  // namespace

std::string describe(const ExperimentConfig& config) {
  std::string out;
  out += format("profile      : %s\n",
                profile_name(config.profile).data());
  out += format("testbed      : %zu nodes, root %u\n",
                config.testbed.topology.size(),
                config.testbed.topology.root.value());
  out += format("tx power     : %.1f dBm\n", config.tx_power.value());
  out += format("duration     : %.1f min\n",
                config.duration.seconds() / 60.0);
  out += format("traffic      : 1 pkt / %.1f s / node (+-%.0f%%), %zu B\n",
                config.traffic.period.seconds(),
                config.traffic.jitter * 100.0,
                config.traffic.payload_bytes);
  out += format("link table   : %zu entries\n", config.table_capacity);
  out += format("seed         : %llu\n",
                static_cast<unsigned long long>(config.seed));
  const auto& env = config.testbed.environment;
  out += format(
      "environment  : PL(d)=%.1f+%.0f*log10(d) dB, shadow %.1f dB, "
      "asym %.1f dB\n",
      env.propagation.reference_loss.value(), 10.0 * env.propagation.exponent,
      env.propagation.shadowing_sigma_db, env.propagation.asymmetry_sigma_db);
  if (env.burst_interference) {
    out += format(
        "interference : bursts %.0fs/%.0fs, %.0f%% loss, %.0f%% of nodes\n",
        env.bursts.mean_bad.seconds(), env.bursts.mean_good.seconds(),
        env.bursts.bad_loss_probability * 100.0,
        env.bursts.affected_fraction * 100.0);
  } else {
    out += "interference : none\n";
  }
  if (config.faults.enabled()) {
    out += format(
        "faults       : %zu crashes (down %.0fs), %zu link outages "
        "(%.0fs, %.0f%% loss)%s in [%.0fs, %.0fs)\n",
        config.faults.node_crashes,
        config.faults.crash_downtime.seconds(), config.faults.link_outages,
        config.faults.outage_duration.seconds(),
        config.faults.outage_loss * 100.0,
        config.faults.root_region_crash ? ", root-region crash" : "",
        config.faults.window_start.seconds(),
        config.faults.window_end.seconds());
  }
  return out;
}

std::string describe(const ExperimentResult& result) {
  std::string out;
  out += format("cost         : %.2f tx / delivered packet\n", result.cost);
  out += format("delivery     : %.2f%% (%llu of %llu)\n",
                result.delivery_ratio * 100.0,
                static_cast<unsigned long long>(result.delivered),
                static_cast<unsigned long long>(result.generated));
  out += format("mean depth   : %.2f hops (%zu/%zu routed at end)\n",
                result.mean_depth, result.final_tree.routed,
                result.final_tree.total);
  out += format("overhead     : %llu beacons, %llu duplicate rx\n",
                static_cast<unsigned long long>(result.beacon_tx),
                static_cast<unsigned long long>(result.duplicates));
  out += format("drops        : %llu retx-budget, %llu queue\n",
                static_cast<unsigned long long>(result.retx_drops),
                static_cast<unsigned long long>(result.queue_drops));
  out += format("churn        : %llu parent changes\n",
                static_cast<unsigned long long>(result.parent_changes));
  out += format("first route  : %.1f s mean boot-to-route\n",
                result.mean_time_to_first_route_s);
  if (result.node_crashes > 0 || result.link_outages > 0) {
    out += format("faults       : %llu crashes, %llu reboots, "
                  "%llu link outages\n",
                  static_cast<unsigned long long>(result.node_crashes),
                  static_cast<unsigned long long>(result.node_reboots),
                  static_cast<unsigned long long>(result.link_outages));
    out += format("recovery     : reroute %.1f s mean / %.1f s max "
                  "(%llu losses), %llu evictions, %llu pin refusals\n",
                  result.mean_time_to_reroute_s,
                  result.max_time_to_reroute_s,
                  static_cast<unsigned long long>(result.route_losses),
                  static_cast<unsigned long long>(result.parent_evictions),
                  static_cast<unsigned long long>(result.pin_refusals));
    if (result.mean_table_refill_s > 0.0) {
      out += format("table refill : %.1f s mean after reboot\n",
                    result.mean_table_refill_s);
    }
    out += format("outage dlv   : %.1f%% during (%llu pkts), "
                  "%.1f%% post (%llu pkts)\n",
                  result.delivery_during_outage * 100.0,
                  static_cast<unsigned long long>(
                      result.generated_during_outage),
                  result.delivery_post_outage * 100.0,
                  static_cast<unsigned long long>(
                      result.generated_post_outage));
  }
  if (result.projected_lifetime_days > 0.0) {
    out += format("energy       : worst node %.3f mAh, lifetime %.1f days\n",
                  result.worst_node_mah, result.projected_lifetime_days);
  }
  if (result.arena_bytes > 0 || result.eq_resizes > 0) {
    out += format("engine       : %.1f KiB arena, %llu queue resizes\n",
                  static_cast<double>(result.arena_bytes) / 1024.0,
                  static_cast<unsigned long long>(result.eq_resizes));
  }
  return out;
}

std::string describe(const TrialFailure& failure) {
  std::string out =
      format("trial %zu (seed %llu) failed [%s] on attempt %zu: %s",
             failure.trial_index,
             static_cast<unsigned long long>(failure.seed),
             std::string{failure_kind_name(failure.kind)}.c_str(),
             failure.attempt, failure.what.c_str());
  if (failure.term_signal != 0) {
    out += format(" (signal %d)", failure.term_signal);
  }
  if (!failure.flight.empty()) {
    out += format(" (flight recorder: %zu events, last at t=%.3fs)",
                  failure.flight.size(),
                  failure.flight.back().at.seconds());
  }
  out += "\n";
  return out;
}

std::string describe(const CampaignReport& report) {
  const std::size_t total = report.results.size();
  std::size_t completed = 0;
  for (const auto done : report.completed) completed += done;

  const bool eventful = !report.failures.empty() || report.retries > 0 ||
                        report.replayed > 0 || report.journal_torn ||
                        report.hard_crashes > 0 || report.worker_respawns > 0 ||
                        report.host_losses > 0 ||
                        report.lease_reassignments > 0 ||
                        report.journal_write_failures > 0;
  if (!eventful) return "";

  std::string out;
  out += format("trials       : %zu of %zu completed, %zu failed\n",
                completed, total, report.failures.size());
  out += format("attempts     : %llu (%llu retries, %llu replayed from "
                "journal%s)\n",
                static_cast<unsigned long long>(report.attempts),
                static_cast<unsigned long long>(report.retries),
                static_cast<unsigned long long>(report.replayed),
                report.journal_torn ? ", torn tail dropped" : "");
  if (report.hard_crashes > 0 || report.worker_respawns > 0) {
    out += format("workers      : %llu hard crashes, %llu respawns\n",
                  static_cast<unsigned long long>(report.hard_crashes),
                  static_cast<unsigned long long>(report.worker_respawns));
  }
  if (report.host_losses > 0 || report.lease_reassignments > 0) {
    out += format("hosts        : %llu sessions lost, %llu leases "
                  "reassigned\n",
                  static_cast<unsigned long long>(report.host_losses),
                  static_cast<unsigned long long>(
                      report.lease_reassignments));
    // Per-host ledger, eventful hosts only: a host that just worked
    // earns no line, so clean-run output is unchanged.
    for (const auto& h : report.host_health) {
      if (h.losses == 0 && h.fruitless == 0 && !h.retired) continue;
      out += format("  host %s: %llu completed, %llu sessions lost, "
                    "%llu fruitless%s\n",
                    h.name.c_str(),
                    static_cast<unsigned long long>(h.completed),
                    static_cast<unsigned long long>(h.losses),
                    static_cast<unsigned long long>(h.fruitless),
                    h.retired ? ", retired" : "");
    }
  }
  if (report.journal_write_failures > 0) {
    out += format("journal      : %llu write failures "
                  "(runner/journal_write_failures); campaign continued "
                  "unjournaled\n",
                  static_cast<unsigned long long>(
                      report.journal_write_failures));
  }
  if (!report.failures.empty()) {
    std::size_t by_kind[kFailureKindCount] = {};
    for (const auto& f : report.failures) {
      ++by_kind[static_cast<std::size_t>(f.kind)];
    }
    out += format("failures     : %zu assert, %zu exception, %zu timeout, "
                  "%zu invariant, %zu hard_crash\n",
                  by_kind[0], by_kind[1], by_kind[2], by_kind[3], by_kind[4]);
    for (const auto& f : report.failures) {
      out += "  " + describe(f);
    }
  }
  return out;
}

namespace {

/// `"name":{"n":...,"mean":...,...}` for one aggregate (no braces around
/// the pair itself; callers join with commas).
std::string aggregate_json(const char* name, const stats::Aggregate& a) {
  return format("\"%s\":{\"n\":%zu,\"mean\":%.17g,\"stddev\":%.17g,"
                "\"ci95_half\":%.17g,\"min\":%.17g,\"median\":%.17g,"
                "\"max\":%.17g}",
                name, a.n, a.mean, a.stddev, a.ci95_half, a.quartiles.min,
                a.quartiles.median, a.quartiles.max);
}

}  // namespace

std::string describe_json(const ExperimentResult& result) {
  std::string out = "{\"schema\":\"";
  out += stats::kSummarySchema;
  out += "\",\"type\":\"result\"";
  out += format(",\"cost\":%.17g,\"delivery_ratio\":%.17g,"
                "\"mean_depth\":%.17g",
                result.cost, result.delivery_ratio, result.mean_depth);
  out += format(",\"generated\":%llu,\"delivered\":%llu,\"data_tx\":%llu,"
                "\"beacon_tx\":%llu,\"radio_frames\":%llu",
                static_cast<unsigned long long>(result.generated),
                static_cast<unsigned long long>(result.delivered),
                static_cast<unsigned long long>(result.data_tx),
                static_cast<unsigned long long>(result.beacon_tx),
                static_cast<unsigned long long>(result.radio_frames));
  out += format(",\"retx_drops\":%llu,\"queue_drops\":%llu,"
                "\"duplicates\":%llu,\"parent_changes\":%llu",
                static_cast<unsigned long long>(result.retx_drops),
                static_cast<unsigned long long>(result.queue_drops),
                static_cast<unsigned long long>(result.duplicates),
                static_cast<unsigned long long>(result.parent_changes));
  if (result.node_crashes > 0 || result.link_outages > 0) {
    out += format(",\"node_crashes\":%llu,\"node_reboots\":%llu,"
                  "\"link_outages\":%llu,\"route_losses\":%llu,"
                  "\"mean_time_to_reroute_s\":%.17g,"
                  "\"delivery_during_outage\":%.17g,"
                  "\"delivery_post_outage\":%.17g",
                  static_cast<unsigned long long>(result.node_crashes),
                  static_cast<unsigned long long>(result.node_reboots),
                  static_cast<unsigned long long>(result.link_outages),
                  static_cast<unsigned long long>(result.route_losses),
                  result.mean_time_to_reroute_s,
                  result.delivery_during_outage,
                  result.delivery_post_outage);
  }
  out += "}";
  return out;
}

std::string describe_json(const TrialFailure& failure) {
  std::string out = "{\"schema\":\"";
  out += stats::kSummarySchema;
  out += "\",\"type\":\"failure\"";
  out += format(",\"trial\":%zu,\"seed\":%llu,\"kind\":\"%s\","
                "\"attempt\":%zu,\"what\":\"%s\",\"flight_events\":%zu",
                failure.trial_index,
                static_cast<unsigned long long>(failure.seed),
                std::string{failure_kind_name(failure.kind)}.c_str(),
                failure.attempt,
                stats::json_escape(failure.what).c_str(),
                failure.flight.size());
  if (failure.term_signal != 0) {
    out += format(",\"term_signal\":%d", failure.term_signal);
  }
  out += "}";
  return out;
}

std::string describe_json(const CampaignSummary& summary) {
  std::string out = "{\"schema\":\"";
  out += stats::kSummarySchema;
  out += "\",\"type\":\"campaign\"";
  out += format(",\"trials\":%zu,\"completed\":%zu,\"attempts\":%llu,"
                "\"retries\":%llu,\"replayed\":%llu",
                summary.trials, summary.completed,
                static_cast<unsigned long long>(summary.attempts),
                static_cast<unsigned long long>(summary.retries),
                static_cast<unsigned long long>(summary.replayed));
  if (summary.worker_respawns > 0) {
    out += format(",\"worker_respawns\":%llu",
                  static_cast<unsigned long long>(summary.worker_respawns));
  }
  if (summary.host_losses > 0 || summary.lease_reassignments > 0) {
    out += format(",\"host_losses\":%llu,\"lease_reassignments\":%llu",
                  static_cast<unsigned long long>(summary.host_losses),
                  static_cast<unsigned long long>(
                      summary.lease_reassignments));
  }
  out += format(",\"failures\":{\"assert\":%zu,\"exception\":%zu,"
                "\"timeout\":%zu,\"invariant\":%zu,\"hard_crash\":%zu}",
                summary.failures_by_kind[0], summary.failures_by_kind[1],
                summary.failures_by_kind[2], summary.failures_by_kind[3],
                summary.failures_by_kind[4]);
  out += "," + aggregate_json("cost", summary.cost);
  out += "," + aggregate_json("delivery_ratio", summary.delivery_ratio);
  out += "," + aggregate_json("mean_depth", summary.mean_depth);
  out += "," + aggregate_json("parent_changes", summary.parent_changes);
  if (summary.delivery_during_outage.n > 0 ||
      summary.time_to_reroute_s.n > 0) {
    out += "," + aggregate_json("delivery_during_outage",
                                summary.delivery_during_outage);
    out += "," + aggregate_json("time_to_reroute_s",
                                summary.time_to_reroute_s);
  }
  out += "}";
  return out;
}

std::string describe_json(const CampaignReport& report) {
  return describe_json(summarize(report));
}

}  // namespace fourbit::runner
