#include "runner/faults.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "sim/rng.hpp"

namespace fourbit::runner {
namespace {

sim::Time draw_time(sim::Rng& rng, const FaultSpec& spec) {
  const double at_s =
      rng.uniform(spec.window_start.seconds(), spec.window_end.seconds());
  return sim::Time::from_us(static_cast<std::int64_t>(at_s * 1e6));
}

/// Index of the node geometrically nearest to `nodes[i]` (ties broken by
/// index, so the choice is deterministic).
std::size_t nearest_neighbor(const std::vector<topology::NodePlacement>& nodes,
                             std::size_t i) {
  std::size_t best = i;
  double best_d = std::numeric_limits<double>::max();
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    if (j == i) continue;
    const double d = distance_m(nodes[i].position, nodes[j].position);
    if (d < best_d) {
      best_d = d;
      best = j;
    }
  }
  return best;
}

}  // namespace

sim::FaultPlan build_fault_plan(const FaultSpec& spec,
                                const topology::Topology& topo,
                                std::uint64_t seed) {
  sim::FaultPlan plan;
  if (!spec.enabled()) return plan;
  FOURBIT_ASSERT(spec.window_end.us() > spec.window_start.us(),
                 "fault window is empty");

  const sim::Rng rng = sim::Rng{seed}.fork("faults");

  // Distinct non-root crash victims via a partial Fisher-Yates shuffle.
  if (spec.node_crashes > 0) {
    sim::Rng crash_rng = rng.fork("crashes");
    std::vector<NodeId> candidates;
    candidates.reserve(topo.nodes.size());
    for (const auto& placement : topo.nodes) {
      if (placement.id != topo.root) candidates.push_back(placement.id);
    }
    const std::size_t count = std::min(spec.node_crashes, candidates.size());
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(
                  crash_rng.uniform_int(candidates.size() - i));
      std::swap(candidates[i], candidates[j]);
      sim::FaultEvent event;
      event.kind = sim::FaultKind::kNodeCrash;
      event.at = draw_time(crash_rng, spec);
      event.duration = spec.crash_downtime;
      event.node = candidates[i];
      plan.events.push_back(event);
    }
  }

  // Link outages hit short links — a random node and its nearest
  // neighbor — because those are the links routing actually uses.
  if (spec.link_outages > 0) {
    sim::Rng link_rng = rng.fork("links");
    for (std::size_t k = 0; k < spec.link_outages; ++k) {
      const std::size_t a = static_cast<std::size_t>(
          link_rng.uniform_int(topo.nodes.size()));
      const std::size_t b = nearest_neighbor(topo.nodes, a);
      if (a == b) continue;  // single-node topology
      sim::FaultEvent event;
      event.kind = sim::FaultKind::kLinkOutage;
      event.at = draw_time(link_rng, spec);
      event.duration = spec.outage_duration;
      event.node = topo.nodes[a].id;
      event.peer = topo.nodes[b].id;
      event.loss = spec.outage_loss;
      plan.events.push_back(event);
    }
  }

  if (spec.root_region_crash) {
    sim::Rng region_rng = rng.fork("root-region");
    sim::FaultEvent event;
    event.kind = sim::FaultKind::kRootRegionCrash;
    event.at = draw_time(region_rng, spec);
    event.duration = spec.crash_downtime;
    event.max_victims = spec.root_region_max_victims;
    plan.events.push_back(event);
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const sim::FaultEvent& x, const sim::FaultEvent& y) {
                     return x.at.us() < y.at.us();
                   });
  return plan;
}

void register_outage_windows(const sim::FaultPlan& plan,
                             stats::Metrics& metrics, sim::Time run_end) {
  for (const auto& event : plan.events) {
    const sim::Time end = event.duration.us() > 0
                              ? event.at + event.duration
                              : run_end;  // permanent damage
    metrics.add_outage_window(event.at, end);
  }
}

FaultRuntime::FaultRuntime(sim::Simulator& sim, Network& network,
                           stats::Metrics* metrics)
    : sim_(sim), network_(network), metrics_(metrics) {}

void FaultRuntime::arm(sim::FaultPlan plan) {
  FOURBIT_ASSERT(injector_ == nullptr, "FaultRuntime armed twice");
  sim::FaultInjector::Hooks hooks;
  hooks.crash_node = [this](NodeId node) { on_crash(node); };
  hooks.reboot_node = [this](NodeId node) { on_reboot(node); };
  hooks.link_down = [this](NodeId a, NodeId b, double loss) {
    network_.channel().set_link_outage(a, b, loss);
  };
  hooks.link_up = [this](NodeId a, NodeId b) {
    network_.channel().clear_link_outage(a, b);
  };
  hooks.root_region = [this](std::size_t max_victims) {
    std::vector<NodeId> victims;
    for (const std::size_t i : network_.root_children()) {
      if (max_victims > 0 && victims.size() >= max_victims) break;
      victims.push_back(network_.node(i).id());
    }
    return victims;
  };
  injector_ = std::make_unique<sim::FaultInjector>(sim_, std::move(plan),
                                                   std::move(hooks));
  injector_->arm();
}

void FaultRuntime::on_crash(NodeId node) {
  const std::size_t i = network_.index_of(node);
  if (i >= network_.size()) return;
  pre_crash_sizes_[i] = network_.node(i).estimator().neighbors().size();
  network_.crash_node(i);
}

void FaultRuntime::on_reboot(NodeId node) {
  const std::size_t i = network_.index_of(node);
  if (i >= network_.size()) return;
  network_.reboot_node(i);
  const auto it = pre_crash_sizes_.find(i);
  // A node that knew nobody before the crash has nothing to refill.
  if (it == pre_crash_sizes_.end() || it->second == 0) return;
  poll_refill(i, it->second, sim_.now());
}

void FaultRuntime::poll_refill(std::size_t index, std::size_t pre_crash_size,
                               sim::Time rebooted_at) {
  if (network_.node(index).crashed()) return;  // crashed again; give up
  const std::size_t have =
      network_.node(index).estimator().neighbors().size();
  if (have * 2 >= pre_crash_size) {
    if (metrics_ != nullptr) {
      metrics_->on_table_refill(network_.node(index).id(),
                                sim_.now() - rebooted_at);
    }
    return;
  }
  sim_.schedule_in(sim::Duration::from_seconds(2.0),
                   [this, index, pre_crash_size, rebooted_at] {
                     poll_refill(index, pre_crash_size, rebooted_at);
                   });
}

}  // namespace fourbit::runner
