// Live campaign observability: the `fourbit.status/1` snapshot record
// and the accumulator behind it.
//
// A StatusSnapshot is a point-in-time picture of a running campaign:
// trial lifecycle counts (done/failed/retried/in-flight), throughput and
// ETA, one row per worker/host source with its lease state and health,
// and the merged telemetry registry (counters summed, gauges last-wins,
// histograms merged bin-wise). Workers serialize snapshots over the FW
// pipe (WorkerRecordKind::kStatus), host agents over the FT control
// socket (ControlKind::kStatus); the coordinator merges them and
// publishes the result via `--status-json` (write-temp-then-rename, so
// the file is always one complete JSON object) and the live ticker.
//
// Everything here is strictly off-band: snapshots never touch stdout,
// CampaignReport, or `--journal` files, so clean-run bytes are identical
// with or without status enabled.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/telemetry.hpp"

namespace fourbit::runner {

inline constexpr std::string_view kStatusSchema = "fourbit.status/1";

/// One contributing process/session in a merged snapshot.
struct StatusSource {
  enum class Kind : std::uint8_t { kLocal = 0, kWorker = 1, kHost = 2 };

  std::string name;  // "local", "w3", "127.0.0.1:19731"
  Kind kind = Kind::kLocal;
  bool alive = true;
  bool retired = false;     // crash-loop quarantined (hosts)
  std::uint64_t done = 0;   // trials this source finished cleanly
  std::uint64_t failed = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t losses = 0;     // session deaths / respawns of this source
  std::uint64_t fruitless = 0;  // consecutive fruitless sessions (hosts)
  std::string lease;            // current lease span, "" when idle
};

struct StatusCounter {
  std::string component;
  std::string name;
  std::uint64_t value = 0;
};
struct StatusGauge {
  std::string component;
  std::string name;
  double value = 0.0;
};
struct StatusHistogram {
  std::string component;
  std::string name;
  sim::Histogram hist;
};

struct StatusSnapshot {
  std::uint64_t seq = 0;  // per-writer, strictly increasing
  std::uint64_t total = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t retried = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t replayed = 0;  // journal replays folded into `done`
  std::uint64_t hard_crashes = 0;
  std::uint64_t worker_respawns = 0;
  std::uint64_t host_losses = 0;
  std::uint64_t lease_reassignments = 0;
  double elapsed_s = 0.0;
  double trials_per_s = 0.0;
  double eta_s = 0.0;  // < 0 = unknown (no completions yet)
  std::vector<StatusSource> sources;
  std::vector<StatusCounter> counters;
  std::vector<StatusGauge> gauges;
  std::vector<StatusHistogram> histograms;
};

/// Snapshot payload codec (ByteWriter/ByteReader, big-endian, histogram
/// bins run-compressed). The bytes travel inside existing CRC-framed
/// records — FW kStatus `what` and FT kStatus `text` — so framing and
/// corruption latching are inherited. decode returns nullopt on any
/// malformed payload (bad version, oversized tables, truncation).
[[nodiscard]] std::vector<std::uint8_t> encode_status_snapshot(
    const StatusSnapshot& snapshot);
[[nodiscard]] std::optional<StatusSnapshot> decode_status_snapshot(
    std::span<const std::uint8_t> payload);

/// Renders one `fourbit.status/1` JSON object (single line, trailing
/// newline included) with histogram percentiles precomputed.
[[nodiscard]] std::string status_json(const StatusSnapshot& snapshot);

/// Write-temp-then-rename publisher: a reader polling `path` observes
/// either the previous complete snapshot or this one, never a torn mix.
bool write_status_file(const std::string& path, const std::string& json);

/// Folds `part`'s registry metrics into `into` (counters summed, gauges
/// last-wins, histograms merged). Lifecycle counts and sources are NOT
/// touched: the caller owns those.
void merge_status_metrics(StatusSnapshot& into, const StatusSnapshot& part);

/// Stamps sequencing and timing onto an assembled snapshot: trials_per_s
/// counts only fresh completions (journal replays excluded), eta_s
/// extrapolates the remainder at that rate (-1 until a rate exists).
void stamp_status(StatusSnapshot& snapshot, std::uint64_t seq,
                  double elapsed_s, std::uint64_t total);

/// Fires `tick` every interval_ms on a background thread, plus once at
/// destruction so the last published snapshot is the settled end state.
/// Used where no supervision loop exists to piggyback on (the local
/// supervised path, in-process host leases); `tick` must be safe
/// against concurrent trial threads — StatusBoard is.
class StatusPublisher {
 public:
  StatusPublisher(std::uint64_t interval_ms, std::function<void()> tick);
  ~StatusPublisher();
  StatusPublisher(const StatusPublisher&) = delete;
  StatusPublisher& operator=(const StatusPublisher&) = delete;

 private:
  std::function<void()> tick_;
  std::uint64_t interval_ms_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Thread-safe accumulator fed by trial threads on the side that runs
/// trials (local supervisor, worker process, host agent). Trials push
/// their whole telemetry registry periodically (the flush-hook cadence)
/// and once at settle; the board turns repeated pushes into deltas keyed
/// by (trial, component, name) so the aggregate counts each increment
/// exactly once, aggregated across nodes and trials.
class StatusBoard {
 public:
  // ---- trial lifecycle (supervisor thread / worker threads) ----------
  void trial_started(std::uint64_t trial);
  /// A failed attempt about to be retried: per-trial delta state resets
  /// (the retry's registry restarts from zero).
  void attempt_reset(std::uint64_t trial);
  void trial_settled(std::uint64_t trial, bool failed,
                     std::uint64_t wall_ms);
  void add_replayed(std::uint64_t n);

  // ---- registry feed (trial threads, mid-trial + at settle) ----------
  void publish_registry(std::uint64_t trial,
                        const sim::TelemetryContext& telemetry);

  /// Permanently folds a remote source's last snapshot metrics into this
  /// board (used when a worker/host session dies: its partial registry
  /// contribution survives the respawn, keeping merged counters
  /// monotonic).
  void absorb_metrics(const StatusSnapshot& snapshot);

  /// Records one sample into a board-level histogram (e.g. the
  /// coordinator's "runner"/"trial_wall_ms").
  void record_histogram(const std::string& component,
                        const std::string& name, std::uint64_t value);

  // ---- snapshot assembly ---------------------------------------------
  /// Fills lifecycle counts and sorted metric tables into `out`
  /// (deterministic order: std::map iteration). Leaves seq, total,
  /// timing, and sources for the caller.
  void fill_snapshot(StatusSnapshot& out) const;

 private:
  using Key = std::pair<std::string, std::string>;  // (component, name)

  mutable std::mutex mutex_;
  std::map<Key, std::uint64_t> counters_;
  std::map<Key, double> gauges_;
  std::map<Key, sim::Histogram> histograms_;
  // Per-live-trial last-seen registry values for delta computation.
  std::unordered_map<std::uint64_t, std::map<Key, std::uint64_t>>
      trial_counter_seen_;
  std::unordered_map<std::uint64_t, std::map<Key, sim::Histogram>>
      trial_hist_seen_;
  std::uint64_t done_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retried_ = 0;
  std::uint64_t in_flight_ = 0;
  std::uint64_t replayed_ = 0;
};

}  // namespace fourbit::runner
