// Runner-side fault harness: turns a compact FaultSpec into a seeded,
// deterministic sim::FaultPlan, and binds sim::FaultInjector hooks to a
// concrete Network (crash = stack wipe + receiver off; outage = forced
// loss in the channel). Also watches rebooted nodes and reports how long
// their neighbor table takes to refill.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "runner/network.hpp"
#include "sim/fault.hpp"
#include "sim/time.hpp"
#include "stats/metrics.hpp"
#include "topology/topology.hpp"

namespace fourbit::runner {

/// What faults a trial should suffer. The concrete victims, partners and
/// times are derived deterministically from (spec, topology, seed), so
/// the same trial always replays the same damage.
struct FaultSpec {
  /// Distinct random non-root nodes crash once each.
  std::size_t node_crashes = 0;
  /// Downtime before each crashed node reboots (zero = stays down).
  sim::Duration crash_downtime = sim::Duration::from_seconds(120.0);

  /// Random short links (a node and its nearest neighbor) black out.
  std::size_t link_outages = 0;
  sim::Duration outage_duration = sim::Duration::from_seconds(60.0);
  /// Forced loss probability during an outage (1.0 = total blackout).
  double outage_loss = 1.0;

  /// Scripted scenario: the root's current first-hop children all crash
  /// at once (victims resolved at fire time, once routing has shaped the
  /// tree), rebooting after `crash_downtime`.
  bool root_region_crash = false;
  std::size_t root_region_max_victims = 0;  // 0 = every first-hop child

  /// Fault times are drawn uniformly in [window_start, window_end). The
  /// window should start after the boot stagger so faults hit a formed
  /// network, and end early enough to observe recovery.
  sim::Time window_start = sim::Time::from_us(8LL * 60 * 1'000'000);
  sim::Time window_end = sim::Time::from_us(15LL * 60 * 1'000'000);

  [[nodiscard]] bool enabled() const {
    return node_crashes > 0 || link_outages > 0 || root_region_crash;
  }
};

/// Expands the spec into a concrete schedule, sorted by fire time.
[[nodiscard]] sim::FaultPlan build_fault_plan(const FaultSpec& spec,
                                              const topology::Topology& topo,
                                              std::uint64_t seed);

/// Registers every plan event's damage interval as an outage window in
/// the metrics (a permanent crash extends to `run_end`). Must run before
/// traffic starts so every generated packet can be phase-classified.
void register_outage_windows(const sim::FaultPlan& plan,
                             stats::Metrics& metrics, sim::Time run_end);

/// Owns a FaultInjector wired to a Network. Keep it alive for the whole
/// run; construct after the network, arm before (or as) the sim runs.
class FaultRuntime {
 public:
  FaultRuntime(sim::Simulator& sim, Network& network,
               stats::Metrics* metrics);

  /// Schedules the plan. Call at most once.
  void arm(sim::FaultPlan plan);

  [[nodiscard]] const sim::FaultInjector* injector() const {
    return injector_.get();
  }

 private:
  void on_crash(NodeId node);
  void on_reboot(NodeId node);
  /// Polls a rebooted node's neighbor table every couple of seconds
  /// until it regains half its pre-crash size, then reports the delay.
  void poll_refill(std::size_t index, std::size_t pre_crash_size,
                   sim::Time rebooted_at);

  sim::Simulator& sim_;
  Network& network_;
  stats::Metrics* metrics_;
  std::unique_ptr<sim::FaultInjector> injector_;
  /// Neighbor-table size at crash time, per node index (the refill
  /// target after the matching reboot).
  std::unordered_map<std::size_t, std::size_t> pre_crash_sizes_;
};

}  // namespace fourbit::runner
