#include "runner/dispatch.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "runner/journal.hpp"
#include "runner/transport.hpp"
#include "runner/worker.hpp"

namespace fourbit::runner {
namespace {

using Clock = std::chrono::steady_clock;

// ---- coordinator ------------------------------------------------------

struct HostSlot {
  std::size_t index = 0;  // position on the --hosts list
  HostEndpoint addr;
  int fd = -1;
  bool hello = false;  // host identified itself as a fourbit agent
  TransportParser parser;

  std::uint32_t lease_id = 0;        // outstanding lease (0 = none)
  std::vector<std::size_t> lease;    // trial indices granted
  std::set<std::size_t> in_flight;   // kTrialStart seen, not settled
  std::map<std::size_t, Clock::time_point> started_at;

  Clock::time_point last_heard{};
  std::uint32_t last_retried_total = 0;
  bool progress_this_session = false;
  /// Consecutive fruitless outcomes: failed connects and sessions that
  /// died without a single trial-progress record.
  std::size_t fruitless = 0;
  Clock::time_point reconnect_at{};
  bool retired = false;
  /// Session deaths charged to this host (its share of host_losses).
  std::size_t losses = 0;
  /// Per-host health ledger across the whole campaign: results this
  /// host delivered, and terminal soft failures it reported.
  std::uint64_t done_here = 0;
  std::uint64_t failed_here = 0;
  /// Latest fourbit.status/1 snapshot forwarded over FT; folded into
  /// the coordinator board when the session dies so merged counters
  /// stay monotonic across reconnects.
  std::optional<StatusSnapshot> status;

  [[nodiscard]] std::string name() const {
    return addr.host + ":" + std::to_string(addr.port);
  }
};

}  // namespace

CampaignReport run_distributed(const std::vector<ExperimentConfig>& trials,
                               const DispatchOptions& options) {
  namespace fs = std::filesystem;
  ignore_sigpipe();

  CampaignReport report;
  report.results.resize(trials.size());
  report.completed.assign(trials.size(), 0);
  if (trials.empty()) return report;
  const std::uint64_t journal_failures_before = TrialJournal::write_failures();

  const bool user_journal = !options.supervisor.journal_path.empty();
  const std::string stem = options.supervisor.journal_path;

  std::vector<std::uint8_t> failed_bit(trials.size(), 0);
  std::vector<std::uint8_t> main_has(trials.size(), 0);

  // Resume, stage 1: the main journal (prior completed campaigns /
  // compacted shards). Seed mismatches belong to another campaign.
  if (user_journal) {
    auto loaded = TrialJournal::load(stem);
    report.journal_torn = loaded.torn;
    for (auto& entry : loaded.entries) {
      if (entry.trial_index >= trials.size()) continue;
      if (entry.seed != trials[entry.trial_index].seed) continue;
      main_has[entry.trial_index] = 1;
      if (report.completed[entry.trial_index]) continue;
      report.results[entry.trial_index] = std::move(entry.result);
      report.completed[entry.trial_index] = 1;
      ++report.replayed;
    }
    // Stage 2: shards a SIGKILLed coordinator left behind — results
    // hosts had already streamed survived it; pick them up.
    auto merged = TrialJournal::merge_shards(stem);
    report.journal_torn = report.journal_torn || merged.torn;
    for (auto& entry : merged.entries) {
      if (entry.trial_index >= trials.size()) continue;
      if (entry.seed != trials[entry.trial_index].seed) continue;
      if (report.completed[entry.trial_index]) continue;
      report.results[entry.trial_index] = std::move(entry.result);
      report.completed[entry.trial_index] = 1;
      ++report.replayed;
    }
  }

  // The trials this run owes: everything unsettled, or the subset.
  std::vector<std::size_t> owed;
  if (options.supervisor.subset.empty()) {
    for (std::size_t i = 0; i < trials.size(); ++i) {
      if (!report.completed[i]) owed.push_back(i);
    }
  } else {
    for (const std::size_t i : options.supervisor.subset) {
      if (i < trials.size() && !report.completed[i]) owed.push_back(i);
    }
  }

  const auto settled = [&](std::size_t i) {
    return report.completed[i] != 0 || failed_bit[i] != 0;
  };

  std::map<std::size_t, std::size_t> crash_counts;
  std::size_t progress_done = static_cast<std::size_t>(report.replayed);
  std::size_t failed_count = 0;

  const auto emit_progress = [&](std::size_t index,
                                 const ExperimentResult* result,
                                 const TrialFailure* failure) {
    ++progress_done;
    if (failure != nullptr) ++failed_count;
    if (options.supervisor.on_trial_done) {
      TrialProgress p;
      p.trial_index = index;
      p.completed = progress_done;
      p.total = trials.size();
      p.failed = failed_count;
      p.retried = static_cast<std::size_t>(report.retries);
      p.config = &trials[index];
      p.result = result;
      p.failure = failure;
      p.host_losses = static_cast<std::size_t>(report.host_losses);
      p.lease_reassignments =
          static_cast<std::size_t>(report.lease_reassignments);
      options.supervisor.on_trial_done(p);
    }
  };

  // Every result accepted over the wire goes straight to a
  // coordinator-side shard: a host's work is durable the moment the
  // coordinator has it, so SIGKILLing the coordinator loses nothing.
  std::optional<TrialJournal> remote_shard;
  const auto journal_result = [&](std::size_t i) {
    if (!user_journal) return;
    if (!remote_shard) {
      remote_shard =
          TrialJournal::open_append(TrialJournal::shard_path(stem,
                                                             kRemoteShardId));
    }
    remote_shard->append(static_cast<std::uint32_t>(i), trials[i].seed,
                         report.results[i]);
  };

  const auto fail_hard = [&](std::size_t index, const std::string& what) {
    if (settled(index)) return;
    failed_bit[index] = 1;
    TrialFailure failure;
    failure.kind = FailureKind::kHardCrash;
    failure.what = what;
    failure.trial_index = index;
    failure.seed = trials[index].seed;
    failure.attempt = std::max<std::size_t>(1, crash_counts[index]);
    report.failures.push_back(std::move(failure));
    emit_progress(index, nullptr, &report.failures.back());
  };

  const auto fail_timeout = [&](std::size_t index) {
    if (settled(index)) return;
    failed_bit[index] = 1;
    ++report.attempts;
    TrialFailure failure;
    failure.kind = FailureKind::kTimeout;
    failure.what = "trial exceeded the coordinator watchdog (" +
                   std::to_string(options.trial_timeout_ms) +
                   " ms in flight); its host session was dropped";
    failure.trial_index = index;
    failure.seed = trials[index].seed;
    failure.attempt = 1;
    report.failures.push_back(std::move(failure));
    emit_progress(index, nullptr, &report.failures.back());
  };

  std::vector<HostSlot> hosts(options.hosts.size());
  for (std::size_t k = 0; k < hosts.size(); ++k) {
    hosts[k].index = k;
    hosts[k].addr = options.hosts[k];
  }
  std::deque<std::size_t> unleased(owed.begin(), owed.end());
  std::uint32_t lease_counter = 0;

  // Backoff jitter seed: campaign-stable but host-distinct, so a fleet
  // of lost hosts never reconnects in lockstep.
  const auto backoff_seed = [&](const HostSlot& h) {
    return trials.front().seed + 0x9E3779B97F4A7C15ULL * (h.index + 1);
  };

  // Merged-status accumulator: metrics absorbed from dead host
  // sessions; live sessions contribute their latest forwarded snapshot
  // at publish time, and the local fallback feeds it directly.
  StatusBoard status_board;

  const auto session_death = [&](HostSlot& h, const std::string& why) {
    if (h.fd < 0) return;
    ::close(h.fd);
    h.fd = -1;
    h.hello = false;
    h.parser = TransportParser{};
    ++report.host_losses;
    ++h.losses;
    // The dead session's last forwarded metrics move into the
    // coordinator's board so the merged counters never regress when the
    // host reconnects with a fresh registry.
    if (h.status) {
      status_board.absorb_metrics(*h.status);
      h.status.reset();
    }
    // The trials in flight when the host died are hard-crash suspects,
    // exactly like trials in flight during a worker death: count the
    // crash against each, quarantine past max_trial_crashes.
    for (const std::size_t i : h.in_flight) {
      if (settled(i)) continue;
      ++report.attempts;
      const std::size_t crashes = ++crash_counts[i];
      if (crashes >= options.max_trial_crashes) {
        fail_hard(i, "host session lost while the trial was in flight (" +
                         why + "); trial survived " +
                         std::to_string(crashes) +
                         " host losses across the fleet (last host " +
                         h.name() + ")");
      }
    }
    h.in_flight.clear();
    h.started_at.clear();
    // Whatever the lease still owes goes back to the pool for another
    // host (or the local fallback).
    bool returned = false;
    for (const std::size_t i : h.lease) {
      if (!settled(i)) {
        unleased.push_back(i);
        returned = true;
      }
    }
    if (returned) ++report.lease_reassignments;
    h.lease.clear();
    h.lease_id = 0;
    if (h.progress_this_session) {
      h.fruitless = 0;
    } else {
      ++h.fruitless;
    }
    h.progress_this_session = false;
    if (h.fruitless >= options.max_host_failures) {
      h.retired = true;
      std::fprintf(stderr,
                   "fourbit-dispatch: retiring host %s after %zu fruitless "
                   "sessions (%s)\n",
                   h.name().c_str(), h.fruitless, why.c_str());
      return;
    }
    h.reconnect_at =
        Clock::now() +
        std::chrono::milliseconds(options.reconnect_backoff.delay_ms(
            std::max<std::size_t>(1, h.fruitless), backoff_seed(h)));
  };

  const auto lease_size = [&](std::size_t live_hosts) {
    if (options.lease_trials > 0) return options.lease_trials;
    const std::size_t spread =
        unleased.size() / (2 * std::max<std::size_t>(1, live_hosts)) + 1;
    return std::min<std::size_t>(32, spread);
  };

  const auto send_to = [&](HostSlot& h, const std::vector<std::uint8_t>& f) {
    if (h.fd < 0) return false;
    if (write_all_fd(h.fd, f.data(), f.size())) return true;
    session_death(h, "send failed");
    return false;
  };

  const auto grant = [&](HostSlot& h, std::size_t live_hosts) {
    std::vector<std::size_t> lease;
    const std::size_t want = lease_size(live_hosts);
    while (!unleased.empty() && lease.size() < want) {
      const std::size_t i = unleased.front();
      unleased.pop_front();
      if (!settled(i)) lease.push_back(i);
    }
    if (lease.empty()) return;
    h.lease = lease;
    h.lease_id = ++lease_counter;
    ControlMessage m;
    m.kind = ControlKind::kLeaseGrant;
    m.lease = h.lease_id;
    m.text = format_index_spans(lease);
    if (!send_to(h, encode_control_message(m))) return;  // lease returned
  };

  const auto handle_frame = [&](HostSlot& h, TransportFrame frame) -> bool {
    switch (frame.type) {
      case TransportFrame::Type::kStatus: {
        WorkerRecord& rec = frame.record;
        const std::size_t index = rec.trial_index;
        switch (rec.kind) {
          case WorkerRecordKind::kHello:
            h.hello = true;
            return true;
          case WorkerRecordKind::kHeartbeat:
          case WorkerRecordKind::kBye:
            return true;
          case WorkerRecordKind::kStatus:
            // Hosts stream status as ControlKind::kStatus; an FW-framed
            // status record counts as liveness only, never progress.
            return true;
          case WorkerRecordKind::kTrialStart:
            // Liveness, not progress: only settling records clear the
            // fruitless counter, so a host that starts trials but never
            // finishes one still retires.
            if (index < trials.size() && !settled(index)) {
              h.in_flight.insert(index);
              h.started_at[index] = Clock::now();
            }
            return true;
          case WorkerRecordKind::kTrialDone:
          case WorkerRecordKind::kTrialFailed:
            break;
        }
        h.progress_this_session = true;
        h.fruitless = 0;
        h.in_flight.erase(index);
        h.started_at.erase(index);
        if (rec.retried_total >= h.last_retried_total) {
          const std::uint32_t delta = rec.retried_total - h.last_retried_total;
          report.retries += delta;
          report.attempts += delta;  // every retry is one more invocation
          h.last_retried_total = rec.retried_total;
        }
        if (index >= trials.size() || settled(index)) return true;
        // kTrialDone is liveness only: completion is settled by the
        // result frame that follows (the wire twin of "results never
        // ride the pipe; they ride the journal").
        if (rec.kind == WorkerRecordKind::kTrialDone) return true;
        ++report.attempts;
        failed_bit[index] = 1;
        ++h.failed_here;
        TrialFailure failure;
        failure.kind = rec.failure_kind;
        failure.what = std::move(rec.what);
        failure.trial_index = index;
        failure.seed = rec.seed;
        failure.attempt = rec.attempt;
        failure.flight = std::move(rec.flight);
        report.failures.push_back(std::move(failure));
        emit_progress(index, nullptr, &report.failures.back());
        return true;
      }
      case TransportFrame::Type::kResult: {
        JournalEntry& entry = frame.entry;
        const std::size_t index = entry.trial_index;
        if (index >= trials.size()) return true;          // foreign index
        if (entry.seed != trials[index].seed) return true;  // foreign seed
        if (failed_bit[index]) return true;  // settled as failed: ignore
        h.progress_this_session = true;
        h.fruitless = 0;
        if (report.completed[index]) {
          // Double-completion after a spurious lease expiry: last
          // record wins, the shard-merge rule applied live.
          report.results[index] = std::move(entry.result);
          return true;
        }
        report.results[index] = std::move(entry.result);
        report.completed[index] = 1;
        ++report.attempts;
        ++h.done_here;
        journal_result(index);
        emit_progress(index, &report.results[index], nullptr);
        return true;
      }
      case TransportFrame::Type::kControl: {
        const ControlMessage& m = frame.control;
        if (m.kind == ControlKind::kStatus) {
          // Off-band observability: refresh this host's contribution to
          // the merged snapshot. Liveness only — never progress, never
          // trial accounting. Undecodable payloads are dropped (the CRC
          // passed; this is version skew, not line noise).
          auto snap = decode_status_snapshot(std::span<const std::uint8_t>{
              reinterpret_cast<const std::uint8_t*>(m.text.data()),
              m.text.size()});
          if (snap) h.status = std::move(*snap);
          return true;
        }
        if (m.kind != ControlKind::kLeaseComplete) {
          // Only hosts send kLeaseComplete; a grant or shutdown coming
          // BACK is a protocol violation — the stream is garbage.
          return false;
        }
        if (m.lease != h.lease_id) return true;  // stale lease: ignore
        bool returned = false;
        bool any_settled = false;
        for (const std::size_t i : h.lease) {
          if (settled(i)) {
            any_settled = true;
          } else {
            unleased.push_back(i);
            returned = true;
          }
        }
        if (returned) ++report.lease_reassignments;
        h.lease.clear();
        h.lease_id = 0;
        if (!any_settled) {
          // A lease "completed" with nothing settled means the host is
          // running a different trial list (argv drift) or dropping
          // every result. Re-granting forever would wedge the campaign;
          // fruitless-session accounting retires it instead.
          session_death(h, "lease completed without settling any trial");
        }
        return true;
      }
    }
    return true;
  };

  // Merged fourbit.status/1 publication: coordinator lifecycle truth,
  // per-host lease state/health, absorbed dead-session metrics, and
  // every live host's latest forwarded snapshot. The fallback counters
  // are atomics because during the degradation pass a StatusPublisher
  // thread reads them while run_supervised's callback writes them.
  const bool status_publishing =
      !options.status_path.empty() || static_cast<bool>(options.on_status);
  const auto campaign_start = Clock::now();
  std::uint64_t status_seq = 0;
  auto last_status_publish = campaign_start;
  std::atomic<std::size_t> fallback_settled{0};
  std::atomic<std::size_t> fallback_failed{0};
  std::atomic<std::uint64_t> fallback_retried{0};
  const auto publish_status = [&] {
    StatusSnapshot snap;
    status_board.fill_snapshot(snap);
    const std::uint64_t local_in_flight = snap.in_flight;
    const std::uint64_t all_settled_count =
        progress_done + fallback_settled.load(std::memory_order_relaxed);
    const std::uint64_t all_failed =
        failed_count + fallback_failed.load(std::memory_order_relaxed);
    snap.done = all_settled_count - all_failed;
    snap.failed = all_failed;
    snap.retried =
        report.retries + fallback_retried.load(std::memory_order_relaxed);
    snap.replayed = report.replayed;
    snap.host_losses = report.host_losses;
    snap.lease_reassignments = report.lease_reassignments;
    std::uint64_t wire_in_flight = 0;
    for (const auto& h : hosts) wire_in_flight += h.in_flight.size();
    snap.in_flight = local_in_flight + wire_in_flight;
    for (const auto& h : hosts) {
      StatusSource src;
      src.name = h.name();
      src.kind = StatusSource::Kind::kHost;
      src.alive = h.fd >= 0;
      src.retired = h.retired;
      src.done = h.done_here;
      src.failed = h.failed_here;
      src.in_flight = h.in_flight.size();
      src.losses = h.losses;
      src.fruitless = h.fruitless;
      src.lease = format_index_spans(h.lease);
      if (h.status) merge_status_metrics(snap, *h.status);
      snap.sources.push_back(std::move(src));
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - campaign_start).count();
    stamp_status(snap, ++status_seq, elapsed, trials.size());
    if (!options.status_path.empty()) {
      write_status_file(options.status_path, status_json(snap));
    }
    if (options.on_status) options.on_status(snap);
  };

  // ---- the dispatch loop ----
  while (true) {
    const auto now = Clock::now();

    // Publish at the top of the sweep so the file stays fresh even
    // while every host is down and the loop is just waiting on backoff.
    if (status_publishing &&
        now - last_status_publish >=
            std::chrono::milliseconds(std::max<std::uint64_t>(
                10, options.status_interval_ms))) {
      last_status_publish = now;
      publish_status();
    }

    bool all_settled = true;
    for (const std::size_t i : owed) {
      if (!settled(i)) {
        all_settled = false;
        break;
      }
    }
    if (all_settled) {
      ControlMessage bye;
      bye.kind = ControlKind::kShutdown;
      const auto frame = encode_control_message(bye);
      for (auto& h : hosts) {
        if (h.fd < 0) continue;
        write_all_fd(h.fd, frame.data(), frame.size());
        ::close(h.fd);
        h.fd = -1;
      }
      break;
    }

    // Reconnect lost hosts whose backoff has elapsed.
    for (auto& h : hosts) {
      if (h.retired || h.fd >= 0 || now < h.reconnect_at) continue;
      const int fd =
          connect_to_host(h.addr.host, h.addr.port, options.connect_timeout_ms);
      if (fd < 0) {
        ++h.fruitless;
        if (h.fruitless >= options.max_host_failures) {
          h.retired = true;
          std::fprintf(stderr,
                       "fourbit-dispatch: retiring host %s after %zu failed "
                       "connects\n",
                       h.name().c_str(), h.fruitless);
          continue;
        }
        h.reconnect_at =
            Clock::now() +
            std::chrono::milliseconds(options.reconnect_backoff.delay_ms(
                std::max<std::size_t>(1, h.fruitless), backoff_seed(h)));
        continue;
      }
      h.fd = fd;
      h.hello = false;
      h.parser = TransportParser{};
      h.last_heard = Clock::now();
      h.last_retried_total = 0;
      h.progress_this_session = false;
    }

    std::size_t live = 0;
    bool all_retired = true;
    for (const auto& h : hosts) {
      if (h.fd >= 0) ++live;
      if (!h.retired) all_retired = false;
    }
    if (live == 0) {
      if (all_retired) break;  // every host is gone: local fallback
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }

    // Grant work to idle identified hosts.
    for (auto& h : hosts) {
      if (h.fd >= 0 && h.hello && h.lease.empty() && !unleased.empty()) {
        grant(h, live);
      }
    }

    // Poll and drain.
    std::vector<pollfd> pfds;
    std::vector<HostSlot*> owners;
    for (auto& h : hosts) {
      if (h.fd < 0) continue;
      pfds.push_back(pollfd{h.fd, POLLIN, 0});
      owners.push_back(&h);
    }
    if (pfds.empty()) continue;
    poll_retry(pfds.data(), pfds.size(), 50);

    for (std::size_t x = 0; x < pfds.size(); ++x) {
      HostSlot& h = *owners[x];
      if (h.fd < 0) continue;  // killed earlier this sweep
      if ((pfds[x].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      bool dead = false;
      std::string why;
      while (h.fd >= 0) {
        std::uint8_t buf[65536];
        ssize_t n;
        do {
          n = ::read(h.fd, buf, sizeof buf);
        } while (n < 0 && errno == EINTR);
        if (n > 0) {
          h.last_heard = Clock::now();
          h.parser.feed(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        dead = true;
        why = n == 0 ? "disconnected" : "read failed";
        break;
      }
      while (h.fd >= 0) {
        auto frame = h.parser.next();
        if (!frame) break;
        if (!handle_frame(h, std::move(*frame))) {
          dead = true;
          why = "protocol violation";
          break;
        }
      }
      if (h.fd >= 0 && h.parser.corrupt()) {
        dead = true;
        why = "corrupt stream";
      }
      if (dead && h.fd >= 0) session_death(h, why);
    }

    // Deadlines: heartbeat silence and (when armed) per-trial watchdog.
    const auto deadline_now = Clock::now();
    for (auto& h : hosts) {
      if (h.fd < 0) continue;
      const auto silent_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline_now -
                                                                h.last_heard)
              .count();
      if (silent_ms > static_cast<std::int64_t>(options.heartbeat_timeout_ms)) {
        session_death(h, "heartbeat silence (" + std::to_string(silent_ms) +
                             " ms)");
        continue;
      }
      if (options.trial_timeout_ms == 0) continue;
      std::vector<std::size_t> overdue;
      for (const auto& [i, t0] : h.started_at) {
        const auto in_flight_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline_now -
                                                                  t0)
                .count();
        if (in_flight_ms >
            static_cast<std::int64_t>(options.trial_timeout_ms)) {
          overdue.push_back(i);
        }
      }
      if (!overdue.empty()) {
        for (const std::size_t i : overdue) fail_timeout(i);
        session_death(h, "trial-timeout");
      }
    }
  }

  // ---- degradation floor: finish whatever is left locally ----
  std::vector<std::size_t> remaining;
  for (const std::size_t i : owed) {
    if (!settled(i)) remaining.push_back(i);
  }
  if (!remaining.empty()) {
    std::fprintf(stderr,
                 "fourbit-dispatch: every host is gone; finishing %zu "
                 "remaining trials locally\n",
                 remaining.size());
    SupervisorOptions local = options.supervisor;
    local.subset = remaining;
    local.journal_path =
        user_journal ? TrialJournal::shard_path(stem, kLocalShardId) : "";
    const std::size_t base_done = progress_done;
    const std::size_t base_failed = failed_count;
    const std::uint64_t base_retries = report.retries;
    const auto inner = options.supervisor.on_trial_done;
    local.on_trial_done = [&, inner](const TrialProgress& p) {
      fallback_settled.store(p.completed, std::memory_order_relaxed);
      fallback_failed.store(p.failed, std::memory_order_relaxed);
      fallback_retried.store(p.retried, std::memory_order_relaxed);
      if (!inner) return;
      TrialProgress q = p;  // re-base counters onto the whole campaign
      q.completed = base_done + p.completed;
      q.failed = base_failed + p.failed;
      q.retried = static_cast<std::size_t>(base_retries) + p.retried;
      inner(q);
    };
    // The fallback supervisor feeds the same board the wire fed, and a
    // publisher thread keeps the file fresh while run_supervised blocks.
    local.status = &status_board;
    std::optional<StatusPublisher> fallback_publisher;
    if (status_publishing) {
      fallback_publisher.emplace(options.status_interval_ms, publish_status);
    }
    CampaignReport fb = run_supervised(trials, local);
    fallback_publisher.reset();  // final tick before the report merge
    for (const std::size_t i : remaining) {
      if (fb.completed[i]) {
        report.results[i] = std::move(fb.results[i]);
        report.completed[i] = 1;
      }
    }
    for (auto& f : fb.failures) {
      failed_bit[f.trial_index] = 1;
      report.failures.push_back(std::move(f));
    }
    report.attempts += fb.attempts;
    report.retries += fb.retries;
    report.journal_torn = report.journal_torn || fb.journal_torn;
  }

  if (user_journal) {
    remote_shard.reset();  // flush + close before the merge reads it
    // Late double-completions may sit in the shards; fold them in with
    // the same last-wins rule, then compact everything into the main
    // journal IN INDEX ORDER — the byte order a single-process
    // --threads run would have produced — and delete the shards.
    auto merged = TrialJournal::merge_shards(stem);
    report.journal_torn = report.journal_torn || merged.torn;
    for (auto& entry : merged.entries) {
      if (entry.trial_index >= trials.size()) continue;
      if (entry.seed != trials[entry.trial_index].seed) continue;
      if (failed_bit[entry.trial_index]) continue;
      report.results[entry.trial_index] = std::move(entry.result);
      report.completed[entry.trial_index] = 1;
    }
    {
      auto out = TrialJournal::open_append(stem);
      for (std::size_t i = 0; i < trials.size(); ++i) {
        if (!report.completed[i] || main_has[i]) continue;
        out.append(static_cast<std::uint32_t>(i), trials[i].seed,
                   report.results[i]);
      }
    }
    const fs::path stem_path{stem};
    const fs::path dir = stem_path.has_parent_path() ? stem_path.parent_path()
                                                     : fs::path{"."};
    const std::string prefix = stem_path.filename().string() + ".w";
    std::error_code ec;
    for (const auto& dirent : fs::directory_iterator{dir, ec}) {
      const std::string name = dirent.path().filename().string();
      if (name.compare(0, prefix.size(), prefix) == 0) {
        fs::remove(dirent.path(), ec);
      }
    }
  }

  report.journal_write_failures =
      TrialJournal::write_failures() - journal_failures_before;
  // Settlement order is network scheduling; the report must not be.
  std::sort(report.failures.begin(), report.failures.end(),
            [](const TrialFailure& a, const TrialFailure& b) {
              return a.trial_index < b.trial_index;
            });
  // Per-host health ledger, in --hosts order (deterministic), for
  // describe() and post-mortems.
  for (const auto& h : hosts) {
    HostHealth health;
    health.name = h.name();
    health.completed = h.done_here;
    health.losses = h.losses;
    health.fruitless = h.fruitless;
    health.retired = h.retired;
    report.host_health.push_back(std::move(health));
  }
  // The last published snapshot is the settled end state — a poller
  // never ends the campaign staring at a mid-flight picture.
  if (status_publishing) publish_status();
  return report;
}

// ---- host agent -------------------------------------------------------

namespace {

/// Socket writer shared by the session thread and the heartbeat
/// thread: frames are written whole under a mutex, and the first
/// failed write latches the session dead (the coordinator is gone;
/// everything further is discarded).
class SessionWriter {
 public:
  explicit SessionWriter(int fd) : fd_(fd) {}

  bool send(const std::vector<std::uint8_t>& frame) {
    if (dead_.load(std::memory_order_relaxed)) return false;
    const std::lock_guard<std::mutex> lock{mutex_};
    if (dead_.load(std::memory_order_relaxed)) return false;
    if (!write_all_fd(fd_, frame.data(), frame.size())) {
      dead_.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  [[nodiscard]] bool dead() const {
    return dead_.load(std::memory_order_relaxed);
  }

 private:
  int fd_;
  std::mutex mutex_;
  std::atomic<bool> dead_{false};
};

void run_lease(const std::vector<ExperimentConfig>& trials,
               const CampaignCli& cli, const SupervisorOptions& base,
               SessionWriter& writer, const ControlMessage& grant,
               std::uint32_t& session_retries) {
  std::vector<std::size_t> subset;
  if (auto parsed = parse_index_spans(grant.text)) {
    for (const std::size_t i : *parsed) {
      if (i < trials.size()) subset.push_back(i);
    }
  }

  CampaignReport rep;
  std::set<std::size_t> streamed;
  if (!subset.empty()) {
    SupervisorOptions sopts = base;
    sopts.subset = subset;
    sopts.on_trial_start = [&](std::size_t index,
                               const ExperimentConfig& config) {
      WorkerRecord rec;
      rec.kind = WorkerRecordKind::kTrialStart;
      rec.worker = cli.worker_id;
      rec.trial_index = static_cast<std::uint32_t>(index);
      rec.seed = config.seed;
      writer.send(encode_worker_record(rec));
    };
    sopts.on_trial_done = [&](const TrialProgress& p) {
      WorkerRecord rec;
      rec.worker = cli.worker_id;
      rec.trial_index = static_cast<std::uint32_t>(p.trial_index);
      rec.seed = trials[p.trial_index].seed;
      rec.retried_total =
          session_retries + static_cast<std::uint32_t>(p.retried);
      if (p.failure != nullptr) {
        rec.kind = WorkerRecordKind::kTrialFailed;
        rec.failure_kind = p.failure->kind;
        rec.what = p.failure->what;
        rec.attempt = static_cast<std::uint32_t>(p.failure->attempt);
        rec.flight = p.failure->flight;
      } else {
        rec.kind = WorkerRecordKind::kTrialDone;
        rec.attempt = 1;
      }
      writer.send(encode_worker_record(rec));
      // In-process leases have the result right here: stream it now,
      // so a later trial crashing this agent cannot strand work the
      // coordinator could already have made durable.
      if (p.failure == nullptr && p.result != nullptr) {
        writer.send(encode_journal_record(
            {static_cast<std::uint32_t>(p.trial_index),
             trials[p.trial_index].seed, *p.result}));
        streamed.insert(p.trial_index);
      }
    };
    // Lease-local status flows back over FT as kStatus control frames;
    // the coordinator merges it into the campaign-wide snapshot. The
    // agent itself never writes a --status-json file.
    const std::uint32_t lease_id = grant.lease;
    const auto forward_status = [&writer,
                                 lease_id](const StatusSnapshot& snap) {
      ControlMessage m;
      m.kind = ControlKind::kStatus;
      m.lease = lease_id;
      const auto bytes = encode_status_snapshot(snap);
      m.text.assign(reinterpret_cast<const char*>(bytes.data()),
                    bytes.size());
      writer.send(encode_control_message(m));
    };
    if (cli.workers > 0) {
      // The lease rides the PR 7 worker pool: trial SIGSEGVs take down
      // a worker process, not this agent.
      MultiprocessOptions mp;
      mp.supervisor = sopts;
      mp.workers = cli.workers;
      mp.exec_argv = cli.exec_argv;
      mp.heartbeat_interval_ms = cli.worker_heartbeat_ms;
      mp.trial_timeout_ms =
          cli.max_trial_ms != 0 ? cli.max_trial_ms * 2 + 5000 : 0;
      mp.status_interval_ms = cli.status_interval_ms;
      mp.status_total = trials.size();
      mp.on_status = forward_status;
      rep = run_multiprocess(trials, mp);
    } else {
      StatusBoard board;
      sopts.status = &board;
      const auto lease_start = Clock::now();
      std::uint64_t seq = 0;
      StatusPublisher publisher{cli.status_interval_ms, [&] {
        StatusSnapshot snap;
        board.fill_snapshot(snap);
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - lease_start)
                .count();
        stamp_status(snap, ++seq, elapsed, trials.size());
        forward_status(snap);
      }};
      rep = run_supervised(trials, sopts);
    }
    session_retries += static_cast<std::uint32_t>(rep.retries);

    // Worker-pool leases (results ride shards, not the progress
    // callback) stream whatever was not already sent per-trial.
    for (const std::size_t i : subset) {
      if (!rep.completed[i] || streamed.count(i) != 0) continue;
      writer.send(encode_journal_record(
          {static_cast<std::uint32_t>(i), trials[i].seed, rep.results[i]}));
    }
  }

  ControlMessage done;
  done.kind = ControlKind::kLeaseComplete;
  done.lease = grant.lease;
  writer.send(encode_control_message(done));
}

/// One coordinator session: hello, heartbeats, leases until the
/// coordinator hangs up, shuts us down, or the stream goes bad.
void serve_session(int fd, const std::vector<ExperimentConfig>& trials,
                   const CampaignCli& cli, const SupervisorOptions& options) {
  SessionWriter writer{fd};
  {
    WorkerRecord hello;
    hello.kind = WorkerRecordKind::kHello;
    hello.worker = cli.worker_id;
    writer.send(encode_worker_record(hello));
  }

  std::atomic<bool> done{false};
  const std::uint64_t beat_ms = std::max<std::uint64_t>(
      50, cli.worker_heartbeat_ms != 0 ? cli.worker_heartbeat_ms : 250);
  std::thread heartbeat([&] {
    while (!done.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(beat_ms));
      if (done.load(std::memory_order_relaxed)) break;
      WorkerRecord beat;
      beat.kind = WorkerRecordKind::kHeartbeat;
      beat.worker = cli.worker_id;
      writer.send(encode_worker_record(beat));
    }
  });

  TransportParser parser;
  std::uint32_t session_retries = 0;
  bool hangup = false;
  while (!hangup && !writer.dead()) {
    pollfd pfd{fd, POLLIN, 0};
    const int polled = poll_retry(&pfd, 1, 500);
    if (polled < 0) break;
    if (polled == 0) continue;

    std::uint8_t buf[65536];
    ssize_t n;
    do {
      n = ::read(fd, buf, sizeof buf);
    } while (n < 0 && errno == EINTR);
    if (n == 0) break;  // coordinator hung up
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    parser.feed(buf, static_cast<std::size_t>(n));
    while (auto frame = parser.next()) {
      if (frame->type != TransportFrame::Type::kControl) {
        hangup = true;  // only control frames flow coordinator -> host
        break;
      }
      switch (frame->control.kind) {
        case ControlKind::kLeaseGrant:
          run_lease(trials, cli, options, writer, frame->control,
                    session_retries);
          break;
        case ControlKind::kShutdown:
          hangup = true;
          break;
        case ControlKind::kLeaseComplete:
        case ControlKind::kStatus:
          hangup = true;  // nonsense from a coordinator
          break;
      }
      if (hangup) break;
    }
    if (parser.corrupt()) break;
  }

  done.store(true, std::memory_order_relaxed);
  heartbeat.join();
}

}  // namespace

void run_host_agent(const std::vector<ExperimentConfig>& trials,
                    const CampaignCli& cli, SupervisorOptions options) {
  ignore_sigpipe();
  // The agent keeps no journal and runs no nested distribution:
  // results are durable on the coordinator the moment they land, and a
  // reassigned lease re-runs from scratch anyway (trials are pure).
  options.journal_path.clear();
  options.subset.clear();
  options.on_trial_done = nullptr;
  options.on_trial_start = nullptr;

  const auto listener =
      listen_on(static_cast<std::uint16_t>(std::max(0, cli.serve_port)));
  if (!listener) {
    std::fprintf(stderr, "fourbit-agent: cannot listen on port %d\n",
                 cli.serve_port);
    std::exit(1);
  }
  // The announce line is the agent's API for scripts and tests: an
  // ephemeral --serve 0 port is discoverable only here.
  std::fprintf(stderr, "fourbit-agent: listening on port %u\n",
               static_cast<unsigned>(listener->port));
  std::fflush(stderr);

  for (;;) {
    const int fd = accept_retry(listener->fd);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    serve_session(fd, trials, cli, options);
    ::close(fd);
  }
}

}  // namespace fourbit::runner
