// Parallel trial campaigns: fan independent experiments out across a
// thread pool.
//
// Every figure in the paper is a sweep — over seeds, TX power, profiles
// or table sizes — and every trial in such a sweep is an independent
// (config, seed) pair. A Campaign runs a list of ExperimentConfigs on N
// worker threads and returns results indexed exactly like the inputs, so
// the output is bit-identical regardless of thread count or completion
// order.
//
// Determinism contract (verified by tests/campaign_test.cpp): each trial
// constructs its OWN Simulator, Metrics, Rng tree and Network from its
// config alone; run_experiment shares no mutable state between trials.
// The only cross-thread state in the pool is the next-trial counter, the
// disjoint result slots, and the progress mutex. Telemetry is per-trial
// state too: every Simulator owns its own sim::TelemetryContext, and
// traced campaigns write one file per trial (supervisor.hpp), so tracing
// never couples workers.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "runner/experiment.hpp"
#include "stats/aggregate.hpp"

namespace fourbit::runner {

struct TrialFailure;  // supervisor.hpp

/// Progress report delivered after each trial completes. Callback
/// invocations are serialized (never concurrent), but arrive from worker
/// threads in completion order, which is not trial order.
struct TrialProgress {
  std::size_t trial_index = 0;  // index into the trial list
  std::size_t completed = 0;    // trials finished so far, incl. this one
                                // (failures and journal replays count)
  std::size_t total = 0;
  std::size_t failed = 0;       // terminal trial failures so far
  std::size_t retried = 0;      // retry attempts consumed so far
  const ExperimentConfig* config = nullptr;
  /// Null when this trial failed (supervised campaigns only).
  const ExperimentResult* result = nullptr;
  /// Set when this trial terminally failed (supervised campaigns only).
  const TrialFailure* failure = nullptr;
  /// Fleet health so far (distributed dispatch only; zero elsewhere).
  /// The TTY ticker surfaces these the moment they become nonzero.
  std::size_t host_losses = 0;
  std::size_t lease_reassignments = 0;
};

class Campaign {
 public:
  struct Options {
    /// Worker threads; 0 = one per hardware core.
    std::size_t threads = 0;
    /// Optional per-trial completion callback (see TrialProgress).
    std::function<void(const TrialProgress&)> on_trial_done;
  };

  /// Runs every trial across the pool. results[i] belongs to trials[i].
  [[nodiscard]] static std::vector<ExperimentResult> run(
      const std::vector<ExperimentConfig>& trials, const Options& options);
  [[nodiscard]] static std::vector<ExperimentResult> run(
      const std::vector<ExperimentConfig>& trials) {
    return run(trials, Options{});
  }

  /// Expands `base` into `n` trials with deterministically derived
  /// seeds: trial i gets seed = base.seed + i. The testbed is shared;
  /// sweeps that also re-sample node placement per seed should build
  /// their configs explicitly instead.
  [[nodiscard]] static std::vector<ExperimentConfig> seed_sweep(
      const ExperimentConfig& base, std::size_t n);
};

/// Field-wise aggregates of a result set (one sweep cell).
struct CampaignSummary {
  stats::Aggregate cost;
  stats::Aggregate delivery_ratio;
  stats::Aggregate mean_depth;
  stats::Aggregate parent_changes;
  /// Recovery aggregates over trials that actually suffered faults
  /// (fault-free trials contribute no samples here).
  stats::Aggregate delivery_during_outage;
  stats::Aggregate time_to_reroute_s;

  // Failure accounting, so partial campaigns degrade gracefully instead
  // of silently dropping trials. summarize(results) counts every trial
  // as one clean attempt; summarize(CampaignReport) fills the real
  // numbers and aggregates completed trials only.
  std::size_t trials = 0;     // trials asked for
  std::size_t completed = 0;  // trials with a usable result
  std::uint64_t attempts = 0;  // run_experiment invocations (incl. retries)
  std::uint64_t retries = 0;
  std::uint64_t replayed = 0;  // trials restored from a journal
  /// Worker processes respawned after a death (multi-process pool only).
  std::uint64_t worker_respawns = 0;
  /// Host sessions lost and leases reassigned (distributed dispatch
  /// only, dispatch.hpp). Zero on local campaigns.
  std::uint64_t host_losses = 0;
  std::uint64_t lease_reassignments = 0;
  /// Terminal failures indexed by FailureKind (supervisor.hpp):
  /// assert, exception, timeout, invariant, hard_crash.
  std::array<std::size_t, 5> failures_by_kind{};

  [[nodiscard]] std::size_t failures_total() const {
    return failures_by_kind[0] + failures_by_kind[1] + failures_by_kind[2] +
           failures_by_kind[3] + failures_by_kind[4];
  }
};

[[nodiscard]] CampaignSummary summarize(
    const std::vector<ExperimentResult>& results);

/// Every per-node delivery sample across all trials, pooled (the Fig. 8
/// boxplot population).
[[nodiscard]] std::vector<double> pooled_per_node_delivery(
    const std::vector<ExperimentResult>& results);

// ---- shared bench CLI handling ---------------------------------------
//
// These helpers strip "NAME VALUE" pairs from argv (anywhere after
// argv[0]); remaining positional arguments shift down. They are bench
// front-end conveniences: malformed input prints a clear message to
// stderr and exits nonzero rather than limping on with a garbage value.

/// Strips `name VALUE` and returns VALUE, or nullopt when `name` is
/// absent. A bare trailing `name` with no value is a usage error (stderr
/// + exit 2).
[[nodiscard]] std::optional<std::string> consume_flag(int& argc, char** argv,
                                                      const char* name);

/// Strips `name N` where N must parse fully as a non-negative decimal
/// integer (strtoul; junk, negatives and overflow are usage errors).
[[nodiscard]] std::optional<std::uint64_t> consume_uint_flag(int& argc,
                                                             char** argv,
                                                             const char* name);

/// Strips a bare `name` (no value); returns true when it was present.
[[nodiscard]] bool consume_bool_flag(int& argc, char** argv,
                                     const char* name);

/// Strips "--threads N" and returns N, or 0 (= all cores) if absent.
[[nodiscard]] std::size_t consume_threads_flag(int& argc, char** argv);

/// Progress callback that reports on stderr. On a TTY it ticks a
/// "completed/total" line in place; on a pipe (CI logs) it prints a
/// newline-terminated line every ~5% with percent + ETA instead of a
/// \r-garbled mega-line. Failed and retried counts appear once nonzero,
/// and terminal failures are reported as they happen.
[[nodiscard]] std::function<void(const TrialProgress&)> stderr_progress();

}  // namespace fourbit::runner
