// Parallel trial campaigns: fan independent experiments out across a
// thread pool.
//
// Every figure in the paper is a sweep — over seeds, TX power, profiles
// or table sizes — and every trial in such a sweep is an independent
// (config, seed) pair. A Campaign runs a list of ExperimentConfigs on N
// worker threads and returns results indexed exactly like the inputs, so
// the output is bit-identical regardless of thread count or completion
// order.
//
// Determinism contract (verified by tests/campaign_test.cpp): each trial
// constructs its OWN Simulator, Metrics, Rng tree and Network from its
// config alone; run_experiment shares no mutable state between trials.
// The only cross-thread state in the pool is the next-trial counter, the
// disjoint result slots, and the progress mutex. `sim::Trace` is
// process-global but read-only while trials run (configure it before
// Campaign::run).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "runner/experiment.hpp"
#include "stats/aggregate.hpp"

namespace fourbit::runner {

/// Progress report delivered after each trial completes. Callback
/// invocations are serialized (never concurrent), but arrive from worker
/// threads in completion order, which is not trial order.
struct TrialProgress {
  std::size_t trial_index = 0;  // index into the trial list
  std::size_t completed = 0;    // trials finished so far, incl. this one
  std::size_t total = 0;
  const ExperimentConfig* config = nullptr;
  const ExperimentResult* result = nullptr;
};

class Campaign {
 public:
  struct Options {
    /// Worker threads; 0 = one per hardware core.
    std::size_t threads = 0;
    /// Optional per-trial completion callback (see TrialProgress).
    std::function<void(const TrialProgress&)> on_trial_done;
  };

  /// Runs every trial across the pool. results[i] belongs to trials[i].
  [[nodiscard]] static std::vector<ExperimentResult> run(
      const std::vector<ExperimentConfig>& trials, const Options& options);
  [[nodiscard]] static std::vector<ExperimentResult> run(
      const std::vector<ExperimentConfig>& trials) {
    return run(trials, Options{});
  }

  /// Expands `base` into `n` trials with deterministically derived
  /// seeds: trial i gets seed = base.seed + i. The testbed is shared;
  /// sweeps that also re-sample node placement per seed should build
  /// their configs explicitly instead.
  [[nodiscard]] static std::vector<ExperimentConfig> seed_sweep(
      const ExperimentConfig& base, std::size_t n);
};

/// Field-wise aggregates of a result set (one sweep cell).
struct CampaignSummary {
  stats::Aggregate cost;
  stats::Aggregate delivery_ratio;
  stats::Aggregate mean_depth;
  stats::Aggregate parent_changes;
  /// Recovery aggregates over trials that actually suffered faults
  /// (fault-free trials contribute no samples here).
  stats::Aggregate delivery_during_outage;
  stats::Aggregate time_to_reroute_s;
};

[[nodiscard]] CampaignSummary summarize(
    const std::vector<ExperimentResult>& results);

/// Every per-node delivery sample across all trials, pooled (the Fig. 8
/// boxplot population).
[[nodiscard]] std::vector<double> pooled_per_node_delivery(
    const std::vector<ExperimentResult>& results);

/// Shared bench CLI handling: strips a "--threads N" argument from
/// argv (anywhere after argv[0]) and returns N, or 0 (= all cores) if
/// absent. Remaining positional arguments shift down.
[[nodiscard]] std::size_t consume_threads_flag(int& argc, char** argv);

/// Progress callback that ticks "completed/total" on stderr.
[[nodiscard]] std::function<void(const TrialProgress&)> stderr_progress();

}  // namespace fourbit::runner
