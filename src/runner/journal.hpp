// Crash-safe trial-result journal: append-only, CRC-framed, fsynced.
//
// A multi-hour campaign must not lose every finished trial to one
// process death. Each completed ExperimentResult is appended as one
// durably-flushed record; a relaunched campaign replays the journal,
// skips the finished trials, and — because every trial is a pure
// function of its config — produces results bit-identical to an
// uninterrupted run (doubles travel as raw IEEE-754 bit patterns).
//
// File layout: a plain sequence of records, each
//     magic    u16   0x464A ("FJ")
//     length   u32   payload byte count
//     payload        version u8 | trial_index u32 | seed u64
//                    | ExperimentResult fields (journal.cpp)
//     crc      u16   CRC-16/CCITT over the payload
//
// append() fflushes and fsyncs before returning, so after a SIGKILL at
// any instant the file is a clean record prefix plus at most one torn
// tail, which load() detects via the frame length/CRC and drops (the
// interrupted trial simply re-runs). Nothing in the file is ever
// rewritten in place.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "runner/experiment.hpp"

namespace fourbit::runner {

/// One replayed record.
struct JournalEntry {
  std::uint32_t trial_index = 0;
  std::uint64_t seed = 0;
  ExperimentResult result;
};

/// Journal frame magic ("FJ"). The transport layer multiplexes journal
/// frames over the host/coordinator socket and dispatches on this.
inline constexpr std::uint16_t kJournalMagic = 0x464A;

/// One complete journal frame (header + payload + CRC) for `entry` —
/// the exact bytes append() writes. Used by the dispatch transport to
/// ship results over a socket in the same self-describing framing.
[[nodiscard]] std::vector<std::uint8_t> encode_journal_record(
    const JournalEntry& entry);

/// Decodes one journal frame payload (the bytes between the length
/// field and the CRC). Returns nullopt on version or layout mismatch.
[[nodiscard]] std::optional<JournalEntry> decode_journal_record_payload(
    std::span<const std::uint8_t> payload);

class TrialJournal {
 public:
  struct LoadResult {
    std::vector<JournalEntry> entries;
    /// A trailing partial or corrupt record was found and dropped — the
    /// expected shape after a mid-write kill. Replay of the clean
    /// prefix proceeds normally.
    bool torn = false;
  };

  /// Worker k's shard of a multi-process campaign journal:
  /// "<stem>.w<k>.journal" next to the main journal at `stem`.
  [[nodiscard]] static std::string shard_path(const std::string& stem,
                                              std::size_t worker);

  struct ShardMergeResult {
    /// Union of every intact record across all shards, deduplicated by
    /// (trial_index, seed): when the same trial appears in multiple
    /// shards (overlapping ranges after a respawn/resume), the last
    /// complete record — shard order ascending by worker id, file order
    /// within a shard — wins.
    std::vector<JournalEntry> entries;
    std::size_t shards = 0;   // shard files found
    std::size_t records = 0;  // intact records read (pre-dedup)
    bool torn = false;        // any shard had a torn tail
  };

  /// Loads and merges every "<stem>.w*.journal" shard (numeric order by
  /// worker id). Seed validation is the caller's job at replay time —
  /// exactly as for load() — so a foreign-seed shard record is rejected
  /// there, not here.
  [[nodiscard]] static ShardMergeResult merge_shards(const std::string& stem);

  /// Replays every intact record. A missing file is an empty journal.
  [[nodiscard]] static LoadResult load(const std::string& path);

  /// Opens `path` for appending, creating it if needed. Any torn tail
  /// left by a mid-write kill is truncated first, so records appended
  /// now stay reachable by load() (framing would otherwise be lost at
  /// the first garbage byte). Throws std::runtime_error when the file
  /// cannot be opened or the tail cannot be truncated.
  [[nodiscard]] static TrialJournal open_append(const std::string& path);

  /// Appends one completed trial and makes it durable (fflush + fsync)
  /// before returning. A write or fsync failure (ENOSPC, EIO, a yanked
  /// volume) must not kill a multi-hour campaign over a lost safety
  /// net: the journal latches into a disabled state instead — one
  /// stderr warning, the process-wide write_failures() counter bumps
  /// (exported as runner/journal_write_failures), and every later
  /// append() on this journal is a no-op. The campaign finishes
  /// unjournaled; only resume durability is lost.
  void append(std::uint32_t trial_index, std::uint64_t seed,
              const ExperimentResult& result);

  /// False once a write failure has latched the journal disabled.
  [[nodiscard]] bool healthy() const { return file_ != nullptr; }

  /// Underlying file descriptor, -1 when disabled. Diagnostic/test
  /// hook (tests inject write failures by closing it).
  [[nodiscard]] int fd() const;

  /// Process-wide count of append() write failures (monotonic).
  [[nodiscard]] static std::uint64_t write_failures();

  TrialJournal(TrialJournal&& other) noexcept : file_(other.file_) {
    other.file_ = nullptr;
  }
  TrialJournal& operator=(TrialJournal&& other) noexcept;
  ~TrialJournal();

  TrialJournal(const TrialJournal&) = delete;
  TrialJournal& operator=(const TrialJournal&) = delete;

 private:
  explicit TrialJournal(std::FILE* file) : file_(file) {}

  std::FILE* file_ = nullptr;
};

}  // namespace fourbit::runner
