#include "runner/experiment.hpp"

#include <utility>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace fourbit::runner {

ExperimentResult run_experiment(ExperimentConfig config) {
  sim::Simulator sim;
  stats::Metrics metrics;

  Network::Options options;
  options.profile = config.profile;
  options.tx_power = config.tx_power;
  options.table_capacity = config.table_capacity;
  options.seed = config.seed;
  options.four_bit_override = config.four_bit_override;
  options.collection_override = config.collection_override;
  options.lpl_wake_interval = config.lpl_wake_interval;
  Network network{sim, config.testbed, std::move(options), &metrics};

  stats::EnergyModel energy{config.energy};
  if (config.track_energy) {
    network.channel().set_tx_observer(
        [&energy](NodeId node, sim::Duration airtime, PowerDbm power) {
          energy.on_transmit(node, airtime, power);
        });
  }

  network.start(config.boot_stagger, config.traffic);

  // Depth sampling starts after boot + initial convergence window so the
  // time average is not dominated by the pre-route transient.
  const auto sampling_start =
      config.boot_stagger + sim::Duration::from_seconds(60.0);
  sim::Timer depth_sampler{sim, [&] {
                             const auto snap = network.tree_snapshot();
                             if (snap.routed > 0) {
                               metrics.record_depth_sample(snap.mean_depth);
                             }
                           }};
  sim.schedule_in(sampling_start, [&] {
    depth_sampler.start_periodic(config.depth_sample_interval);
  });

  sim.run_for(config.duration);
  depth_sampler.stop();

  ExperimentResult result;
  result.cost = metrics.cost();
  result.delivery_ratio = metrics.delivery_ratio();
  result.mean_depth = metrics.average_depth();
  result.per_node_delivery = metrics.per_node_delivery();
  result.generated = metrics.generated_total();
  result.delivered = metrics.delivered_unique_total();
  result.data_tx = metrics.data_tx_total();
  result.beacon_tx = metrics.beacon_tx_total();
  result.radio_frames = network.channel().frames_transmitted();
  result.retx_drops = metrics.retx_drops();
  result.queue_drops = metrics.queue_drops();
  result.duplicates = metrics.duplicate_rx();
  result.parent_changes = network.total_parent_changes();
  result.final_tree = network.tree_snapshot();

  if (config.track_energy) {
    std::vector<NodeId> all_nodes;
    all_nodes.reserve(network.size());
    for (std::size_t i = 0; i < network.size(); ++i) {
      all_nodes.push_back(network.node(i).id());
    }
    const auto report = energy.report(config.duration, all_nodes);
    result.worst_node_mah = report.worst_mah;
    result.mean_tx_mah = report.mean_tx_mah;
    result.projected_lifetime_days = report.projected_lifetime_days;
  }
  return result;
}

}  // namespace fourbit::runner
