#include "runner/experiment.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <utility>

#include "runner/status.hpp"
#include "runner/worker.hpp"
#include "sim/invariant.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "stats/export.hpp"

namespace fourbit::runner {
namespace {

std::string node_tag(Network& network, std::size_t i) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "node %u (index %zu)",
                network.node(i).id().value(), i);
  return buf;
}

/// The invariant catalog audited in debug-mode trials. Checks walk live
/// state between events, so they observe only settled post-event state.
void install_invariants(sim::InvariantAuditor& auditor, sim::Simulator& sim,
                        Network& network) {
  // The event queue must never hold work scheduled before `now` — a
  // violation means some component scheduled into the past and the
  // FIFO-tie contract several MAC interactions rely on is void.
  auditor.add("event-time-monotonic",
              [&sim]() -> std::optional<std::string> {
                const auto next = sim.next_event_time();
                if (next && *next < sim.now()) {
                  return "earliest pending event is behind now()";
                }
                return std::nullopt;
              });

  // RAM budgets are the point of the paper's table policy: an estimator
  // tracking more neighbors than its capacity has corrupted state.
  auditor.add("neighbor-table-bound",
              [&network]() -> std::optional<std::string> {
                for (std::size_t i = 0; i < network.size(); ++i) {
                  const auto& est = network.node(i).estimator();
                  const std::size_t cap = est.table_capacity();
                  const std::size_t size = est.neighbors().size();
                  if (cap != 0 && size > cap) {
                    return node_tag(network, i) + " tracks " +
                           std::to_string(size) + " neighbors, capacity " +
                           std::to_string(cap);
                  }
                }
                return std::nullopt;
              });

  // Pin discipline: only the current parent may stay pinned (a pinned
  // non-parent is a leak that silently shrinks the usable table), and a
  // crashed node's wiped estimator must hold nothing at all.
  auditor.add("pin-discipline",
              [&network]() -> std::optional<std::string> {
                for (std::size_t i = 0; i < network.size(); ++i) {
                  auto& node = network.node(i);
                  const auto pins = node.estimator().pinned();
                  if (node.crashed()) {
                    if (!pins.empty() ||
                        !node.estimator().neighbors().empty()) {
                      return node_tag(network, i) +
                             " is crashed but still holds table state";
                    }
                    continue;
                  }
                  for (const NodeId p : pins) {
                    if (p != node.routing().parent()) {
                      return node_tag(network, i) + " leaks a pin on node " +
                             std::to_string(p.value()) +
                             " which is not its parent";
                    }
                  }
                }
                return std::nullopt;
              });

  // The estimator interface promises ETX >= 1; NaNs or sub-unity values
  // would silently corrupt every routing decision downstream.
  auditor.add("etx-bounds", [&network]() -> std::optional<std::string> {
    for (std::size_t i = 0; i < network.size(); ++i) {
      const auto& est = network.node(i).estimator();
      for (const NodeId n : est.neighbors()) {
        const auto etx = est.etx(n);
        if (!etx) continue;
        if (!std::isfinite(*etx) || *etx < 1.0 || *etx > 1e6) {
          return node_tag(network, i) + " has ETX " + std::to_string(*etx) +
                 " for node " + std::to_string(n.value());
        }
      }
    }
    return std::nullopt;
  });
}

}  // namespace

ExperimentResult run_experiment(ExperimentConfig config) {
  // Declared before the Simulator so it outlives the sim during stack
  // unwinding: the telemetry context must never hold a dangling sink.
  std::unique_ptr<stats::JsonlExporter> exporter;

  sim::Simulator sim{config.sim};
  if (config.budget.limited()) sim.set_budget(config.budget);
  sim.telemetry().set_level(config.trace_level);
  if (config.profile_phases) sim.telemetry().set_profiling(true);
  if (!config.trace_path.empty()) {
    exporter = std::make_unique<stats::JsonlExporter>(
        config.trace_path,
        stats::JsonlExporter::Header{config.seed, config.trace_trial});
    sim.telemetry().set_node_filter(config.trace_nodes);
    sim.telemetry().set_sink(exporter.get());
  }
  const std::uint64_t status_trial =
      config.trace_trial >= 0 ? static_cast<std::uint64_t>(config.trace_trial)
                              : 0;
  {
    // Both periodic side effects — crash-evidence flight flushes and
    // live-status registry pushes — share the simulator's single flush
    // hook slot; compose whichever subset is armed into one closure.
    std::function<void()> flush_flight;
    std::function<void()> push_status;
    sim::Simulator* sim_ptr = &sim;
    if (!config.flight_flush_path.empty() &&
        config.flight_flush_every_events != 0) {
      // Periodic crash evidence: if this process dies mid-trial, the
      // coordinator recovers the sim's last flushed moments from here.
      const std::string flush_path = config.flight_flush_path;
      const std::size_t flush_index = static_cast<std::size_t>(status_trial);
      const std::uint64_t flush_seed = config.seed;
      flush_flight = [flush_path, flush_index, flush_seed, sim_ptr] {
        write_flight_snapshot(flush_path, flush_index, flush_seed,
                              sim_ptr->telemetry().flight());
      };
    }
    if (config.status != nullptr) {
      StatusBoard* board = config.status;
      push_status = [board, status_trial, sim_ptr] {
        board->publish_registry(status_trial, sim_ptr->telemetry());
      };
    }
    if (flush_flight || push_status) {
      const std::uint64_t every = config.flight_flush_every_events != 0
                                      ? config.flight_flush_every_events
                                      : 65536;
      sim.set_flush_hook(every, [flush_flight, push_status] {
        if (flush_flight) flush_flight();
        if (push_status) push_status();
      });
    }
  }
  stats::Metrics metrics;

  using ProfileClock = std::chrono::steady_clock;
  const auto phase_ns = [](ProfileClock::time_point since) {
    const auto elapsed = ProfileClock::now() - since;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    return ns > 0 ? static_cast<std::uint64_t>(ns) : std::uint64_t{0};
  };
  ProfileClock::time_point setup_begin{};
  if (sim.telemetry().profiling()) setup_begin = ProfileClock::now();

  Network::Options options;
  options.profile = config.profile;
  options.tx_power = config.tx_power;
  options.table_capacity = config.table_capacity;
  options.seed = config.seed;
  options.four_bit_override = config.four_bit_override;
  options.collection_override = config.collection_override;
  options.lpl_wake_interval = config.lpl_wake_interval;
  Network network{sim, config.testbed, std::move(options), &metrics};

  stats::EnergyModel energy{config.energy};
  if (config.track_energy) {
    network.channel().set_tx_observer(
        [&energy](NodeId node, sim::Duration airtime, PowerDbm power) {
          energy.on_transmit(node, airtime, power);
        });
  }

  // Faults: the plan is fixed before anything runs, so outage windows
  // are known upfront and every generated packet can be classified as
  // normal / during-outage / post-outage.
  FaultRuntime fault_runtime{sim, network, &metrics};
  sim::FaultPlan fault_plan =
      build_fault_plan(config.faults, config.testbed.topology, config.seed);
  if (!fault_plan.empty()) {
    register_outage_windows(fault_plan, metrics,
                            sim::Time{} + config.duration);
    fault_runtime.arm(std::move(fault_plan));
  }

  sim::InvariantAuditor auditor{sim};
  if (config.audit_invariants) {
    install_invariants(auditor, sim, network);
    auditor.start(config.audit_interval);
  }

  network.start(config.boot_stagger, config.traffic);

  // Depth sampling starts after boot + initial convergence window so the
  // time average is not dominated by the pre-route transient.
  const auto sampling_start =
      config.boot_stagger + sim::Duration::from_seconds(60.0);
  sim::Timer depth_sampler{sim, [&] {
                             const auto snap = network.tree_snapshot();
                             if (snap.routed > 0) {
                               metrics.record_depth_sample(snap.mean_depth);
                             }
                           }};
  sim.schedule_in(sampling_start, [&] {
    depth_sampler.start_periodic(config.depth_sample_interval);
  });

  if (sim.telemetry().profiling()) {
    sim.telemetry()
        .phase_histogram(sim::ProfilePhase::kTrialSetup)
        ->record(phase_ns(setup_begin));
  }

  sim.run_for(config.duration);
  depth_sampler.stop();
  auditor.stop();

  ProfileClock::time_point teardown_begin{};
  if (sim.telemetry().profiling()) teardown_begin = ProfileClock::now();

  if (exporter != nullptr) {
    exporter->write_counters(sim.telemetry());
    exporter->finish();
    sim.telemetry().set_sink(nullptr);
  }

  ExperimentResult result;
  result.cost = metrics.cost();
  result.delivery_ratio = metrics.delivery_ratio();
  result.mean_depth = metrics.average_depth();
  result.per_node_delivery = metrics.per_node_delivery();
  result.generated = metrics.generated_total();
  result.delivered = metrics.delivered_unique_total();
  result.data_tx = metrics.data_tx_total();
  result.beacon_tx = metrics.beacon_tx_total();
  result.radio_frames = network.channel().frames_transmitted();
  result.retx_drops = metrics.retx_drops();
  result.queue_drops = metrics.queue_drops();
  result.duplicates = metrics.duplicate_rx();
  result.parent_changes = network.total_parent_changes();
  result.final_tree = network.tree_snapshot();

  result.node_crashes = metrics.node_crashes();
  result.node_reboots = metrics.node_reboots();
  if (fault_runtime.injector() != nullptr) {
    result.link_outages = fault_runtime.injector()->outages_executed();
  }
  result.route_losses = metrics.route_losses();
  result.parent_evictions = network.total_parent_evictions();
  result.pin_refusals = metrics.pin_refusals();
  result.mean_time_to_reroute_s = metrics.mean_time_to_reroute_s();
  result.max_time_to_reroute_s = metrics.max_time_to_reroute_s();
  result.mean_time_to_first_route_s = metrics.mean_time_to_first_route_s();
  result.mean_table_refill_s = metrics.mean_table_refill_s();
  result.generated_during_outage = metrics.generated_during_outage();
  result.generated_post_outage = metrics.generated_post_outage();
  result.delivery_during_outage = metrics.delivery_during_outage();
  result.delivery_post_outage = metrics.delivery_post_outage();

  if (config.track_energy) {
    std::vector<NodeId> all_nodes;
    all_nodes.reserve(network.size());
    for (std::size_t i = 0; i < network.size(); ++i) {
      all_nodes.push_back(network.node(i).id());
    }
    const auto report = energy.report(config.duration, all_nodes);
    result.worst_node_mah = report.worst_mah;
    result.mean_tx_mah = report.mean_tx_mah;
    result.projected_lifetime_days = report.projected_lifetime_days;
  }

  result.arena_bytes = sim.arena().bytes_reserved();
  result.eq_resizes = sim.queue_resizes();

  if (sim.telemetry().profiling()) {
    sim.telemetry()
        .phase_histogram(sim::ProfilePhase::kTrialTeardown)
        ->record(phase_ns(teardown_begin));
  }
  if (config.status != nullptr) {
    // Final registry push: the settle-time truth, including gauges that
    // only move at the end (the flush hook may not have fired recently).
    config.status->publish_registry(status_trial, sim.telemetry());
  }
  return result;
}

}  // namespace fourbit::runner
