#include "runner/experiment.hpp"

#include <utility>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace fourbit::runner {

ExperimentResult run_experiment(ExperimentConfig config) {
  sim::Simulator sim;
  stats::Metrics metrics;

  Network::Options options;
  options.profile = config.profile;
  options.tx_power = config.tx_power;
  options.table_capacity = config.table_capacity;
  options.seed = config.seed;
  options.four_bit_override = config.four_bit_override;
  options.collection_override = config.collection_override;
  options.lpl_wake_interval = config.lpl_wake_interval;
  Network network{sim, config.testbed, std::move(options), &metrics};

  stats::EnergyModel energy{config.energy};
  if (config.track_energy) {
    network.channel().set_tx_observer(
        [&energy](NodeId node, sim::Duration airtime, PowerDbm power) {
          energy.on_transmit(node, airtime, power);
        });
  }

  // Faults: the plan is fixed before anything runs, so outage windows
  // are known upfront and every generated packet can be classified as
  // normal / during-outage / post-outage.
  FaultRuntime fault_runtime{sim, network, &metrics};
  sim::FaultPlan fault_plan =
      build_fault_plan(config.faults, config.testbed.topology, config.seed);
  if (!fault_plan.empty()) {
    register_outage_windows(fault_plan, metrics,
                            sim::Time{} + config.duration);
    fault_runtime.arm(std::move(fault_plan));
  }

  network.start(config.boot_stagger, config.traffic);

  // Depth sampling starts after boot + initial convergence window so the
  // time average is not dominated by the pre-route transient.
  const auto sampling_start =
      config.boot_stagger + sim::Duration::from_seconds(60.0);
  sim::Timer depth_sampler{sim, [&] {
                             const auto snap = network.tree_snapshot();
                             if (snap.routed > 0) {
                               metrics.record_depth_sample(snap.mean_depth);
                             }
                           }};
  sim.schedule_in(sampling_start, [&] {
    depth_sampler.start_periodic(config.depth_sample_interval);
  });

  sim.run_for(config.duration);
  depth_sampler.stop();

  ExperimentResult result;
  result.cost = metrics.cost();
  result.delivery_ratio = metrics.delivery_ratio();
  result.mean_depth = metrics.average_depth();
  result.per_node_delivery = metrics.per_node_delivery();
  result.generated = metrics.generated_total();
  result.delivered = metrics.delivered_unique_total();
  result.data_tx = metrics.data_tx_total();
  result.beacon_tx = metrics.beacon_tx_total();
  result.radio_frames = network.channel().frames_transmitted();
  result.retx_drops = metrics.retx_drops();
  result.queue_drops = metrics.queue_drops();
  result.duplicates = metrics.duplicate_rx();
  result.parent_changes = network.total_parent_changes();
  result.final_tree = network.tree_snapshot();

  result.node_crashes = metrics.node_crashes();
  result.node_reboots = metrics.node_reboots();
  if (fault_runtime.injector() != nullptr) {
    result.link_outages = fault_runtime.injector()->outages_executed();
  }
  result.route_losses = metrics.route_losses();
  result.parent_evictions = network.total_parent_evictions();
  result.pin_refusals = metrics.pin_refusals();
  result.mean_time_to_reroute_s = metrics.mean_time_to_reroute_s();
  result.max_time_to_reroute_s = metrics.max_time_to_reroute_s();
  result.mean_time_to_first_route_s = metrics.mean_time_to_first_route_s();
  result.mean_table_refill_s = metrics.mean_table_refill_s();
  result.generated_during_outage = metrics.generated_during_outage();
  result.generated_post_outage = metrics.generated_post_outage();
  result.delivery_during_outage = metrics.delivery_during_outage();
  result.delivery_post_outage = metrics.delivery_post_outage();

  if (config.track_energy) {
    std::vector<NodeId> all_nodes;
    all_nodes.reserve(network.size());
    for (std::size_t i = 0; i < network.size(); ++i) {
      all_nodes.push_back(network.node(i).id());
    }
    const auto report = energy.report(config.duration, all_nodes);
    result.worst_node_mah = report.worst_mah;
    result.mean_tx_mah = report.mean_tx_mah;
    result.projected_lifetime_days = report.projected_lifetime_days;
  }
  return result;
}

}  // namespace fourbit::runner
