// One-call experiment driver: testbed + profile + power -> metrics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "app/traffic.hpp"
#include "runner/faults.hpp"
#include "runner/network.hpp"
#include "runner/profile.hpp"
#include "sim/simulator.hpp"
#include "stats/energy.hpp"
#include "stats/metrics.hpp"
#include "topology/topology.hpp"

namespace fourbit::runner {

struct ExperimentConfig {
  topology::Testbed testbed;
  Profile profile = Profile::kFourBit;
  PowerDbm tx_power{0.0};
  sim::Duration duration = sim::Duration::from_minutes(25.0);
  app::TrafficConfig traffic;
  std::uint64_t seed = 1;
  std::size_t table_capacity = 10;
  sim::Duration boot_stagger = sim::Duration::from_seconds(30.0);
  sim::Duration depth_sample_interval = sim::Duration::from_seconds(30.0);
  std::optional<core::FourBitConfig> four_bit_override;
  std::optional<net::CollectionConfig> collection_override;

  /// Duty-cycle the radios with low-power listening (0 = always on).
  sim::Duration lpl_wake_interval = sim::Duration::from_us(0);

  /// Fault schedule (crashes, link outages). The concrete plan is
  /// derived deterministically from this spec and the trial seed.
  FaultSpec faults;

  /// Charge every transmission to the energy model and report lifetime
  /// projections in the result.
  bool track_energy = false;
  stats::EnergyConfig energy;

  /// Simulator engine knobs (event-queue implementation, arena block
  /// size). Every setting is bit-identity-neutral: trial results,
  /// digests and exported telemetry are byte-identical across values.
  sim::SimConfig sim;

  /// Cooperative watchdog for this trial: the simulator throws
  /// sim::BudgetExceededError once the event-count or wall-clock limit
  /// is exhausted (zero = unlimited). Campaign supervision classifies
  /// that as a timeout instead of letting a wedged trial stall the pool.
  sim::SimBudget budget;

  /// Debug-mode runtime auditing: periodically verify live-state
  /// invariants (neighbor-table bounds, pin discipline, ETX ranges,
  /// event-queue monotonicity) via sim::InvariantAuditor. A violation
  /// throws sim::InvariantViolationError out of the trial.
  bool audit_invariants = false;
  sim::Duration audit_interval = sim::Duration::from_seconds(15.0);

  /// Telemetry. The level always applies (it gates the ring-buffer
  /// flight recorder as well as export); trace_path, when non-empty,
  /// additionally streams every passing event to that file as JSONL
  /// (stats::JsonlExporter). trace_nodes restricts the exported stream
  /// to events touching those node ids (empty = all); the flight
  /// recorder is never filtered.
  sim::TraceLevel trace_level = sim::TraceLevel::kInfo;
  std::string trace_path;
  std::vector<std::uint16_t> trace_nodes;
  /// Campaign trial index recorded in the trace header (-1 = standalone).
  std::int64_t trace_trial = -1;

  /// When non-empty, the trial periodically snapshots its flight
  /// recorder to this file (atomic write-temp-then-rename; worker.hpp
  /// snapshot format) every flight_flush_every_events executed events,
  /// so a hard-crashed worker process leaves evidence behind. The
  /// supervisor removes the file once the trial settles in-process.
  std::string flight_flush_path;
  std::uint64_t flight_flush_every_events = 65536;

  /// Live-observability hooks (runtime-only; never serialized). A
  /// non-null `status` board receives this trial's telemetry registry
  /// periodically (the flush-hook cadence) and once at the end, keyed by
  /// trace_trial — so live dashboards see mid-trial engine health
  /// (sim/arena_bytes, sim/eq_resizes, phy counters) without waiting for
  /// the trial-end JSONL footer. `profile_phases` arms the wall-clock
  /// phase timers (sim::PhaseTimer); samples are nondeterministic by
  /// nature, so identity-checked runs keep it off. Neither knob affects
  /// trial results, stdout, reports, or journal bytes.
  class StatusBoard* status = nullptr;
  bool profile_phases = false;
};

struct ExperimentResult {
  // Headline metrics (the paper's cost / delivery / depth).
  double cost = 0.0;
  double delivery_ratio = 0.0;
  double mean_depth = 0.0;

  // Distributions and raw counters.
  std::vector<double> per_node_delivery;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t data_tx = 0;
  std::uint64_t beacon_tx = 0;
  std::uint64_t radio_frames = 0;  // frames on the air (incl. LPL copies)
  std::uint64_t retx_drops = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t parent_changes = 0;

  TreeSnapshot final_tree;

  // Fault / recovery metrics (meaningful when config.faults.enabled()).
  std::uint64_t node_crashes = 0;
  std::uint64_t node_reboots = 0;
  std::uint64_t link_outages = 0;
  std::uint64_t route_losses = 0;
  std::uint64_t parent_evictions = 0;
  std::uint64_t pin_refusals = 0;
  double mean_time_to_reroute_s = 0.0;
  double max_time_to_reroute_s = 0.0;
  double mean_time_to_first_route_s = 0.0;
  double mean_table_refill_s = 0.0;
  std::uint64_t generated_during_outage = 0;
  std::uint64_t generated_post_outage = 0;
  double delivery_during_outage = 0.0;
  double delivery_post_outage = 0.0;

  // Energy (populated when config.track_energy is set).
  double worst_node_mah = 0.0;
  double mean_tx_mah = 0.0;
  double projected_lifetime_days = 0.0;

  // Engine health (deterministic for a given config + seed + queue
  // implementation; excluded from cross-queue-mode identity checks).
  std::uint64_t arena_bytes = 0;   // arena high-water mark, bytes
  std::uint64_t eq_resizes = 0;    // calendar-queue rebuilds (0 for heap)
};

[[nodiscard]] ExperimentResult run_experiment(ExperimentConfig config);

}  // namespace fourbit::runner
