// TCP transport for distributed campaign dispatch (dispatch.hpp).
//
// The wire protocol is deliberately NOT new: a host agent streams the
// exact CRC-framed records the worker pool already defines — status
// frames ("FW", worker.hpp) for liveness and trial lifecycle, journal
// frames ("FJ", journal.hpp) for results — plus one small control
// framing ("FT") for lease grants and completion. Every frame is
// magic u16 | length u32 | payload | crc16(payload), so one
// incremental parser (TransportParser) demultiplexes the socket by
// magic and any framing violation latches corrupt(), which the
// coordinator treats exactly like a worker pipe going bad: the host
// session is dead, its lease expires, the trials move elsewhere.
//
// Control frames ("FT") carry:
//     payload = version u8 | kind u8 | lease u32 | text (u32 + bytes)
//   coordinator -> host:  kLeaseGrant (text = index spans, e.g.
//                         "0-4,9"), kShutdown (campaign settled)
//   host -> coordinator:  kLeaseComplete (every trial in the lease is
//                         settled and its results have been streamed)
//
// The fd helpers here are the EINTR/partial-write audit the worker
// pipe already passed, extended to sockets: poll/accept/connect retry
// on EINTR, write_all_fd finishes short writes and waits out EAGAIN on
// nonblocking fds, and both ends ignore SIGPIPE (a peer death must
// surface as a return value, never a signal).
#pragma once

#include <poll.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "runner/journal.hpp"
#include "runner/worker.hpp"

namespace fourbit::runner {

// ---- EINTR-safe fd plumbing ------------------------------------------

/// Ignores SIGPIPE process-wide; call once on each end before any
/// socket writes. Idempotent.
void ignore_sigpipe();

/// poll() retrying EINTR. Returns poll()'s result (>= 0, or -1 for a
/// real error only).
int poll_retry(pollfd* fds, std::size_t count, int timeout_ms);

/// accept() retrying EINTR; the accepted fd gets FD_CLOEXEC. Returns
/// -1 on real errors.
int accept_retry(int listen_fd);

/// Writes all n bytes: retries EINTR, finishes partial writes, and
/// polls out EAGAIN/EWOULDBLOCK on nonblocking fds. False when the
/// peer is gone (EPIPE/ECONNRESET/...) — never raises SIGPIPE.
bool write_all_fd(int fd, const std::uint8_t* data, std::size_t n);

// ---- sockets ----------------------------------------------------------

struct ListenSocket {
  int fd = -1;
  std::uint16_t port = 0;  // actual bound port (resolves port 0)
};

/// IPv4 listener on `port` (0 = ephemeral) with SO_REUSEADDR and
/// FD_CLOEXEC. nullopt when the port cannot be bound.
[[nodiscard]] std::optional<ListenSocket> listen_on(std::uint16_t port);

/// Blocking-connect with a deadline: resolves host:port (names or
/// numeric), connects nonblocking, waits up to timeout_ms. Returns a
/// connected fd (nonblocking, FD_CLOEXEC, TCP_NODELAY) or -1.
[[nodiscard]] int connect_to_host(const std::string& host,
                                  std::uint16_t port,
                                  std::uint64_t timeout_ms);

// ---- control frames ---------------------------------------------------

inline constexpr std::uint16_t kControlMagic = 0x4654;  // "FT"

enum class ControlKind : std::uint8_t {
  kLeaseGrant = 0,     // coordinator -> host: text = trial index spans
  kLeaseComplete = 1,  // host -> coordinator: lease fully settled
  kShutdown = 2,       // coordinator -> host: campaign over, hang up
  /// host -> coordinator: text = an encoded fourbit.status/1 payload
  /// (runner/status.hpp codec) with the host's lease-local merged
  /// metrics. Strictly off-band — never touches trial accounting.
  kStatus = 3,
};

struct ControlMessage {
  ControlKind kind = ControlKind::kLeaseGrant;
  std::uint32_t lease = 0;  // lease id; grants and completions match on it
  std::string text;         // kLeaseGrant: format_index_spans payload
};

/// One complete control frame (header + payload + CRC).
[[nodiscard]] std::vector<std::uint8_t> encode_control_message(
    const ControlMessage& message);

/// Decodes a control frame payload. nullopt on version/layout junk.
[[nodiscard]] std::optional<ControlMessage> decode_control_message_payload(
    std::span<const std::uint8_t> payload);

// ---- the demultiplexing parser ---------------------------------------

/// One frame off the socket: exactly one of the three alternatives is
/// meaningful, selected by `type`.
struct TransportFrame {
  enum class Type { kStatus, kResult, kControl };
  Type type = Type::kStatus;
  WorkerRecord record;     // kStatus  ("FW")
  JournalEntry entry;      // kResult  ("FJ")
  ControlMessage control;  // kControl ("FT")
};

/// Incremental parser over the mixed-magic socket stream, same
/// contract as WorkerPipeParser: feed bytes as they arrive, drain
/// complete frames with next(), and any framing/CRC/decode violation
/// latches corrupt() — the peer is untrustworthy from that point.
class TransportParser {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  [[nodiscard]] std::optional<TransportFrame> next();
  [[nodiscard]] bool corrupt() const { return corrupt_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;
  bool corrupt_ = false;
};

}  // namespace fourbit::runner
