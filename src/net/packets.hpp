// Network-layer wire formats for the collection protocols.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.hpp"

namespace fourbit::net {

/// Path costs travel as fixed-point ETX (1/16 resolution), matching the
/// precision real CTP uses.
[[nodiscard]] constexpr std::uint16_t quantize_etx(double etx) {
  const double clamped = etx < 0.0 ? 0.0 : (etx > 4095.0 ? 4095.0 : etx);
  return static_cast<std::uint16_t>(clamped * 16.0 + 0.5);
}
[[nodiscard]] constexpr double dequantize_etx(std::uint16_t q) {
  return static_cast<double>(q) / 16.0;
}

/// Routing beacon payload (inside the estimator's layer-2.5 wrapping):
///   flags(1) parent(2) path_etx(2)
/// `pull` is CTP's P bit: the sender has no (or a stale) route and asks
/// neighbors to reset their beacon timers so routing state spreads fast.
/// Without it, a post-collapse network would have to wait out full
/// Trickle intervals (minutes) to re-form a tree.
struct RoutingBeacon {
  NodeId parent;
  double path_etx = 0.0;
  bool pull = false;

  static constexpr std::size_t kBytes = 5;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<RoutingBeacon> decode(
      std::span<const std::uint8_t> bytes);
};

/// Data-packet network header:
///   origin(2) seq(2) thl(1) sender_path_etx(2)
/// `sender_path_etx` is the transmitter's current route cost, used by the
/// next hop for datapath loop detection (a receiver with an equal-or-
/// higher advertised cost signals routing inconsistency).
struct DataHeader {
  NodeId origin;
  std::uint16_t seq = 0;
  std::uint8_t thl = 0;  // time-has-lived (hops so far)
  double sender_path_etx = 0.0;

  static constexpr std::size_t kBytes = 7;

  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const std::uint8_t> app_payload) const;
};

/// Result of parsing a data packet: its header plus the app payload.
struct DecodedData {
  DataHeader header;
  std::vector<std::uint8_t> app_payload;
};

[[nodiscard]] std::optional<DecodedData> decode_data(
    std::span<const std::uint8_t> bytes);

/// Zero-copy parse of a data packet: the payload stays a span into the
/// caller's buffer (valid only for the current delivery call). The
/// receive path uses this so snoops, duplicates and drops never copy the
/// payload; only a packet that actually enters the forwarding queue gets
/// its bytes owned.
struct DataView {
  DataHeader header;
  std::span<const std::uint8_t> app_payload;
};

[[nodiscard]] std::optional<DataView> decode_data_view(
    std::span<const std::uint8_t> bytes);

}  // namespace fourbit::net
