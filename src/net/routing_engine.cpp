#include "net/routing_engine.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fourbit::net {

RoutingEngine::RoutingEngine(sim::Simulator& sim, NodeId self, bool is_root,
                             link::LinkEstimator& estimator,
                             CollectionConfig config, sim::Rng rng,
                             stats::Metrics* metrics)
    : sim_(sim),
      self_(self),
      is_root_(is_root),
      estimator_(estimator),
      config_(config),
      rng_(rng),
      metrics_(metrics),
      my_cost_(is_root ? 0.0 : config.max_path_etx),
      trickle_(sim,
               TrickleConfig{.min_interval = config.trickle_min,
                             .max_interval = config.trickle_max,
                             .redundancy_k = 0},
               [this] {
                 send_beacon();
                 refresh_beacon_ceiling();
               },
               rng.fork("trickle")),
      fixed_timer_(sim, [this] { send_beacon(); }),
      route_timer_(sim, [this] { update_route(); }) {
  estimator_.set_compare_provider(this);
}

void RoutingEngine::start() {
  started_ = true;
  if (metrics_ != nullptr && !is_root_) {
    metrics_->on_node_started(self_, sim_.now());
  }
  if (config_.beacon_timing == BeaconTiming::kTrickle) {
    refresh_beacon_ceiling();
    trickle_.start();
  } else {
    // Fixed interval with +-10% jitter against beacon synchronization.
    const double base = config_.fixed_beacon_interval.seconds();
    fixed_timer_.start_periodic(
        sim::Duration::from_seconds(rng_.uniform(base * 0.9, base * 1.1)));
  }
  route_timer_.start_periodic(config_.route_update_interval);
}

void RoutingEngine::crash() {
  trickle_.stop();
  fixed_timer_.stop();
  route_timer_.stop();
  started_ = false;
  routes_.clear();
  parent_ = kInvalidNodeId;
  my_cost_ = is_root_ ? 0.0 : config_.max_path_etx;
  last_reset_ = sim::Time{};
  parent_failures_ = 0;
  // No route_lost event: Metrics::on_node_crashed (emitted by the
  // harness) discards this node's pending reroute measurement, so the
  // reroute times only describe LIVE nodes routing around damage.
  had_route_ = false;
}

void RoutingEngine::refresh_beacon_ceiling() {
  // Routeless nodes keep shouting the pull bit at a moderate rate; roots
  // anchor the cost gradient and stay reasonably fresh; everyone else
  // decays to the configured steady-state maximum.
  sim::Duration ceiling = config_.trickle_max;
  if (!is_root_ && !has_route()) {
    ceiling = sim::Duration::from_seconds(4.0);
  } else if (is_root_) {
    ceiling = std::min(config_.root_trickle_max, config_.trickle_max);
  }
  trickle_.set_max_interval(ceiling);
}

void RoutingEngine::reset_beacon_interval() {
  if (!started_ || config_.beacon_timing != BeaconTiming::kTrickle) return;
  // Rate-limit resets: estimate noise after convergence must not be able
  // to hold the whole network at the fastest beacon rate (a reset storm
  // feeds itself: beacons change costs, cost changes trigger resets).
  const sim::Time now = sim_.now();
  if (last_reset_.us() > 0 &&
      now - last_reset_ < config_.min_reset_spacing) {
    return;
  }
  last_reset_ = now;
  refresh_beacon_ceiling();
  trickle_.reset();
}

void RoutingEngine::send_beacon() {
  if (!beacon_sender_) return;
  RoutingBeacon b;
  b.parent = is_root_ ? self_ : parent_;
  b.path_etx = path_etx();
  b.pull = !has_route();
  ++beacons_sent_;
  beacon_sender_(b.encode());
}

double RoutingEngine::path_etx() const {
  if (is_root_) return 0.0;
  return my_cost_;
}

bool RoutingEngine::has_route() const {
  return is_root_ ||
         (parent_ != kInvalidNodeId && my_cost_ < config_.max_path_etx);
}

std::optional<double> RoutingEngine::total_cost(NodeId neighbor) const {
  const auto rit = routes_.find(neighbor);
  if (rit == routes_.end()) return std::nullopt;
  // A neighbor routing through us would form a loop; a neighbor without a
  // route is useless; a stale advertisement cannot be trusted (stale
  // costs are what keep count-to-infinity loops alive).
  if (rit->second.parent == self_) return std::nullopt;
  if (rit->second.path_etx >= config_.max_path_etx) return std::nullopt;
  // Stale advertisements are rejected for *candidates* (stale costs are
  // what keep count-to-infinity loops alive) but not for the current
  // parent: that link is being validated continuously by datapath acks,
  // and beacons in steady state arrive at multi-minute Trickle intervals.
  if (neighbor != parent_ &&
      sim_.now() - rit->second.last_heard > config_.route_expiry) {
    return std::nullopt;
  }
  const auto link = estimator_.etx(neighbor);
  if (!link.has_value()) return std::nullopt;
  return rit->second.path_etx + *link;
}

void RoutingEngine::on_beacon(NodeId from,
                              std::span<const std::uint8_t> payload) {
  const auto beacon = RoutingBeacon::decode(payload);
  if (!beacon.has_value()) return;
  routes_[from] = NeighborRoute{beacon->parent, beacon->path_etx, sim_.now()};

  // The pull bit: a neighbor is starving for routing state; advertise
  // ours quickly (rate-limited like every other Trickle reset).
  if (beacon->pull && has_route()) {
    reset_beacon_interval();
  }

  // Drop route state for nodes the estimator no longer tracks; the route
  // table must not grow past the link table (the layer-agreement failure
  // the paper cites from the Potatoes deployment).
  if (routes_.size() > estimator_.neighbors().size() + 4) {
    const auto tracked = estimator_.neighbors();
    std::erase_if(routes_, [&](const auto& kv) {
      return std::find(tracked.begin(), tracked.end(), kv.first) ==
             tracked.end();
    });
  }

  update_route();
}

void RoutingEngine::on_snooped_cost(NodeId from, double path_etx) {
  const auto it = routes_.find(from);
  if (it != routes_.end()) {
    // Refresh the cost and the staleness clock; the advertised parent is
    // whatever the last beacon said.
    it->second.path_etx = path_etx;
    it->second.last_heard = sim_.now();
  } else {
    routes_[from] = NeighborRoute{kInvalidNodeId, path_etx, sim_.now()};
  }
  update_route();
}

void RoutingEngine::update_route() {
  recompute_route();
  note_route_state();
}

void RoutingEngine::note_route_state() {
  if (is_root_ || metrics_ == nullptr) return;
  const bool routed = has_route();
  if (routed == had_route_) return;
  had_route_ = routed;
  if (routed) {
    metrics_->on_route_restored(self_, sim_.now());
  } else {
    metrics_->on_route_lost(self_, sim_.now());
  }
}

void RoutingEngine::recompute_route() {
  if (is_root_ || !started_) return;

  NodeId best = kInvalidNodeId;
  double best_cost = config_.max_path_etx;
  for (const NodeId n : estimator_.neighbors()) {
    const auto cost = total_cost(n);
    if (cost.has_value() && *cost < best_cost) {
      best_cost = *cost;
      best = n;
    }
  }

  const auto current_cost = total_cost(parent_);

  if (best == kInvalidNodeId) {
    // No usable candidate at all. Keep the (possibly broken) parent and
    // beacon aggressively to find a way out.
    if (!current_cost.has_value() && parent_ != kInvalidNodeId) {
      my_cost_ = config_.max_path_etx;
      reset_beacon_interval();
    }
    return;
  }

  bool switch_parent = false;
  if (parent_ == kInvalidNodeId || !current_cost.has_value()) {
    switch_parent = true;
  } else if (best != parent_ &&
             best_cost + config_.parent_switch_threshold < *current_cost) {
    switch_parent = true;
  }

  if (switch_parent) {
    const bool actually_changed = best != parent_;
    const NodeId old_parent = parent_;
    if (config_.pin_parent && parent_ != kInvalidNodeId) {
      estimator_.unpin(parent_);
    }
    parent_ = best;
    if (config_.pin_parent) estimator_.pin(parent_);
    my_cost_ = best_cost;
    if (actually_changed) {
      ++parent_changes_;
      parent_failures_ = 0;  // the failure streak belonged to the old link
      sim_.telemetry().emit(
          sim::EventKind::kRouteChange, self_.value(), parent_.value(),
          old_parent.value(),
          static_cast<std::uint16_t>(sim::RouteChangeReason::kBetterParent),
          best_cost);
      reset_beacon_interval();
    }
    return;
  }

  // Same parent: track its (possibly changed) cost. Ordinary estimate
  // drift does not reset the beacon timer — only topology events do.
  my_cost_ = current_cost.has_value() ? *current_cost : config_.max_path_etx;
}

void RoutingEngine::on_delivery_failure(NodeId to) {
  // The estimator has already digested the unacked transmissions through
  // the ack bit. Toward the current parent a failure also feeds the
  // dead-parent detector: hysteresis plus the pin bit would otherwise let
  // a crashed parent wedge this node indefinitely (its route entry is
  // exempt from expiry and its table entry from eviction).
  if (to == parent_ && config_.parent_evict_failures > 0) {
    if (parent_failures_ == 0) failure_streak_start_ = sim_.now();
    if (++parent_failures_ >= config_.parent_evict_failures) {
      evict_parent();
      if (config_.datapath_feedback) reset_beacon_interval();
      return;
    }
  }
  update_route();
  if (config_.datapath_feedback) reset_beacon_interval();
}

void RoutingEngine::on_delivery_success(NodeId to) {
  if (to == parent_) parent_failures_ = 0;
}

void RoutingEngine::evict_parent() {
  const NodeId dead = parent_;
  FOURBIT_ASSERT(dead != kInvalidNodeId, "evicting without a parent");
  ++parent_evictions_;
  sim_.telemetry().emit(
      sim::EventKind::kRouteChange, self_.value(), kInvalidNodeId.value(),
      dead.value(),
      static_cast<std::uint16_t>(sim::RouteChangeReason::kParentEvicted));
  // The pin bit refuses the first removal — that refusal is the recorded
  // event the pin/eviction interplay tests look for — then the unpin
  // makes the retry succeed.
  if (!estimator_.remove(dead)) {
    if (metrics_ != nullptr) metrics_->on_pin_refusal(self_);
    estimator_.unpin(dead);
    (void)estimator_.remove(dead);
  }
  routes_.erase(dead);
  // The node has been wedged since the streak's first failed delivery;
  // report the route as lost from that moment so time-to-reroute covers
  // detection, not just the post-eviction search.
  if (metrics_ != nullptr && !is_root_ && had_route_) {
    metrics_->on_route_lost(self_, failure_streak_start_);
    had_route_ = false;
  }
  parent_ = kInvalidNodeId;
  my_cost_ = config_.max_path_etx;
  parent_failures_ = 0;
  update_route();  // an immediate alternative ends the outage right here
}

void RoutingEngine::on_loop_detected() {
  if (config_.datapath_feedback) reset_beacon_interval();
  update_route();
}

bool RoutingEngine::compare_bit(NodeId /*candidate*/,
                                std::span<const std::uint8_t> payload) {
  const auto beacon = RoutingBeacon::decode(payload);
  if (!beacon.has_value()) return false;  // cannot judge this packet
  if (beacon->parent == self_) return false;
  if (beacon->path_etx >= config_.max_path_etx) return false;

  // Optimistic link cost for the candidate: the white bit was set on its
  // packet, so assume a near-perfect link until measured.
  const double candidate_cost = beacon->path_etx + 1.0;

  // Better than the route provided by >= 1 current table entry? Entries
  // without a usable route are "trivially worse", but only a table MOSTLY
  // made of them justifies admission on that basis alone — otherwise each
  // still-maturing entry would green-light an eviction, and the resulting
  // churn would keep every entry immature forever (this matters for
  // probe-based estimators, whose entries need a neighbor's reverse
  // report before they become usable).
  std::size_t useless = 0;
  std::size_t total = 0;
  double worst = -1.0;
  for (const NodeId n : estimator_.neighbors()) {
    ++total;
    const auto cost = total_cost(n);
    if (!cost.has_value()) {
      ++useless;
    } else {
      worst = std::max(worst, *cost);
    }
  }
  if (total == 0) return true;
  if (useless * 2 > total) return true;
  if (worst < 0.0) return false;
  return candidate_cost < worst;
}

}  // namespace fourbit::net
