// Data-plane forwarding: origination queue, per-hop retransmission, and
// duplicate suppression.
//
// Every unicast transmission outcome is reported to the link estimator —
// this is where the paper's ACK bit flows from layer 2 into the
// estimator, at a rate commensurate with the data traffic.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>

#include "common/ids.hpp"
#include "link/estimator.hpp"
#include "net/config.hpp"
#include "net/packets.hpp"
#include "net/routing_engine.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "stats/metrics.hpp"

namespace fourbit::net {

/// Fixed-capacity FIFO set for (origin, seq) duplicate detection.
class DupCache {
 public:
  explicit DupCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns true if the key was already present; inserts it otherwise
  /// (evicting the oldest entry at capacity).
  bool check_and_insert(NodeId origin, std::uint16_t seq) {
    const std::uint32_t key =
        static_cast<std::uint32_t>(origin.value()) << 16 | seq;
    if (set_.contains(key)) return true;
    if (fifo_.size() >= capacity_ && !fifo_.empty()) {
      set_.erase(fifo_.front());
      fifo_.pop_front();
    }
    fifo_.push_back(key);
    set_.insert(key);
    return false;
  }

  [[nodiscard]] std::size_t size() const { return fifo_.size(); }

  void clear() {
    fifo_.clear();
    set_.clear();
  }

 private:
  std::size_t capacity_;
  std::deque<std::uint32_t> fifo_;
  std::unordered_set<std::uint32_t> set_;
};

class ForwardingEngine {
 public:
  /// Sends a network payload to `dst` over the MAC; the callback reports
  /// the layer-2 ack outcome of that single transmission.
  using DataSender = std::function<void(NodeId dst,
                                        std::vector<std::uint8_t> payload,
                                        std::function<void(bool acked)>)>;

  /// Invoked at a root for every (non-duplicate) delivered packet.
  using SinkHandler = std::function<void(const DataHeader&,
                                         std::span<const std::uint8_t>)>;

  ForwardingEngine(sim::Simulator& sim, NodeId self, RoutingEngine& routing,
                   link::LinkEstimator& estimator, CollectionConfig config,
                   stats::Metrics* metrics, sim::Rng rng);

  void set_data_sender(DataSender sender) { data_sender_ = std::move(sender); }
  void set_sink_handler(SinkHandler handler) {
    sink_handler_ = std::move(handler);
  }

  /// Originates a collection packet. Returns false on a full queue.
  bool send(std::span<const std::uint8_t> app_payload);

  /// A data frame arrived from the MAC (already ack'd at layer 2).
  void on_data(NodeId from, std::span<const std::uint8_t> bytes,
               const link::PacketPhyInfo& phy);

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::uint16_t packets_originated() const {
    return next_seq_;
  }

  /// Node crash: drops the queue and duplicate cache, forgets the
  /// in-flight transmission (its MAC callback was dropped with the MAC
  /// queue) and stops the service timer. next_seq_ deliberately survives:
  /// it is the metrics layer's per-origin packet index, and restarting it
  /// would alias pre-crash packets in every duplicate filter downstream.
  void crash();

 private:
  struct Queued {
    DataHeader header;
    std::vector<std::uint8_t> payload;
    int transmissions = 0;
  };

  void service();
  void transmit_head();
  void on_tx_result(bool acked);
  void schedule_service(sim::Duration delay);
  void emit_drop(sim::DropReason reason, const DataHeader& header);

  sim::Simulator& sim_;
  NodeId self_;
  RoutingEngine& routing_;
  link::LinkEstimator& estimator_;
  CollectionConfig config_;
  stats::Metrics* metrics_;
  sim::Rng rng_;

  DataSender data_sender_;
  SinkHandler sink_handler_;

  std::deque<Queued> queue_;
  bool in_flight_ = false;
  NodeId in_flight_dst_ = kInvalidNodeId;
  std::uint16_t next_seq_ = 0;
  DupCache dup_cache_;
  sim::Timer service_timer_;

  // Per-node registry slots (resolved once; hot paths just increment).
  std::uint64_t* ctr_data_tx_ = nullptr;
  std::uint64_t* ctr_data_ack_ = nullptr;
  std::uint64_t* ctr_drops_ = nullptr;
};

}  // namespace fourbit::net
