// Collection-protocol configuration.
//
// One parameterized protocol covers CTP-class behaviour (Trickle beacons,
// deep retransmission, datapath feedback) and MultiHopLQI-class behaviour
// (fixed-interval beacons, shallow retransmission, no datapath feedback)
// — the estimator plugged in underneath determines the rest.
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace fourbit::net {

enum class BeaconTiming {
  kTrickle,  // adaptive: interval doubles when stable, resets on events
  kFixed,    // constant interval (MultiHopLQI style)
};

struct CollectionConfig {
  // ---- beaconing ----
  BeaconTiming beacon_timing = BeaconTiming::kTrickle;
  sim::Duration trickle_min = sim::Duration::from_ms(128);
  sim::Duration trickle_max = sim::Duration::from_seconds(500.0);

  /// Trickle ceiling at the ROOT. The root's advertisements anchor the
  /// whole cost gradient; keeping them reasonably fresh bounds how long a
  /// partitioned/looped region can persist before truth re-propagates.
  sim::Duration root_trickle_max = sim::Duration::from_seconds(120.0);
  sim::Duration fixed_beacon_interval = sim::Duration::from_seconds(30.0);

  // ---- forwarding ----
  /// Per-packet retransmission budget at one hop (CTP: 30, MHLQI: 5).
  int max_retransmissions = 30;
  /// Pause between retransmissions of the same packet.
  sim::Duration retx_delay = sim::Duration::from_ms(32);
  /// Pacing between successive packet transmissions (self-interference).
  sim::Duration tx_pacing_min = sim::Duration::from_ms(12);
  sim::Duration tx_pacing_max = sim::Duration::from_ms(36);
  std::size_t queue_capacity = 12;
  std::size_t dup_cache_capacity = 64;

  // ---- routing ----
  /// Hysteresis: switch parents only when the best candidate beats the
  /// current route by at least this many expected transmissions.
  double parent_switch_threshold = 1.0;
  /// Route cost ceiling; beyond this a node advertises "no route".
  double max_path_etx = 250.0;
  /// Whether the network layer pins its current parent in the estimator
  /// table (the paper's pin bit). On for every protocol profile — eviction
  /// of the in-use link is never sensible.
  bool pin_parent = true;
  /// Whether a datapath loop signal / delivery failure resets the beacon
  /// timer (CTP yes, MultiHopLQI no).
  bool datapath_feedback = true;

  /// Whether overheard data frames refresh the sender's route state
  /// (CTP snoops; MultiHopLQI does not).
  bool snoop = true;

  /// Periodic route re-evaluation.
  sim::Duration route_update_interval = sim::Duration::from_seconds(8.0);

  /// Minimum spacing between Trickle resets at one node. Prevents
  /// estimate noise from holding the network at the fastest beacon rate.
  sim::Duration min_reset_spacing = sim::Duration::from_seconds(10.0);

  /// Hop cap: packets whose time-has-lived exceeds this are dropped (and
  /// reported as a loop signal). Bounds the traffic amplification of a
  /// transient routing loop.
  int max_thl = 32;

  /// Neighbor route state older than this is not used for parent
  /// selection. Stale advertised costs are the fuel of count-to-infinity
  /// loops; expiring them forces a pull/beacon exchange instead.
  sim::Duration route_expiry = sim::Duration::from_seconds(240.0);

  /// After this many CONSECUTIVE retransmission-budget exhaustions toward
  /// the current parent, the parent is presumed dead: its pin is dropped,
  /// its table entry and route state evicted, and the route recomputed.
  /// Without this a crashed parent wedges its children forever — the pin
  /// bit blocks eviction and the parent's route entry never expires.
  /// 0 disables eviction (MultiHopLQI keeps its original no-feedback
  /// behavior, which is part of the paper's contrast).
  int parent_evict_failures = 3;
};

}  // namespace fourbit::net
