// One node's full collection stack: estimator + routing + forwarding,
// glued to a CSMA MAC.
//
// The glue owns the layer-2.5 dispatch byte that multiplexes estimator
// beacons and data packets over the MAC, and converts the PHY's RxInfo
// into the narrow PacketPhyInfo the estimator interface accepts.
#pragma once

#include <memory>
#include <span>

#include "common/ids.hpp"
#include "link/estimator.hpp"
#include "mac/mac.hpp"
#include "net/config.hpp"
#include "net/forwarding_engine.hpp"
#include "net/routing_engine.hpp"
#include "stats/metrics.hpp"

namespace fourbit::net {

class CollectionNode {
 public:
  CollectionNode(sim::Simulator& sim, mac::Mac& mac,
                 std::unique_ptr<link::LinkEstimator> estimator, bool is_root,
                 CollectionConfig config, stats::Metrics* metrics,
                 sim::Rng rng);

  CollectionNode(const CollectionNode&) = delete;
  CollectionNode& operator=(const CollectionNode&) = delete;

  [[nodiscard]] NodeId id() const { return mac_.id(); }

  /// Starts routing (beacons, route evaluation). Call at the node's boot
  /// time; the radio listens from construction.
  void boot();

  /// Fault injection: wipes the whole stack — MAC queue and timers,
  /// forwarding queue and duplicate cache, routing state, estimator
  /// table (pins included, beacon seq restarted). The caller also turns
  /// the radio off; see runner::Network::crash_node. Idempotent.
  void crash();

  /// Ends a crash: restarts the MAC machinery and boots the (now empty)
  /// routing stack, exactly like a cold boot. No-op unless crashed.
  void reboot();

  [[nodiscard]] bool crashed() const { return crashed_; }

  /// Originates an application payload toward the collection root.
  /// A crashed node generates nothing (returns false).
  bool send(std::span<const std::uint8_t> app_payload) {
    if (crashed_) return false;
    return forwarding_.send(app_payload);
  }

  void set_sink_handler(ForwardingEngine::SinkHandler h) {
    forwarding_.set_sink_handler(std::move(h));
  }

  [[nodiscard]] link::LinkEstimator& estimator() { return *estimator_; }
  [[nodiscard]] RoutingEngine& routing() { return routing_; }
  [[nodiscard]] const RoutingEngine& routing() const { return routing_; }
  [[nodiscard]] ForwardingEngine& forwarding() { return forwarding_; }

 private:
  // Layer 2.5 dispatch ids (arbitrary, just distinct on the wire).
  static constexpr std::uint8_t kDispatchBeacon = 0xF1;
  static constexpr std::uint8_t kDispatchData = 0xF2;

  void on_mac_rx(NodeId src, std::uint8_t dsn,
                 std::span<const std::uint8_t> payload,
                 const phy::RxInfo& info);

  sim::Simulator& sim_;
  mac::Mac& mac_;
  std::unique_ptr<link::LinkEstimator> estimator_;
  stats::Metrics* metrics_;
  RoutingEngine routing_;
  ForwardingEngine forwarding_;
  bool crashed_ = false;
};

}  // namespace fourbit::net
