#include "net/packets.hpp"

#include "common/byte_io.hpp"

namespace fourbit::net {

std::vector<std::uint8_t> RoutingBeacon::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(kBytes);
  ByteWriter w{out};
  w.u8(pull ? 0x01 : 0x00);
  w.u16(parent.value());
  w.u16(quantize_etx(path_etx));
  return out;
}

std::optional<RoutingBeacon> RoutingBeacon::decode(
    std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  RoutingBeacon b;
  b.pull = (r.u8() & 0x01) != 0;
  b.parent = NodeId{r.u16()};
  b.path_etx = dequantize_etx(r.u16());
  if (!r.ok()) return std::nullopt;
  return b;
}

std::vector<std::uint8_t> DataHeader::encode(
    std::span<const std::uint8_t> app_payload) const {
  std::vector<std::uint8_t> out;
  out.reserve(kBytes + app_payload.size());
  ByteWriter w{out};
  w.u16(origin.value());
  w.u16(seq);
  w.u8(thl);
  w.u16(quantize_etx(sender_path_etx));
  w.bytes(app_payload);
  return out;
}

std::optional<DataView> decode_data_view(
    std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  DataView d;
  d.header.origin = NodeId{r.u16()};
  d.header.seq = r.u16();
  d.header.thl = r.u8();
  d.header.sender_path_etx = dequantize_etx(r.u16());
  if (!r.ok()) return std::nullopt;
  d.app_payload = r.rest();
  return d;
}

std::optional<DecodedData> decode_data(std::span<const std::uint8_t> bytes) {
  const auto view = decode_data_view(bytes);
  if (!view.has_value()) return std::nullopt;
  DecodedData d;
  d.header = view->header;
  d.app_payload.assign(view->app_payload.begin(), view->app_payload.end());
  return d;
}

}  // namespace fourbit::net
