// The Trickle algorithm (Levis et al., NSDI'04) as a reusable timer.
//
// Trickle adaptively paces periodic traffic: each interval I, a node
// picks a random firing point t in [I/2, I], fires unless it has been
// suppressed by k consistent messages heard this interval, then doubles
// I up to Imax. Hearing an inconsistency resets I to Imin. CTP paces its
// routing beacons exactly this way.
#pragma once

#include <algorithm>
#include <functional>

#include "common/assert.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace fourbit::net {

struct TrickleConfig {
  sim::Duration min_interval = sim::Duration::from_ms(128);
  sim::Duration max_interval = sim::Duration::from_seconds(500.0);

  /// Suppression constant k: if at least k "consistent" messages are
  /// heard within the current interval, the firing is suppressed.
  /// 0 disables suppression (fire every interval).
  int redundancy_k = 0;
};

class TrickleTimer {
 public:
  /// `fire` runs at the chosen point of each non-suppressed interval.
  TrickleTimer(sim::Simulator& sim, TrickleConfig config,
               std::function<void()> fire, sim::Rng rng)
      : sim_(sim),
        config_(config),
        fire_(std::move(fire)),
        rng_(rng),
        interval_(config.min_interval),
        timer_(sim, [this] { on_timer(); }) {
    FOURBIT_ASSERT(config_.min_interval.us() > 0, "Imin must be positive");
    FOURBIT_ASSERT(config_.max_interval >= config_.min_interval,
                   "Imax must be >= Imin");
  }

  /// Starts (or restarts) at the minimum interval.
  void start() {
    running_ = true;
    interval_ = config_.min_interval;
    begin_interval();
  }

  void stop() {
    running_ = false;
    timer_.stop();
  }

  /// An inconsistency was observed: reset to the fastest rate. No-op if
  /// already in the minimum interval (per the Trickle specification).
  void reset() {
    if (!running_) return;
    if (interval_ == config_.min_interval) return;
    interval_ = config_.min_interval;
    begin_interval();
  }

  /// A consistent message was heard (feeds the suppression counter).
  void consistent() { ++heard_; }

  /// Caps the maximum interval (e.g. a root keeping beacons fresh).
  void set_max_interval(sim::Duration max) {
    config_.max_interval = std::max(max, config_.min_interval);
    interval_ = std::min(interval_, config_.max_interval);
  }

  [[nodiscard]] sim::Duration current_interval() const { return interval_; }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t fires() const { return fires_; }
  [[nodiscard]] std::uint64_t suppressions() const { return suppressions_; }

 private:
  void begin_interval() {
    heard_ = 0;
    // Fire point uniform in [I/2, I].
    const double base = interval_.seconds();
    timer_.start_one_shot(
        sim::Duration::from_seconds(rng_.uniform(base / 2.0, base)));
  }

  void on_timer() {
    const bool suppressed =
        config_.redundancy_k > 0 && heard_ >= config_.redundancy_k;
    if (suppressed) {
      ++suppressions_;
    } else {
      ++fires_;
      fire_();
    }
    interval_ = std::min(interval_ * 2.0, config_.max_interval);
    if (running_) begin_interval();
  }

  sim::Simulator& sim_;
  TrickleConfig config_;
  std::function<void()> fire_;
  sim::Rng rng_;
  sim::Duration interval_;
  sim::Timer timer_;
  bool running_ = false;
  int heard_ = 0;
  std::uint64_t fires_ = 0;
  std::uint64_t suppressions_ = 0;
};

}  // namespace fourbit::net
