// Collection-tree routing engine (CTP-style).
//
// Consumes link estimates from a LinkEstimator through the narrow
// interface, maintains per-neighbor route state, selects the parent with
// the lowest total path ETX (with hysteresis), and broadcasts routing
// beacons on a Trickle timer. It is also the network-layer half of two of
// the paper's four bits: it PINS the current parent's table entry and
// answers the estimator's COMPARE-bit queries from its route table.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "link/estimator.hpp"
#include "net/config.hpp"
#include "net/packets.hpp"
#include "net/trickle.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "stats/metrics.hpp"

namespace fourbit::net {

class RoutingEngine final : public link::CompareProvider {
 public:
  /// Hands a routing-beacon payload to the node glue for wrapping and
  /// broadcast.
  using BeaconSender = std::function<void(std::vector<std::uint8_t>)>;

  /// `metrics` (optional) receives route-availability transitions for
  /// the recovery metrics (time-to-first-route, time-to-reroute).
  RoutingEngine(sim::Simulator& sim, NodeId self, bool is_root,
                link::LinkEstimator& estimator, CollectionConfig config,
                sim::Rng rng, stats::Metrics* metrics = nullptr);

  void set_beacon_sender(BeaconSender sender) {
    beacon_sender_ = std::move(sender);
  }

  /// Starts beaconing and periodic route evaluation (call at node boot).
  void start();

  // ---- inputs ----------------------------------------------------------

  /// A routing beacon (already unwrapped by the estimator) from `from`.
  void on_beacon(NodeId from, std::span<const std::uint8_t> payload);

  /// A data frame from `from` toward somebody else was overheard; its
  /// header advertises the sender's route cost. Snooping keeps route
  /// state fresher than beacons alone (CTP does the same).
  void on_snooped_cost(NodeId from, double path_etx);

  /// The forwarder exhausted its retransmission budget toward `to`.
  /// Repeated failures toward the pinned parent eventually evict it
  /// (config.parent_evict_failures) instead of wedging on the pin bit.
  void on_delivery_failure(NodeId to);

  /// A unicast toward `to` was acknowledged: the link is alive, so any
  /// failure streak toward it ends here.
  void on_delivery_success(NodeId to);

  /// The forwarder saw a datapath inconsistency (possible loop).
  void on_loop_detected();

  /// Node crash: stops all timers and wipes route state (table, parent,
  /// cost, Trickle phase). start() afterwards models the reboot.
  void crash();

  // ---- route state -----------------------------------------------------

  [[nodiscard]] bool is_root() const { return is_root_; }
  [[nodiscard]] bool has_route() const;
  [[nodiscard]] NodeId parent() const { return parent_; }

  /// This node's advertised route cost (0 at a root, max when routeless).
  [[nodiscard]] double path_etx() const;

  /// Hop count to the root following current parents — computed by the
  /// caller (runner) across nodes; here we expose the neighbor route
  /// table for it and for tests.
  struct NeighborRoute {
    NodeId parent;
    double path_etx = 0.0;
    sim::Time last_heard;
  };
  [[nodiscard]] const std::unordered_map<NodeId, NeighborRoute>&
  route_table() const {
    return routes_;
  }

  [[nodiscard]] std::uint64_t parent_changes() const {
    return parent_changes_;
  }
  [[nodiscard]] std::uint64_t beacons_sent() const { return beacons_sent_; }
  [[nodiscard]] std::uint64_t parent_evictions() const {
    return parent_evictions_;
  }

  // ---- link::CompareProvider --------------------------------------------

  /// The compare bit: does `candidate`'s advertised route beat the route
  /// through at least one node currently in the estimator table?
  [[nodiscard]] bool compare_bit(
      NodeId candidate, std::span<const std::uint8_t> payload) override;

 private:
  void update_route();
  void recompute_route();
  void note_route_state();
  void evict_parent();
  void send_beacon();
  void reset_beacon_interval();
  void refresh_beacon_ceiling();

  [[nodiscard]] std::optional<double> total_cost(NodeId neighbor) const;

  sim::Simulator& sim_;
  NodeId self_;
  bool is_root_;
  link::LinkEstimator& estimator_;
  CollectionConfig config_;
  sim::Rng rng_;
  stats::Metrics* metrics_;
  BeaconSender beacon_sender_;

  std::unordered_map<NodeId, NeighborRoute> routes_;
  NodeId parent_ = kInvalidNodeId;
  double my_cost_;  // cached advertised cost

  TrickleTimer trickle_;       // adaptive beaconing (BeaconTiming::kTrickle)
  sim::Timer fixed_timer_;     // fixed-interval beaconing (kFixed)
  sim::Timer route_timer_;
  sim::Time last_reset_;
  bool started_ = false;

  std::uint64_t parent_changes_ = 0;
  std::uint64_t beacons_sent_ = 0;

  // Dead-parent detection: consecutive retx-budget exhaustions toward
  // the current parent, and when the streak began (the wedge duration
  // reported as time-to-reroute runs from that first failure).
  int parent_failures_ = 0;
  sim::Time failure_streak_start_;
  std::uint64_t parent_evictions_ = 0;
  bool had_route_ = false;  // last route availability reported to metrics
};

}  // namespace fourbit::net
