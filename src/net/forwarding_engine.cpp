#include "net/forwarding_engine.hpp"

#include <utility>

#include "common/assert.hpp"

namespace fourbit::net {

ForwardingEngine::ForwardingEngine(sim::Simulator& sim, NodeId self,
                                   RoutingEngine& routing,
                                   link::LinkEstimator& estimator,
                                   CollectionConfig config,
                                   stats::Metrics* metrics, sim::Rng rng)
    : sim_(sim),
      self_(self),
      routing_(routing),
      estimator_(estimator),
      config_(config),
      metrics_(metrics),
      rng_(rng),
      dup_cache_(config.dup_cache_capacity),
      service_timer_(sim, [this] { service(); }),
      ctr_data_tx_(sim.telemetry().counter("fwd", "data_tx", self.value())),
      ctr_data_ack_(sim.telemetry().counter("fwd", "data_ack", self.value())),
      ctr_drops_(sim.telemetry().counter("fwd", "drops", self.value())) {}

bool ForwardingEngine::send(std::span<const std::uint8_t> app_payload) {
  const std::uint16_t seq = next_seq_++;
  if (metrics_ != nullptr) metrics_->on_generated(self_, seq, sim_.now());

  if (routing_.is_root()) {
    // A root's own packets are already home.
    DataHeader h;
    h.origin = self_;
    h.seq = seq;
    if (metrics_ != nullptr) metrics_->on_delivered(self_, seq);
    if (sink_handler_) sink_handler_(h, app_payload);
    return true;
  }

  if (queue_.size() >= config_.queue_capacity) {
    if (metrics_ != nullptr) metrics_->on_queue_drop(self_);
    DataHeader h;
    h.origin = self_;
    h.seq = seq;
    emit_drop(sim::DropReason::kQueueFullOrigin, h);
    return false;
  }

  Queued q;
  q.header.origin = self_;
  q.header.seq = seq;
  q.header.thl = 0;
  q.payload.assign(app_payload.begin(), app_payload.end());
  queue_.push_back(std::move(q));
  service();
  return true;
}

void ForwardingEngine::on_data(NodeId from,
                               std::span<const std::uint8_t> bytes,
                               const link::PacketPhyInfo& phy) {
  estimator_.on_data_rx(from, phy);

  // Zero-copy parse: duplicates, sink deliveries and drops never copy
  // the payload; only a packet that enters the queue gets owned bytes.
  const auto decoded = decode_data_view(bytes);
  if (!decoded.has_value()) return;
  const DataHeader& h = decoded->header;

  // Retransmissions whose ack was lost, and looped copies, die here.
  if (dup_cache_.check_and_insert(h.origin, h.seq)) {
    if (metrics_ != nullptr) metrics_->on_duplicate_rx(self_);
    return;
  }

  if (routing_.is_root()) {
    if (metrics_ != nullptr) metrics_->on_delivered(h.origin, h.seq);
    if (sink_handler_) sink_handler_(h, decoded->app_payload);
    return;
  }

  // Datapath validation: the sender routed *toward* us, so its advertised
  // cost must exceed ours. If not, the gradient is inconsistent (loop).
  if (routing_.has_route() && h.sender_path_etx < routing_.path_etx()) {
    routing_.on_loop_detected();
  }

  // Hop cap: a packet that has lived this long is circling. Drop it and
  // treat it as a loop signal.
  if (static_cast<int>(h.thl) + 1 > config_.max_thl) {
    routing_.on_loop_detected();
    if (metrics_ != nullptr) metrics_->on_queue_drop(self_);
    emit_drop(sim::DropReason::kThlExceeded, h);
    return;
  }

  if (queue_.size() >= config_.queue_capacity) {
    if (metrics_ != nullptr) metrics_->on_queue_drop(self_);
    emit_drop(sim::DropReason::kQueueFullForward, h);
    return;
  }

  Queued q;
  q.header = h;
  q.header.thl = static_cast<std::uint8_t>(h.thl + 1);
  q.payload.assign(decoded->app_payload.begin(), decoded->app_payload.end());
  queue_.push_back(std::move(q));
  service();
}

void ForwardingEngine::schedule_service(sim::Duration delay) {
  service_timer_.start_one_shot(delay);
}

void ForwardingEngine::service() {
  if (in_flight_ || queue_.empty()) return;
  if (!routing_.has_route()) {
    // No parent yet; try again once routing has had a chance to converge.
    schedule_service(sim::Duration::from_seconds(1.0));
    return;
  }
  transmit_head();
}

void ForwardingEngine::transmit_head() {
  FOURBIT_ASSERT(!queue_.empty(), "transmit with an empty queue");
  FOURBIT_ASSERT(data_sender_ != nullptr, "forwarder has no data sender");

  Queued& q = queue_.front();
  q.header.sender_path_etx = routing_.path_etx();
  ++q.transmissions;
  in_flight_ = true;
  in_flight_dst_ = routing_.parent();
  if (metrics_ != nullptr) metrics_->on_data_tx(self_);
  ++*ctr_data_tx_;
  sim_.telemetry().emit(q.transmissions > 1 ? sim::EventKind::kDataRetx
                                            : sim::EventKind::kDataTx,
                        self_.value(), in_flight_dst_.value(), q.header.seq,
                        static_cast<std::uint16_t>(q.transmissions));

  data_sender_(in_flight_dst_, q.header.encode(q.payload),
               [this](bool acked) { on_tx_result(acked); });
}

void ForwardingEngine::on_tx_result(bool acked) {
  FOURBIT_ASSERT(in_flight_ && !queue_.empty(), "tx result with no packet");
  in_flight_ = false;

  // THE ACK BIT: every unicast outcome feeds the estimator. The outcome
  // belongs to the link the frame actually went over — the route may have
  // moved on while the frame was in flight.
  const NodeId parent = in_flight_dst_;
  estimator_.on_unicast_result(parent, acked);

  Queued& q = queue_.front();
  if (acked) {
    ++*ctr_data_ack_;
    sim_.telemetry().emit(sim::EventKind::kDataAck, self_.value(),
                          parent.value(), q.header.seq);
    routing_.on_delivery_success(parent);
    queue_.pop_front();
    const double lo = config_.tx_pacing_min.seconds();
    const double hi = config_.tx_pacing_max.seconds();
    schedule_service(sim::Duration::from_seconds(rng_.uniform(lo, hi)));
    return;
  }

  if (q.transmissions > config_.max_retransmissions) {
    const DataHeader dropped = q.header;
    queue_.pop_front();
    if (metrics_ != nullptr) metrics_->on_retx_drop(self_);
    emit_drop(sim::DropReason::kRetxExhausted, dropped);
    routing_.on_delivery_failure(parent);
    schedule_service(config_.retx_delay);
    return;
  }

  // Retry (possibly toward a different parent if routing moved on).
  schedule_service(config_.retx_delay);
}

void ForwardingEngine::emit_drop(sim::DropReason reason,
                                 const DataHeader& header) {
  ++*ctr_drops_;
  sim_.telemetry().emit(sim::EventKind::kDataDrop, self_.value(),
                        header.origin.value(), header.seq,
                        static_cast<std::uint16_t>(reason));
}

void ForwardingEngine::crash() {
  queue_.clear();
  in_flight_ = false;
  in_flight_dst_ = kInvalidNodeId;
  service_timer_.stop();
  dup_cache_.clear();
}

}  // namespace fourbit::net
