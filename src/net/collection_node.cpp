#include "net/collection_node.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/byte_io.hpp"

namespace fourbit::net {

CollectionNode::CollectionNode(sim::Simulator& sim, mac::Mac& mac,
                               std::unique_ptr<link::LinkEstimator> estimator,
                               bool is_root, CollectionConfig config,
                               stats::Metrics* metrics, sim::Rng rng)
    : sim_(sim),
      mac_(mac),
      estimator_(std::move(estimator)),
      metrics_(metrics),
      routing_(sim, mac.id(), is_root, *estimator_, config,
               rng.fork("routing"), metrics),
      forwarding_(sim, mac.id(), routing_, *estimator_, config, metrics,
                  rng.fork("forwarding")) {
  FOURBIT_ASSERT(estimator_ != nullptr, "node needs a link estimator");
  estimator_->set_telemetry(&sim.telemetry(), mac.id());

  mac_.set_rx_handler([this](NodeId src, std::uint8_t dsn,
                             std::span<const std::uint8_t> payload,
                             const phy::RxInfo& info) {
    on_mac_rx(src, dsn, payload, info);
  });

  if (config.snoop) {
    mac_.set_snoop_handler([this](NodeId src, std::uint8_t,
                                  std::span<const std::uint8_t> payload,
                                  const phy::RxInfo&) {
      // Overheard unicast data: refresh the sender's advertised cost.
      // Header-only view parse — snooping every neighbor's traffic must
      // not copy every neighbor's payloads.
      if (payload.empty() || payload[0] != kDispatchData) return;
      const auto decoded = decode_data_view(payload.subspan(1));
      if (!decoded.has_value()) return;
      routing_.on_snooped_cost(src, decoded->header.sender_path_etx);
    });
  }

  routing_.set_beacon_sender([this](std::vector<std::uint8_t> payload) {
    // Estimator wraps the routing payload (layer 2.5), then the dispatch
    // byte goes in front and the result is broadcast.
    std::vector<std::uint8_t> wrapped = estimator_->wrap_beacon(payload);
    std::vector<std::uint8_t> frame;
    frame.reserve(1 + wrapped.size());
    frame.push_back(kDispatchBeacon);
    frame.insert(frame.end(), wrapped.begin(), wrapped.end());
    if (metrics_ != nullptr) metrics_->on_beacon_tx(id());
    sim_.telemetry().emit(sim::EventKind::kBeaconTx, id().value());
    mac_.send(kBroadcastId, frame, nullptr);
  });

  forwarding_.set_data_sender(
      [this](NodeId dst, std::vector<std::uint8_t> payload,
             std::function<void(bool)> done) {
        std::vector<std::uint8_t> frame;
        frame.reserve(1 + payload.size());
        frame.push_back(kDispatchData);
        frame.insert(frame.end(), payload.begin(), payload.end());
        mac_.send(dst, frame,
                  [done = std::move(done)](const mac::TxResult& result) {
                    if (done) done(result.acked);
                  });
      });
}

void CollectionNode::boot() { routing_.start(); }

void CollectionNode::crash() {
  if (crashed_) return;
  crashed_ = true;
  // Order matters: the MAC reset drops its queue (and the send callbacks
  // forwarding is waiting on) before the upper layers are wiped, so no
  // completion can fire into half-dead state.
  mac_.reset();
  forwarding_.crash();
  routing_.crash();
  estimator_->reset();
}

void CollectionNode::reboot() {
  if (!crashed_) return;
  crashed_ = false;
  mac_.restart();
  boot();
}

void CollectionNode::on_mac_rx(NodeId src, std::uint8_t /*dsn*/,
                               std::span<const std::uint8_t> payload,
                               const phy::RxInfo& info) {
  if (crashed_) return;  // belt and braces; the radio should be off too
  if (payload.empty()) return;
  const std::uint8_t dispatch = payload[0];
  const auto body = payload.subspan(1);

  link::PacketPhyInfo phy_info;
  phy_info.white = info.white;
  phy_info.lqi = info.lqi;

  switch (dispatch) {
    case kDispatchBeacon: {
      // One beacon-rx event regardless of which estimator is running (they
      // each parse their own layer-2.5 header).
      sim_.telemetry().emit(sim::EventKind::kBeaconRx, id().value(),
                            src.value());
      const auto routing_payload =
          estimator_->unwrap_beacon(src, body, phy_info);
      if (routing_payload.has_value()) {
        routing_.on_beacon(src, *routing_payload);
      }
      break;
    }
    case kDispatchData:
      forwarding_.on_data(src, body, phy_info);
      break;
    default:
      break;  // unknown layer 2.5 protocol; drop
  }
}

}  // namespace fourbit::net
