// testbed_comparison: the paper's headline experiment as a user program —
// run 4B, stock CTP and MultiHopLQI on both testbed presets and print a
// comparison table.
//
//   $ ./testbed_comparison [minutes=15] [seeds=2]
#include <cstdio>
#include <cstdlib>

#include "runner/experiment.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

namespace {

void run_testbed(const char* name,
                 topology::Testbed (*make)(sim::Rng&), double minutes,
                 int seeds) {
  std::printf("--- %s ---\n", name);
  std::printf("%-14s %8s %8s %10s %14s\n", "protocol", "cost", "depth",
              "delivery", "beacons/node");
  for (const auto profile :
       {runner::Profile::kFourBit, runner::Profile::kCtpT2,
        runner::Profile::kMultihopLqi}) {
    double cost = 0.0;
    double depth = 0.0;
    double delivery = 0.0;
    double beacons = 0.0;
    std::size_t nodes = 1;
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 7000 + static_cast<std::uint64_t>(s);
      sim::Rng rng{seed};
      runner::ExperimentConfig cfg;
      cfg.testbed = make(rng);
      nodes = cfg.testbed.topology.size();
      cfg.profile = profile;
      cfg.duration = sim::Duration::from_minutes(minutes);
      cfg.seed = seed;
      const auto r = runner::run_experiment(cfg);
      cost += r.cost;
      depth += r.mean_depth;
      delivery += r.delivery_ratio;
      beacons += static_cast<double>(r.beacon_tx);
    }
    std::printf("%-14s %8.2f %8.2f %9.1f%% %14.1f\n",
                runner::profile_name(profile).data(), cost / seeds,
                depth / seeds, delivery / seeds * 100.0,
                beacons / seeds / static_cast<double>(nodes));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const double minutes = argc > 1 ? std::atof(argv[1]) : 15.0;
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 2;

  std::printf(
      "Collection-protocol comparison (%0.f min x %d seeds per cell)\n\n",
      minutes, seeds);
  run_testbed("Mirage-like (85 nodes)", topology::mirage, minutes, seeds);
  run_testbed("Tutornet-like (94 nodes)", topology::tutornet, minutes,
              seeds);

  std::printf(
      "paper reference: 4B cut cost 29%% (Mirage) / 44%% (Tutornet) below\n"
      "MultiHopLQI while delivering 99.9%% / 99%% of packets vs 93%% / "
      "85%%.\n");
  return 0;
}
