// link_survey: characterize a testbed's radio environment the way the
// measurement studies the paper builds on did (Zhao & Govindan; Zuniga &
// Krishnamachari): per-distance PRR scatter, the size of the gray zone,
// and link asymmetry.
//
//   $ ./link_survey [mirage|tutornet]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "phy/channel.hpp"
#include "phy/interference.hpp"
#include "sim/simulator.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

int main(int argc, char** argv) {
  const bool tutor = argc > 1 && std::strcmp(argv[1], "tutornet") == 0;
  sim::Rng rng{12};
  const topology::Testbed tb =
      tutor ? topology::tutornet(rng) : topology::mirage(rng);

  sim::Simulator sim;
  phy::Channel channel{sim, tb.environment.phy, tb.environment.propagation,
                       std::make_unique<phy::NullInterference>(),
                       rng.fork("channel")};

  std::vector<std::unique_ptr<phy::Radio>> radios;
  sim::Rng hw = rng.fork("hardware");
  for (const auto& n : tb.topology.nodes) {
    radios.push_back(std::make_unique<phy::Radio>(
        channel, n.id, n.position,
        phy::HardwareProfile::sample(tb.environment.hardware, hw),
        PowerDbm{0.0}));
  }

  // Survey every ordered pair: distance, PRR, and the PRR of the reverse
  // direction.
  struct Link {
    double distance;
    double prr_fwd;
    double prr_rev;
  };
  std::vector<Link> links;
  for (std::size_t i = 0; i < radios.size(); ++i) {
    for (std::size_t j = i + 1; j < radios.size(); ++j) {
      Link l;
      l.distance = distance_m(radios[i]->position(), radios[j]->position());
      l.prr_fwd = channel.mean_prr(*radios[i], *radios[j], 40);
      l.prr_rev = channel.mean_prr(*radios[j], *radios[i], 40);
      links.push_back(l);
    }
  }

  std::printf("=== link survey: %s (%zu nodes, %zu pairs, 0 dBm) ===\n\n",
              tutor ? "Tutornet-like" : "Mirage-like", radios.size(),
              links.size());

  // PRR vs distance, binned.
  std::printf("%-12s %8s %8s %8s %8s %10s\n", "distance", "links", "good",
              "gray", "dead", "mean PRR");
  for (double lo = 0.0; lo < 80.0; lo += 10.0) {
    int total = 0;
    int good = 0;
    int gray = 0;
    int dead = 0;
    double sum = 0.0;
    for (const auto& l : links) {
      if (l.distance < lo || l.distance >= lo + 10.0) continue;
      ++total;
      const double p = std::max(l.prr_fwd, l.prr_rev);
      sum += p;
      if (p > 0.9) {
        ++good;
      } else if (p > 0.1) {
        ++gray;
      } else {
        ++dead;
      }
    }
    if (total == 0) continue;
    std::printf("%3.0f-%3.0f m   %8d %8d %8d %8d %9.2f\n", lo, lo + 10.0,
                total, good, gray, dead, sum / total);
  }

  // Asymmetry: |PRR_fwd - PRR_rev| over links that work at all.
  int usable = 0;
  int asym_mild = 0;
  int asym_severe = 0;
  for (const auto& l : links) {
    if (std::max(l.prr_fwd, l.prr_rev) < 0.5) continue;
    ++usable;
    const double delta = std::abs(l.prr_fwd - l.prr_rev);
    if (delta > 0.2) ++asym_mild;
    if (delta > 0.5) ++asym_severe;
  }
  std::printf(
      "\nasymmetry over %d usable links: %d (%.0f%%) differ by >0.2 PRR, "
      "%d (%.0f%%) by >0.5\n",
      usable, asym_mild, 100.0 * asym_mild / std::max(usable, 1),
      asym_severe, 100.0 * asym_severe / std::max(usable, 1));
  std::printf(
      "\n(the gray zone and one-way links above are the regimes where the\n"
      "paper's four bits pay off: PHY-only estimation cannot see them)\n");
  return 0;
}
