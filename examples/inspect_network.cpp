// inspect_network: run a collection protocol on the Mirage-like testbed
// and dump per-node routing/estimator state at intervals — a debugging
// and teaching tool for seeing how the tree forms and evolves.
//
//   $ ./inspect_network [minutes] [profile: 4b|lqi|ctp]
#include <cstdio>
#include <cstring>
#include <string>

#include "app/traffic.hpp"
#include "runner/network.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"
#include "topology/topology.hpp"

using namespace fourbit;

namespace {

void dump(runner::Network& net, sim::Simulator& sim) {
  const auto snap = net.tree_snapshot();
  std::printf(
      "\n=== t=%.0fs: routed %zu/%zu, mean depth %.2f | root beacons=%llu "
      "macq=%zu ===\n",
      sim.now().seconds(), snap.routed, snap.total, snap.mean_depth,
      static_cast<unsigned long long>(
          net.node(net.root_index()).routing().beacons_sent()),
      net.mac(net.root_index()).queue_depth());
  for (std::size_t i = 0; i < net.size() && i < 12; ++i) {
    auto& node = net.node(i);
    const auto& routing = node.routing();
    const auto parent = routing.parent();
    const auto etx = node.estimator().etx(parent);
    std::printf(
        "  node %2u: parent=%5u cost=%7.2f depth=%2d link-etx=%s "
        "tbl=%zu routes=%zu\n",
        node.id().value(), parent.value(), routing.path_etx(),
        snap.depths[i],
        etx ? std::to_string(*etx).substr(0, 5).c_str() : "  -  ",
        node.estimator().neighbors().size(), routing.route_table().size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double minutes = argc > 1 ? std::atof(argv[1]) : 10.0;
  runner::Profile profile = runner::Profile::kFourBit;
  if (argc > 2 && std::strcmp(argv[2], "lqi") == 0) {
    profile = runner::Profile::kMultihopLqi;
  } else if (argc > 2 && std::strcmp(argv[2], "ctp") == 0) {
    profile = runner::Profile::kCtpT2;
  } else if (argc > 2 && std::strcmp(argv[2], "ack") == 0) {
    profile = runner::Profile::kCtpUnidirAck;
  } else if (argc > 2 && std::strcmp(argv[2], "wc") == 0) {
    profile = runner::Profile::kCtpWhiteCompare;
  } else if (argc > 2 && std::strcmp(argv[2], "uncon") == 0) {
    profile = runner::Profile::kCtpUnconstrained;
  }
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  sim::Simulator sim;
  stats::Metrics metrics;
  sim::Rng rng{seed};
  const auto testbed = topology::mirage(rng);

  runner::Network::Options options;
  options.profile = profile;
  options.seed = seed;
  runner::Network net{sim, testbed, std::move(options), &metrics};
  net.start(sim::Duration::from_seconds(30.0), app::TrafficConfig{});

  const auto step = sim::Duration::from_seconds(60.0);
  const auto end = sim::Duration::from_minutes(minutes);
  for (sim::Duration t = step; t <= end; t = t + step) {
    sim.run_for(step);
    dump(net, sim);
  }

  // Detailed dump of a few nodes: every table entry with link estimate
  // and last-heard route state.
  for (std::size_t i = 1; i <= 5 && i < net.size(); ++i) {
    auto& node = net.node(i);
    std::printf("\nnode %u detail (parent=%u, cost=%.2f):\n",
                node.id().value(), node.routing().parent().value(),
                node.routing().path_etx());
    const auto& routes = node.routing().route_table();
    for (const NodeId n : node.estimator().neighbors()) {
      const auto etx = node.estimator().etx(n);
      const auto rit = routes.find(n);
      std::printf("  nbr %5u: link-etx=%-8s route=%s\n", n.value(),
                  etx ? std::to_string(*etx).substr(0, 6).c_str() : "-",
                  rit != routes.end()
                      ? (std::string("parent=") +
                         std::to_string(rit->second.parent.value()) +
                         " cost=" + std::to_string(rit->second.path_etx))
                            .c_str()
                      : "(none)");
    }
  }

  std::printf("\nfinal: cost=%.2f delivery=%.3f gen=%llu dlv=%llu dup=%llu\n",
              metrics.cost(), metrics.delivery_ratio(),
              static_cast<unsigned long long>(metrics.generated_total()),
              static_cast<unsigned long long>(metrics.delivered_unique_total()),
              static_cast<unsigned long long>(metrics.duplicate_rx()));
  return 0;
}
