// bursty_link_study: watch three estimators watch the same dying link.
//
// One unicast link carries steady traffic. Mid-run, receiver-side burst
// interference destroys most packets for two minutes (the paper's
// Figure 3 failure mode). We print, side by side, what each estimation
// strategy believes the link costs:
//   * LQI proxy      — from received packets only; never sees the bursts
//   * beacon PRR     — broadcast-probe estimation at beacon cadence
//   * 4B hybrid      — beacons + the ack bit
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "core/four_bit_estimator.hpp"
#include "estimators/lqi_estimator.hpp"
#include "mac/csma.hpp"
#include "phy/channel.hpp"
#include "phy/interference.hpp"
#include "sim/simulator.hpp"

using namespace fourbit;

int main() {
  sim::Simulator sim;
  sim::Rng rng{7};

  phy::PropagationConfig prop;
  prop.shadowing_sigma_db = 0.0;
  prop.asymmetry_sigma_db = 0.0;

  // Burst: 85% whole-packet loss at the receiver between t=120s and 240s.
  std::vector<phy::ScheduledBurstInterference::Burst> bursts = {
      {NodeId{2}, sim::Time::from_us(0) + sim::Duration::from_seconds(120.0),
       sim::Time::from_us(0) + sim::Duration::from_seconds(240.0), 0.85}};
  phy::Channel channel{sim, phy::PhyConfig{}, prop,
                       std::make_unique<phy::ScheduledBurstInterference>(
                           bursts),
                       rng.fork("channel")};

  phy::Radio tx_radio{channel, NodeId{1}, Position{0, 0},
                      phy::HardwareProfile{}, PowerDbm{0.0}};
  phy::Radio rx_radio{channel, NodeId{2}, Position{35, 0},
                      phy::HardwareProfile{}, PowerDbm{0.0}};
  mac::CsmaMac tx_mac{sim, tx_radio, mac::CsmaConfig{}, rng.fork("txmac")};
  mac::CsmaMac rx_mac{sim, rx_radio, mac::CsmaConfig{}, rng.fork("rxmac")};

  // The three observers. The LQI estimator lives at the RECEIVER (it
  // judges inbound packets); the 4B estimator lives at the SENDER (it
  // judges its own transmissions).
  core::FourBitEstimator fourb{core::FourBitConfig{}, rng.fork("4b")};
  estimators::LqiEstimator lqi{estimators::LqiEstimatorConfig{},
                               rng.fork("lqi")};
  {
    link::PacketPhyInfo seed{.white = true, .lqi = 110};
    const std::vector<std::uint8_t> wire{0};
    (void)fourb.unwrap_beacon(NodeId{2}, wire, seed);
  }

  rx_mac.set_rx_handler([&](NodeId src, std::uint8_t,
                            std::span<const std::uint8_t>,
                            const phy::RxInfo& info) {
    lqi.on_data_rx(src, {.white = info.white, .lqi = info.lqi});
  });

  // Beacon-PRR observer: the receiver counts periodic broadcast probes.
  int beacons_sent = 0;
  int beacons_heard = 0;
  rx_mac.set_rx_handler([&](NodeId src, std::uint8_t,
                            std::span<const std::uint8_t> payload,
                            const phy::RxInfo& info) {
    lqi.on_data_rx(src, {.white = info.white, .lqi = info.lqi});
    if (!payload.empty() && payload[0] == 0xBE) ++beacons_heard;
  });

  std::function<void()> send_beacon = [&] {
    tx_mac.send(kBroadcastId, std::vector<std::uint8_t>{0xBE}, nullptr);
    ++beacons_sent;
    sim.schedule_in(sim::Duration::from_seconds(10.0), send_beacon);
  };
  send_beacon();

  // Data traffic: one unicast packet per second, feeding the ack bit.
  std::function<void()> send_data = [&] {
    tx_mac.send(NodeId{2}, std::vector<std::uint8_t>(30, 0xDA),
                [&](const mac::TxResult& r) {
                  fourb.on_unicast_result(NodeId{2}, r.acked);
                });
    sim.schedule_in(sim::Duration::from_seconds(1.0), send_data);
  };
  send_data();

  std::printf("time   | LQI-proxy ETX | beacon PRR | 4B hybrid ETX\n");
  std::printf("-------+---------------+------------+--------------\n");
  for (int t = 20; t <= 360; t += 20) {
    sim.run_until(sim::Time::from_us(0) +
                  sim::Duration::from_seconds(static_cast<double>(t)));
    const auto lqi_etx = lqi.etx(NodeId{1});
    const auto fb_etx = fourb.etx(NodeId{2});
    const double beacon_prr =
        beacons_sent > 0 ? static_cast<double>(beacons_heard) /
                               static_cast<double>(beacons_sent)
                         : 0.0;
    const char* phase =
        (t > 120 && t <= 240) ? "  <-- burst active" : "";
    std::printf("%4ds  | %13.2f | %10.2f | %12.2f%s\n", t,
                lqi_etx.value_or(0.0), beacon_prr, fb_etx.value_or(0.0),
                phase);
  }

  std::printf(
      "\nthe LQI proxy stays near 1.0 throughout (its packets all decode\n"
      "cleanly); the cumulative beacon PRR sags slowly; the 4B hybrid\n"
      "spikes within seconds of the burst and recovers after it.\n");
  return 0;
}
