// Quickstart: run the 4B estimator under a CTP-style collection protocol
// on a small simulated testbed and print the headline metrics.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the public API: pick a testbed,
// pick a protocol profile, run, read the numbers.
#include <cstdio>

#include "runner/describe.hpp"
#include "runner/experiment.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

int main() {
  using namespace fourbit;

  // A testbed bundles node placement and the radio environment. The
  // Mirage preset mimics the 85-node indoor testbed of the paper.
  sim::Rng rng{42};
  runner::ExperimentConfig config;
  config.testbed = topology::mirage(rng);
  config.profile = runner::Profile::kFourBit;
  config.tx_power = PowerDbm{0.0};
  config.duration = sim::Duration::from_minutes(12.0);
  config.seed = 42;

  std::printf("%s\nrunning...\n", runner::describe(config).c_str());

  const runner::ExperimentResult r = runner::run_experiment(config);

  std::printf("\n  generated packets : %llu\n",
              static_cast<unsigned long long>(r.generated));
  std::printf("  delivered (unique): %llu\n",
              static_cast<unsigned long long>(r.delivered));
  std::printf("  delivery ratio    : %.4f\n", r.delivery_ratio);
  std::printf("  cost (tx/pkt)     : %.2f\n", r.cost);
  std::printf("  mean tree depth   : %.2f hops\n", r.mean_depth);
  std::printf("  beacons sent      : %llu\n",
              static_cast<unsigned long long>(r.beacon_tx));
  std::printf("  parent changes    : %llu\n",
              static_cast<unsigned long long>(r.parent_changes));
  std::printf("  retx drops        : %llu\n",
              static_cast<unsigned long long>(r.retx_drops));
  std::printf("  queue drops       : %llu\n",
              static_cast<unsigned long long>(r.queue_drops));
  std::printf("  duplicates seen   : %llu\n",
              static_cast<unsigned long long>(r.duplicates));
  std::printf("  routed at end     : %zu / %zu nodes\n", r.final_tree.routed,
              r.final_tree.total);
  return 0;
}
