// estimator_playground: drive the 4B estimator's public API directly —
// no radio, no simulator — to see how the four bits shape its estimates.
//
// This is the "library" use of fourbit::core: you can embed the estimator
// in any stack that can feed it beacons (with the white bit), unicast
// outcomes (the ack bit), and pin/compare signals from your routing layer.
#include <cstdio>
#include <string>
#include <vector>

#include "core/four_bit_estimator.hpp"
#include "link/estimator.hpp"
#include "sim/rng.hpp"

using namespace fourbit;

namespace {

/// A toy network layer: answers the compare bit from a fixed route table.
class ToyRouting final : public link::CompareProvider {
 public:
  bool compare_bit(NodeId candidate,
                   std::span<const std::uint8_t>) override {
    std::printf("  [compare bit] estimator asked about node %u -> %s\n",
                candidate.value(), answer ? "yes, better" : "no");
    return answer;
  }
  bool answer = true;
};

void show(const core::FourBitEstimator& est, NodeId n) {
  const auto etx = est.etx(n);
  const auto q = est.beacon_quality(n);
  std::printf("  node %u: ETX=%s beacon-quality=%s\n", n.value(),
              etx ? std::to_string(*etx).substr(0, 5).c_str() : "unknown",
              q ? std::to_string(*q).substr(0, 5).c_str() : "unknown");
}

}  // namespace

int main() {
  core::FourBitConfig cfg;
  cfg.table_capacity = 3;  // tiny table to show the admission machinery
  cfg.probabilistic_insert_p = 0.0;  // isolate the white/compare fast path
  core::FourBitEstimator est{cfg, sim::Rng{2024}};
  ToyRouting routing;
  est.set_compare_provider(&routing);

  std::printf("== 1. Bootstrap from beacons ==\n");
  link::PacketPhyInfo clean{.white = true, .lqi = 110};
  for (std::uint8_t seq = 0; seq < 4; ++seq) {
    const std::vector<std::uint8_t> wire{seq};
    (void)est.unwrap_beacon(NodeId{1}, wire, clean);
  }
  show(est, NodeId{1});

  std::printf("\n== 2. The ack bit refines the estimate ==\n");
  std::printf("  sending 10 unicast packets, 60%% acked...\n");
  const bool pattern[10] = {true, true, false, true, false,
                            true, true, false, true, false};
  for (const bool acked : pattern) est.on_unicast_result(NodeId{1}, acked);
  show(est, NodeId{1});

  std::printf("\n== 3. Pin the route in use; fill the table ==\n");
  if (est.pin(NodeId{1})) {
    std::printf("  pinned node 1 (our parent); churn cannot evict it\n");
  }
  for (std::uint16_t id = 2; id <= 3; ++id) {
    const std::vector<std::uint8_t> wire{0};
    (void)est.unwrap_beacon(NodeId{id}, wire, clean);
  }
  std::printf("  table: %zu/%zu entries\n", est.table_size(),
              cfg.table_capacity);

  std::printf("\n  a beacon WITHOUT the white bit (noisy packet):\n");
  link::PacketPhyInfo noisy{.white = false, .lqi = 78};
  const std::vector<std::uint8_t> wire{0};
  (void)est.unwrap_beacon(NodeId{4}, wire, noisy);
  show(est, NodeId{4});

  std::printf("\n  a WHITE beacon whose route wins the compare bit:\n");
  (void)est.unwrap_beacon(NodeId{5}, wire, clean);
  show(est, NodeId{5});

  std::printf("\n== 4. The pin bit holds against admission churn ==\n");
  routing.answer = true;
  for (std::uint16_t id = 10; id < 30; ++id) {
    (void)est.unwrap_beacon(NodeId{id}, wire, clean);
  }
  std::printf("  after 20 more admission attempts: ");
  show(est, NodeId{1});

  std::printf("\n== 5. A link goes dark; the failure streak shows it ==\n");
  for (int i = 0; i < 15; ++i) est.on_unicast_result(NodeId{1}, false);
  show(est, NodeId{1});
  std::printf(
      "\nthe estimate rose within ~5 transmissions of the outage — beacon-\n"
      "only estimators would wait for the next routing beacon to notice.\n");
  return 0;
}
