// Tests of the traffic generator: boot timing, rate, and jitter.
#include <gtest/gtest.h>

#include <memory>

#include "app/traffic.hpp"
#include "mac/csma.hpp"
#include "phy/channel.hpp"
#include "phy/interference.hpp"
#include "runner/network.hpp"
#include "sim/simulator.hpp"
#include "topology/topology.hpp"

namespace fourbit::app {
namespace {

/// Builds a single-node collection stack (as root, so every send counts
/// as generated+delivered locally) to observe traffic timing.
class TrafficFixture : public ::testing::Test {
 protected:
  TrafficFixture() {
    phy::PropagationConfig prop;
    prop.shadowing_sigma_db = 0.0;
    channel_ = std::make_unique<phy::Channel>(
        sim_, phy::PhyConfig{}, prop,
        std::make_unique<phy::NullInterference>(), sim::Rng{1});
    radio_ = std::make_unique<phy::Radio>(*channel_, NodeId{1},
                                          Position{0, 0},
                                          phy::HardwareProfile{},
                                          PowerDbm{0.0});
    mac_ = std::make_unique<mac::CsmaMac>(sim_, *radio_, mac::CsmaConfig{},
                                          sim::Rng{2});
    node_ = std::make_unique<net::CollectionNode>(
        sim_, *mac_,
        runner::make_estimator(runner::Profile::kFourBit, NodeId{1}, 10,
                               sim::Rng{3}),
        /*is_root=*/true, net::CollectionConfig{}, &metrics_, sim::Rng{4});
  }

  sim::Simulator sim_;
  stats::Metrics metrics_;
  std::unique_ptr<phy::Channel> channel_;
  std::unique_ptr<phy::Radio> radio_;
  std::unique_ptr<mac::CsmaMac> mac_;
  std::unique_ptr<net::CollectionNode> node_;
};

TEST_F(TrafficFixture, NoPacketsBeforeBoot) {
  TrafficConfig cfg;
  cfg.period = sim::Duration::from_seconds(5.0);
  TrafficGenerator gen{sim_, *node_, cfg, sim::Rng{5}};
  gen.start(sim::Time::from_us(0) + sim::Duration::from_seconds(20.0));
  sim_.run_for(sim::Duration::from_seconds(19.0));
  EXPECT_EQ(gen.packets_sent(), 0u);
}

TEST_F(TrafficFixture, RateMatchesPeriod) {
  TrafficConfig cfg;
  cfg.period = sim::Duration::from_seconds(10.0);
  cfg.jitter = 0.1;
  TrafficGenerator gen{sim_, *node_, cfg, sim::Rng{6}};
  gen.start(sim_.now());
  sim_.run_for(sim::Duration::from_minutes(60.0));
  // 360 expected at 1/10s over an hour; jitter averages out.
  EXPECT_NEAR(static_cast<double>(gen.packets_sent()), 360.0, 12.0);
  EXPECT_EQ(metrics_.generated_total(), gen.packets_sent());
}

TEST_F(TrafficFixture, JitterDesynchronizesIntervals) {
  TrafficConfig cfg;
  cfg.period = sim::Duration::from_seconds(10.0);
  cfg.jitter = 0.1;
  TrafficGenerator gen{sim_, *node_, cfg, sim::Rng{7}};
  gen.start(sim_.now());
  // Observe inter-packet gaps via the generated counter at fine steps.
  std::vector<double> send_times;
  std::uint64_t last = 0;
  for (int step = 0; step < 3000; ++step) {
    sim_.run_for(sim::Duration::from_ms(100));
    if (gen.packets_sent() != last) {
      last = gen.packets_sent();
      send_times.push_back(sim_.now().seconds());
    }
  }
  ASSERT_GT(send_times.size(), 10u);
  bool any_short = false;
  bool any_long = false;
  for (std::size_t i = 1; i < send_times.size(); ++i) {
    const double gap = send_times[i] - send_times[i - 1];
    EXPECT_GT(gap, 8.9);
    EXPECT_LT(gap, 11.2);
    if (gap < 9.8) any_short = true;
    if (gap > 10.2) any_long = true;
  }
  EXPECT_TRUE(any_short);
  EXPECT_TRUE(any_long);
}

TEST_F(TrafficFixture, StopHaltsTraffic) {
  TrafficConfig cfg;
  cfg.period = sim::Duration::from_seconds(1.0);
  TrafficGenerator gen{sim_, *node_, cfg, sim::Rng{8}};
  gen.start(sim_.now());
  sim_.run_for(sim::Duration::from_seconds(10.0));
  const auto before = gen.packets_sent();
  EXPECT_GT(before, 5u);
  gen.stop();
  sim_.run_for(sim::Duration::from_seconds(10.0));
  EXPECT_EQ(gen.packets_sent(), before);
}

}  // namespace
}  // namespace fourbit::app
