// Tests of the extension modules: energy accounting, ASCII maps, the
// snoop tap, alternative white-bit sources, FCS behaviour over the air,
// and the runner's profile factory.
#include <gtest/gtest.h>

#include <memory>

#include "mac/csma.hpp"
#include "phy/channel.hpp"
#include "phy/interference.hpp"
#include "runner/experiment.hpp"
#include "runner/profile.hpp"
#include "sim/simulator.hpp"
#include "stats/ascii_map.hpp"
#include "stats/energy.hpp"
#include "topology/topology.hpp"

namespace fourbit {
namespace {

// ---- EnergyModel -----------------------------------------------------------

TEST(EnergyTest, TxCurrentInterpolation) {
  stats::EnergyConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.tx_current_ma(PowerDbm{0.0}), 17.4);
  EXPECT_DOUBLE_EQ(cfg.tx_current_ma(PowerDbm{5.0}), 17.4);  // clamped
  EXPECT_DOUBLE_EQ(cfg.tx_current_ma(PowerDbm{-10.0}), 11.0);
  EXPECT_DOUBLE_EQ(cfg.tx_current_ma(PowerDbm{-25.0}), 8.5);
  EXPECT_DOUBLE_EQ(cfg.tx_current_ma(PowerDbm{-40.0}), 8.5);  // clamped
  // Midpoints interpolate.
  EXPECT_NEAR(cfg.tx_current_ma(PowerDbm{-5.0}), (11.0 + 17.4) / 2, 1e-9);
}

TEST(EnergyTest, ChargeAccumulatesPerNode) {
  stats::EnergyModel model;
  const auto airtime = sim::Duration::from_seconds(3600.0);  // 1 hour
  model.on_transmit(NodeId{1}, airtime, PowerDbm{0.0});
  model.on_transmit(NodeId{1}, airtime, PowerDbm{0.0});
  model.on_transmit(NodeId{2}, airtime, PowerDbm{-10.0});

  const auto report = model.report(sim::Duration::from_hours(2.0),
                                   {NodeId{1}, NodeId{2}, NodeId{3}});
  ASSERT_EQ(report.nodes.size(), 3u);
  // Worst node is node 1: 2 h of TX at 17.4 mA + 2 h listen at 18.8 mA.
  EXPECT_EQ(report.nodes[0].node, NodeId{1});
  EXPECT_NEAR(report.nodes[0].tx_mah, 2.0 * 17.4, 1e-9);
  EXPECT_NEAR(report.nodes[0].listen_mah, 2.0 * 18.8, 1e-9);
  // Node 3 never transmitted but still listens.
  const auto& idle = report.nodes[2];
  EXPECT_EQ(idle.node, NodeId{3});
  EXPECT_DOUBLE_EQ(idle.tx_mah, 0.0);
  EXPECT_NEAR(idle.listen_mah, 2.0 * 18.8, 1e-9);
}

TEST(EnergyTest, LifetimeProjectionScales) {
  stats::EnergyModel model;
  model.on_transmit(NodeId{1}, sim::Duration::from_seconds(36.0),
                    PowerDbm{0.0});
  const auto report =
      model.report(sim::Duration::from_hours(1.0), {NodeId{1}});
  // Draw in 1 h: 17.4 mA * 0.01 h + 18.8 mAh listen = ~18.974 mAh.
  // Per day: ~455 mAh; 2000 mAh battery -> ~4.4 days.
  EXPECT_NEAR(report.projected_lifetime_days, 2000.0 / (18.974 * 24.0),
              0.05);
}

TEST(EnergyTest, ChannelObserverFeedsModel) {
  sim::Simulator sim;
  phy::PropagationConfig prop;
  prop.shadowing_sigma_db = 0.0;
  prop.asymmetry_sigma_db = 0.0;
  phy::Channel channel{sim, phy::PhyConfig{}, prop,
                       std::make_unique<phy::NullInterference>(),
                       sim::Rng{1}};
  stats::EnergyModel model;
  channel.set_tx_observer(
      [&](NodeId n, sim::Duration airtime, PowerDbm p) {
        model.on_transmit(n, airtime, p);
      });
  phy::Radio a{channel, NodeId{1}, {0, 0}, phy::HardwareProfile{},
               PowerDbm{0.0}};
  a.transmit(std::vector<std::uint8_t>(10, 1), nullptr);
  sim.run();
  const auto report = model.report(sim::Duration::from_seconds(1.0),
                                   {NodeId{1}});
  EXPECT_GT(report.nodes[0].tx_mah, 0.0);
  // 16 bytes on air at 250 kbps = 512 us.
  EXPECT_EQ(report.nodes[0].tx_airtime.us(), 512);
}

// ---- ASCII map --------------------------------------------------------------

TEST(AsciiMapTest, RendersRootAndDepths) {
  std::vector<stats::AsciiMapEntry> entries = {
      {Position{0.0, 0.0}, 0},
      {Position{10.0, 0.0}, 1},
      {Position{0.0, 10.0}, 2},
      {Position{10.0, 10.0}, -1},
      {Position{5.0, 5.0}, 12},
  };
  const std::string map = stats::render_ascii_map(entries, 20, 10);
  EXPECT_NE(map.find('R'), std::string::npos);
  EXPECT_NE(map.find('1'), std::string::npos);
  EXPECT_NE(map.find('2'), std::string::npos);
  EXPECT_NE(map.find('.'), std::string::npos);  // routeless
  EXPECT_NE(map.find('+'), std::string::npos);  // depth > 9
}

TEST(AsciiMapTest, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(stats::render_ascii_map({}).empty());
  EXPECT_TRUE(
      stats::render_ascii_map({{Position{0, 0}, 0}}, 1, 1).empty());
  // A single node still renders.
  const std::string one =
      stats::render_ascii_map({{Position{3, 3}, 0}}, 10, 4);
  EXPECT_NE(one.find('R'), std::string::npos);
}

TEST(AsciiMapTest, ShallowerNodeWinsCell) {
  // Two nodes collapsing onto the same cell: the shallower one shows.
  std::vector<stats::AsciiMapEntry> entries = {
      {Position{0.0, 0.0}, 5},
      {Position{0.0, 0.0}, 1},      // same cell, shallower
      {Position{100.0, 100.0}, 3},  // stretch the bounding box
  };
  const std::string map = stats::render_ascii_map(entries, 30, 10);
  EXPECT_NE(map.find('1'), std::string::npos);
  EXPECT_EQ(map.find('5'), std::string::npos);
}

// ---- snoop tap ----------------------------------------------------------------

TEST(SnoopTest, OverheardUnicastReachesSnoopHandlerOnly) {
  sim::Simulator sim;
  phy::PropagationConfig prop;
  prop.shadowing_sigma_db = 0.0;
  prop.asymmetry_sigma_db = 0.0;
  phy::Channel channel{sim, phy::PhyConfig{}, prop,
                       std::make_unique<phy::NullInterference>(),
                       sim::Rng{2}};
  phy::Radio ra{channel, NodeId{1}, {0, 0}, phy::HardwareProfile{},
                PowerDbm{0.0}};
  phy::Radio rb{channel, NodeId{2}, {5, 0}, phy::HardwareProfile{},
                PowerDbm{0.0}};
  phy::Radio rc{channel, NodeId{3}, {-5, 0}, phy::HardwareProfile{},
                PowerDbm{0.0}};
  mac::CsmaMac ma{sim, ra, mac::CsmaConfig{}, sim::Rng{10}};
  mac::CsmaMac mb{sim, rb, mac::CsmaConfig{}, sim::Rng{11}};
  mac::CsmaMac mc{sim, rc, mac::CsmaConfig{}, sim::Rng{12}};

  int b_rx = 0;
  int c_rx = 0;
  int c_snoop = 0;
  mb.set_rx_handler([&](NodeId, std::uint8_t, std::span<const std::uint8_t>,
                        const phy::RxInfo&) { ++b_rx; });
  mc.set_rx_handler([&](NodeId, std::uint8_t, std::span<const std::uint8_t>,
                        const phy::RxInfo&) { ++c_rx; });
  mc.set_snoop_handler([&](NodeId src, std::uint8_t,
                           std::span<const std::uint8_t>,
                           const phy::RxInfo&) {
    ++c_snoop;
    EXPECT_EQ(src, NodeId{1});
  });

  ma.send(NodeId{2}, std::vector<std::uint8_t>(6, 7), nullptr);
  sim.run();
  EXPECT_EQ(b_rx, 1);
  EXPECT_EQ(c_rx, 0);     // not addressed to c
  EXPECT_EQ(c_snoop, 1);  // but overheard
}

// ---- white-bit sources -----------------------------------------------------------

TEST(WhiteBitTest, SnrSourceThresholds) {
  sim::Simulator sim;
  phy::PhyConfig phy_cfg;
  phy_cfg.white_bit_source = phy::PhyConfig::WhiteBitSource::kSnr;
  phy_cfg.white_bit_snr_threshold_db = 3.0;
  phy::PropagationConfig prop;
  prop.shadowing_sigma_db = 0.0;
  prop.asymmetry_sigma_db = 0.0;
  phy::Channel channel{sim, phy_cfg, prop,
                       std::make_unique<phy::NullInterference>(),
                       sim::Rng{3}};
  phy::Radio a{channel, NodeId{1}, {0, 0}, phy::HardwareProfile{},
               PowerDbm{0.0}};
  phy::Radio near{channel, NodeId{2}, {5, 0}, phy::HardwareProfile{},
                  PowerDbm{0.0}};
  bool white = false;
  near.set_rx_handler([&](std::span<const std::uint8_t>,
                          const phy::RxInfo& info) { white = info.white; });
  a.transmit(std::vector<std::uint8_t>(10, 1), nullptr);
  sim.run();
  EXPECT_TRUE(white) << "close link far above 3 dB must be white";
}

TEST(WhiteBitTest, NeverSourceNeverSets) {
  sim::Simulator sim;
  phy::PhyConfig phy_cfg;
  phy_cfg.white_bit_source = phy::PhyConfig::WhiteBitSource::kNever;
  phy::PropagationConfig prop;
  prop.shadowing_sigma_db = 0.0;
  prop.asymmetry_sigma_db = 0.0;
  phy::Channel channel{sim, phy_cfg, prop,
                       std::make_unique<phy::NullInterference>(),
                       sim::Rng{3}};
  phy::Radio a{channel, NodeId{1}, {0, 0}, phy::HardwareProfile{},
               PowerDbm{0.0}};
  phy::Radio b{channel, NodeId{2}, {5, 0}, phy::HardwareProfile{},
               PowerDbm{0.0}};
  bool any_white = false;
  b.set_rx_handler([&](std::span<const std::uint8_t>,
                       const phy::RxInfo& info) {
    any_white = any_white || info.white;
  });
  for (int i = 0; i < 10; ++i) {
    a.transmit(std::vector<std::uint8_t>(10, 1), nullptr);
    sim.run();
  }
  EXPECT_FALSE(any_white);
}

// ---- corrupted frames over the air -------------------------------------------------

TEST(FcsOverAirTest, BurstCorruptedFramesCountedAtMac) {
  sim::Simulator sim;
  phy::PropagationConfig prop;
  prop.shadowing_sigma_db = 0.0;
  prop.asymmetry_sigma_db = 0.0;
  std::vector<phy::ScheduledBurstInterference::Burst> bursts = {
      {NodeId{2}, sim::Time::from_us(0), sim::Time::from_us(100'000'000),
       1.0}};
  phy::Channel channel{sim, phy::PhyConfig{}, prop,
                       std::make_unique<phy::ScheduledBurstInterference>(
                           bursts),
                       sim::Rng{4}};
  phy::Radio ra{channel, NodeId{1}, {0, 0}, phy::HardwareProfile{},
                PowerDbm{0.0}};
  phy::Radio rb{channel, NodeId{2}, {5, 0}, phy::HardwareProfile{},
                PowerDbm{0.0}};
  mac::CsmaMac ma{sim, ra, mac::CsmaConfig{}, sim::Rng{20}};
  mac::CsmaMac mb{sim, rb, mac::CsmaConfig{}, sim::Rng{21}};
  int clean_rx = 0;
  mb.set_rx_handler([&](NodeId, std::uint8_t, std::span<const std::uint8_t>,
                        const phy::RxInfo&) { ++clean_rx; });
  for (int i = 0; i < 10; ++i) {
    ma.send(NodeId{2}, std::vector<std::uint8_t>(20, 1), nullptr);
    sim.run();
  }
  EXPECT_EQ(clean_rx, 0);
  EXPECT_EQ(mb.fcs_failures(), 10u)
      << "jammed frames should be heard-but-rejected, not silent";
}

// ---- profile factory ------------------------------------------------------------------

TEST(ProfileTest, NamesAreDistinct) {
  EXPECT_NE(runner::profile_name(runner::Profile::kFourBit),
            runner::profile_name(runner::Profile::kCtpT2));
  EXPECT_EQ(runner::profile_name(runner::Profile::kFourBit), "4B");
  EXPECT_EQ(runner::profile_name(runner::Profile::kMultihopLqi),
            "MultiHopLQI");
}

TEST(ProfileTest, EveryProfileBuildsAnEstimator) {
  for (const auto p :
       {runner::Profile::kFourBit, runner::Profile::kCtpT2,
        runner::Profile::kCtpUnidirAck, runner::Profile::kCtpWhiteCompare,
        runner::Profile::kCtpUnconstrained,
        runner::Profile::kMultihopLqi}) {
    const auto est = runner::make_estimator(p, NodeId{1}, 10, sim::Rng{1});
    ASSERT_NE(est, nullptr) << runner::profile_name(p);
    EXPECT_TRUE(est->neighbors().empty());
  }
}

TEST(ProfileTest, MultihopLqiConfigDiffersFromCtp) {
  const auto ctp = runner::make_collection_config(runner::Profile::kCtpT2);
  const auto lqi =
      runner::make_collection_config(runner::Profile::kMultihopLqi);
  EXPECT_EQ(ctp.beacon_timing, net::BeaconTiming::kTrickle);
  EXPECT_EQ(lqi.beacon_timing, net::BeaconTiming::kFixed);
  EXPECT_GT(ctp.max_retransmissions, lqi.max_retransmissions);
  EXPECT_TRUE(ctp.datapath_feedback);
  EXPECT_FALSE(lqi.datapath_feedback);
  EXPECT_TRUE(ctp.snoop);
  EXPECT_FALSE(lqi.snoop);
}

TEST(ProfileTest, EnergyTrackingPopulatesResult) {
  sim::Rng rng{13};
  runner::ExperimentConfig cfg;
  auto tb = topology::mirage(rng);
  tb.topology.nodes.resize(10);
  cfg.testbed = std::move(tb);
  cfg.duration = sim::Duration::from_minutes(3.0);
  cfg.seed = 13;
  cfg.track_energy = true;
  const auto r = runner::run_experiment(cfg);
  EXPECT_GT(r.worst_node_mah, 0.0);
  EXPECT_GT(r.mean_tx_mah, 0.0);
  EXPECT_GT(r.projected_lifetime_days, 0.0);
  EXPECT_LT(r.projected_lifetime_days, 100.0);  // always-on listening
}

}  // namespace
}  // namespace fourbit
