// Tests of the parallel campaign runner: seed derivation, result
// ordering, progress reporting, and the determinism contract (a sweep is
// bit-identical no matter how many worker threads execute it).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "runner/campaign.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

namespace fourbit::runner {
namespace {

/// A small, fast trial: a truncated Mirage testbed for a short run.
ExperimentConfig small_trial(std::uint64_t seed) {
  sim::Rng rng{seed};
  ExperimentConfig cfg;
  cfg.testbed = topology::mirage(rng);
  cfg.testbed.topology.nodes.resize(16);
  cfg.duration = sim::Duration::from_minutes(3.0);
  cfg.seed = seed;
  return cfg;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.mean_depth, b.mean_depth);
  EXPECT_EQ(a.per_node_delivery, b.per_node_delivery);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.data_tx, b.data_tx);
  EXPECT_EQ(a.beacon_tx, b.beacon_tx);
  EXPECT_EQ(a.radio_frames, b.radio_frames);
  EXPECT_EQ(a.retx_drops, b.retx_drops);
  EXPECT_EQ(a.queue_drops, b.queue_drops);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.parent_changes, b.parent_changes);
  EXPECT_EQ(a.final_tree.depths, b.final_tree.depths);
}

TEST(CampaignTest, SeedSweepDerivesSeedsFromBasePlusIndex) {
  ExperimentConfig base;
  base.seed = 100;
  const auto trials = Campaign::seed_sweep(base, 5);
  ASSERT_EQ(trials.size(), 5u);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(trials[i].seed, 100u + i);
  }
}

TEST(CampaignTest, EmptyTrialListYieldsEmptyResults) {
  EXPECT_TRUE(Campaign::run({}).empty());
}

// The acceptance contract: the same sweep on 1 thread and on N threads
// produces bit-identical per-trial results (and therefore aggregates).
TEST(CampaignTest, ThreadCountDoesNotChangeResults) {
  const auto trials = Campaign::seed_sweep(small_trial(42), 6);

  Campaign::Options serial;
  serial.threads = 1;
  const auto a = Campaign::run(trials, serial);

  Campaign::Options parallel;
  parallel.threads = 4;
  const auto b = Campaign::run(trials, parallel);

  ASSERT_EQ(a.size(), trials.size());
  ASSERT_EQ(b.size(), trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i) {
    expect_identical(a[i], b[i]);
  }

  const auto sa = summarize(a);
  const auto sb = summarize(b);
  EXPECT_EQ(sa.cost.mean, sb.cost.mean);
  EXPECT_EQ(sa.cost.stddev, sb.cost.stddev);
  EXPECT_EQ(sa.delivery_ratio.mean, sb.delivery_ratio.mean);
  EXPECT_EQ(sa.mean_depth.quartiles.median, sb.mean_depth.quartiles.median);
}

// The event-queue implementation is a pure engine knob: heap and
// calendar must produce bit-identical trial results, at any thread
// count. (The engine-health fields are the one deliberate exception —
// the heap never rebuilds, so eq_resizes differs by design.)
TEST(CampaignTest, QueueImplAndThreadCountDoNotChangeResults) {
  const auto cal_trials = Campaign::seed_sweep(small_trial(21), 4);
  auto heap_trials = cal_trials;
  for (auto& t : heap_trials) t.sim.use_calendar_queue = false;

  Campaign::Options serial;
  serial.threads = 1;
  Campaign::Options parallel;
  parallel.threads = 4;

  const auto cal1 = Campaign::run(cal_trials, serial);
  const auto cal4 = Campaign::run(cal_trials, parallel);
  const auto heap1 = Campaign::run(heap_trials, serial);

  ASSERT_EQ(cal1.size(), cal_trials.size());
  for (std::size_t i = 0; i < cal_trials.size(); ++i) {
    expect_identical(cal1[i], cal4[i]);
    expect_identical(cal1[i], heap1[i]);
    EXPECT_EQ(cal1[i].arena_bytes, cal4[i].arena_bytes);
    EXPECT_EQ(cal1[i].eq_resizes, cal4[i].eq_resizes);
    EXPECT_EQ(heap1[i].eq_resizes, 0u);  // the heap never rebuilds
  }
}

// Exported telemetry must be byte-identical across queue modes, apart
// from the engine's own health rows (component "sim": arena growth and
// queue-resize counters are mode-dependent by design and register
// lazily so they never perturb the rest of the stream).
TEST(CampaignTest, TraceJsonlMatchesAcrossQueueModes) {
  const auto read_stripped = [](const std::string& path) {
    std::ifstream in{path};
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"component\":\"sim\"") != std::string::npos) continue;
      lines.push_back(line);
    }
    return lines;
  };

  ExperimentConfig cal = small_trial(33);
  cal.trace_level = sim::TraceLevel::kDebug;
  cal.trace_path = (std::filesystem::path{::testing::TempDir()} /
                    "fourbit_trace_cal.jsonl")
                       .string();
  ExperimentConfig heap = cal;
  heap.sim.use_calendar_queue = false;
  heap.trace_path = (std::filesystem::path{::testing::TempDir()} /
                     "fourbit_trace_heap.jsonl")
                        .string();

  (void)run_experiment(cal);
  (void)run_experiment(heap);

  const auto cal_lines = read_stripped(cal.trace_path);
  const auto heap_lines = read_stripped(heap.trace_path);
  ASSERT_FALSE(cal_lines.empty());
  EXPECT_EQ(cal_lines, heap_lines);
  std::filesystem::remove(cal.trace_path);
  std::filesystem::remove(heap.trace_path);
}

TEST(CampaignTest, ResultsIndexedByTrialNotCompletionOrder) {
  // Distinct seeds make distinct results; re-running any single trial
  // alone must reproduce the slot the campaign assigned it.
  const auto trials = Campaign::seed_sweep(small_trial(7), 3);
  Campaign::Options options;
  options.threads = 3;
  const auto all = Campaign::run(trials, options);
  const auto solo = run_experiment(trials[1]);
  expect_identical(all[1], solo);
}

TEST(CampaignTest, ProgressCallbackSeesEveryTrialExactlyOnce) {
  const auto trials = Campaign::seed_sweep(small_trial(3), 4);
  std::vector<std::size_t> indices;
  std::vector<std::size_t> completed;
  Campaign::Options options;
  options.threads = 2;
  options.on_trial_done = [&](const TrialProgress& p) {
    // Serialized by the campaign's progress mutex: no locking needed.
    indices.push_back(p.trial_index);
    completed.push_back(p.completed);
    EXPECT_EQ(p.total, 4u);
    ASSERT_NE(p.config, nullptr);
    ASSERT_NE(p.result, nullptr);
    EXPECT_EQ(p.config->seed, trials[p.trial_index].seed);
  };
  (void)Campaign::run(trials, options);

  std::sort(indices.begin(), indices.end());
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1, 2, 3}));
  std::sort(completed.begin(), completed.end());
  EXPECT_EQ(completed, (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(CampaignTest, PooledPerNodeDeliveryConcatenates) {
  ExperimentResult r1, r2;
  r1.per_node_delivery = {0.5, 1.0};
  r2.per_node_delivery = {0.25};
  const auto pooled = pooled_per_node_delivery({r1, r2});
  EXPECT_EQ(pooled, (std::vector<double>{0.5, 1.0, 0.25}));
}

TEST(CampaignTest, ConsumeThreadsFlagStripsArguments) {
  char prog[] = "bench";
  char a1[] = "30";
  char flag[] = "--threads";
  char n[] = "8";
  char a2[] = "5";
  char* argv[] = {prog, a1, flag, n, a2};
  int argc = 5;
  EXPECT_EQ(consume_threads_flag(argc, argv), 8u);
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "30");
  EXPECT_STREQ(argv[2], "5");

  // Absent flag: untouched.
  char* argv2[] = {prog, a1};
  int argc2 = 2;
  EXPECT_EQ(consume_threads_flag(argc2, argv2), 0u);
  EXPECT_EQ(argc2, 2);
}

}  // namespace
}  // namespace fourbit::runner
