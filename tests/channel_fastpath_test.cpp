// The channel fast path's determinism contract: with the link cache on
// (precomputed gain matrix, neighbor culling, pooled ActiveTx objects)
// every observable — delivery streams, campaign metrics, RNG evolution —
// must be bit-identical to the slow reference path, across thread
// counts, under fault injection, and through cache invalidations.
// Also covers the detach-mid-flight lifetime rules (run under the ASan
// CI configuration).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "phy/channel.hpp"
#include "phy/hardware.hpp"
#include "phy/interference.hpp"
#include "phy/radio.hpp"
#include "runner/campaign.hpp"
#include "runner/experiment.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "topology/topology.hpp"

namespace fourbit {
namespace {

// ---- channel-level delivery-stream equivalence -------------------------

/// FNV-1a over every delivered byte and the full RxInfo, so any
/// divergence between paths — one flipped LQI draw, one reordered
/// receiver — changes the digest.
struct DeliveryDigest {
  std::uint64_t h = 1469598103934665603ULL;

  void mix_bytes(const void* p, std::size_t len) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= b[i];
      h *= 1099511628211ULL;
    }
  }
  void mix(std::uint64_t v) { mix_bytes(&v, sizeof v); }
  void mix(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    mix(bits);
  }
  void on_delivery(NodeId to, std::span<const std::uint8_t> frame,
                   const phy::RxInfo& info) {
    mix(static_cast<std::uint64_t>(to.value()));
    mix_bytes(frame.data(), frame.size());
    mix(info.rssi.value());
    mix(info.snr_db);
    mix(static_cast<std::uint64_t>(info.lqi));
    mix(static_cast<std::uint64_t>(info.white ? 1 : 0));
    mix(static_cast<std::uint64_t>(info.fcs_ok ? 1 : 0));
  }
};

struct Pump {
  sim::Simulator sim;
  phy::Channel channel;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  DeliveryDigest digest;
  std::uint64_t deliveries = 0;

  explicit Pump(bool fast, std::size_t n = 30, bool batch = true)
      : channel(sim, make_phy(fast, batch), phy::PropagationConfig{},
                std::make_unique<phy::NullInterference>(), sim::Rng{99}) {
    for (std::size_t i = 0; i < n; ++i) {
      // 30 m grid pitch: every pair is inside the ~268 m reception range,
      // so culling keeps everyone and the interference paths get dense.
      radios.push_back(std::make_unique<phy::Radio>(
          channel, NodeId{static_cast<std::uint16_t>(i + 1)},
          Position{static_cast<double>(i % 6) * 30.0,
                   static_cast<double>(i / 6) * 30.0},
          phy::HardwareProfile{}, PowerDbm{0.0}));
      phy::Radio* r = radios.back().get();
      r->set_rx_handler([this, r](std::span<const std::uint8_t> frame,
                                  const phy::RxInfo& info) {
        ++deliveries;
        digest.on_delivery(r->id(), frame, info);
      });
    }
  }

  static phy::PhyConfig make_phy(bool fast, bool batch = true) {
    phy::PhyConfig phy;
    phy.use_link_cache = fast;
    phy.use_batch_kernels = batch;
    return phy;
  }

  /// Start-time stagger between nodes. The 700 us default overlaps the
  /// ~1.3 ms airtime of a 40-byte frame, so transmissions interfere;
  /// two-node tests raise it so the frames land on an idle receiver
  /// (a half-duplex radio can't hear while it transmits).
  std::int64_t stagger_us = 700;

  /// Staggered, overlapping transmissions from every node: enough
  /// concurrency that the interference cross-product and CCA paths all
  /// execute.
  void run_rounds(int rounds) {
    for (int round = 0; round < rounds; ++round) {
      for (std::size_t i = 0; i < radios.size(); ++i) {
        phy::Radio* r = radios[i].get();
        const auto at = sim.now() +
                        sim::Duration::from_us(
                            static_cast<std::int64_t>(i) * stagger_us);
        sim.schedule_at(at, [this, r, round] {
          (void)r->channel_clear();  // exercise busy_at
          if (!r->transmitting()) {
            std::vector<std::uint8_t> frame(40);
            frame[0] = static_cast<std::uint8_t>(r->id().value());
            frame[1] = static_cast<std::uint8_t>(round);
            r->transmit(std::move(frame), nullptr);
          }
        });
      }
      sim.run();
    }
  }
};

TEST(ChannelFastPathTest, DeliveryStreamBitIdenticalToSlowPath) {
  Pump fast{true};
  Pump slow{false};
  fast.run_rounds(8);
  slow.run_rounds(8);
  EXPECT_TRUE(fast.channel.link_cache_frozen());
  EXPECT_FALSE(slow.channel.link_cache_frozen());
  EXPECT_GT(fast.deliveries, 0u);
  EXPECT_EQ(fast.deliveries, slow.deliveries);
  EXPECT_EQ(fast.digest.h, slow.digest.h);
  EXPECT_EQ(fast.channel.frames_transmitted(),
            slow.channel.frames_transmitted());
}

TEST(ChannelFastPathTest, BatchKernelsBitIdenticalToScalarLoops) {
  // Same cached fast path, batch SoA kernels on vs off: the gathered
  // interference passes and the span-based SNR→PRR batch must reproduce
  // the scalar per-receiver loops bit for bit — every delivered byte,
  // RSSI, SNR, LQI draw and corrupt-frame mangling identical.
  Pump batch{true, 30, true};
  Pump scalar{true, 30, false};
  batch.run_rounds(8);
  scalar.run_rounds(8);
  EXPECT_GT(batch.deliveries, 0u);
  EXPECT_EQ(batch.deliveries, scalar.deliveries);
  EXPECT_EQ(batch.digest.h, scalar.digest.h);
  EXPECT_EQ(batch.channel.frames_transmitted(),
            scalar.channel.frames_transmitted());
}

TEST(ChannelFastPathTest, LinkOutageRespectedByCulledPath) {
  // A blackout on a culled-path candidate link must drop frames exactly
  // like the slow path does (culling decides who is *considered*, faults
  // decide who *receives*), and both paths must consume identical RNG.
  auto run = [](bool fast, bool outage) {
    Pump p{fast, 6};
    p.stagger_us = 2000;  // sequential frames: the baseline must deliver
    if (outage) {
      // Blanket outage: every pair is forced dark.
      for (std::size_t i = 0; i < p.radios.size(); ++i) {
        for (std::size_t j = i + 1; j < p.radios.size(); ++j) {
          p.channel.set_link_outage(p.radios[i]->id(), p.radios[j]->id(),
                                    1.0);
        }
      }
    }
    p.run_rounds(5);
    return std::pair{p.deliveries, p.digest.h};
  };
  const auto [fast_ok, fast_ok_h] = run(true, false);
  const auto [slow_ok, slow_ok_h] = run(false, false);
  const auto [fast_out, fast_out_h] = run(true, true);
  const auto [slow_out, slow_out_h] = run(false, true);
  EXPECT_GT(fast_ok, 0u);
  EXPECT_EQ(fast_ok, slow_ok);
  EXPECT_EQ(fast_ok_h, slow_ok_h);
  EXPECT_EQ(fast_out, 0u);  // total blackout delivers nothing
  EXPECT_EQ(fast_out, slow_out);
  EXPECT_EQ(fast_out_h, slow_out_h);
}

TEST(ChannelFastPathTest, ClearLinkOutageRestoresDelivery) {
  Pump p{true, 2};
  p.stagger_us = 2000;
  p.channel.set_link_outage(NodeId{1}, NodeId{2}, 1.0);
  p.run_rounds(3);
  EXPECT_EQ(p.deliveries, 0u);
  p.channel.clear_link_outage(NodeId{1}, NodeId{2});
  p.run_rounds(3);
  EXPECT_GT(p.deliveries, 0u);
}

TEST(ChannelFastPathTest, TxPowerChangeInvalidatesSenderRow) {
  Pump p{true, 2};
  p.stagger_us = 2000;
  p.run_rounds(2);
  const auto before = p.deliveries;
  EXPECT_GT(before, 0u);
  EXPECT_GT(p.channel.candidate_count(*p.radios[0]), 0u);

  // Whisper: drop the sender 90 dB. The frozen cache must re-derive this
  // row or the receiver would keep hearing ghost packets.
  p.radios[0]->set_tx_power(PowerDbm{-90.0});
  EXPECT_TRUE(p.channel.link_cache_frozen());
  EXPECT_EQ(p.channel.candidate_count(*p.radios[0]), 0u);

  std::vector<std::uint8_t> frame(40, 1);
  p.radios[0]->transmit(frame, nullptr);
  p.sim.run();
  EXPECT_EQ(p.deliveries, before);

  // And back: the row is re-derived again, delivery resumes.
  p.radios[0]->set_tx_power(PowerDbm{0.0});
  p.radios[0]->transmit(frame, nullptr);
  p.sim.run();
  EXPECT_GT(p.deliveries, before);
}

TEST(ChannelFastPathTest, AttachAfterFreezeRebuildsCache) {
  Pump p{true, 2};
  p.run_rounds(1);
  EXPECT_TRUE(p.channel.link_cache_frozen());

  std::uint64_t late_rx = 0;
  phy::Radio late{p.channel, NodeId{77}, Position{1.0, 1.0},
                  phy::HardwareProfile{}, PowerDbm{0.0}};
  EXPECT_FALSE(p.channel.link_cache_frozen());
  late.set_rx_handler([&](std::span<const std::uint8_t>,
                          const phy::RxInfo&) { ++late_rx; });
  p.radios[0]->transmit(std::vector<std::uint8_t>(40, 1), nullptr);
  p.sim.run();
  EXPECT_GT(late_rx, 0u);
}

// ---- detach lifetime rules (ASan-sensitive) ----------------------------

TEST(ChannelFastPathTest, DetachedSenderMidFlightIsTombstoned) {
  for (const bool fast : {true, false}) {
    sim::Simulator sim;
    phy::Channel channel{sim, Pump::make_phy(fast), phy::PropagationConfig{},
                         std::make_unique<phy::NullInterference>(),
                         sim::Rng{5}};
    phy::Radio b{channel, NodeId{2}, {5.0, 0.0}, phy::HardwareProfile{},
                 PowerDbm{0.0}};
    std::uint64_t received = 0;
    b.set_rx_handler([&](std::span<const std::uint8_t>,
                         const phy::RxInfo&) { ++received; });
    auto a = std::make_unique<phy::Radio>(channel, NodeId{1},
                                          Position{0.0, 0.0},
                                          phy::HardwareProfile{},
                                          PowerDbm{0.0});
    a->transmit(std::vector<std::uint8_t>(60, 1), nullptr);
    // Sender dies mid-frame: the carrier stops, the frame is aborted,
    // and nothing may dereference the dead radio afterwards.
    a.reset();
    EXPECT_TRUE(b.channel_clear());  // busy_at must not touch the corpse
    sim.run();
    EXPECT_EQ(received, 0u);
  }
}

TEST(ChannelFastPathTest, DetachedReceiverMidFlightIsScrubbed) {
  for (const bool fast : {true, false}) {
    sim::Simulator sim;
    phy::Channel channel{sim, Pump::make_phy(fast), phy::PropagationConfig{},
                         std::make_unique<phy::NullInterference>(),
                         sim::Rng{5}};
    phy::Radio a{channel, NodeId{1}, {0.0, 0.0}, phy::HardwareProfile{},
                 PowerDbm{0.0}};
    auto b = std::make_unique<phy::Radio>(channel, NodeId{2},
                                          Position{5.0, 0.0},
                                          phy::HardwareProfile{},
                                          PowerDbm{0.0});
    b->set_rx_handler([](std::span<const std::uint8_t>, const phy::RxInfo&) {
      FAIL() << "delivery to a destroyed radio";
    });
    a.transmit(std::vector<std::uint8_t>(60, 1), nullptr);
    b.reset();  // receiver dies while the frame is in the air
    sim.run();  // must not deliver into freed memory
  }
}

TEST(ChannelFastPathTest, DetachedButAliveRadioStillTransmits) {
  // runner::Network uses detach() to make a node deaf without destroying
  // it; its outgoing frames are still on the air (slow-scan fallback for
  // senders without a cache row).
  Pump p{true, 2};
  p.run_rounds(1);
  const auto before = p.deliveries;
  p.channel.detach(*p.radios[1]);  // radio 1 goes deaf...
  p.radios[1]->transmit(std::vector<std::uint8_t>(40, 7), nullptr);
  p.sim.run();
  EXPECT_GT(p.deliveries, before);  // ...but not mute: radio 0 heard it
  // And the deaf radio's own CCA still works via the fallback.
  (void)p.radios[1]->channel_clear();
}

TEST(ChannelFastPathTest, ActiveTxPoolSurvivesChurn) {
  Pump p{true, 4};
  p.run_rounds(25);  // hundreds of acquire/release cycles
  Pump q{false, 4};
  q.run_rounds(25);
  EXPECT_EQ(p.deliveries, q.deliveries);
  EXPECT_EQ(p.digest.h, q.digest.h);
}

// ---- experiment / campaign equivalence ---------------------------------

topology::Testbed small_testbed(bool fast) {
  sim::Rng rng{12};
  topology::Testbed tb;
  tb.topology = topology::grid(5, 5, 20.0, 2.0, rng);
  tb.environment.phy.use_link_cache = fast;
  return tb;
}

void expect_identical(const runner::ExperimentResult& a,
                      const runner::ExperimentResult& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.data_tx, b.data_tx);
  EXPECT_EQ(a.beacon_tx, b.beacon_tx);
  EXPECT_EQ(a.radio_frames, b.radio_frames);
  EXPECT_EQ(a.retx_drops, b.retx_drops);
  EXPECT_EQ(a.queue_drops, b.queue_drops);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.parent_changes, b.parent_changes);
  EXPECT_EQ(a.cost, b.cost);                      // exact, not Near:
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);  // bit-identical paths
  EXPECT_EQ(a.mean_depth, b.mean_depth);
  EXPECT_EQ(a.per_node_delivery, b.per_node_delivery);
}

runner::ExperimentConfig small_config(bool fast, std::uint64_t seed) {
  runner::ExperimentConfig cfg;
  cfg.testbed = small_testbed(fast);
  cfg.profile = runner::Profile::kFourBit;
  cfg.duration = sim::Duration::from_minutes(5.0);
  cfg.seed = seed;
  return cfg;
}

TEST(ChannelFastPathTest, ExperimentMetricsBitIdenticalAcrossPaths) {
  const auto fast = runner::run_experiment(small_config(true, 3));
  const auto slow = runner::run_experiment(small_config(false, 3));
  EXPECT_GT(fast.generated, 0u);
  EXPECT_GT(fast.delivery_ratio, 0.5);
  expect_identical(fast, slow);
}

TEST(ChannelFastPathTest, ExperimentWithFaultsBitIdenticalAcrossPaths) {
  auto make = [](bool fast) {
    auto cfg = small_config(fast, 9);
    cfg.faults.node_crashes = 2;
    cfg.faults.crash_downtime = sim::Duration::from_seconds(60.0);
    cfg.faults.link_outages = 2;
    cfg.faults.outage_duration = sim::Duration::from_seconds(30.0);
    cfg.faults.window_start = sim::Time::from_us(60'000'000);
    cfg.faults.window_end = sim::Time::from_us(180'000'000);
    return cfg;
  };
  const auto fast = runner::run_experiment(make(true));
  const auto slow = runner::run_experiment(make(false));
  EXPECT_GT(fast.node_crashes, 0u);
  EXPECT_GT(fast.link_outages, 0u);
  expect_identical(fast, slow);
  EXPECT_EQ(fast.node_crashes, slow.node_crashes);
  EXPECT_EQ(fast.link_outages, slow.link_outages);
  EXPECT_EQ(fast.delivery_during_outage, slow.delivery_during_outage);
}

TEST(ChannelFastPathTest, CampaignBitIdenticalAcrossPathsAndThreads) {
  auto trials = [](bool fast) {
    return runner::Campaign::seed_sweep(small_config(fast, 21), 3);
  };
  runner::Campaign::Options one;
  one.threads = 1;
  runner::Campaign::Options four;
  four.threads = 4;

  const auto fast1 = runner::Campaign::run(trials(true), one);
  const auto fast4 = runner::Campaign::run(trials(true), four);
  const auto slow1 = runner::Campaign::run(trials(false), one);
  const auto slow4 = runner::Campaign::run(trials(false), four);
  ASSERT_EQ(fast1.size(), 3u);
  for (std::size_t i = 0; i < fast1.size(); ++i) {
    expect_identical(fast1[i], fast4[i]);  // threads don't matter
    expect_identical(fast1[i], slow1[i]);  // the path doesn't matter
    expect_identical(slow1[i], slow4[i]);
  }
}

}  // namespace
}  // namespace fourbit
