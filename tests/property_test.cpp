// Property-based tests: invariants that must hold across randomized
// inputs, seeds, and configurations (parameterized gtest sweeps).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/four_bit_estimator.hpp"
#include "phy/interference.hpp"
#include "phy/modulation.hpp"
#include "runner/experiment.hpp"
#include "sim/rng.hpp"
#include "topology/topology.hpp"

namespace fourbit {
namespace {

// ---- estimator invariants under random operation streams ------------------

class EstimatorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EstimatorFuzz, InvariantsHoldUnderRandomOps) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng{seed};
  core::FourBitConfig cfg;
  cfg.table_capacity = 6;
  cfg.probabilistic_insert_p = 0.3;
  core::FourBitEstimator est{cfg, rng.fork("est")};

  // One node gets pinned once it appears and must survive forever.
  const NodeId precious{1};
  bool precious_pinned = false;
  std::uint8_t seqs[40] = {};

  for (int step = 0; step < 5000; ++step) {
    const auto op = rng.uniform_int(100);
    const NodeId n{static_cast<std::uint16_t>(1 + rng.uniform_int(40))};
    if (op < 50) {
      // Beacon (random white bit, advancing per-node sequence number).
      link::PacketPhyInfo info;
      info.white = rng.bernoulli(0.6);
      info.lqi = static_cast<int>(60 + rng.uniform_int(50));
      auto& seq = seqs[n.value() - 1];
      seq = static_cast<std::uint8_t>(seq + 1 + rng.uniform_int(3));
      const std::vector<std::uint8_t> wire{seq};
      (void)est.unwrap_beacon(n, wire, info);
    } else if (op < 85) {
      est.on_unicast_result(n, rng.bernoulli(0.7));
    } else if (op < 92) {
      est.remove(n);
    } else if (n != precious) {
      // Random pin/unpin churn on non-precious nodes only — the test's
      // contract is that `precious` stays pinned once pinned.
      (void)est.pin(n);
      est.unpin(n);
    }

    if (!precious_pinned && est.etx(precious).has_value()) {
      ASSERT_TRUE(est.pin(precious));
      precious_pinned = true;
    }

    // Invariants.
    ASSERT_LE(est.table_size(), cfg.table_capacity);
    for (const NodeId nb : est.neighbors()) {
      const auto etx = est.etx(nb);
      if (etx.has_value()) {
        ASSERT_GE(*etx, 1.0);
        ASSERT_LE(*etx, cfg.max_etx_sample);
      }
      const auto q = est.beacon_quality(nb);
      if (q.has_value()) {
        ASSERT_GE(*q, 0.0);
        ASSERT_LE(*q, 1.0);
      }
    }
    if (precious_pinned) {
      ASSERT_TRUE(est.etx(precious).has_value())
          << "pinned entry vanished at step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- modulation properties ---------------------------------------------------

class ModulationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ModulationSweep, PrrMonotoneInSnr) {
  const std::size_t frame_bytes = GetParam();
  phy::OqpskModulation mod;
  double prev = 0.0;
  for (double snr = -12.0; snr <= 12.0; snr += 0.2) {
    const double prr = mod.packet_reception_ratio(snr, frame_bytes);
    ASSERT_GE(prr, prev - 1e-12) << "snr " << snr;
    ASSERT_GE(prr, 0.0);
    ASSERT_LE(prr, 1.0);
    prev = prr;
  }
}

INSTANTIATE_TEST_SUITE_P(FrameLengths, ModulationSweep,
                         ::testing::Values(10, 20, 46, 80, 127));

// ---- Gilbert-Elliott stationarity across configurations -------------------------

class GilbertElliottSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GilbertElliottSweep, BadFractionMatchesDwellRatio) {
  const auto [good_s, bad_s] = GetParam();
  phy::GilbertElliottInterference::Config cfg;
  cfg.mean_good = sim::Duration::from_seconds(good_s);
  cfg.mean_bad = sim::Duration::from_seconds(bad_s);
  cfg.affected_fraction = 1.0;
  phy::GilbertElliottInterference ge{cfg, sim::Rng{77}};
  int bad = 0;
  const int samples = 30000;
  for (int i = 0; i < samples; ++i) {
    const auto t =
        sim::Time::from_us(static_cast<std::int64_t>(i) * 500'000);
    if (ge.in_bad_state(NodeId{4}, t)) ++bad;
  }
  const double expected = bad_s / (good_s + bad_s);
  EXPECT_NEAR(static_cast<double>(bad) / samples, expected,
              0.2 * expected + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Dwells, GilbertElliottSweep,
    ::testing::Values(std::pair{300.0, 30.0}, std::pair{120.0, 60.0},
                      std::pair{60.0, 60.0}, std::pair{400.0, 45.0}));

// ---- full-experiment invariants across profiles and seeds -----------------------

class ExperimentSweep
    : public ::testing::TestWithParam<std::tuple<runner::Profile, int>> {};

TEST_P(ExperimentSweep, MetricsAreConsistent) {
  const auto [profile, seed] = GetParam();
  sim::Rng rng{static_cast<std::uint64_t>(seed)};
  runner::ExperimentConfig cfg;
  // A small, noisy testbed: 12 nodes over the Mirage environment.
  auto tb = topology::mirage(rng);
  tb.topology.nodes.resize(12);
  cfg.testbed = std::move(tb);
  cfg.profile = profile;
  cfg.duration = sim::Duration::from_minutes(4.0);
  cfg.traffic.period = sim::Duration::from_seconds(4.0);
  cfg.seed = static_cast<std::uint64_t>(seed);

  const auto r = runner::run_experiment(cfg);

  EXPECT_GE(r.delivery_ratio, 0.0);
  EXPECT_LE(r.delivery_ratio, 1.0);
  EXPECT_LE(r.delivered, r.generated);
  if (r.delivered > 0) {
    EXPECT_GE(r.cost, 1.0) << "cost below one transmission per packet";
  }
  EXPECT_GE(r.mean_depth, 0.0);
  EXPECT_LT(r.mean_depth, 12.0);
  // Every routed node's depth is sane.
  for (const int d : r.final_tree.depths) {
    EXPECT_GE(d, -1);
    EXPECT_LT(d, 12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndSeeds, ExperimentSweep,
    ::testing::Combine(::testing::Values(runner::Profile::kFourBit,
                                         runner::Profile::kCtpT2,
                                         runner::Profile::kMultihopLqi),
                       ::testing::Values(1, 7, 42)));

// ---- power sweep invariants -------------------------------------------------------

class PowerSweep : public ::testing::TestWithParam<double> {};

TEST_P(PowerSweep, FourBitStaysConnectedAcrossPowers) {
  const double power = GetParam();
  sim::Rng rng{9};
  runner::ExperimentConfig cfg;
  cfg.testbed = topology::mirage(rng);
  cfg.profile = runner::Profile::kFourBit;
  cfg.tx_power = PowerDbm{power};
  cfg.duration = sim::Duration::from_minutes(8.0);
  cfg.seed = 9;
  const auto r = runner::run_experiment(cfg);
  EXPECT_GT(r.delivery_ratio, 0.9) << "at " << power << " dBm";
  // Depth grows monotonically as power falls — checked loosely here,
  // exactly in bench/fig7.
  EXPECT_GT(r.mean_depth, 0.9);
}

INSTANTIATE_TEST_SUITE_P(Powers, PowerSweep,
                         ::testing::Values(0.0, -10.0, -20.0));

// ---- RNG distribution sweep ----------------------------------------------------------

class RngSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSweep, UniformMomentsAcrossSeeds) {
  sim::Rng rng{GetParam()};
  const int n = 50000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sumsq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_NEAR(sumsq / n - 0.25, 1.0 / 12.0, 0.005);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSweep,
                         ::testing::Values(0, 1, 42, 12345, 999999));

}  // namespace
}  // namespace fourbit
