// Tests of the multi-process campaign pool (runner/worker.hpp): the
// pipe protocol codec and incremental parser, index-span formatting,
// flight-recorder snapshots, journal-shard merge semantics, Backoff
// determinism, the --workers CLI surface, and end-to-end coordinator
// runs against workers that deliberately SIGSEGV, OOM, hang, exit
// nonzero, freeze, and corrupt their pipe mid-record.
//
// This binary self-execs as its own workers: main() checks for the
// hidden --worker-fd flag and, when present, rebuilds the trial list
// from --mp-* flags and enters run_worker with a scenario-driven
// run_trial override instead of running gtest.
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/describe.hpp"
#include "runner/journal.hpp"
#include "runner/supervisor.hpp"
#include "runner/worker.hpp"
#include "sim/rng.hpp"
#include "sim/telemetry.hpp"
#include "sim/time.hpp"
#include "topology/topology.hpp"

namespace fourbit::runner {
namespace {

// ---- shared scenario machinery (used by tests AND worker mode) --------

/// A deterministic fake trial result: a pure function of the seed, so a
/// worker process and the in-process reference compute identical bytes.
ExperimentResult synthetic_result(std::uint64_t seed) {
  ExperimentResult r;
  r.cost = 1.0 + static_cast<double>(seed) * 0.25;
  r.delivery_ratio = 1.0 / (1.0 + static_cast<double>(seed % 7));
  r.mean_depth = static_cast<double>(seed % 5);
  r.per_node_delivery = {0.5, static_cast<double>(seed) * 0.01};
  r.generated = seed * 3;
  r.delivered = seed * 2;
  r.data_tx = seed + 11;
  r.parent_changes = seed % 3;
  r.final_tree.depths = {1, 2, static_cast<int>(seed % 4)};
  r.final_tree.mean_depth = 1.5;
  return r;
}

/// Trial list both sides rebuild independently: seeds base, base+1, ...
std::vector<ExperimentConfig> scenario_trials(std::size_t n,
                                              std::uint64_t base) {
  std::vector<ExperimentConfig> trials(n);
  for (std::size_t i = 0; i < n; ++i) trials[i].seed = base + i;
  return trials;
}

/// A small REAL simulation derived purely from the seed, so worker
/// processes and the in-process reference rebuild identical configs.
/// Exercises the full engine (calendar queue, batch kernels, arenas)
/// across the process boundary.
ExperimentConfig real_trial(std::uint64_t seed) {
  sim::Rng rng{seed};
  ExperimentConfig cfg;
  cfg.testbed = topology::mirage(rng);
  cfg.testbed.topology.nodes.resize(12);
  cfg.duration = sim::Duration::from_minutes(2.0);
  cfg.seed = seed;
  return cfg;
}

struct Scenario {
  std::string kind = "clean";
  std::size_t index = 0;
};

Scenario parse_scenario(const std::string& text) {
  Scenario s;
  const auto at = text.find('@');
  if (at == std::string::npos) {
    s.kind = text;
  } else {
    s.kind = text.substr(0, at);
    s.index = static_cast<std::size_t>(
        std::strtoul(text.c_str() + at + 1, nullptr, 10));
  }
  return s;
}

void oom_alloc() noexcept {
  // bad_alloc escaping a noexcept function → std::terminate → SIGABRT:
  // the same death shape as a real allocator failure in a destructor.
  auto* huge = new std::vector<char>;
  huge->resize(std::size_t{1} << 30, 'x');
}

/// The scenario trial executor a worker installs: trial `index` of the
/// scenario misbehaves in the requested way; everything else returns
/// the synthetic result.
std::function<ExperimentResult(const ExperimentConfig&)> scenario_run_trial(
    Scenario scenario, int pipe_fd) {
  return [scenario, pipe_fd](const ExperimentConfig& config) {
    // Full-stack scenario: run an actual simulation rebuilt from the
    // seed instead of returning synthetic bytes.
    if (scenario.kind == "real") {
      return run_experiment(real_trial(config.seed));
    }
    // run_supervised stamps trace_trial with the trial index whenever
    // flight_flush_base is set — which the worker path always does.
    const std::size_t index =
        config.trace_trial >= 0
            ? static_cast<std::size_t>(config.trace_trial)
            : static_cast<std::size_t>(-1);
    if (index == scenario.index) {
      if (scenario.kind == "segv") {
        // Leave crash evidence first, like a real sim's flush hook.
        std::vector<sim::TelemetryEvent> events(2);
        events[0].at = sim::Time::from_us(1000);
        events[0].kind = sim::EventKind::kRouteChange;
        events[0].node = 3;
        events[1].at = sim::Time::from_us(2000);
        events[1].kind = sim::EventKind::kDataDrop;
        events[1].node = 4;
        events[1].v0 = 0.75;
        if (!config.flight_flush_path.empty()) {
          write_flight_snapshot(config.flight_flush_path, index, config.seed,
                                events);
        }
        ::raise(SIGSEGV);
      } else if (scenario.kind == "exit3") {
        ::_exit(3);
      } else if (scenario.kind == "hang") {
        for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
      } else if (scenario.kind == "freeze") {
        // Stops every thread, heartbeats included — only the
        // coordinator's heartbeat watchdog can reap this worker.
        ::raise(SIGSTOP);
      } else if (scenario.kind == "badcrc") {
        const std::uint8_t junk[16] = {0xAA, 0xBB, 0xCC, 0xDD, 0xAA, 0xBB,
                                       0xCC, 0xDD, 0xAA, 0xBB, 0xCC, 0xDD,
                                       0xAA, 0xBB, 0xCC, 0xDD};
        const ssize_t ignored = ::write(pipe_fd, junk, sizeof junk);
        (void)ignored;
        std::this_thread::sleep_for(std::chrono::seconds(10));
      } else if (scenario.kind == "tornkill") {
        WorkerRecord rec;
        rec.kind = WorkerRecordKind::kHeartbeat;
        const auto frame = encode_worker_record(rec);
        const ssize_t ignored = ::write(pipe_fd, frame.data(), 8);
        (void)ignored;
        ::raise(SIGKILL);
      } else if (scenario.kind == "oom") {
        struct rlimit limit;
        limit.rlim_cur = 256u << 20;
        limit.rlim_max = 256u << 20;
        ::setrlimit(RLIMIT_AS, &limit);
        oom_alloc();
      } else if (scenario.kind == "fail") {
        throw std::runtime_error("scenario soft failure");
      }
    }
    return synthetic_result(config.seed);
  };
}

}  // namespace

/// Worker-mode entry (called from main when --worker-fd is present):
/// rebuild the trial list from the --mp-* flags and hand off to
/// run_worker with the scenario executor installed.
[[noreturn]] void mp_worker_main(int argc, char** argv, CampaignCli cli) {
  const Scenario scenario = parse_scenario(
      consume_flag(argc, argv, "--mp-scenario").value_or("clean"));
  const std::size_t n = static_cast<std::size_t>(
      consume_uint_flag(argc, argv, "--mp-trials").value_or(0));
  const std::uint64_t base =
      consume_uint_flag(argc, argv, "--mp-seed").value_or(1);
  const auto trials = scenario_trials(n, base);
  auto options = cli.supervisor_options();
  options.run_trial = scenario_run_trial(scenario, cli.worker_fd);
  run_worker(trials, cli, std::move(options));
}

namespace {

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.mean_depth, b.mean_depth);
  EXPECT_EQ(a.per_node_delivery, b.per_node_delivery);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.data_tx, b.data_tx);
  EXPECT_EQ(a.parent_changes, b.parent_changes);
  EXPECT_EQ(a.final_tree.depths, b.final_tree.depths);
  EXPECT_EQ(a.final_tree.mean_depth, b.final_tree.mean_depth);
}

std::string temp_stem(const char* name) {
  return (std::filesystem::path{::testing::TempDir()} /
          (std::string{"fourbit_"} + name + "_" +
           std::to_string(::getpid()) + ".journal"))
      .string();
}

/// Coordinator options for a self-exec scenario campaign. Workers run
/// --threads 1 so exactly one trial is in flight per worker: crash
/// attribution in the tests is then deterministic.
MultiprocessOptions mp_options(const std::string& scenario, std::size_t n,
                               std::uint64_t base, std::size_t workers,
                               const std::string& journal = "") {
  MultiprocessOptions mp;
  mp.workers = workers;
  mp.exec_argv = {"/proc/self/exe",
                  "--mp-scenario", scenario,
                  "--mp-trials",   std::to_string(n),
                  "--mp-seed",     std::to_string(base),
                  "--threads",     "1"};
  mp.supervisor.journal_path = journal;
  mp.respawn_backoff = Backoff{10, 100, 0.0};
  return mp;
}

/// The single-process reference the merged report must match.
CampaignReport reference_report(std::size_t n, std::uint64_t base) {
  SupervisorOptions options;
  options.threads = 1;
  options.run_trial = [](const ExperimentConfig& config) {
    return synthetic_result(config.seed);
  };
  return run_supervised(scenario_trials(n, base), options);
}

// ---- pipe protocol codec ----------------------------------------------

TEST(WorkerRecordCodecTest, RoundTripsEveryField) {
  WorkerRecord rec;
  rec.kind = WorkerRecordKind::kTrialFailed;
  rec.worker = 7;
  rec.trial_index = 42;
  rec.seed = 0xDEADBEEFCAFE1234ULL;
  rec.attempt = 3;
  rec.failure_kind = FailureKind::kInvariant;
  rec.retried_total = 9;
  rec.what = "неожиданная ошибка: table overflow";  // bytes, not ASCII
  rec.flight.resize(2);
  rec.flight[0].at = sim::Time::from_us(123456);
  rec.flight[0].kind = sim::EventKind::kEtxUpdate;
  rec.flight[0].node = 5;
  rec.flight[0].peer = 6;
  rec.flight[0].arg = 1;
  rec.flight[0].v0 = 1.5;
  rec.flight[0].v1 = 2.25;
  rec.flight[1].at = sim::Time::from_us(123999);
  rec.flight[1].kind = sim::EventKind::kDataDrop;

  const auto frame = encode_worker_record(rec);
  WorkerPipeParser parser;
  parser.feed(frame.data(), frame.size());
  const auto out = parser.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(parser.corrupt());
  EXPECT_EQ(out->kind, WorkerRecordKind::kTrialFailed);
  EXPECT_EQ(out->worker, 7u);
  EXPECT_EQ(out->trial_index, 42u);
  EXPECT_EQ(out->seed, 0xDEADBEEFCAFE1234ULL);
  EXPECT_EQ(out->attempt, 3u);
  EXPECT_EQ(out->failure_kind, FailureKind::kInvariant);
  EXPECT_EQ(out->retried_total, 9u);
  EXPECT_EQ(out->what, rec.what);
  ASSERT_EQ(out->flight.size(), 2u);
  EXPECT_EQ(out->flight[0].at.us(), 123456);
  EXPECT_EQ(out->flight[0].kind, sim::EventKind::kEtxUpdate);
  EXPECT_EQ(out->flight[0].node, 5);
  EXPECT_EQ(out->flight[0].peer, 6);
  EXPECT_EQ(out->flight[0].v0, 1.5);
  EXPECT_EQ(out->flight[0].v1, 2.25);
  EXPECT_EQ(out->flight[1].kind, sim::EventKind::kDataDrop);
}

TEST(WorkerPipeParserTest, ReassemblesRecordsFedByteByByte) {
  WorkerRecord a;
  a.kind = WorkerRecordKind::kHeartbeat;
  a.worker = 1;
  WorkerRecord b;
  b.kind = WorkerRecordKind::kTrialDone;
  b.worker = 1;
  b.trial_index = 5;
  b.seed = 99;
  b.attempt = 1;
  auto stream = encode_worker_record(a);
  const auto frame_b = encode_worker_record(b);
  stream.insert(stream.end(), frame_b.begin(), frame_b.end());

  WorkerPipeParser parser;
  std::vector<WorkerRecord> records;
  for (const std::uint8_t byte : stream) {
    parser.feed(&byte, 1);
    while (auto rec = parser.next()) records.push_back(*rec);
  }
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, WorkerRecordKind::kHeartbeat);
  EXPECT_EQ(records[1].kind, WorkerRecordKind::kTrialDone);
  EXPECT_EQ(records[1].trial_index, 5u);
  EXPECT_FALSE(parser.corrupt());
}

TEST(WorkerPipeParserTest, BadMagicLatchesCorrupt) {
  WorkerPipeParser parser;
  const std::uint8_t junk[8] = {0xAA, 0xBB, 0, 0, 0, 0, 0, 0};
  parser.feed(junk, sizeof junk);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupt());
  // Latched: even a subsequent valid frame is not trusted.
  WorkerRecord rec;
  const auto frame = encode_worker_record(rec);
  parser.feed(frame.data(), frame.size());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupt());
}

TEST(WorkerPipeParserTest, FlippedPayloadByteFailsCrc) {
  WorkerRecord rec;
  rec.kind = WorkerRecordKind::kTrialDone;
  rec.trial_index = 3;
  auto frame = encode_worker_record(rec);
  frame[10] ^= 0x01;  // inside the payload
  WorkerPipeParser parser;
  parser.feed(frame.data(), frame.size());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupt());
}

TEST(WorkerPipeParserTest, PartialFrameIsNotCorruptJustIncomplete) {
  WorkerRecord rec;
  const auto frame = encode_worker_record(rec);
  WorkerPipeParser parser;
  parser.feed(frame.data(), frame.size() - 3);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_FALSE(parser.corrupt());  // a torn tail, pending more bytes
}

// ---- index spans ------------------------------------------------------

TEST(IndexSpanTest, FormatsRunsAndSingletons) {
  EXPECT_EQ(format_index_spans({0, 1, 2, 3, 4, 7, 9, 10, 11, 12}),
            "0-4,7,9-12");
  EXPECT_EQ(format_index_spans({5}), "5");
  EXPECT_EQ(format_index_spans({}), "");
  EXPECT_EQ(format_index_spans({3, 1, 2, 1}), "1-3");  // unsorted + dup
}

TEST(IndexSpanTest, ParseRoundTrips) {
  const std::vector<std::size_t> indices = {0, 1, 2, 3, 4, 7, 9, 10, 11, 12};
  const auto parsed = parse_index_spans(format_index_spans(indices));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, indices);
  const auto empty = parse_index_spans("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(IndexSpanTest, RejectsJunk) {
  EXPECT_FALSE(parse_index_spans("a").has_value());
  EXPECT_FALSE(parse_index_spans("1-").has_value());
  EXPECT_FALSE(parse_index_spans("-3").has_value());
  EXPECT_FALSE(parse_index_spans("1,,2").has_value());
  EXPECT_FALSE(parse_index_spans("1,2,").has_value());
  EXPECT_FALSE(parse_index_spans("5-2").has_value());
  EXPECT_FALSE(parse_index_spans("1;2").has_value());
}

// ---- flight snapshots -------------------------------------------------

TEST(FlightSnapshotTest, RoundTripsAndRejectsCorruption) {
  const std::string path = temp_stem("flight") + ".t0.flight";
  std::vector<sim::TelemetryEvent> events(3);
  events[0].at = sim::Time::from_us(10);
  events[0].kind = sim::EventKind::kBeaconTx;
  events[2].at = sim::Time::from_us(30);
  events[2].v1 = 4.5;
  write_flight_snapshot(path, 17, 421, events);

  const auto snap = load_flight_snapshot(path);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->trial_index, 17u);
  EXPECT_EQ(snap->seed, 421u);
  ASSERT_EQ(snap->events.size(), 3u);
  EXPECT_EQ(snap->events[0].at.us(), 10);
  EXPECT_EQ(snap->events[2].v1, 4.5);

  // Truncate: a torn snapshot must read as absent, not garbage.
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(file, nullptr);
  std::fclose(file);
  std::filesystem::resize_file(path, 9);
  EXPECT_FALSE(load_flight_snapshot(path).has_value());
  std::remove(path.c_str());
  EXPECT_FALSE(load_flight_snapshot(path).has_value());
}

// ---- Backoff ----------------------------------------------------------

TEST(BackoffTest, PureFunctionOfAttemptAndSeed) {
  const Backoff backoff{100, 5000, 0.25};
  // Determinism across any execution context (--threads / --workers
  // cannot change it): same inputs, same delay, every time.
  for (std::size_t attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_EQ(backoff.delay_ms(attempt, 42), backoff.delay_ms(attempt, 42));
  }
  EXPECT_NE(backoff.delay_ms(3, 1), backoff.delay_ms(3, 2));  // jitter varies
}

TEST(BackoffTest, DoublesFromBaseAndCaps) {
  const Backoff backoff{100, 1000, 0.0};  // no jitter: exact doubling
  EXPECT_EQ(backoff.delay_ms(1, 7), 100u);
  EXPECT_EQ(backoff.delay_ms(2, 7), 200u);
  EXPECT_EQ(backoff.delay_ms(3, 7), 400u);
  EXPECT_EQ(backoff.delay_ms(4, 7), 800u);
  EXPECT_EQ(backoff.delay_ms(5, 7), 1000u);   // capped
  EXPECT_EQ(backoff.delay_ms(50, 7), 1000u);  // huge attempt still capped
}

TEST(BackoffTest, JitterStaysInBandAndZeroBaseMeansNoDelay) {
  const Backoff backoff{100, 100000, 0.25};
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto d = backoff.delay_ms(1, seed);
    EXPECT_GE(d, 75u);
    EXPECT_LE(d, 125u);
  }
  const Backoff immediate{0, 1000, 0.25};
  EXPECT_EQ(immediate.delay_ms(5, 42), 0u);
}

TEST(BackoffTest, RetriedCampaignIsIdenticalAcrossThreadCounts) {
  // A retry policy with real backoff must not smuggle scheduling noise
  // into the report: failures and results match at any --threads.
  const auto run = [](std::size_t threads) {
    SupervisorOptions options;
    options.threads = threads;
    options.retry.max_attempts = 2;
    options.retry.classify = [](const TrialFailure&) { return true; };
    options.retry.backoff = Backoff{5, 50, 0.25};
    options.run_trial = [](const ExperimentConfig& config) {
      if (config.seed % 3 == 0) {
        throw std::runtime_error("always fails");
      }
      return synthetic_result(config.seed);
    };
    return run_supervised(scenario_trials(9, 100), options);
  };
  const auto a = run(1);
  const auto b = run(4);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].trial_index, b.failures[i].trial_index);
    EXPECT_EQ(a.failures[i].attempt, b.failures[i].attempt);
  }
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.retries, b.retries);
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    if (a.completed[i]) expect_identical(a.results[i], b.results[i]);
  }
}

// ---- subset execution -------------------------------------------------

TEST(SupervisorSubsetTest, RunsOnlyAssignedIndices) {
  SupervisorOptions options;
  options.threads = 2;
  options.subset = {1, 3, 17};  // 17 is out of range: ignored
  options.run_trial = [](const ExperimentConfig& config) {
    return synthetic_result(config.seed);
  };
  const auto report = run_supervised(scenario_trials(5, 10), options);
  EXPECT_EQ(report.completed, (std::vector<std::uint8_t>{0, 1, 0, 1, 0}));
  EXPECT_EQ(report.attempts, 2u);
}

// ---- journal shard merge ----------------------------------------------

TEST(ShardMergeTest, MergesShardsNumericallyLastCompleteRecordWins) {
  const std::string stem = temp_stem("merge");
  const auto w0 = TrialJournal::shard_path(stem, 0);
  const auto w2 = TrialJournal::shard_path(stem, 2);
  const auto w10 = TrialJournal::shard_path(stem, 10);
  {
    auto j0 = TrialJournal::open_append(w0);
    j0.append(1, 101, synthetic_result(101));
    j0.append(5, 105, synthetic_result(1));  // will be overridden by w2
    auto j2 = TrialJournal::open_append(w2);
    j2.append(5, 105, synthetic_result(105));
    j2.append(5, 105, synthetic_result(2));  // duplicate in-shard: last wins
    auto j10 = TrialJournal::open_append(w10);
    j10.append(5, 105, synthetic_result(3));  // numeric order: w10 after w2
    j10.append(7, 107, synthetic_result(107));
  }
  const auto merged = TrialJournal::merge_shards(stem);
  EXPECT_EQ(merged.shards, 3u);
  EXPECT_EQ(merged.records, 6u);
  EXPECT_FALSE(merged.torn);
  ASSERT_EQ(merged.entries.size(), 3u);
  for (const auto& entry : merged.entries) {
    if (entry.trial_index == 5) {
      expect_identical(entry.result, synthetic_result(3));
    }
  }
  for (const auto& path : {w0, w2, w10}) std::remove(path.c_str());
}

TEST(ShardMergeTest, ToleratesTornShardTail) {
  const std::string stem = temp_stem("torn");
  const auto w0 = TrialJournal::shard_path(stem, 0);
  {
    auto journal = TrialJournal::open_append(w0);
    journal.append(0, 200, synthetic_result(200));
  }
  {
    std::FILE* file = std::fopen(w0.c_str(), "ab");
    ASSERT_NE(file, nullptr);
    const std::uint8_t torn[5] = {0x46, 0x4A, 0x00, 0x00, 0x01};
    std::fwrite(torn, 1, sizeof torn, file);
    std::fclose(file);
  }
  const auto merged = TrialJournal::merge_shards(stem);
  EXPECT_TRUE(merged.torn);
  ASSERT_EQ(merged.entries.size(), 1u);
  EXPECT_EQ(merged.entries[0].trial_index, 0u);
  std::remove(w0.c_str());
}

TEST(ShardMergeTest, AppendAfterTornTailTruncatesAndStaysReadable) {
  // A worker killed mid-append leaves a torn tail; its respawn reopens
  // the same shard. open_append must truncate the garbage so the new
  // records are not stranded behind it.
  const std::string path = temp_stem("reopen") + ".w0.journal";
  {
    auto journal = TrialJournal::open_append(path);
    journal.append(0, 700, synthetic_result(700));
  }
  {
    std::FILE* file = std::fopen(path.c_str(), "ab");
    ASSERT_NE(file, nullptr);
    const std::uint8_t torn[7] = {0x46, 0x4A, 0x10, 0x00, 0x00, 0x00, 0xEE};
    std::fwrite(torn, 1, sizeof torn, file);
    std::fclose(file);
  }
  {
    auto journal = TrialJournal::open_append(path);
    journal.append(1, 701, synthetic_result(701));
  }
  const auto loaded = TrialJournal::load(path);
  EXPECT_FALSE(loaded.torn);
  ASSERT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ(loaded.entries[0].trial_index, 0u);
  EXPECT_EQ(loaded.entries[1].trial_index, 1u);
  expect_identical(loaded.entries[1].result, synthetic_result(701));
  std::remove(path.c_str());
}

TEST(ShardMergeTest, IgnoresNonShardSiblings) {
  const std::string stem = temp_stem("sibling");
  const auto w1 = TrialJournal::shard_path(stem, 1);
  const std::string decoy = stem + ".wx.journal";
  {
    auto journal = TrialJournal::open_append(w1);
    journal.append(3, 303, synthetic_result(303));
    auto bogus = TrialJournal::open_append(decoy);
    bogus.append(9, 909, synthetic_result(909));
  }
  const auto merged = TrialJournal::merge_shards(stem);
  EXPECT_EQ(merged.shards, 1u);
  ASSERT_EQ(merged.entries.size(), 1u);
  EXPECT_EQ(merged.entries[0].trial_index, 3u);
  std::remove(w1.c_str());
  std::remove(decoy.c_str());
}

// ---- CLI surface ------------------------------------------------------

std::vector<char*> make_argv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& arg : args) argv.push_back(arg.data());
  return argv;
}

TEST(WorkersCliTest, ParsesWorkersAndHiddenWorkerFlags) {
  std::vector<std::string> args = {
      "bench",          "--workers",       "4",
      "--worker-fd",    "7",               "--worker-id",
      "2",              "--worker-shard",  "/tmp/x.w2.journal",
      "--worker-trials","0-3,8",           "--threads",
      "3"};
  auto argv = make_argv(args);
  int argc = static_cast<int>(argv.size());
  const auto cli = consume_campaign_cli(argc, argv.data());
  EXPECT_EQ(cli.workers, 4u);
  EXPECT_EQ(cli.worker_fd, 7);
  EXPECT_EQ(cli.worker_id, 2u);
  EXPECT_EQ(cli.worker_shard, "/tmp/x.w2.journal");
  EXPECT_EQ(cli.worker_trials, "0-3,8");
  EXPECT_EQ(cli.threads, 3u);
  EXPECT_EQ(argc, 1);  // everything consumed
  // exec_argv snapshots the ORIGINAL command line, pre-stripping.
  ASSERT_EQ(cli.exec_argv.size(), 13u);
  EXPECT_EQ(cli.exec_argv[0], "bench");
  EXPECT_EQ(cli.exec_argv[1], "--workers");
}

TEST(WorkersCliTest, AbsentWorkersFlagMeansInProcess) {
  std::vector<std::string> args = {"bench", "--threads", "2"};
  auto argv = make_argv(args);
  int argc = static_cast<int>(argv.size());
  const auto cli = consume_campaign_cli(argc, argv.data());
  EXPECT_EQ(cli.workers, 0u);
  EXPECT_EQ(cli.worker_fd, -1);
}

void parse_workers_value(const char* value) {
  std::vector<std::string> args = {"bench", "--workers", value};
  auto argv = make_argv(args);
  int argc = static_cast<int>(argv.size());
  (void)consume_campaign_cli(argc, argv.data());
}

TEST(WorkersCliDeathTest, RejectsWorkersZeroWithExit2) {
  EXPECT_EXIT(parse_workers_value("0"), ::testing::ExitedWithCode(2),
              "--workers");
}

TEST(WorkersCliDeathTest, RejectsWorkersJunkWithExit2) {
  EXPECT_EXIT(parse_workers_value("many"), ::testing::ExitedWithCode(2),
              "--workers");
}

// ---- end-to-end multi-process campaigns -------------------------------

TEST(MultiprocessTest, CleanCampaignMatchesInProcessAtAnyWorkerCount) {
  const auto reference = reference_report(8, 300);
  for (const std::size_t workers : {1u, 3u}) {
    const auto trials = scenario_trials(8, 300);
    const auto report =
        run_multiprocess(trials, mp_options("clean", 8, 300, workers));
    EXPECT_TRUE(report.failures.empty());
    EXPECT_EQ(report.hard_crashes, 0u);
    EXPECT_EQ(report.worker_respawns, 0u);
    EXPECT_EQ(report.attempts, 8u);
    ASSERT_EQ(report.completed, reference.completed);
    for (std::size_t i = 0; i < trials.size(); ++i) {
      expect_identical(report.results[i], reference.results[i]);
    }
  }
}

TEST(MultiprocessTest, RealSimCampaignIsIdenticalAcrossWorkerCounts) {
  // Campaign-level bit-identity of the fast engine (calendar queue,
  // batch kernels, per-trial arenas, all default-on) across the process
  // isolation boundary: --workers 1 and --workers 3 must both match the
  // in-process single-threaded reference exactly, engine-health fields
  // included.
  const std::size_t n = 3;
  SupervisorOptions ref_options;
  ref_options.threads = 1;
  ref_options.run_trial = [](const ExperimentConfig& config) {
    return run_experiment(real_trial(config.seed));
  };
  const auto reference = run_supervised(scenario_trials(n, 900), ref_options);
  ASSERT_TRUE(reference.all_completed());

  for (const std::size_t workers : {1u, 3u}) {
    const auto trials = scenario_trials(n, 900);
    const auto report =
        run_multiprocess(trials, mp_options("real", n, 900, workers));
    EXPECT_TRUE(report.failures.empty());
    EXPECT_EQ(report.hard_crashes, 0u);
    ASSERT_EQ(report.completed, reference.completed);
    for (std::size_t i = 0; i < trials.size(); ++i) {
      expect_identical(report.results[i], reference.results[i]);
      EXPECT_EQ(report.results[i].arena_bytes,
                reference.results[i].arena_bytes);
      EXPECT_EQ(report.results[i].eq_resizes,
                reference.results[i].eq_resizes);
    }
  }
}

TEST(MultiprocessTest, SegvTrialBecomesHardCrashWithFlightEvidence) {
  const auto reference = reference_report(6, 400);
  const auto trials = scenario_trials(6, 400);
  const auto report =
      run_multiprocess(trials, mp_options("segv@2", 6, 400, 2));
  ASSERT_EQ(report.failures.size(), 1u);
  const auto& failure = report.failures[0];
  EXPECT_EQ(failure.trial_index, 2u);
  EXPECT_EQ(failure.kind, FailureKind::kHardCrash);
  EXPECT_EQ(failure.seed, 402u);
  // Raw SIGSEGV normally; a sanitizer build intercepts it and exits
  // nonzero instead — both are hard crashes, only term_signal differs.
  EXPECT_TRUE(failure.term_signal == SIGSEGV || failure.term_signal == 0);
  if (failure.term_signal == SIGSEGV) {
    // The flushed snapshot written just before the crash was recovered.
    ASSERT_EQ(failure.flight.size(), 2u);
    EXPECT_EQ(failure.flight[0].kind, sim::EventKind::kRouteChange);
    EXPECT_EQ(failure.flight[1].v0, 0.75);
  }
  EXPECT_GE(report.hard_crashes, 2u);   // crashed, respawned, crashed again
  EXPECT_GE(report.worker_respawns, 1u);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    if (i == 2) {
      EXPECT_FALSE(report.completed[i]);
      continue;
    }
    ASSERT_TRUE(report.completed[i]) << "trial " << i;
    expect_identical(report.results[i], reference.results[i]);
  }
}

TEST(MultiprocessTest, NonzeroExitBecomesHardCrash) {
  const auto trials = scenario_trials(5, 500);
  const auto report =
      run_multiprocess(trials, mp_options("exit3@1", 5, 500, 2));
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].trial_index, 1u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kHardCrash);
  EXPECT_EQ(report.failures[0].term_signal, 0);
  EXPECT_NE(report.failures[0].what.find("status 3"), std::string::npos);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(report.completed[i] != 0, i != 1);
  }
}

TEST(MultiprocessTest, OomKilledTrialBecomesHardCrash) {
  const auto trials = scenario_trials(4, 600);
  const auto report = run_multiprocess(trials, mp_options("oom@0", 4, 600, 2));
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].trial_index, 0u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kHardCrash);
  for (std::size_t i = 1; i < trials.size(); ++i) {
    EXPECT_TRUE(report.completed[i]) << "trial " << i;
  }
}

TEST(MultiprocessTest, NonCooperativeHangIsCaughtByCoordinatorWatchdog) {
  const auto trials = scenario_trials(5, 700);
  auto mp = mp_options("hang@0", 5, 700, 2);
  mp.trial_timeout_ms = 1200;
  const auto report = run_multiprocess(trials, mp);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].trial_index, 0u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kTimeout);
  for (std::size_t i = 1; i < trials.size(); ++i) {
    EXPECT_TRUE(report.completed[i]) << "trial " << i;
  }
}

TEST(MultiprocessTest, FrozenWorkerIsReapedByHeartbeatWatchdog) {
  const auto trials = scenario_trials(4, 800);
  auto mp = mp_options("freeze@1", 4, 800, 2);
  mp.heartbeat_timeout_ms = 700;
  const auto report = run_multiprocess(trials, mp);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].trial_index, 1u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kHardCrash);
  EXPECT_EQ(report.failures[0].term_signal, SIGKILL);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(report.completed[i] != 0, i != 1);
  }
}

TEST(MultiprocessTest, CorruptPipeFrameIsWorkerCrashNotCoordinatorAbort) {
  const auto trials = scenario_trials(5, 900);
  const auto report =
      run_multiprocess(trials, mp_options("badcrc@1", 5, 900, 2));
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].trial_index, 1u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kHardCrash);
  EXPECT_NE(report.failures[0].what.find("corrupt"), std::string::npos);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(report.completed[i] != 0, i != 1);
  }
}

TEST(MultiprocessTest, WorkerKilledMidRecordIsHardCrash) {
  const auto trials = scenario_trials(5, 1000);
  const auto report =
      run_multiprocess(trials, mp_options("tornkill@1", 5, 1000, 2));
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].trial_index, 1u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kHardCrash);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(report.completed[i] != 0, i != 1);
  }
}

TEST(MultiprocessTest, SoftFailureTravelsThePipeIntact) {
  const auto trials = scenario_trials(4, 1100);
  const auto report = run_multiprocess(trials, mp_options("fail@3", 4, 1100, 2));
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].trial_index, 3u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kException);
  EXPECT_EQ(report.failures[0].what, "scenario soft failure");
  EXPECT_EQ(report.hard_crashes, 0u);  // the worker itself lived on
  EXPECT_EQ(report.worker_respawns, 0u);
}

TEST(MultiprocessTest, ResumesFromShardsCompactsAndRejectsForeignSeeds) {
  const std::string stem = temp_stem("mpresume");
  const std::uint64_t base = 1200;
  const std::size_t n = 6;
  {
    // A prior coordinator (SIGKILLed, say) left a shard with trials
    // 0-2 done, one foreign-seed record for trial 3, and a torn tail.
    auto shard = TrialJournal::open_append(TrialJournal::shard_path(stem, 0));
    for (std::uint32_t i = 0; i < 3; ++i) {
      shard.append(i, base + i, synthetic_result(base + i));
    }
    ExperimentResult poison = synthetic_result(9999);
    poison.cost = 999.0;
    shard.append(3, 31337, poison);  // wrong seed: must NOT be replayed
  }
  {
    std::FILE* file = std::fopen(
        TrialJournal::shard_path(stem, 0).c_str(), "ab");
    ASSERT_NE(file, nullptr);
    const std::uint8_t torn[4] = {0x46, 0x4A, 0x00, 0x00};
    std::fwrite(torn, 1, sizeof torn, file);
    std::fclose(file);
  }

  const auto trials = scenario_trials(n, base);
  const auto report =
      run_multiprocess(trials, mp_options("clean", n, base, 2, stem));
  EXPECT_TRUE(report.failures.empty());
  EXPECT_EQ(report.replayed, 3u);      // the three shard records
  EXPECT_TRUE(report.journal_torn);    // the torn shard tail was noticed
  EXPECT_EQ(report.attempts, 3u);      // only trials 3-5 actually ran
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(report.completed[i]) << "trial " << i;
    expect_identical(report.results[i], synthetic_result(base + i));
  }
  EXPECT_NE(report.results[3].cost, 999.0);  // foreign record rejected

  // Compaction: shards are gone, the main journal holds everything, and
  // a re-run replays it all without spawning a single trial.
  EXPECT_FALSE(std::filesystem::exists(TrialJournal::shard_path(stem, 0)));
  EXPECT_FALSE(std::filesystem::exists(TrialJournal::shard_path(stem, 1)));
  const auto again =
      run_multiprocess(trials, mp_options("clean", n, base, 3, stem));
  EXPECT_EQ(again.replayed, 6u);
  EXPECT_EQ(again.attempts, 0u);
  for (std::size_t i = 0; i < n; ++i) {
    expect_identical(again.results[i], synthetic_result(base + i));
  }
  std::remove(stem.c_str());
}

}  // namespace
}  // namespace fourbit::runner

int main(int argc, char** argv) {
  auto cli = fourbit::runner::consume_campaign_cli(argc, argv);
  if (cli.worker_fd >= 0) {
    fourbit::runner::mp_worker_main(argc, argv, std::move(cli));
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
