// Tests of the physical layer: modulation, LQI, propagation, hardware
// variation, interference processes, and the channel/radio pair.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "phy/channel.hpp"
#include "phy/hardware.hpp"
#include "phy/interference.hpp"
#include "phy/lqi.hpp"
#include "phy/modulation.hpp"
#include "phy/propagation.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"

namespace fourbit::phy {
namespace {

// ---- OqpskModulation -------------------------------------------------------

TEST(ModulationTest, BerEndpoints) {
  OqpskModulation mod;
  EXPECT_LT(mod.bit_error_rate(10.0), 1e-9);   // clean channel
  EXPECT_GT(mod.bit_error_rate(-10.0), 0.05);  // hopeless channel
}

TEST(ModulationTest, BerMonotoneNonIncreasing) {
  OqpskModulation mod;
  double prev = 1.0;
  for (double snr = -12.0; snr <= 12.0; snr += 0.25) {
    const double ber = mod.bit_error_rate(snr);
    EXPECT_LE(ber, prev + 1e-12) << "at snr " << snr;
    prev = ber;
  }
}

TEST(ModulationTest, TableMatchesExactFormula) {
  OqpskModulation mod;
  for (double snr = -8.0; snr <= 8.0; snr += 0.37) {
    const double exact = OqpskModulation::exact_bit_error_rate(snr);
    const double table = mod.bit_error_rate(snr);
    EXPECT_NEAR(table, exact, exact * 0.05 + 1e-9) << "at snr " << snr;
  }
}

TEST(ModulationTest, PrrDecreasesWithFrameLength) {
  OqpskModulation mod;
  const double snr = 0.5;  // in the transition region
  const double short_frame = mod.packet_reception_ratio(snr, 20);
  const double long_frame = mod.packet_reception_ratio(snr, 120);
  EXPECT_GT(short_frame, long_frame);
}

TEST(ModulationTest, PrrEndpoints) {
  OqpskModulation mod;
  EXPECT_NEAR(mod.packet_reception_ratio(10.0, 40), 1.0, 1e-6);
  EXPECT_LT(mod.packet_reception_ratio(-10.0, 40), 1e-6);
}

TEST(ModulationTest, PrrTransitionRegionIsGrayZone) {
  OqpskModulation mod;
  // There must exist SNRs giving intermediate PRR (the gray zone links
  // the paper cares about).
  bool found = false;
  for (double snr = -5.0; snr <= 5.0; snr += 0.1) {
    const double prr = mod.packet_reception_ratio(snr, 46);
    if (prr > 0.2 && prr < 0.8) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ModulationTest, FloorMemoCorrectAcrossManyFrameSizes) {
  // The sub-threshold PRR memo is a small sorted vector capped in size:
  // hammer it with far more distinct frame sizes than the cap holds, in
  // a worst-case (descending, so every insert lands at the front) order,
  // then verify every answer — memoized or recomputed — against a fresh
  // instance and against the closed form.
  OqpskModulation mod;
  const double sinr = -20.0;  // below kMinSnrDb: floor region
  const double ber = mod.bit_error_rate(sinr);
  for (int round = 0; round < 2; ++round) {
    for (std::size_t bytes = 400; bytes >= 1; --bytes) {
      const double got = mod.packet_reception_ratio(sinr, bytes);
      const double want =
          std::pow(1.0 - ber, static_cast<double>(bytes * 8));
      EXPECT_EQ(got, want) << "frame_bytes " << bytes;
      OqpskModulation fresh;
      if (bytes % 97 == 0) {  // spot-check cross-instance consistency
        EXPECT_EQ(fresh.packet_reception_ratio(sinr, bytes), got);
      }
    }
  }
}

TEST(ModulationTest, PrrBatchMatchesScalarBitwise) {
  OqpskModulation mod;
  std::vector<double> sinr;
  for (double s = -25.0; s <= 15.0; s += 0.173) sinr.push_back(s);
  std::vector<double> batch(sinr.size());
  for (const std::size_t frame_bytes : {1u, 20u, 46u, 120u}) {
    mod.prr_batch(sinr, frame_bytes, batch);
    for (std::size_t i = 0; i < sinr.size(); ++i) {
      const double scalar =
          mod.packet_reception_ratio(sinr[i], frame_bytes);
      EXPECT_EQ(batch[i], scalar)
          << "sinr " << sinr[i] << " bytes " << frame_bytes;
    }
  }
}

// ---- LqiModel -----------------------------------------------------------------

TEST(LqiTest, MeanMonotoneInSnr) {
  double prev = 0.0;
  for (double snr = -10.0; snr <= 15.0; snr += 0.5) {
    const double lqi = LqiModel::mean_lqi(snr);
    EXPECT_GE(lqi, prev);
    prev = lqi;
  }
}

TEST(LqiTest, SaturatesHighAndLow) {
  EXPECT_NEAR(LqiModel::mean_lqi(15.0), 110.0, 1.0);
  EXPECT_NEAR(LqiModel::mean_lqi(-10.0), 50.0, 1.0);
}

TEST(LqiTest, SamplesClampedToRange) {
  sim::Rng rng{1};
  for (int i = 0; i < 1000; ++i) {
    const int lqi = LqiModel::sample(5.0, rng);
    EXPECT_GE(lqi, LqiModel::kMinLqi);
    EXPECT_LE(lqi, LqiModel::kMaxLqi);
  }
}

TEST(LqiTest, SampleMeanNearModel) {
  sim::Rng rng{2};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += LqiModel::sample(2.0, rng);
  EXPECT_NEAR(sum / n, LqiModel::mean_lqi(2.0), 0.3);
}

// ---- PropagationModel -----------------------------------------------------------

TEST(PropagationTest, DeterministicPerPair) {
  PropagationConfig cfg;
  PropagationModel m1{cfg, sim::Rng{7}};
  PropagationModel m2{cfg, sim::Rng{7}};
  const Position a{0, 0};
  const Position b{10, 0};
  EXPECT_DOUBLE_EQ(m1.loss(NodeId{1}, a, NodeId{2}, b).value(),
                   m2.loss(NodeId{1}, a, NodeId{2}, b).value());
}

TEST(PropagationTest, CachedValueStable) {
  PropagationModel m{PropagationConfig{}, sim::Rng{7}};
  const Position a{0, 0};
  const Position b{10, 0};
  const double first = m.loss(NodeId{1}, a, NodeId{2}, b).value();
  const double second = m.loss(NodeId{1}, a, NodeId{2}, b).value();
  EXPECT_DOUBLE_EQ(first, second);
}

TEST(PropagationTest, LossGrowsWithDistanceOnAverage) {
  PropagationConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  cfg.asymmetry_sigma_db = 0.0;
  PropagationModel m{cfg, sim::Rng{7}};
  const double near = m.loss(NodeId{1}, {0, 0}, NodeId{2}, {5, 0}).value();
  const double far = m.loss(NodeId{1}, {0, 0}, NodeId{3}, {50, 0}).value();
  EXPECT_GT(far, near);
  // Log-distance slope: 10x distance = 10*n dB.
  EXPECT_NEAR(far - near, 10.0 * cfg.exponent, 1e-9);
}

TEST(PropagationTest, DirectionalAsymmetryBounded) {
  PropagationConfig cfg;
  cfg.shadowing_sigma_db = 3.0;
  cfg.asymmetry_sigma_db = 1.5;
  PropagationModel m{cfg, sim::Rng{11}};
  // The a->b / b->a difference comes only from the directional component,
  // so across many pairs its spread should reflect ~sqrt(2)*sigma_dir.
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const NodeId a{static_cast<std::uint16_t>(2 * i)};
    const NodeId b{static_cast<std::uint16_t>(2 * i + 1)};
    const Position pa{0, 0};
    const Position pb{10, static_cast<double>(i % 7)};
    const double delta =
        m.loss(a, pa, b, pb).value() - m.loss(b, pb, a, pa).value();
    sum += delta;
    sumsq += delta * delta;
  }
  const double mean = sum / n;
  const double stddev = std::sqrt(sumsq / n - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.35);
  EXPECT_NEAR(stddev, cfg.asymmetry_sigma_db * std::sqrt(2.0), 0.5);
}

TEST(PropagationTest, MinimumDistanceClamped) {
  PropagationConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  cfg.asymmetry_sigma_db = 0.0;
  PropagationModel m{cfg, sim::Rng{3}};
  // Coincident nodes: distance clamps at 0.5 m, loss stays finite.
  const double loss = m.loss(NodeId{1}, {0, 0}, NodeId{2}, {0, 0}).value();
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(loss, 100.0);
}

// ---- HardwareProfile ---------------------------------------------------------------

TEST(HardwareTest, SampleSpreadMatchesConfig) {
  HardwareVariationConfig cfg;
  cfg.tx_offset_sigma_db = 2.0;
  cfg.noise_figure_sigma_db = 1.0;
  sim::Rng rng{5};
  double tx_sumsq = 0.0;
  double nf_sumsq = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const auto hw = HardwareProfile::sample(cfg, rng);
    tx_sumsq += hw.tx_power_offset.value() * hw.tx_power_offset.value();
    nf_sumsq +=
        hw.noise_figure_offset.value() * hw.noise_figure_offset.value();
  }
  EXPECT_NEAR(std::sqrt(tx_sumsq / n), 2.0, 0.15);
  EXPECT_NEAR(std::sqrt(nf_sumsq / n), 1.0, 0.1);
}

// ---- Interference -------------------------------------------------------------------

TEST(InterferenceTest, NullNeverDestroys) {
  NullInterference ni;
  EXPECT_EQ(ni.destroy_probability(NodeId{1}, sim::Time::from_us(0),
                                   sim::Time::from_us(1000)),
            0.0);
}

TEST(InterferenceTest, GilbertElliottTimeFractionMatchesDwells) {
  GilbertElliottInterference::Config cfg;
  cfg.mean_good = sim::Duration::from_seconds(90.0);
  cfg.mean_bad = sim::Duration::from_seconds(30.0);
  cfg.affected_fraction = 1.0;
  cfg.bad_loss_probability = 1.0;
  GilbertElliottInterference ge{cfg, sim::Rng{21}};
  // Sample the chain of one node over a long horizon; the bad-state
  // fraction should approach 30 / (90 + 30) = 0.25.
  int bad = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    const auto t = sim::Time::from_us(static_cast<std::int64_t>(i) *
                                      1'000'000);  // 1 s grid
    if (ge.in_bad_state(NodeId{1}, t)) ++bad;
  }
  EXPECT_NEAR(static_cast<double>(bad) / samples, 0.25, 0.04);
}

TEST(InterferenceTest, UnaffectedNodesNeverBad) {
  GilbertElliottInterference::Config cfg;
  cfg.affected_fraction = 0.0;
  GilbertElliottInterference ge{cfg, sim::Rng{22}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(ge.in_bad_state(
        NodeId{3}, sim::Time::from_us(static_cast<std::int64_t>(i) * 1e7)));
  }
}

TEST(InterferenceTest, ExemptNodeNeverBad) {
  GilbertElliottInterference::Config cfg;
  cfg.affected_fraction = 1.0;
  cfg.exempt = NodeId{9};
  GilbertElliottInterference ge{cfg, sim::Rng{23}};
  for (int i = 0; i < 200; ++i) {
    const auto t = sim::Time::from_us(static_cast<std::int64_t>(i) * 1e7);
    EXPECT_FALSE(ge.in_bad_state(NodeId{9}, t));
  }
}

TEST(InterferenceTest, ScheduledBurstWindowing) {
  std::vector<ScheduledBurstInterference::Burst> bursts = {
      {NodeId{1}, sim::Time::from_us(100), sim::Time::from_us(200), 0.5},
      {kBroadcastId, sim::Time::from_us(500), sim::Time::from_us(600), 0.9},
  };
  ScheduledBurstInterference si{bursts};
  // Inside the victim-specific window.
  EXPECT_EQ(si.destroy_probability(NodeId{1}, sim::Time::from_us(120),
                                   sim::Time::from_us(130)),
            0.5);
  // Wrong victim.
  EXPECT_EQ(si.destroy_probability(NodeId{2}, sim::Time::from_us(120),
                                   sim::Time::from_us(130)),
            0.0);
  // Broadcast burst hits everyone.
  EXPECT_EQ(si.destroy_probability(NodeId{2}, sim::Time::from_us(510),
                                   sim::Time::from_us(520)),
            0.9);
  // Outside every window.
  EXPECT_EQ(si.destroy_probability(NodeId{1}, sim::Time::from_us(300),
                                   sim::Time::from_us(310)),
            0.0);
  // Partial overlap counts.
  EXPECT_EQ(si.destroy_probability(NodeId{1}, sim::Time::from_us(90),
                                   sim::Time::from_us(110)),
            0.5);
}

// ---- Channel + Radio ------------------------------------------------------------------

class ChannelFixture : public ::testing::Test {
 protected:
  ChannelFixture() {
    PropagationConfig prop;
    prop.shadowing_sigma_db = 0.0;
    prop.asymmetry_sigma_db = 0.0;
    channel_ = std::make_unique<Channel>(
        sim_, PhyConfig{}, prop, std::make_unique<NullInterference>(),
        sim::Rng{42});
  }

  Radio make_radio(std::uint16_t id, double x) {
    return Radio{*channel_, NodeId{id}, Position{x, 0.0}, HardwareProfile{},
                 PowerDbm{0.0}};
  }

  sim::Simulator sim_;
  std::unique_ptr<Channel> channel_;
};

TEST_F(ChannelFixture, CloseRadiosAlwaysDeliver) {
  Radio a = make_radio(1, 0.0);
  Radio b = make_radio(2, 5.0);
  int received = 0;
  RxInfo last_info;
  b.set_rx_handler([&](std::span<const std::uint8_t> frame,
                       const RxInfo& info) {
    ++received;
    last_info = info;
    EXPECT_EQ(frame.size(), 10u);
  });
  for (int i = 0; i < 20; ++i) {
    a.transmit(std::vector<std::uint8_t>(10, 0x55), nullptr);
    sim_.run();
  }
  EXPECT_EQ(received, 20);
  EXPECT_GT(last_info.snr_db, 10.0);
  EXPECT_TRUE(last_info.white);  // clean channel -> white bit set
  EXPECT_GE(last_info.lqi, 105);
}

TEST_F(ChannelFixture, FarRadiosNeverDeliver) {
  Radio a = make_radio(1, 0.0);
  Radio b = make_radio(2, 500.0);
  int received = 0;
  b.set_rx_handler(
      [&](std::span<const std::uint8_t>, const RxInfo&) { ++received; });
  for (int i = 0; i < 20; ++i) {
    a.transmit(std::vector<std::uint8_t>(10, 0x55), nullptr);
    sim_.run();
  }
  EXPECT_EQ(received, 0);
}

TEST_F(ChannelFixture, SenderDoesNotHearItself) {
  Radio a = make_radio(1, 0.0);
  int self_rx = 0;
  a.set_rx_handler(
      [&](std::span<const std::uint8_t>, const RxInfo&) { ++self_rx; });
  a.transmit(std::vector<std::uint8_t>(10, 1), nullptr);
  sim_.run();
  EXPECT_EQ(self_rx, 0);
}

TEST_F(ChannelFixture, TxDoneFiresAtAirtimeEnd) {
  Radio a = make_radio(1, 0.0);
  sim::Time done_at;
  a.transmit(std::vector<std::uint8_t>(10, 1),
             [&] { done_at = sim_.now(); });
  EXPECT_TRUE(a.transmitting());
  sim_.run();
  // 10-byte MPDU + 6 bytes PHY overhead at 250 kbps = 512 us.
  EXPECT_EQ(done_at.us(), 512);
  EXPECT_FALSE(a.transmitting());
}

TEST_F(ChannelFixture, StrongInterfererDestroysWeakerPacket) {
  // Capture: c sits next to interferer b and far from a. During overlap,
  // a's packet has deeply negative SINR at c and is lost; b's packet
  // shrugs off the weak interference and is received.
  Radio a = make_radio(1, 40.0);
  Radio b = make_radio(2, 2.0);
  Radio c = make_radio(3, 0.0);
  int from_a = 0;
  int from_b = 0;
  c.set_rx_handler(
      [&](std::span<const std::uint8_t> frame, const RxInfo& info) {
        if (!info.fcs_ok) return;
        (frame[0] == 1 ? from_a : from_b) += 1;
      });
  for (int i = 0; i < 20; ++i) {
    a.transmit(std::vector<std::uint8_t>(40, 1), nullptr);
    b.transmit(std::vector<std::uint8_t>(40, 2), nullptr);
    sim_.run();
  }
  EXPECT_EQ(from_a, 0);
  EXPECT_EQ(from_b, 20);
}

TEST_F(ChannelFixture, InterferenceDegradesMarginalLink) {
  // A link that is perfect in isolation loses packets when a concurrent
  // transmitter adds comparable interference power.
  Radio a = make_radio(1, 0.0);
  Radio c = make_radio(3, 30.0);
  Radio jammer = make_radio(2, 60.0);
  int received = 0;
  c.set_rx_handler([&](std::span<const std::uint8_t> frame,
                       const RxInfo& info) {
    if (info.fcs_ok && frame[0] == 1) ++received;
  });
  const int rounds = 50;
  for (int i = 0; i < rounds; ++i) {
    a.transmit(std::vector<std::uint8_t>(60, 1), nullptr);
    jammer.transmit(std::vector<std::uint8_t>(60, 2), nullptr);
    sim_.run();
  }
  EXPECT_LT(received, rounds);  // interference cost something
}

TEST_F(ChannelFixture, ReceiverBusyTransmittingMissesPacket) {
  Radio a = make_radio(1, 0.0);
  Radio b = make_radio(2, 5.0);
  int received = 0;
  b.set_rx_handler(
      [&](std::span<const std::uint8_t>, const RxInfo&) { ++received; });
  // b starts a long transmission; a transmits during it.
  b.transmit(std::vector<std::uint8_t>(100, 9), nullptr);
  a.transmit(std::vector<std::uint8_t>(10, 1), nullptr);
  sim_.run();
  EXPECT_EQ(received, 0);
}

TEST_F(ChannelFixture, CcaSeesNearbyTransmission) {
  Radio a = make_radio(1, 0.0);
  Radio b = make_radio(2, 5.0);
  EXPECT_TRUE(b.channel_clear());
  a.transmit(std::vector<std::uint8_t>(100, 1), nullptr);
  EXPECT_FALSE(b.channel_clear());
  EXPECT_FALSE(a.channel_clear());  // own transmission
  sim_.run();
  EXPECT_TRUE(b.channel_clear());
}

TEST_F(ChannelFixture, MeanPrrMatchesSnrCurve) {
  Radio a = make_radio(1, 0.0);
  Radio b = make_radio(2, 5.0);
  EXPECT_NEAR(channel_->mean_prr(a, b, 40), 1.0, 1e-6);
  Radio far = make_radio(3, 400.0);
  EXPECT_LT(channel_->mean_prr(a, far, 40), 0.01);
}

TEST_F(ChannelFixture, FramesTransmittedCounts) {
  Radio a = make_radio(1, 0.0);
  const auto before = channel_->frames_transmitted();
  a.transmit(std::vector<std::uint8_t>(10, 1), nullptr);
  sim_.run();
  a.transmit(std::vector<std::uint8_t>(10, 1), nullptr);
  sim_.run();
  EXPECT_EQ(channel_->frames_transmitted(), before + 2);
}

TEST_F(ChannelFixture, HardwareOffsetsShiftSnr) {
  Radio a = make_radio(1, 0.0);
  Radio b = make_radio(2, 30.0);
  HardwareProfile hot;
  hot.tx_power_offset = Decibels{4.0};
  Radio a_hot{*channel_, NodeId{3}, Position{0.0, 0.1}, hot, PowerDbm{0.0}};
  EXPECT_NEAR(channel_->snr_db(a_hot, b) - channel_->snr_db(a, b), 4.0, 0.5);
}

TEST(ChannelBurstTest, BurstDestroysWithoutLqiTrace) {
  // During a 100%-destroy burst nothing is received at all; after it,
  // packets arrive with HIGH LQI — the Figure 3 mechanism in miniature.
  sim::Simulator sim;
  PropagationConfig prop;
  prop.shadowing_sigma_db = 0.0;
  prop.asymmetry_sigma_db = 0.0;
  std::vector<ScheduledBurstInterference::Burst> bursts = {
      {NodeId{2}, sim::Time::from_us(0), sim::Time::from_us(10'000'000),
       1.0}};
  Channel channel{sim, PhyConfig{}, prop,
                  std::make_unique<ScheduledBurstInterference>(bursts),
                  sim::Rng{1}};
  Radio a{channel, NodeId{1}, {0, 0}, HardwareProfile{}, PowerDbm{0.0}};
  Radio b{channel, NodeId{2}, {5, 0}, HardwareProfile{}, PowerDbm{0.0}};
  int received = 0;
  int min_lqi = 200;
  b.set_rx_handler([&](std::span<const std::uint8_t>, const RxInfo& info) {
    if (!info.fcs_ok) return;  // the MAC would drop these
    ++received;
    min_lqi = std::min(min_lqi, info.lqi);
  });
  // 5 packets during the burst: all destroyed.
  for (int i = 0; i < 5; ++i) {
    a.transmit(std::vector<std::uint8_t>(20, 1), nullptr);
    sim.run();
  }
  EXPECT_EQ(received, 0);
  // After the burst: all received, all clean.
  sim.run_until(sim::Time::from_us(10'000'001));
  for (int i = 0; i < 5; ++i) {
    a.transmit(std::vector<std::uint8_t>(20, 1), nullptr);
    sim.run();
  }
  EXPECT_EQ(received, 5);
  EXPECT_GE(min_lqi, 100);
}

}  // namespace
}  // namespace fourbit::phy
