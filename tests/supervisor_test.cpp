// Tests of the campaign supervision layer: the failure taxonomy
// (assert / exception / timeout / invariant), per-trial isolation across
// thread counts, retry policies, the crash-safe journal (including torn
// records after a SIGKILL-style truncation), the invariant auditor, and
// the hardened bench CLI helpers.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "runner/campaign.hpp"
#include "runner/describe.hpp"
#include "runner/journal.hpp"
#include "runner/supervisor.hpp"
#include "sim/invariant.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "topology/topology.hpp"

namespace fourbit::runner {
namespace {

/// A small, fast trial: a truncated Mirage testbed for a short run.
ExperimentConfig small_trial(std::uint64_t seed) {
  sim::Rng rng{seed};
  ExperimentConfig cfg;
  cfg.testbed = topology::mirage(rng);
  cfg.testbed.topology.nodes.resize(16);
  cfg.duration = sim::Duration::from_minutes(2.0);
  cfg.seed = seed;
  return cfg;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.mean_depth, b.mean_depth);
  EXPECT_EQ(a.per_node_delivery, b.per_node_delivery);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.data_tx, b.data_tx);
  EXPECT_EQ(a.beacon_tx, b.beacon_tx);
  EXPECT_EQ(a.radio_frames, b.radio_frames);
  EXPECT_EQ(a.retx_drops, b.retx_drops);
  EXPECT_EQ(a.queue_drops, b.queue_drops);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.parent_changes, b.parent_changes);
  EXPECT_EQ(a.final_tree.depths, b.final_tree.depths);
  EXPECT_EQ(a.final_tree.mean_depth, b.final_tree.mean_depth);
  EXPECT_EQ(a.node_crashes, b.node_crashes);
  EXPECT_EQ(a.mean_time_to_reroute_s, b.mean_time_to_reroute_s);
  EXPECT_EQ(a.delivery_during_outage, b.delivery_during_outage);
}

Campaign::Options campaign_threads(std::size_t threads) {
  Campaign::Options options;
  options.threads = threads;
  return options;
}

SupervisorOptions supervisor_threads(std::size_t threads) {
  SupervisorOptions options;
  options.threads = threads;
  return options;
}

std::string temp_path(const char* name) {
  return (std::filesystem::path{::testing::TempDir()} /
          (std::string{"fourbit_"} + name + "_" +
           std::to_string(::getpid()) + ".journal"))
      .string();
}

// ---- assert handler ---------------------------------------------------

TEST(AssertHandlerTest, ThrowingHandlerConvertsAssertToException) {
  const ScopedAssertHandler guard{throwing_assert_handler};
  EXPECT_THROW(FOURBIT_ASSERT(false, "injected failure"), AssertionError);
}

TEST(AssertHandlerTest, MessageCarriesExpressionFileAndDetail) {
  const ScopedAssertHandler guard{throwing_assert_handler};
  try {
    FOURBIT_ASSERT(1 == 2, "the detail");
    FAIL() << "assert did not throw";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("supervisor_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("the detail"), std::string::npos);
  }
}

TEST(AssertHandlerTest, ScopedHandlerRestoresPreviousOnExit) {
  {
    const ScopedAssertHandler guard{throwing_assert_handler};
  }
  // Outside the scope the default (abort) handler is back.
  EXPECT_DEATH(FOURBIT_ASSERT(false, "aborts again"), "fourbit assertion");
}

TEST(AssertHandlerTest, DefaultHandlerAborts) {
  EXPECT_DEATH(FOURBIT_ASSERT(false, "boom"), "fourbit assertion failed");
}

// ---- simulator budget -------------------------------------------------

TEST(SimBudgetTest, EventBudgetThrowsBudgetExceeded) {
  sim::Simulator sim;
  sim::SimBudget budget;
  budget.max_events = 10;
  sim.set_budget(budget);
  std::function<void()> tick = [&] {
    sim.schedule_in(sim::Duration::from_us(1), tick);
  };
  sim.schedule_in(sim::Duration::from_us(1), tick);
  try {
    sim.run_for(sim::Duration::from_seconds(1.0));
    FAIL() << "budget did not fire";
  } catch (const sim::BudgetExceededError& e) {
    EXPECT_EQ(e.which(), sim::BudgetExceededError::Which::kEvents);
    EXPECT_LE(sim.events_executed(), 10u);
  }
}

TEST(SimBudgetTest, WallClockBudgetCancelsSpinningRun) {
  sim::Simulator sim;
  sim::SimBudget budget;
  budget.max_wall_ms = 5;
  sim.set_budget(budget);
  std::function<void()> tick = [&] {
    sim.schedule_in(sim::Duration::from_us(1), tick);
  };
  sim.schedule_in(sim::Duration::from_us(1), tick);
  // The event supply is endless; only the wall-clock watchdog can end
  // this run.
  try {
    sim.run();
    FAIL() << "budget did not fire";
  } catch (const sim::BudgetExceededError& e) {
    EXPECT_EQ(e.which(), sim::BudgetExceededError::Which::kWallClock);
  }
}

TEST(SimBudgetTest, UnlimitedBudgetRunsToCompletion) {
  sim::Simulator sim;
  int fired = 0;
  sim.schedule_in(sim::Duration::from_us(5), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

// ---- failure taxonomy through run_supervised --------------------------

TEST(SupervisorTest, ThrowingTrialBecomesExceptionFailure) {
  const auto trials = Campaign::seed_sweep(small_trial(42), 4);
  const auto baseline = Campaign::run(trials, campaign_threads(1));

  for (const std::size_t threads : {1u, 4u}) {
    SupervisorOptions options;
    options.threads = threads;
    options.run_trial = [&](const ExperimentConfig& cfg) {
      if (cfg.seed == trials[1].seed) {
        throw std::runtime_error("injected trial explosion");
      }
      return run_experiment(cfg);
    };
    const auto report = run_supervised(trials, options);

    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].kind, FailureKind::kException);
    EXPECT_EQ(report.failures[0].trial_index, 1u);
    EXPECT_EQ(report.failures[0].seed, trials[1].seed);
    EXPECT_NE(report.failures[0].what.find("injected trial explosion"),
              std::string::npos);
    EXPECT_FALSE(report.completed[1]);

    // Sibling trials are untouched and bit-identical to an
    // unsupervised campaign.
    for (const std::size_t i : {0u, 2u, 3u}) {
      ASSERT_TRUE(report.completed[i]);
      expect_identical(report.results[i], baseline[i]);
    }
  }
}

TEST(SupervisorTest, AssertingTrialBecomesAssertFailure) {
  const auto trials = Campaign::seed_sweep(small_trial(50), 3);
  SupervisorOptions options;
  options.threads = 3;
  options.run_trial = [&](const ExperimentConfig& cfg) {
    if (cfg.seed == trials[2].seed) {
      FOURBIT_ASSERT(false, "injected assertion");
    }
    return run_experiment(cfg);
  };
  const auto report = run_supervised(trials, options);

  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kAssert);
  EXPECT_EQ(report.failures[0].trial_index, 2u);
  EXPECT_NE(report.failures[0].what.find("injected assertion"),
            std::string::npos);
  EXPECT_TRUE(report.completed[0]);
  EXPECT_TRUE(report.completed[1]);
}

TEST(SupervisorTest, EventBudgetTimeoutIsClassifiedAndIsolated) {
  auto trials = Campaign::seed_sweep(small_trial(60), 3);
  // Trial 1 gets an event budget far below what a 2-minute run needs;
  // the others run unbounded.
  trials[1].budget.max_events = 500;
  const auto baseline_0 = run_experiment(trials[0]);

  SupervisorOptions options;
  options.threads = 2;
  const auto report = run_supervised(trials, options);

  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kTimeout);
  EXPECT_EQ(report.failures[0].trial_index, 1u);
  ASSERT_TRUE(report.completed[0]);
  ASSERT_TRUE(report.completed[2]);
  expect_identical(report.results[0], baseline_0);
}

TEST(SupervisorTest, CampaignWideBudgetYieldsToExplicitTrialBudget) {
  auto trials = Campaign::seed_sweep(small_trial(70), 2);
  // Trial 0 carries its own generous limit; trial 1 inherits the tiny
  // campaign-wide one and times out.
  trials[0].budget.max_events = 50'000'000;

  SupervisorOptions options;
  options.threads = 1;
  options.trial_budget.max_events = 500;
  const auto report = run_supervised(trials, options);

  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].trial_index, 1u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kTimeout);
  EXPECT_TRUE(report.completed[0]);
}

TEST(SupervisorTest, InvariantViolationIsClassified) {
  const auto trials = Campaign::seed_sweep(small_trial(80), 2);
  SupervisorOptions options;
  options.threads = 1;
  options.run_trial = [&](const ExperimentConfig& cfg) {
    if (cfg.seed == trials[0].seed) {
      throw sim::InvariantViolationError{"neighbor-table-bound",
                                         "injected violation"};
    }
    return run_experiment(cfg);
  };
  const auto report = run_supervised(trials, options);

  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].kind, FailureKind::kInvariant);
  EXPECT_NE(report.failures[0].what.find("neighbor-table-bound"),
            std::string::npos);
  EXPECT_TRUE(report.completed[1]);
}

TEST(SupervisorTest, SupervisedCleanCampaignMatchesUnsupervised) {
  const auto trials = Campaign::seed_sweep(small_trial(90), 4);
  const auto baseline = Campaign::run(trials, campaign_threads(2));
  const auto report = run_supervised(trials, supervisor_threads(4));

  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.attempts, 4u);
  EXPECT_EQ(report.retries, 0u);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    expect_identical(report.results[i], baseline[i]);
  }
}

// ---- retries ----------------------------------------------------------

TEST(SupervisorTest, RetryPolicyRetriesUntilSuccess) {
  const auto trials = Campaign::seed_sweep(small_trial(100), 3);
  std::atomic<int> flaky_attempts{0};

  SupervisorOptions options;
  options.threads = 3;
  options.retry.max_attempts = 3;
  options.retry.classify = [](const TrialFailure&) { return true; };
  options.run_trial = [&](const ExperimentConfig& cfg) {
    // Trial 1 fails twice, then succeeds on its third attempt.
    if (cfg.seed == trials[1].seed &&
        flaky_attempts.fetch_add(1) < 2) {
      throw std::runtime_error("transient failure");
    }
    return run_experiment(cfg);
  };
  const auto report = run_supervised(trials, options);

  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.retries, 2u);
  EXPECT_EQ(report.attempts, 5u);  // 3 trials + 2 retries
}

TEST(SupervisorTest, RetryExhaustionKeepsLastFailure) {
  const auto trials = Campaign::seed_sweep(small_trial(110), 1);
  SupervisorOptions options;
  options.threads = 1;
  options.retry.max_attempts = 3;
  options.retry.classify = [](const TrialFailure&) { return true; };
  options.run_trial = [](const ExperimentConfig&) -> ExperimentResult {
    throw std::runtime_error("always fails");
  };
  const auto report = run_supervised(trials, options);

  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].attempt, 3u);
  EXPECT_EQ(report.attempts, 3u);
  EXPECT_EQ(report.retries, 2u);
}

TEST(SupervisorTest, DefaultPolicyDoesNotRetryDeterministicFailures) {
  const auto trials = Campaign::seed_sweep(small_trial(120), 1);
  SupervisorOptions options;
  options.threads = 1;
  options.retry.max_attempts = 5;  // default classify: timeouts only
  std::atomic<int> calls{0};
  options.run_trial = [&](const ExperimentConfig&) -> ExperimentResult {
    ++calls;
    throw std::runtime_error("deterministic bug");
  };
  const auto report = run_supervised(trials, options);

  EXPECT_EQ(calls.load(), 1);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.retries, 0u);
}

// ---- failure accounting in summarize / describe ------------------------

TEST(SupervisorTest, SummarizeCountsFailuresAndAggregatesCompletedOnly) {
  const auto trials = Campaign::seed_sweep(small_trial(130), 3);
  SupervisorOptions options;
  options.threads = 1;
  options.run_trial = [&](const ExperimentConfig& cfg) {
    if (cfg.seed == trials[1].seed) {
      throw std::runtime_error("dead trial");
    }
    return run_experiment(cfg);
  };
  const auto report = run_supervised(trials, options);

  const auto summary = summarize(report);
  EXPECT_EQ(summary.trials, 3u);
  EXPECT_EQ(summary.completed, 2u);
  EXPECT_EQ(summary.attempts, 3u);
  EXPECT_EQ(summary.failures_total(), 1u);
  EXPECT_EQ(summary.failures_by_kind[static_cast<std::size_t>(
                FailureKind::kException)],
            1u);
  EXPECT_EQ(summary.cost.n, 2u);  // the dead trial contributes nothing

  const auto text = describe(report);
  EXPECT_NE(text.find("2 of 3 completed"), std::string::npos);
  EXPECT_NE(text.find("1 exception"), std::string::npos);
  EXPECT_NE(text.find("dead trial"), std::string::npos);
}

TEST(SupervisorTest, PlainSummarizeReportsCleanAccounting) {
  ExperimentResult r;
  r.cost = 2.0;
  const auto summary = summarize(std::vector<ExperimentResult>{r, r});
  EXPECT_EQ(summary.trials, 2u);
  EXPECT_EQ(summary.completed, 2u);
  EXPECT_EQ(summary.attempts, 2u);
  EXPECT_EQ(summary.failures_total(), 0u);
}

// ---- journal ----------------------------------------------------------

TEST(JournalTest, RoundTripsResultsBitExactly) {
  const std::string path = temp_path("roundtrip");
  std::filesystem::remove(path);

  const auto trials = Campaign::seed_sweep(small_trial(140), 2);
  const auto baseline = Campaign::run(trials, campaign_threads(1));
  {
    auto journal = TrialJournal::open_append(path);
    journal.append(0, trials[0].seed, baseline[0]);
    journal.append(1, trials[1].seed, baseline[1]);
  }

  const auto loaded = TrialJournal::load(path);
  EXPECT_FALSE(loaded.torn);
  ASSERT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ(loaded.entries[0].trial_index, 0u);
  EXPECT_EQ(loaded.entries[1].seed, trials[1].seed);
  expect_identical(loaded.entries[0].result, baseline[0]);
  expect_identical(loaded.entries[1].result, baseline[1]);
  std::filesystem::remove(path);
}

TEST(JournalTest, MissingFileIsEmptyJournal) {
  const auto loaded = TrialJournal::load(temp_path("never_written"));
  EXPECT_TRUE(loaded.entries.empty());
  EXPECT_FALSE(loaded.torn);
}

TEST(JournalTest, TornLastRecordIsDetectedAndDropped) {
  const std::string path = temp_path("torn");
  std::filesystem::remove(path);

  const auto trials = Campaign::seed_sweep(small_trial(150), 2);
  const auto baseline = Campaign::run(trials, campaign_threads(1));
  {
    auto journal = TrialJournal::open_append(path);
    journal.append(0, trials[0].seed, baseline[0]);
    journal.append(1, trials[1].seed, baseline[1]);
  }

  // A SIGKILL mid-write leaves a truncated tail.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 7);

  const auto loaded = TrialJournal::load(path);
  EXPECT_TRUE(loaded.torn);
  ASSERT_EQ(loaded.entries.size(), 1u);
  expect_identical(loaded.entries[0].result, baseline[0]);
  std::filesystem::remove(path);
}

TEST(JournalTest, CorruptPayloadFailsCrcAndStopsReplay) {
  const std::string path = temp_path("corrupt");
  std::filesystem::remove(path);

  const auto trials = Campaign::seed_sweep(small_trial(160), 2);
  const auto baseline = Campaign::run(trials, campaign_threads(1));
  {
    auto journal = TrialJournal::open_append(path);
    journal.append(0, trials[0].seed, baseline[0]);
    journal.append(1, trials[1].seed, baseline[1]);
  }

  // Flip one payload byte inside the first record.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 20, SEEK_SET), 0);
    const int byte = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, 20, SEEK_SET), 0);
    std::fputc(byte ^ 0xFF, f);
    std::fclose(f);
  }

  const auto loaded = TrialJournal::load(path);
  EXPECT_TRUE(loaded.torn);
  EXPECT_TRUE(loaded.entries.empty());
  std::filesystem::remove(path);
}

TEST(SupervisorTest, JournaledCampaignResumesBitIdentical) {
  const std::string path = temp_path("resume");
  std::filesystem::remove(path);

  const auto trials = Campaign::seed_sweep(small_trial(170), 4);
  const auto baseline = Campaign::run(trials, campaign_threads(1));

  // First launch: trial 3 dies, the other three are journaled.
  {
    SupervisorOptions options;
    options.threads = 2;
    options.journal_path = path;
    options.run_trial = [&](const ExperimentConfig& cfg) {
      if (cfg.seed == trials[3].seed) {
        throw std::runtime_error("process about to die");
      }
      return run_experiment(cfg);
    };
    const auto report = run_supervised(trials, options);
    EXPECT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.replayed, 0u);
  }

  // Relaunch from the 3-record journal: only the missing trial runs;
  // everything is bit-identical to an uninterrupted campaign, at both
  // thread counts.
  const std::string snapshot = path + ".snap";
  std::filesystem::copy_file(path, snapshot);
  for (const std::size_t threads : {1u, 4u}) {
    std::filesystem::copy_file(
        snapshot, path, std::filesystem::copy_options::overwrite_existing);
    std::atomic<int> executed{0};
    SupervisorOptions options;
    options.threads = threads;
    options.journal_path = path;
    options.run_trial = [&](const ExperimentConfig& cfg) {
      ++executed;
      EXPECT_EQ(cfg.seed, trials[3].seed)
          << "a journaled trial was re-run";
      return run_experiment(cfg);
    };
    const auto report = run_supervised(trials, options);

    EXPECT_TRUE(report.all_completed());
    EXPECT_EQ(report.replayed, 3u);
    EXPECT_EQ(executed.load(), 1);
    for (std::size_t i = 0; i < trials.size(); ++i) {
      ASSERT_TRUE(report.completed[i]);
      expect_identical(report.results[i], baseline[i]);
    }
  }
  std::filesystem::remove(path);
  std::filesystem::remove(snapshot);
}

TEST(SupervisorTest, ResumeAfterTornRecordRerunsOnlyTornTrial) {
  const std::string path = temp_path("torn_resume");
  std::filesystem::remove(path);

  const auto trials = Campaign::seed_sweep(small_trial(180), 3);
  const auto baseline = Campaign::run(trials, campaign_threads(1));
  {
    SupervisorOptions options;
    options.threads = 1;
    options.journal_path = path;
    const auto report = run_supervised(trials, options);
    ASSERT_TRUE(report.all_completed());
  }

  // Tear the last record (SIGKILL mid-append).
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 5);

  std::atomic<int> executed{0};
  SupervisorOptions options;
  options.threads = 2;
  options.journal_path = path;
  options.run_trial = [&](const ExperimentConfig& cfg) {
    ++executed;
    return run_experiment(cfg);
  };
  const auto report = run_supervised(trials, options);

  EXPECT_TRUE(report.journal_torn);
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.replayed, 2u);
  EXPECT_EQ(executed.load(), 1);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    expect_identical(report.results[i], baseline[i]);
  }
  std::filesystem::remove(path);
}

TEST(SupervisorTest, JournalRecordsWithForeignSeedsAreIgnored) {
  const std::string path = temp_path("foreign");
  std::filesystem::remove(path);

  const auto trials = Campaign::seed_sweep(small_trial(190), 2);
  const auto baseline = Campaign::run(trials, campaign_threads(1));
  {
    // A journal written by a different campaign: same indices, other
    // seeds. Trusting it would silently splice foreign results in.
    auto journal = TrialJournal::open_append(path);
    ExperimentResult bogus;
    bogus.cost = 12345.0;
    journal.append(0, trials[0].seed + 999, bogus);
  }

  SupervisorOptions options;
  options.threads = 1;
  options.journal_path = path;
  const auto report = run_supervised(trials, options);

  EXPECT_EQ(report.replayed, 0u);
  EXPECT_TRUE(report.all_completed());
  expect_identical(report.results[0], baseline[0]);
  std::filesystem::remove(path);
}

// ---- invariant auditor -------------------------------------------------

TEST(InvariantAuditorTest, PassingChecksRunOnCadence) {
  sim::Simulator sim;
  sim::InvariantAuditor auditor{sim};
  int checked = 0;
  auditor.add("always-ok", [&]() -> std::optional<std::string> {
    ++checked;
    return std::nullopt;
  });
  auditor.start(sim::Duration::from_seconds(1.0));
  sim.run_for(sim::Duration::from_seconds(10.0));
  EXPECT_EQ(auditor.audits_run(), 10u);
  EXPECT_EQ(checked, 10);
}

TEST(InvariantAuditorTest, ViolationThrowsWithNameAndDetail) {
  sim::Simulator sim;
  sim::InvariantAuditor auditor{sim};
  auditor.add("always-ok", [] { return std::optional<std::string>{}; });
  auditor.add("broken", [] {
    return std::optional<std::string>{"state went sideways"};
  });
  auditor.start(sim::Duration::from_seconds(1.0));
  try {
    sim.run_for(sim::Duration::from_seconds(5.0));
    FAIL() << "violation did not throw";
  } catch (const sim::InvariantViolationError& e) {
    EXPECT_EQ(e.invariant(), "broken");
    EXPECT_NE(std::string{e.what()}.find("state went sideways"),
              std::string::npos);
  }
}

TEST(InvariantAuditorTest, StopCancelsFutureAudits) {
  sim::Simulator sim;
  sim::InvariantAuditor auditor{sim};
  auditor.add("always-ok", [] { return std::optional<std::string>{}; });
  auditor.start(sim::Duration::from_seconds(1.0));
  sim.run_for(sim::Duration::from_seconds(3.0));
  auditor.stop();
  sim.run_for(sim::Duration::from_seconds(10.0));
  EXPECT_EQ(auditor.audits_run(), 3u);
}

// The catalog wired by run_experiment must hold on a healthy run — in
// every profile, with faults injected, and with the table squeezed.
TEST(InvariantAuditorTest, HealthyTrialsPassTheFullCatalog) {
  for (const auto profile :
       {Profile::kFourBit, Profile::kMultihopLqi, Profile::kCtpUnconstrained}) {
    auto cfg = small_trial(200);
    cfg.profile = profile;
    cfg.table_capacity = 4;  // admission churn stresses the bound checks
    cfg.audit_invariants = true;
    cfg.audit_interval = sim::Duration::from_seconds(5.0);
    cfg.faults.node_crashes = 2;
    cfg.faults.crash_downtime = sim::Duration::from_seconds(20.0);
    cfg.faults.window_start = sim::Time::from_us(30'000'000);
    cfg.faults.window_end = sim::Time::from_us(90'000'000);

    SupervisorOptions options;
    options.threads = 1;
    const auto report = run_supervised({cfg}, options);
    EXPECT_TRUE(report.all_completed())
        << "profile " << static_cast<int>(profile) << ": "
        << (report.failures.empty() ? "" : report.failures[0].what);
  }
}

TEST(InvariantAuditorTest, AuditedTrialIsBitIdenticalToUnaudited) {
  // The auditor only reads state; turning it on must not perturb the
  // simulation.
  auto audited = small_trial(210);
  audited.audit_invariants = true;
  audited.audit_interval = sim::Duration::from_seconds(5.0);
  const auto a = run_experiment(audited);
  const auto b = run_experiment(small_trial(210));
  expect_identical(a, b);
}

// ---- bench CLI helpers -------------------------------------------------

TEST(CliFlagTest, ConsumeFlagStripsNameAndValue) {
  char prog[] = "bench";
  char a1[] = "30";
  char name[] = "--journal";
  char value[] = "trials.wal";
  char a2[] = "5";
  char* argv[] = {prog, a1, name, value, a2};
  int argc = 5;
  const auto got = consume_flag(argc, argv, "--journal");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "trials.wal");
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "30");
  EXPECT_STREQ(argv[2], "5");
  EXPECT_FALSE(consume_flag(argc, argv, "--journal").has_value());
}

TEST(CliFlagTest, MissingValueExitsNonzero) {
  char prog[] = "bench";
  char name[] = "--journal";
  char* argv[] = {prog, name};
  int argc = 2;
  EXPECT_EXIT((void)consume_flag(argc, argv, "--journal"),
              ::testing::ExitedWithCode(2), "expects a value");
}

TEST(CliFlagTest, ThreadsFlagRejectsJunk) {
  char prog[] = "bench";
  char flag[] = "--threads";
  char junk[] = "fast";
  char* argv[] = {prog, flag, junk};
  int argc = 3;
  EXPECT_EXIT((void)consume_threads_flag(argc, argv),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(CliFlagTest, ThreadsFlagRejectsNegativeAndTrailingJunk) {
  {
    char prog[] = "bench";
    char flag[] = "--threads";
    char neg[] = "-4";
    char* argv[] = {prog, flag, neg};
    int argc = 3;
    EXPECT_EXIT((void)consume_threads_flag(argc, argv),
                ::testing::ExitedWithCode(2), "non-negative integer");
  }
  {
    char prog[] = "bench";
    char flag[] = "--threads";
    char mixed[] = "4x";
    char* argv[] = {prog, flag, mixed};
    int argc = 3;
    EXPECT_EXIT((void)consume_threads_flag(argc, argv),
                ::testing::ExitedWithCode(2), "non-negative integer");
  }
}

TEST(CliFlagTest, BareTrailingThreadsFlagExitsNonzero) {
  char prog[] = "bench";
  char a1[] = "30";
  char flag[] = "--threads";
  char* argv[] = {prog, a1, flag};
  int argc = 3;
  EXPECT_EXIT((void)consume_threads_flag(argc, argv),
              ::testing::ExitedWithCode(2), "expects a value");
}

TEST(CliFlagTest, CampaignCliConsumesAllSupervisorFlags) {
  char prog[] = "bench";
  char a1[] = "25";
  char t[] = "--threads";
  char tv[] = "8";
  char j[] = "--journal";
  char jv[] = "w.wal";
  char m[] = "--max-trial-ms";
  char mv[] = "60000";
  char r[] = "--retries";
  char rv[] = "2";
  char a2[] = "3";
  char* argv[] = {prog, a1, t, tv, j, jv, m, mv, r, rv, a2};
  int argc = 11;
  const auto cli = consume_campaign_cli(argc, argv);
  EXPECT_EQ(cli.threads, 8u);
  EXPECT_EQ(cli.journal, "w.wal");
  EXPECT_EQ(cli.max_trial_ms, 60000u);
  EXPECT_EQ(cli.retries, 2u);
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "25");
  EXPECT_STREQ(argv[2], "3");

  const auto options = cli.supervisor_options();
  EXPECT_EQ(options.threads, 8u);
  EXPECT_EQ(options.journal_path, "w.wal");
  EXPECT_EQ(options.trial_budget.max_wall_ms, 60000);
  EXPECT_EQ(options.retry.max_attempts, 3u);
}

}  // namespace
}  // namespace fourbit::runner
