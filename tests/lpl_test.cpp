// Tests of the low-power-listening MAC: wake scheduling, packet trains,
// duplicate suppression, ack semantics, and full-stack operation.
#include <gtest/gtest.h>

#include <memory>

#include "mac/csma.hpp"
#include "mac/lpl.hpp"
#include "phy/channel.hpp"
#include "phy/interference.hpp"
#include "runner/experiment.hpp"
#include "sim/simulator.hpp"
#include "topology/topology.hpp"

namespace fourbit::mac {
namespace {

class LplFixture : public ::testing::Test {
 protected:
  LplFixture() {
    phy::PropagationConfig prop;
    prop.shadowing_sigma_db = 0.0;
    prop.asymmetry_sigma_db = 0.0;
    channel_ = std::make_unique<phy::Channel>(
        sim_, phy::PhyConfig{}, prop,
        std::make_unique<phy::NullInterference>(), sim::Rng{5});
  }

  struct Node {
    std::unique_ptr<phy::Radio> radio;
    std::unique_ptr<CsmaMac> csma;
    std::unique_ptr<LplMac> lpl;
  };

  Node make_node(std::uint16_t id, double x, LplConfig cfg = {}) {
    Node n;
    n.radio = std::make_unique<phy::Radio>(*channel_, NodeId{id},
                                           Position{x, 0.0},
                                           phy::HardwareProfile{},
                                           PowerDbm{0.0});
    n.csma = std::make_unique<CsmaMac>(sim_, *n.radio, CsmaConfig{},
                                       sim::Rng{id});
    n.lpl = std::make_unique<LplMac>(sim_, *n.csma, cfg,
                                     sim::Rng{id + 100u});
    return n;
  }

  sim::Simulator sim_;
  std::unique_ptr<phy::Channel> channel_;
};

TEST_F(LplFixture, RadioSleepsBetweenSamples) {
  Node a = make_node(1, 0.0);
  // Sample the listening flag over several wake intervals: the duty
  // cycle should be near sample/interval (~2.3%), far below always-on.
  int awake = 0;
  int samples = 0;
  for (int i = 0; i < 4000; ++i) {
    sim_.run_for(sim::Duration::from_ms(1));
    ++samples;
    if (a.lpl->radio_listening()) ++awake;
  }
  const double duty = static_cast<double>(awake) / samples;
  EXPECT_LT(duty, 0.10);
  EXPECT_GT(duty, 0.005);
}

TEST_F(LplFixture, UnicastDeliversAcrossSleepSchedule) {
  Node a = make_node(1, 0.0);
  Node b = make_node(2, 5.0);
  int delivered = 0;
  b.lpl->set_rx_handler([&](NodeId src, std::uint8_t,
                            std::span<const std::uint8_t> payload,
                            const phy::RxInfo&) {
    ++delivered;
    EXPECT_EQ(src, NodeId{1});
    EXPECT_EQ(payload.size(), 12u);
  });
  int acked = 0;
  for (int i = 0; i < 10; ++i) {
    bool done = false;
    a.lpl->send(NodeId{2}, std::vector<std::uint8_t>(12, 0x7),
                [&](const TxResult& r) {
                  done = true;
                  if (r.acked) ++acked;
                });
    sim_.run_for(sim::Duration::from_seconds(2.0));
    EXPECT_TRUE(done);
  }
  EXPECT_EQ(delivered, 10) << "every logical frame exactly once";
  EXPECT_EQ(acked, 10);
  // The trains cost real copies: strictly more than one per frame.
  EXPECT_GT(a.lpl->copies_transmitted(), 10u);
}

TEST_F(LplFixture, EarlyAckShortensTrain) {
  // With the receiver forced awake, the first copy is acked and the
  // train stops immediately.
  Node a = make_node(1, 0.0);
  Node b = make_node(2, 5.0);
  b.lpl->set_rx_handler([](NodeId, std::uint8_t, std::span<const std::uint8_t>,
                           const phy::RxInfo&) {});
  // Keep b awake by bombarding it with traffic first... simpler: send
  // during b's sample window by retrying until one lands fast.
  std::uint64_t shortest = ~0ull;
  for (int i = 0; i < 20; ++i) {
    const auto before = a.lpl->copies_transmitted();
    bool done = false;
    a.lpl->send(NodeId{2}, std::vector<std::uint8_t>(8, 1),
                [&](const TxResult&) { done = true; });
    sim_.run_for(sim::Duration::from_seconds(2.0));
    ASSERT_TRUE(done);
    shortest = std::min(shortest, a.lpl->copies_transmitted() - before);
  }
  // At least one send should have caught the receiver awake quickly.
  EXPECT_LE(shortest, 5u);
}

TEST_F(LplFixture, BroadcastTrainReachesAllSleepers) {
  LplConfig cfg;
  Node a = make_node(1, 0.0, cfg);
  Node b = make_node(2, 5.0, cfg);
  Node c = make_node(3, -5.0, cfg);
  int b_got = 0;
  int c_got = 0;
  b.lpl->set_rx_handler([&](NodeId, std::uint8_t, std::span<const std::uint8_t>,
                            const phy::RxInfo&) { ++b_got; });
  c.lpl->set_rx_handler([&](NodeId, std::uint8_t, std::span<const std::uint8_t>,
                            const phy::RxInfo&) { ++c_got; });
  bool done = false;
  a.lpl->send(kBroadcastId, std::vector<std::uint8_t>(10, 2),
              [&](const TxResult& r) {
                done = true;
                EXPECT_FALSE(r.acked);
              });
  sim_.run_for(sim::Duration::from_seconds(3.0));
  EXPECT_TRUE(done);
  // Both sleepers woke at some point during the ~614 ms train and heard
  // exactly one (deduplicated) copy.
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 1);
  EXPECT_GT(a.lpl->duplicates_suppressed() + b.lpl->duplicates_suppressed() +
                c.lpl->duplicates_suppressed(),
            0u)
      << "sleepers overlapping the train see multiple copies";
}

TEST_F(LplFixture, UnicastToAbsentNodeFailsAfterFullTrain) {
  Node a = make_node(1, 0.0);
  bool done = false;
  bool acked = true;
  const auto start = sim_.now();
  a.lpl->send(NodeId{99}, std::vector<std::uint8_t>(8, 1),
              [&](const TxResult& r) {
                done = true;
                acked = r.acked;
              });
  sim_.run_for(sim::Duration::from_seconds(3.0));
  EXPECT_TRUE(done);
  EXPECT_FALSE(acked);
  // The train must have lasted roughly a full wake interval.
  (void)start;
  EXPECT_GT(a.lpl->copies_transmitted(), 50u);
}

TEST_F(LplFixture, QueuedSendsServeInOrder) {
  Node a = make_node(1, 0.0);
  Node b = make_node(2, 5.0);
  std::vector<int> order;
  b.lpl->set_rx_handler([&](NodeId, std::uint8_t,
                            std::span<const std::uint8_t> payload,
                            const phy::RxInfo&) {
    order.push_back(payload[0]);
  });
  for (int i = 0; i < 3; ++i) {
    a.lpl->send(NodeId{2}, std::vector<std::uint8_t>(1, i), nullptr);
  }
  sim_.run_for(sim::Duration::from_seconds(5.0));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(LplStackTest, CollectionRunsOverLpl) {
  // Full protocol stack over duty-cycled radios: a small clean line.
  topology::Testbed tb;
  tb.topology = topology::line(3, 25.0);
  tb.environment.propagation.shadowing_sigma_db = 0.0;
  tb.environment.propagation.asymmetry_sigma_db = 0.0;
  tb.environment.hardware.tx_offset_sigma_db = 0.0;
  tb.environment.hardware.noise_figure_sigma_db = 0.0;
  tb.environment.burst_interference = false;

  runner::ExperimentConfig cfg;
  cfg.testbed = tb;
  cfg.profile = runner::Profile::kFourBit;
  cfg.duration = sim::Duration::from_minutes(10.0);
  cfg.traffic.period = sim::Duration::from_seconds(10.0);
  cfg.boot_stagger = sim::Duration::from_seconds(5.0);
  cfg.lpl_wake_interval = sim::Duration::from_ms(512);
  cfg.seed = 3;
  const auto r = runner::run_experiment(cfg);

  EXPECT_GT(r.delivery_ratio, 0.95);
  // Under LPL, "cost" counts logical transmissions at the forwarding
  // layer, not radio copies — it stays comparable to the always-on run.
  EXPECT_LT(r.cost, 4.0);
  EXPECT_EQ(r.final_tree.routed, 2u);
}

}  // namespace
}  // namespace fourbit::mac
