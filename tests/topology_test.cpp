// Tests of topology generators and the testbed presets.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/assert.hpp"
#include "topology/topology.hpp"

namespace fourbit::topology {
namespace {

TEST(TopologyTest, LineGeometry) {
  const auto t = line(5, 10.0);
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t.root, NodeId{0});
  EXPECT_DOUBLE_EQ(t.nodes[0].position.x, 0.0);
  EXPECT_DOUBLE_EQ(t.nodes[4].position.x, 40.0);
  EXPECT_DOUBLE_EQ(t.nodes[2].position.y, 0.0);
}

TEST(TopologyTest, GridDimensionsAndJitter) {
  sim::Rng rng{1};
  const auto t = grid(4, 5, 8.0, 1.0, rng);
  ASSERT_EQ(t.size(), 20u);
  // Every node within jitter of its lattice point.
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      const auto& p = t.nodes[r * 5 + c].position;
      EXPECT_NEAR(p.x, static_cast<double>(c) * 8.0, 1.0 + 1e-9);
      EXPECT_NEAR(p.y, static_cast<double>(r) * 8.0, 1.0 + 1e-9);
    }
  }
}

TEST(TopologyTest, GridIdsUniqueAndContiguous) {
  sim::Rng rng{1};
  const auto t = grid(3, 3, 5.0, 0.5, rng);
  std::unordered_set<NodeId> ids;
  for (const auto& n : t.nodes) ids.insert(n.id);
  EXPECT_EQ(ids.size(), 9u);
  for (std::uint16_t i = 0; i < 9; ++i) {
    EXPECT_TRUE(ids.contains(NodeId{i}));
  }
}

TEST(TopologyTest, RandomUniformPlacement) {
  sim::Rng rng{7};
  const auto t = random_uniform(500, 1000.0, 800.0, rng);
  ASSERT_EQ(t.size(), 500u);
  EXPECT_EQ(t.root, NodeId{0});
  // Root pinned to the center; everyone inside the rectangle.
  EXPECT_DOUBLE_EQ(t.nodes[0].position.x, 500.0);
  EXPECT_DOUBLE_EQ(t.nodes[0].position.y, 400.0);
  std::unordered_set<NodeId> ids;
  for (const auto& n : t.nodes) {
    ids.insert(n.id);
    EXPECT_GE(n.position.x, 0.0);
    EXPECT_LE(n.position.x, 1000.0);
    EXPECT_GE(n.position.y, 0.0);
    EXPECT_LE(n.position.y, 800.0);
  }
  EXPECT_EQ(ids.size(), 500u);
}

TEST(TopologyTest, GeneratorsRejectNodeIdOverflow) {
  // The bug this pins down: generators cast size_t loop indices to
  // uint16_t NodeIds, so a population past 65534 silently wrapped ids
  // (and collided with the 0xFFFE/0xFFFF sentinels) instead of failing.
  ScopedAssertHandler guard{throwing_assert_handler};
  EXPECT_THROW((void)line(kMaxNodeCount + 1, 1.0), AssertionError);
  sim::Rng rng{1};
  EXPECT_THROW((void)grid(256, 257, 1.0, 0.0, rng), AssertionError);
  EXPECT_THROW((void)random_uniform(kMaxNodeCount + 1, 10.0, 10.0, rng),
               AssertionError);
  // The ceiling itself is fine (ids 0..65533).
  EXPECT_EQ(line(kMaxNodeCount, 1.0).size(), kMaxNodeCount);
}

TEST(TopologyTest, MiragePreset) {
  sim::Rng rng{42};
  const auto tb = mirage(rng);
  EXPECT_EQ(tb.topology.size(), 85u);  // the paper's node count
  EXPECT_EQ(tb.topology.root, NodeId{0});
  // Root is at the corner (paper: bottom-left).
  EXPECT_LT(tb.topology.nodes[0].position.x, 5.0);
  EXPECT_LT(tb.topology.nodes[0].position.y, 5.0);
  EXPECT_TRUE(tb.environment.burst_interference);
}

TEST(TopologyTest, TutornetPreset) {
  sim::Rng rng{42};
  const auto tb = tutornet(rng);
  EXPECT_EQ(tb.topology.size(), 94u);  // the paper's node count
  // Harsher than Mirage in shadowing and hardware spread.
  sim::Rng rng2{42};
  const auto mi = mirage(rng2);
  EXPECT_GT(tb.environment.propagation.shadowing_sigma_db,
            mi.environment.propagation.shadowing_sigma_db);
  EXPECT_GT(tb.environment.hardware.tx_offset_sigma_db,
            mi.environment.hardware.tx_offset_sigma_db);
}

TEST(TopologyTest, PresetsDeterministicPerSeed) {
  sim::Rng a{7};
  sim::Rng b{7};
  const auto ta = mirage(a);
  const auto tb = mirage(b);
  ASSERT_EQ(ta.topology.size(), tb.topology.size());
  for (std::size_t i = 0; i < ta.topology.size(); ++i) {
    EXPECT_EQ(ta.topology.nodes[i].position, tb.topology.nodes[i].position);
  }
  sim::Rng c{8};
  const auto tc = mirage(c);
  bool any_differ = false;
  for (std::size_t i = 0; i < ta.topology.size(); ++i) {
    if (!(ta.topology.nodes[i].position == tc.topology.nodes[i].position)) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(TopologyTest, PresetIdsMatchIndices) {
  sim::Rng rng{3};
  const auto tb = tutornet(rng);
  for (std::size_t i = 0; i < tb.topology.size(); ++i) {
    EXPECT_EQ(tb.topology.nodes[i].id,
              NodeId{static_cast<std::uint16_t>(i)});
  }
}

}  // namespace
}  // namespace fourbit::topology
