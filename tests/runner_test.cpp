// Tests of the runner utilities (describe, CSV) and remaining protocol
// behaviours: fixed-interval beaconing, snooped route state, and the
// MAC's deferred-ack path.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "mac/csma.hpp"
#include "net/routing_engine.hpp"
#include "phy/channel.hpp"
#include "phy/interference.hpp"
#include "runner/describe.hpp"
#include "runner/experiment.hpp"
#include "sim/simulator.hpp"
#include "stats/csv.hpp"
#include "topology/topology.hpp"

namespace fourbit {
namespace {

// ---- describe -----------------------------------------------------------

TEST(DescribeTest, ConfigMentionsKeyParameters) {
  sim::Rng rng{1};
  runner::ExperimentConfig cfg;
  cfg.testbed = topology::mirage(rng);
  cfg.profile = runner::Profile::kMultihopLqi;
  cfg.tx_power = PowerDbm{-10.0};
  const std::string d = runner::describe(cfg);
  EXPECT_NE(d.find("MultiHopLQI"), std::string::npos);
  EXPECT_NE(d.find("85 nodes"), std::string::npos);
  EXPECT_NE(d.find("-10.0 dBm"), std::string::npos);
  EXPECT_NE(d.find("bursts"), std::string::npos);
}

TEST(DescribeTest, ResultMentionsMetrics) {
  runner::ExperimentResult r;
  r.cost = 2.5;
  r.delivery_ratio = 0.999;
  r.generated = 1000;
  r.delivered = 999;
  const std::string d = runner::describe(r);
  EXPECT_NE(d.find("2.50"), std::string::npos);
  EXPECT_NE(d.find("99.90%"), std::string::npos);
}

// ---- CSV -----------------------------------------------------------------

TEST(CsvTest, WritesHeaderAndRows) {
  const std::string path = "/tmp/fourbit_csv_test.csv";
  {
    stats::CsvWriter csv{path, {"name", "value"}};
    ASSERT_TRUE(csv.ok());
    csv.row({"alpha", "1"});
    csv.row_values("beta", 2.5);
  }
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "name,value\nalpha,1\nbeta,2.5\n");
  std::remove(path.c_str());
}

TEST(CsvTest, QuotesSpecialCharacters) {
  const std::string path = "/tmp/fourbit_csv_quote_test.csv";
  {
    stats::CsvWriter csv{path, {"a"}};
    csv.row({"has,comma"});
    csv.row({"has\"quote"});
  }
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a\n\"has,comma\"\n\"has\"\"quote\"\n");
  std::remove(path.c_str());
}

// ---- fixed-interval beaconing (MultiHopLQI mode) ---------------------------

TEST(FixedBeaconTest, BeaconsAtConstantRate) {
  sim::Simulator sim;

  class NullEstimator final : public link::LinkEstimator {
   public:
    std::vector<std::uint8_t> wrap_beacon(
        std::span<const std::uint8_t> p) override {
      return {p.begin(), p.end()};
    }
    std::optional<std::vector<std::uint8_t>> unwrap_beacon(
        NodeId, std::span<const std::uint8_t> b,
        const link::PacketPhyInfo&) override {
      return std::vector<std::uint8_t>{b.begin(), b.end()};
    }
    void on_unicast_result(NodeId, bool) override {}
    bool pin(NodeId) override { return false; }
    void unpin(NodeId) override {}
    void clear_pins() override {}
    std::optional<double> etx(NodeId) const override { return std::nullopt; }
    std::vector<NodeId> neighbors() const override { return {}; }
    bool remove(NodeId) override { return true; }
    void set_compare_provider(link::CompareProvider*) override {}
  } estimator;

  net::CollectionConfig cfg;
  cfg.beacon_timing = net::BeaconTiming::kFixed;
  cfg.fixed_beacon_interval = sim::Duration::from_seconds(10.0);
  net::RoutingEngine routing{sim,  NodeId{1}, false,
                             estimator, cfg, sim::Rng{4}};
  int beacons = 0;
  routing.set_beacon_sender([&](std::vector<std::uint8_t>) { ++beacons; });
  routing.start();
  sim.run_for(sim::Duration::from_seconds(100.0));
  // ~10 beacons in 100 s at a 10 s interval (+-10% jitter).
  EXPECT_GE(beacons, 8);
  EXPECT_LE(beacons, 12);
}

// ---- snooped route state -----------------------------------------------------

TEST(SnoopRouteTest, OverheardCostEnablesRoute) {
  sim::Simulator sim;
  class MapEstimator final : public link::LinkEstimator {
   public:
    std::vector<std::uint8_t> wrap_beacon(
        std::span<const std::uint8_t> p) override {
      return {p.begin(), p.end()};
    }
    std::optional<std::vector<std::uint8_t>> unwrap_beacon(
        NodeId, std::span<const std::uint8_t> b,
        const link::PacketPhyInfo&) override {
      return std::vector<std::uint8_t>{b.begin(), b.end()};
    }
    void on_unicast_result(NodeId, bool) override {}
    bool pin(NodeId) override { return true; }
    void unpin(NodeId) override {}
    void clear_pins() override {}
    std::optional<double> etx(NodeId n) const override {
      if (n == NodeId{7}) return 1.2;
      return std::nullopt;
    }
    std::vector<NodeId> neighbors() const override { return {NodeId{7}}; }
    bool remove(NodeId) override { return true; }
    void set_compare_provider(link::CompareProvider*) override {}
  } estimator;

  net::RoutingEngine routing{sim,       NodeId{1}, false,
                             estimator, net::CollectionConfig{}, sim::Rng{5}};
  routing.set_beacon_sender([](std::vector<std::uint8_t>) {});
  routing.start();
  EXPECT_FALSE(routing.has_route());
  // Node 7 is in the estimator table; we never heard its beacon, but we
  // snooped a data frame advertising cost 2.0.
  routing.on_snooped_cost(NodeId{7}, 2.0);
  EXPECT_TRUE(routing.has_route());
  EXPECT_EQ(routing.parent(), NodeId{7});
  EXPECT_NEAR(routing.path_etx(), 3.2, 1e-9);
}

// ---- deferred ack (receiver busy at turnaround) --------------------------------

TEST(DeferredAckTest, AckRetriesAfterOwnTransmission) {
  sim::Simulator sim;
  phy::PropagationConfig prop;
  prop.shadowing_sigma_db = 0.0;
  prop.asymmetry_sigma_db = 0.0;
  phy::Channel channel{sim, phy::PhyConfig{}, prop,
                       std::make_unique<phy::NullInterference>(),
                       sim::Rng{6}};
  phy::Radio ra{channel, NodeId{1}, {0, 0}, phy::HardwareProfile{},
                PowerDbm{0.0}};
  phy::Radio rb{channel, NodeId{2}, {5, 0}, phy::HardwareProfile{},
                PowerDbm{0.0}};
  mac::CsmaMac ma{sim, ra, mac::CsmaConfig{}, sim::Rng{30}};
  mac::CsmaMac mb{sim, rb, mac::CsmaConfig{}, sim::Rng{31}};
  mb.set_rx_handler([](NodeId, std::uint8_t, std::span<const std::uint8_t>,
                       const phy::RxInfo&) {});

  // Force b's radio busy right when the ack turnaround would fire: start
  // a long raw transmission just after a's frame arrives. The ack must
  // still go out (retry), and a must see acked=true.
  bool acked = false;
  ma.send(NodeId{2}, std::vector<std::uint8_t>(10, 1),
          [&](const mac::TxResult& r) { acked = r.acked; });
  // a's frame (10+6+2 bytes payload+header+fcs, +6 PHY = 24 B) lands at
  // ~768 us; occupy b from ~800 us for ~200 us (a short blip).
  sim.schedule_at(sim::Time::from_us(800), [&] {
    if (!rb.transmitting()) {
      rb.transmit(std::vector<std::uint8_t>(1, 9), nullptr);
    }
  });
  sim.run();
  EXPECT_TRUE(acked) << "deferred ack should still arrive within the window";
}

// ---- boot staggering ------------------------------------------------------------

TEST(BootStaggerTest, NodesBootAcrossTheWindow) {
  sim::Simulator sim;
  stats::Metrics metrics;
  sim::Rng rng{9};
  auto tb = topology::mirage(rng);
  tb.topology.nodes.resize(20);
  runner::Network::Options options;
  options.seed = 9;
  runner::Network net{sim, tb, std::move(options), &metrics};
  net.start(sim::Duration::from_seconds(30.0), app::TrafficConfig{});
  // Nothing has booted at t=0.
  EXPECT_EQ(net.node(1).routing().beacons_sent(), 0u);
  sim.run_for(sim::Duration::from_seconds(35.0));
  // After the stagger window everyone beacons.
  std::size_t booted = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.node(i).routing().beacons_sent() > 0) ++booted;
  }
  EXPECT_EQ(booted, net.size());
}

}  // namespace
}  // namespace fourbit
