// End-to-end integration tests: full protocol stacks over the simulated
// radio — collection on small topologies, failure injection, and the
// headline behavioural contrasts between 4B and the PHY-only baseline.
#include <gtest/gtest.h>

#include <memory>

#include "app/traffic.hpp"
#include "core/four_bit_estimator.hpp"
#include "mac/csma.hpp"
#include "phy/interference.hpp"
#include "runner/experiment.hpp"
#include "runner/network.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"
#include "topology/topology.hpp"

namespace fourbit {
namespace {

/// A benign, deterministic radio environment (no shadowing, no bursts).
topology::Environment clean_environment() {
  topology::Environment env;
  env.propagation.reference_loss = Decibels{37.0};
  env.propagation.exponent = 4.0;
  env.propagation.shadowing_sigma_db = 0.0;
  env.propagation.asymmetry_sigma_db = 0.0;
  env.hardware.tx_offset_sigma_db = 0.0;
  env.hardware.noise_figure_sigma_db = 0.0;
  env.burst_interference = false;
  return env;
}

topology::Testbed line_testbed(std::size_t n, double spacing) {
  topology::Testbed tb;
  tb.topology = topology::line(n, spacing);
  tb.environment = clean_environment();
  return tb;
}

runner::ExperimentConfig base_config(topology::Testbed tb,
                                     runner::Profile profile) {
  runner::ExperimentConfig cfg;
  cfg.testbed = std::move(tb);
  cfg.profile = profile;
  cfg.duration = sim::Duration::from_minutes(6.0);
  cfg.traffic.period = sim::Duration::from_seconds(5.0);
  cfg.boot_stagger = sim::Duration::from_seconds(5.0);
  cfg.seed = 11;
  return cfg;
}

TEST(IntegrationTest, TwoNodesPerfectLink) {
  const auto r = runner::run_experiment(
      base_config(line_testbed(2, 10.0), runner::Profile::kFourBit));
  EXPECT_GT(r.generated, 50u);
  EXPECT_DOUBLE_EQ(r.delivery_ratio, 1.0);
  // One perfect hop: cost within a few percent of 1 transmission/packet.
  EXPECT_NEAR(r.cost, 1.0, 0.05);
  EXPECT_NEAR(r.mean_depth, 1.0, 0.01);
}

TEST(IntegrationTest, LineTopologyCostApproachesDepth) {
  // 4 nodes, 30 m apart: each hop is clean, 60 m is undecodable, so the
  // tree must be the chain 3->2->1->0 and cost ~ mean depth = 2.
  const auto r = runner::run_experiment(
      base_config(line_testbed(4, 30.0), runner::Profile::kFourBit));
  EXPECT_GT(r.delivery_ratio, 0.99);
  ASSERT_EQ(r.final_tree.depths.size(), 4u);
  EXPECT_EQ(r.final_tree.depths[1], 1);
  EXPECT_EQ(r.final_tree.depths[2], 2);
  EXPECT_EQ(r.final_tree.depths[3], 3);
  EXPECT_NEAR(r.cost, 2.0, 0.2);
}

TEST(IntegrationTest, AllProfilesDeliverOnCleanNetwork) {
  for (const auto profile :
       {runner::Profile::kFourBit, runner::Profile::kCtpT2,
        runner::Profile::kCtpUnidirAck, runner::Profile::kCtpWhiteCompare,
        runner::Profile::kCtpUnconstrained,
        runner::Profile::kMultihopLqi}) {
    const auto r = runner::run_experiment(
        base_config(line_testbed(3, 25.0), profile));
    EXPECT_GT(r.delivery_ratio, 0.98)
        << "profile " << runner::profile_name(profile);
    EXPECT_LT(r.cost, 2.6) << "profile " << runner::profile_name(profile);
  }
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  const auto a = runner::run_experiment(
      base_config(line_testbed(4, 30.0), runner::Profile::kFourBit));
  const auto b = runner::run_experiment(
      base_config(line_testbed(4, 30.0), runner::Profile::kFourBit));
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.data_tx, b.data_tx);
  EXPECT_EQ(a.beacon_tx, b.beacon_tx);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(IntegrationTest, DifferentSeedsDiffer) {
  // A noisy testbed: the seed changes shadowing, bursts and jitter, so
  // transmission counts differ between seeds.
  sim::Rng rng_a{21};
  runner::ExperimentConfig cfg;
  cfg.testbed = topology::mirage(rng_a);
  cfg.profile = runner::Profile::kFourBit;
  cfg.duration = sim::Duration::from_minutes(3.0);
  cfg.seed = 21;
  const auto a = runner::run_experiment(cfg);
  sim::Rng rng_b{22};
  cfg.testbed = topology::mirage(rng_b);
  cfg.seed = 22;
  const auto b = runner::run_experiment(cfg);
  EXPECT_NE(a.data_tx, b.data_tx);
}

// ---- the diamond scenario ---------------------------------------------------
//
//        A (relay, closer to L)
//   R  <           > L
//        B (relay, farther)
//
// A's reception gets jammed mid-run. The ack bit lets 4B route L around
// the failure; MultiHopLQI keeps seeing pristine LQI on A's beacons and
// stays, losing packets.

topology::Testbed diamond_testbed() {
  topology::Testbed tb;
  tb.environment = clean_environment();
  tb.topology.root = NodeId{0};
  // 60 m root-to-leaf is undecodable in the clean environment, so the
  // leaf MUST relay through A or B; A is slightly better placed.
  tb.topology.nodes = {
      {NodeId{0}, Position{0.0, 0.0}},     // root R
      {NodeId{1}, Position{30.0, 8.0}},    // relay A (better placed)
      {NodeId{2}, Position{30.0, -16.0}},  // relay B (worse but clean)
      {NodeId{3}, Position{60.0, 0.0}},    // leaf L
  };
  return tb;
}

struct DiamondResult {
  double delivery;
  NodeId leaf_parent;
};

DiamondResult run_diamond(runner::Profile profile) {
  sim::Simulator sim;
  stats::Metrics metrics;

  runner::Network::Options options;
  options.profile = profile;
  options.seed = 5;
  // Relay A's receiver is jammed (90% whole-packet loss) from t=120 s on.
  std::vector<phy::ScheduledBurstInterference::Burst> bursts = {
      {NodeId{1}, sim::Time::from_us(0) + sim::Duration::from_seconds(120.0),
       sim::Time::from_us(0) + sim::Duration::from_hours(2.0), 0.9}};
  options.interference_override =
      std::make_unique<phy::ScheduledBurstInterference>(bursts);

  runner::Network net{sim, diamond_testbed(), std::move(options), &metrics};
  app::TrafficConfig traffic;
  traffic.period = sim::Duration::from_seconds(2.0);
  net.start(sim::Duration::from_seconds(5.0), traffic);
  sim.run_for(sim::Duration::from_minutes(12.0));

  return DiamondResult{metrics.delivery_ratio(),
                       net.node(3).routing().parent()};
}

TEST(IntegrationTest, FourBitRoutesAroundJammedRelay) {
  const auto r = run_diamond(runner::Profile::kFourBit);
  EXPECT_EQ(r.leaf_parent, NodeId{2}) << "leaf should have moved to relay B";
  EXPECT_GT(r.delivery, 0.93);
}

TEST(IntegrationTest, MultihopLqiBlindToJammedRelay) {
  const auto lqi = run_diamond(runner::Profile::kMultihopLqi);
  const auto fourb = run_diamond(runner::Profile::kFourBit);
  // The PHY-only estimator keeps losing packets that the 4B stack saves.
  EXPECT_GT(fourb.delivery, lqi.delivery + 0.1);
}

TEST(IntegrationTest, NetworkSurvivesRelayDeath) {
  sim::Simulator sim;
  stats::Metrics metrics;
  runner::Network::Options options;
  options.profile = runner::Profile::kFourBit;
  options.seed = 6;
  runner::Network net{sim, diamond_testbed(), std::move(options), &metrics};
  app::TrafficConfig traffic;
  traffic.period = sim::Duration::from_seconds(2.0);
  net.start(sim::Duration::from_seconds(5.0), traffic);

  sim.run_for(sim::Duration::from_minutes(3.0));
  // Kill whichever relay the leaf is using.
  const NodeId used = net.node(3).routing().parent();
  ASSERT_TRUE(used == NodeId{1} || used == NodeId{2});
  const std::size_t victim = used == NodeId{1} ? 1 : 2;
  net.channel().detach(net.radio(victim));  // node goes deaf and mute

  sim.run_for(sim::Duration::from_minutes(9.0));
  const auto snap = net.tree_snapshot();
  // The leaf found the other relay and still has a path to the root.
  EXPECT_GE(snap.depths[3], 1);
  EXPECT_NE(net.node(3).routing().parent(), used);
  EXPECT_GT(metrics.delivery_ratio(), 0.7);
}

TEST(IntegrationTest, MirageShortRunIsHealthy) {
  sim::Rng rng{31};
  runner::ExperimentConfig cfg;
  cfg.testbed = topology::mirage(rng);
  cfg.profile = runner::Profile::kFourBit;
  cfg.duration = sim::Duration::from_minutes(8.0);
  cfg.seed = 31;
  const auto r = runner::run_experiment(cfg);
  // 84 senders, 1 pkt / 10 s, 8 min => ~4000 packets.
  EXPECT_GT(r.generated, 3500u);
  EXPECT_LT(r.generated, 4500u);
  EXPECT_GT(r.delivery_ratio, 0.95);
  EXPECT_GE(r.cost, 1.0);
  EXPECT_GT(r.mean_depth, 1.0);
  EXPECT_LT(r.mean_depth, 5.0);
  EXPECT_GT(r.final_tree.routed, 80u);
}

TEST(IntegrationTest, EstimatorConvergesToTrueEtxOverRadio) {
  // One gray-zone link driven by real MAC traffic: the 4B unicast ETX
  // should approach 1 / (PRR_fwd * PRR_ack) within a modest tolerance.
  sim::Simulator sim;
  phy::PropagationConfig prop;
  prop.shadowing_sigma_db = 0.0;
  prop.asymmetry_sigma_db = 0.0;
  phy::Channel channel{sim, phy::PhyConfig{}, prop,
                       std::make_unique<phy::NullInterference>(),
                       sim::Rng{3}};
  phy::Radio a{channel, NodeId{1}, {0, 0}, phy::HardwareProfile{},
               PowerDbm{0.0}};
  // Find a distance with PRR in the gray zone.
  double d = 40.0;
  for (double trial = 40.0; trial < 200.0; trial += 0.5) {
    phy::Radio probe{channel,
                     NodeId{static_cast<std::uint16_t>(5000 + trial * 2)},
                     {trial, 0}, phy::HardwareProfile{}, PowerDbm{0.0}};
    const double prr = channel.mean_prr(a, probe, 40);
    if (prr < 0.75) {
      d = trial;
      break;
    }
  }
  phy::Radio b{channel, NodeId{2}, {d, 0}, phy::HardwareProfile{},
               PowerDbm{0.0}};
  mac::CsmaMac mac_a{sim, a, mac::CsmaConfig{}, sim::Rng{10}};
  mac::CsmaMac mac_b{sim, b, mac::CsmaConfig{}, sim::Rng{11}};
  mac_b.set_rx_handler([](NodeId, std::uint8_t, std::span<const std::uint8_t>,
                          const phy::RxInfo&) {});

  core::FourBitEstimator est{core::FourBitConfig{}, sim::Rng{12}};
  {
    link::PacketPhyInfo seed{.white = true, .lqi = 110};
    const std::vector<std::uint8_t> wire{0};
    (void)est.unwrap_beacon(NodeId{2}, wire, seed);
  }

  int acked = 0;
  int total = 0;
  std::function<void()> pump = [&] {
    if (total >= 2000) return;
    mac_a.send(NodeId{2}, std::vector<std::uint8_t>(34, 1),
               [&](const mac::TxResult& r) {
                 ++total;
                 if (r.acked) ++acked;
                 est.on_unicast_result(NodeId{2}, r.acked);
                 sim.schedule_in(sim::Duration::from_ms(30), pump);
               });
  };
  pump();
  sim.run();

  ASSERT_EQ(total, 2000);
  const double ack_rate = static_cast<double>(acked) / total;
  ASSERT_GT(ack_rate, 0.1);
  const double true_etx = 1.0 / ack_rate;
  EXPECT_NEAR(est.etx(NodeId{2}).value(), true_etx, true_etx * 0.35);
}

}  // namespace
}  // namespace fourbit
