// Tests of the fault-injection subsystem: plan construction (seeded,
// deterministic), the injector's schedule execution, channel link
// outages, node crash/reboot through the full stack, and the recovery
// behaviour the paper's robustness story depends on — a crashed pinned
// parent must be unpinned, evicted and routed around.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/experiment.hpp"
#include "runner/faults.hpp"
#include "runner/network.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"
#include "topology/topology.hpp"

namespace fourbit {
namespace {

sim::Time at_s(double s) {
  return sim::Time::from_us(static_cast<std::int64_t>(s * 1e6));
}

// ---- plan construction ---------------------------------------------------

runner::FaultSpec crash_spec(std::size_t crashes) {
  runner::FaultSpec spec;
  spec.node_crashes = crashes;
  spec.window_start = at_s(100.0);
  spec.window_end = at_s(200.0);
  return spec;
}

TEST(FaultPlanTest, SameSeedSamePlan) {
  const auto topo = topology::line(20, 10.0);
  const auto spec = crash_spec(5);
  const auto a = runner::build_fault_plan(spec, topo, 42);
  const auto b = runner::build_fault_plan(spec, topo, 42);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].node, b.events[i].node);
    EXPECT_EQ(a.events[i].at.us(), b.events[i].at.us());
  }
}

TEST(FaultPlanTest, DifferentSeedsDifferentPlans) {
  const auto topo = topology::line(20, 10.0);
  const auto spec = crash_spec(5);
  const auto a = runner::build_fault_plan(spec, topo, 42);
  const auto b = runner::build_fault_plan(spec, topo, 43);
  bool differs = false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    if (a.events[i].node != b.events[i].node ||
        a.events[i].at.us() != b.events[i].at.us()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, VictimsDistinctNonRootInsideWindow) {
  const auto topo = topology::line(10, 10.0);
  const auto spec = crash_spec(6);
  const auto plan = runner::build_fault_plan(spec, topo, 7);
  ASSERT_EQ(plan.events.size(), 6u);
  std::set<NodeId> victims;
  for (const auto& event : plan.events) {
    EXPECT_EQ(event.kind, sim::FaultKind::kNodeCrash);
    EXPECT_NE(event.node, topo.root);
    EXPECT_TRUE(victims.insert(event.node).second) << "victim repeated";
    EXPECT_GE(event.at.us(), spec.window_start.us());
    EXPECT_LT(event.at.us(), spec.window_end.us());
  }
  // Sorted by fire time, and never more victims than non-root nodes.
  EXPECT_TRUE(std::is_sorted(
      plan.events.begin(), plan.events.end(),
      [](const auto& x, const auto& y) { return x.at.us() < y.at.us(); }));
  const auto capped =
      runner::build_fault_plan(crash_spec(100), topo, 7);
  EXPECT_EQ(capped.events.size(), topo.size() - 1);
}

TEST(FaultPlanTest, LinkOutagePairsNearestNeighbors) {
  const auto topo = topology::line(10, 10.0);
  runner::FaultSpec spec;
  spec.link_outages = 3;
  spec.outage_loss = 0.8;
  spec.window_start = at_s(100.0);
  spec.window_end = at_s(200.0);
  const auto plan = runner::build_fault_plan(spec, topo, 11);
  ASSERT_EQ(plan.events.size(), 3u);
  for (const auto& event : plan.events) {
    EXPECT_EQ(event.kind, sim::FaultKind::kLinkOutage);
    EXPECT_NE(event.node, event.peer);
    // On a uniform line the nearest neighbor is one position over.
    EXPECT_EQ(std::abs(static_cast<int>(event.node.value()) -
                       static_cast<int>(event.peer.value())),
              1);
    EXPECT_DOUBLE_EQ(event.loss, 0.8);
  }
}

TEST(FaultPlanTest, DisabledSpecBuildsEmptyPlan) {
  const auto topo = topology::line(5, 10.0);
  EXPECT_FALSE(runner::FaultSpec{}.enabled());
  EXPECT_TRUE(
      runner::build_fault_plan(runner::FaultSpec{}, topo, 1).empty());
}

// ---- injector schedule execution -----------------------------------------

TEST(FaultInjectorTest, CrashAndRebootFireAtScheduledTimes) {
  sim::Simulator sim;
  sim::FaultPlan plan;
  sim::FaultEvent event;
  event.kind = sim::FaultKind::kNodeCrash;
  event.at = at_s(10.0);
  event.duration = sim::Duration::from_seconds(5.0);
  event.node = NodeId{3};
  plan.events.push_back(event);

  std::vector<std::pair<NodeId, double>> crashes, reboots;
  sim::FaultInjector::Hooks hooks;
  hooks.crash_node = [&](NodeId n) {
    crashes.emplace_back(n, sim.now().seconds());
  };
  hooks.reboot_node = [&](NodeId n) {
    reboots.emplace_back(n, sim.now().seconds());
  };
  sim::FaultInjector injector{sim, std::move(plan), std::move(hooks)};
  injector.arm();
  sim.run_for(sim::Duration::from_seconds(30.0));

  ASSERT_EQ(crashes.size(), 1u);
  ASSERT_EQ(reboots.size(), 1u);
  EXPECT_EQ(crashes[0].first, NodeId{3});
  EXPECT_DOUBLE_EQ(crashes[0].second, 10.0);
  EXPECT_EQ(reboots[0].first, NodeId{3});
  EXPECT_DOUBLE_EQ(reboots[0].second, 15.0);
  EXPECT_EQ(injector.crashes_executed(), 1u);
  EXPECT_EQ(injector.reboots_executed(), 1u);
}

TEST(FaultInjectorTest, PermanentCrashNeverReboots) {
  sim::Simulator sim;
  sim::FaultPlan plan;
  sim::FaultEvent event;
  event.kind = sim::FaultKind::kNodeCrash;
  event.at = at_s(1.0);
  event.duration = sim::Duration::from_us(0);  // permanent
  event.node = NodeId{2};
  plan.events.push_back(event);

  int reboots = 0;
  sim::FaultInjector::Hooks hooks;
  hooks.crash_node = [](NodeId) {};
  hooks.reboot_node = [&](NodeId) { ++reboots; };
  sim::FaultInjector injector{sim, std::move(plan), std::move(hooks)};
  injector.arm();
  sim.run_for(sim::Duration::from_minutes(10.0));
  EXPECT_EQ(injector.crashes_executed(), 1u);
  EXPECT_EQ(reboots, 0);
}

TEST(FaultInjectorTest, LinkOutageRaisesAndClears) {
  sim::Simulator sim;
  sim::FaultPlan plan;
  sim::FaultEvent event;
  event.kind = sim::FaultKind::kLinkOutage;
  event.at = at_s(5.0);
  event.duration = sim::Duration::from_seconds(10.0);
  event.node = NodeId{1};
  event.peer = NodeId{2};
  event.loss = 1.0;
  plan.events.push_back(event);

  std::vector<double> downs, ups;
  sim::FaultInjector::Hooks hooks;
  hooks.link_down = [&](NodeId, NodeId, double) {
    downs.push_back(sim.now().seconds());
  };
  hooks.link_up = [&](NodeId, NodeId) { ups.push_back(sim.now().seconds()); };
  sim::FaultInjector injector{sim, std::move(plan), std::move(hooks)};
  injector.arm();
  sim.run_for(sim::Duration::from_seconds(60.0));
  ASSERT_EQ(downs.size(), 1u);
  ASSERT_EQ(ups.size(), 1u);
  EXPECT_DOUBLE_EQ(downs[0], 5.0);
  EXPECT_DOUBLE_EQ(ups[0], 15.0);
  EXPECT_EQ(injector.outages_executed(), 1u);
}

// ---- full-stack crash / outage behaviour ---------------------------------

/// A benign, deterministic radio environment (no shadowing, no bursts).
topology::Environment clean_environment() {
  topology::Environment env;
  env.propagation.reference_loss = Decibels{37.0};
  env.propagation.exponent = 4.0;
  env.propagation.shadowing_sigma_db = 0.0;
  env.propagation.asymmetry_sigma_db = 0.0;
  env.hardware.tx_offset_sigma_db = 0.0;
  env.hardware.noise_figure_sigma_db = 0.0;
  env.burst_interference = false;
  return env;
}

topology::Testbed line_testbed(std::size_t n, double spacing) {
  topology::Testbed tb;
  tb.topology = topology::line(n, spacing);
  tb.environment = clean_environment();
  return tb;
}

TEST(FaultNetworkTest, CrashSilencesNodeRebootRestores) {
  sim::Simulator sim;
  stats::Metrics metrics;
  runner::Network::Options options;
  options.seed = 5;
  runner::Network network{sim, line_testbed(3, 30.0), std::move(options),
                          &metrics};
  app::TrafficConfig traffic;
  traffic.period = sim::Duration::from_seconds(5.0);
  network.start(sim::Duration::from_seconds(5.0), traffic);
  sim.run_for(sim::Duration::from_seconds(60.0));
  ASSERT_TRUE(network.node(1).routing().has_route());

  network.crash_node(1);
  EXPECT_TRUE(network.node(1).crashed());
  EXPECT_FALSE(network.radio(1).listening());
  EXPECT_FALSE(network.node(1).routing().has_route());
  EXPECT_TRUE(network.node(1).estimator().neighbors().empty());
  EXPECT_FALSE(network.node(1).send(std::vector<std::uint8_t>{1}))
      << "a crashed node cannot originate traffic";
  EXPECT_EQ(metrics.node_crashes(), 1u);

  network.reboot_node(1);
  EXPECT_FALSE(network.node(1).crashed());
  EXPECT_TRUE(network.radio(1).listening());
  EXPECT_EQ(metrics.node_reboots(), 1u);
  sim.run_for(sim::Duration::from_seconds(120.0));
  EXPECT_TRUE(network.node(1).routing().has_route())
      << "a rebooted node must reconverge";
}

TEST(FaultNetworkTest, RootCannotCrash) {
  sim::Simulator sim;
  stats::Metrics metrics;
  runner::Network::Options options;
  runner::Network network{sim, line_testbed(2, 10.0), std::move(options),
                          &metrics};
  network.crash_node(network.root_index());
  EXPECT_FALSE(network.node(network.root_index()).crashed());
  EXPECT_EQ(metrics.node_crashes(), 0u);
}

TEST(FaultNetworkTest, ChannelOutageBlacksOutLink) {
  sim::Simulator sim;
  stats::Metrics metrics;
  runner::Network::Options options;
  options.seed = 9;
  runner::Network network{sim, line_testbed(2, 10.0), std::move(options),
                          &metrics};
  app::TrafficConfig traffic;
  traffic.period = sim::Duration::from_seconds(2.0);
  network.start(sim::Duration::from_seconds(5.0), traffic);
  sim.run_for(sim::Duration::from_seconds(60.0));
  const auto delivered_before = metrics.delivered_unique_total();
  EXPECT_GT(delivered_before, 0u);

  network.channel().set_link_outage(network.node(0).id(),
                                    network.node(1).id(), 1.0);
  EXPECT_EQ(network.channel().active_link_outages(), 1u);
  sim.run_for(sim::Duration::from_seconds(60.0));
  EXPECT_EQ(metrics.delivered_unique_total(), delivered_before)
      << "a total blackout must deliver nothing";

  network.channel().clear_link_outage(network.node(1).id(),
                                      network.node(0).id());  // symmetric
  EXPECT_EQ(network.channel().active_link_outages(), 0u);
  sim.run_for(sim::Duration::from_seconds(60.0));
  EXPECT_GT(metrics.delivered_unique_total(), delivered_before)
      << "delivery must resume once the outage clears";
}

// ---- the headline recovery scenario --------------------------------------
//
//        A (relay, better placed)
//   R  <                          > L
//        B (relay, slightly worse)
//
// L pins its parent A. A crashes and stays down. L must notice via the
// datapath (burned retransmission budgets), unpin and evict A, adopt B,
// and deliver >90% of the packets generated after the outage window.

TEST(FaultNetworkTest, CrashedPinnedParentEvictedAndRoutedAround) {
  topology::Testbed tb;
  tb.environment = clean_environment();
  tb.topology.root = NodeId{0};
  tb.topology.nodes = {
      {NodeId{0}, Position{0.0, 0.0}},     // root
      {NodeId{1}, Position{28.0, 4.0}},    // relay A: L's first choice
      {NodeId{2}, Position{28.0, -12.0}},  // relay B: fallback
      {NodeId{3}, Position{56.0, 0.0}},    // leaf L (root is out of reach)
  };

  sim::Simulator sim;
  stats::Metrics metrics;
  runner::Network::Options options;
  options.seed = 3;
  runner::Network network{sim, tb, std::move(options), &metrics};
  runner::FaultRuntime fault_runtime{sim, network, &metrics};

  app::TrafficConfig traffic;
  traffic.period = sim::Duration::from_seconds(5.0);
  network.start(sim::Duration::from_seconds(5.0), traffic);
  sim.run_for(sim::Duration::from_seconds(170.0));

  // Pre-crash shape: L routes (and has pinned) one of the two relays.
  const NodeId victim = network.node(3).routing().parent();
  ASSERT_TRUE(victim == NodeId{1} || victim == NodeId{2});
  const NodeId survivor = victim == NodeId{1} ? NodeId{2} : NodeId{1};

  // Crash L's actual parent, permanently, ten seconds from now.
  sim::FaultPlan plan;
  sim::FaultEvent event;
  event.kind = sim::FaultKind::kNodeCrash;
  event.at = at_s(180.0);
  event.duration = sim::Duration::from_us(0);  // the relay stays dead
  event.node = victim;
  plan.events.push_back(event);
  // The outage "window" of a permanent crash: from the crash until the
  // network has had a fair chance to heal. Packets after it must flow.
  runner::register_outage_windows(plan, metrics, at_s(300.0));
  fault_runtime.arm(std::move(plan));

  sim.run_for(sim::Duration::from_minutes(10.0) -
              sim::Duration::from_seconds(170.0));

  // L routed around the dead relay. With a live alternative in the
  // table this happens through the ack bit alone: failed unicasts
  // balloon the dead link's ETX until the survivor wins, and the
  // ordinary parent switch releases the pin (eviction is the backstop
  // for when no alternative exists — see the chain test below).
  EXPECT_EQ(network.node(3).routing().parent(), survivor)
      << "L must reroute through the surviving relay";
  EXPECT_TRUE(network.node(3).estimator().remove(victim))
      << "the dead relay must no longer be pinned in L's table";
  // And the network heals: packets generated after the outage window
  // overwhelmingly arrive.
  EXPECT_GT(metrics.generated_post_outage(), 20u);
  EXPECT_GT(metrics.delivery_post_outage(), 0.9);
}

// The eviction backstop: in a chain R -- A -- L, node A is L's ONLY way
// home. When A crashes, no beacon ever un-wedges L — only the datapath
// can. L must burn its retransmission budgets, refuse-then-unpin the
// dead parent, evict it, and go routeless until A reboots.

TEST(FaultNetworkTest, SoleParentCrashForcesEvictionAndRecovery) {
  sim::Simulator sim;
  stats::Metrics metrics;
  runner::Network::Options options;
  options.seed = 7;
  // 30 m hops: adjacent links are clean, 60 m (L to root) is undecodable.
  runner::Network network{sim, line_testbed(3, 30.0), std::move(options),
                          &metrics};
  runner::FaultRuntime fault_runtime{sim, network, &metrics};

  sim::FaultPlan plan;
  sim::FaultEvent event;
  event.kind = sim::FaultKind::kNodeCrash;
  event.at = at_s(180.0);
  event.duration = sim::Duration::from_seconds(60.0);
  event.node = NodeId{1};
  plan.events.push_back(event);
  runner::register_outage_windows(plan, metrics, at_s(600.0));
  fault_runtime.arm(std::move(plan));

  app::TrafficConfig traffic;
  traffic.period = sim::Duration::from_seconds(5.0);
  network.start(sim::Duration::from_seconds(5.0), traffic);
  sim.run_for(sim::Duration::from_minutes(10.0));

  // The wedge resolved through the eviction path: pin refused once,
  // then unpinned and removed, leaving L routeless until A rebooted.
  EXPECT_GE(network.total_parent_evictions(), 1u);
  EXPECT_GE(metrics.pin_refusals(), 1u);
  EXPECT_GE(metrics.route_losses(), 1u);
  // A's reboot restored the route: a completed reroute interval whose
  // length spans the back-dated wedge, not just the final beacon.
  EXPECT_GE(metrics.reroute_count(), 1u);
  EXPECT_GT(metrics.mean_time_to_reroute_s(), 10.0);
  // A's neighbor table refilled after its reboot.
  EXPECT_GE(metrics.table_refill_count(), 1u);
  EXPECT_EQ(network.node(2).routing().parent(), NodeId{1});
  EXPECT_GT(metrics.delivery_post_outage(), 0.9);
}

// ---- experiment / campaign plumbing --------------------------------------

TEST(FaultCampaignTest, FaultedExperimentPopulatesRecoveryFields) {
  runner::ExperimentConfig cfg;
  cfg.testbed = line_testbed(4, 30.0);
  cfg.profile = runner::Profile::kFourBit;
  cfg.duration = sim::Duration::from_minutes(8.0);
  cfg.traffic.period = sim::Duration::from_seconds(5.0);
  cfg.boot_stagger = sim::Duration::from_seconds(5.0);
  cfg.seed = 17;
  cfg.faults.node_crashes = 1;
  cfg.faults.crash_downtime = sim::Duration::from_seconds(90.0);
  cfg.faults.window_start = at_s(120.0);
  cfg.faults.window_end = at_s(240.0);
  const auto r = runner::run_experiment(cfg);
  EXPECT_EQ(r.node_crashes, 1u);
  EXPECT_EQ(r.node_reboots, 1u);
  EXPECT_GT(r.generated_during_outage, 0u);
  EXPECT_GT(r.generated_post_outage, 0u);
  EXPECT_GT(r.delivery_post_outage, 0.9);
  EXPECT_GT(r.mean_time_to_first_route_s, 0.0);
}

TEST(FaultCampaignTest, ThreadCountDoesNotChangeFaultedResults) {
  runner::ExperimentConfig base;
  base.testbed = line_testbed(5, 30.0);
  base.profile = runner::Profile::kFourBit;
  base.duration = sim::Duration::from_minutes(6.0);
  base.traffic.period = sim::Duration::from_seconds(5.0);
  base.boot_stagger = sim::Duration::from_seconds(5.0);
  base.seed = 23;
  base.faults.node_crashes = 2;
  base.faults.crash_downtime = sim::Duration::from_seconds(60.0);
  base.faults.link_outages = 1;
  base.faults.window_start = at_s(100.0);
  base.faults.window_end = at_s(200.0);
  const auto trials = runner::Campaign::seed_sweep(base, 4);

  runner::Campaign::Options serial;
  serial.threads = 1;
  runner::Campaign::Options pooled;
  pooled.threads = 4;
  const auto a = runner::Campaign::run(trials, serial);
  const auto b = runner::Campaign::run(trials, pooled);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].generated, b[i].generated) << "trial " << i;
    EXPECT_EQ(a[i].delivered, b[i].delivered) << "trial " << i;
    EXPECT_EQ(a[i].data_tx, b[i].data_tx) << "trial " << i;
    EXPECT_EQ(a[i].node_crashes, b[i].node_crashes) << "trial " << i;
    EXPECT_EQ(a[i].node_reboots, b[i].node_reboots) << "trial " << i;
    EXPECT_EQ(a[i].route_losses, b[i].route_losses) << "trial " << i;
    EXPECT_DOUBLE_EQ(a[i].delivery_during_outage,
                     b[i].delivery_during_outage)
        << "trial " << i;
    EXPECT_DOUBLE_EQ(a[i].mean_time_to_reroute_s,
                     b[i].mean_time_to_reroute_s)
        << "trial " << i;
    EXPECT_DOUBLE_EQ(a[i].mean_table_refill_s, b[i].mean_table_refill_s)
        << "trial " << i;
  }
}

}  // namespace
}  // namespace fourbit
