// Tests of the telemetry subsystem: the flight-recorder ring buffer,
// level gating, the counter/gauge registry, node filtering, JSONL export
// (schema lock + round trip), per-trial trace files under the campaign
// supervisor, and flight-recorder attachment to trial failures.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/describe.hpp"
#include "runner/experiment.hpp"
#include "runner/supervisor.hpp"
#include "sim/invariant.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/telemetry.hpp"
#include "stats/export.hpp"
#include "topology/topology.hpp"

namespace fourbit::sim {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::path{::testing::TempDir()} / name).string();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in{path};
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---- flight recorder ---------------------------------------------------

TEST(FlightRecorderTest, RingKeepsTheLastCapacityEvents) {
  TelemetryContext telemetry;
  const std::size_t total = 3 * TelemetryContext::kFlightCapacity / 2 + 5;
  for (std::size_t i = 0; i < total; ++i) {
    telemetry.emit(EventKind::kDataDrop, 1, 2,
                   static_cast<std::uint16_t>(i));
  }
  EXPECT_EQ(telemetry.events_recorded(), total);

  const auto events = telemetry.flight();
  ASSERT_EQ(events.size(), TelemetryContext::kFlightCapacity);
  // Oldest first, ending at the most recent emit.
  EXPECT_EQ(events.front().arg,
            static_cast<std::uint16_t>(total -
                                       TelemetryContext::kFlightCapacity));
  EXPECT_EQ(events.back().arg, static_cast<std::uint16_t>(total - 1));
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, events[i - 1].arg + 1);
  }
}

TEST(FlightRecorderTest, PartialFillReturnsOnlyRecordedEvents) {
  TelemetryContext telemetry;
  telemetry.emit(EventKind::kEtxUpdate, 3, 4, 0, 0, 1.0, 2.5);
  telemetry.emit(EventKind::kRouteChange, 3, 5, 4);
  const auto events = telemetry.flight();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kEtxUpdate);
  EXPECT_DOUBLE_EQ(events[0].v1, 2.5);
  EXPECT_EQ(events[1].kind, EventKind::kRouteChange);
  EXPECT_EQ(events[1].peer, 5u);
}

TEST(FlightRecorderTest, DestructorPublishesToThreadLocalSlot) {
  TelemetryContext::clear_last_flight();
  {
    TelemetryContext telemetry;
    telemetry.emit(EventKind::kFaultStart, 9);
    telemetry.emit(EventKind::kFaultEnd, 9);
  }
  const auto flight = TelemetryContext::take_last_flight();
  ASSERT_EQ(flight.size(), 2u);
  EXPECT_EQ(flight[0].kind, EventKind::kFaultStart);
  EXPECT_EQ(flight[1].kind, EventKind::kFaultEnd);
  // take_last_flight is destructive: the slot is now empty.
  EXPECT_TRUE(TelemetryContext::take_last_flight().empty());
}

TEST(FlightRecorderTest, LevelGatesTheRingToo) {
  TelemetryContext telemetry;
  telemetry.set_level(TraceLevel::kOff);
  telemetry.emit(EventKind::kDataDrop, 1);
  EXPECT_EQ(telemetry.events_recorded(), 0u);
  telemetry.set_level(TraceLevel::kDebug);
  telemetry.emit(EventKind::kBeaconTx, 1);
  EXPECT_EQ(telemetry.events_recorded(), 1u);
}

// ---- counter / gauge registry ------------------------------------------

TEST(RegistryTest, SameKeyReturnsSameSlot) {
  TelemetryContext telemetry;
  std::uint64_t* a = telemetry.counter("fwd", "drops", 3);
  std::uint64_t* b = telemetry.counter("fwd", "drops", 3);
  EXPECT_EQ(a, b);
  std::uint64_t* other_node = telemetry.counter("fwd", "drops", 4);
  EXPECT_NE(a, other_node);
  std::uint64_t* other_name = telemetry.counter("fwd", "data_tx", 3);
  EXPECT_NE(a, other_name);

  *a += 7;
  EXPECT_EQ(*b, 7u);
}

TEST(RegistryTest, RowsKeepRegistrationOrder) {
  TelemetryContext telemetry;
  (void)telemetry.counter("phy", "frames_tx");
  (void)telemetry.counter("fwd", "data_tx", 1);
  (void)telemetry.counter("fwd", "data_tx", 2);
  *telemetry.gauge("route", "etx", 1) = 3.5;

  const auto& counters = telemetry.counters();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].component, "phy");
  EXPECT_EQ(counters[0].node, 0xFFFF);
  EXPECT_EQ(counters[1].node, 1u);
  EXPECT_EQ(counters[2].node, 2u);
  ASSERT_EQ(telemetry.gauges().size(), 1u);
  EXPECT_DOUBLE_EQ(telemetry.gauges()[0].value, 3.5);
}

TEST(RegistryTest, HandlesSurviveFurtherRegistrations) {
  TelemetryContext telemetry;
  std::uint64_t* first = telemetry.counter("c", "n", 0);
  for (std::uint16_t i = 1; i < 200; ++i) {
    (void)telemetry.counter("c", "n", i);
  }
  *first = 42;  // must not have been invalidated by growth
  EXPECT_EQ(telemetry.counters().front().value, 42u);
}

// ---- sinks and filtering -----------------------------------------------

struct CaptureSink final : TelemetrySink {
  std::vector<TelemetryEvent> events;
  void on_event(const TelemetryEvent& event) override {
    events.push_back(event);
  }
};

TEST(SinkTest, NodeFilterAppliesToSinkButNotFlightRecorder) {
  TelemetryContext telemetry;
  CaptureSink sink;
  telemetry.set_sink(&sink);
  telemetry.set_node_filter({5});

  telemetry.emit(EventKind::kDataDrop, 5, 1);   // node matches
  telemetry.emit(EventKind::kDataDrop, 1, 5);   // peer matches
  telemetry.emit(EventKind::kDataDrop, 2, 3);   // neither
  telemetry.set_sink(nullptr);

  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].node, 5u);
  EXPECT_EQ(sink.events[1].peer, 5u);
  // The flight recorder saw everything.
  EXPECT_EQ(telemetry.flight().size(), 3u);
}

TEST(SinkTest, SimulatorStampsEventsWithItsClock) {
  Simulator sim;
  CaptureSink sink;
  sim.telemetry().set_sink(&sink);
  sim.schedule_at(Time::from_us(250'000),
                  [&] { sim.telemetry().emit(EventKind::kTablePin, 1, 2); });
  sim.run_for(Duration::from_seconds(1.0));
  sim.telemetry().set_sink(nullptr);
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].at, Time::from_us(250'000));
}

// ---- JSONL export ------------------------------------------------------

// Schema lock: this string IS the fourbit.telemetry/1 event format.
// Renaming or removing a field must bump the schema version
// (stats/export.hpp) and update this test deliberately.
TEST(JsonlTest, EventJsonIsStable) {
  TelemetryEvent event;
  event.at = Time::from_us(1'500'000);
  event.kind = EventKind::kEtxUpdate;
  event.node = 3;
  event.peer = 7;
  event.arg = 1;
  event.arg2 = 0;
  event.v0 = 1.5;
  event.v1 = 2.25;
  EXPECT_EQ(stats::event_to_json(event),
            "{\"type\":\"event\",\"t\":1.500000,\"kind\":\"etx-update\","
            "\"node\":3,\"peer\":7,\"arg\":1,\"arg2\":0,\"v0\":1.5,"
            "\"v1\":2.25}");
}

TEST(JsonlTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(stats::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(stats::json_escape(std::string{'\x01'}), "\\u0001");
  EXPECT_EQ(stats::json_escape("plain"), "plain");
}

TEST(JsonlTest, ExporterWritesHeaderEventsCountersFooter) {
  const std::string path = temp_path("exporter.jsonl");
  TelemetryContext telemetry;
  *telemetry.counter("fwd", "drops", 2) = 11;
  {
    stats::JsonlExporter exporter{path, {.seed = 77, .trial = 4}};
    telemetry.set_sink(&exporter);
    telemetry.emit(EventKind::kTableInsert, 1, 2);
    telemetry.emit(EventKind::kTableEvict, 1, 2, 0, 0);
    telemetry.set_sink(nullptr);
    EXPECT_EQ(exporter.events_written(), 2u);
    exporter.write_counters(telemetry);
    exporter.finish();
  }

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0],
            "{\"schema\":\"fourbit.telemetry/1\",\"type\":\"header\","
            "\"seed\":77,\"trial\":4}");
  EXPECT_NE(lines[1].find("\"kind\":\"table-insert\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"kind\":\"table-evict\""), std::string::npos);
  EXPECT_EQ(lines[3],
            "{\"type\":\"counter\",\"component\":\"fwd\",\"name\":"
            "\"drops\",\"node\":2,\"value\":11}");
  EXPECT_EQ(lines[4], "{\"type\":\"end\",\"events\":2}");
  std::filesystem::remove(path);
}

TEST(JsonlTest, StandaloneHeaderOmitsTrial) {
  const std::string path = temp_path("standalone.jsonl");
  {
    stats::JsonlExporter exporter{path, {.seed = 5, .trial = -1}};
  }
  const auto lines = read_lines(path);
  ASSERT_GE(lines.size(), 1u);
  EXPECT_EQ(lines[0],
            "{\"schema\":\"fourbit.telemetry/1\",\"type\":\"header\","
            "\"seed\":5}");
  std::filesystem::remove(path);
}

TEST(JsonlTest, ExporterThrowsOnUnopenablePath) {
  EXPECT_THROW(
      (stats::JsonlExporter{"/nonexistent-dir-xyz/trace.jsonl", {}}),
      std::runtime_error);
}

}  // namespace
}  // namespace fourbit::sim

namespace fourbit::runner {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::path{::testing::TempDir()} / name).string();
}

/// A small, fast trial: a truncated Mirage testbed for a short run.
ExperimentConfig small_trial(std::uint64_t seed) {
  sim::Rng rng{seed};
  ExperimentConfig cfg;
  cfg.testbed = topology::mirage(rng);
  cfg.testbed.topology.nodes.resize(16);
  cfg.duration = sim::Duration::from_minutes(2.0);
  cfg.seed = seed;
  return cfg;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- per-trial trace files ---------------------------------------------

TEST(TracePathTest, NamesFilesByTrialIndexAndSeed) {
  EXPECT_EQ(trial_trace_path("run.jsonl", 3, 42), "run-t3-s42.jsonl");
  EXPECT_EQ(trial_trace_path("out/traces", 0, 9100),
            "out/traces-t0-s9100.jsonl");
}

TEST(TraceCampaignTest, StandaloneTraceFileIsWritten) {
  const std::string path = temp_path("single-trial.jsonl");
  auto cfg = small_trial(11);
  cfg.trace_path = path;
  const auto result = run_experiment(cfg);
  EXPECT_GT(result.generated, 0u);

  const auto content = read_file(path);
  ASSERT_FALSE(content.empty());
  EXPECT_NE(content.find("\"schema\":\"fourbit.telemetry/1\""),
            std::string::npos);
  EXPECT_NE(content.find("\"type\":\"end\""), std::string::npos);
  // Default level is kInfo: state changes are present...
  EXPECT_NE(content.find("\"kind\":\"table-insert\""), std::string::npos);
  EXPECT_NE(content.find("\"kind\":\"route-change\""), std::string::npos);
  // ...but per-frame debug plumbing is not.
  EXPECT_EQ(content.find("\"kind\":\"beacon-tx\""), std::string::npos);
  // Counters were snapshotted.
  EXPECT_NE(content.find("\"type\":\"counter\""), std::string::npos);
  std::filesystem::remove(path);
}

// The acceptance contract: a traced campaign writes one file per trial,
// and those files are byte-identical at any thread count.
TEST(TraceCampaignTest, PerTrialFilesAreThreadCountInvariant) {
  const auto trials = Campaign::seed_sweep(small_trial(60), 4);
  const std::string base = temp_path("campaign-trace.jsonl");

  const auto run_with_threads = [&](std::size_t threads) {
    SupervisorOptions options;
    options.threads = threads;
    options.trace_path_base = base;
    const auto report = run_supervised(trials, options);
    EXPECT_TRUE(report.all_completed());
    std::vector<std::string> files;
    for (std::size_t i = 0; i < trials.size(); ++i) {
      const auto path = trial_trace_path(base, i, trials[i].seed);
      files.push_back(read_file(path));
      std::filesystem::remove(path);
    }
    return files;
  };

  const auto serial = run_with_threads(1);
  const auto parallel = run_with_threads(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FALSE(serial[i].empty()) << "trial " << i << " wrote no trace";
    EXPECT_EQ(serial[i], parallel[i])
        << "trial " << i << " trace differs across thread counts";
    // Each file carries its own trial index in the header.
    EXPECT_NE(serial[i].find("\"trial\":" + std::to_string(i)),
              std::string::npos);
  }
}

TEST(TraceCampaignTest, TracingDoesNotChangeResults) {
  const auto trials = Campaign::seed_sweep(small_trial(70), 2);
  SupervisorOptions plain;
  plain.threads = 1;
  const auto baseline = run_supervised(trials, plain);

  SupervisorOptions traced;
  traced.threads = 1;
  traced.trace_path_base = temp_path("noeffect.jsonl");
  const auto report = run_supervised(trials, traced);

  ASSERT_TRUE(baseline.all_completed());
  ASSERT_TRUE(report.all_completed());
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(baseline.results[i].cost, report.results[i].cost);
    EXPECT_EQ(baseline.results[i].delivered, report.results[i].delivered);
    EXPECT_EQ(baseline.results[i].parent_changes,
              report.results[i].parent_changes);
    std::filesystem::remove(
        trial_trace_path(traced.trace_path_base, i, trials[i].seed));
  }
}

// ---- flight recorder attachment to failures ----------------------------

// The acceptance contract: a trial that dies on an invariant violation
// produces a TrialFailure carrying the sim's recent telemetry.
TEST(FlightOnFailureTest, InvariantFailureCarriesFlightRecording) {
  const auto trials = Campaign::seed_sweep(small_trial(80), 2);
  SupervisorOptions options;
  options.threads = 2;
  options.run_trial = [&](const ExperimentConfig& cfg) -> ExperimentResult {
    if (cfg.seed != trials[1].seed) return run_experiment(cfg);
    // A trial whose auditor trips mid-run: the simulator (and its
    // telemetry context) is destroyed by stack unwinding before the
    // supervisor's catch block sees the exception.
    sim::Simulator sim;
    sim.telemetry().emit(sim::EventKind::kFaultStart, 4, 0xFFFF, 0, 0);
    sim.telemetry().emit(sim::EventKind::kDataDrop, 4, 2, 9, 3);
    sim::InvariantAuditor auditor{sim};
    auditor.add("forced", [&]() -> std::optional<std::string> {
      return "forced violation";
    });
    auditor.start(sim::Duration::from_seconds(1.0));
    sim.run_for(sim::Duration::from_seconds(5.0));
    return {};
  };

  const auto report = run_supervised(trials, options);
  ASSERT_EQ(report.failures.size(), 1u);
  const auto& failure = report.failures[0];
  EXPECT_EQ(failure.kind, FailureKind::kInvariant);
  ASSERT_GE(failure.flight.size(), 2u);
  EXPECT_EQ(failure.flight[0].kind, sim::EventKind::kFaultStart);
  EXPECT_EQ(failure.flight[1].kind, sim::EventKind::kDataDrop);
  EXPECT_EQ(failure.flight[1].arg2,
            static_cast<std::uint16_t>(sim::DropReason::kRetxExhausted));

  // The human and JSON reports both mention the recording.
  EXPECT_NE(describe(failure).find("flight recorder"), std::string::npos);
  EXPECT_NE(describe_json(failure).find("\"flight_events\":"),
            std::string::npos);

  // The healthy sibling completed and carries no stale flight data.
  EXPECT_TRUE(report.completed[0]);
}

TEST(FlightOnFailureTest, CleanTrialsLeaveNoStaleFlight) {
  const auto trials = Campaign::seed_sweep(small_trial(90), 1);
  SupervisorOptions options;
  options.threads = 1;
  const auto report = run_supervised(trials, options);
  EXPECT_TRUE(report.all_completed());
  EXPECT_TRUE(report.failures.empty());
}

// ---- summary JSON ------------------------------------------------------

TEST(SummaryJsonTest, CampaignSummaryCarriesSchemaAndCounts) {
  const auto trials = Campaign::seed_sweep(small_trial(95), 2);
  SupervisorOptions options;
  options.threads = 1;
  const auto report = run_supervised(trials, options);
  const auto json = describe_json(report);
  EXPECT_EQ(json.find("{\"schema\":\"fourbit.summary/1\","
                      "\"type\":\"campaign\""),
            0u);
  EXPECT_NE(json.find("\"trials\":2,\"completed\":2"), std::string::npos);
  EXPECT_NE(json.find("\"cost\":{\"n\":2,"), std::string::npos);

  const auto result_json = describe_json(report.results[0]);
  EXPECT_EQ(result_json.find("{\"schema\":\"fourbit.summary/1\","
                             "\"type\":\"result\""),
            0u);
}

}  // namespace
}  // namespace fourbit::runner
