// Tests of the shared utilities: ids, units, byte IO, windows, EWMA.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/byte_io.hpp"
#include "common/crc16.hpp"
#include "common/ids.hpp"
#include "common/ring_window.hpp"
#include "common/units.hpp"

namespace fourbit {
namespace {

// ---- ids -----------------------------------------------------------------

TEST(IdsTest, Comparisons) {
  EXPECT_EQ(NodeId{5}, NodeId{5});
  EXPECT_NE(NodeId{5}, NodeId{6});
  EXPECT_LT(NodeId{5}, NodeId{6});
}

TEST(IdsTest, SpecialAddresses) {
  EXPECT_TRUE(is_unicast(NodeId{0}));
  EXPECT_TRUE(is_unicast(NodeId{1234}));
  EXPECT_FALSE(is_unicast(kBroadcastId));
  EXPECT_FALSE(is_unicast(kInvalidNodeId));
  EXPECT_NE(kBroadcastId, kInvalidNodeId);
}

TEST(IdsTest, Hashable) {
  std::hash<NodeId> h;
  EXPECT_EQ(h(NodeId{7}), h(NodeId{7}));
  EXPECT_NE(h(NodeId{7}), h(NodeId{8}));  // not required, but true here
}

// ---- units ----------------------------------------------------------------

TEST(UnitsTest, DbmMilliwattRoundTrip) {
  EXPECT_DOUBLE_EQ(PowerDbm{0.0}.milliwatts(), 1.0);
  EXPECT_DOUBLE_EQ(PowerDbm{10.0}.milliwatts(), 10.0);
  EXPECT_NEAR(PowerDbm{-30.0}.milliwatts(), 1e-3, 1e-12);
  EXPECT_NEAR(PowerDbm::from_milliwatts(2.0).value(), 3.0103, 1e-3);
}

TEST(UnitsTest, DecibelArithmetic) {
  const PowerDbm p{-10.0};
  EXPECT_DOUBLE_EQ((p + Decibels{3.0}).value(), -7.0);
  EXPECT_DOUBLE_EQ((p - Decibels{5.0}).value(), -15.0);
  EXPECT_DOUBLE_EQ((PowerDbm{-40.0} - PowerDbm{-90.0}).value(), 50.0);
  EXPECT_DOUBLE_EQ((Decibels{2.0} + Decibels{3.0}).value(), 5.0);
  EXPECT_DOUBLE_EQ((-Decibels{2.0}).value(), -2.0);
}

TEST(UnitsTest, PowerSumOfEqualSignalsIsPlus3dB) {
  const PowerDbm sum = power_sum(PowerDbm{-50.0}, PowerDbm{-50.0});
  EXPECT_NEAR(sum.value(), -46.99, 0.02);
}

TEST(UnitsTest, PowerSumDominatedByStronger) {
  const PowerDbm sum = power_sum(PowerDbm{-50.0}, PowerDbm{-90.0});
  EXPECT_NEAR(sum.value(), -50.0, 0.001);
}

TEST(UnitsTest, Distance) {
  EXPECT_DOUBLE_EQ(distance_m(Position{0, 0}, Position{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_m(Position{1, 1}, Position{1, 1}), 0.0);
}

// ---- byte io ----------------------------------------------------------------

TEST(ByteIoTest, WriterBigEndian) {
  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  const std::vector<std::uint8_t> expected{0xAB, 0x12, 0x34,
                                           0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(out, expected);
}

TEST(ByteIoTest, ReaderRoundTrip) {
  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  w.u8(7);
  w.u16(65535);
  w.u32(123456789);
  ByteReader r{out};
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 123456789u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteIoTest, TruncationLatchesNotOk) {
  const std::vector<std::uint8_t> bytes{0x01};
  ByteReader r{bytes};
  EXPECT_EQ(r.u16(), 0);  // truncated: returns 0
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0);  // stays not-ok; reads keep returning 0
  EXPECT_FALSE(r.ok());
}

TEST(ByteIoTest, RestConsumesEverything) {
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4};
  ByteReader r{bytes};
  (void)r.u8();
  const auto rest = r.rest();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], 2);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteIoTest, WriterBytesAppends) {
  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  const std::vector<std::uint8_t> chunk{9, 8, 7};
  w.u8(1);
  w.bytes(chunk);
  const std::vector<std::uint8_t> expected{1, 9, 8, 7};
  EXPECT_EQ(out, expected);
}

// ---- crc16 ---------------------------------------------------------------------

TEST(Crc16Test, KnownVector) {
  // CRC-16/XMODEM of "123456789" is 0x31C3.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16(data), 0x31C3);
}

TEST(Crc16Test, EmptyIsZero) {
  EXPECT_EQ(crc16(std::span<const std::uint8_t>{}), 0x0000);
}

TEST(Crc16Test, SingleBitFlipChangesCrc) {
  std::vector<std::uint8_t> data(32, 0x5A);
  const std::uint16_t clean = crc16(data);
  for (std::size_t byte = 0; byte < data.size(); byte += 7) {
    for (int bit = 0; bit < 8; bit += 3) {
      auto copy = data;
      copy[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc16(copy), clean)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(Crc16Test, IsCompileTime) {
  constexpr std::uint8_t data[] = {0xAB};
  constexpr std::uint16_t crc = crc16(data);
  static_assert(crc != 0);
  EXPECT_NE(crc, 0);
}

// ---- CountingWindow ----------------------------------------------------------

TEST(CountingWindowTest, FillsAtWindowSize) {
  CountingWindow w{3};
  EXPECT_FALSE(w.record(true));
  EXPECT_FALSE(w.record(false));
  EXPECT_TRUE(w.record(true));
  EXPECT_EQ(w.successes(), 2u);
  EXPECT_EQ(w.total(), 3u);
  EXPECT_NEAR(w.success_fraction(), 2.0 / 3.0, 1e-12);
}

TEST(CountingWindowTest, ResetClears) {
  CountingWindow w{2};
  (void)w.record(true);
  (void)w.record(true);
  w.reset();
  EXPECT_EQ(w.total(), 0u);
  EXPECT_EQ(w.successes(), 0u);
  EXPECT_DOUBLE_EQ(w.success_fraction(), 0.0);
}

TEST(CountingWindowTest, WindowOfOne) {
  CountingWindow w{1};
  EXPECT_TRUE(w.record(false));
  EXPECT_DOUBLE_EQ(w.success_fraction(), 0.0);
}

// ---- Ewma ----------------------------------------------------------------------

TEST(EwmaTest, FirstSampleInitializes) {
  Ewma e{0.9};
  EXPECT_FALSE(e.has_value());
  e.update(5.0);
  EXPECT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(EwmaTest, BlendsWithHistoryWeight) {
  Ewma e{2.0 / 3.0};
  e.update(1.0);
  e.update(0.5);
  EXPECT_NEAR(e.value(), 2.0 / 3.0 * 1.0 + 1.0 / 3.0 * 0.5, 1e-12);
}

TEST(EwmaTest, ZeroHistoryTracksLatest) {
  Ewma e{0.0};
  e.update(3.0);
  e.update(7.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
}

TEST(EwmaTest, SeedForcesValue) {
  Ewma e{0.5};
  e.seed(2.0);
  EXPECT_TRUE(e.has_value());
  e.update(4.0);
  EXPECT_DOUBLE_EQ(e.value(), 3.0);
}

TEST(EwmaTest, ClearResets) {
  Ewma e{0.5};
  e.update(1.0);
  e.clear();
  EXPECT_FALSE(e.has_value());
}

TEST(EwmaTest, StaysWithinSampleRange) {
  // Property: an EWMA of samples in [lo, hi] never leaves [lo, hi].
  Ewma e{0.8};
  double x = 0.123;
  for (int i = 0; i < 1000; ++i) {
    x = std::fmod(x * 37.0 + 0.11, 1.0);  // deterministic pseudo-samples
    e.update(x);
    EXPECT_GE(e.value(), 0.0);
    EXPECT_LE(e.value(), 1.0);
  }
}

}  // namespace
}  // namespace fourbit
