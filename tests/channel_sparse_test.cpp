// The sparse spatial channel's determinism contract: with
// use_spatial_index on (uniform grid, compressed per-sender rows,
// incremental slot repair) every observable — delivery streams, campaign
// metrics, RNG evolution — must be bit-identical to both the dense fast
// path and the slow reference path, across thread counts, under fault
// injection, tx-power changes and attach/detach churn. Also covers the
// churn-rebuild and NodeId-ceiling fixes (run under the ASan CI
// configuration).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "phy/channel.hpp"
#include "phy/hardware.hpp"
#include "phy/interference.hpp"
#include "phy/radio.hpp"
#include "runner/campaign.hpp"
#include "runner/experiment.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "topology/topology.hpp"

namespace fourbit {
namespace {

enum class Mode { kSlow, kDense, kSparse };

constexpr Mode kAllModes[] = {Mode::kSlow, Mode::kDense, Mode::kSparse};

phy::PhyConfig make_phy(Mode mode, bool batch = true) {
  phy::PhyConfig phy;
  phy.use_link_cache = mode != Mode::kSlow;
  phy.use_spatial_index = mode == Mode::kSparse;
  phy.use_batch_kernels = batch;
  return phy;
}

/// FNV-1a over every delivered byte and the full RxInfo (see
/// channel_fastpath_test.cpp): any divergence between paths changes the
/// digest.
struct DeliveryDigest {
  std::uint64_t h = 1469598103934665603ULL;

  void mix_bytes(const void* p, std::size_t len) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= b[i];
      h *= 1099511628211ULL;
    }
  }
  void mix(std::uint64_t v) { mix_bytes(&v, sizeof v); }
  void mix(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    mix(bits);
  }
  void on_delivery(NodeId to, std::span<const std::uint8_t> frame,
                   const phy::RxInfo& info) {
    mix(static_cast<std::uint64_t>(to.value()));
    mix_bytes(frame.data(), frame.size());
    mix(info.rssi.value());
    mix(info.snr_db);
    mix(static_cast<std::uint64_t>(info.lqi));
    mix(static_cast<std::uint64_t>(info.white ? 1 : 0));
    mix(static_cast<std::uint64_t>(info.fcs_ok ? 1 : 0));
  }
};

struct Pump {
  sim::Simulator sim;
  phy::Channel channel;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  DeliveryDigest digest;
  std::uint64_t deliveries = 0;

  explicit Pump(Mode mode, std::size_t n = 30, bool batch = true)
      : channel(sim, make_phy(mode, batch), phy::PropagationConfig{},
                std::make_unique<phy::NullInterference>(), sim::Rng{99}) {
    for (std::size_t i = 0; i < n; ++i) {
      // Same geometry as the fast-path suite: 30 m pitch keeps every
      // pair a reception candidate, so the sparse rows are as dense as
      // they get and the interference paths all execute.
      add_radio(i);
    }
  }

  void add_radio(std::size_t i) {
    add_radio_at(i, Position{static_cast<double>(i % 6) * 30.0,
                             static_cast<double>(i / 6) * 30.0});
  }

  void add_radio_at(std::size_t i, Position pos,
                    phy::HardwareProfile profile = {}) {
    add_radio_as(i, static_cast<std::uint16_t>(i + 1), pos, profile);
  }

  void add_radio_as(std::size_t i, std::uint16_t id, Position pos,
                    phy::HardwareProfile profile = {}) {
    if (radios.size() <= i) radios.resize(i + 1);
    radios[i] = std::make_unique<phy::Radio>(channel, NodeId{id}, pos,
                                             profile, PowerDbm{0.0});
    phy::Radio* r = radios[i].get();
    r->set_rx_handler([this, r](std::span<const std::uint8_t> frame,
                                const phy::RxInfo& info) {
      ++deliveries;
      digest.on_delivery(r->id(), frame, info);
    });
  }

  std::int64_t stagger_us = 700;

  void run_rounds(int rounds) {
    for (int round = 0; round < rounds; ++round) {
      for (std::size_t i = 0; i < radios.size(); ++i) {
        phy::Radio* r = radios[i].get();
        if (r == nullptr) continue;
        const auto at = sim.now() +
                        sim::Duration::from_us(
                            static_cast<std::int64_t>(i) * stagger_us);
        sim.schedule_at(at, [this, r, round] {
          (void)r->channel_clear();  // exercise busy_at
          if (!r->transmitting()) {
            std::vector<std::uint8_t> frame(40);
            frame[0] = static_cast<std::uint8_t>(r->id().value());
            frame[1] = static_cast<std::uint8_t>(round);
            r->transmit(std::move(frame), nullptr);
          }
        });
      }
      sim.run();
    }
  }
};

// ---- three-way delivery-stream equivalence ----------------------------

TEST(ChannelSparseTest, DeliveryStreamBitIdenticalAcrossAllThreePaths) {
  Pump sparse{Mode::kSparse};
  Pump dense{Mode::kDense};
  Pump slow{Mode::kSlow};
  sparse.run_rounds(8);
  dense.run_rounds(8);
  slow.run_rounds(8);
  EXPECT_TRUE(sparse.channel.link_cache_frozen());
  EXPECT_GT(sparse.channel.spatial_radius_m(), 0.0);
  EXPECT_EQ(dense.channel.spatial_radius_m(), 0.0);
  EXPECT_GT(sparse.deliveries, 0u);
  EXPECT_EQ(sparse.deliveries, dense.deliveries);
  EXPECT_EQ(sparse.deliveries, slow.deliveries);
  EXPECT_EQ(sparse.digest.h, dense.digest.h);
  EXPECT_EQ(sparse.digest.h, slow.digest.h);
  EXPECT_EQ(sparse.channel.frames_transmitted(),
            slow.channel.frames_transmitted());
}

TEST(ChannelSparseTest, BatchKernelsBitIdenticalOnSparsePath) {
  // Sparse rows feed the same SoA gather/batch-PRR kernels as the dense
  // matrix; on vs off must not move a single bit of the delivery stream.
  Pump batch{Mode::kSparse, 30, true};
  Pump scalar{Mode::kSparse, 30, false};
  batch.run_rounds(8);
  scalar.run_rounds(8);
  EXPECT_GT(batch.deliveries, 0u);
  EXPECT_EQ(batch.deliveries, scalar.deliveries);
  EXPECT_EQ(batch.digest.h, scalar.digest.h);
}

TEST(ChannelSparseTest, LinkOutageBitIdenticalAcrossPaths) {
  auto run = [](Mode mode, double loss) {
    Pump p{mode, 6};
    p.stagger_us = 2000;
    // Partial outage on one pair: the faulted-link RNG draw must fire in
    // the same order on every path.
    p.channel.set_link_outage(NodeId{1}, NodeId{2}, loss);
    p.run_rounds(5);
    return std::pair{p.deliveries, p.digest.h};
  };
  for (const double loss : {0.5, 1.0}) {
    const auto sparse = run(Mode::kSparse, loss);
    const auto dense = run(Mode::kDense, loss);
    const auto slow = run(Mode::kSlow, loss);
    EXPECT_GT(sparse.first, 0u);
    EXPECT_EQ(sparse, dense);
    EXPECT_EQ(sparse, slow);
  }
}

TEST(ChannelSparseTest, TxPowerChangeRederivesSparseRow) {
  Pump p{Mode::kSparse, 2};
  p.stagger_us = 2000;
  p.run_rounds(2);
  const auto before = p.deliveries;
  EXPECT_GT(before, 0u);
  EXPECT_GT(p.channel.candidate_count(*p.radios[0]), 0u);

  // Whisper: power drops below the frozen radius's assumptions from the
  // safe side — only this sender's row is re-derived, no rebuild.
  const auto rebuilds = p.channel.cache_rebuilds();
  p.radios[0]->set_tx_power(PowerDbm{-90.0});
  EXPECT_TRUE(p.channel.link_cache_frozen());
  EXPECT_EQ(p.channel.cache_rebuilds(), rebuilds);
  EXPECT_EQ(p.channel.candidate_count(*p.radios[0]), 0u);

  std::vector<std::uint8_t> frame(40, 1);
  p.radios[0]->transmit(frame, nullptr);
  p.sim.run();
  EXPECT_EQ(p.deliveries, before);

  // Back to the original power: row re-derived again, delivery resumes.
  p.radios[0]->set_tx_power(PowerDbm{0.0});
  EXPECT_TRUE(p.channel.link_cache_frozen());
  p.radios[0]->transmit(frame, nullptr);
  p.sim.run();
  EXPECT_GT(p.deliveries, before);
}

TEST(ChannelSparseTest, TxPowerAboveFrozenMaxForcesFullRebuild) {
  Pump p{Mode::kSparse, 4};
  p.stagger_us = 2000;
  p.run_rounds(1);
  EXPECT_TRUE(p.channel.link_cache_frozen());
  // Louder than the receive-floor radius was derived for: the cull
  // guarantee is void, so the cache must drop and rebuild on next use.
  p.radios[0]->set_tx_power(PowerDbm{10.0});
  EXPECT_FALSE(p.channel.link_cache_frozen());
  const auto before = p.deliveries;
  p.radios[0]->transmit(std::vector<std::uint8_t>(40, 1), nullptr);
  p.sim.run();
  EXPECT_GT(p.deliveries, before);
  EXPECT_TRUE(p.channel.link_cache_frozen());
}

// ---- churn: crash/reboot must not rebuild -----------------------------

TEST(ChannelSparseTest, ChurnReusesSlotsWithoutFullRebuild) {
  // A crash/reboot cycle at the channel level is detach (radio
  // destroyed) + attach (same id, same position — the propagation draws
  // are a pure function of both). With a frozen cache the reused slot is
  // repaired in place: the rebuild counter must stay at the initial
  // freeze, and the delivery stream must still match the slow path
  // running the same churn.
  std::uint64_t slow_digest = 0;
  std::uint64_t slow_deliveries = 0;
  for (const Mode mode : kAllModes) {
    Pump p{mode, 12};
    p.run_rounds(2);
    for (int cycle = 0; cycle < 3; ++cycle) {
      const std::size_t victim = 3 + static_cast<std::size_t>(cycle);
      p.radios[victim].reset();  // crash: detach tombstones the slot
      p.run_rounds(1);
      p.add_radio(victim);  // reboot: attach reuses the slot
      p.run_rounds(2);
    }
    if (mode == Mode::kSlow) {
      slow_digest = p.digest.h;
      slow_deliveries = p.deliveries;
      EXPECT_EQ(p.channel.cache_rebuilds(), 0u);
    } else {
      EXPECT_EQ(p.channel.cache_rebuilds(), 1u)
          << "mode " << static_cast<int>(mode)
          << " paid a full rebuild during churn";
      EXPECT_EQ(p.deliveries, slow_deliveries);
      EXPECT_EQ(p.digest.h, slow_digest);
    }
  }
}

TEST(ChannelSparseTest, ReattachAtDifferentCellStaysBitIdentical) {
  // Two clusters ~3 km apart sit in NON-adjacent grid cells (the
  // receive-floor radius, and therefore the cell size, is ~1.1 km at
  // default config). A cluster-A radio dies and a REPLACEMENT node
  // (fresh NodeId — a rebooting node must keep its position, see
  // DESIGN.md §8.8) joins at a cluster-B position, reusing the slot:
  // senders near the old position must not keep their stored links to
  // that slot (detach scrubs them), or the sparse path keeps delivering
  // to the newcomer with cluster-A gains while the new-neighborhood
  // repair never touches those rows.
  std::uint64_t slow_digest = 0;
  std::uint64_t slow_deliveries = 0;
  for (const Mode mode : kAllModes) {
    Pump p{mode, 0};
    for (std::size_t i = 0; i < 4; ++i) {
      p.add_radio_at(i, Position{static_cast<double>(i) * 40.0, 0.0});
    }
    for (std::size_t i = 4; i < 8; ++i) {
      p.add_radio_at(
          i, Position{3000.0 + static_cast<double>(i - 4) * 40.0, 0.0});
    }
    p.stagger_us = 2000;
    p.run_rounds(2);
    if (mode == Mode::kSparse) {
      // The geometry premise: clusters farther apart than two cells.
      ASSERT_GT(p.channel.spatial_radius_m(), 0.0);
      ASSERT_LT(p.channel.spatial_radius_m(), 1500.0);
    }
    p.radios[1].reset();  // node death in cluster A
    p.run_rounds(1);
    // Replacement joins inside cluster B: same slot (LIFO free list),
    // new NodeId, a cell two columns away.
    p.add_radio_as(1, 9, Position{3020.0, 0.0});
    p.run_rounds(3);
    if (mode == Mode::kSlow) {
      slow_digest = p.digest.h;
      slow_deliveries = p.deliveries;
      EXPECT_GT(p.deliveries, 0u);
    } else {
      // The cross-cell move stays incremental: scrub + new-neighborhood
      // repair, no full rebuild beyond the initial freeze.
      EXPECT_EQ(p.channel.cache_rebuilds(), 1u)
          << "mode " << static_cast<int>(mode)
          << " paid a full rebuild for a cross-cell reattach";
      EXPECT_EQ(p.deliveries, slow_deliveries);
      EXPECT_EQ(p.digest.h, slow_digest);
    }
  }
}

TEST(ChannelSparseTest, ReattachMoreSensitiveReceiverForcesFullRebuild) {
  // The frozen receive-floor radius assumed the weakest reception
  // cutoff seen at freeze time. A reused slot whose receiver is MORE
  // sensitive can hear senders beyond the 3x3 neighborhood, so the
  // sparse repair must declare the cull guarantee void (one full
  // rebuild) rather than silently diverge; the dense column walk
  // handles the same reattach incrementally.
  std::uint64_t slow_digest = 0;
  std::uint64_t slow_deliveries = 0;
  const phy::HardwareProfile sensitive{.noise_figure_offset =
                                           Decibels{-6.0}};
  for (const Mode mode : kAllModes) {
    Pump p{mode, 8};
    p.stagger_us = 2000;
    p.run_rounds(2);
    p.radios[2].reset();
    p.run_rounds(1);
    p.add_radio_at(2, Position{60.0, 0.0}, sensitive);
    if (mode == Mode::kSparse) {
      EXPECT_FALSE(p.channel.link_cache_frozen());
    }
    p.run_rounds(3);
    if (mode == Mode::kSlow) {
      slow_digest = p.digest.h;
      slow_deliveries = p.deliveries;
      EXPECT_GT(p.deliveries, 0u);
    } else {
      EXPECT_EQ(p.channel.cache_rebuilds(),
                mode == Mode::kSparse ? 2u : 1u);
      EXPECT_EQ(p.deliveries, slow_deliveries);
      EXPECT_EQ(p.digest.h, slow_digest);
    }
  }
}

TEST(ChannelSparseTest, DetachedSenderMidFlightIsTombstoned) {
  for (const Mode mode : kAllModes) {
    sim::Simulator sim;
    phy::Channel channel{sim, make_phy(mode), phy::PropagationConfig{},
                         std::make_unique<phy::NullInterference>(),
                         sim::Rng{5}};
    phy::Radio b{channel, NodeId{2}, {5.0, 0.0}, phy::HardwareProfile{},
                 PowerDbm{0.0}};
    std::uint64_t received = 0;
    b.set_rx_handler([&](std::span<const std::uint8_t>,
                         const phy::RxInfo&) { ++received; });
    auto a = std::make_unique<phy::Radio>(channel, NodeId{1},
                                          Position{0.0, 0.0},
                                          phy::HardwareProfile{},
                                          PowerDbm{0.0});
    a->transmit(std::vector<std::uint8_t>(60, 1), nullptr);
    a.reset();  // sender dies mid-frame
    EXPECT_TRUE(b.channel_clear());  // busy_at must not touch the corpse
    sim.run();
    EXPECT_EQ(received, 0u);
  }
}

TEST(ChannelSparseTest, DetachedReceiverMidFlightIsScrubbed) {
  for (const Mode mode : kAllModes) {
    sim::Simulator sim;
    phy::Channel channel{sim, make_phy(mode), phy::PropagationConfig{},
                         std::make_unique<phy::NullInterference>(),
                         sim::Rng{5}};
    phy::Radio a{channel, NodeId{1}, {0.0, 0.0}, phy::HardwareProfile{},
                 PowerDbm{0.0}};
    auto b = std::make_unique<phy::Radio>(channel, NodeId{2},
                                          Position{5.0, 0.0},
                                          phy::HardwareProfile{},
                                          PowerDbm{0.0});
    b->set_rx_handler([](std::span<const std::uint8_t>, const phy::RxInfo&) {
      FAIL() << "delivery to a destroyed radio";
    });
    a.transmit(std::vector<std::uint8_t>(60, 1), nullptr);
    b.reset();  // receiver dies while the frame is in the air
    sim.run();  // must not deliver into freed memory
  }
}

// ---- candidate_count: introspection must not allocate -----------------

TEST(ChannelSparseTest, CandidateCountSlowPathDoesNotBuildCache) {
  Pump slow{Mode::kSlow, 10};
  // The bug this pins down: candidate_count used to call ensure_cache()
  // unconditionally, so a slow-path introspection call silently
  // allocated the N x N arrays and mutated channel state.
  const std::size_t count = slow.channel.candidate_count(*slow.radios[0]);
  EXPECT_GT(count, 0u);
  EXPECT_FALSE(slow.channel.link_cache_frozen());
  EXPECT_EQ(slow.channel.cache_rebuilds(), 0u);

  Pump dense{Mode::kDense, 10};
  Pump sparse{Mode::kSparse, 10};
  EXPECT_EQ(dense.channel.candidate_count(*dense.radios[0]), count);
  EXPECT_EQ(sparse.channel.candidate_count(*sparse.radios[0]), count);
}

// ---- NodeId ceiling guards --------------------------------------------

TEST(ChannelSparseTest, AttachRejectsReservedNodeIds) {
  sim::Simulator sim;
  phy::Channel channel{sim, make_phy(Mode::kSparse),
                       phy::PropagationConfig{},
                       std::make_unique<phy::NullInterference>(),
                       sim::Rng{5}};
  ScopedAssertHandler guard{throwing_assert_handler};
  EXPECT_THROW(phy::Radio(channel, kInvalidNodeId, Position{0.0, 0.0},
                          phy::HardwareProfile{}, PowerDbm{0.0}),
               AssertionError);
  EXPECT_THROW(phy::Radio(channel, kBroadcastId, Position{0.0, 0.0},
                          phy::HardwareProfile{}, PowerDbm{0.0}),
               AssertionError);
}

// ---- experiment / campaign equivalence --------------------------------

topology::Testbed small_testbed(Mode mode) {
  sim::Rng rng{12};
  topology::Testbed tb;
  tb.topology = topology::grid(5, 5, 20.0, 2.0, rng);
  tb.environment.phy.use_link_cache = mode != Mode::kSlow;
  tb.environment.phy.use_spatial_index = mode == Mode::kSparse;
  return tb;
}

void expect_identical(const runner::ExperimentResult& a,
                      const runner::ExperimentResult& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.data_tx, b.data_tx);
  EXPECT_EQ(a.beacon_tx, b.beacon_tx);
  EXPECT_EQ(a.radio_frames, b.radio_frames);
  EXPECT_EQ(a.retx_drops, b.retx_drops);
  EXPECT_EQ(a.queue_drops, b.queue_drops);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.parent_changes, b.parent_changes);
  EXPECT_EQ(a.cost, b.cost);                      // exact, not Near:
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);  // bit-identical paths
  EXPECT_EQ(a.mean_depth, b.mean_depth);
  EXPECT_EQ(a.per_node_delivery, b.per_node_delivery);
}

runner::ExperimentConfig small_config(Mode mode, std::uint64_t seed) {
  runner::ExperimentConfig cfg;
  cfg.testbed = small_testbed(mode);
  cfg.profile = runner::Profile::kFourBit;
  cfg.duration = sim::Duration::from_minutes(5.0);
  cfg.seed = seed;
  return cfg;
}

TEST(ChannelSparseTest, ExperimentMetricsBitIdenticalAcrossPaths) {
  const auto sparse = runner::run_experiment(small_config(Mode::kSparse, 3));
  const auto dense = runner::run_experiment(small_config(Mode::kDense, 3));
  EXPECT_GT(sparse.generated, 0u);
  EXPECT_GT(sparse.delivery_ratio, 0.5);
  expect_identical(sparse, dense);
}

TEST(ChannelSparseTest, ExperimentWithFaultsBitIdenticalAcrossPaths) {
  auto make = [](Mode mode) {
    auto cfg = small_config(mode, 9);
    cfg.faults.node_crashes = 2;
    cfg.faults.crash_downtime = sim::Duration::from_seconds(60.0);
    cfg.faults.link_outages = 2;
    cfg.faults.outage_duration = sim::Duration::from_seconds(30.0);
    cfg.faults.window_start = sim::Time::from_us(60'000'000);
    cfg.faults.window_end = sim::Time::from_us(180'000'000);
    return cfg;
  };
  const auto sparse = runner::run_experiment(make(Mode::kSparse));
  const auto slow = runner::run_experiment(make(Mode::kSlow));
  EXPECT_GT(sparse.node_crashes, 0u);
  EXPECT_GT(sparse.link_outages, 0u);
  expect_identical(sparse, slow);
  EXPECT_EQ(sparse.node_crashes, slow.node_crashes);
  EXPECT_EQ(sparse.link_outages, slow.link_outages);
  EXPECT_EQ(sparse.delivery_during_outage, slow.delivery_during_outage);
}

TEST(ChannelSparseTest, CampaignBitIdenticalAcrossPathsAndThreads) {
  auto trials = [](Mode mode) {
    return runner::Campaign::seed_sweep(small_config(mode, 21), 3);
  };
  runner::Campaign::Options one;
  one.threads = 1;
  runner::Campaign::Options four;
  four.threads = 4;

  const auto sparse1 = runner::Campaign::run(trials(Mode::kSparse), one);
  const auto sparse4 = runner::Campaign::run(trials(Mode::kSparse), four);
  const auto dense1 = runner::Campaign::run(trials(Mode::kDense), one);
  ASSERT_EQ(sparse1.size(), 3u);
  for (std::size_t i = 0; i < sparse1.size(); ++i) {
    expect_identical(sparse1[i], sparse4[i]);  // threads don't matter
    expect_identical(sparse1[i], dense1[i]);   // the path doesn't matter
  }
}

}  // namespace
}  // namespace fourbit
