// Tests of the metrics/statistics module.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/aggregate.hpp"
#include "stats/metrics.hpp"
#include "stats/summary.hpp"
#include "stats/time_series.hpp"

namespace fourbit::stats {
namespace {

// ---- Metrics -------------------------------------------------------------

TEST(MetricsTest, CostIsTxPerUniqueDelivered) {
  Metrics m;
  m.on_generated(NodeId{1}, 0);
  m.on_generated(NodeId{1}, 1);
  for (int i = 0; i < 6; ++i) m.on_data_tx(NodeId{1});
  m.on_delivered(NodeId{1}, 0);
  m.on_delivered(NodeId{1}, 1);
  EXPECT_DOUBLE_EQ(m.cost(), 3.0);
}

TEST(MetricsTest, DuplicateDeliveriesCountOnce) {
  Metrics m;
  m.on_generated(NodeId{1}, 0);
  m.on_delivered(NodeId{1}, 0);
  m.on_delivered(NodeId{1}, 0);
  EXPECT_EQ(m.delivered_unique_total(), 1u);
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 1.0);
}

TEST(MetricsTest, DeliveryRatioAggregates) {
  Metrics m;
  for (std::uint16_t s = 0; s < 10; ++s) m.on_generated(NodeId{1}, s);
  for (std::uint16_t s = 0; s < 5; ++s) m.on_delivered(NodeId{1}, s);
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 0.5);
}

TEST(MetricsTest, PerNodeDeliverySeparatesOrigins) {
  Metrics m;
  m.on_generated(NodeId{1}, 0);
  m.on_delivered(NodeId{1}, 0);
  m.on_generated(NodeId{2}, 0);
  m.on_generated(NodeId{2}, 1);
  m.on_delivered(NodeId{2}, 0);
  auto v = m.per_node_delivery();
  std::sort(v.begin(), v.end());
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 0.5);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
}

TEST(MetricsTest, ZeroGeneratedIsZeroRatio) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.cost(), 0.0);
}

TEST(MetricsTest, DepthSamplesAverage) {
  Metrics m;
  m.record_depth_sample(1.0);
  m.record_depth_sample(2.0);
  m.record_depth_sample(3.0);
  EXPECT_DOUBLE_EQ(m.average_depth(), 2.0);
  Metrics empty;
  EXPECT_DOUBLE_EQ(empty.average_depth(), 0.0);
}

TEST(MetricsTest, DropCounters) {
  Metrics m;
  m.on_retx_drop(NodeId{1});
  m.on_queue_drop(NodeId{1});
  m.on_queue_drop(NodeId{2});
  m.on_duplicate_rx(NodeId{3});
  m.on_beacon_tx(NodeId{1});
  EXPECT_EQ(m.retx_drops(), 1u);
  EXPECT_EQ(m.queue_drops(), 2u);
  EXPECT_EQ(m.duplicate_rx(), 1u);
  EXPECT_EQ(m.beacon_tx_total(), 1u);
}

// ---- 16-bit sequence wrap ------------------------------------------------

TEST(MetricsTest, SequenceWrapDoesNotCollapseDeliveries) {
  // An origin that generates more than 65536 packets wraps its 16-bit
  // seq; deliveries from different epochs must not dedup against each
  // other.
  Metrics m;
  const std::uint64_t total = 70'000;
  for (std::uint64_t i = 0; i < total; ++i) {
    const auto seq = static_cast<std::uint16_t>(i & 0xFFFF);
    m.on_generated(NodeId{1}, seq);
    m.on_delivered(NodeId{1}, seq);
  }
  EXPECT_EQ(m.delivered_unique_total(), total);
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 1.0);
}

TEST(MetricsTest, DuplicateAcrossWrapBoundaryCountsOnce) {
  Metrics m;
  m.on_generated(NodeId{1}, 65535);
  m.on_generated(NodeId{1}, 0);
  m.on_delivered(NodeId{1}, 65535);
  m.on_delivered(NodeId{1}, 0);  // next epoch
  m.on_delivered(NodeId{1}, 0);  // retransmission duplicate
  EXPECT_EQ(m.delivered_unique_total(), 2u);
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 1.0);
}

TEST(MetricsTest, ReorderedDeliveryNearWrapBoundary) {
  Metrics m;
  for (const std::uint16_t seq : {65534, 65535, 0, 1}) {
    m.on_generated(NodeId{1}, seq);
  }
  // Arrivals out of order around the wrap: the late pre-wrap packet must
  // land in the old epoch, not 65536 packets into the future.
  m.on_delivered(NodeId{1}, 65535);
  m.on_delivered(NodeId{1}, 0);
  m.on_delivered(NodeId{1}, 65534);  // late, from before the wrap
  m.on_delivered(NodeId{1}, 1);
  m.on_delivered(NodeId{1}, 65534);  // duplicate of the late one
  EXPECT_EQ(m.delivered_unique_total(), 4u);
  EXPECT_DOUBLE_EQ(m.delivery_ratio(), 1.0);
}

// ---- five-number summary ------------------------------------------------------

TEST(SummaryTest, KnownDistribution) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const auto s = five_number_summary(xs);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(SummaryTest, UnsortedInputHandled) {
  const std::vector<double> xs{5, 1, 3, 2, 4};
  const auto s = five_number_summary(xs);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(SummaryTest, SingleElement) {
  const auto s = five_number_summary({7.0});
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(SummaryTest, EmptyIsZeros) {
  const auto s = five_number_summary({});
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(SummaryTest, QuantileInterpolates) {
  const std::vector<double> sorted{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 0.0);
}

// ---- Aggregate ------------------------------------------------------------

TEST(AggregateTest, KnownSample) {
  const auto a = Aggregate::of({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(a.n, 5u);
  EXPECT_DOUBLE_EQ(a.mean, 3.0);
  EXPECT_NEAR(a.stddev, std::sqrt(2.5), 1e-12);            // sample stddev
  EXPECT_NEAR(a.ci95_half, 1.96 * std::sqrt(2.5 / 5.0), 1e-12);
  EXPECT_DOUBLE_EQ(a.quartiles.min, 1.0);
  EXPECT_DOUBLE_EQ(a.quartiles.q1, 2.0);
  EXPECT_DOUBLE_EQ(a.quartiles.median, 3.0);
  EXPECT_DOUBLE_EQ(a.quartiles.q3, 4.0);
  EXPECT_DOUBLE_EQ(a.quartiles.max, 5.0);
  EXPECT_NEAR(a.ci_hi() - a.ci_lo(), 2.0 * a.ci95_half, 1e-12);
}

TEST(AggregateTest, EmptyAndSingleton) {
  const auto empty = Aggregate::of({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.stddev, 0.0);

  const auto one = Aggregate::of({7.0});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);  // undefined for n=1: reported as 0
  EXPECT_DOUBLE_EQ(one.ci95_half, 0.0);
  EXPECT_DOUBLE_EQ(one.quartiles.median, 7.0);
}

TEST(AggregateTest, ConstantSampleHasZeroSpread) {
  const auto a = Aggregate::of({2.0, 2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(a.mean, 2.0);
  EXPECT_DOUBLE_EQ(a.stddev, 0.0);
  EXPECT_DOUBLE_EQ(a.ci95_half, 0.0);
}

// ---- BinnedSeries ---------------------------------------------------------------

TEST(BinnedSeriesTest, BinsByTime) {
  BinnedSeries s{sim::Duration::from_seconds(10.0)};
  s.add(sim::Time::from_us(1'000'000), 1.0);    // bin 0
  s.add(sim::Time::from_us(9'000'000), 3.0);    // bin 0
  s.add(sim::Time::from_us(15'000'000), 10.0);  // bin 1
  EXPECT_EQ(s.bins(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(0), 2.0);
  EXPECT_DOUBLE_EQ(s.mean(1), 10.0);
  EXPECT_EQ(s.count(0), 2u);
  EXPECT_EQ(s.count(1), 1u);
}

TEST(BinnedSeriesTest, EmptyBinUsesFallback) {
  BinnedSeries s{sim::Duration::from_seconds(1.0)};
  s.add(sim::Time::from_us(5'000'000), 2.0);  // bin 5; bins 0-4 empty
  EXPECT_DOUBLE_EQ(s.mean(2, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(s.mean(99, -1.0), -1.0);
}

TEST(BinnedSeriesTest, BinStartSeconds) {
  BinnedSeries s{sim::Duration::from_minutes(10.0)};
  EXPECT_DOUBLE_EQ(s.bin_start_seconds(3), 1800.0);
}

// ---- fault / recovery metrics --------------------------------------------

namespace {
sim::Time at_s(double s) {
  return sim::Time::from_us(static_cast<std::int64_t>(s * 1e6));
}
}  // namespace

TEST(MetricsRecoveryTest, RerouteSampleSpansLossToRestore) {
  Metrics m;
  m.on_route_lost(NodeId{1}, at_s(10.0));
  m.on_route_lost(NodeId{1}, at_s(12.0));  // already outstanding: ignored
  m.on_route_restored(NodeId{1}, at_s(25.0));
  EXPECT_EQ(m.route_losses(), 1u);
  EXPECT_EQ(m.reroute_count(), 1u);
  EXPECT_DOUBLE_EQ(m.mean_time_to_reroute_s(), 15.0);
  EXPECT_DOUBLE_EQ(m.max_time_to_reroute_s(), 15.0);
}

TEST(MetricsRecoveryTest, BackDatedLossExtendsTheSample) {
  // Dead-parent eviction discovers the loss late and back-dates it to
  // the start of the failure streak.
  Metrics m;
  m.on_route_lost(NodeId{1}, at_s(8.0));  // back-dated
  m.on_route_restored(NodeId{1}, at_s(10.0));
  EXPECT_DOUBLE_EQ(m.mean_time_to_reroute_s(), 2.0);
}

TEST(MetricsRecoveryTest, CrashDiscardsOutstandingLoss) {
  // A crashed node's downtime is not a reroute; only live nodes steering
  // around damage contribute samples.
  Metrics m;
  m.on_route_lost(NodeId{1}, at_s(10.0));
  m.on_node_crashed(NodeId{1}, at_s(11.0));
  m.on_route_restored(NodeId{1}, at_s(300.0));
  EXPECT_EQ(m.reroute_count(), 0u);
  EXPECT_EQ(m.node_crashes(), 1u);
}

TEST(MetricsRecoveryTest, FirstRouteAnchorsOnColdBoot) {
  Metrics m;
  m.on_node_started(NodeId{1}, at_s(5.0));
  m.on_route_restored(NodeId{1}, at_s(20.0));
  // The reboot's second start and route must not move the number.
  m.on_node_started(NodeId{1}, at_s(90.0));
  m.on_route_lost(NodeId{1}, at_s(90.0));
  m.on_route_restored(NodeId{1}, at_s(95.0));
  EXPECT_DOUBLE_EQ(m.mean_time_to_first_route_s(), 15.0);
}

TEST(MetricsRecoveryTest, OutagePhasesSplitDelivery) {
  Metrics m;
  m.add_outage_window(at_s(100.0), at_s(200.0));
  m.on_generated(NodeId{1}, 0, at_s(50.0));   // normal
  m.on_generated(NodeId{1}, 1, at_s(150.0));  // during
  m.on_generated(NodeId{1}, 2, at_s(199.0));  // during
  m.on_generated(NodeId{1}, 3, at_s(250.0));  // post (after last window)
  m.on_delivered(NodeId{1}, 1);
  m.on_delivered(NodeId{1}, 3);
  EXPECT_EQ(m.generated_during_outage(), 2u);
  EXPECT_EQ(m.generated_post_outage(), 1u);
  EXPECT_DOUBLE_EQ(m.delivery_during_outage(), 0.5);
  EXPECT_DOUBLE_EQ(m.delivery_post_outage(), 1.0);
}

TEST(MetricsRecoveryTest, NoWindowsMeansNoPhases) {
  Metrics m;
  m.on_generated(NodeId{1}, 0, at_s(50.0));
  m.on_delivered(NodeId{1}, 0);
  EXPECT_EQ(m.generated_during_outage(), 0u);
  EXPECT_EQ(m.generated_post_outage(), 0u);
  EXPECT_DOUBLE_EQ(m.delivery_during_outage(), 0.0);
  EXPECT_DOUBLE_EQ(m.delivery_post_outage(), 0.0);
}

TEST(MetricsRecoveryTest, TableRefillAveragesAndCounts) {
  Metrics m;
  m.on_table_refill(NodeId{1}, sim::Duration::from_seconds(4.0));
  m.on_table_refill(NodeId{2}, sim::Duration::from_seconds(8.0));
  EXPECT_EQ(m.table_refill_count(), 2u);
  EXPECT_DOUBLE_EQ(m.mean_table_refill_s(), 6.0);
  m.on_pin_refusal(NodeId{3});
  m.on_node_rebooted(NodeId{1}, at_s(1.0));
  EXPECT_EQ(m.pin_refusals(), 1u);
  EXPECT_EQ(m.node_reboots(), 1u);
}

}  // namespace
}  // namespace fourbit::stats
