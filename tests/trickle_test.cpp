// Tests of the Trickle timer: interval doubling, reset semantics,
// suppression, and firing-window placement.
#include <gtest/gtest.h>

#include <vector>

#include "net/trickle.hpp"
#include "sim/simulator.hpp"

namespace fourbit::net {
namespace {

TrickleConfig fast_config() {
  TrickleConfig cfg;
  cfg.min_interval = sim::Duration::from_ms(100);
  cfg.max_interval = sim::Duration::from_seconds(10.0);
  return cfg;
}

TEST(TrickleTest, FiresWithinEachIntervalWindow) {
  sim::Simulator sim;
  std::vector<std::int64_t> fire_times;
  TrickleTimer t{sim, fast_config(),
                 [&] { fire_times.push_back(sim.now().us()); },
                 sim::Rng{1}};
  t.start();
  sim.run_for(sim::Duration::from_ms(100));
  ASSERT_EQ(fire_times.size(), 1u);
  // First interval is [0, 100ms]; firing point in [50ms, 100ms].
  EXPECT_GE(fire_times[0], 50'000);
  EXPECT_LE(fire_times[0], 100'000);
}

TEST(TrickleTest, IntervalDoublesUpToMax) {
  sim::Simulator sim;
  int fires = 0;
  TrickleTimer t{sim, fast_config(), [&] { ++fires; }, sim::Rng{2}};
  t.start();
  // Intervals: 0.1, 0.2, 0.4, ... capped at 10 s. In 60 s there are
  // ~7 doubling fires plus ~5 at the 10 s ceiling.
  sim.run_for(sim::Duration::from_seconds(60.0));
  EXPECT_GE(fires, 10);
  EXPECT_LE(fires, 14);
  EXPECT_EQ(t.current_interval().us(),
            fast_config().max_interval.us());
}

TEST(TrickleTest, ResetReturnsToMinInterval) {
  sim::Simulator sim;
  int fires = 0;
  TrickleTimer t{sim, fast_config(), [&] { ++fires; }, sim::Rng{3}};
  t.start();
  sim.run_for(sim::Duration::from_seconds(60.0));
  const int before = fires;
  t.reset();
  EXPECT_EQ(t.current_interval().us(), fast_config().min_interval.us());
  sim.run_for(sim::Duration::from_seconds(2.0));
  EXPECT_GE(fires - before, 3) << "post-reset beacons must come quickly";
}

TEST(TrickleTest, ResetAtMinIntervalIsNoOp) {
  sim::Simulator sim;
  std::vector<std::int64_t> fire_times;
  TrickleTimer t{sim, fast_config(),
                 [&] { fire_times.push_back(sim.now().us()); },
                 sim::Rng{4}};
  t.start();
  sim.run_for(sim::Duration::from_ms(20));
  t.reset();  // still in the first (minimum) interval: must not re-arm
  sim.run_for(sim::Duration::from_ms(80));
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_LE(fire_times[0], 100'000);
}

TEST(TrickleTest, SuppressionSkipsFiring) {
  sim::Simulator sim;
  TrickleConfig cfg = fast_config();
  cfg.redundancy_k = 2;
  int fires = 0;
  TrickleTimer t{sim, cfg, [&] { ++fires; }, sim::Rng{5}};
  t.start();
  // Keep the suppression counter above k in every interval.
  sim::Timer feeder{sim, [&] { t.consistent(); }};
  feeder.start_periodic(sim::Duration::from_ms(10));
  sim.run_for(sim::Duration::from_seconds(5.0));
  EXPECT_EQ(fires, 0);
  EXPECT_GT(t.suppressions(), 0u);
}

TEST(TrickleTest, BelowThresholdStillFires) {
  sim::Simulator sim;
  TrickleConfig cfg = fast_config();
  cfg.redundancy_k = 100;  // never reached by one consistent() per interval
  int fires = 0;
  TrickleTimer t{sim, cfg, [&] { ++fires; }, sim::Rng{6}};
  t.start();
  sim.run_for(sim::Duration::from_seconds(2.0));
  EXPECT_GT(fires, 0);
}

TEST(TrickleTest, StopHaltsFiring) {
  sim::Simulator sim;
  int fires = 0;
  TrickleTimer t{sim, fast_config(), [&] { ++fires; }, sim::Rng{7}};
  t.start();
  sim.run_for(sim::Duration::from_seconds(1.0));
  const int before = fires;
  t.stop();
  sim.run_for(sim::Duration::from_seconds(10.0));
  EXPECT_EQ(fires, before);
  EXPECT_FALSE(t.running());
}

TEST(TrickleTest, SetMaxIntervalCapsGrowth) {
  sim::Simulator sim;
  int fires = 0;
  TrickleTimer t{sim, fast_config(), [&] { ++fires; }, sim::Rng{8}};
  t.start();
  t.set_max_interval(sim::Duration::from_ms(400));
  sim.run_for(sim::Duration::from_seconds(30.0));
  EXPECT_LE(t.current_interval().us(), 400'000);
  // ~2 fires during doubling + ~1 per 400 ms after: ~70+.
  EXPECT_GT(fires, 50);
}

TEST(TrickleTest, RestartResetsState) {
  sim::Simulator sim;
  int fires = 0;
  TrickleTimer t{sim, fast_config(), [&] { ++fires; }, sim::Rng{9}};
  t.start();
  sim.run_for(sim::Duration::from_seconds(30.0));
  t.start();  // restart
  EXPECT_EQ(t.current_interval().us(), fast_config().min_interval.us());
}

}  // namespace
}  // namespace fourbit::net
