// Tests of the MAC layer: frame formats and CSMA/CA with synchronous acks.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/csma.hpp"
#include "mac/frame.hpp"
#include "phy/channel.hpp"
#include "phy/interference.hpp"
#include "sim/simulator.hpp"

namespace fourbit::mac {
namespace {

// ---- MacFrame -------------------------------------------------------------

TEST(MacFrameTest, DataRoundTrip) {
  MacFrame f;
  f.type = FrameType::kData;
  f.dsn = 77;
  f.src = NodeId{10};
  f.dst = NodeId{20};
  f.payload = {1, 2, 3, 4, 5};
  const auto bytes = f.encode();
  EXPECT_EQ(bytes.size(),
            MacFrame::kDataHeaderBytes + 5 + MacFrame::kFcsBytes);
  const auto decoded = MacFrame::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, FrameType::kData);
  EXPECT_EQ(decoded->dsn, 77);
  EXPECT_EQ(decoded->src, NodeId{10});
  EXPECT_EQ(decoded->dst, NodeId{20});
  EXPECT_EQ(decoded->payload, f.payload);
}

TEST(MacFrameTest, AckRoundTrip) {
  MacFrame f;
  f.type = FrameType::kAck;
  f.dsn = 200;
  f.dst = NodeId{33};
  const auto bytes = f.encode();
  EXPECT_EQ(bytes.size(), MacFrame::kAckFrameBytes);
  const auto decoded = MacFrame::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, FrameType::kAck);
  EXPECT_EQ(decoded->dsn, 200);
  EXPECT_EQ(decoded->dst, NodeId{33});
}

TEST(MacFrameTest, EmptyPayloadAllowed) {
  MacFrame f;
  f.type = FrameType::kData;
  f.src = NodeId{1};
  f.dst = kBroadcastId;
  const auto decoded = MacFrame::decode(f.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
  EXPECT_TRUE(decoded->is_broadcast());
}

TEST(MacFrameTest, TruncatedFrameRejected) {
  const std::vector<std::uint8_t> bytes{0x00, 0x01, 0x02};  // too short
  EXPECT_FALSE(MacFrame::decode(bytes).has_value());
}

TEST(MacFrameTest, UnknownTypeRejected) {
  const std::vector<std::uint8_t> bytes{0x7F, 0, 0, 1, 0, 2};
  EXPECT_FALSE(MacFrame::decode(bytes).has_value());
}

// ---- MacFrameView (zero-copy decode) --------------------------------------

TEST(MacFrameViewTest, ViewMatchesOwnedDecode) {
  MacFrame f;
  f.type = FrameType::kData;
  f.dsn = 42;
  f.src = NodeId{3};
  f.dst = NodeId{9};
  f.payload = {10, 20, 30};
  const auto bytes = f.encode();
  const auto view = MacFrameView::decode(bytes);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->type, f.type);
  EXPECT_EQ(view->dsn, f.dsn);
  EXPECT_EQ(view->src, f.src);
  EXPECT_EQ(view->dst, f.dst);
  EXPECT_EQ(view->to_owned().payload, f.payload);
  // The whole point: the payload span aliases the input buffer, no copy.
  EXPECT_EQ(view->payload.data(), bytes.data() + MacFrame::kDataHeaderBytes);
  EXPECT_EQ(view->payload.size(), f.payload.size());
}

TEST(MacFrameViewTest, BadFcsRejected) {
  MacFrame f;
  f.type = FrameType::kData;
  f.src = NodeId{1};
  f.dst = NodeId{2};
  f.payload = {5, 6, 7};
  auto bytes = f.encode();
  bytes[3] ^= 0xFF;  // corrupt a header byte; FCS no longer matches
  EXPECT_FALSE(MacFrameView::decode(bytes).has_value());
  EXPECT_FALSE(MacFrame::decode(bytes).has_value());
}

// ---- CsmaMac ----------------------------------------------------------------

class MacFixture : public ::testing::Test {
 protected:
  MacFixture() {
    phy::PropagationConfig prop;
    prop.shadowing_sigma_db = 0.0;
    prop.asymmetry_sigma_db = 0.0;
    channel_ = std::make_unique<phy::Channel>(
        sim_, phy::PhyConfig{}, prop,
        std::make_unique<phy::NullInterference>(), sim::Rng{5});
  }

  struct Node {
    std::unique_ptr<phy::Radio> radio;
    std::unique_ptr<CsmaMac> mac;
  };

  Node make_node(std::uint16_t id, double x) {
    Node n;
    n.radio = std::make_unique<phy::Radio>(*channel_, NodeId{id},
                                           Position{x, 0.0},
                                           phy::HardwareProfile{},
                                           PowerDbm{0.0});
    n.mac = std::make_unique<CsmaMac>(sim_, *n.radio, CsmaConfig{},
                                      sim::Rng{id});
    return n;
  }

  sim::Simulator sim_;
  std::unique_ptr<phy::Channel> channel_;
};

TEST_F(MacFixture, UnicastDeliversAndAcks) {
  Node a = make_node(1, 0.0);
  Node b = make_node(2, 5.0);
  int delivered = 0;
  b.mac->set_rx_handler([&](NodeId src, std::uint8_t,
                            std::span<const std::uint8_t> payload,
                            const phy::RxInfo&) {
    ++delivered;
    EXPECT_EQ(src, NodeId{1});
    EXPECT_EQ(payload.size(), 8u);
  });
  bool acked = false;
  const std::vector<std::uint8_t> payload(8, 0x11);
  a.mac->send(NodeId{2}, payload,
              [&](const TxResult& r) { acked = r.acked; });
  sim_.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(acked);
}

TEST_F(MacFixture, BroadcastDeliversToAllWithoutAck) {
  Node a = make_node(1, 0.0);
  Node b = make_node(2, 5.0);
  Node c = make_node(3, -5.0);
  int delivered = 0;
  const auto count = [&](NodeId, std::uint8_t, std::span<const std::uint8_t>,
                         const phy::RxInfo&) { ++delivered; };
  b.mac->set_rx_handler(count);
  c.mac->set_rx_handler(count);
  bool done = false;
  bool acked = true;
  a.mac->send(kBroadcastId, std::vector<std::uint8_t>(4, 1),
              [&](const TxResult& r) {
                done = true;
                acked = r.acked;
              });
  sim_.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_TRUE(done);
  EXPECT_FALSE(acked);  // broadcasts are never acked
}

TEST_F(MacFixture, UnicastToAbsentNodeTimesOut) {
  Node a = make_node(1, 0.0);
  bool done = false;
  bool acked = true;
  a.mac->send(NodeId{99}, std::vector<std::uint8_t>(4, 1),
              [&](const TxResult& r) {
                done = true;
                acked = r.acked;
              });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(acked);
}

TEST_F(MacFixture, UnicastNotForUsIsFiltered) {
  Node a = make_node(1, 0.0);
  Node b = make_node(2, 5.0);
  Node c = make_node(3, -5.0);
  int c_got = 0;
  c.mac->set_rx_handler([&](NodeId, std::uint8_t,
                            std::span<const std::uint8_t>,
                            const phy::RxInfo&) { ++c_got; });
  b.mac->set_rx_handler([](NodeId, std::uint8_t, std::span<const std::uint8_t>,
                           const phy::RxInfo&) {});
  a.mac->send(NodeId{2}, std::vector<std::uint8_t>(4, 1), nullptr);
  sim_.run();
  EXPECT_EQ(c_got, 0);
}

TEST_F(MacFixture, QueueServicesInFifoOrder) {
  Node a = make_node(1, 0.0);
  Node b = make_node(2, 5.0);
  std::vector<int> order;
  b.mac->set_rx_handler([&](NodeId, std::uint8_t,
                            std::span<const std::uint8_t> payload,
                            const phy::RxInfo&) {
    order.push_back(payload[0]);
  });
  for (int i = 0; i < 5; ++i) {
    a.mac->send(NodeId{2}, std::vector<std::uint8_t>(1, i), nullptr);
  }
  EXPECT_EQ(a.mac->queue_depth(), 5u);
  sim_.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(a.mac->queue_depth(), 0u);
}

TEST_F(MacFixture, DsnIncrementsPerFrame) {
  Node a = make_node(1, 0.0);
  Node b = make_node(2, 5.0);
  std::vector<int> dsns;
  b.mac->set_rx_handler([&](NodeId, std::uint8_t dsn,
                            std::span<const std::uint8_t>,
                            const phy::RxInfo&) { dsns.push_back(dsn); });
  for (int i = 0; i < 3; ++i) {
    a.mac->send(NodeId{2}, std::vector<std::uint8_t>(1, 0), nullptr);
  }
  sim_.run();
  ASSERT_EQ(dsns.size(), 3u);
  EXPECT_EQ(dsns[1], (dsns[0] + 1) % 256);
  EXPECT_EQ(dsns[2], (dsns[0] + 2) % 256);
}

TEST_F(MacFixture, TxListenerSeesDataAndAcks) {
  Node a = make_node(1, 0.0);
  Node b = make_node(2, 5.0);
  int data_frames = 0;
  int ack_frames = 0;
  const auto classify = [&](const MacFrame& f) {
    (f.type == FrameType::kData ? data_frames : ack_frames) += 1;
  };
  a.mac->set_tx_listener(classify);
  b.mac->set_tx_listener(classify);
  a.mac->send(NodeId{2}, std::vector<std::uint8_t>(4, 1), nullptr);
  sim_.run();
  EXPECT_EQ(data_frames, 1);
  EXPECT_EQ(ack_frames, 1);
}

TEST_F(MacFixture, BackoffDefersToBusyChannel) {
  Node a = make_node(1, 0.0);
  Node b = make_node(2, 5.0);
  Node blocker = make_node(3, 2.0);

  int delivered = 0;
  b.mac->set_rx_handler([&](NodeId, std::uint8_t,
                            std::span<const std::uint8_t>,
                            const phy::RxInfo&) { ++delivered; });

  // A long frame occupies the channel; a's CSMA must wait it out rather
  // than collide (the blocker is loud at both a and b).
  blocker.radio->transmit(std::vector<std::uint8_t>(120, 9), nullptr);
  a.mac->send(NodeId{2}, std::vector<std::uint8_t>(8, 1), nullptr);
  sim_.run();
  EXPECT_EQ(delivered, 1);
}

TEST_F(MacFixture, ConcurrentSendersBothSucceed) {
  // CSMA serializes two simultaneous senders in range of each other.
  Node a = make_node(1, 0.0);
  Node b = make_node(2, 5.0);
  Node c = make_node(3, 2.5);
  int delivered = 0;
  c.mac->set_rx_handler([&](NodeId, std::uint8_t,
                            std::span<const std::uint8_t>,
                            const phy::RxInfo&) { ++delivered; });
  int acks = 0;
  const auto on_done = [&](const TxResult& r) {
    if (r.acked) ++acks;
  };
  for (int i = 0; i < 10; ++i) {
    a.mac->send(NodeId{3}, std::vector<std::uint8_t>(20, 1), on_done);
    b.mac->send(NodeId{3}, std::vector<std::uint8_t>(20, 2), on_done);
  }
  sim_.run();
  // CSMA serializes almost everything; the occasional simultaneous
  // backoff expiry can still collide, so allow a small loss.
  EXPECT_GE(delivered, 18);
  EXPECT_GE(acks, 18);
  EXPECT_EQ(delivered, acks);
}

TEST_F(MacFixture, LossyLinkYieldsMixedAckResults) {
  // Move b to the PRR gray zone; some transmissions ack, some do not.
  Node a = make_node(1, 0.0);
  double gray_distance = 40.0;
  for (double d = 40.0; d < 200.0; d += 1.0) {
    Node probe = make_node(1000 + static_cast<std::uint16_t>(d), d);
    const double prr = channel_->mean_prr(*a.radio, *probe.radio, 30);
    if (prr < 0.8 && prr > 0.3) {
      gray_distance = d;
      break;
    }
  }
  Node b = make_node(2, gray_distance);
  b.mac->set_rx_handler([](NodeId, std::uint8_t, std::span<const std::uint8_t>,
                           const phy::RxInfo&) {});
  int acked = 0;
  int unacked = 0;
  for (int i = 0; i < 200; ++i) {
    a.mac->send(NodeId{2}, std::vector<std::uint8_t>(24, 1),
                [&](const TxResult& r) { (r.acked ? acked : unacked) += 1; });
    sim_.run();
  }
  EXPECT_GT(acked, 10);
  EXPECT_GT(unacked, 10);
}

}  // namespace
}  // namespace fourbit::mac
